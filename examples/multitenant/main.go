// Multitenant demonstrates the shared worker pool: K independent
// clients — each a single-submitter SMPSs program with its own task
// graph, dependency tracking and barriers — execute concurrently on one
// fairly-scheduled worker team instead of K oversubscribed runtimes.
//
// Each client factors its own blocked matrix-vector pipeline: fill a
// vector, push it through a chain of dependent axpy/scale tasks, and
// barrier.  The check compares every client's result against a
// sequential execution of the same program, so renaming, dependency
// tracking and cross-tenant isolation are all verified end to end.
//
// Run with:
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"

	"repro/internal/core"
)

const (
	clients = 4
	vecLen  = 1 << 10
	rounds  = 200
)

var fill = core.NewTaskDef("fill_t", func(a *core.Args) {
	out := a.F32(0)
	c := float32(a.Float(1))
	for i := range out {
		out[i] = c * float32(i%7)
	}
})

var axpy = core.NewTaskDef("axpy_t", func(a *core.Args) {
	x, y := a.F32(0), a.F32(1)
	alpha := float32(a.Float(2))
	for i := range y {
		y[i] += alpha * x[i]
	}
})

var scale = core.NewTaskDef("scale_t", func(a *core.Args) {
	x := a.F32(0)
	alpha := float32(a.Float(1))
	for i := range x {
		x[i] *= alpha
	}
})

// program submits one client's task sequence to its context.  The
// refill of x each round races with the previous round's axpy read of
// x, so the runtime renames x to keep the rounds independent.
func program(k int, c *core.Context, x, y []float32) error {
	seed := float64(k + 1)
	submit := func(def *core.TaskDef, args ...core.Arg) error {
		return c.Submit(def, args...)
	}
	if err := submit(fill, core.Out(x), core.Value(seed)); err != nil {
		return err
	}
	if err := submit(fill, core.Out(y), core.Value(seed/2)); err != nil {
		return err
	}
	for r := 0; r < rounds; r++ {
		if err := submit(fill, core.Out(x), core.Value(seed+float64(r))); err != nil {
			return err
		}
		if err := submit(axpy, core.In(x), core.InOut(y), core.Value(0.25)); err != nil {
			return err
		}
		if err := submit(scale, core.InOut(y), core.Value(0.999)); err != nil {
			return err
		}
	}
	return nil
}

// sequential executes the same program directly in submission order —
// the semantics the runtime must preserve per client.
func sequential(k int) []float32 {
	x, y := make([]float32, vecLen), make([]float32, vecLen)
	seed := float64(k + 1)
	fillv := func(out []float32, c float64) {
		for i := range out {
			out[i] = float32(c) * float32(i%7)
		}
	}
	fillv(x, seed)
	fillv(y, seed/2)
	for r := 0; r < rounds; r++ {
		fillv(x, seed+float64(r))
		for i := range y {
			y[i] += 0.25 * x[i]
		}
		for i := range y {
			y[i] *= 0.999
		}
	}
	return y
}

func main() {
	pool, err := core.NewPool(core.PoolConfig{
		Workers:     runtime.GOMAXPROCS(0),
		MaxContexts: clients,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "multitenant:", err)
		os.Exit(1)
	}

	results := make([][]float32, clients)
	stats := make([]core.Stats, clients)
	ids := make([]int, clients)
	var wg sync.WaitGroup
	for k := 0; k < clients; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			// One context per client: its own graph, tracker, barriers
			// and stats, sharing only the pool's workers.
			c, err := pool.NewContext(core.ContextConfig{GraphLimit: 512})
			if err != nil {
				fmt.Fprintln(os.Stderr, "multitenant:", err)
				os.Exit(1)
			}
			x, y := make([]float32, vecLen), make([]float32, vecLen)
			if err := program(k, c, x, y); err != nil {
				fmt.Fprintln(os.Stderr, "multitenant:", err)
				os.Exit(1)
			}
			if err := c.Barrier(); err != nil {
				fmt.Fprintln(os.Stderr, "multitenant:", err)
				os.Exit(1)
			}
			results[k], stats[k], ids[k] = y, c.Stats(), c.ID()
			if err := c.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "multitenant:", err)
				os.Exit(1)
			}
		}(k)
	}
	wg.Wait()

	maxDiff := 0.0
	for k := 0; k < clients; k++ {
		want := sequential(k)
		for i := range want {
			if d := math.Abs(float64(results[k][i] - want[i])); d > maxDiff {
				maxDiff = d
			}
		}
		st := stats[k]
		fmt.Printf("client %d (ctx %d): %4d tasks, %3d renames, %3d pool hits, live renamed bytes %d\n",
			k, ids[k], st.TasksExecuted, st.Renames, st.PoolHits, st.LiveRenamedBytes)
	}
	ps := pool.Stats()
	if err := pool.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "multitenant:", err)
		os.Exit(1)
	}
	fmt.Printf("pool: %d workers shared by %d clients, parks %d, unparks %d\n",
		pool.Workers(), clients, ps.Parks, ps.Unparks)
	fmt.Printf("max |Δ| vs sequential: %g\n", maxDiff)
	if maxDiff != 0 {
		os.Exit(1)
	}
}
