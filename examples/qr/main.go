// Qr: tiled QR factorization (paper reference [10]) with explicit
// verification, showing the renaming-driven lookahead on the diagonal
// tile.
//
// After Geqrt, the diagonal tile holds both R (upper triangle) and the
// Householder vectors V (below it).  The same step's Unmqr tasks read V
// while the Tsqrt chain keeps rewriting R in the same tile — a sharing
// conflict that would serialize the panel under a dependency-unaware
// model, and that the SMPSs renaming engine resolves automatically: the
// readers pin the post-Geqrt version, the chain advances on fresh
// copies.  Watch the rename counter.
//
//	go run ./examples/qr
package main

import (
	"fmt"
	"log"
	"math"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
	"repro/internal/linalg"
)

const (
	n = 8   // blocks per dimension
	m = 128 // elements per block dimension
)

func main() {
	dim := n * m
	workers := runtime.GOMAXPROCS(0)
	orig := kernels.GenMatrix(dim, 77)

	rt := core.New(core.Config{Workers: workers})
	al := linalg.New(rt, kernels.Fast, m)

	a := hypermatrix.FromFlat(orig, n, m)
	start := time.Now()
	tf := al.QR(a)

	// Build Qᵀ explicitly by applying the factorization to the identity;
	// the submission pipelines behind the factorization itself.
	g := hypermatrix.New(n, m)
	for d := 0; d < dim; d++ {
		g.Set(d, d, 1)
	}
	al.ApplyQT(a, tf, g)
	if err := rt.Barrier(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	st := rt.Stats()

	fmt.Printf("tiled QR %d×%d (%d×%d blocks of %d×%d), %d workers\n", dim, dim, n, n, m, m, workers)
	fmt.Printf("  %d tasks (%.0f%% trailing updates), %d true edges, %d renames\n",
		st.TasksExecuted, 100*float64(st.TasksExecuted-int64(3*n*(n+1)/2))/float64(st.TasksExecuted),
		st.Deps.TrueEdges, st.Deps.Renames)
	fmt.Printf("  factor + build Qᵀ: %v (%.2f Gflop/s on the factorization alone)\n",
		elapsed, kernels.QRFlops(dim)/elapsed.Seconds()/1e9)

	// Verification 1: orthogonality — max |(G·Gᵀ − I)| with G = Qᵀ.
	gf := g.ToFlat()
	ortho := make([]float32, dim*dim)
	kernels.Fast.GemmNT(gf, gf, ortho, dim) // ortho := −G·Gᵀ
	var worstO float64
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			want := float64(0)
			if i == j {
				want = -1
			}
			if d := math.Abs(float64(ortho[i*dim+j]) - want); d > worstO {
				worstO = d
			}
		}
	}

	// Verification 2: reconstruction — max |(Q·R − A)| with Q = Gᵀ.
	fact := a.ToFlat()
	r := make([]float32, dim*dim)
	for i := 0; i < dim; i++ {
		for j := i; j < dim; j++ {
			r[i*dim+j] = fact[i*dim+j]
		}
	}
	var worstR float64
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			var s float32
			for k := 0; k < dim; k++ {
				s += gf[k*dim+i] * r[k*dim+j]
			}
			if d := math.Abs(float64(s - orig[i*dim+j])); d > worstR {
				worstR = d
			}
		}
	}
	fmt.Printf("  ‖Q·Qᵀ − I‖∞ = %.3g, ‖Q·R − A‖∞ = %.3g\n", worstO, worstR)

	if err := rt.Close(); err != nil {
		log.Fatal(err)
	}
}
