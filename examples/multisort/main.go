// Multisort: the array-region workload of paper §V and §VI.D.
//
// The leaf quicksort and merge kernels are tasks whose parameters carry
// region directionality (the Fig. 7 syntax: inout(data{i..j}),
// input(data{i1..j1}, data{i2..j2}), output(dest{...})), so only tasks
// touching overlapping index ranges are ordered.  The example compares
// all four implementations the paper evaluates.
//
//	go run ./examples/multisort
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"repro/internal/apps"
	"repro/internal/cilkrt"
	"repro/internal/core"
	"repro/internal/omptask"
)

const keys = 1 << 21

func main() {
	rng := rand.New(rand.NewSource(99))
	orig := make([]int64, keys)
	for i := range orig {
		orig[i] = rng.Int63()
	}
	cfg := apps.DefaultSortConfig

	seq := clone(orig)
	t0 := time.Now()
	apps.MultisortSeq(seq, cfg)
	seqTime := time.Since(t0)
	fmt.Printf("%-22s %v\n", "sequential:", seqTime)

	ck := clone(orig)
	crt := cilkrt.New(0)
	t0 = time.Now()
	apps.MultisortCilk(crt, ck, cfg)
	report("cilk:", t0, seqTime, ck)
	crt.Close()

	om := clone(orig)
	ort := omptask.New(0)
	t0 = time.Now()
	apps.MultisortOMP(ort, om, cfg)
	report("omp3 tasks:", t0, seqTime, om)
	ort.Close()

	sm := clone(orig)
	srt := core.New(core.Config{})
	t0 = time.Now()
	if err := apps.MultisortSMPSs(srt.Context(), sm, cfg); err != nil {
		log.Fatal(err)
	}
	report("smpss (regions):", t0, seqTime, sm)
	st := srt.Stats()
	fmt.Printf("  smpss detail: %d tasks, %d region objects, %d true + %d anti/output edges\n",
		st.TasksExecuted, st.Deps.RegionObjects, st.Deps.TrueEdges, st.Deps.FalseEdges)
	if err := srt.Close(); err != nil {
		log.Fatal(err)
	}
}

func clone(d []int64) []int64 { return append([]int64(nil), d...) }

func report(name string, start time.Time, seqTime time.Duration, data []int64) {
	elapsed := time.Since(start)
	if !sort.SliceIsSorted(data, func(i, j int) bool { return data[i] < data[j] }) {
		log.Fatalf("%s output not sorted", name)
	}
	fmt.Printf("%-22s %v (speedup %.2f)\n", name, elapsed, seqTime.Seconds()/elapsed.Seconds())
}
