// Heat: Gauss-Seidel heat diffusion on a blocked grid, the stencil demo
// of the SMPSs distribution.
//
// The in-place Gauss-Seidel sweep looks hopelessly sequential — every
// block needs its north and west neighbours *already updated in this
// sweep* — yet declaring the block inout and the neighbours in lets the
// runtime derive the wavefront schedule automatically.  Renaming then
// pipelines consecutive sweeps diagonally across the grid: sweep s+1
// starts in the top-left corner while sweep s is still finishing in the
// bottom-right, parallelism that barrier-per-sweep models cannot express.
//
//	go run ./examples/heat [-n blocks] [-m block] [-sweeps k]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/hypermatrix"
)

func main() {
	n := flag.Int("n", 16, "blocks per dimension")
	m := flag.Int("m", 64, "elements per block dimension")
	sweeps := flag.Int("sweeps", 24, "Gauss-Seidel sweeps")
	flag.Parse()

	bc := apps.HeatBC{Top: 1} // hot top edge, cold elsewhere
	grid := hypermatrix.New(*n, *m)

	// One tenant context on a shared worker pool.
	pool, err := core.NewPool(core.PoolConfig{})
	if err != nil {
		log.Fatal(err)
	}
	workers := pool.Workers()

	fmt.Printf("heat %d×%d grid (%d×%d blocks), %d Gauss-Seidel sweeps, %d workers\n",
		*n**m, *n**m, *n, *n, *sweeps, workers)
	fmt.Printf("  initial residual: %.4g\n", apps.HeatResidual(grid, bc))

	// Sequential reference.
	seq := grid.Clone()
	t0 := time.Now()
	apps.HeatSeqGS(seq, bc, *sweeps)
	seqTime := time.Since(t0)

	// SMPSs wavefront.
	mine := grid.Clone()
	ctx, err := pool.NewContext(core.ContextConfig{})
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	if err := apps.HeatSMPSsGS(ctx, mine, bc, *sweeps); err != nil {
		log.Fatal(err)
	}
	if err := ctx.Barrier(); err != nil {
		log.Fatal(err)
	}
	par := time.Since(t0)
	st := ctx.Stats()
	if err := ctx.Close(); err != nil {
		log.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		log.Fatal(err)
	}

	got, want := mine.ToFlat(), seq.ToFlat()
	for i := range want {
		if got[i] != want[i] {
			log.Fatalf("wavefront result diverged from sequential at element %d", i)
		}
	}

	fmt.Printf("  sequential: %8v\n", seqTime)
	fmt.Printf("  smpss:      %8v   speedup ×%.2f\n", par, seqTime.Seconds()/par.Seconds())
	fmt.Printf("  %d tasks, %d true edges, %d renames (across-sweep pipelining), result exact\n",
		st.TasksExecuted, st.Deps.TrueEdges, st.Deps.Renames)
	fmt.Printf("  residual after %d sweeps: %.4g\n", *sweeps, apps.HeatResidual(mine, bc))

	// Convergence comparison: Jacobi needs explicit double-buffering (no
	// renaming help) and converges slower per sweep.
	jac := grid.Clone()
	jres := apps.HeatSeqJacobi(jac, bc, *sweeps)
	fmt.Printf("  Jacobi residual after the same %d sweeps: %.4g (Gauss-Seidel wins per sweep)\n",
		*sweeps, apps.HeatResidual(jres, bc))
}
