// Strassen: the intensive-renaming workload of paper §VI.C.
//
// The recursion reuses two operand-sum temporaries across its seven
// sub-products, so every reuse overwrites data that earlier products'
// tasks are still reading.  Under most programming models that demands
// per-product temporaries by hand; under SMPSs the renaming engine
// allocates fresh instances automatically and all seven products run
// concurrently.  The example shows the rename count and compares the
// result and operation count against plain tiled multiplication.
//
//	go run ./examples/strassen
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
	"repro/internal/linalg"
)

const (
	n = 8   // blocks per dimension (power of two for the recursion)
	m = 128 // elements per block dimension
)

func main() {
	dim := n * m
	aflat := kernels.GenMatrix(dim, 1)
	bflat := kernels.GenMatrix(dim, 2)
	want := make([]float32, dim*dim)
	kernels.GemmFlat(aflat, bflat, want, dim)

	a := hypermatrix.FromFlat(aflat, n, m)
	b := hypermatrix.FromFlat(bflat, n, m)
	c := hypermatrix.New(n, m)

	rt := core.New(core.Config{})
	al := linalg.New(rt, kernels.Fast, m)
	start := time.Now()
	al.Strassen(a, b, c)
	if err := rt.Barrier(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	st := rt.Stats()

	sflops := kernels.StrassenFlops(dim, m)
	fmt.Printf("Strassen %d×%d (%d-blocks): %d tasks in %v\n", dim, dim, m, st.TasksExecuted, elapsed)
	fmt.Printf("gflop/s (Strassen formula, as in the paper): %.2f\n", sflops/elapsed.Seconds()/1e9)
	fmt.Printf("operation count: %.0f vs %.0f for the classic algorithm (%.1f%% saved)\n",
		sflops, kernels.GemmFlops(dim), 100*(1-sflops/kernels.GemmFlops(dim)))
	fmt.Printf("renames performed by the runtime: %d (with %d seed copies)\n",
		st.Deps.Renames, st.Deps.RenameCopies)
	fmt.Printf("max |Δ| vs plain multiplication: %g\n", kernels.MaxAbsDiff(want, c.ToFlat()))
	if err := rt.Close(); err != nil {
		log.Fatal(err)
	}
}
