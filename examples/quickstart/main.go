// Quickstart: the dense hyper-matrix multiplication of paper Fig. 1.
//
// An SMPSs program is a sequential program whose kernels are tasks.  The
// triple loop below is written in its natural order; the runtime
// discovers that the N³ sgemm tasks form N² independent chains and runs
// them in parallel with locality-aware scheduling.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
)

const (
	n = 8  // blocks per dimension
	m = 64 // elements per block dimension
)

func main() {
	// Declare the task, the Go spelling of:
	//   #pragma css task input(a, b) inout(c)
	//   void sgemm_t(float a[M][M], float b[M][M], float c[M][M]);
	sgemm := core.NewTaskDef("sgemm_t", func(args *core.Args) {
		kernels.Fast.GemmNN(args.F32(0), args.F32(1), args.F32(2), m)
	})

	dim := n * m
	a := hypermatrix.FromFlat(kernels.GenMatrix(dim, 1), n, m)
	b := hypermatrix.FromFlat(kernels.GenMatrix(dim, 2), n, m)
	c := hypermatrix.New(n, m)

	// The program runs as one tenant of a shared worker pool: the pool
	// owns the workers, the context owns this program's task graph.  A
	// second program could attach its own context to the same pool and
	// run concurrently (see examples/multitenant).
	pool, err := core.NewPool(core.PoolConfig{}) // one worker per core
	if err != nil {
		log.Fatal(err)
	}
	ctx, err := pool.NewContext(core.ContextConfig{})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()

	// Paper Fig. 1 — any loop order is correct; the runtime extracts the
	// parallelism.  Each C block's chain of n gemms is handed over as one
	// batch, the amortized path for submission-heavy loops: the batch
	// reuses its argument storage and each task enters the dependency
	// tracker in a single pass.
	batch := ctx.NewBatch()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				batch.Add(sgemm,
					core.In(a.Block(i, k)),
					core.In(b.Block(k, j)),
					core.InOut(c.Block(i, j)))
			}
			if err := batch.Submit(); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := ctx.Barrier(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	// Verify against the sequential flat multiply.
	want := make([]float32, dim*dim)
	kernels.GemmFlat(a.ToFlat(), b.ToFlat(), want, dim)
	diff := kernels.MaxAbsDiff(want, c.ToFlat())

	st := ctx.Stats()
	fmt.Printf("multiplied %d×%d floats as %d tasks on %d threads in %v\n",
		dim, dim, st.TasksExecuted, pool.Workers(), elapsed)
	fmt.Printf("gflop/s: %.2f   max |Δ| vs sequential: %g\n",
		kernels.GemmFlops(dim)/elapsed.Seconds()/1e9, diff)
	fmt.Printf("dependency edges: %d (every C block is a chain of %d gemms)\n",
		st.Deps.TrueEdges, n)
	if err := ctx.Close(); err != nil {
		log.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		log.Fatal(err)
	}
}
