// Sparse: the sparse hyper-matrix multiplication of paper Fig. 3.
//
// "In most cases, converting a dense algorithm into a sparse variant is
// simple and straightforward" — the dense triple loop gains one nil
// check per block pair and an alloc_block for result blocks that
// materialize.  The runtime sees only the tasks that actually exist, so
// the dependency graph (and the work) shrinks with the density.
//
//	go run ./examples/sparse
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
	"repro/internal/linalg"
)

const (
	n       = 12  // blocks per dimension
	m       = 64  // elements per block dimension
	density = 0.3 // probability a block is present
)

func main() {
	rng := rand.New(rand.NewSource(6))
	a := randomSparse(rng)
	b := randomSparse(rng)

	// Reference: dense flat multiply of the materialized matrices.
	dim := n * m
	want := make([]float32, dim*dim)
	kernels.GemmFlat(a.ToFlat(), b.ToFlat(), want, dim)

	// One tenant context on a shared pool — the multi-tenant hosting
	// every frontend uses now (see examples/multitenant for several
	// contexts sharing one pool).
	pool, err := core.NewPool(core.PoolConfig{})
	if err != nil {
		log.Fatal(err)
	}
	ctx, err := pool.NewContext(core.ContextConfig{})
	if err != nil {
		log.Fatal(err)
	}
	al := linalg.NewOn(ctx, kernels.Fast, m)
	c := hypermatrix.NewSparse(n, m)
	start := time.Now()
	al.MatMulSparse(a, b, c) // Fig. 3
	if err := ctx.Barrier(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	st := ctx.Stats()

	fmt.Printf("sparse multiply %d×%d blocks at density %.0f%%:\n", n, n, density*100)
	fmt.Printf("  A has %d/%d blocks, B has %d/%d, C materialized %d\n",
		a.NonZeroBlocks(), n*n, b.NonZeroBlocks(), n*n, c.NonZeroBlocks())
	fmt.Printf("  %d sgemm tasks (dense would need %d) in %v\n",
		st.TasksExecuted, n*n*n, elapsed)
	fmt.Printf("  max |Δ| vs dense reference: %g\n", kernels.MaxAbsDiff(want, c.ToFlat()))
	if err := ctx.Close(); err != nil {
		log.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		log.Fatal(err)
	}
}

func randomSparse(rng *rand.Rand) *hypermatrix.Matrix {
	h := hypermatrix.NewSparse(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < density {
				blk := h.EnsureBlock(i, j)
				for k := range blk {
					blk[k] = rng.Float32()*2 - 1
				}
			}
		}
	}
	return h
}
