// N-Queens: the renaming showcase of paper §VI.E.
//
// The Cilk and OpenMP versions must hand-copy the partial solution array
// at every task spawn so sibling branches do not overwrite each other.
// The SMPSs version submits placements as inout tasks on ONE program
// array: when a placement would overwrite data that pending search tasks
// still read, the runtime renames the array automatically — the
// program keeps its sequential shape, the artifacts disappear into the
// runtime.
//
//	go run ./examples/nqueens [-n 13]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/apps"
	"repro/internal/cilkrt"
	"repro/internal/core"
	"repro/internal/omptask"
)

func main() {
	n := flag.Int("n", 12, "board size")
	flag.Parse()

	t0 := time.Now()
	want := apps.NQueensSeq(*n)
	seqTime := time.Since(t0)
	fmt.Printf("%-14s N=%d: %d solutions in %v\n", "sequential", *n, want, seqTime)

	crt := cilkrt.New(0)
	t0 = time.Now()
	got := apps.NQueensCilk(crt, *n)
	check("cilk", got, want, t0, seqTime)
	crt.Close()

	ort := omptask.New(0)
	t0 = time.Now()
	got = apps.NQueensOMP(ort, *n)
	check("omp3 tasks", got, want, t0, seqTime)
	ort.Close()

	srt := core.New(core.Config{})
	t0 = time.Now()
	got, err := apps.NQueensSMPSs(srt.Context(), *n)
	if err != nil {
		log.Fatal(err)
	}
	check("smpss", got, want, t0, seqTime)
	st := srt.Stats()
	fmt.Printf("  smpss detail: %d tasks, %d renames (the copies the other models make by hand), %d sync-back copies\n",
		st.TasksExecuted, st.Deps.Renames, st.SyncBackCopies)
	if err := srt.Close(); err != nil {
		log.Fatal(err)
	}
}

func check(name string, got, want int64, start time.Time, seqTime time.Duration) {
	elapsed := time.Since(start)
	if got != want {
		log.Fatalf("%s: %d solutions, want %d", name, got, want)
	}
	fmt.Printf("%-14s solutions ok in %v (speedup %.2f)\n", name, elapsed, seqTime.Seconds()/elapsed.Seconds())
}
