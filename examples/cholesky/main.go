// Cholesky: the paper's flagship workload in all three spellings.
//
//  1. the dense hyper-matrix left-looking factorization of Fig. 4,
//  2. the sparse variant in the spirit of Fig. 3 (nil blocks skipped),
//  3. the flat-matrix version with on-demand block copies of Fig. 9/10,
//     where the flat matrix travels as an opaque pointer and get_block /
//     put_block tasks stage blocks in and out.
//
// It also exports the Fig. 5 task graph for the 6×6 case.
//
//	go run ./examples/cholesky
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
	"repro/internal/linalg"
)

const (
	n = 8  // blocks per dimension
	m = 96 // elements per block dimension
)

func main() {
	dim := n * m
	spd := kernels.GenSPD(dim, 7)
	want := append([]float32(nil), spd...)
	if !kernels.CholeskyFlat(want, dim) {
		log.Fatal("reference Cholesky failed")
	}

	dense(spd, want, dim)
	flatOnDemand(spd, want, dim)
	exportFig5Graph()
}

// dense runs the Fig. 4 program on a pre-blocked hyper-matrix.
func dense(spd, want []float32, dim int) {
	rt := core.New(core.Config{})
	al := linalg.New(rt, kernels.Fast, m)
	a := hypermatrix.FromFlat(spd, n, m)
	start := time.Now()
	al.CholeskyDense(a)
	if err := rt.Barrier(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	st := rt.Stats()
	fmt.Printf("dense hyper-matrix Cholesky (Fig. 4): %d tasks in %v (%.2f gflop/s), max |Δ| %g\n",
		st.TasksExecuted, elapsed,
		kernels.CholeskyFlops(dim)/elapsed.Seconds()/1e9,
		kernels.LowerMaxAbsDiff(want, a.ToFlat(), dim))
	if err := rt.Close(); err != nil {
		log.Fatal(err)
	}
}

// flatOnDemand runs the Fig. 9 program: the factorization of a flat
// matrix through on-demand copies, with the flat storage passed opaquely.
func flatOnDemand(spd, want []float32, dim int) {
	rt := core.New(core.Config{})
	al := linalg.New(rt, kernels.Fast, m)
	a := append([]float32(nil), spd...)
	start := time.Now()
	al.CholeskyFlat(a, n)
	if err := rt.Barrier(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	st := rt.Stats()
	fmt.Printf("flat Cholesky with on-demand copies (Fig. 9): %d tasks (incl. get/put_block) in %v, max |Δ| %g\n",
		st.TasksExecuted, elapsed, kernels.LowerMaxAbsDiff(want, a, dim))
	if err := rt.Close(); err != nil {
		log.Fatal(err)
	}
}

// exportFig5Graph writes the 6×6 task graph of Fig. 5 to cholesky6.dot.
func exportFig5Graph() {
	rec := &graph.Recorder{}
	rt := core.New(core.Config{Workers: 1, Recorder: rec})
	al := linalg.New(rt, kernels.Fast, 8)
	a := hypermatrix.FromFlat(kernels.GenSPD(48, 1), 6, 8)
	al.CholeskyDense(a)
	if err := rt.Close(); err != nil {
		log.Fatal(err)
	}
	f, err := os.Create("cholesky6.dot")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := rec.WriteDOT(f, "cholesky 6x6"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig. 5 graph: %d tasks, %d true deps, critical path %d → cholesky6.dot\n",
		rec.NumNodes(), rec.NumEdges(), rec.CriticalPathLength())
}
