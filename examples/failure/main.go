// Failure demonstrates the runtime's failure domains: structured task
// failure with poison propagation, tenant cancellation on a shared
// pool, graceful drain, and the seeded fault-injection harness.
//
// Three acts:
//
//  1. A task fails (Args.Fail) under OnFailure: FailPoison — its
//     transitive dependents are skipped-and-counted instead of running
//     on garbage data, the failure surfaces at the barrier as a typed
//     *core.TaskError, and independent work is untouched.
//  2. Two tenants share one pool; one runs past its deadline and is
//     canceled (typed *core.CanceledError, remaining tasks drained as
//     skips) while its co-tenant finishes bit-exact.  Pool.Drain then
//     retires the pool.
//  3. The chaos harness injects seeded task errors into one tenant of
//     a fresh pool; the targeted tenant fails deterministically, the
//     untargeted one still matches a sequential run exactly.
//
// Run with:
//
//	go run ./examples/failure
package main

import (
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
)

var fill = core.NewTaskDef("fill_t", func(a *core.Args) {
	out := a.F32(0)
	c := float32(a.Float(1))
	for i := range out {
		out[i] = c * float32(i%5)
	}
})

var double = core.NewTaskDef("double_t", func(a *core.Args) {
	x := a.F32(0)
	for i := range x {
		x[i] *= 2
	}
})

var boom = core.NewTaskDef("boom_t", func(a *core.Args) {
	a.Fail(errors.New("sensor returned garbage"))
})

var slow = core.NewTaskDef("slow_t", func(a *core.Args) {
	time.Sleep(time.Millisecond)
	a.F32(0)[0]++
})

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "failure:", err)
	os.Exit(1)
}

// actPoison: fail in the middle of a dependency chain under FailPoison.
func actPoison() {
	rt := core.New(core.Config{Workers: 4, OnFailure: core.FailPoison})
	x := make([]float32, 256)
	y := make([]float32, 256)
	rt.Submit(fill, core.Out(x), core.Value(1.0))
	rt.Submit(boom, core.InOut(x)) // fails: everything downstream of x is poisoned
	for i := 0; i < 4; i++ {
		rt.Submit(double, core.InOut(x))
	}
	rt.Submit(fill, core.Out(y), core.Value(3.0)) // independent: must run
	rt.Submit(double, core.InOut(y))

	err := rt.Barrier()
	var te *core.TaskError
	if !errors.As(err, &te) {
		fatal(fmt.Errorf("expected a *core.TaskError at the barrier, got %v", err))
	}
	st := rt.Stats()
	fmt.Printf("act 1: barrier reported: %v\n", te)
	fmt.Printf("act 1: failures %d, poisoned (skipped) %d, executed %d of %d, live renamed bytes %d\n",
		st.Failures, st.Poisoned, st.TasksExecuted, st.TasksSubmitted, st.LiveRenamedBytes)
	if st.Poisoned != 4 || y[2] != 3*2*2 {
		fatal(errors.New("act 1: poison domain wrong"))
	}
	rt.ClearErr() // acknowledge; the latch is clearable, cancellation is not
	if err := rt.Close(); err != nil {
		fatal(err)
	}
}

// actCancel: a deadline kills one tenant; its co-tenant is untouched.
func actCancel() {
	pool, err := core.NewPool(core.PoolConfig{Workers: 4, MaxContexts: 2})
	if err != nil {
		fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		// Tenant A: a serial chain that would take ~500ms, against a
		// 15ms deadline.  The blocked barrier is unparked by the cancel.
		c, err := pool.NewContext(core.ContextConfig{Deadline: 15 * time.Millisecond})
		if err != nil {
			done <- err
			return
		}
		x := make([]float32, 8)
		for i := 0; i < 500; i++ {
			if err := c.Submit(slow, core.InOut(x)); err != nil {
				break // canceled mid-submission: also fine
			}
		}
		err = c.Barrier()
		st := c.Stats()
		fmt.Printf("act 2: tenant A: %v (executed %d, canceled-skips %d)\n", err, st.TasksExecuted, st.Canceled)
		c.Close()
		var ce *core.CanceledError
		if !errors.As(err, &ce) {
			done <- fmt.Errorf("expected a *core.CanceledError, got %v", err)
			return
		}
		done <- nil
	}()

	// Tenant B: unaffected co-tenant doing exact arithmetic.
	c, err := pool.NewContext(core.ContextConfig{})
	if err != nil {
		fatal(err)
	}
	y := make([]float32, 256)
	if err := c.Submit(fill, core.Out(y), core.Value(1.0)); err != nil {
		fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := c.Submit(double, core.InOut(y)); err != nil {
			fatal(err)
		}
	}
	if err := c.Barrier(); err != nil {
		fatal(err)
	}
	if y[1] != 1<<10 {
		fatal(fmt.Errorf("act 2: co-tenant result corrupted: %g", y[1]))
	}
	fmt.Printf("act 2: tenant B unaffected: y[1] = %g (exact)\n", y[1])
	c.Close()
	if err := <-done; err != nil {
		fatal(err)
	}
	// Both tenants closed voluntarily; Drain retires the pool.
	if err := pool.Drain(time.Second); err != nil {
		fatal(err)
	}
}

// actChaos: seeded injected task errors into one tenant only.
func actChaos() {
	pool, err := core.NewPool(core.PoolConfig{Workers: 4, MaxContexts: 2})
	if err != nil {
		fatal(err)
	}
	victim, err := pool.NewContext(core.ContextConfig{OnFailure: core.FailPoison})
	if err != nil {
		fatal(err)
	}
	bystander, err := pool.NewContext(core.ContextConfig{})
	if err != nil {
		fatal(err)
	}
	inj := chaos.New(chaos.Config{
		Seed:  42,
		Rates: map[chaos.Site]float64{chaos.SiteTaskError: 0.1},
		Ctxs:  map[int]bool{victim.ID(): true},
	})
	chaos.Install(inj)
	defer chaos.Uninstall()

	done := make(chan struct{})
	go func() {
		defer close(done)
		xs := make([][]float32, 64)
		for i := range xs {
			xs[i] = make([]float32, 64)
			if victim.Submit(fill, core.Out(xs[i]), core.Value(float64(i))) != nil {
				break // refused mid-submission: the barrier reports why
			}
			if victim.Submit(double, core.InOut(xs[i])) != nil {
				break
			}
		}
		err := victim.Barrier()
		st := victim.Stats()
		fmt.Printf("act 3: victim (ctx %d): %v\n", victim.ID(), err)
		fmt.Printf("act 3: injected errors fired %d times; failures %d, poisoned %d\n",
			inj.Fired(chaos.SiteTaskError), st.Failures, st.Poisoned)
		victim.Close()
	}()

	z := make([]float32, 256)
	if err := bystander.Submit(fill, core.Out(z), core.Value(2.0)); err != nil {
		fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := bystander.Submit(double, core.InOut(z)); err != nil {
			fatal(err)
		}
	}
	if err := bystander.Barrier(); err != nil {
		fatal(fmt.Errorf("act 3: bystander hit a fault that was not aimed at it: %w", err))
	}
	if z[1] != 2*256 {
		fatal(fmt.Errorf("act 3: bystander result corrupted: %g", z[1]))
	}
	fmt.Printf("act 3: bystander (ctx %d) exact: z[1] = %g\n", bystander.ID(), z[1])
	bystander.Close()
	<-done
	if err := pool.Close(); err != nil {
		fatal(err)
	}
}

func main() {
	actPoison()
	actCancel()
	actChaos()
	fmt.Println("all failure domains held")
}
