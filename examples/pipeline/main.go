// Pipeline: the §VII.D composition argument.
//
// "A real program may perform a Cholesky factorization and use the
// result in another operation.  As the results of the factorization
// become available, the tasks of the second operation that consume them
// can be executed, recovering the parallelism lost as the execution
// reaches the bottom of the Cholesky graph."
//
// This example submits a blocked Cholesky and a blocked triangular solve
// with NO barrier in between, then uses the tracer to show solve tasks
// executing before the factorization's last task finished — parallelism
// between parts of the program that are far apart in the sequential
// flow.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
	"repro/internal/linalg"
	"repro/internal/trace"
)

const (
	n = 12 // blocks per dimension
	m = 64 // elements per block dimension
)

func main() {
	dim := n * m
	spd := kernels.GenSPD(dim, 3)
	rhs := kernels.GenMatrix(dim, 4)[:dim]

	// Reference solution.
	lref := append([]float32(nil), spd...)
	if !kernels.CholeskyFlat(lref, dim) {
		log.Fatal("reference Cholesky failed")
	}
	want := append([]float32(nil), rhs...)
	kernels.TrsvFlat(lref, want, dim)

	tr := trace.New()
	rt := core.New(core.Config{Tracer: tr})
	al := linalg.New(rt, kernels.Fast, m)
	a := hypermatrix.FromFlat(spd, n, m)
	b := linalg.BlockVector(rhs, n, m)

	al.CholeskyDense(a) // first operation
	al.SolveLower(a, b) // second operation — no barrier in between
	if err := rt.Barrier(); err != nil {
		log.Fatal(err)
	}

	if d := kernels.MaxAbsDiff(want, linalg.FlattenVector(b)); d > 1e-2 {
		log.Fatalf("pipelined solve off by %g", d)
	}

	// Post-mortem: did solve tasks overlap the factorization?
	var lastFactorEnd, firstSolveStart int64 = 0, 1 << 62
	var overlapped int
	for _, ev := range tr.Events() {
		switch ev.Label {
		case "spotrf_t", "strsm_t", "ssyrk_t", "sgemm_nt_t":
			if ev.Type == trace.EvEnd && ev.When.Nanoseconds() > lastFactorEnd {
				lastFactorEnd = ev.When.Nanoseconds()
			}
		case "sgemv_t", "strsv_t":
			if ev.Type == trace.EvStart {
				if ev.When.Nanoseconds() < firstSolveStart {
					firstSolveStart = ev.When.Nanoseconds()
				}
				overlapped++
			}
		}
	}
	startedEarly := 0
	for _, ev := range tr.Events() {
		if (ev.Label == "sgemv_t" || ev.Label == "strsv_t") && ev.Type == trace.EvStart &&
			ev.When.Nanoseconds() < lastFactorEnd {
			startedEarly++
		}
	}
	fmt.Printf("factorization + solve on %d threads: correct (max |Δ| < 1e-2)\n", rt.Workers())
	fmt.Printf("solve tasks total: %d; started before the factorization finished: %d\n",
		overlapped, startedEarly)
	fmt.Printf("first solve task started %.1fµs before the last factor task ended\n",
		float64(lastFactorEnd-firstSolveStart)/1e3)
	if err := rt.Close(); err != nil {
		log.Fatal(err)
	}
}
