// Sparselu: LU factorization of a block-sparse matrix, the classic
// irregular workload of the Barcelona tool chain (an SMPSs demo
// application, later a BOTS benchmark).
//
// It combines everything §IV's sparse example (Fig. 3) motivates:
// value-dependent task creation (absent blocks generate no tasks),
// on-demand allocation of fill-in blocks from the main flow, and a
// dependency pattern — lu0 → fwd/bdiv → bmod per step, steps overlapping
// — that a dependency-unaware pool must fence with taskwait barriers.
// The run compares both models and the sequential factorization.
//
//	go run ./examples/sparselu
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/omptask"
)

const (
	n       = 24   // blocks per dimension
	m       = 48   // elements per block dimension
	density = 0.35 // probability an off-diagonal block is present
)

func main() {
	workers := runtime.GOMAXPROCS(0)
	input := apps.GenSparseLU(n, m, density, 1)
	fmt.Printf("sparselu %d×%d blocks of %d×%d at density %.0f%%: %d/%d blocks present\n",
		n, n, m, m, density*100, input.NonZeroBlocks(), n*n)

	// Sequential reference.
	seq := input.Clone()
	t0 := time.Now()
	if !apps.SparseLUSeq(seq) {
		log.Fatal("sequential factorization hit a zero pivot")
	}
	seqTime := time.Since(t0)
	fmt.Printf("  sequential:  %8v   (fill-in grew to %d blocks)\n", seqTime, seq.NonZeroBlocks())

	// OpenMP-3.0-tasks model: taskwait after each phase of each step.
	omp := input.Clone()
	pool := omptask.New(workers)
	t0 = time.Now()
	apps.SparseLUOMP3(pool, omp)
	ompTime := time.Since(t0)
	pool.Close()
	fmt.Printf("  omp3 tasks:  %8v   speedup ×%.2f\n", ompTime, seqTime.Seconds()/ompTime.Seconds())

	// SMPSs: submit everything, let dependencies pipeline the steps.
	mine := input.Clone()
	rt := core.New(core.Config{Workers: workers})
	t0 = time.Now()
	if err := apps.SparseLUSMPSs(rt.Context(), mine); err != nil {
		log.Fatal(err)
	}
	if err := rt.Barrier(); err != nil {
		log.Fatal(err)
	}
	smpssTime := time.Since(t0)
	st := rt.Stats()
	fmt.Printf("  smpss:       %8v   speedup ×%.2f   (%d tasks, %d true edges, 0 barriers)\n",
		smpssTime, seqTime.Seconds()/smpssTime.Seconds(), st.TasksExecuted, st.Deps.TrueEdges)
	if err := rt.Close(); err != nil {
		log.Fatal(err)
	}

	// Both parallel factorizations must equal the sequential one exactly.
	got, o, want := mine.ToFlat(), omp.ToFlat(), seq.ToFlat()
	for i := range want {
		if got[i] != want[i] || o[i] != want[i] {
			log.Fatalf("parallel factorization diverged from sequential at element %d", i)
		}
	}
	worst := apps.SparseLUVerify(mine, input.ToFlat())
	fmt.Printf("  results exact vs sequential; ‖L·U − A‖∞ = %.3g\n", worst)
}
