package repro_test

// Extension benchmarks: the §VII execution-model comparison (SMPSs vs
// CellSs vs SuperMatrix on one Cholesky graph), the tiled QR of paper
// reference [10], and the SparseLU / heat demo workloads.  See
// EXPERIMENTS.md ("Extension experiments") for the recorded sweeps.

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/cellss"
	"repro/internal/core"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
	"repro/internal/linalg"
	"repro/internal/omptask"
	"repro/internal/supermatrix"
)

// BenchmarkExtModels* run the identical blocked Cholesky through the
// three execution models of §VII.
func BenchmarkExtModelsSMPSs(b *testing.B) {
	spd := kernels.GenSPD(bDim, 31)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := hypermatrix.FromFlat(spd, bDim/bBlock, bBlock)
		rt := core.New(core.Config{})
		al := linalg.New(rt, kernels.Fast, bBlock)
		b.StartTimer()
		al.CholeskyDense(h)
		if err := rt.Close(); err != nil {
			b.Fatal(err)
		}
	}
	reportGflops(b, kernels.CholeskyFlops(bDim))
}

func BenchmarkExtModelsCellSs(b *testing.B) {
	spd := kernels.GenSPD(bDim, 31)
	ts := cellss.NewTasks(kernels.Fast, bBlock)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := hypermatrix.FromFlat(spd, bDim/bBlock, bBlock)
		rt := cellss.New(cellss.Config{})
		b.StartTimer()
		cellss.Cholesky(rt, ts, h)
		if err := rt.Close(); err != nil {
			b.Fatal(err)
		}
	}
	reportGflops(b, kernels.CholeskyFlops(bDim))
}

func BenchmarkExtModelsSuperMatrix(b *testing.B) {
	spd := kernels.GenSPD(bDim, 31)
	ts := supermatrix.NewTasks(kernels.Fast, bBlock)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := hypermatrix.FromFlat(spd, bDim/bBlock, bBlock)
		rt := supermatrix.New(supermatrix.Config{})
		b.StartTimer()
		supermatrix.Cholesky(rt, ts, h)
		if err := rt.Execute(); err != nil {
			b.Fatal(err)
		}
	}
	reportGflops(b, kernels.CholeskyFlops(bDim))
}

// BenchmarkExtQR measures the tiled QR factorization (reference [10]).
func BenchmarkExtQR(b *testing.B) {
	dim := bDim / 2
	a0 := kernels.GenMatrix(dim, 33)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := hypermatrix.FromFlat(a0, dim/bBlock, bBlock)
		rt := core.New(core.Config{})
		al := linalg.New(rt, kernels.Fast, bBlock)
		b.StartTimer()
		al.QR(h)
		if err := rt.Close(); err != nil {
			b.Fatal(err)
		}
	}
	reportGflops(b, kernels.QRFlops(dim))
}

// BenchmarkExtSparseLU* compare the dependency-aware SparseLU against
// the taskwait-fenced pool version.
func BenchmarkExtSparseLUSMPSs(b *testing.B) {
	input := apps.GenSparseLU(16, 48, 0.35, 5)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := input.Clone()
		rt := core.New(core.Config{})
		b.StartTimer()
		if err := apps.SparseLUSMPSs(rt.Context(), h); err != nil {
			b.Fatal(err)
		}
		if err := rt.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtSparseLUOMP(b *testing.B) {
	input := apps.GenSparseLU(16, 48, 0.35, 5)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := input.Clone()
		pool := omptask.New(0)
		b.StartTimer()
		apps.SparseLUOMP3(pool, h)
		pool.Close()
	}
}

func BenchmarkExtSparseLUSeq(b *testing.B) {
	input := apps.GenSparseLU(16, 48, 0.35, 5)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := input.Clone()
		b.StartTimer()
		if !apps.SparseLUSeq(h) {
			b.Fatal("zero pivot")
		}
	}
}

// BenchmarkExtHeat* compare the derived Gauss-Seidel wavefront against
// the sequential sweep.
func BenchmarkExtHeatSMPSs(b *testing.B) {
	const n, m, sweeps = 12, 48, 8
	bc := apps.HeatBC{Top: 1}
	grid := hypermatrix.New(n, m)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := grid.Clone()
		rt := core.New(core.Config{})
		b.StartTimer()
		if err := apps.HeatSMPSsGS(rt.Context(), h, bc, sweeps); err != nil {
			b.Fatal(err)
		}
		if err := rt.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtHeatSeq(b *testing.B) {
	const n, m, sweeps = 12, 48, 8
	bc := apps.HeatBC{Top: 1}
	grid := hypermatrix.New(n, m)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := grid.Clone()
		b.StartTimer()
		apps.HeatSeqGS(h, bc, sweeps)
	}
}
