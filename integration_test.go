package repro_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
	"repro/internal/linalg"
	"repro/internal/trace"
)

// TestEndToEndApplication drives a realistic multi-phase application
// through one runtime instance, the way a downstream user would compose
// the library: generate a system, factor it, solve it, validate, with
// tracing and statistics on — all phases overlapping through the
// dependency graph, no barrier until the results are read.
func TestEndToEndApplication(t *testing.T) {
	const (
		nb  = 6
		m   = 32
		dim = nb * m
	)
	tr := trace.New()
	rt := core.New(core.Config{Workers: 8, Tracer: tr, GraphLimit: 512})
	al := linalg.New(rt, kernels.Fast, m)

	// Phase 1: factor A (SPD) in place.
	spd := kernels.GenSPD(dim, 101)
	a := hypermatrix.FromFlat(spd, nb, m)
	al.CholeskyDense(a)

	// Phase 2: solve L·z = b for three right-hand sides, all submitted
	// before the factorization finished (§VII.D composition).
	var solutions [][][]float32
	var rhs [][]float32
	for s := 0; s < 3; s++ {
		v := kernels.GenMatrix(dim, int64(200+s))[:dim]
		rhs = append(rhs, append([]float32(nil), v...))
		b := linalg.BlockVector(v, nb, m)
		al.SolveLower(a, b)
		solutions = append(solutions, b)
	}

	// Phase 3: read one solution early with WaitOn instead of a full
	// barrier (only its own dependency cone must complete).
	for i := 0; i < nb; i++ {
		if err := rt.WaitOn(solutions[0][i]); err != nil {
			t.Fatal(err)
		}
	}
	early := linalg.FlattenVector(solutions[0])

	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}

	// Validate every solution against the sequential pipeline.
	lref := append([]float32(nil), spd...)
	if !kernels.CholeskyFlat(lref, dim) {
		t.Fatal("reference factor failed")
	}
	for s := range solutions {
		want := append([]float32(nil), rhs[s]...)
		kernels.TrsvFlat(lref, want, dim)
		got := linalg.FlattenVector(solutions[s])
		if d := kernels.MaxAbsDiff(want, got); d > 1e-2 {
			t.Fatalf("solution %d off by %g", s, d)
		}
	}
	if d := kernels.MaxAbsDiff(early, linalg.FlattenVector(solutions[0])); d != 0 {
		t.Fatalf("WaitOn result changed after the barrier by %g", d)
	}

	// The runtime's own accounting must be coherent.
	st := rt.Stats()
	wantTasks := int64(0)
	// Cholesky tasks for nb=6: 56 (Fig. 5); each solve: nb trsv + nb(nb-1)/2 gemv.
	wantTasks += 56 + 3*(6+15)
	if st.TasksExecuted != wantTasks {
		t.Fatalf("executed %d tasks, want %d", st.TasksExecuted, wantTasks)
	}
	if st.TasksSubmitted != st.TasksExecuted {
		t.Fatalf("submitted %d != executed %d", st.TasksSubmitted, st.TasksExecuted)
	}

	// The trace must contain every execution, pairable per worker.
	sum := tr.Summarize()
	total := 0
	for _, k := range sum.Kinds {
		total += k.Count
	}
	if int64(total) != wantTasks {
		t.Fatalf("trace paired %d executions, want %d", total, wantTasks)
	}

	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	// Post-mortem round trip through the Paraver files.
	var prv, pcf strings.Builder
	if err := tr.WritePRV(&prv); err != nil {
		t.Fatal(err)
	}
	if err := tr.WritePCF(&pcf); err != nil {
		t.Fatal(err)
	}
	labels, err := trace.ParsePCF(strings.NewReader(pcf.String()))
	if err != nil {
		t.Fatal(err)
	}
	back, err := trace.ParsePRV(strings.NewReader(prv.String()), labels)
	if err != nil {
		t.Fatal(err)
	}
	backSum := back.Summarize()
	backTotal := 0
	for _, k := range backSum.Kinds {
		backTotal += k.Count
	}
	if backTotal != total {
		t.Fatalf("post-mortem trace paired %d executions, want %d", backTotal, total)
	}
}

// TestEndToEndGraphShape replays the same application under a recorder
// and checks the cross-phase structure: solve tasks hang off the
// factorization graph rather than behind a barrier.
func TestEndToEndGraphShape(t *testing.T) {
	const (
		nb = 6
		m  = 8
	)
	rec := &graph.Recorder{}
	rt := core.New(core.Config{Workers: 1, Recorder: rec})
	al := linalg.New(rt, kernels.Fast, m)
	a := hypermatrix.FromFlat(kernels.GenSPD(nb*m, 102), nb, m)
	al.CholeskyDense(a)
	b := linalg.BlockVector(kernels.GenMatrix(nb*m, 103)[:nb*m], nb, m)
	al.SolveLower(a, b)
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if rec.NumNodes() != 56+6+15 {
		t.Fatalf("nodes = %d, want 77", rec.NumNodes())
	}
	// The combined critical path must be longer than Cholesky's (16)
	// but far shorter than serial phases (16 + 21 would mean no
	// overlap; the solve chain adds at most nb hops past each column).
	cpl := rec.CriticalPathLength()
	if cpl <= 16 || cpl > 16+2*nb {
		t.Fatalf("combined critical path %d outside the overlap range", cpl)
	}
}
