package forkjoin

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kernels"
)

func TestGemmMatchesSequential(t *testing.T) {
	n := 96
	a := kernels.GenMatrix(n, 1)
	b := kernels.GenMatrix(n, 2)
	want := make([]float32, n*n)
	kernels.GemmFlat(a, b, want, n)
	for _, p := range kernels.Providers {
		for _, threads := range []int{1, 3, 8} {
			got := make([]float32, n*n)
			Gemm(a, b, got, n, threads, p)
			if d := kernels.MaxAbsDiff(want, got); d > 1e-3 {
				t.Fatalf("%s threads=%d: parallel GEMM off by %g", p.Name, threads, d)
			}
		}
	}
}

// TestGemmBlockedPaddedTiles drives the packed provider's blocked
// fork-join path across multiple tiles with a ragged edge (300 = 256 +
// 44), so the zero-padded staging and valid-window write-back are
// exercised, concurrently.
func TestGemmBlockedPaddedTiles(t *testing.T) {
	n := 300
	a := kernels.GenMatrix(n, 4)
	b := kernels.GenMatrix(n, 5)
	want := make([]float32, n*n)
	kernels.GemmFlat(a, b, want, n)
	for _, threads := range []int{1, 4} {
		got := make([]float32, n*n)
		Gemm(a, b, got, n, threads, kernels.Tuned)
		if d := kernels.MaxAbsDiff(want, got); d > 5e-3 {
			t.Fatalf("threads=%d: blocked tuned GEMM off by %g", threads, d)
		}
	}
}

func TestCholeskyMatchesSequential(t *testing.T) {
	n := 96
	spd := kernels.GenSPD(n, 3)
	want := append([]float32(nil), spd...)
	if !kernels.CholeskyFlat(want, n) {
		t.Fatalf("reference failed")
	}
	for _, p := range kernels.Providers {
		for _, threads := range []int{1, 4} {
			for _, m := range []int{16, 32, 40} { // 40 does not divide 96
				got := append([]float32(nil), spd...)
				if !Cholesky(got, n, m, threads, p) {
					t.Fatalf("%s threads=%d m=%d: Cholesky reported failure", p.Name, threads, m)
				}
				if d := kernels.LowerMaxAbsDiff(want, got, n); d > 1e-2 {
					t.Fatalf("%s threads=%d m=%d: parallel Cholesky off by %g", p.Name, threads, m, d)
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	n := 32
	a := make([]float32, n*n)
	for i := 0; i < n; i++ {
		a[i*n+i] = -1
	}
	if Cholesky(a, n, 8, 2, kernels.Fast) {
		t.Fatalf("Cholesky accepted an indefinite matrix")
	}
}

func TestParallelForCoversAllParts(t *testing.T) {
	seen := make([]int32, 37)
	parallelFor(len(seen), 5, func(p int) { seen[p]++ })
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("part %d executed %d times", i, c)
		}
	}
	// Degenerate cases.
	parallelFor(0, 4, func(p int) { t.Fatalf("no parts expected") })
	ran := 0
	parallelFor(3, 1, func(p int) { ran++ })
	if ran != 3 {
		t.Fatalf("single-thread path ran %d/3", ran)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	n := 10
	a := kernels.GenMatrix(n, 4)
	orig := append([]float32(nil), a...)
	r := packRect(a, n, 2, 3, 4, 5)
	unpackRect(r, a, n, 2, 3, 4, 5)
	if d := kernels.MaxAbsDiff(orig, a); d != 0 {
		t.Fatalf("pack/unpack round trip changed data by %g", d)
	}
}

// TestHostLatchesRefusedSubmit is the regression test for silently
// discarded submissions: a hosted loop on a canceled tenant context
// used to drop every part without a trace.  The host must latch the
// first refusal and expose it through Err.
func TestHostLatchesRefusedSubmit(t *testing.T) {
	pool, err := core.NewPool(core.PoolConfig{Workers: 2, MaxContexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	ctx, err := pool.NewContext(core.ContextConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	h := On(ctx)
	ctx.Cancel()
	ran := make([]bool, 8)
	h.ParallelFor(len(ran), func(part int) { ran[part] = true })
	if h.Err() == nil {
		t.Fatal("Err is nil after ParallelFor on a canceled context")
	}
}
