// Package forkjoin implements the "threaded BLAS" baselines of Fig. 11
// and Fig. 12: parallel Cholesky and GEMM on flat matrices in the style
// of multithreaded Goto BLAS / MKL — each step forks a parallel loop
// over panel partitions and joins at a barrier before the next step.
//
// This structure is exactly why the paper's threaded baselines stop
// scaling on Cholesky ("the MKL parallelization does not scale beyond 4
// processors and the Goto parallelization does not scale beyond 10",
// §VI.A): the factorization step of each panel is sequential, and every
// join discards cross-step overlap that SMPSs' dependency graph retains.
package forkjoin

import (
	"sync"

	"repro/internal/core"
	"repro/internal/kernels"
)

// pfor runs body(part) for part = 0..parts-1 in parallel and joins.  It
// abstracts the fork-join substrate: goroutines for the standalone
// baseline, a core.Context for the pool-hosted one.  Either way the
// model's defining property — a barrier after every parallel loop — is
// preserved; that is exactly what the paper blames for the threaded
// BLAS scaling collapse (§VI.A).
type pfor func(parts int, body func(part int))

// goPF is the standalone substrate: ad-hoc goroutines, up to threads of
// them, joined with a WaitGroup.
func goPF(threads int) pfor {
	return func(parts int, body func(part int)) { parallelFor(parts, threads, body) }
}

// parallelFor runs body(part) for part = 0..parts-1 on up to threads
// goroutines and joins.
func parallelFor(parts, threads int, body func(part int)) {
	if threads <= 1 || parts <= 1 {
		for p := 0; p < parts; p++ {
			body(p)
		}
		return
	}
	if threads > parts {
		threads = parts
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				p := next
				next++
				mu.Unlock()
				if p >= parts {
					return
				}
				body(p)
			}
		}()
	}
	wg.Wait()
}

// forPart executes one partition of a hosted parallel loop on a pool
// worker.  The loop's tasks carry no dependency arguments — fork-join
// synchronizes with barriers, not a graph — so they are all immediately
// ready.
var forPart = core.NewTaskDef("forkjoin_part", func(a *core.Args) {
	a.Opaque(0).(func(int))(a.Int(1))
})

// Host runs the fork-join model as one tenant of a shared pool: every
// parallel loop becomes a batch of independent context tasks followed
// by a context barrier, executed by the pool's workers alongside other
// tenants' tasks.  The caller of Host methods must be the context's
// single submitter; unlike the spawn-inside-task models, fork-join
// loops fork only from the driving thread, so no pump is needed.
type Host struct {
	ctx *core.Context
	// err latches the first refusal.  Once the context refuses a
	// submission (closed or tenant canceled) every later one fails the
	// same way, and parts already accepted may be cancel-skipped, so
	// the loop results can no longer be trusted; ParallelFor stops
	// submitting and drivers must check Err.
	err error
}

// On hosts the fork-join model on an existing context.  The Host does
// not own the context; closing it remains the caller's job.
func On(ctx *core.Context) *Host { return &Host{ctx: ctx} }

// Err returns the first refused submission or failed barrier latched
// by the host, or nil.  After a non-nil Err the results of past and
// future ParallelFor calls are not trustworthy: parts may have been
// skipped.
func (h *Host) Err() error { return h.err }

// threads is the effective parallelism used to size loop partitions:
// the pool's dedicated workers plus the submitting thread (which the
// pool turns into a worker whenever it blocks in the barrier).
func (h *Host) threads() int { return h.ctx.Pool().Workers() + 1 }

// ParallelFor runs body(part) for part = 0..parts-1 on the shared pool
// and joins at a context barrier.
func (h *Host) ParallelFor(parts int, body func(part int)) {
	if parts <= 1 {
		for p := 0; p < parts; p++ {
			body(p)
		}
		return
	}
	for p := 0; p < parts; p++ {
		if err := h.ctx.Submit(forPart, core.Opaque(body), core.Value(p)); err != nil {
			if h.err == nil {
				h.err = err
			}
			break
		}
	}
	if err := h.ctx.Barrier(); err != nil && h.err == nil {
		h.err = err
	}
}

// Gemm is Gemm on the host's shared pool.
func (h *Host) Gemm(a, b, c []float32, n int, p kernels.Provider) {
	gemmWith(a, b, c, n, h.threads(), h.ParallelFor, p)
}

// Cholesky is Cholesky on the host's shared pool.
func (h *Host) Cholesky(a []float32, n, m int, p kernels.Provider) bool {
	return choleskyWith(a, n, m, h.ParallelFor, p)
}

// Gemm computes C += A·B on flat n×n matrices with a row-partitioned
// parallel loop — the embarrassingly parallel case where threaded BLAS
// has a "very good and smooth response versus the number of threads"
// (paper §VI.B).  The per-strip arithmetic uses the given kernel
// provider's loop discipline, so both a "threaded Goto" and a "threaded
// MKL" baseline series exist.
func Gemm(a, b, c []float32, n, threads int, p kernels.Provider) {
	gemmWith(a, b, c, n, threads, goPF(threads), p)
}

// gemmWith is Gemm over an explicit fork-join substrate; threads only
// sizes the partitioning.
func gemmWith(a, b, c []float32, n, threads int, pf pfor, p kernels.Provider) {
	if p.GemmNNS != nil {
		// Packed provider: its discipline is the tile kernel itself, so
		// the honest threaded baseline drives it over staged blocks.
		gemmBlocked(a, b, c, n, pf, p)
		return
	}
	parts := threads * 4 // over-partition for balance
	if parts > n {
		parts = n
	}
	fast := p.Name != kernels.Ref.Name
	pf(parts, func(part int) {
		lo := part * n / parts
		hi := (part + 1) * n / parts
		if fast {
			// The streaming i-k-j discipline of gemmNNFast (and like it,
			// no zero-skip on aik).
			for i := lo; i < hi; i++ {
				ci := c[i*n : i*n+n]
				for k := 0; k < n; k++ {
					aik := a[i*n+k]
					bk := b[k*n : k*n+n]
					for j := range ci {
						ci[j] += aik * bk[j]
					}
				}
			}
			return
		}
		// Textbook i-j-k order (the slower provider's discipline).
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				var s float32
				for k := 0; k < n; k++ {
					s += a[i*n+k] * b[k*n+j]
				}
				c[i*n+j] += s
			}
		}
	})
}

// gemmBlocked is the threaded baseline for providers built on a packed
// micro-kernel engine (kernels.Tuned): C is partitioned into bm×bm
// tiles, each row strip of tiles is one parallel part, and every tile
// product goes through the provider's real square tile kernel over
// staged contiguous copies — the structure of a threaded BLAS whose
// serial kernels pack internally.  Tiles past the matrix edge are
// zero-padded (exact: padded lanes contribute zero) and only the valid
// window is written back.
func gemmBlocked(a, b, c []float32, n int, pf pfor, p kernels.Provider) {
	bm := 256
	if bm > n {
		bm = n
	}
	nb := (n + bm - 1) / bm
	pf(nb, func(bi int) {
		// One staging set per strip, reused across every tile product.
		ab := make([]float32, bm*bm)
		bb := make([]float32, bm*bm)
		cc := make([]float32, bm*bm)
		ilo := bi * bm
		for bj := 0; bj < nb; bj++ {
			jlo := bj * bm
			packTile(cc, c, n, ilo, jlo, bm)
			for bk := 0; bk < nb; bk++ {
				klo := bk * bm
				packTile(ab, a, n, ilo, klo, bm)
				packTile(bb, b, n, klo, jlo, bm)
				p.GemmNN(ab, bb, cc, bm)
			}
			unpackTile(cc, c, n, ilo, jlo, bm)
		}
	})
}

// packTile copies the window of a at (rlo, clo) into the m×m buffer
// dst, zero-padding rows and columns past the matrix edge.
func packTile(dst, a []float32, n, rlo, clo, m int) {
	w := m
	if clo+w > n {
		w = n - clo
	}
	rows := m
	if rlo+rows > n {
		rows = n - rlo
	}
	if rows < m || w < m { // edge tile: clear the padding lanes
		for i := range dst {
			dst[i] = 0
		}
	}
	for r := 0; r < rows; r++ {
		copy(dst[r*m:r*m+w], a[(rlo+r)*n+clo:(rlo+r)*n+clo+w])
	}
}

// unpackTile writes the valid window of an m×m tile back into a.
func unpackTile(src, a []float32, n, rlo, clo, m int) {
	w := m
	if clo+w > n {
		w = n - clo
	}
	for r := 0; r < m && rlo+r < n; r++ {
		copy(a[(rlo+r)*n+clo:(rlo+r)*n+clo+w], src[r*m:r*m+w])
	}
}

// Cholesky factors the lower triangle of the flat n×n SPD matrix A in
// place using a right-looking blocked algorithm with block size m:
//
//	for each panel k:
//	  potrf(A[k][k])                       // sequential
//	  parallel-for i>k: trsm(A[k][k], A[i][k])
//	  barrier
//	  parallel-for i≥j>k: A[i][j] -= A[i][k]·A[j][k]ᵀ
//	  barrier
//
// It returns false if A is not positive definite.  The trailing-update
// arithmetic follows the given provider's loop discipline.
func Cholesky(a []float32, n, m, threads int, p kernels.Provider) bool {
	return choleskyWith(a, n, m, goPF(threads), p)
}

// choleskyWith is Cholesky over an explicit fork-join substrate.
func choleskyWith(a []float32, n, m int, pf pfor, p kernels.Provider) bool {
	fast := p.Name != kernels.Ref.Name
	nb := (n + m - 1) / m
	blk := func(i int) (lo, sz int) {
		lo = i * m
		sz = m
		if lo+sz > n {
			sz = n - lo
		}
		return
	}
	// Views into the flat matrix are handled with explicit strides; the
	// tile kernels need contiguous blocks, so panels are staged through
	// scratch copies (what a flat-storage threaded BLAS does internally
	// with packing buffers).
	ok := true
	for k := 0; k < nb; k++ {
		klo, ksz := blk(k)
		// Factor the diagonal block (sequential step).
		diag := packBlock(a, n, klo, klo, ksz)
		if !kernels.CholeskyFlat(diag, ksz) {
			ok = false
			break
		}
		unpackBlock(diag, a, n, klo, klo, ksz)
		// Panel solve below the diagonal.
		pf(nb-k-1, func(part int) {
			i := k + 1 + part
			ilo, isz := blk(i)
			bb := packRect(a, n, ilo, klo, isz, ksz)
			trsmRect(diag, bb, isz, ksz)
			unpackRect(bb, a, n, ilo, klo, isz, ksz)
		})
		// Trailing update (barrier implied by parallelFor join).
		type ij struct{ i, j int }
		var updates []ij
		for i := k + 1; i < nb; i++ {
			for j := k + 1; j <= i; j++ {
				updates = append(updates, ij{i, j})
			}
		}
		pf(len(updates), func(part int) {
			u := updates[part]
			ilo, isz := blk(u.i)
			jlo, jsz := blk(u.j)
			ai := packRect(a, n, ilo, klo, isz, ksz)
			aj := packRect(a, n, jlo, klo, jsz, ksz)
			cc := packRect(a, n, ilo, jlo, isz, jsz)
			if fast && isz == ksz && jsz == ksz {
				// Square interior block: use the provider's tile kernel.
				p.GemmNT(ai, aj, cc, ksz)
			} else {
				// cc -= ai·ajᵀ (edge blocks and the slow provider).
				for r := 0; r < isz; r++ {
					for c := 0; c < jsz; c++ {
						var s float32
						for x := 0; x < ksz; x++ {
							s += ai[r*ksz+x] * aj[c*ksz+x]
						}
						cc[r*jsz+c] -= s
					}
				}
			}
			unpackRect(cc, a, n, ilo, jlo, isz, jsz)
		})
	}
	return ok
}

// trsmRect solves X·Lᵀ = B in place of B for a rows×cols rectangular B
// against the cols×cols lower-triangular L.
func trsmRect(l, b []float32, rows, cols int) {
	for r := 0; r < rows; r++ {
		br := b[r*cols : r*cols+cols]
		for c := 0; c < cols; c++ {
			s := br[c]
			for k := 0; k < c; k++ {
				s -= br[k] * l[c*cols+k]
			}
			br[c] = s / l[c*cols+c]
		}
	}
}

func packBlock(a []float32, n, rlo, clo, sz int) []float32 {
	return packRect(a, n, rlo, clo, sz, sz)
}

func packRect(a []float32, n, rlo, clo, rows, cols int) []float32 {
	out := make([]float32, rows*cols)
	for r := 0; r < rows; r++ {
		copy(out[r*cols:(r+1)*cols], a[(rlo+r)*n+clo:(rlo+r)*n+clo+cols])
	}
	return out
}

func unpackBlock(src, a []float32, n, rlo, clo, sz int) {
	unpackRect(src, a, n, rlo, clo, sz, sz)
}

func unpackRect(src, a []float32, n, rlo, clo, rows, cols int) {
	for r := 0; r < rows; r++ {
		copy(a[(rlo+r)*n+clo:(rlo+r)*n+clo+cols], src[r*cols:(r+1)*cols])
	}
}
