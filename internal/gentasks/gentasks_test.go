// End-to-end test of the cssc toolchain: the committed tasks_gen.go was
// produced by cmd/cssc from decls.css; these tests wire real kernel
// bodies into the generated hooks and run full algorithms through the
// generated Submit wrappers.
package gentasks

import (
	"os"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/cssc"
	"repro/internal/kernels"
)

const m = 16 // block size used by the test bodies

func initImpls() {
	p := kernels.Fast
	SgemmTImpl = func(a, b, c []float32) { p.GemmNT(a, b, c, m) }
	SpotrfTImpl = func(a []float32) {
		if !p.Potrf(a, m) {
			panic("not positive definite")
		}
	}
	StrsmTImpl = func(a, b []float32) { p.Trsm(a, b, m) }
	SsyrkTImpl = func(a, b []float32) { p.Syrk(a, b, m) }
	SeqquickImpl = func(data []int64, i, j int64) {
		d := data[i : j+1]
		sort.Slice(d, func(x, y int) bool { return d[x] < d[y] })
	}
	SeqmergeImpl = func(data []int64, i1, j1, i2, j2 int64, dest []int64) {
		a := data[i1 : j1+1]
		b := data[i2 : j2+1]
		out := dest[i1 : i1+int64(len(a)+len(b))]
		x, y, k := 0, 0, 0
		for x < len(a) && y < len(b) {
			if a[x] <= b[y] {
				out[k] = a[x]
				x++
			} else {
				out[k] = b[y]
				y++
			}
			k++
		}
		k += copy(out[k:], a[x:])
		copy(out[k:], b[y:])
	}
}

// TestGeneratedCholesky runs the Fig. 4 Cholesky through the generated
// wrappers and checks the factor.
func TestGeneratedCholesky(t *testing.T) {
	initImpls()
	const n = 4 // blocks per dimension
	dim := n * m
	spd := kernels.GenSPD(dim, 21)
	want := append([]float32(nil), spd...)
	if !kernels.CholeskyFlat(want, dim) {
		t.Fatalf("reference failed")
	}

	// Block the matrix.
	blocks := make([][][]float32, n)
	for i := range blocks {
		blocks[i] = make([][]float32, n)
		for j := range blocks[i] {
			blk := make([]float32, m*m)
			for r := 0; r < m; r++ {
				copy(blk[r*m:(r+1)*m], spd[(i*m+r)*dim+j*m:(i*m+r)*dim+j*m+m])
			}
			blocks[i][j] = blk
		}
	}

	rt := core.New(core.Config{Workers: 8})
	for j := 0; j < n; j++ {
		for k := 0; k < j; k++ {
			for i := j + 1; i < n; i++ {
				SubmitSgemmT(rt, blocks[i][k], blocks[j][k], blocks[i][j])
			}
		}
		for i := 0; i < j; i++ {
			SubmitSsyrkT(rt, blocks[j][i], blocks[j][j])
		}
		SubmitSpotrfT(rt, blocks[j][j])
		for i := j + 1; i < n; i++ {
			SubmitStrsmT(rt, blocks[j][j], blocks[i][j])
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	got := make([]float32, dim*dim)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for r := 0; r < m; r++ {
				copy(got[(i*m+r)*dim+j*m:(i*m+r)*dim+j*m+m], blocks[i][j][r*m:(r+1)*m])
			}
		}
	}
	if d := kernels.LowerMaxAbsDiff(want, got, dim); d > 1e-2 {
		t.Fatalf("generated-wrapper Cholesky off by %g", d)
	}
}

// TestGeneratedSortMerge runs the Fig. 7 region tasks through the
// generated wrappers.
func TestGeneratedSortMerge(t *testing.T) {
	initImpls()
	rt := core.New(core.Config{Workers: 4})
	defer rt.Close()
	data := []int64{9, 3, 7, 1, 8, 2, 6, 4}
	dest := make([]int64, 8)
	SubmitSeqquick(rt, data, 0, 3)
	SubmitSeqquick(rt, data, 4, 7)
	SubmitSeqmerge(rt, data, 0, 3, 4, 7, dest)
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, 3, 4, 6, 7, 8, 9}
	for i := range want {
		if dest[i] != want[i] {
			t.Fatalf("dest = %v, want %v", dest, want)
		}
	}
}

// TestGeneratedFileInSync regenerates from decls.css and compares with
// the committed tasks_gen.go, so the two cannot drift.
func TestGeneratedFileInSync(t *testing.T) {
	src, err := os.ReadFile("decls.css")
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := cssc.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := cssc.Generate(tasks, cssc.Options{Package: "gentasks", Typedefs: map[string]string{"ELM": "int64"}})
	if err != nil {
		t.Fatal(err)
	}
	committed, err := os.ReadFile("tasks_gen.go")
	if err != nil {
		t.Fatal(err)
	}
	if string(fresh) != string(committed) {
		t.Fatalf("tasks_gen.go is stale; regenerate with:\n  go run ./cmd/cssc -pkg gentasks -typedef ELM=int64 -o internal/gentasks/tasks_gen.go internal/gentasks/decls.css")
	}
}

// TestHighPriorityPropagated checks the highpriority clause reached the
// generated definition.
func TestHighPriorityPropagated(t *testing.T) {
	if !SpotrfT.HighPriority {
		t.Fatalf("spotrf_t must be generated as high priority")
	}
	if SgemmT.HighPriority {
		t.Fatalf("sgemm_t must not be high priority")
	}
}
