package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestPoolSharedByConcurrentContexts is the multi-tenancy canary: eight
// contexts submit dependency chains concurrently on one shared pool
// (run under -race), and every context's results must match the
// sequential semantics of its own program, untouched by its neighbours.
func TestPoolSharedByConcurrentContexts(t *testing.T) {
	const (
		clients = 8
		chains  = 4
		depth   = 60
	)
	pool, err := NewPool(PoolConfig{Workers: 4, MaxContexts: clients})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for k := 0; k < clients; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c, err := pool.NewContext(ContextConfig{GraphLimit: 64})
			if err != nil {
				errs[k] = err
				return
			}
			defer c.Close()
			// Each client owns its data: chains of fill + repeated scale,
			// whose final values depend on every link running in order.
			bufs := make([][]float32, chains)
			seed := float32(k + 2)
			for i := range bufs {
				bufs[i] = make([]float32, 16)
				c.Submit(fillDef, Out(bufs[i]), Value(float64(seed)))
				for d := 0; d < depth; d++ {
					c.Submit(scaleDef, InOut(bufs[i]), Value(1.01))
				}
			}
			if err := c.Barrier(); err != nil {
				errs[k] = err
				return
			}
			want := seed
			for d := 0; d < depth; d++ {
				want *= 1.01
			}
			for i := range bufs {
				for j, got := range bufs[i] {
					if got != want {
						t.Errorf("client %d chain %d[%d] = %g, want %g", k, i, j, got, want)
						return
					}
				}
			}
			st := c.Stats()
			if st.TasksExecuted != chains*(depth+1) {
				t.Errorf("client %d executed %d tasks, want %d", k, st.TasksExecuted, chains*(depth+1))
			}
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", k, err)
		}
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBarrierIsolation pins the fairness contract: a barrier in one
// context completes while another context still has an open (running)
// task, because barriers only wait on their own context's outstanding
// work and the submitter's helping never executes another tenant's
// tasks.
func TestBarrierIsolation(t *testing.T) {
	pool, err := NewPool(PoolConfig{Workers: 2, MaxContexts: 2})
	if err != nil {
		t.Fatal(err)
	}
	slow, fast := mustCtx(t, pool), mustCtx(t, pool)

	started := make(chan struct{})
	release := make(chan struct{})
	blocker := NewTaskDef("blocker", func(a *Args) {
		close(started)
		<-release
	})
	sbuf := make([]float32, 4)
	if err := slow.Submit(blocker, InOut(sbuf)); err != nil {
		t.Fatal(err)
	}
	<-started // the slow context's task is now occupying a pool worker

	fbuf := make([]float32, 8)
	fast.Submit(fillDef, Out(fbuf), Value(3.0))
	for i := 0; i < 16; i++ {
		fast.Submit(scaleDef, InOut(fbuf), Value(2.0))
	}
	done := make(chan error, 1)
	go func() { done <- fast.Barrier() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("fast context's barrier stuck behind the slow context's open task")
	}
	if open := slow.Stats().TasksExecuted; open != 0 {
		t.Fatalf("slow context completed %d tasks while blocked", open)
	}
	close(release)
	if err := slow.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fast.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStatsIsolation pins per-context accounting: two tenants with
// different workloads on one pool report exactly their own task,
// rename and scheduler counters — nothing bleeds across.
func TestStatsIsolation(t *testing.T) {
	pool, err := NewPool(PoolConfig{Workers: 2, MaxContexts: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, b := mustCtx(t, pool), mustCtx(t, pool)

	abuf := make([]float32, 8)
	const aTasks = 40
	for i := 0; i < aTasks; i++ {
		a.Submit(scaleDef, InOut(abuf), Value(1.0))
	}
	if err := a.Barrier(); err != nil {
		t.Fatal(err)
	}

	// Context b forces renames: writers over a still-read buffer.
	bx, by := make([]float32, 8), make([]float32, 8)
	const bRounds = 10
	for i := 0; i < bRounds; i++ {
		b.Submit(fillDef, Out(bx), Value(float64(i)))
		b.Submit(axpyDef, In(bx), InOut(by), Value(1.0))
	}
	if err := b.Barrier(); err != nil {
		t.Fatal(err)
	}

	sa, sb := a.Stats(), b.Stats()
	if sa.TasksSubmitted != aTasks || sa.TasksExecuted != aTasks {
		t.Fatalf("context a counted %d/%d tasks, want %d", sa.TasksSubmitted, sa.TasksExecuted, aTasks)
	}
	if sb.TasksSubmitted != 2*bRounds || sb.TasksExecuted != 2*bRounds {
		t.Fatalf("context b counted %d/%d tasks, want %d", sb.TasksSubmitted, sb.TasksExecuted, 2*bRounds)
	}
	if sa.Renames != 0 {
		t.Fatalf("context a reports %d renames from context b's workload", sa.Renames)
	}
	if sa.Deps.Objects != 1 || sb.Deps.Objects != 2 {
		t.Fatalf("tracked objects bleed: a=%d (want 1), b=%d (want 2)", sa.Deps.Objects, sb.Deps.Objects)
	}
	pushesA := sa.Sched.PushHigh + sa.Sched.PushOwn + sa.Sched.PushMain
	pushesB := sb.Sched.PushHigh + sb.Sched.PushOwn + sb.Sched.PushMain
	if pushesA != aTasks || pushesB != 2*bRounds {
		t.Fatalf("scheduler pushes bleed: a=%d (want %d), b=%d (want %d)",
			pushesA, aTasks, pushesB, 2*bRounds)
	}
	closeAll(t, pool, a, b)
}

// TestClosedSubmissionTypedErrors pins the error contract: submissions
// to a closed context (and context creation on a closed pool) return a
// ClosedError instead of panicking.
func TestClosedSubmissionTypedErrors(t *testing.T) {
	pool, err := NewPool(PoolConfig{Workers: 1, MaxContexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := mustCtx(t, pool)
	buf := make([]float32, 4)
	batch := c.NewBatch()
	batch.Add(fillDef, Out(buf), Value(1.0))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	var ce *ClosedError
	if err := c.Submit(fillDef, Out(buf), Value(1.0)); !errors.As(err, &ce) || ce.Entity != "context" {
		t.Fatalf("Submit on closed context: %v, want *ClosedError{context}", err)
	}
	if err := c.SubmitBatch(Call(fillDef, Out(buf), Value(1.0))); !errors.As(err, &ce) {
		t.Fatalf("SubmitBatch on closed context: %v, want *ClosedError", err)
	}
	if err := batch.Submit(); !errors.As(err, &ce) {
		t.Fatalf("Batch.Submit on closed context: %v, want *ClosedError", err)
	}
	if batch.Len() != 0 {
		t.Fatalf("failed Batch.Submit must still reset the batch, Len = %d", batch.Len())
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.NewContext(ContextConfig{}); !errors.As(err, &ce) || ce.Entity != "pool" {
		t.Fatalf("NewContext on closed pool: %v, want *ClosedError{pool}", err)
	}
}

// TestPoolSizingValidation pins the one-place sizing rules: negative
// counts are typed configuration errors, zero values pick the defaults,
// and context slots are a hard, recycled capacity.
func TestPoolSizingValidation(t *testing.T) {
	var cfgErr *ConfigError
	if _, err := NewPool(PoolConfig{Workers: -1}); !errors.As(err, &cfgErr) || cfgErr.Field != "Workers" {
		t.Fatalf("Workers=-1: %v, want *ConfigError{Workers}", err)
	}
	if _, err := NewPool(PoolConfig{MaxContexts: -2}); !errors.As(err, &cfgErr) || cfgErr.Field != "MaxContexts" {
		t.Fatalf("MaxContexts=-2: %v, want *ConfigError{MaxContexts}", err)
	}
	if _, err := NewPool(PoolConfig{Workers: 1, MaxContexts: maxPoolSlots}); !errors.As(err, &cfgErr) {
		t.Fatalf("oversized slots: %v, want *ConfigError", err)
	}

	pool, err := NewPool(PoolConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pool.MaxContexts() != DefaultMaxContexts {
		t.Fatalf("MaxContexts defaulted to %d, want %d", pool.MaxContexts(), DefaultMaxContexts)
	}

	// Exhaust the slots, then show closing one recycles it.
	ctxs := make([]*Context, 0, DefaultMaxContexts)
	for i := 0; i < DefaultMaxContexts; i++ {
		ctxs = append(ctxs, mustCtx(t, pool))
	}
	if _, err := pool.NewContext(ContextConfig{}); !errors.As(err, &cfgErr) || cfgErr.Field != "MaxContexts" {
		t.Fatalf("slot exhaustion: %v, want *ConfigError{MaxContexts}", err)
	}
	if err := ctxs[3].Close(); err != nil {
		t.Fatal(err)
	}
	reused, err := pool.NewContext(ContextConfig{})
	if err != nil {
		t.Fatalf("slot not recycled after Close: %v", err)
	}
	ctxs[3] = reused

	// Close refuses while tenants are attached, so no tasks strand.
	if err := pool.Close(); !errors.As(err, &cfgErr) || cfgErr.Field != "Contexts" {
		t.Fatalf("Close with open contexts: %v, want *ConfigError{Contexts}", err)
	}
	closeAll(t, pool, ctxs...)
}

// TestSharedTracerCarriesContextDimension checks a tracer shared by two
// contexts separates their events by context id, so the merged Paraver
// timeline stays attributable.
func TestSharedTracerCarriesContextDimension(t *testing.T) {
	tr := trace.New()
	pool, err := NewPool(PoolConfig{Workers: 1, MaxContexts: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := pool.NewContext(ContextConfig{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.NewContext(ContextConfig{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	abuf, bbuf := make([]float32, 4), make([]float32, 4)
	a.Submit(fillDef, Out(abuf), Value(1.0))
	b.Submit(fillDef, Out(bbuf), Value(2.0))
	closeAll(t, pool, a, b)

	perCtx := map[int]int{}
	for _, ev := range tr.Events() {
		if ev.Type == trace.EvStart {
			perCtx[ev.Ctx]++
		}
	}
	if perCtx[a.ID()] != 1 || perCtx[b.ID()] != 1 {
		t.Fatalf("start events per context = %v, want one for ctx %d and one for ctx %d",
			perCtx, a.ID(), b.ID())
	}
}

// TestRuntimeAndPoolCoexist runs a private Runtime while a shared pool
// serves a context, exercising two independent instances of the whole
// stack in one process.
func TestRuntimeAndPoolCoexist(t *testing.T) {
	rt := New(Config{Workers: 2})
	pool, err := NewPool(PoolConfig{Workers: 1, MaxContexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := mustCtx(t, pool)
	rbuf, cbuf := make([]float32, 8), make([]float32, 8)
	rt.Submit(fillDef, Out(rbuf), Value(5.0))
	c.Submit(fillDef, Out(cbuf), Value(7.0))
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	closeAll(t, pool, c)
	if rbuf[0] != 5 || cbuf[0] != 7 {
		t.Fatalf("results crossed: runtime %g (want 5), context %g (want 7)", rbuf[0], cbuf[0])
	}
}

func mustCtx(t *testing.T, p *Pool) *Context {
	t.Helper()
	c, err := p.NewContext(ContextConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func closeAll(t *testing.T, p *Pool, ctxs ...*Context) {
	t.Helper()
	for _, c := range ctxs {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSharedStorageCrossTenantReuse pins the deterministic half of the
// multi-tenant acceptance: renamed storage freed by one tenant's
// drained graph warms the next tenant's renames through the pool's
// shared store.  The hazards are engineered (readers gated on a
// channel), so every write renames and the counts are exact.
func TestSharedStorageCrossTenantReuse(t *testing.T) {
	pool, err := NewPool(PoolConfig{Workers: 1, MaxContexts: 2})
	if err != nil {
		t.Fatal(err)
	}
	const objs, n = 4, 1024
	churn := func(c *Context) Stats {
		gate := make(chan struct{})
		consume := NewTaskDef("gated_consume", func(a *Args) { <-gate })
		bufs := make([][]float32, objs)
		for i := range bufs {
			bufs[i] = make([]float32, n)
			if err := c.Submit(consume, In(bufs[i])); err != nil {
				t.Fatal(err)
			}
			// The reader is gated, so this write's hazard is certainly
			// live: the tracker must rename.
			if err := c.Submit(fillDef, Out(bufs[i]), Value(1.0)); err != nil {
				t.Fatal(err)
			}
		}
		close(gate)
		if err := c.Barrier(); err != nil {
			t.Fatal(err)
		}
		st := c.Stats()
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		return st
	}

	first := churn(mustCtx(t, pool))
	if first.Renames != objs {
		t.Fatalf("first tenant renamed %d times, want %d", first.Renames, objs)
	}
	if first.PoolHits != 0 {
		t.Fatalf("first tenant hit the empty store %d times", first.PoolHits)
	}
	if first.LiveRenamedBytes != 0 {
		t.Fatalf("first tenant leaks %d live renamed bytes after barrier", first.LiveRenamedBytes)
	}

	second := churn(mustCtx(t, pool))
	if second.Renames != objs {
		t.Fatalf("second tenant renamed %d times, want %d", second.Renames, objs)
	}
	if second.PoolHits != objs || second.PoolMisses != 0 {
		t.Fatalf("second tenant hits/misses = %d/%d, want %d/0 (reusing the first tenant's storage)",
			second.PoolHits, second.PoolMisses, objs)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRuntimeBatchKeepsClosedPanic pins Runtime API parity: a batch
// obtained from Runtime.NewBatch still panics on Submit after Close
// (Context batches return the typed error instead).
func TestRuntimeBatchKeepsClosedPanic(t *testing.T) {
	rt := New(Config{Workers: 1})
	b := rt.NewBatch()
	b.Add(fillDef, Out(make([]float32, 1)), Value(0.0))
	rt.Close()
	defer func() {
		if recover() == nil {
			t.Fatalf("Batch.Submit after Runtime.Close must panic")
		}
	}()
	b.Submit()
}
