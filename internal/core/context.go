package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/deps"
	"repro/internal/graph"
	"repro/internal/sched"
	"repro/internal/trace"
)

// FailurePolicy selects what happens to the dependents of a failed
// task (a body that panicked or called Args.Fail).
type FailurePolicy int

const (
	// FailContinue (the default) runs dependents of a failed task
	// anyway: the failure is latched and reported at the next
	// Barrier/WaitOn/Close, but the graph keeps executing.  Dependents
	// may read garbage data — this is the seed runtime's behavior.
	FailContinue FailurePolicy = iota
	// FailPoison skips the transitive dependents of a failed task:
	// each is completed without running its body (so edges, refcounts
	// and pooled rename storage still drain) and counted in
	// Stats.Poisoned.
	FailPoison
)

// String returns the policy name.
func (p FailurePolicy) String() string {
	switch p {
	case FailContinue:
		return "continue"
	case FailPoison:
		return "poison"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ContextConfig parameterizes one Context on a shared pool.  The fields
// mirror the graph-state half of Config; worker-count and wakeup
// machinery live in PoolConfig.
type ContextConfig struct {
	// Scheduler selects the context's scheduling policy; default
	// SchedLocality.  Each context has its own policy instance, so
	// tenants with different policies can share one pool.
	Scheduler SchedulerKind
	// Locality gates this context's locality layer (affinity hints and
	// successor chaining; see Config.Locality).  Per-context: tenants
	// with and without it coexist on one pool.
	Locality LocalityConfig
	// DisableRenaming turns off the renaming engine, materializing
	// WAR/WAW hazards as real edges (ablation).
	DisableRenaming bool
	// LegacyRenaming restores the seed runtime's rename lifecycle
	// (ablation baseline; see Config.LegacyRenaming).
	LegacyRenaming bool
	// GraphLimit bounds the number of open (submitted, not completed)
	// tasks before Submit throttles.  Zero selects DefaultGraphLimit;
	// negative disables throttling.
	GraphLimit int
	// TrackerShards sets the dependency tracker's lock-stripe count
	// (see Config.TrackerShards).
	TrackerShards int
	// UnbatchedAnalysis selects the per-parameter lock round-trip
	// submission path (ablation; see Config.UnbatchedAnalysis).
	UnbatchedAnalysis bool
	// MemoryLimit bounds the bytes of live renamed storage belonging to
	// this context; when exceeded, the submitting thread executes tasks
	// until renamed memory is released (paper §III).  Zero disables the
	// limit.  The limit is per-context even though the recycling store
	// behind it is shared.
	MemoryLimit int64
	// Tracer, when non-nil, records task lifecycle events.  A tracer
	// may be shared by several contexts; events carry the context id.
	Tracer *trace.Tracer
	// Recorder, when non-nil, retains the full task graph for export.
	Recorder *graph.Recorder
	// OnFailure selects the fate of a failed task's dependents:
	// FailContinue (default, run them anyway) or FailPoison (skip and
	// count them).
	OnFailure FailurePolicy
	// Deadline, when positive, cancels the context that long after
	// creation exactly as Context.Cancel would: remaining tasks drain
	// as canceled skips and Barrier/WaitOn/Close return a
	// CanceledError.  Zero means no deadline.
	Deadline time.Duration
}

// Context is one tenant of a shared Pool: a task graph, a dependency
// tracker, barrier/WaitOn state, graph- and memory-limit throttling,
// statistics and an optional tracer.  Contexts are independent — a
// barrier in one context never waits on another context's tasks, and
// counters never bleed between contexts — while their ready tasks are
// served by the pool's workers under round-robin fair dispatch.
//
// The single-submitter contract: each Context belongs to exactly one
// submitting goroutine.  All calls to Submit, SubmitBatch, Batch
// methods, Barrier, WaitOn and Close must come from that goroutine;
// task bodies run on the pool's workers and must not submit to any
// context.  Different contexts may submit concurrently from different
// goroutines — that is the point of the pool — but one context must
// never be driven from two.
type Context struct {
	pool *Pool
	cfg  ContextConfig
	// slot is the submitter's worker identity (== the context's slot in
	// the pool's context table, below MaxContexts).
	slot int
	// id is the context's stable trace identity, unique for the life of
	// the pool (slots are recycled; ids are not).
	id int

	g     *graph.Graph
	tr    *deps.Tracker
	q     *sched.Client
	tracr *trace.Tracer

	outstanding  atomic.Int64
	submitted    atomic.Int64
	executed     atomic.Int64
	mainHelped   atomic.Int64
	syncCopies   atomic.Int64
	waiters      atomic.Int64
	renamedBytes atomic.Int64
	chainHits    atomic.Int64
	failures     atomic.Int64
	poisonSkips  atomic.Int64
	cancelSkips  atomic.Int64

	// errMu guards the two sticky error latches.  firstErr is the first
	// task failure (clearable with ClearErr); cancelErr is set once by
	// cancel and never cleared.  cancelErr is always stored before the
	// canceled flag, so any reader that observes the flag finds the
	// error.
	errMu     sync.Mutex
	firstErr  error
	cancelErr error

	canceled atomic.Bool
	closed   atomic.Bool
	// deadline is the ContextConfig.Deadline timer, stopped at Close.
	deadline *time.Timer

	// Submission scratch reused across Submit/SubmitBatch calls to keep
	// the per-task tracker entry allocation-free.  Guarded by the
	// single-submitter contract.
	accBuf []deps.Access
	resBuf []deps.Resolution
	ixBuf  []int
}

// NewContext attaches a new context to the pool.  It returns a
// ClosedError if the pool is closed and a ConfigError if every context
// slot is in use.
func (p *Pool) NewContext(cfg ContextConfig) (*Context, error) {
	if cfg.GraphLimit == 0 {
		cfg.GraphLimit = DefaultGraphLimit
	}
	c := &Context{pool: p, cfg: cfg, tracr: cfg.Tracer}
	slot, err := p.attach(c)
	if err != nil {
		return nil, err
	}
	c.slot = slot
	c.id = int(p.nextCtxID.Add(1)) - 1
	c.q = p.mux.Attach(p.policyFor(cfg.Scheduler), slot)
	c.g = graph.New(p.ready(c))
	if cfg.Recorder != nil {
		c.g.Attach(cfg.Recorder)
	}
	c.tr = deps.NewTrackerShards(c.g, cfg.TrackerShards)
	c.tr.ShareStorage(p.store)
	c.tr.DisableRenaming = cfg.DisableRenaming
	c.tr.LegacyRenaming = cfg.LegacyRenaming
	c.tr.AffinityHints = cfg.Locality.Affinity
	// Reclaimed renamed storage wakes this context's submitter when it
	// blocks on the memory limit — the parked wait's signal (paper §III).
	c.tr.SetReclaimHook(func() {
		if c.waiters.Load() > 0 {
			p.mux.Wake(c.slot)
		}
	})
	if cfg.Deadline > 0 {
		c.deadline = time.AfterFunc(cfg.Deadline, func() { c.cancel("deadline") })
	}
	return c, nil
}

// ID returns the context's stable identity within its pool (also the
// context dimension of its trace events).
func (c *Context) ID() int { return c.id }

// Pool returns the pool the context is attached to.
func (c *Context) Pool() *Pool { return c.pool }

// Closed reports whether the context has been closed.
func (c *Context) Closed() bool { return c.closed.Load() }

// Err returns the first task failure observed — a *TaskError wrapping
// the panic value or the error passed to Args.Fail — or nil.  The
// latch is sticky: it survives Barrier and is returned by every later
// Barrier/WaitOn/Close until ClearErr.  Runtime.Err has the identical
// contract.
func (c *Context) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.firstErr
}

// ClearErr clears the sticky task-failure latch, letting a tenant
// observe a failure at one Barrier and keep going.  Cancellation is
// not clearable: a canceled context stays canceled.
func (c *Context) ClearErr() {
	c.errMu.Lock()
	c.firstErr = nil
	c.errMu.Unlock()
}

func (c *Context) setErr(err error) {
	c.errMu.Lock()
	if c.firstErr == nil {
		c.firstErr = err
	}
	c.errMu.Unlock()
}

// Cancel aborts the context: no further submissions are admitted, and
// every task not yet started — queued, chained, or still blocked on
// predecessors — is drained as a canceled skip (completing normally
// for dependency, refcount and memory bookkeeping, but never running
// its body).  A submitter blocked in Barrier, WaitOn or a throttle is
// unparked; Barrier/WaitOn/Close return a *CanceledError.  Tasks whose
// bodies are already running are not interrupted, and co-tenants of
// the pool are untouched.  Cancel is idempotent and safe to call from
// any goroutine — it is the one Context entry point exempt from the
// single-submitter contract.
func (c *Context) Cancel() { c.cancel("cancel") }

func (c *Context) cancel(reason string) {
	c.errMu.Lock()
	if c.cancelErr == nil {
		c.cancelErr = &CanceledError{Ctx: c.id, Reason: reason}
	}
	c.errMu.Unlock()
	c.canceled.Store(true)
	// Unpark this context's submitter (blocked in Barrier/throttle) and
	// kick the pool so parked workers drain the already-queued tasks as
	// canceled skips.
	c.pool.mux.Wake(c.slot)
	c.pool.mux.Kick()
}

// Canceled reports whether the context has been canceled (by Cancel,
// its Deadline, or a pool Drain).
func (c *Context) Canceled() bool { return c.canceled.Load() }

// cancelError returns the cancellation latch, or nil.
func (c *Context) cancelError() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.cancelErr
}

// barrierErr is the error contract of Barrier/WaitOn/Close: the first
// task failure if one is latched, else the cancellation error, else
// nil.
func (c *Context) barrierErr() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	if c.firstErr != nil {
		return c.firstErr
	}
	return c.cancelErr
}

// Stats returns a snapshot of this context's counters.  Everything in
// it is per-context: the scheduler view is the context's own policy,
// and the rename counters come from the context's tracker, so no other
// tenant's activity appears here.  Pool-wide machinery counters
// (parking, shared free storage) live on Pool.Stats.
func (c *Context) Stats() Stats {
	d := c.tr.Stats()
	sc := c.q.Stats()
	// Chained tasks never touch the policy's queues; the runtime counts
	// them and folds the gauge into the scheduler view.
	sc.ChainHits = c.chainHits.Load()
	return Stats{
		TasksSubmitted:   c.submitted.Load(),
		TasksExecuted:    c.executed.Load(),
		Deps:             d,
		Sched:            sc,
		SyncBackCopies:   c.syncCopies.Load(),
		MainHelped:       c.mainHelped.Load(),
		Renames:          d.Renames,
		RenamesElided:    d.RenamesElided,
		PoolHits:         d.PoolHits,
		PoolMisses:       d.PoolMisses,
		LiveRenamedBytes: c.liveRenamedBytes(),
		Failures:         c.failures.Load(),
		Poisoned:         c.poisonSkips.Load(),
		Canceled:         c.cancelSkips.Load(),
	}
}

// liveRenamedBytes returns the memory-limit gauge: bytes of renamed
// storage alive in this context right now.  Under LegacyRenaming the
// seed's per-task accounting applies (bytes pinned by incomplete
// tasks); otherwise the tracker pool's acquire/release gauge, which
// also covers storage kept alive by diverged objects after their tasks
// completed.
func (c *Context) liveRenamedBytes() int64 {
	if c.cfg.LegacyRenaming {
		return c.renamedBytes.Load()
	}
	return c.tr.LiveRenamedBytes()
}

// Submit invokes a task: the runtime analyzes each parameter's
// directionality against the current state of its data, adds the task
// to the context's graph with its true dependencies, and schedules it
// on the shared pool as soon as they are satisfied.  Submit returns
// immediately unless one of the paper's §III blocking conditions holds
// (graph size limit, memory limit), in which case the calling thread
// executes this context's tasks until the condition clears.
//
// Submitting to a closed context returns a ClosedError; submitting to
// a canceled context returns its CanceledError.
func (c *Context) Submit(def *TaskDef, args ...Arg) error {
	if c.closed.Load() {
		return &ClosedError{Entity: "context", Op: "Submit"}
	}
	if c.canceled.Load() {
		return c.cancelError()
	}
	c.throttle()
	c.submitOne(def, args)
	return nil
}

// SubmitBatch submits a sequence of task invocations, equivalent to
// calling Submit once per element but with the per-call overhead
// amortized (see Runtime.SubmitBatch).  It returns a ClosedError — and
// submits nothing — if the context is closed.
func (c *Context) SubmitBatch(calls ...TaskCall) error {
	if c.closed.Load() {
		return &ClosedError{Entity: "context", Op: "SubmitBatch"}
	}
	if c.canceled.Load() {
		return c.cancelError()
	}
	for i := range calls {
		c.throttle()
		c.submitOne(calls[i].Def, calls[i].Args)
	}
	return nil
}

// NewBatch creates an empty reusable batch bound to the context.
func (c *Context) NewBatch() *Batch { return &Batch{c: c} }

// throttle blocks the submitting thread — executing this context's
// tasks meanwhile — while either of the paper's §III blocking
// conditions holds (graph size limit, memory limit).  The graph limit
// applies hysteresis: once hit, the submitter stays blocked until a
// quarter of the limit has drained, so it does not bounce across the
// threshold while the workers chew at the boundary.
//
// The memory limit is a parked wait, not a spin: when no task is
// available to help with, the submitter sleeps in the pool and is woken
// either by one of its tasks completing or by the tracker's reclaim
// hook the moment renamed storage returns to the store.  If the limit
// is still exceeded once every task has completed, the remaining live
// bytes belong to idle diverged objects that no completion can ever
// release — the context syncs them back (reclaiming their instances)
// and proceeds, since the limit is a blocking condition, not a hard cap.
//
// Throttling is per-context: a throttled tenant parks its own
// submitter and never blocks the pool's workers, so it cannot starve
// the other contexts.
func (c *Context) throttle() {
	if limit := int64(c.cfg.GraphLimit); limit > 0 {
		if c.g.Open() >= limit {
			low := limit - limit/4
			for c.g.Open() >= low {
				if !c.helpOnce(func() bool { return c.g.Open() < low }) {
					break
				}
			}
		}
	}
	if limit := c.cfg.MemoryLimit; limit > 0 {
		for c.liveRenamedBytes() >= limit {
			if c.outstanding.Load() == 0 {
				c.syncCopies.Add(int64(c.tr.SyncAll()))
				break
			}
			c.helpOnce(func() bool {
				return c.liveRenamedBytes() < limit || c.outstanding.Load() == 0
			})
		}
	}
}

// submitOne adds one task to the graph: all data parameters are resolved
// through a single batched tracker entry, then the node is sealed.
func (c *Context) submitOne(def *TaskDef, args []Arg) {
	node := c.g.AddNode(def.kind, def.Name, def.HighPriority, nil)
	rec := &taskRec{def: def, ctx: c, args: make([]boundArg, len(args))}
	node.Payload = rec
	accs := c.accBuf[:0]
	ixs := c.ixBuf[:0]
	for i := range args {
		a := &args[i]
		switch a.kind {
		case argValue, argOpaque:
			rec.args[i] = boundArg{kind: a.kind, instance: a.value}
		case argData:
			accs = append(accs, deps.Access{
				Key:    dataKey(a.data),
				Mode:   a.mode,
				Region: a.region,
				Data:   a.data,
				Alloc:  allocLike(a.data),
				Copy:   copyInto,
			})
			ixs = append(ixs, i)
		}
	}
	var ress []deps.Resolution
	if c.cfg.UnbatchedAnalysis {
		ress = c.resBuf[:0]
		for j := range accs {
			ress = append(ress, c.tr.Analyze(node, accs[j]))
		}
	} else {
		ress = c.tr.AnalyzeBatch(node, accs, c.resBuf[:0])
	}
	for j := range ress {
		res := &ress[j]
		i := ixs[j]
		if res.Renamed {
			if c.cfg.LegacyRenaming {
				// Seed accounting: the bytes pin against the task and
				// drain at its completion.  The pooled lifecycle
				// accounts on acquire/release inside the tracker.
				rec.renamedBytes += byteSize(args[i].data)
			}
			c.tracr.EmitCtx(c.id, c.slot, trace.EvRename, def.kind, def.Name, node.ID)
		}
		rec.args[i] = boundArg{
			kind:     argData,
			instance: res.Instance,
			copyFrom: res.CopyFrom,
			copyFn:   res.Copy,
		}
	}
	// Return the scratch to the context and drop the data references the
	// entries hold, so reuse does not pin user arrays.
	for j := range accs {
		accs[j] = deps.Access{}
	}
	for j := range ress {
		ress[j] = deps.Resolution{}
	}
	c.accBuf, c.resBuf, c.ixBuf = accs, ress, ixs
	c.submitted.Add(1)
	c.outstanding.Add(1)
	c.renamedBytes.Add(rec.renamedBytes)
	c.tracr.EmitCtx(c.id, c.slot, trace.EvCreate, def.kind, def.Name, node.ID)
	c.g.Seal(node)
}

// exec runs one task body on thread self, then — with successor
// chaining enabled — keeps running successors inline for as long as
// each completion releases exactly one ready task, up to
// Locality.ChainDepth per popped task.  A chained successor consumes
// the operands its predecessor just produced while they are still in
// this worker's cache, and pays no queue, wake, or steal traffic; it
// never entered the scheduler, so no thief can ever claim it.  Chains
// yield to queued high-priority work.
func (c *Context) exec(n *graph.Node, self int) {
	chained := 0
	for {
		if self == c.slot {
			// Only this context's submitter executes under its own slot
			// (restricted lookups never serve other tenants), so this is
			// the helped-while-blocked gauge — counted per task, so a
			// chaining helper reports every link it ran.
			c.mainHelped.Add(1)
		}
		c.g.MarkRunning(n)
		rec := n.Payload.(*taskRec)
		// A canceled tenant or a poisoned dependent skips the body —
		// including the renamed-inout seed copies, whose sources may be
		// garbage — but still completes the node below, so edges,
		// version refcounts and pooled rename storage drain exactly as
		// on the success path.
		skipped := true
		if c.canceled.Load() {
			c.cancelSkips.Add(1)
			c.tracr.EmitCtx(c.id, self, trace.EvCanceled, n.Kind, rec.def.Name, n.ID)
		} else if n.Poisoned() {
			c.poisonSkips.Add(1)
			c.tracr.EmitCtx(c.id, self, trace.EvPoisoned, n.Kind, rec.def.Name, n.ID)
		} else {
			skipped = false
			// Seed renamed inout parameters.  The RAW edge on the previous
			// producer guarantees the source contents are final.
			for i := range rec.args {
				if b := &rec.args[i]; b.copyFrom != nil {
					b.copyFn(b.instance, b.copyFrom)
					b.copyFrom = nil
				}
			}
			c.tracr.EmitCtx(c.id, self, trace.EvStart, n.Kind, rec.def.Name, n.ID)
			c.runBody(rec, n, self)
			c.tracr.EmitCtx(c.id, self, trace.EvEnd, n.Kind, rec.def.Name, n.ID)
		}
		var next *graph.Node
		if chained < c.cfg.Locality.ChainDepth && !c.q.HighPending() {
			next = c.g.CompleteChain(n, self)
		} else {
			c.g.Complete(n, self)
		}
		if !skipped {
			// Skips complete without executing, so TasksExecuted keeps
			// meaning "bodies run"; the skip counters hold the rest.
			c.executed.Add(1)
		}
		if rec.renamedBytes != 0 {
			c.renamedBytes.Add(-rec.renamedBytes)
		}
		if c.outstanding.Add(-1) == 0 || c.waiters.Load() > 0 {
			// Wake this context's blocked Barrier/WaitOn/throttle caller so
			// it re-checks its condition.  Only the context's submitter waits
			// on cancel conditions, so the wake targets its slot rather than
			// broadcasting to every parked worker on every completion — and a
			// completion in this context never wakes another tenant.
			c.pool.mux.Wake(c.slot)
		}
		if next == nil {
			return
		}
		chained++
		c.chainHits.Add(1)
		c.tracr.EmitCtx(c.id, self, trace.EvChain, next.Kind, next.Label, next.ID)
		n = next
	}
}

// runBody executes one task body, converting a panic or an Args.Fail
// call (or an injected fault) into the context's latched *TaskError.
// A panic takes precedence over a recorded Fail.  Under FailPoison the
// failed node is tainted, and Complete then spreads the taint to its
// dependents.
func (c *Context) runBody(rec *taskRec, n *graph.Node, self int) {
	a := Args{rec: rec, ctx: c, worker: self}
	var cause error
	func() {
		defer func() {
			if r := recover(); r != nil {
				cause = fmt.Errorf("panicked: %v", r)
			}
		}()
		if err := chaos.TaskBody(c.id, n.ID); err != nil {
			a.failed = err
			return
		}
		rec.def.Fn(&a)
	}()
	if cause == nil {
		cause = a.failed
	}
	if cause == nil {
		return
	}
	c.failures.Add(1)
	c.setErr(&TaskError{Def: rec.def.Name, TaskID: n.ID, Ctx: c.id, Worker: self, Cause: cause})
	c.tracr.EmitCtx(c.id, self, trace.EvFail, n.Kind, rec.def.Name, n.ID)
	if c.cfg.OnFailure == FailPoison {
		n.MarkPoisoned()
	}
}

// helpOnce lets the submitter execute a single task of this context,
// parking until one is available or until done() reports the blocking
// condition cleared.  The restricted lookup never takes another
// tenant's task: a barrier in this context must not stall behind a
// long-running task body of a different context.  It returns false when
// done() fired without work being found.
func (c *Context) helpOnce(done func() bool) bool {
	c.waiters.Add(1)
	n := c.pool.mux.Get(c.slot, c.q, done)
	c.waiters.Add(-1)
	if n == nil {
		return false
	}
	c.exec(n, c.slot) // counts MainHelped per task executed, chains included
	return true
}

// Barrier blocks until every task submitted to this context has
// completed, with the submitting thread behaving as a worker for this
// context in the meantime (paper §III).  On return, any data whose
// current contents live in renamed storage have been copied back to
// the variables the program named, and the first task failure (if any)
// is returned; on a canceled context, the remaining tasks drain as
// skips and Barrier returns the CanceledError (a latched task failure
// still wins).  Other contexts on the pool are unaffected.
func (c *Context) Barrier() error {
	c.tracr.EmitCtx(c.id, c.slot, trace.EvBarrier, -1, "", 0)
	for c.outstanding.Load() > 0 {
		c.helpOnce(func() bool { return c.outstanding.Load() == 0 })
	}
	c.syncCopies.Add(int64(c.tr.SyncAll()))
	c.tracr.EmitCtx(c.id, c.slot, trace.EvBarrierDone, -1, "", 0)
	return c.barrierErr()
}

// WaitOn blocks until all pending writers of data have completed,
// helping to execute this context's tasks meanwhile, then makes the
// current contents visible in data (copying back from renamed storage
// if needed).
func (c *Context) WaitOn(data any) error { return c.WaitOnRegion(data, deps.Full) }

// WaitOnRegion is WaitOn restricted to a region of data.  Note that if
// the object was renamed (whole-object writes), the sync-back copies the
// entire object.
func (c *Context) WaitOnRegion(data any, r Region) error {
	key := dataKey(data)
	pending := func() bool { return len(c.tr.PendingWriters(key, r)) == 0 }
	for !pending() {
		c.helpOnce(pending)
	}
	if c.tr.SyncObject(key) {
		c.syncCopies.Add(1)
	}
	return c.barrierErr()
}

// Close waits for all of this context's outstanding work (an implicit
// barrier), then detaches the context from the pool, freeing its slot
// for a future tenant.  The context must not be used afterwards; the
// pool and its other contexts keep running.  Closing an already-closed
// context is a no-op returning the latched error.
func (c *Context) Close() error {
	if c.closed.Load() {
		return c.barrierErr()
	}
	if c.deadline != nil {
		c.deadline.Stop()
	}
	err := c.Barrier()
	c.closed.Store(true)
	c.pool.detach(c)
	return err
}
