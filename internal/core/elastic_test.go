package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/topo"
	"repro/internal/trace"
)

// TestScalePolicyHysteresis replays the deterministic grow/shrink policy
// sample by sample: a grow fires after exactly growAfter consecutive
// loaded samples, a shrink after exactly shrinkAfter consecutive empty
// samples, and any sample outside the streak resets it.
func TestScalePolicyHysteresis(t *testing.T) {
	pol := scalePolicy{growAfter: 2, shrinkAfter: 4}

	// Grow: the first loaded sample holds, the second fires.
	if d := pol.observe(10, 2); d != 0 {
		t.Fatalf("one loaded sample: decided %+d, want 0", d)
	}
	if d := pol.observe(10, 2); d != +1 {
		t.Fatalf("second consecutive loaded sample: decided %+d, want +1", d)
	}
	// The firing resets the streak: growing again takes two more.
	if d := pol.observe(10, 3); d != 0 {
		t.Fatalf("loaded sample after a grow: decided %+d, want 0", d)
	}

	// An in-capacity sample (0 < queued <= active) breaks the streak.
	if d := pol.observe(2, 4); d != 0 {
		t.Fatalf("in-capacity sample: decided %+d, want 0", d)
	}
	if d := pol.observe(10, 4); d != 0 {
		t.Fatalf("loaded streak must restart after an in-capacity sample, got %+d", d)
	}

	// Shrink: three empty samples hold, the fourth fires.
	for i := 0; i < 3; i++ {
		if d := pol.observe(0, 4); d != 0 {
			t.Fatalf("empty sample %d: decided %+d, want 0", i+1, d)
		}
	}
	if d := pol.observe(0, 4); d != -1 {
		t.Fatalf("fourth consecutive empty sample: decided %+d, want -1", d)
	}

	// A single queued task anywhere in the window resets the idle streak.
	for i := 0; i < 3; i++ {
		pol.observe(0, 4)
	}
	if d := pol.observe(1, 4); d != 0 {
		t.Fatalf("in-capacity sample inside idle window: decided %+d, want 0", d)
	}
	for i := 0; i < 3; i++ {
		if d := pol.observe(0, 4); d != 0 {
			t.Fatalf("idle streak must restart after a busy sample, got %+d at %d", d, i+1)
		}
	}
	if d := pol.observe(0, 4); d != -1 {
		t.Fatalf("restarted idle streak must still shrink, got %+d", d)
	}

	// A loaded sample also clears the idle streak (and vice versa —
	// checked above by the grow-after-in-capacity case).
	for i := 0; i < 3; i++ {
		pol.observe(0, 4)
	}
	pol.observe(9, 4)
	if d := pol.observe(0, 4); d != 0 {
		t.Fatalf("idle streak survived a loaded sample: %+d", d)
	}
}

// TestElasticConfigValidation pins the sizing rules for the elastic
// fields: negative bounds and contradictory combinations are typed
// errors, zero values pick sensible defaults, and the plain Workers
// field stays the identity-space alias.
func TestElasticConfigValidation(t *testing.T) {
	var cfgErr *ConfigError
	if _, err := NewPool(PoolConfig{MinWorkers: -1}); !errors.As(err, &cfgErr) || cfgErr.Field != "MinWorkers" {
		t.Fatalf("MinWorkers=-1: %v, want *ConfigError{MinWorkers}", err)
	}
	if _, err := NewPool(PoolConfig{MaxWorkers: -3}); !errors.As(err, &cfgErr) || cfgErr.Field != "MaxWorkers" {
		t.Fatalf("MaxWorkers=-3: %v, want *ConfigError{MaxWorkers}", err)
	}
	if _, err := NewPool(PoolConfig{MinWorkers: 5, MaxWorkers: 2}); !errors.As(err, &cfgErr) || cfgErr.Field != "MinWorkers" {
		t.Fatalf("Min>Max: %v, want *ConfigError{MinWorkers}", err)
	}
	if _, err := NewPool(PoolConfig{Workers: 3, MaxWorkers: 4}); !errors.As(err, &cfgErr) || cfgErr.Field != "Workers" {
		t.Fatalf("Workers conflicting with MaxWorkers: %v, want *ConfigError{Workers}", err)
	}

	// MaxWorkers alone: floor defaults to 1, Workers aliases the ceiling.
	p, err := NewPool(PoolConfig{MaxWorkers: 3, MaxContexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Workers() != 3 {
		t.Fatalf("Workers() = %d, want MaxWorkers = 3", p.Workers())
	}
	if got := p.ActiveWorkers(); got != 1 {
		t.Fatalf("initial team = %d, want MinWorkers default 1", got)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// MinWorkers == MaxWorkers is a fixed-size pool: no elastic
	// machinery, stats pinned at the configured size.
	p, err = NewPool(PoolConfig{MinWorkers: 2, MaxWorkers: 2, MaxContexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.elastic {
		t.Fatal("MinWorkers == MaxWorkers built the elastic machinery")
	}
	st := p.Stats()
	if st.ActiveWorkers != 2 || st.ActiveWorkersHigh != 2 || st.ActiveWorkersLow != 2 {
		t.Fatalf("fixed pool stats = %+v, want active/high/low all 2", st)
	}
	if st.Grows != 0 || st.Shrinks != 0 {
		t.Fatalf("fixed pool counted %d grows / %d shrinks", st.Grows, st.Shrinks)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond every 200µs until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// TestElasticGrowAndShrink drives one full elastic cycle on a real
// pool: a backlog of gated tasks forces the team from the MinWorkers
// floor to the MaxWorkers ceiling, the drain returns it to the floor,
// and the counters, watermarks and trace events all agree.  The pool
// must then still execute work correctly on the shrunken team.
func TestElasticGrowAndShrink(t *testing.T) {
	const (
		minW = 1
		maxW = 4
	)
	tr := trace.New()
	pool, err := NewPool(PoolConfig{
		MinWorkers:    minW,
		MaxWorkers:    maxW,
		MaxContexts:   1,
		ScaleInterval: 100 * time.Microsecond,
		Tracer:        tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := mustCtx(t, pool)

	// Phase 1: grow.  Independent gated tasks pile up faster than the
	// floor team can serve them, so the controller must recruit every
	// retired slot.
	gate := make(chan struct{})
	var running atomic.Int32
	block := NewTaskDef("elastic_block", func(a *Args) {
		running.Add(1)
		<-gate
	})
	bufs := make([][]float32, 16)
	for i := range bufs {
		bufs[i] = make([]float32, 4)
		if err := c.Submit(block, InOut(bufs[i])); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "grow to the MaxWorkers ceiling", func() bool {
		return pool.ActiveWorkers() == maxW
	})
	// All four dedicated workers must actually be serving, not just
	// marked active.
	waitFor(t, 10*time.Second, "all recruited workers to pick up tasks", func() bool {
		return running.Load() >= maxW
	})
	close(gate)
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: shrink.  The queues are empty; after the hysteresis
	// window the controller must park the team back down to the floor.
	waitFor(t, 10*time.Second, "shrink to the MinWorkers floor", func() bool {
		return pool.ActiveWorkers() == minW
	})

	st := pool.Stats()
	if st.Grows < maxW-minW {
		t.Errorf("Grows = %d, want >= %d", st.Grows, maxW-minW)
	}
	if st.Shrinks < maxW-minW {
		t.Errorf("Shrinks = %d, want >= %d", st.Shrinks, maxW-minW)
	}
	if st.ActiveWorkersHigh != maxW {
		t.Errorf("ActiveWorkersHigh = %d, want %d", st.ActiveWorkersHigh, maxW)
	}
	if st.ActiveWorkersLow != minW {
		t.Errorf("ActiveWorkersLow = %d, want %d", st.ActiveWorkersLow, minW)
	}

	// Phase 3: the shrunken pool still computes.  A fill + scale chain
	// exercises submit, steal and rename paths after workers retired and
	// released their scratch.
	buf := make([]float32, 8)
	c.Submit(fillDef, Out(buf), Value(2.0))
	for i := 0; i < 10; i++ {
		c.Submit(scaleDef, InOut(buf), Value(2.0))
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	if want := float32(2048); buf[0] != want {
		t.Fatalf("post-shrink chain: buf[0] = %g, want %g", buf[0], want)
	}
	if live := c.Stats().LiveRenamedBytes; live != 0 {
		t.Fatalf("%d renamed bytes live after drain", live)
	}
	closeAll(t, pool, c)

	// The tracer saw both directions, each event carrying the new team
	// size in Kind and the affected slot as TaskID.
	var grows, shrinks int
	for _, ev := range tr.Events() {
		switch ev.Type {
		case trace.EvGrow:
			grows++
			if ev.Kind < minW || ev.Kind > maxW {
				t.Errorf("EvGrow team size %d out of [%d,%d]", ev.Kind, minW, maxW)
			}
		case trace.EvShrink:
			shrinks++
			if ev.Kind < minW || ev.Kind > maxW {
				t.Errorf("EvShrink team size %d out of [%d,%d]", ev.Kind, minW, maxW)
			}
		}
	}
	if int64(grows) != st.Grows || int64(shrinks) != st.Shrinks {
		t.Errorf("trace saw %d grows / %d shrinks, stats say %d / %d",
			grows, shrinks, st.Grows, st.Shrinks)
	}
}

// TestElasticTopologyPool runs an elastic pool with an explicit
// two-group synthetic topology end to end: correctness of a dependent
// workload, steal counters flowing through Stats, and a clean close.
func TestElasticTopologyPool(t *testing.T) {
	pool, err := NewPool(PoolConfig{
		MinWorkers:    2,
		MaxWorkers:    4,
		MaxContexts:   2,
		ScaleInterval: 100 * time.Microsecond,
		Topology:      topo.Split(6, 2), // 2 submitters + 4 dedicated slots
	})
	if err != nil {
		t.Fatal(err)
	}
	c := mustCtx(t, pool)
	const chains = 8
	bufs := make([][]float32, chains)
	for i := range bufs {
		bufs[i] = make([]float32, 32)
		c.Submit(fillDef, Out(bufs[i]), Value(1.0))
		for d := 0; d < 50; d++ {
			c.Submit(scaleDef, InOut(bufs[i]), Value(1.01))
		}
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	want := float32(1.0)
	for d := 0; d < 50; d++ {
		want *= 1.01
	}
	for i := range bufs {
		if bufs[i][0] != want {
			t.Fatalf("chain %d = %g, want %g", i, bufs[i][0], want)
		}
	}
	st := c.Stats()
	if st.Sched.LocalSteals < 0 || st.Sched.RemoteSteals < 0 {
		t.Fatalf("steal counters went negative: %+v", st.Sched)
	}
	closeAll(t, pool, c)
}

// TestElasticDrainMidShrink is the regression test for Drain racing the
// retirement machinery: with the controller armed aggressively and
// straggling tenants holding slow serial chains, Pool.Drain must cancel
// the stragglers and complete — workers parked mid-shrink (or parking
// concurrently with the teardown) must all unblock and exit.
func TestElasticDrainMidShrink(t *testing.T) {
	const tenants = 2
	pool, err := NewPool(PoolConfig{
		MinWorkers:    1,
		MaxWorkers:    4,
		MaxContexts:   tenants,
		ScaleInterval: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	slow := NewTaskDef("elastic_slow", func(a *Args) {
		time.Sleep(200 * time.Microsecond)
		a.F32(0)[0]++
	})
	ctxs := make([]*Context, tenants)
	for i := range ctxs {
		ctxs[i] = mustCtx(t, pool)
	}
	var wg sync.WaitGroup
	errs := make([]error, tenants)
	for i, c := range ctxs {
		wg.Add(1)
		go func(i int, c *Context) {
			defer wg.Done()
			// The whole serial chain is queued before Drain's deadline can
			// expire, so the only blocked call is the Barrier the drain
			// must cancel.
			x := make([]float32, 4)
			for k := 0; k < 500; k++ {
				if err := c.Submit(slow, InOut(x)); err != nil {
					errs[i] = err
					return
				}
			}
			errs[i] = c.Barrier()
		}(i, c)
	}
	// Let the chains get going — the serial dependency keeps the queue
	// shallow, so the controller shrinks while work is still in flight.
	time.Sleep(10 * time.Millisecond)
	done := make(chan error, 1)
	go func() { done <- pool.Drain(5 * time.Millisecond) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Drain wedged on an elastic pool mid-shrink")
	}
	wg.Wait()
	for i, err := range errs {
		var ce *CanceledError
		if !errors.As(err, &ce) {
			t.Errorf("tenant %d: Barrier returned %v, want *CanceledError", i, err)
			continue
		}
		if ce.Reason != "drain" {
			t.Errorf("tenant %d: canceled for %q, want \"drain\"", i, ce.Reason)
		}
		if live := ctxs[i].Stats().LiveRenamedBytes; live != 0 {
			t.Errorf("tenant %d: %d renamed bytes live after forced drain", i, live)
		}
	}
}

// TestElasticCancelMidShrink covers the tenant-initiated half of the
// same race: Context.Cancel while the controller is actively parking
// and unparking workers must drain the tenant's graph (every submitted
// task executed or canceled) without wedging the barrier.
func TestElasticCancelMidShrink(t *testing.T) {
	pool, err := NewPool(PoolConfig{
		MinWorkers:    1,
		MaxWorkers:    3,
		MaxContexts:   1,
		ScaleInterval: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := mustCtx(t, pool)
	slow := NewTaskDef("elastic_slow_cancel", func(a *Args) {
		time.Sleep(100 * time.Microsecond)
		a.F32(0)[0]++
	})
	x := make([]float32, 4)
	const n = 400
	for k := 0; k < n; k++ {
		if err := c.Submit(slow, InOut(x)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(2 * time.Millisecond) // let shrinks/grows churn
	c.Cancel()
	err = c.Barrier()
	var ce *CanceledError
	if !errors.As(err, &ce) || ce.Reason != "cancel" {
		t.Fatalf("Barrier after Cancel: %v, want *CanceledError{cancel}", err)
	}
	st := c.Stats()
	if st.TasksExecuted+st.Poisoned+st.Canceled != st.TasksSubmitted {
		t.Fatalf("executed %d + poisoned %d + canceled %d != submitted %d",
			st.TasksExecuted, st.Poisoned, st.Canceled, st.TasksSubmitted)
	}
	if st.LiveRenamedBytes != 0 {
		t.Fatalf("%d renamed bytes live after canceled drain", st.LiveRenamedBytes)
	}
	if err := c.Close(); err != nil {
		var ce *CanceledError
		if !errors.As(err, &ce) {
			t.Fatalf("Close after Cancel: %v", err)
		}
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestElasticCloseWhileRetired pins the teardown path: closing a pool
// whose team sits at the floor (most slots parked on their retire
// channels, unreachable by the mux's Kick) must not wedge.
func TestElasticCloseWhileRetired(t *testing.T) {
	pool, err := NewPool(PoolConfig{
		MinWorkers:    1,
		MaxWorkers:    8,
		MaxContexts:   1,
		ScaleInterval: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Never submit anything: seven slots are parked from birth.
	done := make(chan error, 1)
	go func() { done <- pool.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Close wedged with workers parked on retire channels")
	}
}
