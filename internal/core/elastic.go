package core

import (
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/sched"
	"repro/internal/trace"
)

// This file is the elastic side of the pool: a worker-retirement state
// machine and a sampling controller that sizes the active team to the
// observed load.  The full MaxWorkers identity space is allocated and
// its goroutines started at construction — traces, stats, scratch and
// the chaos harness keep stable worker identities — and scaling only
// flips slots between active duty and a parked "retired" state.  A
// fixed-size pool (MinWorkers == MaxWorkers, or neither set) builds
// none of this machinery.

// Worker scaling states (Pool.state, dedicated slots only).
const (
	// wActive: the worker serves the mux normally.
	wActive int32 = iota
	// wRetiring: the controller asked the worker to retire; its Get
	// cancel condition now fires, but it keeps draining available work
	// until the queues are dry (and a grow may still revert it).
	wRetiring
	// wRetired: the worker evicted its deque, released its scratch and
	// parked on its retire channel until a grow or pool close.
	wRetired
)

// Scaling policy constants.  The policy is deliberately deterministic —
// a pure function of the sampled sequence — so unit tests can replay
// it without a pool.
const (
	// defaultScaleInterval is the controller's sampling period when
	// PoolConfig.ScaleInterval is zero.
	defaultScaleInterval = 500 * time.Microsecond
	// growAfterSamples is how many consecutive loaded samples (queued
	// tasks exceeding active workers) trigger a grow: two, so a single
	// submission spike between two samples does not recruit a worker
	// the backlog cannot feed.
	growAfterSamples = 2
	// shrinkAfterSamples is the hysteresis window: how many consecutive
	// empty samples park a worker.  64 samples at the default interval
	// is ~32ms of sustained idleness — long enough that a pipelined
	// graph's release gaps never flap the team size.
	shrinkAfterSamples = 64
)

// scalePolicy is the deterministic grow/shrink decision function.  It
// is not safe for concurrent use; only the controller goroutine (or a
// test) drives it.
type scalePolicy struct {
	growAfter   int
	shrinkAfter int

	loaded int // consecutive samples with queued > active
	idle   int // consecutive samples with queued == 0
}

// observe feeds one load sample (total queued tasks, current active
// team size) and returns +1 to grow, -1 to shrink, 0 to hold.
func (sp *scalePolicy) observe(queued int64, active int) int {
	if queued > int64(active) {
		sp.idle = 0
		sp.loaded++
		if sp.loaded >= sp.growAfter {
			sp.loaded = 0
			return +1
		}
		return 0
	}
	sp.loaded = 0
	if queued == 0 {
		sp.idle++
		if sp.idle >= sp.shrinkAfter {
			sp.idle = 0
			return -1
		}
		return 0
	}
	// Queued work within the team's capacity: neither direction.
	sp.idle = 0
	return 0
}

// workerLoopElastic is workerLoop for a pool with scaling enabled: the
// same serve loop, plus the retire/unretire protocol around it.
func (p *Pool) workerLoopElastic(self int) {
	cancel := func() bool { return p.state[self].Load() != wActive }
	for {
		if p.state[self].Load() == wRetired {
			// Parked out of the team.  Only a grow (to re-enlist) or the
			// pool's close delivers the token.
			<-p.retireCh[self]
			if p.closed.Load() {
				return
			}
			continue
		}
		n := p.mux.Get(self, nil, cancel)
		if n != nil {
			n.Payload.(*taskRec).ctx.exec(n, self)
			continue
		}
		if p.closed.Load() {
			return
		}
		// Get gave up because the cancel condition fired: the controller
		// marked this worker retiring.  Finish the retirement — unless a
		// grow already reverted it, in which case just keep serving.
		p.finishRetire(self)
	}
}

// finishRetire completes a retirement the controller requested: leave
// the live set, spill the deque back to the injectors, release this
// worker's scratch, rescale the shared rename store, and re-arm the
// wake protocol for any task whose wake this worker consumed on its
// way out.  Runs on the retiring worker itself.
func (p *Pool) finishRetire(self int) {
	p.scaleMu.Lock()
	if p.closed.Load() || p.state[self].Load() != wRetiring {
		// A grow reverted the retirement while we were draining, or the
		// pool is closing; either way, back to the serve loop.
		p.scaleMu.Unlock()
		return
	}
	p.state[self].Store(wRetired)
	// Leave the live set before evicting, so affinity hints stop
	// targeting this deque before it is emptied.
	p.active.Set(self, false)
	size := int(p.activeWorkers.Load())
	p.scaleMu.Unlock()
	// Fault-injection point: widen the window between leaving the live
	// set and evicting the deque — the span concurrent pushes, drains
	// and grows race against.
	chaos.ShrinkDelay(self)
	p.mux.Evict(self)
	p.releaseLocalsFor(self)
	p.rescaleStorage()
	p.cfg.Tracer.EmitCtx(0, self, trace.EvShrink, size, "", int64(self))
	// A push may have spent its wake on this worker in the retirement
	// window (the token died with us); if work is queued, hand the wake
	// to a live worker.
	p.mux.Nudge()
}

// releaseLocalsFor recycles one retiring worker's scratch registry
// entries (the per-worker half of Pool.releaseLocals).  Runs on the
// worker itself — the only thread that touches locals[w] — and leaves
// the slot nil so Close's sweep cannot release the values twice.
func (p *Pool) releaseLocalsFor(w int) {
	for _, v := range p.locals[w] {
		if r, ok := v.(interface{ Release() }); ok {
			r.Release()
		}
	}
	p.locals[w] = nil
}

// rescaleStorage sizes the shared rename store's free-list bound to the
// active fraction of the team: a pool scaled down to a quarter of its
// workers keeps a quarter of the recycling headroom.
func (p *Pool) rescaleStorage() {
	active := int(p.activeWorkers.Load())
	units := (p.cfg.MaxContexts*active + p.cfg.MaxWorkers - 1) / p.cfg.MaxWorkers
	p.store.Rescale(units)
}

// grow adds one worker to the team: preferably by reverting a
// retirement still in flight (free — the worker never stopped), else by
// unparking the lowest retired slot.  Returns false at the MaxWorkers
// ceiling or after close.
func (p *Pool) grow() bool {
	p.scaleMu.Lock()
	defer p.scaleMu.Unlock()
	if p.closed.Load() || int(p.activeWorkers.Load()) >= p.cfg.MaxWorkers {
		return false
	}
	for w := p.cfg.MaxContexts; w < p.slots; w++ {
		if p.state[w].Load() == wRetiring {
			p.state[w].Store(wActive)
			p.bookGrowLocked(w)
			return true
		}
	}
	for w := p.cfg.MaxContexts; w < p.slots; w++ {
		if p.state[w].Load() == wRetired {
			p.state[w].Store(wActive)
			p.active.Set(w, true)
			p.bookGrowLocked(w)
			select {
			case p.retireCh[w] <- struct{}{}:
			default:
			}
			return true
		}
	}
	return false
}

// bookGrowLocked records one grow (counter, gauge, watermark, trace).
// Caller holds scaleMu.
func (p *Pool) bookGrowLocked(w int) {
	p.grows.Add(1)
	size := p.activeWorkers.Add(1)
	if size > p.activeHigh.Load() {
		p.activeHigh.Store(size)
	}
	p.cfg.Tracer.EmitCtx(0, w, trace.EvGrow, int(size), "", int64(w))
}

// shrink retires one worker: the highest-numbered active slot, so the
// active team stays a prefix of the dedicated identity range and
// topology groups empty from the top down.  The worker is only marked —
// it drains available work first and completes the retirement itself in
// finishRetire.  Returns false at the MinWorkers floor or after close.
func (p *Pool) shrink() bool {
	p.scaleMu.Lock()
	defer p.scaleMu.Unlock()
	if p.closed.Load() || int(p.activeWorkers.Load()) <= p.cfg.MinWorkers {
		return false
	}
	for w := p.slots - 1; w >= p.cfg.MaxContexts; w-- {
		if p.state[w].Load() == wActive {
			p.state[w].Store(wRetiring)
			p.shrinks.Add(1)
			size := p.activeWorkers.Add(-1)
			if size < p.activeLow.Load() {
				p.activeLow.Store(size)
			}
			// Nudge the worker out of its park (or, if it is busy, arm
			// the token so its next idle Get observes the request).
			p.mux.Wake(w)
			return true
		}
	}
	return false
}

// scaleLoop is the controller goroutine: sample the mux's queue depth
// every interval and feed the hysteresis policy.  It exists only on
// elastic pools and exits at Close.
//
// Ticker delivery is much coarser than a sub-millisecond ScaleInterval
// on most kernels, so each delivered tick replays one policy sample per
// interval actually elapsed — the hysteresis windows are wall-clock
// quantities (shrinkAfter × interval of sustained idleness), not counts
// of whatever tick rate the timer happened to achieve.  At most one
// scaling action fires per delivered tick: catch-up samples share one
// stale load reading, which justifies completing a pending streak but
// not chaining several grows off it.
func (p *Pool) scaleLoop() {
	defer close(p.scaleDone)
	pol := scalePolicy{growAfter: growAfterSamples, shrinkAfter: shrinkAfterSamples}
	tick := time.NewTicker(p.cfg.ScaleInterval)
	defer tick.Stop()
	last := time.Now()
	for {
		select {
		case <-p.scaleStop:
			return
		case <-tick.C:
		}
		now := time.Now()
		samples := int(now.Sub(last) / p.cfg.ScaleInterval)
		last = now
		if samples < 1 {
			samples = 1
		}
		queued := p.mux.Load()
		active := int(p.activeWorkers.Load())
		for ; samples > 0; samples-- {
			switch pol.observe(queued, active) {
			case +1:
				p.grow()
				samples = 0
			case -1:
				p.shrink()
				samples = 0
			}
		}
	}
}

// initElastic builds the scaling machinery: state machine, retire
// channels, live set, initial team (the first MinWorkers dedicated
// slots; the rest start retired) and the controller.  Called from
// newPool only when MaxWorkers > MinWorkers.
func (p *Pool) initElastic() {
	p.elastic = true
	p.state = make([]atomic.Int32, p.slots)
	p.retireCh = make([]chan struct{}, p.slots)
	p.active = sched.NewActiveSet(p.slots)
	for w := p.cfg.MaxContexts; w < p.slots; w++ {
		p.retireCh[w] = make(chan struct{}, 1)
		if w >= p.cfg.MaxContexts+p.cfg.MinWorkers {
			p.state[w].Store(wRetired)
			p.active.Set(w, false)
		}
	}
	p.activeWorkers.Store(int32(p.cfg.MinWorkers))
	p.activeHigh.Store(int32(p.cfg.MinWorkers))
	p.activeLow.Store(int32(p.cfg.MinWorkers))
	// Size the rename store's recycling headroom to the starting team.
	p.rescaleStorage()
	p.scaleStop = make(chan struct{})
	p.scaleDone = make(chan struct{})
}
