package core
