package core

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/trace"
)

// fill declares a task writing constant c into its output parameter.
var fillDef = NewTaskDef("fill", func(a *Args) {
	c := float32(a.Float(1))
	out := a.F32(0)
	for i := range out {
		out[i] = c
	}
})

// axpy declares y += alpha * x.
var axpyDef = NewTaskDef("axpy", func(a *Args) {
	x, y := a.F32(0), a.F32(1)
	alpha := float32(a.Float(2))
	for i := range y {
		y[i] += alpha * x[i]
	}
})

// scale declares x *= alpha (an inout chain link).
var scaleDef = NewTaskDef("scale", func(a *Args) {
	x := a.F32(0)
	alpha := float32(a.Float(1))
	for i := range x {
		x[i] *= alpha
	}
})

func newRT(t *testing.T, workers int) *Runtime {
	t.Helper()
	return New(Config{Workers: workers})
}

func TestSingleTask(t *testing.T) {
	rt := newRT(t, 4)
	defer rt.Close()
	x := make([]float32, 8)
	rt.Submit(fillDef, Out(x), Value(3.0))
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if v != 3 {
			t.Fatalf("x[%d] = %v, want 3", i, v)
		}
	}
}

func TestRAWChainProducesSequentialResult(t *testing.T) {
	rt := newRT(t, 8)
	defer rt.Close()
	x := make([]float32, 4)
	rt.Submit(fillDef, Out(x), Value(1.0))
	for i := 0; i < 10; i++ {
		rt.Submit(scaleDef, InOut(x), Value(2.0))
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	if x[0] != 1024 {
		t.Fatalf("x[0] = %v, want 1024 (2^10)", x[0])
	}
}

func TestRenamingKeepsReadersConsistent(t *testing.T) {
	// Writer fills x with 1; reader accumulates x into y; then x is
	// overwritten with 100.  Renaming must let the overwrite proceed
	// without corrupting the reader's input, and after the barrier x
	// must hold the final value (sync-back).
	rt := newRT(t, 8)
	defer rt.Close()
	x := make([]float32, 4)
	y := make([]float32, 4)
	for trial := 0; trial < 50; trial++ {
		rt.Submit(fillDef, Out(x), Value(1.0))
		rt.Submit(fillDef, Out(y), Value(0.0))
		rt.Submit(axpyDef, In(x), InOut(y), Value(1.0)) // y = x = 1s
		rt.Submit(fillDef, Out(x), Value(100.0))        // renamed: no WAR on reader
		rt.Submit(axpyDef, In(x), InOut(y), Value(1.0)) // y += 100
		if err := rt.Barrier(); err != nil {
			t.Fatal(err)
		}
		for i := range y {
			if y[i] != 101 {
				t.Fatalf("trial %d: y[%d] = %v, want 101", trial, i, y[i])
			}
			if x[i] != 100 {
				t.Fatalf("trial %d: x[%d] = %v, want 100 after sync-back", trial, i, x[i])
			}
		}
	}
	if st := rt.Stats(); st.Deps.Renames == 0 {
		t.Fatalf("expected renames to occur: %+v", st.Deps)
	}
}

func TestInOutRenameSeedsContents(t *testing.T) {
	// x=7s; reader of x pending; scale(x) must see the 7s through the
	// rename seed copy.
	rt := newRT(t, 8)
	defer rt.Close()
	x := make([]float32, 4)
	y := make([]float32, 4)
	rt.Submit(fillDef, Out(x), Value(7.0))
	rt.Submit(fillDef, Out(y), Value(0.0))
	rt.Submit(axpyDef, In(x), InOut(y), Value(1.0))
	rt.Submit(scaleDef, InOut(x), Value(2.0)) // likely renamed+seeded
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	if x[0] != 14 {
		t.Fatalf("x[0] = %v, want 14", x[0])
	}
	if y[0] != 7 {
		t.Fatalf("y[0] = %v, want 7", y[0])
	}
}

func TestValueArgsAreSnapshots(t *testing.T) {
	rt := newRT(t, 4)
	defer rt.Close()
	x := make([]float32, 1)
	for i := 1; i <= 5; i++ {
		rt.Submit(NewTaskDef("addv", func(a *Args) {
			a.F32(0)[0] += float32(a.Int(1))
		}), InOut(x), Value(i))
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	if x[0] != 15 {
		t.Fatalf("x[0] = %v, want 15", x[0])
	}
}

func TestOpaqueSkipsDependencyAnalysis(t *testing.T) {
	// Two tasks inout the same opaque pointer: without analysis they
	// may run in parallel, so they must not be serialized by the graph.
	rt := newRT(t, 4)
	defer rt.Close()
	shared := make([]float32, 1)
	var running atomic.Int32
	var sawParallel atomic.Bool
	def := NewTaskDef("opq", func(a *Args) {
		if running.Add(1) == 2 {
			sawParallel.Store(true)
		}
		time.Sleep(5 * time.Millisecond)
		running.Add(-1)
		_ = a.Opaque(0)
	})
	for i := 0; i < 8; i++ {
		rt.Submit(def, Opaque(shared))
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	if !sawParallel.Load() {
		t.Fatalf("opaque tasks never overlapped; dependency analysis leaked in")
	}
	if st := rt.Stats(); st.Deps.Objects != 0 {
		t.Fatalf("opaque args must not register objects: %+v", st.Deps)
	}
}

func TestRepresentantsIntroduceOrdering(t *testing.T) {
	// The §V.B workaround: a representant (tracked address) carries the
	// dependency while the data travels through an opaque pointer.
	rt := newRT(t, 4)
	defer rt.Close()
	data := make([]float32, 8)
	repr := make([]byte, 1) // representant for data[0:4]
	var order []int
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	record := func(k int) {
		<-mu
		order = append(order, k)
		mu <- struct{}{}
	}
	w := NewTaskDef("w", func(a *Args) {
		record(1)
		d := a.Opaque(0).([]float32)
		d[0] = 42
	})
	r := NewTaskDef("r", func(a *Args) {
		record(2)
		d := a.Opaque(0).([]float32)
		if d[0] != 42 {
			panic("reader ran before writer")
		}
	})
	rt.Submit(w, Opaque(data), InOut(repr))
	rt.Submit(r, Opaque(data), In(repr))
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 {
		t.Fatalf("order = %v, want writer first", order)
	}
}

func TestWaitOn(t *testing.T) {
	rt := newRT(t, 4)
	defer rt.Close()
	x := make([]float32, 4)
	y := make([]float32, 4)
	rt.Submit(fillDef, Out(x), Value(5.0))
	rt.Submit(fillDef, Out(y), Value(9.0))
	if err := rt.WaitOn(x); err != nil {
		t.Fatal(err)
	}
	if x[0] != 5 {
		t.Fatalf("x[0] = %v after WaitOn, want 5", x[0])
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	if y[0] != 9 {
		t.Fatalf("y[0] = %v, want 9", y[0])
	}
}

func TestWaitOnRegionOnlyWaitsForOverlap(t *testing.T) {
	rt := newRT(t, 2)
	defer rt.Close()
	x := make([]float32, 100)
	started := make(chan struct{})
	release := make(chan struct{})
	slow := NewTaskDef("slow", func(a *Args) {
		close(started)
		<-release
	})
	// The writer on the second half blocks until released; waiting on
	// the first half must not require it.
	rt.Submit(slow, InOutR(x, Interval(50, 99)))
	<-started // ensure the dedicated worker holds the slow task
	fast := NewTaskDef("fast", func(a *Args) { a.F32(0)[0] = 1 })
	rt.Submit(fast, InOutR(x, Interval(0, 49)))
	if err := rt.WaitOnRegion(x, Interval(0, 49)); err != nil {
		t.Fatal(err) // would deadlock (not just fail) if it waited on slow
	}
	if x[0] != 1 {
		t.Fatalf("x[0] = %v, want 1 after WaitOnRegion", x[0])
	}
	close(release)
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
}

func TestRegionTasksOrderOverlaps(t *testing.T) {
	rt := newRT(t, 8)
	defer rt.Close()
	x := make([]float32, 64)
	add := NewTaskDef("radd", func(a *Args) {
		lo, hi := a.Int(1), a.Int(2)
		data := a.F32(0)
		for i := lo; i <= hi; i++ {
			data[i] = data[i]*2 + 1
		}
	})
	// Overlapping chain on [0..63] in three steps, plus disjoint work.
	rt.Submit(add, InOutR(x, Interval(0, 40)), Value(0), Value(40))
	rt.Submit(add, InOutR(x, Interval(20, 63)), Value(20), Value(63))
	rt.Submit(add, InOutR(x, Interval(0, 10)), Value(0), Value(10))
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	// Element 30 went through steps 1 and 2: ((0*2+1)*2+1) = 3.
	if x[30] != 3 {
		t.Fatalf("x[30] = %v, want 3", x[30])
	}
	// Element 5 went through steps 1 and 3.
	if x[5] != 3 {
		t.Fatalf("x[5] = %v, want 3", x[5])
	}
	// Element 50 only step 2.
	if x[50] != 1 {
		t.Fatalf("x[50] = %v, want 1", x[50])
	}
}

func TestTaskPanicReportedAtBarrier(t *testing.T) {
	rt := newRT(t, 4)
	defer rt.Close()
	boom := NewTaskDef("boom", func(a *Args) { panic("kaput") })
	rt.Submit(boom)
	err := rt.Barrier()
	if err == nil || !strings.Contains(err.Error(), "kaput") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Barrier err = %v, want task panic", err)
	}
}

func TestPanicDoesNotWedgeSuccessors(t *testing.T) {
	rt := newRT(t, 4)
	defer rt.Close()
	x := make([]float32, 1)
	boom := NewTaskDef("boom2", func(a *Args) { panic("x") })
	var ran atomic.Bool
	after := NewTaskDef("after", func(a *Args) { ran.Store(true) })
	rt.Submit(boom, InOut(x))
	rt.Submit(after, InOut(x))
	if err := rt.Barrier(); err == nil {
		t.Fatalf("expected error")
	}
	if !ran.Load() {
		t.Fatalf("successor of panicked task never ran; graph wedged")
	}
}

func TestMemoryLimitThrottlesRenaming(t *testing.T) {
	// Each iteration renames a 4 KiB buffer (writer over pending
	// reader); a 16 KiB limit bounds the in-flight renamed storage.
	rt := New(Config{Workers: 2, MemoryLimit: 16 << 10})
	defer rt.Close()
	x := make([]float32, 1024) // 4 KiB
	y := make([]float32, 1024)
	for i := 0; i < 100; i++ {
		rt.Submit(fillDef, Out(x), Value(float64(i)))
		rt.Submit(axpyDef, In(x), InOut(y), Value(1.0))
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Deps.Renames == 0 {
		t.Fatalf("workload must rename: %+v", st.Deps)
	}
	if st.MainHelped == 0 {
		t.Fatalf("main thread never helped under the memory limit: %+v", st)
	}
	if got := rt.liveRenamedBytes(); got != 0 {
		t.Fatalf("renamed-bytes accounting leaked %d bytes", got)
	}
}

func TestGraphLimitThrottlesSubmitter(t *testing.T) {
	rt := New(Config{Workers: 2, GraphLimit: 8})
	defer rt.Close()
	x := make([]float32, 4)
	for i := 0; i < 200; i++ {
		rt.Submit(scaleDef, InOut(x), Value(1.0))
		if open := rt.Stats().TasksSubmitted - rt.Stats().TasksExecuted; open > 16 {
			t.Fatalf("open tasks = %d exceeds limit slack", open)
		}
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	if st := rt.Stats(); st.MainHelped == 0 {
		t.Fatalf("main thread never helped under throttle: %+v", st)
	}
}

func TestSingleWorkerRunsEverythingAtBarrier(t *testing.T) {
	rt := New(Config{Workers: 1})
	defer rt.Close()
	x := make([]float32, 4)
	rt.Submit(fillDef, Out(x), Value(2.0))
	for i := 0; i < 20; i++ {
		rt.Submit(scaleDef, InOut(x), Value(1.0))
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	if x[0] != 2 {
		t.Fatalf("x[0] = %v, want 2", x[0])
	}
	if st := rt.Stats(); st.TasksExecuted != 21 {
		t.Fatalf("executed = %d, want 21", st.TasksExecuted)
	}
}

func TestGlobalFIFOSchedulerWorks(t *testing.T) {
	rt := New(Config{Workers: 4, Scheduler: SchedGlobalFIFO})
	defer rt.Close()
	x := make([]float32, 4)
	rt.Submit(fillDef, Out(x), Value(1.0))
	for i := 0; i < 10; i++ {
		rt.Submit(scaleDef, InOut(x), Value(2.0))
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	if x[0] != 1024 {
		t.Fatalf("x[0] = %v, want 1024", x[0])
	}
}

func TestHighPriorityTaskDef(t *testing.T) {
	rt := newRT(t, 2)
	defer rt.Close()
	var hits atomic.Int32
	hp := NewHighPriorityTaskDef("hp", func(a *Args) { hits.Add(1) })
	if !hp.HighPriority {
		t.Fatalf("NewHighPriorityTaskDef must set the clause")
	}
	rt.Submit(hp)
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 1 {
		t.Fatalf("high-priority task did not run")
	}
	if st := rt.Stats(); st.Sched.PushHigh != 1 {
		t.Fatalf("task not routed to the high-priority list: %+v", st.Sched)
	}
}

func TestRunWrapper(t *testing.T) {
	x := make([]float32, 2)
	err := Run(Config{Workers: 2}, func(rt *Runtime) error {
		rt.Submit(fillDef, Out(x), Value(4.0))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 4 {
		t.Fatalf("x[0] = %v, want 4", x[0])
	}
}

func TestRunPropagatesBodyError(t *testing.T) {
	wantErr := fmt.Errorf("body failed")
	err := Run(Config{Workers: 1}, func(rt *Runtime) error { return wantErr })
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}

func TestSubmitAfterClosePanics(t *testing.T) {
	rt := newRT(t, 1)
	rt.Close()
	defer func() {
		if recover() == nil {
			t.Fatalf("Submit after Close must panic")
		}
	}()
	rt.Submit(fillDef, Out(make([]float32, 1)), Value(0.0))
}

func TestRecorderCapturesGraph(t *testing.T) {
	rec := &graph.Recorder{}
	// One worker: no task runs before the closing barrier, so the edge is
	// recorded deterministically (a completed producer needs no edge).
	rt := New(Config{Workers: 1, Recorder: rec})
	x := make([]float32, 2)
	rt.Submit(fillDef, Out(x), Value(1.0))
	rt.Submit(scaleDef, InOut(x), Value(2.0))
	rt.Close()
	if rec.NumNodes() != 2 || rec.NumEdges() != 1 {
		t.Fatalf("recorded %d nodes / %d edges, want 2 / 1", rec.NumNodes(), rec.NumEdges())
	}
}

func TestTracerSeesLifecycle(t *testing.T) {
	tr := trace.New()
	rt := New(Config{Workers: 2, Tracer: tr})
	x := make([]float32, 2)
	rt.Submit(fillDef, Out(x), Value(1.0))
	rt.Close()
	sum := tr.Summarize()
	found := false
	for _, k := range sum.Kinds {
		if k.Label == "fill" && k.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace summary missing fill execution: %+v", sum)
	}
}

// TestRandomProgramMatchesSequential is the gold test: a random task
// program executed by the parallel runtime must produce exactly the
// results of running the same task sequence sequentially in submission
// order — the paper's core promise that the annotated program keeps its
// sequential semantics.
func TestRandomProgramMatchesSequential(t *testing.T) {
	const (
		nBuffers = 6
		bufLen   = 8
		nTasks   = 400
	)
	type op struct {
		kind int // 0 fill, 1 axpy, 2 scale
		a, b int
		c    float64
	}
	rng := rand.New(rand.NewSource(20080929)) // CLUSTER'08 week
	var ops []op
	for i := 0; i < nTasks; i++ {
		ops = append(ops, op{
			kind: rng.Intn(3),
			a:    rng.Intn(nBuffers),
			b:    rng.Intn(nBuffers),
			c:    float64(rng.Intn(5)) + 0.5,
		})
	}

	// Sequential reference.
	ref := make([][]float32, nBuffers)
	for i := range ref {
		ref[i] = make([]float32, bufLen)
	}
	for _, o := range ops {
		switch o.kind {
		case 0:
			for i := range ref[o.a] {
				ref[o.a][i] = float32(o.c)
			}
		case 1:
			if o.a == o.b {
				continue
			}
			for i := range ref[o.b] {
				ref[o.b][i] += float32(o.c) * ref[o.a][i]
			}
		case 2:
			for i := range ref[o.a] {
				ref[o.a][i] *= float32(o.c)
			}
		}
	}

	for _, workers := range []int{1, 2, 8} {
		for _, scheduler := range []SchedulerKind{SchedLocality, SchedGlobalFIFO} {
			for _, noRename := range []bool{false, true} {
				bufs := make([][]float32, nBuffers)
				for i := range bufs {
					bufs[i] = make([]float32, bufLen)
				}
				rt := New(Config{Workers: workers, Scheduler: scheduler, DisableRenaming: noRename})
				for _, o := range ops {
					switch o.kind {
					case 0:
						rt.Submit(fillDef, Out(bufs[o.a]), Value(o.c))
					case 1:
						if o.a == o.b {
							continue
						}
						rt.Submit(axpyDef, In(bufs[o.a]), InOut(bufs[o.b]), Value(o.c))
					case 2:
						rt.Submit(scaleDef, InOut(bufs[o.a]), Value(o.c))
					}
				}
				if err := rt.Close(); err != nil {
					t.Fatal(err)
				}
				for bi := range bufs {
					for i := range bufs[bi] {
						if bufs[bi][i] != ref[bi][i] {
							t.Fatalf("workers=%d sched=%d noRename=%v: buf[%d][%d] = %v, want %v",
								workers, scheduler, noRename, bi, i, bufs[bi][i], ref[bi][i])
						}
					}
				}
			}
		}
	}
}

// TestRandomRegionProgramMatchesSequential is the region-extension
// analogue of the gold test: random overlapping interval updates on one
// array must replay exactly like the sequential order.
func TestRandomRegionProgramMatchesSequential(t *testing.T) {
	const (
		n      = 256
		nTasks = 300
	)
	type op struct {
		lo, hi int
		mul    float32
		add    float32
	}
	rng := rand.New(rand.NewSource(142)) // paper's first page number
	var ops []op
	for i := 0; i < nTasks; i++ {
		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo)
		ops = append(ops, op{lo: lo, hi: hi, mul: 1.5, add: float32(i % 7)})
	}
	ref := make([]float32, n)
	for _, o := range ops {
		for i := o.lo; i <= o.hi; i++ {
			ref[i] = ref[i]*o.mul + o.add
		}
	}

	upd := NewTaskDef("rupd", func(a *Args) {
		data := a.F32(0)
		lo, hi := a.Int(1), a.Int(2)
		mul, add := float32(a.Float(3)), float32(a.Float(4))
		for i := lo; i <= hi; i++ {
			data[i] = data[i]*mul + add
		}
	})

	for _, workers := range []int{1, 8} {
		x := make([]float32, n)
		rt := New(Config{Workers: workers})
		for _, o := range ops {
			rt.Submit(upd, InOutR(x, Interval(int64(o.lo), int64(o.hi))),
				Value(o.lo), Value(o.hi), Value(float64(o.mul)), Value(float64(o.add)))
		}
		if err := rt.Close(); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if x[i] != ref[i] {
				t.Fatalf("workers=%d: x[%d] = %v, want %v", workers, i, x[i], ref[i])
			}
		}
	}
}

// TestRandomMixedRegionProgramMatchesSequential stresses the
// versioned→regioned flip: a random program mixing whole-object and
// region accesses on the same arrays must replay exactly like the
// sequential submission order.
func TestRandomMixedRegionProgramMatchesSequential(t *testing.T) {
	const (
		n      = 128
		nTasks = 250
	)
	type op struct {
		whole  bool
		mode   int // 0 in(no-op read), 1 out(fill), 2 inout(update)
		lo, hi int
		c      float32
	}
	rng := rand.New(rand.NewSource(2008))
	var ops []op
	for i := 0; i < nTasks; i++ {
		lo := rng.Intn(n)
		ops = append(ops, op{
			whole: rng.Intn(3) == 0,
			mode:  rng.Intn(3),
			lo:    lo,
			hi:    lo + rng.Intn(n-lo),
			c:     float32(rng.Intn(9)) + 1,
		})
	}
	ref := make([]float32, n)
	apply := func(dst []float32, o op) {
		lo, hi := o.lo, o.hi
		if o.whole {
			lo, hi = 0, n-1
		}
		switch o.mode {
		case 1:
			for i := lo; i <= hi; i++ {
				dst[i] = o.c
			}
		case 2:
			for i := lo; i <= hi; i++ {
				dst[i] = dst[i]*0.5 + o.c
			}
		}
	}
	for _, o := range ops {
		apply(ref, o)
	}

	def := NewTaskDef("mixed", func(a *Args) {
		data := a.F32(0)
		o := a.Value(1).(op)
		apply(data, o)
	})
	for _, workers := range []int{1, 8} {
		x := make([]float32, n)
		rt := New(Config{Workers: workers})
		for _, o := range ops {
			var arg Arg
			region := Interval(int64(o.lo), int64(o.hi))
			switch {
			case o.whole && o.mode == 0:
				arg = In(x)
			case o.whole && o.mode == 1:
				arg = Out(x)
			case o.whole:
				arg = InOut(x)
			case o.mode == 0:
				arg = InR(x, region)
			case o.mode == 1:
				arg = OutR(x, region)
			default:
				arg = InOutR(x, region)
			}
			rt.Submit(def, arg, Value(o))
		}
		if err := rt.Close(); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if x[i] != ref[i] {
				t.Fatalf("workers=%d: x[%d] = %v, want %v", workers, i, x[i], ref[i])
			}
		}
	}
}

func TestWaitOnReportsTaskFailure(t *testing.T) {
	rt := newRT(t, 2)
	defer rt.Close()
	x := make([]float32, 2)
	boom := NewTaskDef("boomw", func(a *Args) { panic("w") })
	rt.Submit(boom, Out(x))
	if err := rt.WaitOn(x); err == nil {
		t.Fatalf("WaitOn must surface the writer's failure")
	}
}

func TestManyBarrierCycles(t *testing.T) {
	// Failure injection for the barrier/sync-back machinery: alternate
	// healthy and renaming-heavy cycles and ensure state stays coherent.
	rt := newRT(t, 6)
	defer rt.Close()
	x := make([]float32, 16)
	y := make([]float32, 16)
	for cycle := 1; cycle <= 30; cycle++ {
		rt.Submit(fillDef, Out(x), Value(float64(cycle)))
		rt.Submit(axpyDef, In(x), InOut(y), Value(1.0))
		rt.Submit(fillDef, Out(x), Value(float64(-cycle))) // rename pressure
		if err := rt.Barrier(); err != nil {
			t.Fatal(err)
		}
		if x[0] != float32(-cycle) {
			t.Fatalf("cycle %d: x[0] = %v, want %v", cycle, x[0], -cycle)
		}
	}
	// y accumulated 1+2+...+30.
	if y[0] != 465 {
		t.Fatalf("y[0] = %v, want 465", y[0])
	}
}

func TestStatsAccounting(t *testing.T) {
	// One worker so the producer cannot complete before the consumer is
	// analyzed, making the edge count deterministic.
	rt := newRT(t, 1)
	x := make([]float32, 4)
	rt.Submit(fillDef, Out(x), Value(1.0))
	rt.Submit(scaleDef, InOut(x), Value(2.0))
	rt.Close()
	st := rt.Stats()
	if st.TasksSubmitted != 2 || st.TasksExecuted != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Deps.Objects != 1 || st.Deps.TrueEdges != 1 {
		t.Fatalf("deps stats = %+v", st.Deps)
	}
}

func TestArgsAccessorsAndMismatches(t *testing.T) {
	rt := newRT(t, 1)
	defer rt.Close()
	xi64 := []int64{1, 2}
	xi32 := []int32{3}
	xint := []int{4}
	xb := []byte{5}
	xf64 := []float64{6}
	probe := NewTaskDef("probe", func(a *Args) {
		if a.Len() != 10 {
			panic("len")
		}
		if a.I64(0)[0] != 1 || a.I32(1)[0] != 3 || a.Ints(2)[0] != 4 || a.Bytes(3)[0] != 5 || a.F64(4)[0] != 6 {
			panic("data accessors")
		}
		if a.Int(5) != 42 || a.Int64(6) != 43 || a.Float(7) != 1.5 {
			panic("value accessors")
		}
		if a.Int(8) != 44 { // int64 value through Int
			panic("int64 as Int")
		}
		if a.Opaque(9).(string) != "raw" {
			panic("opaque")
		}
		if a.Worker() < 0 {
			panic("worker id")
		}
	})
	rt.Submit(probe, In(xi64), In(xi32), In(xint), In(xb), In(xf64),
		Value(42), Value(int64(43)), Value(1.5), Value(int64(44)), Opaque("raw"))
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
}

func TestPointerArguments(t *testing.T) {
	type cell struct{ v int }
	rt := newRT(t, 4)
	defer rt.Close()
	c := &cell{}
	inc := NewTaskDef("inc", func(a *Args) {
		p := a.Data(0).(*cell)
		p.v++
	})
	for i := 0; i < 10; i++ {
		rt.Submit(inc, InOut(c))
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	if c.v != 10 {
		t.Fatalf("c.v = %d, want 10", c.v)
	}
}

func TestDataKeyPanics(t *testing.T) {
	for _, bad := range []any{nil, 7, "s", []float32{}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("dataKey(%T) must panic", bad)
				}
			}()
			dataKey(bad)
		}()
	}
}
