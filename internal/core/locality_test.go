package core

import (
	"strconv"
	"sync/atomic"
	"testing"
)

// TestChainHitsDeterministic pins successor chaining on the smallest
// interesting graph: a 3-task inout chain at Workers: 1.  The submitter
// pops the head from the injector at the barrier and each completion
// releases exactly one successor, so both links chain inline —
// ChainHits is exactly 2 at any chain-depth budget ≥ 2.
func TestChainHitsDeterministic(t *testing.T) {
	rt := New(Config{Workers: 1, Locality: LocalityConfig{ChainDepth: 4}})
	defer rt.Close()
	x := make([]float32, 8)
	rt.Submit(fillDef, Out(x), Value(1.0))
	rt.Submit(scaleDef, InOut(x), Value(2.0))
	rt.Submit(scaleDef, InOut(x), Value(3.0))
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	if x[0] != 6 {
		t.Fatalf("x[0] = %v, want 6", x[0])
	}
	if st := rt.Stats(); st.Sched.ChainHits != 2 {
		t.Fatalf("ChainHits = %d, want 2 (3-task chain, one pop)", st.Sched.ChainHits)
	}
}

// TestChainDepthBounded: with ChainDepth 1 a 5-task chain must re-enter
// the scheduler after every chained link — pop, chain, pop, chain, pop
// — so exactly 2 of the 4 links chain.
func TestChainDepthBounded(t *testing.T) {
	rt := New(Config{Workers: 1, Locality: LocalityConfig{ChainDepth: 1}})
	defer rt.Close()
	x := make([]float32, 8)
	rt.Submit(fillDef, Out(x), Value(1.0))
	for i := 0; i < 4; i++ {
		rt.Submit(scaleDef, InOut(x), Value(2.0))
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	if x[0] != 16 {
		t.Fatalf("x[0] = %v, want 16", x[0])
	}
	st := rt.Stats()
	if st.Sched.ChainHits != 2 {
		t.Fatalf("ChainHits = %d, want 2 under depth bound 1", st.Sched.ChainHits)
	}
	if st.TasksExecuted != 5 {
		t.Fatalf("executed %d, want 5", st.TasksExecuted)
	}
}

// TestChainDisabledByDefault: the zero-value Locality config is the
// baseline — no chaining, no affinity pushes.
func TestChainDisabledByDefault(t *testing.T) {
	rt := New(Config{Workers: 1})
	defer rt.Close()
	x := make([]float32, 8)
	rt.Submit(fillDef, Out(x), Value(1.0))
	rt.Submit(scaleDef, InOut(x), Value(2.0))
	rt.Submit(scaleDef, InOut(x), Value(2.0))
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	if st := rt.Stats(); st.Sched.ChainHits != 0 || st.Sched.AffinityPushes != 0 {
		t.Fatalf("baseline config exercised the locality layer: %+v", st.Sched)
	}
}

// TestAffinityHintsStats pins the affinity path end to end at
// Workers: 1: after a barrier the producer has completed on worker 0,
// so the next writer over the same data is ready at submission with a
// hint and must land on deque 0 instead of the injector.
func TestAffinityHintsStats(t *testing.T) {
	rt := New(Config{Workers: 1, Locality: LocalityConfig{Affinity: true}})
	defer rt.Close()
	x := make([]float32, 8)
	rt.Submit(fillDef, Out(x), Value(1.0))
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	rt.Submit(scaleDef, InOut(x), Value(2.0))
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	if x[0] != 2 {
		t.Fatalf("x[0] = %v, want 2", x[0])
	}
	st := rt.Stats()
	if st.Sched.AffinityPushes != 1 {
		t.Fatalf("AffinityPushes = %d, want 1 (hinted scale task)", st.Sched.AffinityPushes)
	}
	if st.Sched.AffinityMisses != 0 {
		t.Fatalf("AffinityMisses = %d, want 0", st.Sched.AffinityMisses)
	}
}

// TestChainInvariantUnderRace is the chaining safety test the locality
// layer must pass under -race with real parallelism (the CI race job
// runs it at GOMAXPROCS=4): a chained successor bypasses the queues, so
// it must never also be claimed by a thief.  Every task CASes a
// per-instance "ran" flag — a double execution (chain + steal of the
// same node) trips it — and a per-chain busy flag proves two tasks of
// one inout chain never overlap.
func TestChainInvariantUnderRace(t *testing.T) {
	const (
		chains = 16
		depth  = 50
	)
	rt := New(Config{Workers: 8, Locality: LocalityConfig{Affinity: true, ChainDepth: 4}})
	defer rt.Close()

	ran := make([]atomic.Bool, chains*(depth+1))
	busy := make([]atomic.Bool, chains)
	step := NewTaskDef("chain_step_t", func(a *Args) {
		x := a.F32(0)
		id, chain := a.Int(1), a.Int(2)
		if !busy[chain].CompareAndSwap(false, true) {
			panic("two tasks of one chain ran concurrently")
		}
		if !ran[id].CompareAndSwap(false, true) {
			panic("task executed twice (chained and stolen)")
		}
		x[0]++
		busy[chain].Store(false)
	})

	bufs := make([][]float32, chains)
	b := rt.NewBatch()
	for c := 0; c < chains; c++ {
		bufs[c] = make([]float32, 8)
		for i := 0; i <= depth; i++ {
			b.Add(step, InOut(bufs[c]), Value(c*(depth+1)+i), Value(c))
		}
	}
	b.Submit()
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	for c := range bufs {
		if got := bufs[c][0]; got != depth+1 {
			t.Fatalf("chain %d ran %v steps, want %d", c, got, depth+1)
		}
	}
	st := rt.Stats()
	if st.TasksExecuted != chains*(depth+1) {
		t.Fatalf("executed %d, want %d", st.TasksExecuted, chains*(depth+1))
	}
	if st.Sched.ChainHits == 0 {
		t.Fatalf("dependent chains at depth 4 never chained: %+v", st.Sched)
	}
}

// BenchmarkChainDepth sweeps the successor-chaining depth on a
// chain-heavy workload; the CI race job runs it at -benchtime=1x as a
// smoke test that every depth configuration survives the race detector.
func BenchmarkChainDepth(b *testing.B) {
	for _, depth := range []int{0, 1, 4, 16} {
		b.Run("d"+strconv.Itoa(depth), func(b *testing.B) {
			rt := New(Config{Workers: 4, Locality: LocalityConfig{Affinity: depth > 0, ChainDepth: depth}})
			defer rt.Close()
			const chains, length = 8, 64
			bufs := make([][]float32, chains)
			for c := range bufs {
				bufs[c] = make([]float32, 256)
			}
			batch := rt.NewBatch()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for c := range bufs {
					batch.Add(fillDef, Out(bufs[c]), Value(1.0))
					for k := 0; k < length; k++ {
						batch.Add(scaleDef, InOut(bufs[c]), Value(1.0))
					}
				}
				batch.Submit()
				if err := rt.Barrier(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
