// Package core is the SMPSs runtime library: the public programming
// interface of this reproduction of "A Dependency-Aware Task-Based
// Programming Environment for Multi-Core Architectures" (CLUSTER 2008).
//
// An SMPSs program is a sequential program whose compute kernels are
// declared as tasks.  In the paper tasks are plain C functions annotated
// with "#pragma css task input(...) output(...) inout(...)"; the
// source-to-source compiler rewrites each call into a runtime invocation
// carrying every parameter's address, size and directionality.  This
// package is the runtime those calls target.  In Go the same contract is
// expressed directly:
//
//	sgemm := core.NewTaskDef("sgemm_t", func(a *core.Args) {
//	        kernels.GemmNN(a.F32(0), a.F32(1), a.F32(2), M)
//	})
//	rt := core.New(core.Config{Workers: 8})
//	rt.Submit(sgemm, core.In(ab), core.In(bb), core.InOut(cb))
//	rt.Barrier()
//
// The runtime analyzes dependencies between task parameters at run time,
// builds the task graph, renames data to remove false dependencies, and
// schedules ready tasks with the locality-aware work-stealing policy of
// paper §III.
package core

import (
	"repro/internal/dataid"
	"repro/internal/deps"
)

// Region re-exports deps.Region: the array-region specifier of the
// paper's §V.A language extension.
type Region = deps.Region

// Interval returns the 1-D region lo..hi inclusive ("data{lo..hi}").
func Interval(lo, hi int64) Region { return deps.Interval(lo, hi) }

// Span returns the 1-D region of n elements starting at lo ("{lo:n}").
func Span(lo, n int64) Region { return deps.Span(lo, n) }

// Rect returns an N-D region from (lo, hi) pairs per dimension.
func Rect(bounds ...int64) Region { return deps.Rect(bounds...) }

// argKind distinguishes how a submitted argument participates in
// dependency analysis.
type argKind uint8

const (
	argData argKind = iota
	argValue
	argOpaque
)

// Arg is one bound task parameter, built with In, Out, InOut, Value or
// Opaque (optionally restricted to a Region with the *R variants).
type Arg struct {
	kind   argKind
	mode   deps.Mode
	region deps.Region
	data   any
	value  any
}

// In declares data the task only reads ("input" clause).  data must be a
// slice or a pointer.
func In(data any) Arg { return Arg{kind: argData, mode: deps.ModeIn, data: data} }

// Out declares data the task completely overwrites ("output" clause).
// The runtime may hand the task a renamed, uninitialized instance, so the
// task must not read it before writing.
func Out(data any) Arg { return Arg{kind: argData, mode: deps.ModeOut, data: data} }

// InOut declares data the task reads and writes ("inout" clause).
func InOut(data any) Arg { return Arg{kind: argData, mode: deps.ModeInOut, data: data} }

// InR is In restricted to a sub-array region (§V.A extension).
func InR(data any, r Region) Arg {
	return Arg{kind: argData, mode: deps.ModeIn, region: r, data: data}
}

// OutR is Out restricted to a sub-array region.  Region writes never
// rename, so the task writes the named elements in place.
func OutR(data any, r Region) Arg {
	return Arg{kind: argData, mode: deps.ModeOut, region: r, data: data}
}

// InOutR is InOut restricted to a sub-array region.
func InOutR(data any, r Region) Arg {
	return Arg{kind: argData, mode: deps.ModeInOut, region: r, data: data}
}

// Value passes v by value: it is copied at submission and never analyzed
// for dependencies, like scalar parameters in the paper's examples
// ("input(i, j)" on ints).
func Value(v any) Arg { return Arg{kind: argValue, value: v} }

// Opaque passes v without any dependency analysis, reproducing the
// paper's "opaque pointers": parameters of type void* pass through the
// runtime unaltered (§II).  Opaque arguments are the foundation of the
// representant technique (§V.B).
func Opaque(v any) Arg { return Arg{kind: argOpaque, value: v} }

// dataKey returns the dependency-analysis identity of a data argument:
// the base address of the slice's backing array, or the pointer value.
// This mirrors the 2008 runtime, which keys its analysis on parameter
// memory addresses.
func dataKey(data any) uintptr { return dataid.Key(data) }

// allocLike returns an allocator producing fresh storage with the same
// shape as data, used by the renaming engine.
func allocLike(data any) func() any { return dataid.AllocLike(data) }

// byteSize returns the storage footprint of a data argument, used to
// account renamed memory against Config.MemoryLimit.
func byteSize(data any) int64 { return dataid.ByteSize(data) }

// copyInto copies src's contents into dst; both must have the shape
// produced by allocLike for the same exemplar.
func copyInto(dst, src any) { dataid.CopyInto(dst, src) }
