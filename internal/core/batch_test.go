package core

import "testing"

// TestSubmitBatchMatchesSubmit runs the same dependent chain through
// SubmitBatch and checks the final value: intra-batch dependencies must
// resolve exactly like separate Submit calls.
//
// The edge-count assertion is deterministic at any worker count:
// Deps.TrueEdges counts logical read-after-write dependencies at
// analysis time under the shard lock, whether or not the producer had
// already completed (which is the only part that depends on execution
// timing).  This test runs with real workers racing the submitter on
// purpose — the CI race job executes it under GOMAXPROCS=4.
func TestSubmitBatchMatchesSubmit(t *testing.T) {
	rt := New(Config{Workers: 4})
	defer rt.Close()
	x := make([]float32, 8)
	rt.SubmitBatch(
		Call(fillDef, Out(x), Value(1.0)),
		Call(scaleDef, InOut(x), Value(2.0)),
		Call(scaleDef, InOut(x), Value(2.0)),
		Call(scaleDef, InOut(x), Value(2.0)),
	)
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	if x[0] != 8 {
		t.Fatalf("x[0] = %v, want 8 (1 × 2³)", x[0])
	}
	if st := rt.Stats(); st.Deps.TrueEdges != 3 {
		t.Fatalf("edges = %d, want the 3-task chain", st.Deps.TrueEdges)
	}
}

// TestBatchReuse drives the arena-backed Batch through several rounds,
// including cross-object dependencies inside one round.
func TestBatchReuse(t *testing.T) {
	rt := New(Config{Workers: 4})
	defer rt.Close()
	x := make([]float32, 8)
	y := make([]float32, 8)
	b := rt.NewBatch()
	for round := 0; round < 3; round++ {
		b.Add(fillDef, Out(x), Value(float64(round+1)))
		b.Add(fillDef, Out(y), Value(0.0))
		b.Add(axpyDef, In(x), InOut(y), Value(2.0)) // y = 2x
		if b.Len() != 3 {
			t.Fatalf("Len = %d, want 3", b.Len())
		}
		b.Submit()
		if b.Len() != 0 {
			t.Fatalf("batch not reset after Submit")
		}
		if err := rt.Barrier(); err != nil {
			t.Fatal(err)
		}
		if want := float32(2 * (round + 1)); y[0] != want {
			t.Fatalf("round %d: y[0] = %v, want %v", round, y[0], want)
		}
	}
}

// TestBatchRenaming checks WAR/WAW hazards inside one batch still go
// through the renaming engine.
func TestBatchRenaming(t *testing.T) {
	rt := New(Config{Workers: 4})
	defer rt.Close()
	x := make([]float32, 8)
	y := make([]float32, 8)
	b := rt.NewBatch()
	b.Add(fillDef, Out(x), Value(1.0))
	b.Add(fillDef, Out(y), Value(0.0))
	b.Add(axpyDef, In(x), InOut(y), Value(1.0)) // reader of x
	b.Add(fillDef, Out(x), Value(100.0))        // WAR: renames instead of waiting
	b.Add(axpyDef, In(x), InOut(y), Value(1.0)) // y += 100
	b.Submit()
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	if y[0] != 101 {
		t.Fatalf("y[0] = %v, want 101", y[0])
	}
	if x[0] != 100 {
		t.Fatalf("x[0] = %v, want 100 (synced back after rename)", x[0])
	}
}

// TestTrackerShardsConfig runs a workload at both extremes of the shard
// knob and checks identical results and stats.
func TestTrackerShardsConfig(t *testing.T) {
	for _, shards := range []int{1, 16} {
		rt := New(Config{Workers: 4, TrackerShards: shards})
		x := make([]float32, 8)
		rt.Submit(fillDef, Out(x), Value(1.0))
		for i := 0; i < 10; i++ {
			rt.Submit(scaleDef, InOut(x), Value(2.0))
		}
		if err := rt.Close(); err != nil {
			t.Fatal(err)
		}
		if x[0] != 1024 {
			t.Fatalf("shards=%d: x[0] = %v, want 1024", shards, x[0])
		}
	}
}

// TestLegacyAblationConfig runs the pre-overhaul configuration (list
// scheduler, condvar wakeup, per-arg analysis) end to end: the ablation
// baseline must stay a working runtime, not a museum piece.
func TestLegacyAblationConfig(t *testing.T) {
	rt := New(Config{
		Workers:           4,
		Scheduler:         SchedLegacyLists,
		TrackerShards:     1,
		UnbatchedAnalysis: true,
		LegacyWakeup:      true,
	})
	x := make([]float32, 8)
	y := make([]float32, 8)
	rt.Submit(fillDef, Out(x), Value(3.0))
	rt.Submit(fillDef, Out(y), Value(1.0))
	rt.Submit(axpyDef, In(x), InOut(y), Value(1.0))
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if y[0] != 4 {
		t.Fatalf("y[0] = %v, want 4", y[0])
	}
}

// TestWorkStealingStatsExercised checks the runtime actually drives the
// new scheduler machinery under a fan-out workload: own-deque pushes and
// pops must dominate, and nothing may be lost.
func TestWorkStealingStatsExercised(t *testing.T) {
	rt := New(Config{Workers: 4})
	defer rt.Close()
	const (
		chains = 16 // independent chains executed concurrently
		depth  = 50
	)
	bufs := make([][]float32, chains)
	b := rt.NewBatch()
	for c := range bufs {
		bufs[c] = make([]float32, 8)
		b.Add(fillDef, Out(bufs[c]), Value(1.0))
		for i := 0; i < depth; i++ {
			b.Add(scaleDef, InOut(bufs[c]), Value(1.0))
		}
		b.Submit()
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.TasksExecuted != chains*(depth+1) {
		t.Fatalf("executed %d, want %d", st.TasksExecuted, chains*(depth+1))
	}
	if st.Sched.PushOwn == 0 || st.Sched.PopOwn == 0 {
		t.Fatalf("chain successors never used the own deques: %+v", st.Sched)
	}
}
