package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/deps"
	"repro/internal/graph"
	"repro/internal/sched"
	"repro/internal/trace"
)

// SchedulerKind selects the ready-task scheduling policy.
type SchedulerKind int

const (
	// SchedLocality is the paper's scheduler (§III): per-worker ready
	// lists consumed LIFO, a main FIFO list, a high-priority list, and
	// FIFO work-stealing in creation order.
	SchedLocality SchedulerKind = iota
	// SchedGlobalFIFO is the ablation policy: one central FIFO queue,
	// the structure of SuperMatrix (paper §VII.C).
	SchedGlobalFIFO
	// SchedLegacyLists is the seed runtime's list-based locality policy
	// (unbounded per-worker lists, single-task FIFO steals), kept so the
	// scheduler-overhaul ablation measures against the real predecessor.
	SchedLegacyLists
)

// DefaultGraphLimit is the open-task ceiling applied when Config.GraphLimit
// is zero.  When the graph grows past it, the submitting thread behaves as
// a worker until the graph shrinks — the paper's "graph size limit"
// blocking condition (§III).
const DefaultGraphLimit = 16384

// Config parameterizes a Runtime.
type Config struct {
	// Workers is the total number of threads executing tasks, counting
	// the main thread (which contributes whenever it blocks).  Zero
	// means runtime.GOMAXPROCS(0).
	Workers int
	// Scheduler selects the scheduling policy; default SchedLocality.
	Scheduler SchedulerKind
	// DisableRenaming turns off the renaming engine, materializing
	// WAR/WAW hazards as real edges (ablation).
	DisableRenaming bool
	// LegacyRenaming restores the seed runtime's rename lifecycle: a
	// fresh heap allocation per rename, superseded versions abandoned
	// to the garbage collector, and renamed bytes accounted against
	// the owning task instead of against live storage.  Kept as the
	// measured baseline for the ablation-rename experiment.
	LegacyRenaming bool
	// GraphLimit bounds the number of open (submitted, not completed)
	// tasks before Submit throttles.  Zero selects DefaultGraphLimit;
	// negative disables throttling.
	GraphLimit int
	// TrackerShards sets the dependency tracker's lock-stripe count.
	// Zero selects the default (one stripe per core, rounded up to a
	// power of two); one degenerates to a single global mutex — the
	// ablation baseline.
	TrackerShards int
	// UnbatchedAnalysis makes every parameter enter the dependency
	// tracker through its own lock round-trip instead of one batched
	// shard-lock pass per task — the pre-overhaul submission path, kept
	// as an ablation so the batching win stays measurable.
	UnbatchedAnalysis bool
	// LegacyWakeup replaces the per-worker parking protocol with the
	// seed's global mutex+condvar (broadcast on every push while anyone
	// sleeps) — the pre-overhaul wake machinery, kept as an ablation.
	LegacyWakeup bool
	// MemoryLimit bounds the bytes of renamed storage belonging to
	// tasks that have not completed yet; when exceeded, the submitting
	// thread executes tasks until renamed memory is released — the
	// paper's "memory limit" blocking condition (§III).  Zero disables
	// the limit.
	MemoryLimit int64
	// Tracer, when non-nil, records task lifecycle events.
	Tracer *trace.Tracer
	// Recorder, when non-nil, retains the full task graph for export
	// (Fig. 5).  Recording is unbounded; use it for analysis runs only.
	Recorder *graph.Recorder
}

// Stats is a snapshot of runtime activity counters.
type Stats struct {
	// TasksSubmitted and TasksExecuted count task instances.
	TasksSubmitted int64
	TasksExecuted  int64
	// Deps is the dependency tracker's view (edges, renames, objects).
	Deps deps.Stats
	// Sched is the scheduler's view (queue destinations, steals).
	Sched sched.Stats
	// SyncBackCopies counts renamed objects copied back to user storage
	// at barriers.
	SyncBackCopies int64
	// MainHelped counts tasks the main thread executed while blocked.
	MainHelped int64

	// Memory-manager view of the rename lifecycle.  Renames mirrors
	// Deps.Renames for at-a-glance access; RenamesElided counts writes
	// that proved their hazard dead and proceeded in place; PoolHits
	// and PoolMisses split renames into recycled vs. freshly allocated
	// instances (PoolMisses is the number of real allocations);
	// LiveRenamedBytes is the renamed storage currently alive — zero
	// after a barrier on a fully-drained graph.
	Renames          int64
	RenamesElided    int64
	PoolHits         int64
	PoolMisses       int64
	LiveRenamedBytes int64
}

// Runtime is one SMPSs runtime instance: it owns the task graph, the
// dependency tracker, the worker threads and the scheduler.
//
// The SMPSs model is single-submitter: the main program (one goroutine)
// calls Submit, Barrier and WaitOn; task bodies run on the runtime's
// workers and must not submit tasks themselves (the paper's runtime
// treats task calls inside tasks as plain function calls — do the same by
// calling the body function directly).
type Runtime struct {
	cfg   Config
	g     *graph.Graph
	tr    *deps.Tracker
	sc    sched.Dispatcher
	tracr *trace.Tracer

	outstanding  atomic.Int64
	submitted    atomic.Int64
	executed     atomic.Int64
	mainHelped   atomic.Int64
	syncCopies   atomic.Int64
	waiters      atomic.Int64
	renamedBytes atomic.Int64

	errMu    sync.Mutex
	firstErr error

	closed atomic.Bool
	wg     sync.WaitGroup

	// locals holds the worker-local registry slots: locals[w] is owned
	// by the thread executing as worker w (see scratch.go).
	locals [][]any

	// Submission scratch reused across Submit/SubmitBatch calls to keep
	// the per-task tracker entry allocation-free.  The SMPSs model is
	// single-submitter (one main goroutine), so the buffers are never
	// shared.
	accBuf []deps.Access
	resBuf []deps.Resolution
	ixBuf  []int
}

// New creates and starts a runtime.  The caller must eventually call
// Close to release the worker goroutines.
func New(cfg Config) *Runtime {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.GraphLimit == 0 {
		cfg.GraphLimit = DefaultGraphLimit
	}
	rt := &Runtime{cfg: cfg, tracr: cfg.Tracer}
	rt.locals = make([][]any, cfg.Workers)

	var policy sched.Policy
	switch cfg.Scheduler {
	case SchedGlobalFIFO:
		policy = sched.NewGlobalFIFO()
	case SchedLegacyLists:
		policy = sched.NewListLocality(cfg.Workers)
	default:
		policy = sched.NewLocality(cfg.Workers)
	}
	if cfg.LegacyWakeup {
		rt.sc = sched.NewCondvarScheduler(policy)
	} else {
		rt.sc = sched.NewScheduler(policy, cfg.Workers)
	}
	rt.g = graph.New(func(n *graph.Node, by int) { rt.sc.Push(n, by) })
	if cfg.Recorder != nil {
		rt.g.Attach(cfg.Recorder)
	}
	rt.tr = deps.NewTrackerShards(rt.g, cfg.TrackerShards)
	rt.tr.DisableRenaming = cfg.DisableRenaming
	rt.tr.LegacyRenaming = cfg.LegacyRenaming
	// Reclaimed renamed storage wakes the main thread when it blocks on
	// the memory limit — the parked wait's signal (paper §III).
	rt.tr.SetReclaimHook(func() {
		if rt.waiters.Load() > 0 {
			rt.sc.Wake(0)
		}
	})

	// The main code runs on the main thread and the runtime creates as
	// many worker threads as necessary to fill out the rest of the
	// cores (paper §III).  Worker identities 1..Workers-1; the main
	// thread participates as worker 0 whenever it blocks.
	for w := 1; w < cfg.Workers; w++ {
		rt.wg.Add(1)
		go rt.workerLoop(w)
	}
	return rt
}

// Workers returns the configured total thread count.
func (rt *Runtime) Workers() int { return rt.cfg.Workers }

// Stats returns a snapshot of the runtime's counters.
func (rt *Runtime) Stats() Stats {
	d := rt.tr.Stats()
	return Stats{
		TasksSubmitted:   rt.submitted.Load(),
		TasksExecuted:    rt.executed.Load(),
		Deps:             d,
		Sched:            rt.sc.Stats(),
		SyncBackCopies:   rt.syncCopies.Load(),
		MainHelped:       rt.mainHelped.Load(),
		Renames:          d.Renames,
		RenamesElided:    d.RenamesElided,
		PoolHits:         d.PoolHits,
		PoolMisses:       d.PoolMisses,
		LiveRenamedBytes: rt.liveRenamedBytes(),
	}
}

// liveRenamedBytes returns the memory-limit gauge: bytes of renamed
// storage alive right now.  Under LegacyRenaming the seed's per-task
// accounting applies (bytes pinned by incomplete tasks); otherwise the
// pool's acquire/release gauge, which also covers storage kept alive by
// diverged objects after their tasks completed.
func (rt *Runtime) liveRenamedBytes() int64 {
	if rt.cfg.LegacyRenaming {
		return rt.renamedBytes.Load()
	}
	return rt.tr.LiveRenamedBytes()
}

// Err returns the first task failure (panic) observed, or nil.
func (rt *Runtime) Err() error {
	rt.errMu.Lock()
	defer rt.errMu.Unlock()
	return rt.firstErr
}

func (rt *Runtime) setErr(err error) {
	rt.errMu.Lock()
	if rt.firstErr == nil {
		rt.firstErr = err
	}
	rt.errMu.Unlock()
}

// Submit invokes a task: the runtime analyzes each parameter's
// directionality against the current state of its data, adds the task to
// the graph with its true dependencies, and schedules it as soon as they
// are satisfied.  Submit returns immediately unless the open-graph limit
// is reached, in which case the calling thread executes tasks until the
// graph shrinks (paper §III: "a memory limit, or a graph size limit").
func (rt *Runtime) Submit(def *TaskDef, args ...Arg) {
	if rt.closed.Load() {
		panic("core: Submit on closed runtime")
	}
	rt.throttle()
	rt.submitOne(def, args)
}

// TaskCall is one deferred task invocation: a definition plus its bound
// arguments, the unit of SubmitBatch.
type TaskCall struct {
	Def  *TaskDef
	Args []Arg
}

// Call builds a TaskCall for SubmitBatch.
func Call(def *TaskDef, args ...Arg) TaskCall { return TaskCall{Def: def, Args: args} }

// SubmitBatch submits a sequence of task invocations, equivalent to
// calling Submit once per element but with the per-call overhead
// amortized: the closed-runtime check happens once, the submission
// scratch buffers stay warm, and each task enters the dependency tracker
// through one batched shard-lock pass (AnalyzeBatch) instead of one lock
// round-trip per parameter.  Producers with tight submission loops —
// blocked linear algebra, parameter sweeps — use it to keep the main
// thread ahead of the workers.
//
// Tasks are analyzed in slice order, so dependencies between tasks of
// the same batch resolve exactly as they would across separate Submit
// calls, and each task is released to the scheduler as soon as its own
// analysis completes (earlier batch elements can be executing while
// later ones are still being analyzed).
func (rt *Runtime) SubmitBatch(calls ...TaskCall) {
	if rt.closed.Load() {
		panic("core: SubmitBatch on closed runtime")
	}
	for i := range calls {
		rt.throttle()
		rt.submitOne(calls[i].Def, calls[i].Args)
	}
}

// batchCall is one recorded invocation inside a Batch: the definition
// plus the span of the batch's argument arena holding its arguments.
type batchCall struct {
	def    *TaskDef
	lo, hi int
}

// Batch accumulates task invocations and submits them in one go,
// reusing its internal storage across rounds so a steady submission
// loop allocates nothing per task.  It is the allocation-free form of
// SubmitBatch: Call/TaskCall values each carry their own argument
// slice, while Batch.Add copies arguments into one growing arena.
//
// A Batch belongs to the submitting thread (the SMPSs model is
// single-submitter) and must not be shared.
type Batch struct {
	rt    *Runtime
	calls []batchCall
	args  []Arg
}

// NewBatch creates an empty reusable batch bound to the runtime.
func (rt *Runtime) NewBatch() *Batch { return &Batch{rt: rt} }

// Add records one task invocation in the batch.
func (b *Batch) Add(def *TaskDef, args ...Arg) {
	lo := len(b.args)
	b.args = append(b.args, args...)
	b.calls = append(b.calls, batchCall{def: def, lo: lo, hi: len(b.args)})
}

// Len returns the number of recorded invocations.
func (b *Batch) Len() int { return len(b.calls) }

// Submit submits every recorded invocation in order and resets the
// batch for reuse.  Semantics match SubmitBatch.
func (b *Batch) Submit() {
	rt := b.rt
	if rt.closed.Load() {
		panic("core: Batch.Submit on closed runtime")
	}
	for _, c := range b.calls {
		rt.throttle()
		rt.submitOne(c.def, b.args[c.lo:c.hi])
	}
	b.calls = b.calls[:0]
	// Drop the data references so batch reuse does not pin user arrays.
	for i := range b.args {
		b.args[i] = Arg{}
	}
	b.args = b.args[:0]
}

// throttle blocks the submitting thread — executing tasks meanwhile —
// while either of the paper's §III blocking conditions holds (graph size
// limit, memory limit).  The graph limit applies hysteresis: once hit,
// the submitter stays blocked until a quarter of the limit has drained,
// so it does not bounce across the threshold (waking once per task
// completion) while the workers chew at the boundary.
//
// The memory limit is a parked wait, not a spin: when no task is
// available to help with, the main thread sleeps in the scheduler and is
// woken either by a task completion or by the tracker's reclaim hook the
// moment renamed storage returns to the pool.  If the limit is still
// exceeded once every task has completed, the remaining live bytes
// belong to idle diverged objects that no completion can ever release —
// the runtime syncs them back (reclaiming their instances) and
// proceeds, since the limit is a blocking condition, not a hard cap.
func (rt *Runtime) throttle() {
	if limit := int64(rt.cfg.GraphLimit); limit > 0 {
		if rt.g.Open() >= limit {
			low := limit - limit/4
			for rt.g.Open() >= low {
				if !rt.helpOnce(func() bool { return rt.g.Open() < low }) {
					break
				}
			}
		}
	}
	if limit := rt.cfg.MemoryLimit; limit > 0 {
		for rt.liveRenamedBytes() >= limit {
			if rt.outstanding.Load() == 0 {
				rt.syncCopies.Add(int64(rt.tr.SyncAll()))
				break
			}
			rt.helpOnce(func() bool {
				return rt.liveRenamedBytes() < limit || rt.outstanding.Load() == 0
			})
		}
	}
}

// submitOne adds one task to the graph: all data parameters are resolved
// through a single batched tracker entry, then the node is sealed.
func (rt *Runtime) submitOne(def *TaskDef, args []Arg) {
	node := rt.g.AddNode(def.kind, def.Name, def.HighPriority, nil)
	rec := &taskRec{def: def, args: make([]boundArg, len(args))}
	node.Payload = rec
	accs := rt.accBuf[:0]
	ixs := rt.ixBuf[:0]
	for i := range args {
		a := &args[i]
		switch a.kind {
		case argValue, argOpaque:
			rec.args[i] = boundArg{kind: a.kind, instance: a.value}
		case argData:
			accs = append(accs, deps.Access{
				Key:    dataKey(a.data),
				Mode:   a.mode,
				Region: a.region,
				Data:   a.data,
				Alloc:  allocLike(a.data),
				Copy:   copyInto,
			})
			ixs = append(ixs, i)
		}
	}
	var ress []deps.Resolution
	if rt.cfg.UnbatchedAnalysis {
		ress = rt.resBuf[:0]
		for j := range accs {
			ress = append(ress, rt.tr.Analyze(node, accs[j]))
		}
	} else {
		ress = rt.tr.AnalyzeBatch(node, accs, rt.resBuf[:0])
	}
	for j := range ress {
		res := &ress[j]
		i := ixs[j]
		if res.Renamed {
			if rt.cfg.LegacyRenaming {
				// Seed accounting: the bytes pin against the task and
				// drain at its completion.  The pooled lifecycle
				// accounts on acquire/release inside the tracker.
				rec.renamedBytes += byteSize(args[i].data)
			}
			rt.tracr.Emit(0, trace.EvRename, def.kind, def.Name, node.ID)
		}
		rec.args[i] = boundArg{
			kind:     argData,
			instance: res.Instance,
			copyFrom: res.CopyFrom,
			copyFn:   res.Copy,
		}
	}
	// Return the scratch to the runtime and drop the data references the
	// entries hold, so reuse does not pin user arrays.
	for j := range accs {
		accs[j] = deps.Access{}
	}
	for j := range ress {
		ress[j] = deps.Resolution{}
	}
	rt.accBuf, rt.resBuf, rt.ixBuf = accs, ress, ixs
	rt.submitted.Add(1)
	rt.outstanding.Add(1)
	rt.renamedBytes.Add(rec.renamedBytes)
	rt.tracr.Emit(0, trace.EvCreate, def.kind, def.Name, node.ID)
	rt.g.Seal(node)
}

// exec runs one task body on thread self.
func (rt *Runtime) exec(n *graph.Node, self int) {
	rt.g.MarkRunning(n)
	rec := n.Payload.(*taskRec)
	// Seed renamed inout parameters.  The RAW edge on the previous
	// producer guarantees the source contents are final.
	for i := range rec.args {
		if b := &rec.args[i]; b.copyFrom != nil {
			b.copyFn(b.instance, b.copyFrom)
			b.copyFrom = nil
		}
	}
	rt.tracr.Emit(self, trace.EvStart, n.Kind, rec.def.Name, n.ID)
	func() {
		defer func() {
			if r := recover(); r != nil {
				rt.setErr(fmt.Errorf("core: task %s (#%d) panicked: %v", rec.def.Name, n.ID, r))
			}
		}()
		rec.def.Fn(&Args{rec: rec, rt: rt, worker: self})
	}()
	rt.tracr.Emit(self, trace.EvEnd, n.Kind, rec.def.Name, n.ID)
	rt.g.Complete(n, self)
	rt.executed.Add(1)
	if rec.renamedBytes != 0 {
		rt.renamedBytes.Add(-rec.renamedBytes)
	}
	if rt.outstanding.Add(-1) == 0 || rt.waiters.Load() > 0 {
		// Wake the blocked Barrier/WaitOn/throttle caller so it re-checks
		// its condition.  Only the main thread (worker 0) waits on cancel
		// conditions, so the wake is targeted at it rather than
		// broadcasting to every parked worker on every completion.
		rt.sc.Wake(0)
	}
}

// workerLoop is the body of each dedicated worker thread.
func (rt *Runtime) workerLoop(self int) {
	defer rt.wg.Done()
	for {
		n := rt.sc.Get(self, nil)
		if n == nil {
			return
		}
		rt.exec(n, self)
	}
}

// helpOnce lets the main thread execute a single task, parking until one
// is available or until done() reports the blocking condition cleared.
// It returns false when done() fired without work being found.
func (rt *Runtime) helpOnce(done func() bool) bool {
	rt.waiters.Add(1)
	n := rt.sc.Get(0, done)
	rt.waiters.Add(-1)
	if n == nil {
		return false
	}
	rt.mainHelped.Add(1)
	rt.exec(n, 0)
	return true
}

// Barrier blocks until every submitted task has completed, with the main
// thread behaving as a worker in the meantime (paper §III).  On return,
// any data whose current contents live in renamed storage have been
// copied back to the variables the program named, and the first task
// failure (if any) is returned.
func (rt *Runtime) Barrier() error {
	rt.tracr.Emit(0, trace.EvBarrier, -1, "", 0)
	for rt.outstanding.Load() > 0 {
		rt.helpOnce(func() bool { return rt.outstanding.Load() == 0 })
	}
	rt.syncCopies.Add(int64(rt.tr.SyncAll()))
	rt.tracr.Emit(0, trace.EvBarrierDone, -1, "", 0)
	return rt.Err()
}

// WaitOn blocks until all pending writers of data have completed,
// helping to execute tasks meanwhile, then makes the current contents
// visible in data (copying back from renamed storage if needed).  It is
// the equivalent of the CellSs/SMPSs wait-on primitive: after WaitOn the
// main program may read data without a full barrier.
func (rt *Runtime) WaitOn(data any) error { return rt.WaitOnRegion(data, deps.Full) }

// WaitOnRegion is WaitOn restricted to a region of data.  Note that if
// the object was renamed (whole-object writes), the sync-back copies the
// entire object.
func (rt *Runtime) WaitOnRegion(data any, r Region) error {
	key := dataKey(data)
	pending := func() bool { return len(rt.tr.PendingWriters(key, r)) == 0 }
	for !pending() {
		rt.helpOnce(pending)
	}
	if rt.tr.SyncObject(key) {
		rt.syncCopies.Add(1)
	}
	return rt.Err()
}

// Close waits for all outstanding work (an implicit barrier), then stops
// the worker threads.  The runtime must not be used afterwards.
func (rt *Runtime) Close() error {
	err := rt.Barrier()
	rt.closed.Store(true)
	rt.sc.Close()
	rt.wg.Wait()
	// Workers are gone (wg.Wait is the happens-before edge for their
	// slot writes); recycle worker-local values that support it.
	rt.releaseLocals()
	return err
}

// Run is a convenience wrapper: it creates a runtime, invokes body with
// it, and closes it, returning the first error from tasks or from body.
func Run(cfg Config, body func(rt *Runtime) error) error {
	rt := New(cfg)
	bodyErr := body(rt)
	closeErr := rt.Close()
	if bodyErr != nil {
		return bodyErr
	}
	return closeErr
}
