package core

import (
	"time"

	"repro/internal/deps"
	"repro/internal/graph"
	"repro/internal/sched"
	"repro/internal/trace"
)

// SchedulerKind selects the ready-task scheduling policy.
type SchedulerKind int

const (
	// SchedLocality is the paper's scheduler (§III): per-worker ready
	// lists consumed LIFO, a main FIFO list, a high-priority list, and
	// FIFO work-stealing in creation order.
	SchedLocality SchedulerKind = iota
	// SchedGlobalFIFO is the ablation policy: one central FIFO queue,
	// the structure of SuperMatrix (paper §VII.C).
	SchedGlobalFIFO
	// SchedLegacyLists is the seed runtime's list-based locality policy
	// (unbounded per-worker lists, single-task FIFO steals), kept so the
	// scheduler-overhaul ablation measures against the real predecessor.
	SchedLegacyLists
)

// LocalityConfig gates the scheduler's locality layer: the paper's
// cache-affinity placement (§III) rebuilt on top of the work-stealing
// mux instead of the seed's locality lists.  The zero value keeps the
// plain work-stealing behavior as the measured baseline.
type LocalityConfig struct {
	// Affinity records, at dependency-analysis time, the worker that
	// last wrote each accessed version; a task that is ready at
	// submission is then pushed to that worker's deque — where its
	// operands are plausibly still cache-hot — instead of the shared
	// injector, and a push wakes the hinted worker when it is parked.
	// Tasks released by a completion are unaffected (they already land
	// on the releasing worker's deque).
	Affinity bool
	// ChainDepth bounds inline successor chaining: when a completing
	// task releases exactly one ready successor, the executing worker
	// runs it directly — bypassing the deques, the wake protocol, and
	// any thief — keeping the produced operands in cache.  At most
	// ChainDepth successors chain per task popped from the scheduler;
	// zero or negative disables chaining.  Chains yield to queued
	// high-priority work.
	ChainDepth int
}

// DefaultGraphLimit is the open-task ceiling applied when Config.GraphLimit
// is zero.  When the graph grows past it, the submitting thread behaves as
// a worker until the graph shrinks — the paper's "graph size limit"
// blocking condition (§III).
const DefaultGraphLimit = 16384

// Config parameterizes a Runtime.
type Config struct {
	// Workers is the total number of threads executing tasks, counting
	// the main thread (which contributes whenever it blocks).  Zero
	// means runtime.GOMAXPROCS(0).
	Workers int
	// Scheduler selects the scheduling policy; default SchedLocality.
	Scheduler SchedulerKind
	// Locality gates the scheduler's locality layer (affinity hints and
	// successor chaining); the zero value keeps plain work stealing.
	Locality LocalityConfig
	// DisableRenaming turns off the renaming engine, materializing
	// WAR/WAW hazards as real edges (ablation).
	DisableRenaming bool
	// LegacyRenaming restores the seed runtime's rename lifecycle: a
	// fresh heap allocation per rename, superseded versions abandoned
	// to the garbage collector, and renamed bytes accounted against
	// the owning task instead of against live storage.  Kept as the
	// measured baseline for the ablation-rename experiment.
	LegacyRenaming bool
	// GraphLimit bounds the number of open (submitted, not completed)
	// tasks before Submit throttles.  Zero selects DefaultGraphLimit;
	// negative disables throttling.
	GraphLimit int
	// TrackerShards sets the dependency tracker's lock-stripe count.
	// Zero selects the default (one stripe per core, rounded up to a
	// power of two); one degenerates to a single global mutex — the
	// ablation baseline.
	TrackerShards int
	// UnbatchedAnalysis makes every parameter enter the dependency
	// tracker through its own lock round-trip instead of one batched
	// shard-lock pass per task — the pre-overhaul submission path, kept
	// as an ablation so the batching win stays measurable.
	UnbatchedAnalysis bool
	// LegacyWakeup replaces the per-worker parking protocol with the
	// seed's global mutex+condvar (broadcast on every push while anyone
	// sleeps) — the pre-overhaul wake machinery, kept as an ablation.
	LegacyWakeup bool
	// MemoryLimit bounds the bytes of renamed storage belonging to
	// tasks that have not completed yet; when exceeded, the submitting
	// thread executes tasks until renamed memory is released — the
	// paper's "memory limit" blocking condition (§III).  Zero disables
	// the limit.
	MemoryLimit int64
	// Tracer, when non-nil, records task lifecycle events.
	Tracer *trace.Tracer
	// Recorder, when non-nil, retains the full task graph for export
	// (Fig. 5).  Recording is unbounded; use it for analysis runs only.
	Recorder *graph.Recorder
	// OnFailure selects the fate of a failed task's dependents:
	// FailContinue (default, run them anyway) or FailPoison (skip and
	// count them).
	OnFailure FailurePolicy
	// Deadline, when positive, cancels the runtime's context that long
	// after creation (see ContextConfig.Deadline).
	Deadline time.Duration
}

// contextConfig extracts the per-context half of a Config.
func (cfg Config) contextConfig() ContextConfig {
	return ContextConfig{
		Scheduler:         cfg.Scheduler,
		Locality:          cfg.Locality,
		DisableRenaming:   cfg.DisableRenaming,
		LegacyRenaming:    cfg.LegacyRenaming,
		GraphLimit:        cfg.GraphLimit,
		TrackerShards:     cfg.TrackerShards,
		UnbatchedAnalysis: cfg.UnbatchedAnalysis,
		MemoryLimit:       cfg.MemoryLimit,
		Tracer:            cfg.Tracer,
		Recorder:          cfg.Recorder,
		OnFailure:         cfg.OnFailure,
		Deadline:          cfg.Deadline,
	}
}

// Stats is a snapshot of runtime activity counters.
type Stats struct {
	// TasksSubmitted and TasksExecuted count task instances.
	TasksSubmitted int64
	TasksExecuted  int64
	// Deps is the dependency tracker's view (edges, renames, objects).
	Deps deps.Stats
	// Sched is the scheduler's view (queue destinations, steals).
	Sched sched.Stats
	// SyncBackCopies counts renamed objects copied back to user storage
	// at barriers.
	SyncBackCopies int64
	// MainHelped counts tasks the main thread executed while blocked.
	MainHelped int64

	// Memory-manager view of the rename lifecycle.  Renames mirrors
	// Deps.Renames for at-a-glance access; RenamesElided counts writes
	// that proved their hazard dead and proceeded in place; PoolHits
	// and PoolMisses split renames into recycled vs. freshly allocated
	// instances (PoolMisses is the number of real allocations);
	// LiveRenamedBytes is the renamed storage currently alive — zero
	// after a barrier on a fully-drained graph.
	Renames          int64
	RenamesElided    int64
	PoolHits         int64
	PoolMisses       int64
	LiveRenamedBytes int64

	// Failure-domain view.  Failures counts task bodies that panicked
	// or called Args.Fail; Poisoned counts dependents skipped under
	// OnFailure: FailPoison; Canceled counts tasks drained as skips
	// after Cancel/Deadline/Drain.  Skipped tasks are not in
	// TasksExecuted.
	Failures int64
	Poisoned int64
	Canceled int64
}

// Runtime is one private SMPSs runtime instance: the single-tenant view
// of the Pool/Context split, kept as the original programming interface.
// It owns a private pool (its dedicated workers) plus one context (the
// task graph, dependency tracker and throttle state); everything it did
// before the multi-tenant refactor it still does, with identical worker
// numbering — main thread 0, dedicated workers 1..Workers-1.
//
// The SMPSs model is single-submitter: the main program (one goroutine)
// calls Submit, Barrier and WaitOn; task bodies run on the runtime's
// workers and must not submit tasks themselves (the paper's runtime
// treats task calls inside tasks as plain function calls — do the same by
// calling the body function directly).  Programs that want many
// concurrent submitters use a shared Pool with one Context per client
// instead of many Runtimes.
type Runtime struct {
	cfg  Config
	pool *Pool
	ctx  *Context
}

// New creates and starts a runtime.  The caller must eventually call
// Close to release the worker goroutines.
func New(cfg Config) *Runtime {
	cfg.Workers = resolveWorkers(cfg.Workers)
	// One submitter slot (the main thread, worker 0) plus Workers-1
	// dedicated workers reproduces the seed's thread layout exactly.
	pool := newPool(PoolConfig{
		Workers:      cfg.Workers - 1,
		MaxContexts:  1,
		LegacyWakeup: cfg.LegacyWakeup,
	})
	ctx, err := pool.NewContext(cfg.contextConfig())
	if err != nil {
		// A fresh single-slot pool cannot refuse its first context.
		panic(err)
	}
	return &Runtime{cfg: cfg, pool: pool, ctx: ctx}
}

// Workers returns the configured total thread count.
func (rt *Runtime) Workers() int { return rt.cfg.Workers }

// Context returns the runtime's single context, the handle shared-pool
// programs use directly.
func (rt *Runtime) Context() *Context { return rt.ctx }

// Stats returns a snapshot of the runtime's counters.
func (rt *Runtime) Stats() Stats {
	st := rt.ctx.Stats()
	// The pool is private, so its parking counters belong to this
	// runtime's snapshot just as before the pool/context split.
	ps := rt.pool.Stats()
	st.Sched.Parks, st.Sched.Unparks = ps.Parks, ps.Unparks
	return st
}

// Err returns the first task failure observed — a *TaskError — or nil.
// The latch is sticky and identical to Context.Err: it survives
// Barrier and is returned by every later Barrier/WaitOn/Close until
// ClearErr.
func (rt *Runtime) Err() error { return rt.ctx.Err() }

// ClearErr clears the sticky task-failure latch (see Context.ClearErr).
func (rt *Runtime) ClearErr() { rt.ctx.ClearErr() }

// Cancel aborts the runtime's context exactly as Context.Cancel: tasks
// not yet started drain as canceled skips and Barrier/WaitOn/Close
// return a *CanceledError.  Safe to call from any goroutine.
func (rt *Runtime) Cancel() { rt.ctx.Cancel() }

// liveRenamedBytes is the context's memory-limit gauge (kept on the
// wrapper for the white-box tests that probe it).
func (rt *Runtime) liveRenamedBytes() int64 { return rt.ctx.liveRenamedBytes() }

// Submit invokes a task: the runtime analyzes each parameter's
// directionality against the current state of its data, adds the task to
// the graph with its true dependencies, and schedules it as soon as they
// are satisfied.  Submit returns immediately unless the open-graph limit
// is reached, in which case the calling thread executes tasks until the
// graph shrinks (paper §III: "a memory limit, or a graph size limit").
func (rt *Runtime) Submit(def *TaskDef, args ...Arg) {
	if rt.ctx.Closed() {
		panic("core: Submit on closed runtime")
	}
	//lint:allow submiterr void seed API like css_submit; refusal surfaces via Err at the barrier
	rt.ctx.Submit(def, args...)
}

// SubmitBatch submits a sequence of task invocations, equivalent to
// calling Submit once per element but with the per-call overhead
// amortized: the closed-runtime check happens once, the submission
// scratch buffers stay warm, and each task enters the dependency tracker
// through one batched shard-lock pass (AnalyzeBatch) instead of one lock
// round-trip per parameter.  Producers with tight submission loops —
// blocked linear algebra, parameter sweeps — use it to keep the main
// thread ahead of the workers.
//
// Tasks are analyzed in slice order, so dependencies between tasks of
// the same batch resolve exactly as they would across separate Submit
// calls, and each task is released to the scheduler as soon as its own
// analysis completes (earlier batch elements can be executing while
// later ones are still being analyzed).
func (rt *Runtime) SubmitBatch(calls ...TaskCall) {
	if rt.ctx.Closed() {
		panic("core: SubmitBatch on closed runtime")
	}
	//lint:allow submiterr void seed API like css_submit; refusal surfaces via Err at the barrier
	rt.ctx.SubmitBatch(calls...)
}

// TaskCall is one deferred task invocation: a definition plus its bound
// arguments, the unit of SubmitBatch.
type TaskCall struct {
	Def  *TaskDef
	Args []Arg
}

// Call builds a TaskCall for SubmitBatch.
func Call(def *TaskDef, args ...Arg) TaskCall { return TaskCall{Def: def, Args: args} }

// batchCall is one recorded invocation inside a Batch: the definition
// plus the span of the batch's argument arena holding its arguments.
type batchCall struct {
	def    *TaskDef
	lo, hi int
}

// Batch accumulates task invocations and submits them in one go,
// reusing its internal storage across rounds so a steady submission
// loop allocates nothing per task.  It is the allocation-free form of
// SubmitBatch: Call/TaskCall values each carry their own argument
// slice, while Batch.Add copies arguments into one growing arena.
//
// A Batch belongs to its context's submitting thread (the SMPSs model
// is single-submitter) and must not be shared.
type Batch struct {
	c     *Context
	calls []batchCall
	args  []Arg
	// panicClosed preserves the Runtime API's historical behavior: a
	// batch obtained from Runtime.NewBatch panics on Submit after Close
	// (like Runtime.Submit), while a Context batch reports the typed
	// ClosedError.
	panicClosed bool
}

// NewBatch creates an empty reusable batch bound to the runtime.
func (rt *Runtime) NewBatch() *Batch {
	b := rt.ctx.NewBatch()
	b.panicClosed = true
	return b
}

// Add records one task invocation in the batch.
func (b *Batch) Add(def *TaskDef, args ...Arg) {
	lo := len(b.args)
	b.args = append(b.args, args...)
	b.calls = append(b.calls, batchCall{def: def, lo: lo, hi: len(b.args)})
}

// Len returns the number of recorded invocations.
func (b *Batch) Len() int { return len(b.calls) }

// Submit submits every recorded invocation in order and resets the
// batch for reuse.  Semantics match SubmitBatch, including the
// ClosedError on a closed context (nothing is submitted then, but the
// batch is still reset).
func (b *Batch) Submit() error {
	c := b.c
	closed := c.Closed()
	if closed && b.panicClosed {
		panic("core: Batch.Submit on closed runtime")
	}
	if !closed {
		for _, call := range b.calls {
			c.throttle()
			c.submitOne(call.def, b.args[call.lo:call.hi])
		}
	}
	b.calls = b.calls[:0]
	// Drop the data references so batch reuse does not pin user arrays.
	for i := range b.args {
		b.args[i] = Arg{}
	}
	b.args = b.args[:0]
	if closed {
		return &ClosedError{Entity: "context", Op: "Batch.Submit"}
	}
	return nil
}

// Barrier blocks until every submitted task has completed, with the main
// thread behaving as a worker in the meantime (paper §III).  On return,
// any data whose current contents live in renamed storage have been
// copied back to the variables the program named, and the first task
// failure (if any) is returned.  The failure stays latched across
// barriers — this call never resets it; use ClearErr to resume after a
// handled failure.  The contract is identical to Context.Barrier.
func (rt *Runtime) Barrier() error { return rt.ctx.Barrier() }

// WaitOn blocks until all pending writers of data have completed,
// helping to execute tasks meanwhile, then makes the current contents
// visible in data (copying back from renamed storage if needed).  It is
// the equivalent of the CellSs/SMPSs wait-on primitive: after WaitOn the
// main program may read data without a full barrier.
func (rt *Runtime) WaitOn(data any) error { return rt.ctx.WaitOn(data) }

// WaitOnRegion is WaitOn restricted to a region of data.  Note that if
// the object was renamed (whole-object writes), the sync-back copies the
// entire object.
func (rt *Runtime) WaitOnRegion(data any, r Region) error { return rt.ctx.WaitOnRegion(data, r) }

// Close waits for all outstanding work (an implicit barrier), then stops
// the worker threads.  The runtime must not be used afterwards.
func (rt *Runtime) Close() error {
	err := rt.ctx.Close()
	if perr := rt.pool.Close(); err == nil {
		err = perr
	}
	return err
}

// Run is a convenience wrapper: it creates a runtime, invokes body with
// it, and closes it, returning the first error from tasks or from body.
func Run(cfg Config, body func(rt *Runtime) error) error {
	rt := New(cfg)
	bodyErr := body(rt)
	closeErr := rt.Close()
	if bodyErr != nil {
		return bodyErr
	}
	return closeErr
}
