package core_test

import (
	"fmt"

	"repro/internal/core"
)

// The paper's programming model in one screen: declare a task with its
// parameter directionality, invoke it like a function, let the runtime
// discover the parallelism, and read the results after a barrier.
func Example() {
	axpy := core.NewTaskDef("axpy", func(a *core.Args) {
		x, y := a.F32(0), a.F32(1)
		s := float32(a.Float(2))
		for i := range y {
			y[i] += s * x[i]
		}
	})

	x := []float32{1, 2, 3, 4}
	y := []float32{0, 0, 0, 0}

	rt := core.New(core.Config{Workers: 4})
	rt.Submit(axpy, core.In(x), core.InOut(y), core.Value(float32(10)))
	rt.Submit(axpy, core.In(x), core.InOut(y), core.Value(float32(1)))
	if err := rt.Close(); err != nil {
		panic(err)
	}
	fmt.Println(y)
	// Output: [11 22 33 44]
}

// Renaming removes false dependencies on a shared temporary: both
// "iterations" reuse the one work array t, yet they run independently
// because every Out(t) opens a fresh version (§II).
func Example_renaming() {
	add := core.NewTaskDef("add", func(a *core.Args) {
		x, y, t := a.F32(0), a.F32(1), a.F32(2)
		for i := range t {
			t[i] = x[i] + y[i]
		}
	})
	store := core.NewTaskDef("store", func(a *core.Args) {
		copy(a.F32(1), a.F32(0))
	})

	a := []float32{1, 2}
	b := []float32{10, 20}
	c := []float32{100, 200}
	t := make([]float32, 2) // the only temporary the program names
	out1 := make([]float32, 2)
	out2 := make([]float32, 2)

	rt := core.New(core.Config{Workers: 4})
	rt.Submit(add, core.In(a), core.In(b), core.Out(t))
	rt.Submit(store, core.In(t), core.Out(out1))
	rt.Submit(add, core.In(b), core.In(c), core.Out(t)) // renames t
	rt.Submit(store, core.In(t), core.Out(out2))
	if err := rt.Close(); err != nil {
		panic(err)
	}
	fmt.Println(out1, out2)
	// Output: [11 22] [110 220]
}
