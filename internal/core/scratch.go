package core

import "sync/atomic"

// Per-worker scratch registry, owned by the Pool.  Task bodies that
// need reusable thread-private storage — the packed-kernel providers'
// panel buffers are the motivating case — register a LocalKey once
// (package level) and fetch the executing worker's instance through
// Args.Local.  Each worker identity is a single thread (slots below
// MaxContexts are context submitters when they block, the rest the
// dedicated workers), so slot access needs no synchronization: a slot
// is only ever touched by the thread running as that worker, the same
// single-submitter discipline the submission scratch already relies
// on.  The registry is pool-wide: tasks of different contexts executed
// by the same worker share that worker's scratch, which is exactly what
// packing buffers want.

// localKeys hands out one stable slot index per registered key.
var localKeys atomic.Int64

// LocalKey identifies one kind of worker-local value across runtimes.
// Declare it at package level with NewLocalKey and pass it to
// Args.Local from task bodies.
type LocalKey struct {
	idx int
	new func() any
}

// NewLocalKey registers a worker-local slot whose per-worker instances
// are created on first use by new.
func NewLocalKey(new func() any) *LocalKey {
	return &LocalKey{idx: int(localKeys.Add(1)) - 1, new: new}
}

// Local returns the executing worker's instance for key, creating it on
// first use.  The value is private to the worker for the lifetime of
// the runtime: successive tasks on the same worker see the same
// instance, so state like grown scratch buffers is reused, and two
// workers never share one.
func (a *Args) Local(key *LocalKey) any {
	return a.ctx.pool.local(a.worker, key)
}

// releaseLocals runs at Pool.Close, after every worker has stopped:
// values implementing Release() hand their resources back (the kernel
// scratch returns its packing arena to the size-classed pool, so
// benchmark sweeps that build a runtime per measurement point reacquire
// warm storage instead of growing fresh arenas every time).
func (p *Pool) releaseLocals() {
	for _, slots := range p.locals {
		for _, v := range slots {
			if r, ok := v.(interface{ Release() }); ok {
				r.Release()
			}
		}
	}
	p.locals = nil
}

// local serves Args.Local.  p.locals[w] is only touched by the thread
// executing as worker w.
func (p *Pool) local(w int, key *LocalKey) any {
	slots := p.locals[w]
	if key.idx < len(slots) {
		if v := slots[key.idx]; v != nil {
			return v
		}
	}
	for len(slots) <= key.idx {
		slots = append(slots, nil)
	}
	v := key.new()
	slots[key.idx] = v
	p.locals[w] = slots
	return v
}
