package core

import (
	"testing"
)

// churnRounds drives the writer-over-pending-reader pattern that forces
// one rename per round, returning the buffers for content checks.
func churnRounds(rt *Runtime, rounds, n int) (x, y []float32) {
	x = make([]float32, n)
	y = make([]float32, n)
	rt.Submit(fillDef, Out(y), Value(0.0))
	for i := 0; i < rounds; i++ {
		rt.Submit(fillDef, Out(x), Value(1.0))
		rt.Submit(axpyDef, In(x), InOut(y), Value(1.0))
	}
	return x, y
}

// TestLiveRenamedBytesDrainAtBarrier is the PR's acceptance invariant:
// a rename-heavy program recycles storage through the pool, and after a
// barrier on a fully-drained graph no renamed byte is live.
func TestLiveRenamedBytesDrainAtBarrier(t *testing.T) {
	rt := newRT(t, 4)
	defer rt.Close()
	// Phase 1 renames into fresh storage; the barrier drains every
	// version, so phase 2's renames are guaranteed at least one pool hit
	// (the recycled phase-1 instances share the size class).
	x, y := churnRounds(rt, 25, 1024)
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		rt.Submit(fillDef, Out(x), Value(1.0))
		rt.Submit(axpyDef, In(x), InOut(y), Value(1.0))
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Renames == 0 {
		t.Fatalf("workload must rename: %+v", st)
	}
	if st.PoolHits == 0 {
		t.Fatalf("rename churn on one size class must hit the pool: %+v", st)
	}
	if st.PoolHits+st.PoolMisses != st.Renames {
		t.Fatalf("every rename is an acquire: hits %d + misses %d != renames %d",
			st.PoolHits, st.PoolMisses, st.Renames)
	}
	if st.LiveRenamedBytes != 0 {
		t.Fatalf("live renamed bytes after barrier = %d, want 0", st.LiveRenamedBytes)
	}
	if x[0] != 1 || y[0] != 50 {
		t.Fatalf("results corrupted: x[0]=%v y[0]=%v", x[0], y[0])
	}
}

// TestCopyElisionAfterQuiescence: a write over a task-written object
// whose consumers have all drained must skip the rename and be counted.
func TestCopyElisionAfterQuiescence(t *testing.T) {
	rt := newRT(t, 2)
	defer rt.Close()
	x := make([]float32, 64)
	rt.Submit(fillDef, Out(x), Value(1.0))
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	rt.Submit(fillDef, Out(x), Value(2.0)) // dead WAW: elided, in place
	rt.Submit(scaleDef, InOut(x), Value(3.0))
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.RenamesElided == 0 {
		t.Fatalf("quiescent overwrite must be counted as elided: %+v", st)
	}
	if x[0] != 6 {
		t.Fatalf("x[0] = %v, want 6", x[0])
	}
}

// TestMemoryLimitIdleDivergenceSyncs: when the limit is exceeded but no
// task is outstanding, the live bytes belong to idle diverged objects
// no completion can release — the throttle must sync them back and
// proceed instead of parking forever.
func TestMemoryLimitIdleDivergenceSyncs(t *testing.T) {
	rt := New(Config{Workers: 2, MemoryLimit: 2 << 10})
	defer rt.Close()
	x := make([]float32, 1024) // 4 KiB: one rename exceeds the limit
	y := make([]float32, 1024)
	rt.Submit(fillDef, Out(x), Value(1.0))
	rt.Submit(axpyDef, In(x), InOut(y), Value(1.0))
	rt.Submit(fillDef, Out(x), Value(2.0)) // renames; 4 KiB live after drain
	// This submission hits the memory throttle; once the three tasks
	// above complete it must reclaim via sync-back rather than deadlock.
	rt.Submit(fillDef, Out(x), Value(3.0))
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.LiveRenamedBytes != 0 {
		t.Fatalf("live renamed bytes after barrier = %d, want 0", st.LiveRenamedBytes)
	}
	if x[0] != 3 {
		t.Fatalf("x[0] = %v, want 3", x[0])
	}
}

// TestLegacyRenamingConfig: the ablation baseline must reproduce the
// seed lifecycle — renames without pool traffic or elision counting,
// per-task byte accounting draining at the barrier — with identical
// program semantics.
func TestLegacyRenamingConfig(t *testing.T) {
	rt := New(Config{Workers: 4, LegacyRenaming: true, MemoryLimit: 16 << 10})
	defer rt.Close()
	x, y := churnRounds(rt, 50, 1024)
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Renames == 0 {
		t.Fatalf("legacy mode must still rename: %+v", st)
	}
	if st.PoolHits != 0 || st.PoolMisses != 0 || st.RenamesElided != 0 {
		t.Fatalf("legacy mode must not drive the pool or elide: %+v", st)
	}
	if st.LiveRenamedBytes != 0 {
		t.Fatalf("legacy per-task accounting leaked %d bytes", st.LiveRenamedBytes)
	}
	if x[0] != 1 || y[0] != 50 {
		t.Fatalf("results corrupted: x[0]=%v y[0]=%v", x[0], y[0])
	}
}

// regionAddDef adds a delta over the [lo, lo+n) range of its inout
// parameter; the region restriction is declared at the call site.
var regionAddDef = NewTaskDef("radd", func(a *Args) {
	x := a.F32(0)
	lo, n := a.Int(1), a.Int(2)
	d := float32(a.Float(3))
	for i := lo; i < lo+n; i++ {
		x[i] += d
	}
})

// TestRegionRenameInterleaveRace interleaves whole-object renames with
// partial-region accesses on the same object across many trials on 8
// workers.  Run with -race: it exercises the region flip of a diverged
// object (forfeiting its pooled instance) concurrently with completion
// hooks counting versions down.
func TestRegionRenameInterleaveRace(t *testing.T) {
	rt := newRT(t, 8)
	defer rt.Close()
	for trial := 0; trial < 60; trial++ {
		x := make([]float32, 256)
		y := make([]float32, 256)
		rt.Submit(fillDef, Out(y), Value(0.0))
		rt.Submit(fillDef, Out(x), Value(1.0))
		rt.Submit(axpyDef, In(x), InOut(y), Value(1.0)) // pending reader
		rt.Submit(fillDef, Out(x), Value(5.0))          // whole-object rename
		rt.Submit(scaleDef, InOut(x), Value(2.0))       // chain on renamed storage
		// Partial accesses flip the diverged object into region mode.
		rt.Submit(regionAddDef, InOutR(x, Span(0, 128)), Value(0), Value(128), Value(3.0))
		rt.Submit(regionAddDef, InOutR(x, Span(128, 128)), Value(128), Value(128), Value(4.0))
		if err := rt.Barrier(); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			want := float32(13)
			if i >= 128 {
				want = 14
			}
			if x[i] != want {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], want)
			}
			if y[i] != 1 {
				t.Fatalf("trial %d: y[%d] = %v, want 1", trial, i, y[i])
			}
		}
		if live := rt.Stats().LiveRenamedBytes; live != 0 {
			t.Fatalf("trial %d: live renamed bytes after barrier = %d", trial, live)
		}
	}
}
