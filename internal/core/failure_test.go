package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// failWith declares a task that fails through the structured channel
// (Args.Fail) instead of panicking.
var errInjected = errors.New("injected failure")

var failDef = NewTaskDef("failer", func(a *Args) { a.Fail(errInjected) })

func TestArgsFailReportsTaskError(t *testing.T) {
	rt := newRT(t, 2)
	defer rt.Close()
	rt.Submit(failDef)
	err := rt.Barrier()
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("Barrier err = %v, want *TaskError", err)
	}
	if te.Def != "failer" || te.TaskID == 0 || te.Worker < 0 {
		t.Fatalf("TaskError fields = %+v", te)
	}
	if !errors.Is(err, errInjected) {
		t.Fatalf("TaskError does not unwrap to the Fail cause: %v", err)
	}
	if st := rt.Stats(); st.Failures != 1 {
		t.Fatalf("Stats.Failures = %d, want 1", st.Failures)
	}
}

func TestPanicReportsTaskError(t *testing.T) {
	rt := newRT(t, 2)
	defer rt.Close()
	boom := NewTaskDef("boomTyped", func(a *Args) { panic("kapow") })
	rt.Submit(boom)
	err := rt.Barrier()
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("Barrier err = %v, want *TaskError", err)
	}
	if te.Def != "boomTyped" {
		t.Fatalf("TaskError.Def = %q", te.Def)
	}
}

// Under FailPoison, transitive dependents of a failed task are skipped
// and counted; independent tasks still run.
func TestPoisonSkipsDependents(t *testing.T) {
	rt := New(Config{Workers: 4, OnFailure: FailPoison})
	defer rt.Close()
	x := make([]float32, 8)
	y := make([]float32, 8)
	var ranAfter, ranIndep atomic.Int64
	boom := NewTaskDef("poisonBoom", func(a *Args) { panic("bad") })
	after := NewTaskDef("poisonAfter", func(a *Args) { ranAfter.Add(1) })
	indep := NewTaskDef("poisonIndep", func(a *Args) { ranIndep.Add(1) })

	rt.Submit(fillDef, Out(x), Value(1.0))
	rt.Submit(boom, InOut(x))
	const deps = 5
	for i := 0; i < deps; i++ {
		rt.Submit(after, InOut(x))
	}
	rt.Submit(indep, InOut(y))
	if err := rt.Barrier(); err == nil {
		t.Fatal("expected failure at barrier")
	}
	if n := ranAfter.Load(); n != 0 {
		t.Fatalf("%d poisoned dependents ran", n)
	}
	if ranIndep.Load() != 1 {
		t.Fatal("independent task did not run")
	}
	st := rt.Stats()
	if st.Failures != 1 || st.Poisoned != int64(deps) {
		t.Fatalf("Failures = %d, Poisoned = %d, want 1, %d", st.Failures, st.Poisoned, deps)
	}
	// fill + indep executed; boom failed (still executed); dependents skipped.
	if st.TasksExecuted != 3 {
		t.Fatalf("TasksExecuted = %d, want 3", st.TasksExecuted)
	}
	if st.LiveRenamedBytes != 0 {
		t.Fatalf("LiveRenamedBytes = %d after failed drain", st.LiveRenamedBytes)
	}
}

// Poisoned skips must still release pooled rename storage: a write
// chain over a pending reader renames every round, and the skipped
// writers' instances must all return to the store.
func TestPoisonReleasesRenamedStorage(t *testing.T) {
	rt := New(Config{Workers: 2, OnFailure: FailPoison})
	defer rt.Close()
	x := make([]float32, 1024)
	sink := make([]float32, 1024)
	boom := NewTaskDef("renameBoom", func(a *Args) { panic("bad") })
	rt.Submit(fillDef, Out(x), Value(1.0))
	rt.Submit(boom, InOut(x))
	for i := 0; i < 50; i++ {
		// Reader + writer on x: the writer renames over the pending
		// reader, then both are poisoned skips.
		rt.Submit(axpyDef, In(x), InOut(sink), Value(1.0))
		rt.Submit(fillDef, Out(x), Value(float64(i)))
	}
	if err := rt.Barrier(); err == nil {
		t.Fatal("expected failure at barrier")
	}
	if live := rt.Stats().LiveRenamedBytes; live != 0 {
		t.Fatalf("LiveRenamedBytes = %d after poisoned drain", live)
	}
}

// The default policy still runs dependents after an Args.Fail failure,
// exactly like the panic path always has.
func TestContinuePolicyRunsDependentsAfterFail(t *testing.T) {
	rt := newRT(t, 2)
	defer rt.Close()
	x := make([]float32, 1)
	var ran atomic.Bool
	after := NewTaskDef("contAfter", func(a *Args) { ran.Store(true) })
	rt.Submit(failDef, InOut(x))
	rt.Submit(after, InOut(x))
	if err := rt.Barrier(); err == nil {
		t.Fatal("expected failure at barrier")
	}
	if !ran.Load() {
		t.Fatal("dependent did not run under FailContinue")
	}
}

// Cancel unparks a barrier-blocked submitter, drains the queue as
// canceled skips, and leaves a co-tenant on the same pool untouched.
func TestCancelUnparksBarrierAndSparesCoTenant(t *testing.T) {
	pool, err := NewPool(PoolConfig{Workers: 2, MaxContexts: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	victim, err := pool.NewContext(ContextConfig{})
	if err != nil {
		t.Fatal(err)
	}
	neighbor, err := pool.NewContext(ContextConfig{})
	if err != nil {
		t.Fatal(err)
	}

	slow := NewTaskDef("cancelSlow", func(a *Args) { time.Sleep(2 * time.Millisecond) })
	v := make([]float32, 1)
	for i := 0; i < 400; i++ {
		victim.Submit(slow, InOut(v))
	}
	barErr := make(chan error, 1)
	go func() { barErr <- victim.Barrier() }()
	time.Sleep(5 * time.Millisecond)
	victim.Cancel()

	var got error
	select {
	case got = <-barErr:
	case <-time.After(10 * time.Second):
		t.Fatal("canceled Barrier wedged")
	}
	var ce *CanceledError
	if !errors.As(got, &ce) || ce.Reason != "cancel" {
		t.Fatalf("Barrier err = %v, want CanceledError(cancel)", got)
	}
	if err := victim.Submit(slow, InOut(v)); !errors.As(err, &ce) {
		t.Fatalf("Submit after Cancel = %v, want CanceledError", err)
	}
	st := victim.Stats()
	if st.Canceled == 0 {
		t.Fatal("no tasks drained as canceled skips")
	}
	if st.LiveRenamedBytes != 0 {
		t.Fatalf("LiveRenamedBytes = %d after canceled drain", st.LiveRenamedBytes)
	}
	if err := victim.Close(); !errors.As(err, &ce) {
		t.Fatalf("Close after Cancel = %v, want CanceledError", err)
	}

	// The co-tenant's program is unaffected: full chain, exact result.
	x := make([]float32, 4)
	neighbor.Submit(fillDef, Out(x), Value(1.0))
	for i := 0; i < 10; i++ {
		neighbor.Submit(scaleDef, InOut(x), Value(2.0))
	}
	if err := neighbor.Barrier(); err != nil {
		t.Fatal(err)
	}
	if x[0] != 1024 {
		t.Fatalf("co-tenant result = %v, want 1024", x[0])
	}
	if st := neighbor.Stats(); st.TasksExecuted != 11 || st.Canceled != 0 || st.Poisoned != 0 {
		t.Fatalf("co-tenant stats disturbed: %+v", st)
	}
	if err := neighbor.Close(); err != nil {
		t.Fatal(err)
	}
}

// A configured deadline cancels the tenant mid-run with reason
// "deadline".
func TestDeadlineCancelsContext(t *testing.T) {
	pool, err := NewPool(PoolConfig{Workers: 2, MaxContexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	c, err := pool.NewContext(ContextConfig{Deadline: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	slow := NewTaskDef("deadlineSlow", func(a *Args) { time.Sleep(2 * time.Millisecond) })
	v := make([]float32, 1)
	for i := 0; i < 500; i++ {
		if err := c.Submit(slow, InOut(v)); err != nil {
			break // deadline already hit mid-submission: fine
		}
	}
	err = c.Barrier()
	var ce *CanceledError
	if !errors.As(err, &ce) || ce.Reason != "deadline" {
		t.Fatalf("Barrier err = %v, want CanceledError(deadline)", err)
	}
	if err := c.Close(); !errors.As(err, &ce) {
		t.Fatalf("Close err = %v, want CanceledError", err)
	}
}

// The failure latch is sticky on both APIs and cleared the same way.
func TestErrorLatchSymmetry(t *testing.T) {
	rt := newRT(t, 2)
	defer rt.Close()
	rt.Submit(failDef)
	if err := rt.Barrier(); err == nil {
		t.Fatal("expected failure")
	}
	if err := rt.Barrier(); err == nil {
		t.Fatal("latch must survive a second Barrier")
	}
	if err := rt.Err(); err == nil {
		t.Fatal("Err lost the latch")
	}
	rt.ClearErr()
	if err := rt.Barrier(); err != nil {
		t.Fatalf("Barrier after ClearErr = %v", err)
	}

	pool, err := NewPool(PoolConfig{Workers: 1, MaxContexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	c, err := pool.NewContext(ContextConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Submit(failDef)
	if err := c.Barrier(); err == nil {
		t.Fatal("expected failure")
	}
	if err := c.Barrier(); err == nil {
		t.Fatal("latch must survive a second Barrier")
	}
	c.ClearErr()
	if err := c.Barrier(); err != nil {
		t.Fatalf("Barrier after ClearErr = %v", err)
	}
}

// Drain with cooperative tenants: everyone closes in time, the pool
// shuts down clean.
func TestDrainVoluntary(t *testing.T) {
	pool, err := NewPool(PoolConfig{Workers: 2, MaxContexts: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c, err := pool.NewContext(ContextConfig{})
			if err != nil {
				t.Error(err)
				return
			}
			x := make([]float32, 8)
			c.Submit(fillDef, Out(x), Value(float64(k)))
			c.Submit(scaleDef, InOut(x), Value(2.0))
			if err := c.Close(); err != nil {
				t.Error(err)
			}
		}(k)
	}
	wg.Wait()
	if err := pool.Drain(5 * time.Second); err != nil {
		t.Fatalf("Drain = %v", err)
	}
	// Admissions are refused after Drain; the pool is closed.
	if _, err := pool.NewContext(ContextConfig{}); err == nil {
		t.Fatal("NewContext succeeded on a drained pool")
	}
}

// Drain with a straggler that never closes: past the timeout the
// tenant is canceled, its queue drains as skips, and the pool still
// closes without wedging.
func TestDrainForcesStragglers(t *testing.T) {
	pool, err := NewPool(PoolConfig{Workers: 2, MaxContexts: 2})
	if err != nil {
		t.Fatal(err)
	}
	c, err := pool.NewContext(ContextConfig{})
	if err != nil {
		t.Fatal(err)
	}
	slow := NewTaskDef("drainSlow", func(a *Args) { time.Sleep(time.Millisecond) })
	v := make([]float32, 1)
	for i := 0; i < 300; i++ {
		c.Submit(slow, InOut(v))
	}
	barErr := make(chan error, 1)
	go func() { barErr <- c.Barrier() }()

	if err := pool.Drain(10 * time.Millisecond); err != nil {
		t.Fatalf("Drain = %v", err)
	}
	var got error
	select {
	case got = <-barErr:
	case <-time.After(10 * time.Second):
		t.Fatal("straggler Barrier wedged through Drain")
	}
	var ce *CanceledError
	if !errors.As(got, &ce) || ce.Reason != "drain" {
		t.Fatalf("straggler Barrier err = %v, want CanceledError(drain)", got)
	}
	if !c.Closed() {
		t.Fatal("straggler not force-closed")
	}
	if live := c.Stats().LiveRenamedBytes; live != 0 {
		t.Fatalf("LiveRenamedBytes = %d after forced drain", live)
	}
}

// Canceled skips are visible in the trace and round-trip through the
// Paraver writer/parser (covered in trace tests); here: the counters.
func TestCancelStatsOnRuntime(t *testing.T) {
	rt := newRT(t, 2)
	defer rt.Close()
	slow := NewTaskDef("cancelStatSlow", func(a *Args) { time.Sleep(time.Millisecond) })
	v := make([]float32, 1)
	for i := 0; i < 200; i++ {
		rt.ctx.Submit(slow, InOut(v))
	}
	rt.Cancel()
	err := rt.Barrier()
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("Barrier err = %v, want CanceledError", err)
	}
	st := rt.Stats()
	if st.Canceled == 0 {
		t.Fatal("Stats.Canceled = 0 after cancel")
	}
	if st.Canceled+st.TasksExecuted != st.TasksSubmitted {
		t.Fatalf("executed %d + canceled %d != submitted %d",
			st.TasksExecuted, st.Canceled, st.TasksSubmitted)
	}
}
