package core

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/deps"
	"repro/internal/graph"
	"repro/internal/sched"
	"repro/internal/topo"
	"repro/internal/trace"
)

// DefaultMaxContexts is the context-slot count applied when
// PoolConfig.MaxContexts is zero.
const DefaultMaxContexts = 8

// PoolConfig parameterizes a shared worker pool.
type PoolConfig struct {
	// Workers is the number of dedicated worker goroutines the pool
	// owns.  Zero means one per core (runtime.GOMAXPROCS(0)); negative
	// values are a ConfigError.  Context submitter threads add
	// themselves on top whenever they block.  (A pool with literally no
	// dedicated workers — every task executing on blocked submitters —
	// exists only as the internal substrate of a Workers:1 Runtime.)
	Workers int
	// MaxContexts caps the number of concurrently attached contexts
	// (each holds one submitter slot in the pool's worker-identity
	// space).  Zero selects DefaultMaxContexts.  Slots are recycled as
	// contexts close.
	MaxContexts int
	// LegacyWakeup replaces the per-worker parking protocol with the
	// seed's global mutex+condvar (broadcast on every push while anyone
	// sleeps) — the pre-overhaul wake machinery, kept as an ablation.
	LegacyWakeup bool

	// MinWorkers and MaxWorkers enable elastic scaling: the dedicated
	// team grows toward MaxWorkers under sustained queue depth and
	// shrinks toward MinWorkers past an idle hysteresis window, by
	// parking and retiring pre-allocated worker slots (the identity
	// space stays MaxContexts + MaxWorkers throughout).  Both zero —
	// the zero value — or MinWorkers == MaxWorkers keeps the fixed-size
	// pool, with no controller and no scaling machinery constructed.
	// When set, Workers must be zero or equal MaxWorkers; MaxWorkers
	// zero with MinWorkers set selects one per core, MinWorkers zero
	// with MaxWorkers set selects a floor of one.
	MinWorkers int
	MaxWorkers int
	// ScaleInterval is the elastic controller's load-sampling period;
	// zero selects a default (500µs).  Ignored on a fixed-size pool.
	ScaleInterval time.Duration
	// Topology makes stealing hierarchical: workers steal from victims
	// in their own topology group before probing remote groups, and
	// affinity hints to a retired worker fall back to its group.  Build
	// one with topo.Split (synthetic, for tests and known layouts) or
	// topo.Detect (host sysfs).  nil — the zero value — is the flat
	// machine with the unchanged creation-order steal scan.
	Topology *topo.Topology
	// Tracer, when non-nil, receives pool-level grow/shrink events
	// (contexts carry their own tracers for task events).
	Tracer *trace.Tracer
}

// PoolStats is a snapshot of pool-level activity.  Per-context counters
// (tasks, edges, renames, queue traffic) live on Context.Stats; only
// the machinery genuinely shared by all tenants is reported here.
type PoolStats struct {
	// Contexts is the number of currently attached contexts.
	Contexts int
	// Parks and Unparks count workers going to sleep and being woken
	// across the whole pool.
	Parks, Unparks int64
	// FreeBytes is the renamed storage idling on the shared recycling
	// store's free lists, available to any context's next rename.
	FreeBytes int64
	// Grows and Shrinks count the elastic controller's scaling actions
	// (zero on a fixed-size pool).
	Grows, Shrinks int64
	// ActiveWorkers is the current dedicated team size;
	// ActiveWorkersHigh and ActiveWorkersLow are its lifetime
	// watermarks.  On a fixed-size pool all three equal Workers.
	ActiveWorkers, ActiveWorkersHigh, ActiveWorkersLow int
}

// Pool is the shared execution substrate of the multi-tenant runtime:
// it owns the worker goroutines, the dispatch and parking machinery,
// the worker-local scratch registry, and the shared rename-storage
// recycling store.  Graph state — dependency tracking, throttling,
// statistics — lives in Contexts; many contexts share one pool
// concurrently, each still single-submitter per the paper's model.
//
// Worker identities: slots 0..MaxContexts-1 belong to context
// submitters (context i's submitting thread executes as worker i when
// it blocks), slots MaxContexts..MaxContexts+Workers-1 to the dedicated
// workers.  A private Runtime is a pool with MaxContexts = 1, which
// makes its identities — main thread 0, workers 1..N-1 — exactly the
// seed runtime's numbering.
type Pool struct {
	cfg   PoolConfig
	slots int // MaxContexts + Workers

	mux   sched.Mux
	store *deps.Storage

	// locals holds the worker-local registry slots: locals[w] is owned
	// by the thread executing as worker w (see scratch.go).
	locals [][]any

	mu   sync.Mutex
	ctxs []*Context // by submitter slot; nil entries are free
	nctx int

	nextCtxID atomic.Int64
	closed    atomic.Bool
	// draining refuses new tenants while Drain waits out the old ones.
	draining atomic.Bool
	wg       sync.WaitGroup

	// Elastic scaling machinery (see elastic.go); all nil/zero on a
	// fixed-size pool.
	elastic bool
	// active is the live-worker set the locality policies consult; nil
	// on a fixed pool (every worker permanently active).
	active *sched.ActiveSet
	// scaleMu serializes grow/shrink/retire state transitions.
	scaleMu sync.Mutex
	// state[w] is the scaling state of dedicated slot w (wActive /
	// wRetiring / wRetired); submitter slots stay wActive forever.
	state []atomic.Int32
	// retireCh[w] parks retired worker w (buffered one token: grow and
	// close deliver, the worker consumes).
	retireCh      []chan struct{}
	activeWorkers atomic.Int32
	activeHigh    atomic.Int32
	activeLow     atomic.Int32
	grows         atomic.Int64
	shrinks       atomic.Int64
	scaleStop     chan struct{}
	scaleDone     chan struct{}
}

// NewPool creates and starts a shared worker pool.  The caller must
// eventually call Close (after closing every context) to release the
// worker goroutines.
func NewPool(cfg PoolConfig) (*Pool, error) {
	cfg, err := validatePool(cfg)
	if err != nil {
		return nil, err
	}
	return newPool(cfg), nil
}

// newPool starts a pool from an already-validated configuration.  The
// Runtime wrapper calls it directly so a 1-thread runtime can run a
// pool with exactly zero dedicated workers.
func newPool(cfg PoolConfig) *Pool {
	p := &Pool{
		cfg:   cfg,
		slots: cfg.MaxContexts + cfg.Workers,
		// The shared recycling store's free-list capacity scales with
		// tenancy, so K contexts keep the headroom K private runtimes
		// would have had.
		store: deps.NewStorageShared(cfg.MaxContexts),
		ctxs:  make([]*Context, cfg.MaxContexts),
	}
	p.locals = make([][]any, p.slots)
	if cfg.LegacyWakeup {
		p.mux = sched.NewCondvarMux(p.slots)
	} else {
		p.mux = sched.NewTokenMux(p.slots)
	}
	if cfg.MaxWorkers > cfg.MinWorkers {
		p.initElastic()
	}
	for w := cfg.MaxContexts; w < p.slots; w++ {
		p.wg.Add(1)
		go p.workerLoop(w)
	}
	if p.elastic {
		go p.scaleLoop()
	}
	return p
}

// Workers returns the number of dedicated worker identities (the
// identity-space size; on an elastic pool this is MaxWorkers, whatever
// the current team size — see ActiveWorkers).
func (p *Pool) Workers() int { return p.cfg.Workers }

// ActiveWorkers returns the current dedicated team size: Workers on a
// fixed pool, the elastic controller's gauge otherwise.
func (p *Pool) ActiveWorkers() int {
	if !p.elastic {
		return p.cfg.Workers
	}
	return int(p.activeWorkers.Load())
}

// MaxContexts returns the pool's context-slot capacity.
func (p *Pool) MaxContexts() int { return p.cfg.MaxContexts }

// Storage returns the pool's shared rename-storage recycling store.
// Hosted programming models that keep their own dependency trackers
// (internal/cellss and friends) share it via deps.Tracker.ShareStorage,
// so every tenant's renames draw on one free-list pool exactly like the
// pool's own contexts.
func (p *Pool) Storage() *deps.Storage { return p.store }

// Contexts returns the number of currently attached contexts.
func (p *Pool) Contexts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nctx
}

// Stats returns a snapshot of the pool-level counters.
func (p *Pool) Stats() PoolStats {
	ms := p.mux.Stats()
	st := PoolStats{
		Contexts:  p.Contexts(),
		Parks:     ms.Parks,
		Unparks:   ms.Unparks,
		FreeBytes: p.store.FreeBytes(),
	}
	if p.elastic {
		st.Grows = p.grows.Load()
		st.Shrinks = p.shrinks.Load()
		st.ActiveWorkers = int(p.activeWorkers.Load())
		st.ActiveWorkersHigh = int(p.activeHigh.Load())
		st.ActiveWorkersLow = int(p.activeLow.Load())
	} else {
		st.ActiveWorkers = p.cfg.Workers
		st.ActiveWorkersHigh = p.cfg.Workers
		st.ActiveWorkersLow = p.cfg.Workers
	}
	return st
}

// workerLoop is the body of each dedicated worker goroutine: take the
// next ready task from any context — the mux rotates fairly across
// them — and execute it under its owning context's accounting.
func (p *Pool) workerLoop(self int) {
	defer p.wg.Done()
	if p.elastic {
		p.workerLoopElastic(self)
		return
	}
	for {
		n := p.mux.Get(self, nil, nil)
		if n == nil {
			return
		}
		n.Payload.(*taskRec).ctx.exec(n, self)
	}
}

// attach reserves a submitter slot for a new context.
func (p *Pool) attach(c *Context) (slot int, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed.Load() || p.draining.Load() {
		return 0, &ClosedError{Entity: "pool", Op: "NewContext"}
	}
	for i := range p.ctxs {
		if p.ctxs[i] == nil {
			p.ctxs[i] = c
			p.nctx++
			return i, nil
		}
	}
	return 0, &ConfigError{
		Field: "MaxContexts", Value: p.cfg.MaxContexts,
		Reason: "all context slots are attached; close a context or enlarge the pool",
	}
}

// detach releases a closing context's slot for reuse.
func (p *Pool) detach(c *Context) {
	p.mux.Detach(c.q)
	p.mu.Lock()
	if p.ctxs[c.slot] == c {
		p.ctxs[c.slot] = nil
		p.nctx--
	}
	p.mu.Unlock()
}

// Close stops the worker goroutines and releases the worker-local
// registry.  Every context must be closed first; if any is still
// attached Close refuses with a ConfigError so no tenant's tasks are
// stranded.  The pool must not be used afterwards.
func (p *Pool) Close() error {
	// The emptiness check and the closed flip share one critical
	// section with attach's closed check, so a concurrent NewContext
	// either attaches before the flip (and Close refuses) or observes
	// the pool closed — never attaches to a pool tearing down.
	p.mu.Lock()
	if n := p.nctx; n > 0 {
		p.mu.Unlock()
		return &ConfigError{Field: "Contexts", Value: n, Reason: "Close with contexts still attached"}
	}
	already := p.closed.Swap(true)
	p.mu.Unlock()
	if already {
		return nil
	}
	if p.elastic {
		// Stop the controller first so no grow/shrink races teardown,
		// then unpark every retired worker: they sleep on their retire
		// channels, out of reach of the mux's close-time Kick.  The
		// buffered token also covers a worker that decided to park but
		// has not yet.  (A worker mid-finishRetire observes closed under
		// scaleMu and aborts back to its serve loop instead of parking.)
		close(p.scaleStop)
		<-p.scaleDone
		for w := p.cfg.MaxContexts; w < p.slots; w++ {
			select {
			case p.retireCh[w] <- struct{}{}:
			default:
			}
		}
	}
	p.mux.Close()
	p.wg.Wait()
	// Workers are gone (wg.Wait is the happens-before edge for their
	// slot writes); recycle worker-local values that support it.
	p.releaseLocals()
	return nil
}

// Drain shuts the pool down gracefully: it stops admitting new
// contexts, gives the attached tenants until the timeout to finish and
// Close on their own, then cancels the stragglers — their queued work
// drains as canceled skips, releasing every edge, refcount and byte of
// pooled rename storage — force-detaches them, and closes the pool.
// A straggler's own Barrier/Close observes a *CanceledError with
// reason "drain".  Drain may be called from any goroutine and is the
// shutdown path a service wraps around SIGTERM.
func (p *Pool) Drain(timeout time.Duration) error {
	p.draining.Store(true)
	deadline := time.Now().Add(timeout)
	for p.Contexts() > 0 && time.Now().Before(deadline) {
		time.Sleep(200 * time.Microsecond)
	}
	p.mu.Lock()
	stragglers := make([]*Context, 0, p.nctx)
	for _, c := range p.ctxs {
		if c != nil {
			stragglers = append(stragglers, c)
		}
	}
	p.mu.Unlock()
	for _, c := range stragglers {
		c.cancel("drain")
	}
	for _, c := range stragglers {
		if c.deadline != nil {
			c.deadline.Stop()
		}
		// Wait out the tenant's in-flight tasks: everything not yet
		// started skips, and running bodies finish (cancellation never
		// interrupts a body mid-write).
		for c.outstanding.Load() > 0 {
			p.mux.Kick()
			time.Sleep(100 * time.Microsecond)
		}
		// Mark closed before detaching so the owner's own Close (if it
		// ever runs) takes the latched-error early return instead of
		// barriering against a detached client.  Renamed storage a
		// force-detached tenant diverged is synced back only by its
		// owner's Barrier — Drain must not call SyncAll concurrently
		// with a submitter that may still be running.
		c.closed.Store(true)
		p.detach(c)
	}
	return p.Close()
}

// policyFor builds a context's scheduling policy sized to the pool's
// worker-identity space.
func (p *Pool) policyFor(kind SchedulerKind) sched.Policy {
	switch kind {
	case SchedGlobalFIFO:
		return sched.NewGlobalFIFO()
	case SchedLegacyLists:
		return sched.NewListLocality(p.slots)
	default:
		if p.cfg.Topology != nil || p.active != nil {
			return sched.NewLocalitySharedElastic(p.slots, p.cfg.MaxContexts, p.cfg.Topology, p.active)
		}
		return sched.NewLocalityShared(p.slots, p.cfg.MaxContexts)
	}
}

// ready is the graph readiness callback bound to one context.
func (p *Pool) ready(c *Context) func(n *graph.Node, releasedBy int) {
	return func(n *graph.Node, releasedBy int) { p.mux.Push(c.q, n, releasedBy) }
}
