package core

import (
	"fmt"
	"runtime"
)

// ClosedError is the typed error returned for operations against a
// closed Pool or Context — submissions, barriers, context creation —
// replacing the panic the single-runtime API keeps for compatibility.
// Check for it with errors.As.
type ClosedError struct {
	// Entity is what was closed: "pool" or "context".
	Entity string
	// Op is the attempted operation, e.g. "Submit".
	Op string
}

func (e *ClosedError) Error() string {
	return fmt.Sprintf("core: %s on closed %s", e.Op, e.Entity)
}

// TaskError is the typed record of one task-body failure: a panic
// recovered by the executor, an error handed to Args.Fail, or an
// injected fault.  It is the context's sticky first error, so
// Barrier/WaitOn/Close return it; inspect with errors.As and unwrap
// Cause with errors.Is/As.
type TaskError struct {
	// Def is the task definition name, e.g. "boom".
	Def string
	// TaskID is the failing task's invocation order (graph node ID).
	TaskID int64
	// Ctx is the owning context's pool-wide ID.
	Ctx int
	// Worker is the worker identity that ran the failing body.
	Worker int
	// Cause is the failure itself: the error passed to Args.Fail, or a
	// wrapped panic value.
	Cause error
}

func (e *TaskError) Error() string {
	return fmt.Sprintf("core: task %s (#%d) failed on worker %d (ctx %d): %v",
		e.Def, e.TaskID, e.Worker, e.Ctx, e.Cause)
}

// Unwrap exposes the failure cause to errors.Is/As.
func (e *TaskError) Unwrap() error { return e.Cause }

// CanceledError is the typed error returned by Barrier, WaitOn, Submit
// and Close on a context that was aborted by Context.Cancel, its
// configured Deadline, or a pool Drain deadline.  Check for it with
// errors.As.
type CanceledError struct {
	// Ctx is the canceled context's pool-wide ID.
	Ctx int
	// Reason records what triggered the cancellation: "cancel",
	// "deadline" or "drain".
	Reason string
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("core: context %d canceled (%s)", e.Ctx, e.Reason)
}

// ConfigError is the typed error returned for invalid pool or context
// sizing (negative worker counts, exhausted context slots, and the
// like).
type ConfigError struct {
	// Field names the configuration field at fault.
	Field string
	// Value is the rejected value.
	Value int
	// Reason explains the constraint.
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("core: invalid %s = %d: %s", e.Field, e.Value, e.Reason)
}

// maxPoolSlots bounds the pool's total worker-identity space
// (MaxContexts + Workers); it exists to catch nonsense configurations,
// not to limit reasonable ones.
const maxPoolSlots = 4096

// resolveWorkers is the one place worker counts are defaulted: any
// non-positive count means "one per core", exactly as Config.Workers
// always has.
func resolveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// validatePool is the one place pool sizing is validated and defaulted:
// Workers <= 0 selects one dedicated worker per core, MaxContexts == 0
// selects DefaultMaxContexts, and negative or absurd values are
// rejected with a ConfigError.
func validatePool(cfg PoolConfig) (PoolConfig, error) {
	if cfg.Workers < 0 {
		return cfg, &ConfigError{Field: "Workers", Value: cfg.Workers, Reason: "worker count must be >= 0"}
	}
	if cfg.MinWorkers < 0 {
		return cfg, &ConfigError{Field: "MinWorkers", Value: cfg.MinWorkers, Reason: "elastic floor must be >= 0"}
	}
	if cfg.MaxWorkers < 0 {
		return cfg, &ConfigError{Field: "MaxWorkers", Value: cfg.MaxWorkers, Reason: "elastic ceiling must be >= 0"}
	}
	if cfg.MinWorkers > 0 || cfg.MaxWorkers > 0 {
		// Elastic sizing requested.  The identity space is MaxWorkers
		// wide (Workers aliases it); the team starts at MinWorkers.
		if cfg.MaxWorkers == 0 {
			cfg.MaxWorkers = resolveWorkers(cfg.Workers)
		}
		if cfg.MinWorkers == 0 {
			cfg.MinWorkers = 1
		}
		if cfg.MinWorkers > cfg.MaxWorkers {
			return cfg, &ConfigError{
				Field: "MinWorkers", Value: cfg.MinWorkers,
				Reason: fmt.Sprintf("elastic floor exceeds MaxWorkers = %d", cfg.MaxWorkers),
			}
		}
		if cfg.Workers != 0 && cfg.Workers != cfg.MaxWorkers {
			return cfg, &ConfigError{
				Field: "Workers", Value: cfg.Workers,
				Reason: fmt.Sprintf("Workers conflicts with MaxWorkers = %d; leave Workers zero when sizing elastically", cfg.MaxWorkers),
			}
		}
		cfg.Workers = cfg.MaxWorkers
		if cfg.ScaleInterval <= 0 {
			cfg.ScaleInterval = defaultScaleInterval
		}
	}
	if cfg.Workers == 0 {
		cfg.Workers = resolveWorkers(0)
	}
	if cfg.MaxContexts < 0 {
		return cfg, &ConfigError{Field: "MaxContexts", Value: cfg.MaxContexts, Reason: "context slots must be >= 0"}
	}
	if cfg.MaxContexts == 0 {
		cfg.MaxContexts = DefaultMaxContexts
	}
	if cfg.MaxContexts+cfg.Workers > maxPoolSlots {
		return cfg, &ConfigError{
			Field: "MaxContexts", Value: cfg.MaxContexts,
			Reason: fmt.Sprintf("MaxContexts + Workers exceeds %d worker identities", maxPoolSlots),
		}
	}
	return cfg, nil
}
