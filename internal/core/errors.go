package core

import (
	"fmt"
	"runtime"
)

// ClosedError is the typed error returned for operations against a
// closed Pool or Context — submissions, barriers, context creation —
// replacing the panic the single-runtime API keeps for compatibility.
// Check for it with errors.As.
type ClosedError struct {
	// Entity is what was closed: "pool" or "context".
	Entity string
	// Op is the attempted operation, e.g. "Submit".
	Op string
}

func (e *ClosedError) Error() string {
	return fmt.Sprintf("core: %s on closed %s", e.Op, e.Entity)
}

// ConfigError is the typed error returned for invalid pool or context
// sizing (negative worker counts, exhausted context slots, and the
// like).
type ConfigError struct {
	// Field names the configuration field at fault.
	Field string
	// Value is the rejected value.
	Value int
	// Reason explains the constraint.
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("core: invalid %s = %d: %s", e.Field, e.Value, e.Reason)
}

// maxPoolSlots bounds the pool's total worker-identity space
// (MaxContexts + Workers); it exists to catch nonsense configurations,
// not to limit reasonable ones.
const maxPoolSlots = 4096

// resolveWorkers is the one place worker counts are defaulted: any
// non-positive count means "one per core", exactly as Config.Workers
// always has.
func resolveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// validatePool is the one place pool sizing is validated and defaulted:
// Workers <= 0 selects one dedicated worker per core, MaxContexts == 0
// selects DefaultMaxContexts, and negative or absurd values are
// rejected with a ConfigError.
func validatePool(cfg PoolConfig) (PoolConfig, error) {
	if cfg.Workers < 0 {
		return cfg, &ConfigError{Field: "Workers", Value: cfg.Workers, Reason: "worker count must be >= 0"}
	}
	if cfg.Workers == 0 {
		cfg.Workers = resolveWorkers(0)
	}
	if cfg.MaxContexts < 0 {
		return cfg, &ConfigError{Field: "MaxContexts", Value: cfg.MaxContexts, Reason: "context slots must be >= 0"}
	}
	if cfg.MaxContexts == 0 {
		cfg.MaxContexts = DefaultMaxContexts
	}
	if cfg.MaxContexts+cfg.Workers > maxPoolSlots {
		return cfg, &ConfigError{
			Field: "MaxContexts", Value: cfg.MaxContexts,
			Reason: fmt.Sprintf("MaxContexts + Workers exceeds %d worker identities", maxPoolSlots),
		}
	}
	return cfg, nil
}
