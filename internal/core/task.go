package core

import (
	"fmt"
	"sync/atomic"
)

// taskKinds hands out one stable small integer per task definition, used
// to color task-graph exports and aggregate trace statistics.
var taskKinds atomic.Int64

// TaskDef is a task declaration: the Go equivalent of a function carrying
// a "#pragma css task" annotation (paper §II).  Define one per task type
// and reuse it for every invocation.
type TaskDef struct {
	// Name is the task's function name, e.g. "sgemm_t".
	Name string
	// Fn is the task body.  It receives accessors for the effective
	// parameter storage; it must not retain them past its return and
	// must touch parameter data only as declared by its directionality.
	Fn func(*Args)
	// HighPriority corresponds to the paper's "highpriority" clause: the
	// task is scheduled as soon as it becomes ready, bypassing the
	// locality lists.
	HighPriority bool

	kind int
}

// NewTaskDef declares a task.
func NewTaskDef(name string, fn func(*Args)) *TaskDef {
	return &TaskDef{Name: name, Fn: fn, kind: int(taskKinds.Add(1))}
}

// NewHighPriorityTaskDef declares a task carrying the highpriority clause.
func NewHighPriorityTaskDef(name string, fn func(*Args)) *TaskDef {
	d := NewTaskDef(name, fn)
	d.HighPriority = true
	return d
}

// Kind returns the definition's stable small-integer identity.
func (d *TaskDef) Kind() int { return d.kind }

// boundArg is one argument after dependency analysis: the effective
// storage the task must use (which may be a renamed instance) plus the
// deferred seed copy for renamed inout parameters.
type boundArg struct {
	kind     argKind
	instance any // for argData: effective storage; for value/opaque: the value
	copyFrom any
	copyFn   func(dst, src any)
}

// taskRec is the runtime payload attached to each graph node.  The
// context pointer routes a task popped by a shared pool worker back to
// its owning tenant's accounting.
type taskRec struct {
	def  *TaskDef
	ctx  *Context
	args []boundArg
	// renamedBytes is the storage this task's renamed parameters pin
	// until it completes (accounted against Config.MemoryLimit).
	renamedBytes int64
}

// Args gives a task body access to its effective parameters.  Renaming
// means the storage behind a parameter can differ from the variable
// named at the call site; these accessors are the Go equivalent of the
// parameter rewriting the SMPSs compiler performs on task bodies.
type Args struct {
	rec    *taskRec
	ctx    *Context
	worker int
	failed error
}

// Len returns the number of bound parameters.
func (a *Args) Len() int { return len(a.rec.args) }

// Fail marks the task as failed with err: the body may finish normally,
// but the runtime records a TaskError wrapping err as the context's
// sticky failure (first failure wins), and under OnFailure: FailPoison
// the task's dependents are skipped as poisoned.  Multiple calls keep
// the first non-nil err; Fail(nil) is a no-op.  A panic in the body
// takes precedence over a recorded Fail.
func (a *Args) Fail(err error) {
	if err != nil && a.failed == nil {
		a.failed = err
	}
}

// Worker returns the identity of the executing thread (0 = main thread,
// 1.. = workers), handy for per-thread scratch storage.
func (a *Args) Worker() int { return a.worker }

// Data returns parameter i's effective storage as declared (a slice or
// pointer).  It panics if parameter i is a Value or Opaque argument.
func (a *Args) Data(i int) any {
	b := &a.rec.args[i]
	if b.kind != argData {
		panic(fmt.Sprintf("core: argument %d of %s is not a data parameter", i, a.rec.def.Name))
	}
	return b.instance
}

// F32 returns parameter i as a []float32.
func (a *Args) F32(i int) []float32 { return a.Data(i).([]float32) }

// F64 returns parameter i as a []float64.
func (a *Args) F64(i int) []float64 { return a.Data(i).([]float64) }

// I64 returns parameter i as a []int64.
func (a *Args) I64(i int) []int64 { return a.Data(i).([]int64) }

// I32 returns parameter i as a []int32.
func (a *Args) I32(i int) []int32 { return a.Data(i).([]int32) }

// Ints returns parameter i as a []int.
func (a *Args) Ints(i int) []int { return a.Data(i).([]int) }

// Bytes returns parameter i as a []byte.
func (a *Args) Bytes(i int) []byte { return a.Data(i).([]byte) }

// Value returns parameter i's by-value payload.
func (a *Args) Value(i int) any {
	b := &a.rec.args[i]
	if b.kind != argValue {
		panic(fmt.Sprintf("core: argument %d of %s is not a value parameter", i, a.rec.def.Name))
	}
	return b.instance
}

// Opaque returns parameter i's opaque payload, passed through the runtime
// unaltered like the paper's void* parameters.
func (a *Args) Opaque(i int) any {
	b := &a.rec.args[i]
	if b.kind != argOpaque {
		panic(fmt.Sprintf("core: argument %d of %s is not an opaque parameter", i, a.rec.def.Name))
	}
	return b.instance
}

// Int returns parameter i's value as an int, accepting any integer type.
func (a *Args) Int(i int) int {
	switch v := a.Value(i).(type) {
	case int:
		return v
	case int64:
		return int(v)
	case int32:
		return int(v)
	case uint:
		return int(v)
	case uint64:
		return int(v)
	case uint32:
		return int(v)
	}
	panic(fmt.Sprintf("core: argument %d of %s is not an integer", i, a.rec.def.Name))
}

// Int64 returns parameter i's value as an int64.
func (a *Args) Int64(i int) int64 {
	switch v := a.Value(i).(type) {
	case int64:
		return v
	case int:
		return int64(v)
	case int32:
		return int64(v)
	}
	panic(fmt.Sprintf("core: argument %d of %s is not an integer", i, a.rec.def.Name))
}

// Float returns parameter i's value as a float64, accepting float32 too.
func (a *Args) Float(i int) float64 {
	switch v := a.Value(i).(type) {
	case float64:
		return v
	case float32:
		return float64(v)
	}
	panic(fmt.Sprintf("core: argument %d of %s is not a float", i, a.rec.def.Name))
}
