package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestWorkerLocalIdentity pins the registry contract: one instance per
// worker identity, created once, stable across every task that worker
// executes, never shared between workers.
func TestWorkerLocalIdentity(t *testing.T) {
	type scratch struct{ touched int64 }
	var made atomic.Int64
	key := NewLocalKey(func() any {
		made.Add(1)
		return &scratch{}
	})

	const workers, tasks = 4, 512
	var mu sync.Mutex
	perWorker := map[int]map[*scratch]bool{}

	def := NewTaskDef("local_t", func(a *Args) {
		s := a.Local(key).(*scratch)
		s.touched++ // worker-private by contract: -race verifies
		if s2 := a.Local(key).(*scratch); s2 != s {
			panic("Local not stable within one task")
		}
		mu.Lock()
		set := perWorker[a.Worker()]
		if set == nil {
			set = map[*scratch]bool{}
			perWorker[a.Worker()] = set
		}
		set[s] = true
		mu.Unlock()
	})

	rt := New(Config{Workers: workers})
	bufs := make([][]float32, workers*2)
	for i := range bufs {
		bufs[i] = make([]float32, 4)
	}
	for i := 0; i < tasks; i++ {
		rt.Submit(def, InOut(bufs[i%len(bufs)]))
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	seen := map[*scratch]int{}
	var total int64
	for w, set := range perWorker {
		if len(set) != 1 {
			t.Fatalf("worker %d saw %d distinct instances, want 1", w, len(set))
		}
		for s := range set {
			seen[s]++
			total += s.touched
		}
	}
	for s, n := range seen {
		if n != 1 {
			t.Fatalf("instance %p shared by %d workers", s, n)
		}
	}
	if int(made.Load()) != len(perWorker) {
		t.Fatalf("factory ran %d times for %d active workers", made.Load(), len(perWorker))
	}
	if total != tasks {
		t.Fatalf("touch count %d, want %d", total, tasks)
	}
}

// TestWorkerLocalReleasedOnClose pins the teardown contract: values
// implementing Release() are released exactly once when the runtime
// closes.
func TestWorkerLocalReleasedOnClose(t *testing.T) {
	var released atomic.Int64
	key := NewLocalKey(func() any { return &releasable{n: &released} })
	def := NewTaskDef("release_t", func(a *Args) { a.Local(key) })
	rt := New(Config{Workers: 3})
	buf := make([]float32, 4)
	for i := 0; i < 64; i++ {
		rt.Submit(def, InOut(buf))
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if released.Load() == 0 {
		t.Fatalf("no worker-local value released at Close")
	}
	if released.Load() > 3 {
		t.Fatalf("%d releases for at most 3 worker instances", released.Load())
	}
}

type releasable struct{ n *atomic.Int64 }

func (r *releasable) Release() { r.n.Add(1) }

// TestWorkerLocalManyKeys grows the slot table past its initial size
// and checks keys do not alias.
func TestWorkerLocalManyKeys(t *testing.T) {
	keys := make([]*LocalKey, 9)
	for i := range keys {
		i := i
		keys[i] = NewLocalKey(func() any { return &i })
	}
	def := NewTaskDef("many_keys_t", func(a *Args) {
		for i, k := range keys {
			if got := *(a.Local(k).(*int)); got != i {
				panic("key aliasing in worker-local registry")
			}
		}
	})
	rt := New(Config{Workers: 2})
	buf := make([]float32, 4)
	for i := 0; i < 32; i++ {
		rt.Submit(def, InOut(buf))
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
}
