package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(0, EvStart, 1, "x", 1) // must not panic
	if tr.Events() != nil {
		t.Fatalf("nil tracer must have no events")
	}
}

func TestEventsSortedByTime(t *testing.T) {
	tr := New()
	tr.Emit(1, EvStart, 0, "a", 1)
	tr.Emit(0, EvStart, 0, "b", 2)
	tr.Emit(1, EvEnd, 0, "a", 1)
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].When < evs[i-1].When {
			t.Fatalf("events not sorted")
		}
	}
}

func TestSummarizePairsStartEnd(t *testing.T) {
	tr := New()
	tr.Emit(0, EvCreate, 0, "gemm", 1)
	tr.Emit(1, EvStart, 0, "gemm", 1)
	tr.Emit(1, EvEnd, 0, "gemm", 1)
	tr.Emit(2, EvStart, 1, "potrf", 2)
	tr.Emit(2, EvEnd, 1, "potrf", 2)
	tr.Emit(1, EvStart, 0, "gemm", 3)
	tr.Emit(1, EvEnd, 0, "gemm", 3)
	tr.Emit(0, EvRename, 0, "gemm", 4)

	sum := tr.Summarize()
	if sum.Renames != 1 {
		t.Fatalf("renames = %d, want 1", sum.Renames)
	}
	if sum.Created != 1 {
		t.Fatalf("created = %d, want 1", sum.Created)
	}
	if len(sum.Kinds) != 2 {
		t.Fatalf("kinds = %+v", sum.Kinds)
	}
	// Sorted by label: gemm before potrf.
	if sum.Kinds[0].Label != "gemm" || sum.Kinds[0].Count != 2 {
		t.Fatalf("gemm summary = %+v", sum.Kinds[0])
	}
	if sum.Kinds[1].Label != "potrf" || sum.Kinds[1].Count != 1 {
		t.Fatalf("potrf summary = %+v", sum.Kinds[1])
	}
	if len(sum.Workers) != 2 {
		t.Fatalf("workers = %+v", sum.Workers)
	}
	if sum.Workers[0].Worker != 1 || sum.Workers[0].Tasks != 2 {
		t.Fatalf("worker 1 summary = %+v", sum.Workers[0])
	}
	if sum.Kinds[0].Mean <= 0 {
		t.Fatalf("mean must be positive")
	}
}

func TestSummarizeIgnoresUnpairedEnd(t *testing.T) {
	tr := New()
	tr.Emit(0, EvEnd, 0, "x", 1) // end without start
	sum := tr.Summarize()
	if len(sum.Kinds) != 0 {
		t.Fatalf("unpaired end must not create a kind: %+v", sum.Kinds)
	}
}

func TestEmptySummary(t *testing.T) {
	tr := New()
	sum := tr.Summarize()
	if sum.Span != 0 || len(sum.Kinds) != 0 || len(sum.Workers) != 0 {
		t.Fatalf("empty summary = %+v", sum)
	}
}

func TestWritePRVFormat(t *testing.T) {
	tr := New()
	tr.Emit(0, EvCreate, 2, "gemm", 1)
	tr.Emit(1, EvStart, 2, "gemm", 1)
	tr.Emit(1, EvEnd, 2, "gemm", 1)
	tr.Emit(0, EvBarrier, -1, "", 0)
	tr.Emit(0, EvBarrierDone, -1, "", 0)
	tr.Emit(0, EvRename, 2, "gemm", 2)

	var sb strings.Builder
	if err := tr.WritePRV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.HasPrefix(lines[0], "#Paraver") {
		t.Fatalf("missing Paraver header: %q", lines[0])
	}
	if len(lines) != 7 { // header + 6 event records
		t.Fatalf("got %d lines, want 7:\n%s", len(lines), out)
	}
	for _, l := range lines[1:] {
		if !strings.HasPrefix(l, "2:") {
			t.Fatalf("event record must start with '2:': %q", l)
		}
		if len(strings.Split(l, ":")) != 8 {
			t.Fatalf("event record must have 8 fields: %q", l)
		}
	}
	// Task-kind event value is kind+1 at start.
	if !strings.Contains(out, ":90000001:3") {
		t.Fatalf("start record missing kind value:\n%s", out)
	}
	// End record resets to 0.
	if !strings.Contains(out, ":90000001:0") {
		t.Fatalf("end record missing zero value:\n%s", out)
	}
}

func TestConcurrentEmit(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Emit(w, EvStart, 0, "k", int64(i))
				tr.Emit(w, EvEnd, 0, "k", int64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := len(tr.Events()); got != 8000 {
		t.Fatalf("got %d events, want 8000", got)
	}
	sum := tr.Summarize()
	total := 0
	for _, k := range sum.Kinds {
		total += k.Count
	}
	if total != 4000 {
		t.Fatalf("paired %d executions, want 4000", total)
	}
}

func TestEventTypeStrings(t *testing.T) {
	want := map[EventType]string{
		EvCreate: "create", EvStart: "start", EvEnd: "end",
		EvRename: "rename", EvBarrier: "barrier", EvBarrierDone: "barrier_done",
		EventType(200): "event(200)",
	}
	for ev, s := range want {
		if ev.String() != s {
			t.Fatalf("%d.String() = %q, want %q", ev, ev.String(), s)
		}
	}
}

func TestWritePCF(t *testing.T) {
	tr := New()
	tr.Emit(1, EvStart, 2, "gemm", 1)
	tr.Emit(1, EvEnd, 2, "gemm", 1)
	tr.Emit(1, EvStart, 5, "potrf", 2)
	tr.Emit(1, EvEnd, 5, "potrf", 2)
	var sb strings.Builder
	if err := tr.WritePCF(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"EVENT_TYPE", "Task kind", "3      gemm", "6      potrf", "Renaming", "Barrier"} {
		if !strings.Contains(out, want) {
			t.Fatalf("pcf missing %q:\n%s", want, out)
		}
	}
}

func TestSummaryFormat(t *testing.T) {
	tr := New()
	tr.Emit(1, EvStart, 0, "gemm", 1)
	tr.Emit(1, EvEnd, 0, "gemm", 1)
	var sb strings.Builder
	tr.Summarize().Format(&sb)
	out := sb.String()
	for _, want := range []string{"trace span", "gemm", "worker"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted summary missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentEmitStripes hammers Emit from many goroutines (the
// shared-tracer pattern of a multi-tenant pool) and checks nothing is
// lost; under -race it verifies the striped buffers need no global lock.
func TestConcurrentEmitStripes(t *testing.T) {
	tr := New()
	const workers, events = 16, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				tr.EmitCtx(w%4, w, EvStart, 1, "k", int64(i))
				tr.EmitCtx(w%4, w, EvEnd, 1, "k", int64(i))
			}
		}(w)
	}
	wg.Wait()
	got := tr.Events()
	if len(got) != 2*workers*events {
		t.Fatalf("recorded %d events, want %d", len(got), 2*workers*events)
	}
	for i := 1; i < len(got); i++ {
		if got[i].When < got[i-1].When {
			t.Fatalf("events not time-sorted at %d", i)
		}
	}
	sum := tr.Summarize()
	if n := sum.Kinds[0].Count; n != workers*events {
		t.Fatalf("summary paired %d executions, want %d", n, workers*events)
	}
}

// TestPRVRoundTripKeepsContext checks the context dimension survives
// the Paraver write/parse cycle via the task field.
func TestPRVRoundTripKeepsContext(t *testing.T) {
	tr := New()
	tr.EmitCtx(0, 1, EvStart, 3, "gemm", 1)
	tr.EmitCtx(0, 1, EvEnd, 3, "gemm", 1)
	tr.EmitCtx(2, 1, EvStart, 3, "gemm", 2)
	tr.EmitCtx(2, 1, EvEnd, 3, "gemm", 2)
	var prv strings.Builder
	if err := tr.WritePRV(&prv); err != nil {
		t.Fatal(err)
	}
	back, err := ParsePRV(strings.NewReader(prv.String()), nil)
	if err != nil {
		t.Fatal(err)
	}
	perCtx := map[int]int{}
	for _, ev := range back.Events() {
		if ev.Type == EvStart {
			perCtx[ev.Ctx]++
		}
	}
	if perCtx[0] != 1 || perCtx[2] != 1 {
		t.Fatalf("contexts after round trip = %v, want one start in ctx 0 and ctx 2", perCtx)
	}
}

// TestSummarizeFlushesTruncatedStarts pins the mid-trace-close
// contract: a context that stops emitting between a start and its end
// (or a trace snapshotted while tasks run) must surface as an explicit
// truncation — not vanish, and not unbalance the pairing of later
// events on the same (context, worker) key.
func TestSummarizeFlushesTruncatedStarts(t *testing.T) {
	tr := New()
	// Context 7 closes mid-execution: start without end.
	tr.EmitCtx(7, 1, EvStart, 0, "orphan", 1)
	// Same worker, different context: its pairing must be unaffected.
	tr.EmitCtx(0, 1, EvStart, 1, "gemm", 2)
	tr.EmitCtx(0, 1, EvEnd, 1, "gemm", 2)
	// Lost end inside one context: two starts back to back — the first
	// flushes as truncated, the second pairs with the end that follows.
	tr.EmitCtx(0, 2, EvStart, 1, "gemm", 3)
	tr.EmitCtx(0, 2, EvStart, 1, "gemm", 4)
	tr.EmitCtx(0, 2, EvEnd, 1, "gemm", 4)

	sum := tr.Summarize()
	if sum.Truncated != 2 {
		t.Fatalf("Truncated = %d, want 2 (orphan start + lost end)", sum.Truncated)
	}
	byLabel := map[string]KindSummary{}
	for _, k := range sum.Kinds {
		byLabel[k.Label] = k
	}
	if k := byLabel["gemm"]; k.Count != 2 || k.Truncated != 1 {
		t.Fatalf("gemm = %+v, want 2 completed + 1 truncated", k)
	}
	if k := byLabel["orphan"]; k.Count != 0 || k.Truncated != 1 {
		t.Fatalf("orphan = %+v, want 0 completed + 1 truncated", k)
	}

	var sb strings.Builder
	sum.Format(&sb)
	if !strings.Contains(sb.String(), "truncated") {
		t.Fatalf("formatted summary hides the truncation marker:\n%s", sb.String())
	}
}

// TestChainEventRoundTrip: the successor-chain dimension survives
// summary counting and the Paraver write/parse cycle.
func TestChainEventRoundTrip(t *testing.T) {
	tr := New()
	tr.EmitCtx(0, 1, EvStart, 3, "gemm", 1)
	tr.EmitCtx(0, 1, EvEnd, 3, "gemm", 1)
	tr.EmitCtx(0, 1, EvChain, 3, "gemm", 2)
	tr.EmitCtx(0, 1, EvStart, 3, "gemm", 2)
	tr.EmitCtx(0, 1, EvEnd, 3, "gemm", 2)
	if sum := tr.Summarize(); sum.Chained != 1 || sum.Truncated != 0 {
		t.Fatalf("summary = chained %d truncated %d, want 1 and 0", sum.Chained, sum.Truncated)
	}
	var prv strings.Builder
	if err := tr.WritePRV(&prv); err != nil {
		t.Fatal(err)
	}
	back, err := ParsePRV(strings.NewReader(prv.String()), map[int]string{3: "gemm"})
	if err != nil {
		t.Fatal(err)
	}
	var chains int
	for _, ev := range back.Events() {
		if ev.Type == EvChain {
			chains++
			if ev.Kind != 3 || ev.Label != "gemm" {
				t.Fatalf("chain event lost its kind: %+v", ev)
			}
		}
	}
	if chains != 1 {
		t.Fatalf("chain events after round trip = %d, want 1", chains)
	}
	var pcf strings.Builder
	if err := tr.WritePCF(&pcf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pcf.String(), "Successor chain") {
		t.Fatalf("PCF missing the successor-chain event type")
	}
}

func TestFailureEventsRoundTrip(t *testing.T) {
	tr := New()
	tr.EmitCtx(0, 1, EvStart, 2, "boom", 1)
	tr.EmitCtx(0, 1, EvFail, 2, "boom", 1)
	tr.EmitCtx(0, 1, EvEnd, 2, "boom", 1)
	tr.EmitCtx(0, 2, EvPoisoned, 2, "boom", 2)
	tr.EmitCtx(0, 2, EvPoisoned, 2, "boom", 3)
	tr.EmitCtx(1, 2, EvCanceled, 2, "boom", 4)
	sum := tr.Summarize()
	if sum.Failures != 1 || sum.Poisoned != 2 || sum.Canceled != 1 {
		t.Fatalf("summary = failures %d poisoned %d canceled %d, want 1/2/1",
			sum.Failures, sum.Poisoned, sum.Canceled)
	}
	var rep strings.Builder
	sum.Format(&rep)
	for _, want := range []string{"failures: 1", "poisoned: 2", "canceled: 1"} {
		if !strings.Contains(rep.String(), want) {
			t.Fatalf("summary report missing %q:\n%s", want, rep.String())
		}
	}

	var prv strings.Builder
	if err := tr.WritePRV(&prv); err != nil {
		t.Fatal(err)
	}
	back, err := ParsePRV(strings.NewReader(prv.String()), map[int]string{2: "boom"})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[EventType]int{}
	for _, ev := range back.Events() {
		counts[ev.Type]++
		switch ev.Type {
		case EvFail, EvPoisoned, EvCanceled:
			if ev.Kind != 2 || ev.Label != "boom" {
				t.Fatalf("%v event lost its kind: %+v", ev.Type, ev)
			}
		}
	}
	if counts[EvFail] != 1 || counts[EvPoisoned] != 2 || counts[EvCanceled] != 1 {
		t.Fatalf("round-trip counts = %v", counts)
	}
	bsum := back.Summarize()
	if bsum.Failures != 1 || bsum.Poisoned != 2 || bsum.Canceled != 1 {
		t.Fatalf("round-trip summary = %+v", bsum)
	}

	var pcf strings.Builder
	if err := tr.WritePCF(&pcf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Task failure", "Poisoned skip", "Canceled skip"} {
		if !strings.Contains(pcf.String(), want) {
			t.Fatalf("PCF missing %q", want)
		}
	}
}

func TestScalingEventsRoundTrip(t *testing.T) {
	tr := New()
	tr.EmitCtx(0, 9, EvGrow, 3, "", 9)   // slot 9 joins, team now 3
	tr.EmitCtx(0, 10, EvGrow, 4, "", 10) // slot 10 joins, team now 4
	tr.EmitCtx(0, 10, EvShrink, 3, "", 10)
	sum := tr.Summarize()
	if sum.Grows != 2 || sum.Shrinks != 1 {
		t.Fatalf("summary = grows %d shrinks %d, want 2/1", sum.Grows, sum.Shrinks)
	}
	var rep strings.Builder
	sum.Format(&rep)
	for _, want := range []string{"grows: 2", "shrinks: 1"} {
		if !strings.Contains(rep.String(), want) {
			t.Fatalf("summary report missing %q:\n%s", want, rep.String())
		}
	}

	var prv strings.Builder
	if err := tr.WritePRV(&prv); err != nil {
		t.Fatal(err)
	}
	back, err := ParsePRV(strings.NewReader(prv.String()), nil)
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int
	for _, ev := range back.Events() {
		switch ev.Type {
		case EvGrow, EvShrink:
			// Kind carries the new active team size, not a task kind.
			sizes = append(sizes, ev.Kind)
		}
	}
	if len(sizes) != 3 || sizes[0] != 3 || sizes[1] != 4 || sizes[2] != 3 {
		t.Fatalf("round-trip team sizes = %v, want [3 4 3]", sizes)
	}
	bsum := back.Summarize()
	if bsum.Grows != 2 || bsum.Shrinks != 1 {
		t.Fatalf("round-trip summary = grows %d shrinks %d", bsum.Grows, bsum.Shrinks)
	}

	var pcf strings.Builder
	if err := tr.WritePCF(&pcf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Pool grow", "Pool shrink"} {
		if !strings.Contains(pcf.String(), want) {
			t.Fatalf("PCF missing %q", want)
		}
	}
}

func TestSummarizeBarrierWait(t *testing.T) {
	tr := New()
	tr.Emit(0, EvBarrier, -1, "", 0)
	tr.Emit(0, EvBarrierDone, -1, "", 0)
	tr.EmitCtx(1, 0, EvBarrier, -1, "", 0) // snapshotted inside: no exit
	sum := tr.Summarize()
	if sum.Barriers != 2 {
		t.Fatalf("barriers = %d, want 2", sum.Barriers)
	}
	if sum.BarrierWait <= 0 {
		t.Fatalf("barrier wait must be positive, got %v", sum.BarrierWait)
	}
	var sb strings.Builder
	sum.Format(&sb)
	if !strings.Contains(sb.String(), "barriers: 2") {
		t.Fatalf("Format omits barriers:\n%s", sb.String())
	}
}
