package trace

import (
	"strings"
	"testing"
)

// TestPRVRoundTrip writes a trace, parses it back, and checks the
// summary survives: same kind counts, same worker task counts.
func TestPRVRoundTrip(t *testing.T) {
	tr := New()
	tr.Emit(0, EvCreate, 3, "gemm", 1)
	tr.Emit(1, EvStart, 3, "gemm", 1)
	tr.Emit(1, EvEnd, 3, "gemm", 1)
	tr.Emit(2, EvStart, 4, "potrf", 2)
	tr.Emit(2, EvEnd, 4, "potrf", 2)
	tr.Emit(0, EvRename, 3, "gemm", 5)
	tr.Emit(0, EvBarrier, -1, "", 0)
	tr.Emit(0, EvBarrierDone, -1, "", 0)

	var prv, pcf strings.Builder
	if err := tr.WritePRV(&prv); err != nil {
		t.Fatal(err)
	}
	if err := tr.WritePCF(&pcf); err != nil {
		t.Fatal(err)
	}
	labels, err := ParsePCF(strings.NewReader(pcf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if labels[3] != "gemm" || labels[4] != "potrf" {
		t.Fatalf("pcf labels = %v", labels)
	}

	back, err := ParsePRV(strings.NewReader(prv.String()), labels)
	if err != nil {
		t.Fatal(err)
	}
	sum := back.Summarize()
	if sum.Renames != 1 {
		t.Fatalf("round-trip renames = %d, want 1", sum.Renames)
	}
	kinds := map[string]int{}
	for _, k := range sum.Kinds {
		kinds[k.Label] = k.Count
	}
	if kinds["gemm"] != 1 || kinds["potrf"] != 1 {
		t.Fatalf("round-trip kinds = %v", kinds)
	}
	if len(back.Events()) != len(tr.Events()) {
		t.Fatalf("round-trip lost events: %d vs %d", len(back.Events()), len(tr.Events()))
	}
}

func TestParsePRVWithoutLabels(t *testing.T) {
	tr := New()
	tr.Emit(0, EvStart, 7, "x", 1)
	tr.Emit(0, EvEnd, 7, "x", 1)
	var prv strings.Builder
	if err := tr.WritePRV(&prv); err != nil {
		t.Fatal(err)
	}
	back, err := ParsePRV(strings.NewReader(prv.String()), nil)
	if err != nil {
		t.Fatal(err)
	}
	sum := back.Summarize()
	if len(sum.Kinds) != 1 || sum.Kinds[0].Label != "kind7" {
		t.Fatalf("placeholder label missing: %+v", sum.Kinds)
	}
}

func TestParsePRVRejectsMalformed(t *testing.T) {
	if _, err := ParsePRV(strings.NewReader("2:1:1:1:1:5\n"), nil); err == nil {
		t.Fatalf("short event record must fail")
	}
	if _, err := ParsePRV(strings.NewReader("2:1:1:1:1:x:90000001:1\n"), nil); err == nil {
		t.Fatalf("non-numeric field must fail")
	}
}

func TestParsePRVSkipsForeignRecords(t *testing.T) {
	src := "#Paraver (x):1_ns:1(1):1:1(1:1)\n" +
		"1:1:1:1:1:0:100:1\n" + // state record: skipped
		"2:1:1:1:1:50:12345:9\n" + // foreign event type: skipped
		"2:1:1:1:1:60:90000001:1\n" +
		"2:1:1:1:1:70:90000001:0\n"
	back, err := ParsePRV(strings.NewReader(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(back.Events()); got != 2 {
		t.Fatalf("parsed %d events, want 2", got)
	}
}
