package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// ParsePRV reads a Paraver .prv trace produced by WritePRV back into a
// Tracer, enabling post-mortem analysis of traces recorded by earlier
// runs — the Paraver workflow of the SMPSs toolset (§VII.C).  Task-kind
// labels are recovered from the optional .pcf via labels (kind → name);
// pass nil to fall back to "kind<N>" placeholders.
func ParsePRV(r io.Reader, labels map[int]string) (*Tracer, error) {
	t := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	// openKind tracks the running task kind per (context, worker) so end
	// records (value 0) can be attributed.
	type openKey struct{ ctx, worker int }
	openKind := map[openKey]int{}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ":")
		if fields[0] != "2" {
			// State/communication records are not produced by WritePRV;
			// skip them for compatibility with external traces.
			continue
		}
		if len(fields) != 8 {
			return nil, fmt.Errorf("trace: line %d: event record has %d fields, want 8", lineNo, len(fields))
		}
		nums := make([]int64, 7)
		for i, f := range fields[1:] {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad field %q", lineNo, f)
			}
			nums[i] = v
		}
		ctx := int(nums[2]) - 1    // task carries ctx+1 in WritePRV
		worker := int(nums[3]) - 1 // thread is worker+1 in WritePRV
		when := time.Duration(nums[4])
		typ := nums[5]
		val := nums[6]

		ev := Event{When: when, Ctx: ctx, Worker: worker, Kind: -1}
		switch typ {
		case prvTaskKind:
			if val > 0 {
				ev.Type = EvStart
				ev.Kind = int(val - 1)
				openKind[openKey{ctx, worker}] = ev.Kind
			} else {
				ev.Type = EvEnd
				ev.Kind = openKind[openKey{ctx, worker}]
			}
			ev.Label = labelFor(labels, ev.Kind)
		case prvRename:
			ev.Type = EvRename
		case prvBarrier:
			if val > 0 {
				ev.Type = EvBarrier
			} else {
				ev.Type = EvBarrierDone
			}
		case prvCreate:
			ev.Type = EvCreate
			ev.Kind = int(val - 1)
			ev.Label = labelFor(labels, ev.Kind)
		case prvChain:
			ev.Type = EvChain
			ev.Kind = int(val - 1)
			ev.Label = labelFor(labels, ev.Kind)
		case prvFail:
			ev.Type = EvFail
			ev.Kind = int(val - 1)
			ev.Label = labelFor(labels, ev.Kind)
		case prvPoisoned:
			ev.Type = EvPoisoned
			ev.Kind = int(val - 1)
			ev.Label = labelFor(labels, ev.Kind)
		case prvCanceled:
			ev.Type = EvCanceled
			ev.Kind = int(val - 1)
			ev.Label = labelFor(labels, ev.Kind)
		case prvGrow:
			ev.Type = EvGrow
			ev.Kind = int(val) // new active team size, not a task kind
		case prvShrink:
			ev.Type = EvShrink
			ev.Kind = int(val)
		default:
			continue // foreign event type
		}
		s := &t.bufs[worker&(stripes-1)]
		s.mu.Lock()
		s.evs = append(s.evs, ev)
		s.mu.Unlock()
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

func labelFor(labels map[int]string, kind int) string {
	if l, ok := labels[kind]; ok {
		return l
	}
	return fmt.Sprintf("kind%d", kind)
}

// ParsePCF extracts the task-kind value → label mapping from a .pcf
// written by WritePCF (it reads the VALUES section of the Task kind
// event type).
func ParsePCF(r io.Reader) (map[int]string, error) {
	labels := map[int]string{}
	sc := bufio.NewScanner(r)
	inTaskKind := false
	inValues := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "EVENT_TYPE"):
			inTaskKind = false
			inValues = false
		case strings.Contains(line, "Task kind"):
			inTaskKind = true
		case line == "VALUES":
			inValues = inTaskKind
		case inValues && line != "":
			var val int
			var name string
			if _, err := fmt.Sscanf(line, "%d %s", &val, &name); err == nil && val > 0 {
				labels[val-1] = name
			}
		case line == "":
			inValues = false
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return labels, nil
}
