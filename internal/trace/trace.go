// Package trace implements the tracing support of the SMPSs toolset: the
// tracing-enabled runtime "records events related to task creation and
// execution for post-mortem analysis with the Paraver tool" (paper
// §VII.C).
//
// Events are buffered per worker to keep tracing off the critical path
// and can be exported either as a Paraver .prv trace or aggregated into a
// per-task-kind summary.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// EventType classifies a trace event.
type EventType uint8

// Event types recorded by the runtime.
const (
	// EvCreate marks a task being added to the graph (main thread).
	EvCreate EventType = iota
	// EvStart marks a worker beginning a task body.
	EvStart
	// EvEnd marks a worker finishing a task body.
	EvEnd
	// EvRename marks the dependency tracker allocating a renamed
	// instance for the task being analyzed.
	EvRename
	// EvBarrier marks the main thread entering a barrier.
	EvBarrier
	// EvBarrierDone marks the main thread leaving a barrier.
	EvBarrierDone
	// EvChain marks a worker running a successor inline (the locality
	// layer's successor chaining): the task identified by the event ran
	// immediately after its predecessor on the same worker, bypassing
	// the scheduler's queues.  Emitted just before the chained task's
	// EvStart.
	EvChain
	// EvFail marks a task body that failed (panic or Args.Fail),
	// emitted by the executing worker after the body's EvEnd bracket.
	EvFail
	// EvPoisoned marks a task skipped because a predecessor failed
	// under the poisoning failure policy; the body never ran, so no
	// EvStart/EvEnd bracket accompanies it.
	EvPoisoned
	// EvCanceled marks a task drained as a skip by its context's
	// cancellation (Cancel, Deadline, or pool Drain); like EvPoisoned
	// it has no EvStart/EvEnd bracket.
	EvCanceled
	// EvGrow marks the elastic pool unparking a retired worker slot.
	// Worker is the grown slot; Kind carries the new active team size.
	EvGrow
	// EvShrink marks the elastic pool retiring a worker slot.  Worker
	// is the retired slot; Kind carries the new active team size.
	EvShrink
)

// String returns a short name for the event type.
func (e EventType) String() string {
	switch e {
	case EvCreate:
		return "create"
	case EvStart:
		return "start"
	case EvEnd:
		return "end"
	case EvRename:
		return "rename"
	case EvBarrier:
		return "barrier"
	case EvBarrierDone:
		return "barrier_done"
	case EvChain:
		return "chain"
	case EvFail:
		return "fail"
	case EvPoisoned:
		return "poisoned"
	case EvCanceled:
		return "canceled"
	case EvGrow:
		return "grow"
	case EvShrink:
		return "shrink"
	}
	return fmt.Sprintf("event(%d)", uint8(e))
}

// Event is one timestamped runtime occurrence.
type Event struct {
	// When is the time since the tracer was created.
	When time.Duration
	// Ctx identifies the runtime context the event belongs to (0 when
	// the tracer serves a single private runtime).  On a shared worker
	// pool several contexts may record into one tracer; the context
	// dimension keeps their timelines separable in Paraver.
	Ctx int
	// Worker identifies the thread (0 = main, 1.. = workers).
	Worker int
	// Type is the event class.
	Type EventType
	// Kind is the task definition index (-1 when not applicable).
	Kind int
	// Label is the task definition name ("" when not applicable).
	Label string
	// TaskID is the task invocation number (0 when not applicable).
	TaskID int64
}

// stripes is the number of independent event buffers.  Emits hash by
// worker identity, so concurrent threads append under different locks;
// a power of two keeps the index a mask.
const stripes = 64

// stripe is one event buffer with its own lock, padded to a full
// 64-byte cache line (8-byte mutex + 24-byte slice header + 32 pad) so
// neighbouring stripes' mutexes do not share a line.
type stripe struct {
	mu  sync.Mutex
	evs []Event
	_   [32]byte
}

// Tracer collects events from all runtime threads.  A nil *Tracer is
// valid and records nothing, so the runtime can call it unconditionally.
//
// Events are buffered per worker stripe: concurrent emitters from
// different workers take different locks, so one shared tracer across a
// pool's workers and contexts is not a serialization point.  Merging
// and time-sorting happen at read time (Events, WritePRV, Summarize).
type Tracer struct {
	start time.Time

	bufs [stripes]stripe
}

// New creates an empty tracer; the zero time reference is "now".
func New() *Tracer {
	return &Tracer{start: time.Now()}
}

// Emit records one event for context 0.  Safe for concurrent use; a nil
// tracer drops the event.
func (t *Tracer) Emit(worker int, typ EventType, kind int, label string, taskID int64) {
	t.EmitCtx(0, worker, typ, kind, label, taskID)
}

// EmitCtx records one event tagged with its runtime context.  Safe for
// concurrent use; a nil tracer drops the event.
func (t *Tracer) EmitCtx(ctx, worker int, typ EventType, kind int, label string, taskID int64) {
	if t == nil {
		return
	}
	ev := Event{
		When:   time.Since(t.start),
		Ctx:    ctx,
		Worker: worker,
		Type:   typ,
		Kind:   kind,
		Label:  label,
		TaskID: taskID,
	}
	s := &t.bufs[worker&(stripes-1)]
	s.mu.Lock()
	s.evs = append(s.evs, ev)
	s.mu.Unlock()
}

// Events returns all recorded events sorted by time.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	var all []Event
	for i := range t.bufs {
		s := &t.bufs[i]
		s.mu.Lock()
		all = append(all, s.evs...)
		s.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].When < all[j].When })
	return all
}

// Paraver event-type codes used in the .prv output, loosely following the
// CellSs/SMPSs instrumentation convention of one code per semantic.
const (
	prvTaskKind = 90000001 // value = task kind + 1 at start, 0 at end
	prvRename   = 90000002
	prvBarrier  = 90000003
	prvCreate   = 90000004
	prvChain    = 90000005 // value = task kind + 1 of the chained task
	prvFail     = 90000006 // value = task kind + 1 of the failed task
	prvPoisoned = 90000007 // value = task kind + 1 of the skipped task
	prvCanceled = 90000008 // value = task kind + 1 of the skipped task
	prvGrow     = 90000009 // value = new active team size
	prvShrink   = 90000010 // value = new active team size
)

// WritePRV exports the trace in Paraver .prv format: a header line
// followed by event records "2:cpu:appl:task:thread:time:type:value"
// with times in nanoseconds.
func (t *Tracer) WritePRV(w io.Writer) error {
	events := t.Events()
	var end time.Duration
	if len(events) > 0 {
		end = events[len(events)-1].When
	}
	maxWorker, maxCtx := 0, 0
	for _, ev := range events {
		if ev.Worker > maxWorker {
			maxWorker = ev.Worker
		}
		if ev.Ctx > maxCtx {
			maxCtx = ev.Ctx
		}
	}
	// Header: #Paraver (date):totalTime_ns:nNodes(nCPUs):nAppl:appl(nTasks(nThreads:node),...)
	// One Paraver "task" per runtime context, each with every worker
	// thread, matching the task field the event records carry — so a
	// tracer shared by several contexts still writes a self-consistent
	// trace.
	if _, err := fmt.Fprintf(w, "#Paraver (13/06/2026 at 00:00):%d_ns:1(%d):1:%d(",
		end.Nanoseconds(), maxWorker+1, maxCtx+1); err != nil {
		return err
	}
	for c := 0; c <= maxCtx; c++ {
		sep := ","
		if c == maxCtx {
			sep = ")\n"
		}
		if _, err := fmt.Fprintf(w, "%d:1%s", maxWorker+1, sep); err != nil {
			return err
		}
	}
	for _, ev := range events {
		var typ, val int64
		switch ev.Type {
		case EvStart:
			typ, val = prvTaskKind, int64(ev.Kind)+1
		case EvEnd:
			typ, val = prvTaskKind, 0
		case EvRename:
			typ, val = prvRename, 1
		case EvBarrier:
			typ, val = prvBarrier, 1
		case EvBarrierDone:
			typ, val = prvBarrier, 0
		case EvCreate:
			typ, val = prvCreate, int64(ev.Kind)+1
		case EvChain:
			typ, val = prvChain, int64(ev.Kind)+1
		case EvFail:
			typ, val = prvFail, int64(ev.Kind)+1
		case EvPoisoned:
			typ, val = prvPoisoned, int64(ev.Kind)+1
		case EvCanceled:
			typ, val = prvCanceled, int64(ev.Kind)+1
		case EvGrow:
			typ, val = prvGrow, int64(ev.Kind)
		case EvShrink:
			typ, val = prvShrink, int64(ev.Kind)
		}
		// cpu, appl, task are 1-based; the task field carries the runtime
		// context (ctx+1) so a shared tracer's tenants stay separable in
		// Paraver; thread is worker+1.
		if _, err := fmt.Fprintf(w, "2:%d:1:%d:%d:%d:%d:%d\n",
			ev.Worker+1, ev.Ctx+1, ev.Worker+1, ev.When.Nanoseconds(), typ, val); err != nil {
			return err
		}
	}
	return nil
}

// WritePCF exports the Paraver configuration file matching WritePRV: it
// names the event types and maps each task-kind value to its label so
// Paraver renders readable timelines.
func (t *Tracer) WritePCF(w io.Writer) error {
	// Collect kind → label from start events, in first-seen order.
	labels := map[int]string{}
	var order []int
	for _, ev := range t.Events() {
		if ev.Type != EvStart && ev.Type != EvCreate {
			continue
		}
		if _, ok := labels[ev.Kind]; !ok {
			labels[ev.Kind] = ev.Label
			order = append(order, ev.Kind)
		}
	}
	var b strings.Builder
	b.WriteString("DEFAULT_OPTIONS\n\nLEVEL               THREAD\nUNITS               NANOSEC\n\n")
	fmt.Fprintf(&b, "EVENT_TYPE\n0    %d    Task kind\nVALUES\n0      end\n", prvTaskKind)
	for _, k := range order {
		fmt.Fprintf(&b, "%d      %s\n", k+1, labels[k])
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "EVENT_TYPE\n0    %d    Renaming\nVALUES\n0      none\n1      renamed\n\n", prvRename)
	fmt.Fprintf(&b, "EVENT_TYPE\n0    %d    Barrier\nVALUES\n0      outside\n1      inside\n\n", prvBarrier)
	fmt.Fprintf(&b, "EVENT_TYPE\n0    %d    Task creation\n\n", prvCreate)
	fmt.Fprintf(&b, "EVENT_TYPE\n0    %d    Successor chain\n\n", prvChain)
	fmt.Fprintf(&b, "EVENT_TYPE\n0    %d    Task failure\n\n", prvFail)
	fmt.Fprintf(&b, "EVENT_TYPE\n0    %d    Poisoned skip\n\n", prvPoisoned)
	fmt.Fprintf(&b, "EVENT_TYPE\n0    %d    Canceled skip\n\n", prvCanceled)
	fmt.Fprintf(&b, "EVENT_TYPE\n0    %d    Pool grow (value = active workers)\n\n", prvGrow)
	fmt.Fprintf(&b, "EVENT_TYPE\n0    %d    Pool shrink (value = active workers)\n\n", prvShrink)
	_, err := io.WriteString(w, b.String())
	return err
}

// KindSummary aggregates executions of one task definition.
type KindSummary struct {
	// Label is the task definition name.
	Label string
	// Count is the number of completed executions.
	Count int
	// Total is the summed body execution time.
	Total time.Duration
	// Mean is Total / Count.
	Mean time.Duration
	// Truncated counts executions whose start was recorded but whose
	// end never was — a context that closed (or a trace snapshotted)
	// mid-execution.  They are excluded from Count/Total/Mean.
	Truncated int
}

// WorkerSummary aggregates one thread's activity.
type WorkerSummary struct {
	// Worker is the thread identity (0 = main).
	Worker int
	// Tasks is the number of task bodies the thread executed.
	Tasks int
	// Busy is the summed task body time on this thread.
	Busy time.Duration
}

// Summary is the aggregate view produced from a trace.
type Summary struct {
	// Span is the time from first to last event.
	Span time.Duration
	// Kinds summarizes per task definition, sorted by label.
	Kinds []KindSummary
	// Workers summarizes per thread, sorted by worker id.
	Workers []WorkerSummary
	// Created is the number of task-creation events (tasks added to the
	// graph by the main thread).  It can exceed the summed Kinds counts
	// when the trace ends before every created task ran.
	Created int
	// Renames is the number of rename events.
	Renames int
	// Barriers is the number of barrier entries the main threads
	// recorded; BarrierWait is the summed time between each barrier
	// entry and its matching exit, paired per (context, worker).  An
	// entry with no recorded exit (trace snapshotted inside a barrier)
	// counts in Barriers but adds nothing to BarrierWait.
	Barriers    int
	BarrierWait time.Duration
	// Chained is the number of successor-chain events (tasks run inline
	// by the completing worker, bypassing the scheduler's queues).
	Chained int
	// Failures is the number of task-failure events (bodies that
	// panicked or called Args.Fail).
	Failures int
	// Poisoned is the number of tasks skipped as dependents of a
	// failure under the poisoning policy.
	Poisoned int
	// Canceled is the number of tasks drained as skips by their
	// context's cancellation.
	Canceled int
	// Grows and Shrinks count the elastic pool's scaling actions:
	// retired worker slots unparked and active workers retired.  Both
	// are zero for a fixed-size pool's trace.
	Grows, Shrinks int
	// Truncated is the number of task starts with no matching end — a
	// context that closed mid-trace, or a trace snapshotted while tasks
	// were executing.  Instead of silently unbalancing later pairings
	// (or vanishing), each such start is flushed into its kind's
	// Truncated count.
	Truncated int
}

// Summarize pairs start/end events per (context, worker) and aggregates
// busy time per task kind and per worker.  Start events that never see
// their end — a context closed mid-trace, or the trace snapshotted
// while tasks run — are flushed as explicit truncations rather than
// dropped or mis-paired with a later task's end.
func (t *Tracer) Summarize() Summary {
	events := t.Events()
	var s Summary
	if len(events) == 0 {
		return s
	}
	s.Span = events[len(events)-1].When - events[0].When

	type key struct{ ctx, worker int }
	open := make(map[key]Event)
	kinds := make(map[string]*KindSummary)
	kindFor := func(label string) *KindSummary {
		ks := kinds[label]
		if ks == nil {
			ks = &KindSummary{Label: label}
			kinds[label] = ks
		}
		return ks
	}
	truncate := func(st Event) {
		kindFor(st.Label).Truncated++
		s.Truncated++
	}
	workers := make(map[int]*WorkerSummary)
	inBarrier := make(map[key]Event)
	for _, ev := range events {
		switch ev.Type {
		case EvCreate:
			s.Created++
		case EvBarrier:
			s.Barriers++
			inBarrier[key{ev.Ctx, ev.Worker}] = ev
		case EvBarrierDone:
			if ent, ok := inBarrier[key{ev.Ctx, ev.Worker}]; ok {
				s.BarrierWait += ev.When - ent.When
				delete(inBarrier, key{ev.Ctx, ev.Worker})
			}
		case EvStart:
			k := key{ev.Ctx, ev.Worker}
			if prev, ok := open[k]; ok {
				// Two starts with no end between them: the first one's
				// end was lost.  Flush it as truncated so it cannot be
				// mis-paired with this task's end.
				truncate(prev)
			}
			open[k] = ev
		case EvEnd:
			st, ok := open[key{ev.Ctx, ev.Worker}]
			if !ok {
				continue
			}
			delete(open, key{ev.Ctx, ev.Worker})
			d := ev.When - st.When
			ks := kindFor(st.Label)
			ks.Count++
			ks.Total += d
			ws := workers[ev.Worker]
			if ws == nil {
				ws = &WorkerSummary{Worker: ev.Worker}
				workers[ev.Worker] = ws
			}
			ws.Tasks++
			ws.Busy += d
		case EvRename:
			s.Renames++
		case EvChain:
			s.Chained++
		case EvFail:
			s.Failures++
		case EvPoisoned:
			s.Poisoned++
		case EvCanceled:
			s.Canceled++
		case EvGrow:
			s.Grows++
		case EvShrink:
			s.Shrinks++
		}
	}
	// Whatever is still open at the end of the trace never terminated.
	for _, st := range open {
		truncate(st)
	}
	for _, ks := range kinds {
		if ks.Count > 0 {
			ks.Mean = ks.Total / time.Duration(ks.Count)
		}
		s.Kinds = append(s.Kinds, *ks)
	}
	sort.Slice(s.Kinds, func(i, j int) bool { return s.Kinds[i].Label < s.Kinds[j].Label })
	for _, ws := range workers {
		s.Workers = append(s.Workers, *ws)
	}
	sort.Slice(s.Workers, func(i, j int) bool { return s.Workers[i].Worker < s.Workers[j].Worker })
	return s
}

// Format renders the summary as a fixed-width text report.
func (s Summary) Format(w io.Writer) {
	fmt.Fprintf(w, "trace span: %v, created: %d, renames: %d", s.Span, s.Created, s.Renames)
	if s.Barriers > 0 {
		fmt.Fprintf(w, ", barriers: %d (%v waiting)", s.Barriers, s.BarrierWait)
	}
	if s.Chained > 0 {
		fmt.Fprintf(w, ", chained: %d", s.Chained)
	}
	if s.Failures > 0 {
		fmt.Fprintf(w, ", failures: %d", s.Failures)
	}
	if s.Poisoned > 0 {
		fmt.Fprintf(w, ", poisoned: %d", s.Poisoned)
	}
	if s.Canceled > 0 {
		fmt.Fprintf(w, ", canceled: %d", s.Canceled)
	}
	if s.Grows > 0 || s.Shrinks > 0 {
		fmt.Fprintf(w, ", grows: %d, shrinks: %d", s.Grows, s.Shrinks)
	}
	if s.Truncated > 0 {
		fmt.Fprintf(w, ", truncated: %d", s.Truncated)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-16s %8s %14s %14s\n", "task", "count", "total", "mean")
	for _, k := range s.Kinds {
		fmt.Fprintf(w, "%-16s %8d %14v %14v", k.Label, k.Count, k.Total, k.Mean)
		if k.Truncated > 0 {
			fmt.Fprintf(w, " (+%d truncated)", k.Truncated)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-16s %8s %14s\n", "worker", "tasks", "busy")
	for _, ws := range s.Workers {
		fmt.Fprintf(w, "%-16d %8d %14v\n", ws.Worker, ws.Tasks, ws.Busy)
	}
}
