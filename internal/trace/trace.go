// Package trace implements the tracing support of the SMPSs toolset: the
// tracing-enabled runtime "records events related to task creation and
// execution for post-mortem analysis with the Paraver tool" (paper
// §VII.C).
//
// Events are buffered per worker to keep tracing off the critical path
// and can be exported either as a Paraver .prv trace or aggregated into a
// per-task-kind summary.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// EventType classifies a trace event.
type EventType uint8

// Event types recorded by the runtime.
const (
	// EvCreate marks a task being added to the graph (main thread).
	EvCreate EventType = iota
	// EvStart marks a worker beginning a task body.
	EvStart
	// EvEnd marks a worker finishing a task body.
	EvEnd
	// EvRename marks the dependency tracker allocating a renamed
	// instance for the task being analyzed.
	EvRename
	// EvBarrier marks the main thread entering a barrier.
	EvBarrier
	// EvBarrierDone marks the main thread leaving a barrier.
	EvBarrierDone
)

// String returns a short name for the event type.
func (e EventType) String() string {
	switch e {
	case EvCreate:
		return "create"
	case EvStart:
		return "start"
	case EvEnd:
		return "end"
	case EvRename:
		return "rename"
	case EvBarrier:
		return "barrier"
	case EvBarrierDone:
		return "barrier_done"
	}
	return fmt.Sprintf("event(%d)", uint8(e))
}

// Event is one timestamped runtime occurrence.
type Event struct {
	// When is the time since the tracer was created.
	When time.Duration
	// Worker identifies the thread (0 = main, 1.. = workers).
	Worker int
	// Type is the event class.
	Type EventType
	// Kind is the task definition index (-1 when not applicable).
	Kind int
	// Label is the task definition name ("" when not applicable).
	Label string
	// TaskID is the task invocation number (0 when not applicable).
	TaskID int64
}

// Tracer collects events from all runtime threads.  A nil *Tracer is
// valid and records nothing, so the runtime can call it unconditionally.
type Tracer struct {
	start time.Time

	mu      sync.Mutex
	buffers map[int][]Event
}

// New creates an empty tracer; the zero time reference is "now".
func New() *Tracer {
	return &Tracer{start: time.Now(), buffers: make(map[int][]Event)}
}

// Emit records one event.  Safe for concurrent use; a nil tracer drops
// the event.
func (t *Tracer) Emit(worker int, typ EventType, kind int, label string, taskID int64) {
	if t == nil {
		return
	}
	ev := Event{
		When:   time.Since(t.start),
		Worker: worker,
		Type:   typ,
		Kind:   kind,
		Label:  label,
		TaskID: taskID,
	}
	t.mu.Lock()
	t.buffers[worker] = append(t.buffers[worker], ev)
	t.mu.Unlock()
}

// Events returns all recorded events sorted by time.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var all []Event
	for _, b := range t.buffers {
		all = append(all, b...)
	}
	t.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].When < all[j].When })
	return all
}

// Paraver event-type codes used in the .prv output, loosely following the
// CellSs/SMPSs instrumentation convention of one code per semantic.
const (
	prvTaskKind = 90000001 // value = task kind + 1 at start, 0 at end
	prvRename   = 90000002
	prvBarrier  = 90000003
	prvCreate   = 90000004
)

// WritePRV exports the trace in Paraver .prv format: a header line
// followed by event records "2:cpu:appl:task:thread:time:type:value"
// with times in nanoseconds.
func (t *Tracer) WritePRV(w io.Writer) error {
	events := t.Events()
	var end time.Duration
	if len(events) > 0 {
		end = events[len(events)-1].When
	}
	maxWorker := 0
	for _, ev := range events {
		if ev.Worker > maxWorker {
			maxWorker = ev.Worker
		}
	}
	// Header: #Paraver (date):totalTime_ns:nNodes(nCPUs):nAppl:appl(nTasks(nThreads:node))
	if _, err := fmt.Fprintf(w, "#Paraver (13/06/2026 at 00:00):%d_ns:1(%d):1:1(%d:1)\n",
		end.Nanoseconds(), maxWorker+1, maxWorker+1); err != nil {
		return err
	}
	for _, ev := range events {
		var typ, val int64
		switch ev.Type {
		case EvStart:
			typ, val = prvTaskKind, int64(ev.Kind)+1
		case EvEnd:
			typ, val = prvTaskKind, 0
		case EvRename:
			typ, val = prvRename, 1
		case EvBarrier:
			typ, val = prvBarrier, 1
		case EvBarrierDone:
			typ, val = prvBarrier, 0
		case EvCreate:
			typ, val = prvCreate, int64(ev.Kind)+1
		}
		// cpu, appl, task are 1-based; thread is worker+1.
		if _, err := fmt.Fprintf(w, "2:%d:1:1:%d:%d:%d:%d\n",
			ev.Worker+1, ev.Worker+1, ev.When.Nanoseconds(), typ, val); err != nil {
			return err
		}
	}
	return nil
}

// WritePCF exports the Paraver configuration file matching WritePRV: it
// names the event types and maps each task-kind value to its label so
// Paraver renders readable timelines.
func (t *Tracer) WritePCF(w io.Writer) error {
	// Collect kind → label from start events, in first-seen order.
	labels := map[int]string{}
	var order []int
	for _, ev := range t.Events() {
		if ev.Type != EvStart && ev.Type != EvCreate {
			continue
		}
		if _, ok := labels[ev.Kind]; !ok {
			labels[ev.Kind] = ev.Label
			order = append(order, ev.Kind)
		}
	}
	var b strings.Builder
	b.WriteString("DEFAULT_OPTIONS\n\nLEVEL               THREAD\nUNITS               NANOSEC\n\n")
	fmt.Fprintf(&b, "EVENT_TYPE\n0    %d    Task kind\nVALUES\n0      end\n", prvTaskKind)
	for _, k := range order {
		fmt.Fprintf(&b, "%d      %s\n", k+1, labels[k])
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "EVENT_TYPE\n0    %d    Renaming\nVALUES\n0      none\n1      renamed\n\n", prvRename)
	fmt.Fprintf(&b, "EVENT_TYPE\n0    %d    Barrier\nVALUES\n0      outside\n1      inside\n\n", prvBarrier)
	fmt.Fprintf(&b, "EVENT_TYPE\n0    %d    Task creation\n\n", prvCreate)
	_, err := io.WriteString(w, b.String())
	return err
}

// KindSummary aggregates executions of one task definition.
type KindSummary struct {
	// Label is the task definition name.
	Label string
	// Count is the number of completed executions.
	Count int
	// Total is the summed body execution time.
	Total time.Duration
	// Mean is Total / Count.
	Mean time.Duration
}

// WorkerSummary aggregates one thread's activity.
type WorkerSummary struct {
	// Worker is the thread identity (0 = main).
	Worker int
	// Tasks is the number of task bodies the thread executed.
	Tasks int
	// Busy is the summed task body time on this thread.
	Busy time.Duration
}

// Summary is the aggregate view produced from a trace.
type Summary struct {
	// Span is the time from first to last event.
	Span time.Duration
	// Kinds summarizes per task definition, sorted by label.
	Kinds []KindSummary
	// Workers summarizes per thread, sorted by worker id.
	Workers []WorkerSummary
	// Renames is the number of rename events.
	Renames int
}

// Summarize pairs start/end events per worker and aggregates busy time
// per task kind and per worker.
func (t *Tracer) Summarize() Summary {
	events := t.Events()
	var s Summary
	if len(events) == 0 {
		return s
	}
	s.Span = events[len(events)-1].When - events[0].When

	type key struct{ worker int }
	open := make(map[key]Event)
	kinds := make(map[string]*KindSummary)
	workers := make(map[int]*WorkerSummary)
	for _, ev := range events {
		switch ev.Type {
		case EvStart:
			open[key{ev.Worker}] = ev
		case EvEnd:
			st, ok := open[key{ev.Worker}]
			if !ok {
				continue
			}
			delete(open, key{ev.Worker})
			d := ev.When - st.When
			ks := kinds[st.Label]
			if ks == nil {
				ks = &KindSummary{Label: st.Label}
				kinds[st.Label] = ks
			}
			ks.Count++
			ks.Total += d
			ws := workers[ev.Worker]
			if ws == nil {
				ws = &WorkerSummary{Worker: ev.Worker}
				workers[ev.Worker] = ws
			}
			ws.Tasks++
			ws.Busy += d
		case EvRename:
			s.Renames++
		}
	}
	for _, ks := range kinds {
		if ks.Count > 0 {
			ks.Mean = ks.Total / time.Duration(ks.Count)
		}
		s.Kinds = append(s.Kinds, *ks)
	}
	sort.Slice(s.Kinds, func(i, j int) bool { return s.Kinds[i].Label < s.Kinds[j].Label })
	for _, ws := range workers {
		s.Workers = append(s.Workers, *ws)
	}
	sort.Slice(s.Workers, func(i, j int) bool { return s.Workers[i].Worker < s.Workers[j].Worker })
	return s
}

// Format renders the summary as a fixed-width text report.
func (s Summary) Format(w io.Writer) {
	fmt.Fprintf(w, "trace span: %v, renames: %d\n", s.Span, s.Renames)
	fmt.Fprintf(w, "%-16s %8s %14s %14s\n", "task", "count", "total", "mean")
	for _, k := range s.Kinds {
		fmt.Fprintf(w, "%-16s %8d %14v %14v\n", k.Label, k.Count, k.Total, k.Mean)
	}
	fmt.Fprintf(w, "%-16s %8s %14s\n", "worker", "tasks", "busy")
	for _, ws := range s.Workers {
		fmt.Fprintf(w, "%-16d %8d %14v\n", ws.Worker, ws.Tasks, ws.Busy)
	}
}
