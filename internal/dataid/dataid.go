// Package dataid provides the data-identity and storage-shape helpers
// shared by every runtime in this repository (the SMPSs runtime in
// internal/core and the related-work baseline runtimes in
// internal/supermatrix and internal/cellss).
//
// The 2008 SMPSs runtime keys its dependency analysis on parameter memory
// addresses and needs to allocate and copy instances of parameter storage
// for renaming; Key, AllocLike, ByteSize and CopyInto are the Go
// equivalents of that machinery.
package dataid

import (
	"fmt"
	"reflect"
)

// Key returns the dependency-analysis identity of a data argument: the
// base address of the slice's backing array, or the pointer value.  This
// mirrors the 2008 runtime, which keys its analysis on parameter memory
// addresses.
func Key(data any) uintptr {
	switch v := reflect.ValueOf(data); v.Kind() {
	case reflect.Slice:
		if v.Len() == 0 {
			panic("dataid: cannot track an empty slice (no address identity)")
		}
		return v.Pointer()
	case reflect.Ptr:
		if v.IsNil() {
			panic("dataid: cannot track a nil pointer")
		}
		return v.Pointer()
	default:
		panic(fmt.Sprintf("dataid: data argument must be a slice or pointer, got %T", data))
	}
}

// AllocLike returns an allocator producing fresh storage with the same
// shape as data, used by the renaming engine.
func AllocLike(data any) func() any {
	switch d := data.(type) {
	case []float32:
		n := len(d)
		return func() any { return make([]float32, n) }
	case []float64:
		n := len(d)
		return func() any { return make([]float64, n) }
	case []int64:
		n := len(d)
		return func() any { return make([]int64, n) }
	case []int32:
		n := len(d)
		return func() any { return make([]int32, n) }
	case []int:
		n := len(d)
		return func() any { return make([]int, n) }
	case []byte:
		n := len(d)
		return func() any { return make([]byte, n) }
	}
	v := reflect.ValueOf(data)
	switch v.Kind() {
	case reflect.Slice:
		t, n := v.Type(), v.Len()
		return func() any { return reflect.MakeSlice(t, n, n).Interface() }
	case reflect.Ptr:
		t := v.Type().Elem()
		return func() any { return reflect.New(t).Interface() }
	default:
		panic(fmt.Sprintf("dataid: cannot allocate like %T", data))
	}
}

// ByteSize returns the storage footprint of a data argument, used to
// account renamed memory against a runtime's memory limit.
func ByteSize(data any) int64 {
	switch d := data.(type) {
	case []float32:
		return int64(len(d)) * 4
	case []float64:
		return int64(len(d)) * 8
	case []int64:
		return int64(len(d)) * 8
	case []int32:
		return int64(len(d)) * 4
	case []byte:
		return int64(len(d))
	}
	v := reflect.ValueOf(data)
	switch v.Kind() {
	case reflect.Slice:
		return int64(v.Len()) * int64(v.Type().Elem().Size())
	case reflect.Ptr:
		return int64(v.Type().Elem().Size())
	default:
		return 0
	}
}

// CopyInto copies src's contents into dst; both must have the shape
// produced by AllocLike for the same exemplar.
func CopyInto(dst, src any) {
	switch d := dst.(type) {
	case []float32:
		copy(d, src.([]float32))
		return
	case []float64:
		copy(d, src.([]float64))
		return
	case []int64:
		copy(d, src.([]int64))
		return
	case []int32:
		copy(d, src.([]int32))
		return
	case []int:
		copy(d, src.([]int))
		return
	case []byte:
		copy(d, src.([]byte))
		return
	}
	dv, sv := reflect.ValueOf(dst), reflect.ValueOf(src)
	switch dv.Kind() {
	case reflect.Slice:
		reflect.Copy(dv, sv)
	case reflect.Ptr:
		dv.Elem().Set(sv.Elem())
	default:
		panic(fmt.Sprintf("dataid: cannot copy %T", dst))
	}
}
