package dataid

import (
	"testing"
	"testing/quick"
)

func TestKeyIdentity(t *testing.T) {
	a := make([]float32, 8)
	b := make([]float32, 8)
	if Key(a) == Key(b) {
		t.Fatal("distinct slices share a key")
	}
	if Key(a) != Key(a[:4]) {
		t.Fatal("a slice and its prefix must share the base-address key")
	}
	p := new(int)
	q := new(int)
	if Key(p) == Key(q) {
		t.Fatal("distinct pointers share a key")
	}
	if Key(p) != Key(p) {
		t.Fatal("pointer key unstable")
	}
}

func TestKeyPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty slice": func() { Key([]float32{}) },
		"nil pointer": func() { Key((*int)(nil)) },
		"non-data":    func() { Key(42) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: Key did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestAllocCopyRoundTrip checks AllocLike + CopyInto reproduce contents
// for every fast-path type and the reflective fallbacks.
func TestAllocCopyRoundTrip(t *testing.T) {
	exemplars := []any{
		[]float32{1, 2, 3},
		[]float64{4, 5},
		[]int64{6, 7, 8, 9},
		[]int32{10},
		[]int{11, 12},
		[]byte{13, 14, 15},
		[]uint16{16, 17},            // reflective slice fallback
		&struct{ A, B int }{18, 19}, // reflective pointer fallback
	}
	for _, ex := range exemplars {
		fresh := AllocLike(ex)()
		CopyInto(fresh, ex)
		back := AllocLike(ex)()
		CopyInto(back, fresh)
		// Round-trip through two fresh instances must preserve contents;
		// compare via another copy into a string-able form is overkill —
		// rely on CopyInto symmetry by copying back onto the exemplar
		// type and checking a probe element where possible.
		switch v := back.(type) {
		case []float32:
			if v[0] != 1 || len(v) != 3 {
				t.Fatalf("float32 round trip: %v", v)
			}
		case []float64:
			if v[1] != 5 {
				t.Fatalf("float64 round trip: %v", v)
			}
		case []int64:
			if v[3] != 9 {
				t.Fatalf("int64 round trip: %v", v)
			}
		case []int32:
			if v[0] != 10 {
				t.Fatalf("int32 round trip: %v", v)
			}
		case []int:
			if v[1] != 12 {
				t.Fatalf("int round trip: %v", v)
			}
		case []byte:
			if v[2] != 15 {
				t.Fatalf("byte round trip: %v", v)
			}
		case []uint16:
			if v[1] != 17 {
				t.Fatalf("uint16 round trip: %v", v)
			}
		case *struct{ A, B int }:
			if v.A != 18 || v.B != 19 {
				t.Fatalf("pointer round trip: %+v", v)
			}
		default:
			t.Fatalf("unexpected round-trip type %T", back)
		}
	}
}

// TestAllocLikeIsFresh: allocations must never alias the exemplar.
func TestAllocLikeIsFresh(t *testing.T) {
	src := []float32{1, 2, 3}
	alloc := AllocLike(src)
	a := alloc().([]float32)
	b := alloc().([]float32)
	a[0] = 99
	if src[0] == 99 || b[0] == 99 {
		t.Fatal("AllocLike aliases storage")
	}
	if len(a) != len(src) {
		t.Fatalf("AllocLike length %d, want %d", len(a), len(src))
	}
}

func TestByteSize(t *testing.T) {
	cases := []struct {
		data any
		want int64
	}{
		{[]float32{0, 0}, 8},
		{[]float64{0}, 8},
		{[]int64{0, 0, 0}, 24},
		{[]int32{0}, 4},
		{[]byte{0, 0, 0, 0, 0}, 5},
		{[]uint16{0, 0}, 4},
		{new(int64), 8},
		{42, 0},
	}
	for _, c := range cases {
		if got := ByteSize(c.data); got != c.want {
			t.Fatalf("ByteSize(%T) = %d, want %d", c.data, got, c.want)
		}
	}
}

// TestCopyIntoQuick is the property-based check: for random []int64
// contents, AllocLike+CopyInto is the identity.
func TestCopyIntoQuick(t *testing.T) {
	property := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		dst := AllocLike(vals)().([]int64)
		CopyInto(dst, vals)
		for i := range vals {
			if dst[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
