package cssc

import (
	"fmt"
	"strings"
)

// Translate is the whole-program half of the compiler contract of §II:
// it "translates C code with the aforementioned annotations into
// standard C99 code with calls to the supporting runtime library".
//
// The input is a C source file annotated with the SMPSs pragma set.
// Beyond the task construct of §II, the shipped SMPSs compiler accepted
// program-level directives, which Translate rewrites into runtime calls:
//
//	#pragma css start            →  css_start();
//	#pragma css finish           →  css_finish();
//	#pragma css barrier          →  css_barrier();
//	#pragma css wait on(a, b)    →  css_wait_on(&a); css_wait_on(&b);
//	#pragma css mutex lock(m)    →  css_mutex_lock(&m);
//	#pragma css mutex unlock(m)  →  css_mutex_unlock(&m);
//
// A "#pragma css task" line annotates the function declaration or
// definition that follows: the pragma line is dropped (the definition
// compiles as plain C99, which is how the same source also builds
// sequentially, §I), the task is recorded, and every later *statement
// call* to it is rewritten to the runtime adapter css_submit_<name>(...).
//
// Translate performs no macro expansion and leaves all other text —
// including comments and string literals, which it skips rather than
// rewrites — byte-for-byte intact.
func Translate(src string) (string, []*Task, error) {
	var out strings.Builder
	var tasks []*Task
	taskNames := map[string]bool{}

	lines := splitFolded(src)
	expectPrototype := false
	for _, ln := range lines {
		trimmed := strings.TrimSpace(ln.text)
		if strings.HasPrefix(trimmed, "#") && strings.Contains(trimmed, "pragma") {
			rest, ok := cutPragmaCSS(trimmed)
			if !ok {
				// Not a css pragma (e.g. #pragma once): pass through.
				out.WriteString(ln.text)
				out.WriteByte('\n')
				continue
			}
			word, tail := splitWord(rest)
			switch word {
			case "task":
				task, err := parsePragma(trimmed, ln.line)
				if err != nil {
					return "", nil, err
				}
				tasks = append(tasks, task)
				expectPrototype = true
				// The pragma line is dropped; the declaration that
				// follows stays (it is the sequential fallback).
				continue
			case "start":
				out.WriteString(indentOf(ln.text) + "css_start();\n")
			case "finish":
				out.WriteString(indentOf(ln.text) + "css_finish();\n")
			case "barrier":
				out.WriteString(indentOf(ln.text) + "css_barrier();\n")
			case "wait":
				refs, err := parseWaitOn(tail, ln.line)
				if err != nil {
					return "", nil, err
				}
				for _, r := range refs {
					out.WriteString(indentOf(ln.text) + fmt.Sprintf("css_wait_on(&%s);\n", r))
				}
			case "mutex":
				op, refs, err := parseMutex(tail, ln.line)
				if err != nil {
					return "", nil, err
				}
				for _, r := range refs {
					out.WriteString(indentOf(ln.text) + fmt.Sprintf("css_mutex_%s(&%s);\n", op, r))
				}
			default:
				return "", nil, fmt.Errorf("cssc: line %d: unknown css pragma %q", ln.line, word)
			}
			continue
		}

		if expectPrototype {
			// Bind the recorded task to the function that follows.
			if name := declaredName(trimmed); name != "" {
				t := tasks[len(tasks)-1]
				bindPrototype(t, trimmed, ln.line)
				taskNames[t.Name] = true
				expectPrototype = false
			}
			out.WriteString(ln.text)
			out.WriteByte('\n')
			continue
		}

		out.WriteString(rewriteCalls(ln.text, taskNames))
		out.WriteByte('\n')
	}
	return out.String(), tasks, nil
}

// foldedLine is one logical source line with backslash continuations
// folded and its first physical line number.
type foldedLine struct {
	text string
	line int
}

// splitFolded splits src into logical lines, folding "\"-continuations
// (pragmas span lines that way, as in Fig. 7).
func splitFolded(src string) []foldedLine {
	var out []foldedLine
	phys := strings.Split(src, "\n")
	for i := 0; i < len(phys); i++ {
		line := i + 1
		text := phys[i]
		for strings.HasSuffix(strings.TrimRight(text, " \t"), "\\") && i+1 < len(phys) {
			text = strings.TrimSuffix(strings.TrimRight(text, " \t"), "\\") + " " + strings.TrimSpace(phys[i+1])
			i++
		}
		out = append(out, foldedLine{text: text, line: line})
	}
	// Drop the artifact of a trailing newline.
	if n := len(out); n > 0 && out[n-1].text == "" {
		out = out[:n-1]
	}
	return out
}

// cutPragmaCSS strips "#pragma css" from a trimmed line, reporting
// whether it was one.
func cutPragmaCSS(s string) (rest string, ok bool) {
	s = strings.TrimPrefix(s, "#")
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "pragma") {
		return "", false
	}
	s = strings.TrimSpace(strings.TrimPrefix(s, "pragma"))
	if !strings.HasPrefix(s, "css") {
		return "", false
	}
	rest = strings.TrimSpace(strings.TrimPrefix(s, "css"))
	return rest, true
}

// splitWord splits the first identifier off a string.
func splitWord(s string) (word, tail string) {
	i := 0
	for i < len(s) && isIdentRune(rune(s[i])) {
		i++
	}
	return s[:i], strings.TrimSpace(s[i:])
}

// indentOf returns the leading whitespace of a line.
func indentOf(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] != ' ' && s[i] != '\t' {
			return s[:i]
		}
	}
	return s
}

// parseWaitOn parses "on(ref, ref...)" after "wait".
func parseWaitOn(tail string, line int) ([]string, error) {
	if !strings.HasPrefix(tail, "on") {
		return nil, fmt.Errorf("cssc: line %d: expected 'on(...)' after 'wait'", line)
	}
	return parseRefList(strings.TrimSpace(strings.TrimPrefix(tail, "on")), line)
}

// parseMutex parses "lock(ref...)" or "unlock(ref...)" after "mutex".
func parseMutex(tail string, line int) (op string, refs []string, err error) {
	op, rest := splitWord(tail)
	if op != "lock" && op != "unlock" {
		return "", nil, fmt.Errorf("cssc: line %d: expected 'lock' or 'unlock' after 'mutex', got %q", line, op)
	}
	refs, err = parseRefList(rest, line)
	return op, refs, err
}

// parseRefList parses "(a, b[i], c)" into its comma-separated items,
// respecting nested parentheses and brackets.
func parseRefList(s string, line int) ([]string, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("cssc: line %d: expected parenthesized reference list, got %q", line, s)
	}
	body := s[1 : len(s)-1]
	var refs []string
	depth, start := 0, 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		case ',':
			if depth == 0 {
				refs = append(refs, strings.TrimSpace(body[start:i]))
				start = i + 1
			}
		}
	}
	last := strings.TrimSpace(body[start:])
	if last != "" {
		refs = append(refs, last)
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("cssc: line %d: empty reference list", line)
	}
	return refs, nil
}

// bindPrototype fills the recorded task from the declaration (or
// definition header) line that follows its pragma.  When the parameter
// list parses as a full prototype the task gets its Params (so the
// caller can feed Translate's tasks straight into Generate); otherwise —
// a parameter list spanning physical lines, say — only the name is
// bound, which suffices for call rewriting.
func bindPrototype(t *Task, line string, lineno int) {
	proto := line
	if i := strings.LastIndexByte(proto, ')'); i >= 0 {
		proto = proto[:i+1] + ";" // turn a definition header into a prototype
	}
	if toks, err := lex(proto); err == nil {
		tmp := &Task{Mentions: t.Mentions, HighPriority: t.HighPriority}
		p := &parser{toks: toks}
		if err := p.parsePrototype(tmp); err == nil && validate(tmp) == nil {
			tmp.Line = lineno
			*t = *tmp
			return
		}
	}
	t.Name = declaredName(line)
	t.Line = lineno
}

// declaredName extracts the function name from a C declaration or
// definition line like "void sgemm_t(float a[M][M], ...)" — the
// identifier immediately before the first '('.
func declaredName(s string) string {
	i := strings.IndexByte(s, '(')
	if i < 0 {
		return ""
	}
	end := i
	for end > 0 && s[end-1] == ' ' {
		end--
	}
	start := end
	for start > 0 && isIdentRune(rune(s[start-1])) {
		start--
	}
	if start == end {
		return ""
	}
	return s[start:end]
}

// rewriteCalls rewrites statement calls to declared tasks —
// "name(args)" at statement position — into css_submit_name(args),
// skipping string literals, character literals and comments.
func rewriteCalls(line string, taskNames map[string]bool) string {
	if len(taskNames) == 0 {
		return line
	}
	var out strings.Builder
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == '"' || c == '\'':
			// Copy the literal verbatim.
			quote := c
			out.WriteByte(c)
			i++
			for i < len(line) {
				out.WriteByte(line[i])
				if line[i] == '\\' && i+1 < len(line) {
					i++
					out.WriteByte(line[i])
					i++
					continue
				}
				if line[i] == quote {
					i++
					break
				}
				i++
			}
		case c == '/' && i+1 < len(line) && line[i+1] == '/':
			out.WriteString(line[i:])
			return out.String()
		case isIdentRune(rune(c)) && !isDigit(c):
			start := i
			for i < len(line) && isIdentRune(rune(line[i])) {
				i++
			}
			word := line[start:i]
			j := i
			for j < len(line) && (line[j] == ' ' || line[j] == '\t') {
				j++
			}
			if taskNames[word] && j < len(line) && line[j] == '(' && !precededByMember(line, start) {
				out.WriteString("css_submit_" + word)
			} else {
				out.WriteString(word)
			}
		default:
			out.WriteByte(c)
			i++
		}
	}
	return out.String()
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// precededByMember reports whether the identifier at start must not be
// rewritten: a struct member (a.name / a->name), or a declaration — the
// name is preceded by a type identifier or '*', as in "void sgemm_t(".
// Statement calls are preceded by ';', braces, ')' or start of line.
func precededByMember(line string, start int) bool {
	for k := start - 1; k >= 0; k-- {
		c := line[k]
		switch {
		case c == ' ' || c == '\t':
			continue
		case c == '.' || c == '>' || c == '*' || isIdentRune(rune(c)):
			return true
		default:
			return false
		}
	}
	return false
}
