package cssc

import (
	"fmt"
	"strings"
	"unicode"
)

// parsePragma parses the folded text of one "#pragma css task" line into
// a Task skeleton holding the clause information (the prototype is
// parsed separately).
//
// Grammar (paper §II and §V.A):
//
//	#pragma css task [clause [clause] ...]
//	clause     := input(refs) | output(refs) | inout(refs) | highpriority
//	refs       := ref [, ref]...
//	ref        := identifier dim* region*
//	dim        := '[' expr ']'
//	region     := '{' '}' | '{' expr '..' expr '}' | '{' expr ':' expr '}'
func parsePragma(text string, line int) (*Task, error) {
	s := &pragmaScanner{text: text, line: line}
	for _, kw := range []string{"#", "pragma", "css", "task"} {
		got := s.word()
		if got != kw {
			return nil, fmt.Errorf("cssc: line %d: expected %q in pragma, got %q", line, kw, got)
		}
	}
	task := &Task{}
	for {
		kw := s.word()
		if kw == "" {
			break
		}
		switch kw {
		case "highpriority":
			task.HighPriority = true
		case "input", "output", "inout":
			mode := map[string]Mode{"input": ModeIn, "output": ModeOut, "inout": ModeInOut}[kw]
			if err := s.expect('('); err != nil {
				return nil, err
			}
			for {
				m, err := s.paramRef(mode)
				if err != nil {
					return nil, err
				}
				task.Mentions = append(task.Mentions, m)
				c := s.punct()
				if c == ')' {
					break
				}
				if c != ',' {
					return nil, fmt.Errorf("cssc: line %d: expected , or ) in %s clause", line, kw)
				}
			}
		default:
			return nil, fmt.Errorf("cssc: line %d: unknown task clause %q", line, kw)
		}
	}
	if rest := strings.TrimSpace(s.text[s.pos:]); rest != "" {
		return nil, fmt.Errorf("cssc: line %d: trailing pragma text %q", line, rest)
	}
	return task, nil
}

// pragmaScanner is a tiny cursor over pragma text.
type pragmaScanner struct {
	text string
	pos  int
	line int
}

func (s *pragmaScanner) skipSpace() {
	for s.pos < len(s.text) && unicode.IsSpace(rune(s.text[s.pos])) {
		s.pos++
	}
}

// word consumes an identifier or a single '#' and returns it ("" at end).
func (s *pragmaScanner) word() string {
	s.skipSpace()
	if s.pos >= len(s.text) {
		return ""
	}
	if s.text[s.pos] == '#' {
		s.pos++
		return "#"
	}
	start := s.pos
	for s.pos < len(s.text) && isIdentRune(rune(s.text[s.pos])) {
		s.pos++
	}
	return s.text[start:s.pos]
}

// punct consumes one non-space character (0 at end).
func (s *pragmaScanner) punct() byte {
	s.skipSpace()
	if s.pos >= len(s.text) {
		return 0
	}
	c := s.text[s.pos]
	s.pos++
	return c
}

func (s *pragmaScanner) expect(c byte) error {
	if got := s.punct(); got != c {
		return fmt.Errorf("cssc: line %d: expected %q in pragma, got %q", s.line, string(c), string(got))
	}
	return nil
}

// peekPunct returns the next non-space character without consuming it.
func (s *pragmaScanner) peekPunct() byte {
	s.skipSpace()
	if s.pos >= len(s.text) {
		return 0
	}
	return s.text[s.pos]
}

// paramRef parses "identifier [expr]* {region}*".
func (s *pragmaScanner) paramRef(mode Mode) (Mention, error) {
	name := s.word()
	if name == "" {
		return Mention{}, fmt.Errorf("cssc: line %d: expected parameter name in clause", s.line)
	}
	m := Mention{Param: name, Mode: mode, Line: s.line}
	for s.peekPunct() == '[' {
		s.pos++
		expr, err := s.balancedUntil(']')
		if err != nil {
			return m, err
		}
		m.Dims = append(m.Dims, strings.TrimSpace(expr))
	}
	for s.peekPunct() == '{' {
		s.pos++
		dim, err := s.regionDim()
		if err != nil {
			return m, err
		}
		m.Region = append(m.Region, dim)
	}
	return m, nil
}

// regionDim parses the contents of one region specifier after '{'.
func (s *pragmaScanner) regionDim() (RegionDim, error) {
	body, err := s.balancedUntil('}')
	if err != nil {
		return RegionDim{}, err
	}
	body = strings.TrimSpace(body)
	if body == "" {
		return RegionDim{Kind: RegionFull}, nil
	}
	if i := strings.Index(body, ".."); i >= 0 {
		lo := strings.TrimSpace(body[:i])
		hi := strings.TrimSpace(body[i+2:])
		if lo == "" || hi == "" {
			return RegionDim{}, fmt.Errorf("cssc: line %d: malformed region range %q", s.line, body)
		}
		return RegionDim{Kind: RegionRange, A: lo, B: hi}, nil
	}
	if i := strings.IndexByte(body, ':'); i >= 0 {
		lo := strings.TrimSpace(body[:i])
		n := strings.TrimSpace(body[i+1:])
		if lo == "" || n == "" {
			return RegionDim{}, fmt.Errorf("cssc: line %d: malformed region span %q", s.line, body)
		}
		return RegionDim{Kind: RegionSpan, A: lo, B: n}, nil
	}
	return RegionDim{}, fmt.Errorf("cssc: line %d: malformed region specifier {%s}", s.line, body)
}

// balancedUntil collects text until the closing delimiter, respecting
// nested parentheses and brackets (region bounds are C99 expressions,
// §II).
func (s *pragmaScanner) balancedUntil(closer byte) (string, error) {
	depth := 0
	start := s.pos
	for s.pos < len(s.text) {
		c := s.text[s.pos]
		switch c {
		case '(', '[':
			depth++
		case ')', ']':
			if depth == 0 && c == closer {
				out := s.text[start:s.pos]
				s.pos++
				return out, nil
			}
			depth--
		case '}':
			if depth == 0 && c == closer {
				out := s.text[start:s.pos]
				s.pos++
				return out, nil
			}
		}
		s.pos++
	}
	return "", fmt.Errorf("cssc: line %d: unterminated %q in pragma", s.line, string(closer))
}
