package cssc

// Golden tests for the generator's two emission targets.  The source
// golden files pin the exact generated code; the compile-and-run test
// feeds the Context-target output through the real Go toolchain against
// this repository and executes it, so "the generated multi-tenant code
// compiles and runs" is checked end to end, not by string matching.

import (
	"bytes"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

func goldenTasks(t *testing.T) []*Task {
	t.Helper()
	src, err := os.ReadFile("testdata/golden.css")
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	return tasks
}

func TestGoldenGenerate(t *testing.T) {
	tasks := goldenTasks(t)
	for _, tc := range []struct {
		name   string
		golden string
		opts   Options
	}{
		{"runtime", "testdata/golden_runtime.go.golden", Options{Package: "main"}},
		{"context", "testdata/golden_context.go.golden", Options{Package: "main", Contexts: true}},
	} {
		out, err := Generate(tasks, tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if *update {
			if err := os.WriteFile(tc.golden, out, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(tc.golden)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to create)", tc.name, err)
		}
		if !bytes.Equal(out, want) {
			t.Errorf("%s: generated code differs from %s (run with -update to regenerate):\n%s",
				tc.name, tc.golden, out)
		}
	}
}

// TestGoldenContextCompileAndRun builds a throwaway module around the
// Context-target output plus a fixture driver and executes it with the
// real toolchain: the generated wrappers must submit through a shared
// pool's context and produce the program's exact output.
func TestGoldenContextCompileAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs a generated program")
	}
	out, err := Generate(goldenTasks(t), Options{Package: "main", Contexts: true})
	if err != nil {
		t.Fatal(err)
	}
	repoRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	driver, err := os.ReadFile("testdata/golden_driver.txt")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	// The module path sits under "repro" so the generated code may
	// import repro/internal/core (the internal-package visibility rule
	// is path-prefix based), while the replace directive points the
	// repro dependency at this checkout — fully offline.
	gomod := "module repro/csscgolden\n\ngo 1.24\n\nrequire repro v0.0.0\n\nreplace repro => " + repoRoot + "\n"
	for name, content := range map[string][]byte{
		"go.mod":       []byte(gomod),
		"tasks_gen.go": out,
		"main.go":      driver,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), content, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cmd := exec.Command("go", "run", ".")
	cmd.Dir = dir
	got, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run failed: %v\n%s", err, got)
	}
	want := "[13 26 39 52]\n[1 1 2 2 2 2 1 1]\n"
	if string(got) != want {
		t.Fatalf("generated program output = %q, want %q", got, want)
	}
}
