// Package cssc implements the front-end of the SMPSs source-to-source
// compiler: a parser for the paper's task annotation language (§II and
// §V.A) and a Go code generator targeting the core runtime.
//
// The 2008 toolchain "translates C code with the aforementioned
// annotations into standard C99 code with calls to the supporting
// runtime library" (§II).  This reproduction consumes task declaration
// files — the pragma-annotated prototypes of Fig. 2 and Fig. 7 — and
// emits Go task definitions plus typed submission wrappers, which is the
// same contract expressed against a Go host program:
//
//	#pragma css task input(a, b) inout(c)
//	void sgemm_t(float a[M][M], float b[M][M], float c[M][M]);
//
// becomes a core.TaskDef named "sgemm_t", a typed implementation hook,
// and a SubmitSgemmT(rt, a, b, c) wrapper binding In/In/InOut arguments.
package cssc

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct
	tokPragma // a full "#pragma ..." line (continuations folded)
)

// token is one lexical element with its source line for diagnostics.
type token struct {
	kind tokKind
	text string
	line int
}

// lexer splits a task declaration file into tokens.  Pragma lines are
// delivered as single tokens; backslash continuations are folded.
type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// lex tokenizes src.  It returns an error for unterminated comments.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			l.lexPragmaLine()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLineComment()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			if err := l.skipBlockComment(); err != nil {
				return nil, err
			}
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			l.lexNumber()
		default:
			l.toks = append(l.toks, token{kind: tokPunct, text: string(c), line: l.line})
			l.pos++
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, line: l.line})
	return l.toks, nil
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentRune(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }

// lexPragmaLine consumes a full preprocessor line, folding backslash
// continuations, and emits it as one tokPragma token.
func (l *lexer) lexPragmaLine() {
	start := l.line
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\\' && l.pos+1 < len(l.src) && (l.src[l.pos+1] == '\n' || (l.src[l.pos+1] == '\r' && l.pos+2 < len(l.src) && l.src[l.pos+2] == '\n')) {
			// Continuation: swallow the backslash and newline.
			l.pos++
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			l.pos++
			l.line++
			b.WriteByte(' ')
			continue
		}
		if c == '\n' {
			break
		}
		b.WriteByte(c)
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokPragma, text: stripComments(b.String()), line: start})
}

// stripComments removes // and single-line /* */ comments from a pragma
// line (multi-line block comments cannot occur: the pragma ends at the
// newline).
func stripComments(s string) string {
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[:i]
	}
	for {
		i := strings.Index(s, "/*")
		if i < 0 {
			return s
		}
		j := strings.Index(s[i+2:], "*/")
		if j < 0 {
			return s[:i]
		}
		s = s[:i] + " " + s[i+2+j+2:]
	}
}

func (l *lexer) skipLineComment() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}

func (l *lexer) skipBlockComment() error {
	start := l.line
	l.pos += 2
	for l.pos+1 < len(l.src) {
		if l.src[l.pos] == '\n' {
			l.line++
		}
		if l.src[l.pos] == '*' && l.src[l.pos+1] == '/' {
			l.pos += 2
			return nil
		}
		l.pos++
	}
	return fmt.Errorf("cssc: line %d: unterminated block comment", start)
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentRune(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], line: l.line})
}

func (l *lexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) && (isIdentRune(rune(l.src[l.pos])) || l.src[l.pos] == '.') {
		// Accept suffixed and hex literals loosely; validation is not
		// the lexer's job.
		if l.src[l.pos] == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '.' {
			break // ".." is the region range operator
		}
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], line: l.line})
}
