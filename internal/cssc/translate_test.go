package cssc

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestTranslateDirectives checks every program-level pragma rewrites to
// its runtime call.
func TestTranslateDirectives(t *testing.T) {
	src := `int main() {
	#pragma css start
	work();
	#pragma css barrier
	#pragma css wait on(x, y[3])
	#pragma css mutex lock(m)
	#pragma css mutex unlock(m)
	#pragma css finish
	return 0;
}
`
	out, tasks, err := Translate(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 0 {
		t.Fatalf("expected no tasks, got %d", len(tasks))
	}
	for _, want := range []string{
		"css_start();",
		"css_barrier();",
		"css_wait_on(&x);",
		"css_wait_on(&y[3]);",
		"css_mutex_lock(&m);",
		"css_mutex_unlock(&m);",
		"css_finish();",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "#pragma css") {
		t.Fatalf("a css pragma survived translation:\n%s", out)
	}
	if !strings.Contains(out, "\twork();") {
		t.Fatalf("plain statement was disturbed:\n%s", out)
	}
}

// TestTranslateTaskCalls checks the Fig. 1 pattern: the pragma line is
// dropped, the prototype stays (sequential fallback), and statement
// calls become css_submit_ adapters.
func TestTranslateTaskCalls(t *testing.T) {
	src := `#pragma css task input(a, b) inout(c)
void sgemm_t(float a[M][M], float b[M][M], float c[M][M]);

void mm(float ***A, float ***B, float ***C) {
	for (int i = 0; i < N; i++)
		for (int j = 0; j < N; j++)
			for (int k = 0; k < N; k++)
				sgemm_t(A[i][k], B[k][j], C[i][j]);
}
`
	out, tasks, err := Translate(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 1 || tasks[0].Name != "sgemm_t" {
		t.Fatalf("task not recorded: %+v", tasks)
	}
	if !strings.Contains(out, "void sgemm_t(float a[M][M]") {
		t.Fatalf("prototype was disturbed:\n%s", out)
	}
	if !strings.Contains(out, "css_submit_sgemm_t(A[i][k], B[k][j], C[i][j]);") {
		t.Fatalf("task call not rewritten:\n%s", out)
	}
	if strings.Contains(out, "#pragma") {
		t.Fatalf("pragma line survived:\n%s", out)
	}
}

// TestTranslateDefinitionNotRewritten: a later *definition* of the task
// (type identifier before the name) must stay a definition.
func TestTranslateDefinitionNotRewritten(t *testing.T) {
	src := `#pragma css task inout(a)
void spotrf_t(float a[M][M]);

void spotrf_t(float a[M][M]) {
	potrf(a);
}
void driver() {
	spotrf_t(block);
}
`
	out, _, err := Translate(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "void spotrf_t(float a[M][M]) {") {
		t.Fatalf("definition was rewritten:\n%s", out)
	}
	if !strings.Contains(out, "css_submit_spotrf_t(block);") {
		t.Fatalf("call was not rewritten:\n%s", out)
	}
}

// TestTranslateSkipsLiteralsAndComments: task names inside strings and
// line comments must not be rewritten.
func TestTranslateSkipsLiteralsAndComments(t *testing.T) {
	src := `#pragma css task inout(a)
void f_t(float a[4]);

void g() {
	printf("calling f_t(x) now");
	f_t(x); // f_t(x) does the work
}
`
	out, _, err := Translate(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `printf("calling f_t(x) now");`) {
		t.Fatalf("string literal was rewritten:\n%s", out)
	}
	if !strings.Contains(out, "css_submit_f_t(x); // f_t(x) does the work") {
		t.Fatalf("call or trailing comment wrong:\n%s", out)
	}
}

// TestTranslateFoldedPragma: backslash-continued pragmas (Fig. 7 style)
// fold into one logical line.
func TestTranslateFoldedPragma(t *testing.T) {
	src := `#pragma css task input(data{i1..j1}, data{i2..j2}, i1, j1, i2, j2) \
	output(dest{i1..j2})
void seqmerge(ELM data[N], long i1, long j1, long i2, long j2, ELM dest[N]);
`
	_, tasks, err := Translate(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 1 || tasks[0].Name != "seqmerge" {
		t.Fatalf("folded pragma not parsed: %+v", tasks)
	}
	var regions int
	for _, m := range tasks[0].Mentions {
		if m.Region != nil {
			regions++
		}
	}
	if regions != 3 {
		t.Fatalf("expected 3 region mentions, got %d", regions)
	}
}

// TestTranslateUnknownPragma rejects misspelled css directives.
func TestTranslateUnknownPragma(t *testing.T) {
	if _, _, err := Translate("#pragma css berrier\n"); err == nil {
		t.Fatal("unknown css pragma accepted")
	}
}

// TestTranslateNonCSSPragmaPassesThrough: other pragmas are not ours.
func TestTranslateNonCSSPragmaPassesThrough(t *testing.T) {
	src := "#pragma once\n#pragma omp parallel\n"
	out, _, err := Translate(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "#pragma once") || !strings.Contains(out, "#pragma omp parallel") {
		t.Fatalf("foreign pragma disturbed:\n%s", out)
	}
}

// TestTranslateWaitOnErrors: malformed wait clauses must be rejected.
func TestTranslateWaitOnErrors(t *testing.T) {
	for _, src := range []string{
		"#pragma css wait\n",
		"#pragma css wait on\n",
		"#pragma css wait on()\n",
		"#pragma css mutex grab(m)\n",
	} {
		if _, _, err := Translate(src); err == nil {
			t.Fatalf("malformed pragma accepted: %q", src)
		}
	}
}

// TestTranslateHighPriorityTask: clause info is preserved on recorded
// tasks.
func TestTranslateHighPriorityTask(t *testing.T) {
	src := `#pragma css task highpriority inout(a)
void diag_t(float a[8]);
`
	_, tasks, err := Translate(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 1 || !tasks[0].HighPriority {
		t.Fatalf("highpriority lost: %+v", tasks)
	}
}

// TestTranslateNeverPanics is the robustness property: arbitrary input
// must produce output or an error, never a panic.
func TestTranslateNeverPanics(t *testing.T) {
	property := func(raw []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _, _ = Translate(string(raw))
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// Targeted hostile inputs beyond what quick tends to generate.
	for _, src := range []string{
		"#pragma css task input(",
		"#pragma css task input(a{1..})\nvoid f(float a[4]);",
		"#pragma css wait on(((((",
		"#pragma css task\n",
		"#pragma css task inout(a)\n", // pragma with no declaration after
		"\\\n\\\n\\",
		"#pragma css mutex lock",
		"f_t(\"unterminated",
	} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Translate panicked on %q: %v", src, r)
				}
			}()
			_, _, _ = Translate(src)
		}()
	}
}

// TestTranslateFeedsGenerate: the whole C-program path — Translate
// parses the prototypes well enough that its tasks compile through the
// Go code generator, completing the §II pipeline.
func TestTranslateFeedsGenerate(t *testing.T) {
	src := `#pragma css task input(a, b) inout(c)
void sgemm_t(float a[M][M], float b[M][M], float c[M][M]);

#pragma css task highpriority inout(a)
void spotrf_t(float a[M][M]) {
	potrf(a);
}

void driver() {
	sgemm_t(x, y, z);
	spotrf_t(z);
	#pragma css barrier
}
`
	_, tasks, err := Translate(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 {
		t.Fatalf("got %d tasks", len(tasks))
	}
	for _, task := range tasks {
		if len(task.Params) != len(task.MentionsOf("a"))+len(task.MentionsOf("b"))+len(task.MentionsOf("c")) {
			t.Fatalf("task %s: params %d not bound from prototype", task.Name, len(task.Params))
		}
	}
	code, err := Generate(tasks, Options{Package: "gen"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SubmitSgemmT", "SubmitSpotrfT", "NewHighPriorityTaskDef"} {
		if !strings.Contains(string(code), want) {
			t.Fatalf("generated code missing %s:\n%s", want, code)
		}
	}
}
