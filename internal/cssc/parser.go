package cssc

import (
	"fmt"
	"strings"
)

// Mode is the directionality a clause assigns to a parameter mention.
type Mode int

// Directionality clauses of the task construct (paper §II).
const (
	ModeIn Mode = iota
	ModeOut
	ModeInOut
)

// String returns the clause keyword.
func (m Mode) String() string {
	switch m {
	case ModeIn:
		return "input"
	case ModeOut:
		return "output"
	}
	return "inout"
}

// RegionDimKind distinguishes the three region specifier forms of §V.A.
type RegionDimKind int

// Region specifier forms: {l..u}, {l:L}, {}.
const (
	RegionRange RegionDimKind = iota // {l..u}
	RegionSpan                       // {l:L}
	RegionFull                       // {}
)

// RegionDim is one per-dimension region specifier.
type RegionDim struct {
	Kind RegionDimKind
	// A and B hold the C expressions: lower/upper for RegionRange,
	// lower/length for RegionSpan, empty for RegionFull.
	A, B string
}

// Mention is one appearance of a parameter inside a directionality
// clause, optionally carrying dimension and region specifiers.  A single
// parameter may appear several times to declare several accessed regions
// (paper §V.A).
type Mention struct {
	Param string
	Mode  Mode
	// Dims are the optional dimension-size expressions ("identifier
	// [expr][expr]...", §II), needed in C when the declaration omits
	// sizes; Go slices carry their length, so they are recorded but not
	// used by the generator.
	Dims []string
	// Region holds the region specifiers, nil when the whole parameter
	// is accessed.
	Region []RegionDim
	Line   int
}

// Param is one parameter of the task prototype.
type Param struct {
	Name string
	// CType is the base type name ("float", "long", "ELM", "void").
	CType string
	// Stars is the pointer depth.
	Stars int
	// ArrayDims holds the declared array dimension expressions.
	ArrayDims []string
	Line      int
}

// IsArray reports whether the parameter is array-shaped (declared
// dimensions or non-void pointer).
func (p Param) IsArray() bool {
	return len(p.ArrayDims) > 0 || (p.Stars > 0 && p.CType != "void")
}

// IsOpaque reports whether the parameter is a void* opaque pointer,
// which passes through the runtime unaltered (paper §II).
func (p Param) IsOpaque() bool { return p.Stars > 0 && p.CType == "void" }

// Task is one parsed "#pragma css task" construct with its prototype.
type Task struct {
	Name         string
	HighPriority bool
	Params       []Param
	Mentions     []Mention
	Line         int
}

// MentionsOf returns the mentions of one parameter in clause order.
func (t *Task) MentionsOf(name string) []Mention {
	var out []Mention
	for _, m := range t.Mentions {
		if m.Param == name {
			out = append(out, m)
		}
	}
	return out
}

// Parse reads a task declaration file: a sequence of "#pragma css task"
// constructs each followed by a C function prototype, as in Fig. 2 and
// Fig. 7 of the paper.  Non-task pragmas and stray tokens between tasks
// are rejected so mistakes surface early.
func Parse(src string) ([]*Task, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var tasks []*Task
	for !p.at(tokEOF) {
		t := p.peek()
		if t.kind != tokPragma {
			return nil, fmt.Errorf("cssc: line %d: expected #pragma css task, got %q", t.line, t.text)
		}
		p.next()
		task, err := parsePragma(t.text, t.line)
		if err != nil {
			return nil, err
		}
		if err := p.parsePrototype(task); err != nil {
			return nil, err
		}
		if err := validate(task); err != nil {
			return nil, err
		}
		tasks = append(tasks, task)
	}
	return tasks, nil
}

// parser walks the top-level token stream (prototypes between pragmas).
type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k tokKind) bool {
	return p.toks[p.pos].kind == k
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != s {
		return fmt.Errorf("cssc: line %d: expected %q, got %q", t.line, s, t.text)
	}
	return nil
}

// parsePrototype parses "void name(type param[dims], ...);".
func (p *parser) parsePrototype(task *Task) error {
	ret := p.next()
	if ret.kind != tokIdent || ret.text != "void" {
		return fmt.Errorf("cssc: line %d: task functions must return void, got %q", ret.line, ret.text)
	}
	name := p.next()
	if name.kind != tokIdent {
		return fmt.Errorf("cssc: line %d: expected task name, got %q", name.line, name.text)
	}
	task.Name = name.text
	task.Line = name.line
	if err := p.expectPunct("("); err != nil {
		return err
	}
	if p.peek().kind == tokPunct && p.peek().text == ")" {
		p.next()
	} else {
		for {
			prm, err := p.parseParam()
			if err != nil {
				return err
			}
			task.Params = append(task.Params, prm)
			t := p.next()
			if t.kind == tokPunct && t.text == ")" {
				break
			}
			if t.kind != tokPunct || t.text != "," {
				return fmt.Errorf("cssc: line %d: expected , or ) in parameter list, got %q", t.line, t.text)
			}
		}
	}
	return p.expectPunct(";")
}

// parseParam parses "qualifiers type *... name [expr]...".
func (p *parser) parseParam() (Param, error) {
	var idents []token
	var prm Param
	for p.peek().kind == tokIdent {
		idents = append(idents, p.next())
	}
	for p.peek().kind == tokPunct && p.peek().text == "*" {
		prm.Stars++
		p.next()
	}
	// "type *name" and "const type name": the last identifier before
	// stars-or-end is the name unless stars were consumed after it.
	if prm.Stars > 0 {
		// Name follows the stars.
		t := p.next()
		if t.kind != tokIdent {
			return prm, fmt.Errorf("cssc: line %d: expected parameter name after '*', got %q", t.line, t.text)
		}
		idents = append(idents, t)
	}
	if len(idents) < 2 {
		if len(idents) == 1 {
			return prm, fmt.Errorf("cssc: line %d: parameter %q is missing a type or a name", idents[0].line, idents[0].text)
		}
		return prm, fmt.Errorf("cssc: line %d: empty parameter", p.peek().line)
	}
	prm.Name = idents[len(idents)-1].text
	prm.Line = idents[len(idents)-1].line
	// Drop qualifiers; the base type is the last identifier before the
	// name.
	prm.CType = idents[len(idents)-2].text
	for p.peek().kind == tokPunct && p.peek().text == "[" {
		p.next()
		expr, err := p.captureUntilBracket()
		if err != nil {
			return prm, err
		}
		prm.ArrayDims = append(prm.ArrayDims, expr)
	}
	return prm, nil
}

// captureUntilBracket collects raw expression text up to the matching
// "]".
func (p *parser) captureUntilBracket() (string, error) {
	depth := 0
	var parts []string
	for {
		t := p.next()
		if t.kind == tokEOF {
			return "", fmt.Errorf("cssc: line %d: unterminated [", t.line)
		}
		if t.kind == tokPunct {
			switch t.text {
			case "[", "(":
				depth++
			case ")":
				depth--
			case "]":
				if depth == 0 {
					return strings.Join(parts, ""), nil
				}
				depth--
			}
		}
		parts = append(parts, t.text)
	}
}

func validate(task *Task) error {
	byName := map[string]Param{}
	for _, prm := range task.Params {
		byName[prm.Name] = prm
	}
	for _, m := range task.Mentions {
		prm, ok := byName[m.Param]
		if !ok {
			return fmt.Errorf("cssc: line %d: clause names unknown parameter %q of task %s", m.Line, m.Param, task.Name)
		}
		if prm.IsOpaque() {
			return fmt.Errorf("cssc: line %d: parameter %q of task %s is void* (opaque) and cannot appear in a directionality clause", m.Line, m.Param, task.Name)
		}
		if !prm.IsArray() && m.Mode != ModeIn {
			return fmt.Errorf("cssc: line %d: scalar parameter %q of task %s is passed by value and can only be input", m.Line, m.Param, task.Name)
		}
		if !prm.IsArray() && m.Region != nil {
			return fmt.Errorf("cssc: line %d: scalar parameter %q of task %s cannot have region specifiers", m.Line, m.Param, task.Name)
		}
	}
	for _, prm := range task.Params {
		if prm.IsArray() && len(task.MentionsOf(prm.Name)) == 0 {
			return fmt.Errorf("cssc: line %d: array parameter %q of task %s appears in no directionality clause", prm.Line, prm.Name, task.Name)
		}
	}
	return nil
}
