package cssc

import (
	"strings"
	"testing"
)

// fig2 is the exact task set of paper Fig. 2.
const fig2 = `
#pragma css task input(a, b) inout(c)
void sgemm_t(float a[M][M], float b[M][M], float c[M][M]);

#pragma css task inout(a)
void spotrf_t(float a[M][M]);

#pragma css task input(a) inout(b)
void strsm_t(float a[M][M], float b[M][M]);

#pragma css task input(a) inout(b)
void ssyrk_t(float a[M][M], float b[M][M]);
`

// fig7 is the task set of paper Fig. 7 (mergesort with array regions),
// including the backslash continuation.
const fig7 = `
#pragma css task input(data{i1..j1}, data{i2..j2}, i1, j1, i2, j2) \
	output(dest{i1..j2})
void seqmerge(ELM data[N], long i1, long j1, long i2, long j2, ELM dest[N]);

#pragma css task inout(data{i..j}) input(i, j)
void seqquick(ELM data[N], long i, long j);
`

// fig10 is the on-demand blocking task of paper Fig. 10 with its opaque
// flat-matrix parameter.
const fig10 = `
#pragma css task input(i, j) output(a)
void get_block(int i, int j, void *A, float a[M][M]);
`

func TestParseFig2(t *testing.T) {
	tasks, err := Parse(fig2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 4 {
		t.Fatalf("parsed %d tasks, want 4", len(tasks))
	}
	sgemm := tasks[0]
	if sgemm.Name != "sgemm_t" || len(sgemm.Params) != 3 {
		t.Fatalf("sgemm_t parsed wrong: %+v", sgemm)
	}
	if len(sgemm.MentionsOf("a")) != 1 || sgemm.MentionsOf("a")[0].Mode != ModeIn {
		t.Fatalf("a must be input")
	}
	if sgemm.MentionsOf("c")[0].Mode != ModeInOut {
		t.Fatalf("c must be inout")
	}
	for _, p := range sgemm.Params {
		if !p.IsArray() || len(p.ArrayDims) != 2 || p.ArrayDims[0] != "M" {
			t.Fatalf("param %q dims parsed wrong: %+v", p.Name, p)
		}
	}
	if tasks[1].Name != "spotrf_t" || tasks[1].MentionsOf("a")[0].Mode != ModeInOut {
		t.Fatalf("spotrf_t parsed wrong")
	}
}

func TestParseFig7WithContinuationAndRegions(t *testing.T) {
	tasks, err := Parse(fig7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 {
		t.Fatalf("parsed %d tasks, want 2", len(tasks))
	}
	sm := tasks[0]
	if sm.Name != "seqmerge" {
		t.Fatalf("name = %q", sm.Name)
	}
	dm := sm.MentionsOf("data")
	if len(dm) != 2 {
		t.Fatalf("data must be mentioned twice (two regions), got %d", len(dm))
	}
	r := dm[0].Region
	if len(r) != 1 || r[0].Kind != RegionRange || r[0].A != "i1" || r[0].B != "j1" {
		t.Fatalf("first data region = %+v", r)
	}
	if sm.MentionsOf("dest")[0].Mode != ModeOut {
		t.Fatalf("dest must be output")
	}
	if len(sm.MentionsOf("i1")) != 1 {
		t.Fatalf("scalar i1 must be mentioned")
	}
	sq := tasks[1]
	if sq.MentionsOf("data")[0].Mode != ModeInOut || sq.MentionsOf("data")[0].Region[0].Kind != RegionRange {
		t.Fatalf("seqquick data clause parsed wrong: %+v", sq.MentionsOf("data"))
	}
}

func TestParseOpaquePointer(t *testing.T) {
	tasks, err := Parse(fig10)
	if err != nil {
		t.Fatal(err)
	}
	gb := tasks[0]
	var av *Param
	for i := range gb.Params {
		if gb.Params[i].Name == "A" {
			av = &gb.Params[i]
		}
	}
	if av == nil || !av.IsOpaque() {
		t.Fatalf("A must parse as an opaque void*: %+v", gb.Params)
	}
}

func TestParseSpanAndFullRegions(t *testing.T) {
	src := `
#pragma css task input(v{off:len}) output(w{})
void f(float v[N], float w[N], int off, int len);
`
	tasks, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	vr := tasks[0].MentionsOf("v")[0].Region
	if vr[0].Kind != RegionSpan || vr[0].A != "off" || vr[0].B != "len" {
		t.Fatalf("span region parsed wrong: %+v", vr)
	}
	wr := tasks[0].MentionsOf("w")[0].Region
	if wr[0].Kind != RegionFull {
		t.Fatalf("full region parsed wrong: %+v", wr)
	}
}

func TestParseHighPriority(t *testing.T) {
	src := `
#pragma css task highpriority inout(a)
void spotrf_t(float a[M][M]);
`
	tasks, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !tasks[0].HighPriority {
		t.Fatalf("highpriority clause not parsed")
	}
}

func TestParseMultiDimRegion(t *testing.T) {
	src := `
#pragma css task inout(a{r0..r1}{c0..c1})
void f(float a[N][N], int r0, int r1, int c0, int c1);
`
	tasks, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r := tasks[0].MentionsOf("a")[0].Region
	if len(r) != 2 || r[1].A != "c0" {
		t.Fatalf("2-D region parsed wrong: %+v", r)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown clause": `
#pragma css task sideways(a)
void f(float a[M]);`,
		"unknown parameter in clause": `
#pragma css task input(zz)
void f(float a[M]);`,
		"opaque in clause": `
#pragma css task input(p)
void f(void *p);`,
		"scalar as output": `
#pragma css task output(i)
void f(int i);`,
		"unannotated array": `
#pragma css task
void f(float a[M]);`,
		"non-void return": `
#pragma css task input(a)
int f(float a[M]);`,
		"missing semicolon": `
#pragma css task input(a)
void f(float a[M])`,
		"stray tokens": `
void f(float a[M]);`,
		"scalar region": `
#pragma css task input(i{0..4})
void f(int i, float a[M]);`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestGenerateFig2(t *testing.T) {
	tasks, err := Parse(fig2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Generate(tasks, Options{Package: "tasks"})
	if err != nil {
		t.Fatal(err)
	}
	src := string(out)
	for _, want := range []string{
		"package tasks",
		`var SgemmT = core.NewTaskDef("sgemm_t"`,
		"var SgemmTImpl func(a []float32, b []float32, c []float32)",
		"func SubmitSgemmT(rt *core.Runtime, a []float32, b []float32, c []float32)",
		"core.In(a)",
		"core.In(b)",
		"core.InOut(c)",
		"SgemmTImpl(args.F32(0), args.F32(1), args.F32(2))",
		`var SpotrfT = core.NewTaskDef("spotrf_t"`,
	} {
		if !strings.Contains(src, want) {
			t.Fatalf("generated code missing %q:\n%s", want, src)
		}
	}
}

func TestGenerateFig7Regions(t *testing.T) {
	tasks, err := Parse(fig7)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Generate(tasks, Options{Package: "tasks", Typedefs: map[string]string{"ELM": "int64"}})
	if err != nil {
		t.Fatal(err)
	}
	src := string(out)
	for _, want := range []string{
		"core.InR(data, core.Interval(int64(i1), int64(j1)))",
		"core.InR(data, core.Interval(int64(i2), int64(j2)))",
		"core.OutR(dest, core.Interval(int64(i1), int64(j2)))",
		"core.InOutR(data, core.Interval(int64(i), int64(j)))",
		// data appears twice in the arg list, so dest is argument 6 and
		// scalars start at 2.
		"SeqmergeImpl(args.I64(0), args.Int64(2), args.Int64(3), args.Int64(4), args.Int64(5), args.I64(6))",
	} {
		if !strings.Contains(src, want) {
			t.Fatalf("generated code missing %q:\n%s", want, src)
		}
	}
}

func TestGenerateOpaqueAndSpanAndHP(t *testing.T) {
	src := `
#pragma css task highpriority input(i, j) output(a{off:n})
void g(int i, long j, void *raw, float a[N], int off, int n);
`
	tasks, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Generate(tasks, Options{Package: "p"})
	if err != nil {
		t.Fatal(err)
	}
	gen := string(out)
	for _, want := range []string{
		"core.NewHighPriorityTaskDef",
		"core.Opaque(raw)",
		"core.OutR(a, core.Span(int64(off), int64(n)))",
		"raw any",
		"args.Opaque(2)",
	} {
		if !strings.Contains(gen, want) {
			t.Fatalf("generated code missing %q:\n%s", want, gen)
		}
	}
}

func TestGenerateUnknownTypeFails(t *testing.T) {
	tasks, err := Parse(`
#pragma css task input(a)
void f(quaternion a[M]);
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(tasks, Options{Package: "p"}); err == nil {
		t.Fatalf("unknown C type must fail generation")
	}
}

func TestExportName(t *testing.T) {
	cases := map[string]string{
		"sgemm_t":   "SgemmT",
		"seqquick":  "Seqquick",
		"get_block": "GetBlock",
		"a_b_c":     "ABC",
	}
	for in, want := range cases {
		if got := exportName(in); got != want {
			t.Fatalf("exportName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLexerComments(t *testing.T) {
	src := `
// line comment
#pragma css task input(a) /* trailing */
void f(float a[M]); /* block
spanning lines */
`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
	if _, err := lex("/* unterminated"); err == nil {
		t.Fatalf("unterminated comment must fail lexing")
	}
}

func TestPragmaCommentRoundTrip(t *testing.T) {
	tasks, err := Parse(fig7)
	if err != nil {
		t.Fatal(err)
	}
	c := pragmaComment(tasks[0])
	for _, want := range []string{"input(", "data{i1..j1}", "output(dest{i1..j2})"} {
		if !strings.Contains(c, want) {
			t.Fatalf("pragma comment %q missing %q", c, want)
		}
	}
}
