package cellss

import (
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
)

// Algorithm drivers expressing the paper's linear-algebra workloads under
// the CellSs model, mirroring internal/supermatrix so the ablation
// benchmarks can run identical task graphs through all three runtimes.

// Tasks is the task-definition set for one kernel provider and block size.
type Tasks struct {
	M     int
	Gemm  *TaskDef // C -= A·Bᵀ (Cholesky trailing update)
	Syrk  *TaskDef
	Trsm  *TaskDef
	Potrf *TaskDef
	MulNN *TaskDef // C += A·B (matrix multiply)
}

// NewTasks declares the task set over provider p with m×m blocks.
func NewTasks(p kernels.Provider, m int) *Tasks {
	return &Tasks{
		M: m,
		Gemm: NewTaskDef("sgemm_t", func(a *Args) {
			p.GemmNT(a.F32(0), a.F32(1), a.F32(2), m)
		}),
		Syrk: NewTaskDef("ssyrk_t", func(a *Args) {
			p.Syrk(a.F32(0), a.F32(1), m)
		}),
		Trsm: NewTaskDef("strsm_t", func(a *Args) {
			p.Trsm(a.F32(0), a.F32(1), m)
		}),
		Potrf: NewTaskDef("spotrf_t", func(a *Args) {
			if !p.Potrf(a.F32(0), m) {
				panic("cellss: block not positive definite")
			}
		}),
		MulNN: NewTaskDef("sgemm_nn_t", func(a *Args) {
			p.GemmNN(a.F32(0), a.F32(1), a.F32(2), m)
		}),
	}
}

// Cholesky submits the left-looking blocked Cholesky of Fig. 4.
func Cholesky(rt *Runtime, ts *Tasks, h *hypermatrix.Matrix) {
	n := h.N
	for j := 0; j < n; j++ {
		for k := 0; k < j; k++ {
			for i := j + 1; i < n; i++ {
				rt.Submit(ts.Gemm, In(h.Blocks[i][k]), In(h.Blocks[j][k]), InOut(h.Blocks[i][j]))
			}
		}
		for i := 0; i < j; i++ {
			rt.Submit(ts.Syrk, In(h.Blocks[j][i]), InOut(h.Blocks[j][j]))
		}
		rt.Submit(ts.Potrf, InOut(h.Blocks[j][j]))
		for i := j + 1; i < n; i++ {
			rt.Submit(ts.Trsm, In(h.Blocks[j][j]), InOut(h.Blocks[i][j]))
		}
	}
}

// Gemm submits the dense hyper-matrix multiplication of Fig. 1 (C += A·B).
func Gemm(rt *Runtime, ts *Tasks, a, b, c *hypermatrix.Matrix) {
	n := a.N
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				rt.Submit(ts.MulNN, In(a.Blocks[i][k]), In(b.Blocks[k][j]), InOut(c.Blocks[i][j]))
			}
		}
	}
}
