package cellss_test

import (
	"fmt"

	"repro/internal/cellss"
)

// The CellSs model in one screen: eager execution with renaming like
// SMPSs, but a centralized scheduler dispatching bundles from one
// queue, and a main thread that only waits at barriers (paper §VII.A).
func Example() {
	scale := cellss.NewTaskDef("scale", func(a *cellss.Args) {
		v := a.F32(0)
		for i := range v {
			v[i] *= 2
		}
	})
	x := []float32{1, 2, 3}

	rt := cellss.New(cellss.Config{Workers: 2, Bundle: 4})
	rt.Submit(scale, cellss.InOut(x))
	rt.Submit(scale, cellss.InOut(x))
	if err := rt.Close(); err != nil {
		panic(err)
	}
	fmt.Println(x)
	// Output: [4 8 12]
}
