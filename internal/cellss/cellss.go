// Package cellss models the CellSs scheduling architecture the paper
// descends from and contrasts with in §VII.A, so the architectural
// differences between the two schedulers can be measured:
//
//   - "CellSs has a centralized scheduler that pre-schedules groups of
//     tasks together" — a dedicated scheduler goroutine owns the single
//     ready list and hands each worker a *bundle* of up to Config.Bundle
//     consecutively-ready tasks (on the Cell this is what lets an SPE
//     chain the DMA transfers of related tasks).
//   - "CellSs has a unique queue and does not employ work-stealing" —
//     tasks released by a worker's completions flow back to the central
//     list, never to a per-worker deque, and idle workers wait on the
//     scheduler instead of raiding their peers.
//   - Like SMPSs, CellSs starts executing tasks as soon as they enter the
//     graph (eager execution, unlike SuperMatrix), and it renames data to
//     remove false dependencies.
//   - The main thread (the PPU in CellSs) analyzes dependencies and runs
//     the scheduler; it does not execute task bodies.  Barrier therefore
//     only waits, unlike the SMPSs main thread which turns into a worker.
//
// The programming interface mirrors internal/core so identical algorithms
// run under both models; internal/bench compares them head-to-head.
package cellss

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dataid"
	"repro/internal/deps"
	"repro/internal/graph"
)

// DefaultBundle is the pre-scheduling group size used when Config.Bundle
// is zero.  CellSs groups a handful of ready tasks per SPE dispatch.
const DefaultBundle = 4

// Config parameterizes a Runtime.
type Config struct {
	// Workers is the number of task-executing threads (the SPE
	// analogues).  Zero means 1.  The main thread is not one of them.
	Workers int
	// Bundle is the maximum number of tasks pre-scheduled to a worker as
	// one group.  Zero means DefaultBundle.
	Bundle int
}

// TaskDef declares a task type, mirroring core.TaskDef.
type TaskDef struct {
	// Name labels the task in errors and statistics.
	Name string
	// Fn is the task body.  Renaming means the storage behind a
	// parameter can differ from the variable named at the call site, so
	// bodies access parameters through *Args.
	Fn func(*Args)
}

// NewTaskDef declares a task.
func NewTaskDef(name string, fn func(*Args)) *TaskDef {
	return &TaskDef{Name: name, Fn: fn}
}

type argKind uint8

const (
	argData argKind = iota
	argValue
)

// Arg is one bound task parameter.
type Arg struct {
	kind argKind
	mode deps.Mode
	data any
}

// In declares data the task only reads.
func In(data any) Arg { return Arg{kind: argData, mode: deps.ModeIn, data: data} }

// Out declares data the task completely overwrites.  The runtime may hand
// the task a renamed, uninitialized instance.
func Out(data any) Arg { return Arg{kind: argData, mode: deps.ModeOut, data: data} }

// InOut declares data the task reads and writes.
func InOut(data any) Arg { return Arg{kind: argData, mode: deps.ModeInOut, data: data} }

// Value passes v by value without dependency analysis.
func Value(v any) Arg { return Arg{kind: argValue, data: v} }

// boundArg is one argument after dependency analysis.
type boundArg struct {
	kind     argKind
	instance any
	copyFrom any
	copyFn   func(dst, src any)
}

// taskRec is the payload attached to each graph node.
type taskRec struct {
	def  *TaskDef
	args []boundArg
}

// Args gives a task body access to its effective (possibly renamed)
// parameters.
type Args struct {
	rec    *taskRec
	worker int
}

// Len returns the number of bound parameters.
func (a *Args) Len() int { return len(a.rec.args) }

// Worker returns the executing worker's identity (0..Workers-1).
func (a *Args) Worker() int { return a.worker }

// Data returns parameter i's effective storage.
func (a *Args) Data(i int) any {
	b := &a.rec.args[i]
	if b.kind != argData {
		panic(fmt.Sprintf("cellss: argument %d of %s is not a data parameter", i, a.rec.def.Name))
	}
	return b.instance
}

// F32 returns parameter i as a []float32.
func (a *Args) F32(i int) []float32 { return a.Data(i).([]float32) }

// Value returns parameter i's by-value payload.
func (a *Args) Value(i int) any {
	b := &a.rec.args[i]
	if b.kind != argValue {
		panic(fmt.Sprintf("cellss: argument %d of %s is not a value parameter", i, a.rec.def.Name))
	}
	return b.instance
}

// Int returns parameter i's value as an int.
func (a *Args) Int(i int) int {
	switch v := a.Value(i).(type) {
	case int:
		return v
	case int64:
		return int(v)
	case int32:
		return int(v)
	}
	panic(fmt.Sprintf("cellss: argument %d of %s is not an integer", i, a.rec.def.Name))
}

// Stats aggregates runtime activity.
type Stats struct {
	// TasksSubmitted and TasksExecuted count task instances.
	TasksSubmitted int64
	TasksExecuted  int64
	// Deps is the dependency tracker's view (renames happen here, as in
	// SMPSs).
	Deps deps.Stats
	// Bundles counts groups dispatched to workers; BundledTasks counts
	// the tasks inside them (BundledTasks/Bundles is the mean group
	// size the pre-scheduler achieved).
	Bundles      int64
	BundledTasks int64
	// SyncBackCopies counts renamed objects copied back at barriers.
	SyncBackCopies int64
	// LiveRenamedBytes is the renamed storage currently alive in this
	// runtime's tracker — zero after a barrier on a drained graph.
	LiveRenamedBytes int64
}

// Runtime is one CellSs-model runtime instance.
//
// Since the shared-pool re-host, the model no longer owns worker
// threads: the central ready list and the pre-scheduler live here, but
// dispatch happens by submitting opaque *bundle tickets* to a
// core.Context, and the pool's workers execute them.  A dedicated pump
// goroutine is the context's single submitter (the context contract
// forbids submitting from task bodies), and the tracker recycles
// renamed storage through the pool's shared store.  The main thread
// (the PPU) still only analyzes dependencies and waits at barriers; it
// never executes task bodies.
type Runtime struct {
	cfg Config
	g   *graph.Graph
	tr  *deps.Tracker

	ctx     *core.Context // the model's tenant context; the pump submits to it
	ownPool *core.Pool    // non-nil when New built a private pool

	mu   sync.Mutex
	pump *sync.Cond // signaled when tickets are owed or the runtime closes
	idle *sync.Cond // signaled when outstanding work drains

	ready   []*graph.Node
	owed    int // bundle tickets not yet submitted by the pump
	closed  bool
	aborted bool // the context refused a ticket; bundles stopped running

	outstanding int64
	submitted   int64
	executed    int64
	bundles     int64
	bundled     int64
	syncCopies  int64
	firstErr    error

	pumpDone chan struct{}
}

// bundleTicket is the opaque no-dependency task the pump submits per
// ready task: a pool worker running one takes a pre-scheduled bundle
// from the central list (or finds it already drained and returns).
var bundleTicket = core.NewTaskDef("cellss_bundle", func(a *core.Args) {
	a.Opaque(0).(*Runtime).runBundle(a.Worker())
})

// New creates and starts a runtime on a private worker pool — the
// single-tenant constructor, now a thin wrapper over NewOn.  The caller
// must eventually call Close to release the workers.
func New(cfg Config) *Runtime {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	// All configured workers are dedicated (the PPU never executes task
	// bodies), so the private pool carries them all; the single context
	// slot belongs to the pump.
	pool, err := core.NewPool(core.PoolConfig{Workers: cfg.Workers, MaxContexts: 1})
	if err != nil {
		panic(err)
	}
	rt, err := NewOn(pool, cfg)
	if err != nil {
		panic(err)
	}
	rt.ownPool = pool
	return rt
}

// NewOn attaches a CellSs-model runtime to a shared pool as one tenant:
// it takes one context slot and submits bundle tickets that the pool's
// workers execute alongside every other tenant's tasks.  Close detaches
// the tenant; the pool itself stays up.
func NewOn(pool *core.Pool, cfg Config) (*Runtime, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = pool.Workers()
	}
	if cfg.Bundle <= 0 {
		cfg.Bundle = DefaultBundle
	}
	// The context carries opaque tickets only, so its own tracker and
	// throttle stay out of the way: the central-queue policy mirrors the
	// model's unique ready list, and the pump must never be forced to
	// execute tickets itself (GraphLimit < 0 disables throttling).
	ctx, err := pool.NewContext(core.ContextConfig{
		Scheduler:  core.SchedGlobalFIFO,
		GraphLimit: -1,
	})
	if err != nil {
		return nil, err
	}
	rt := &Runtime{cfg: cfg, ctx: ctx, pumpDone: make(chan struct{})}
	rt.pump = sync.NewCond(&rt.mu)
	rt.idle = sync.NewCond(&rt.mu)
	rt.g = graph.New(rt.onReady)
	rt.tr = deps.NewTracker(rt.g)
	rt.tr.ShareStorage(pool.Storage())
	go rt.pumpLoop()
	return rt, nil
}

// Workers returns the configured worker count.
func (rt *Runtime) Workers() int { return rt.cfg.Workers }

// Stats returns a snapshot of the runtime's counters.
func (rt *Runtime) Stats() Stats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return Stats{
		TasksSubmitted:   rt.submitted,
		TasksExecuted:    rt.executed,
		Deps:             rt.tr.Stats(),
		Bundles:          rt.bundles,
		BundledTasks:     rt.bundled,
		SyncBackCopies:   rt.syncCopies,
		LiveRenamedBytes: rt.tr.LiveRenamedBytes(),
	}
}

// Err returns the first task failure (panic) observed, or nil.
func (rt *Runtime) Err() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.firstErr
}

// Submit invokes a task: dependencies are analyzed on the main thread,
// renaming removes WAR/WAW hazards, and the task starts executing as soon
// as its inputs are satisfied (eager, like SMPSs; unlike SuperMatrix).
func (rt *Runtime) Submit(def *TaskDef, args ...Arg) {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		panic("cellss: Submit on closed runtime")
	}
	rt.submitted++
	rt.outstanding++
	rt.mu.Unlock()

	rec := &taskRec{def: def, args: make([]boundArg, len(args))}
	node := rt.g.AddNode(0, def.Name, false, rec)
	node.Payload = rec
	for i, a := range args {
		if a.kind == argValue {
			rec.args[i] = boundArg{kind: argValue, instance: a.data}
			continue
		}
		res := rt.tr.Analyze(node, deps.Access{
			Key:   dataid.Key(a.data),
			Mode:  a.mode,
			Data:  a.data,
			Alloc: dataid.AllocLike(a.data),
			Copy:  dataid.CopyInto,
		})
		rec.args[i] = boundArg{
			kind:     argData,
			instance: res.Instance,
			copyFrom: res.CopyFrom,
			copyFn:   res.Copy,
		}
	}
	rt.g.Seal(node)
}

// onReady funnels every ready task into the unique central list —
// regardless of which worker released it (no per-worker locality lists,
// no stealing) — and owes the pump one bundle ticket for it.  Tickets
// may outnumber the bundles actually taken (an early ticket can drain
// several ready tasks at once); the surplus tickets find the list empty
// and return without counting a bundle.
func (rt *Runtime) onReady(n *graph.Node, releasedBy int) {
	rt.mu.Lock()
	rt.ready = append(rt.ready, n)
	rt.owed++
	rt.mu.Unlock()
	rt.pump.Signal()
}

// pumpLoop is the context's single submitter: it converts owed tickets
// into context submissions until Close, then closes the context (the
// implicit context barrier drains any surplus no-op tickets).
func (rt *Runtime) pumpLoop() {
	defer close(rt.pumpDone)
	dead := false // the context refused a ticket; no more will be accepted
	for {
		rt.mu.Lock()
		for rt.owed == 0 && !rt.closed {
			rt.pump.Wait()
		}
		n := rt.owed
		rt.owed = 0
		closed := rt.closed
		rt.mu.Unlock()
		for i := 0; i < n && !dead; i++ {
			if err := rt.ctx.Submit(bundleTicket, core.Opaque(rt)); err != nil {
				rt.abortBundles(err)
				dead = true
			}
		}
		if closed && n == 0 {
			rt.ctx.Close()
			return
		}
	}
}

// abortBundles handles a refused bundle ticket (the context was closed
// or its tenant canceled): unlike the task-pool and cilk hosts, cellss
// bundles run only on pool tickets — the PPU never executes task
// bodies — so once tickets stop being accepted the pre-scheduled
// bundles will never run and Barrier would wedge on outstanding work.
// The pump (the context's single submitter) first barriers the context
// so every accepted ticket has finished, then latches the refusal and
// releases the barrier waiters.
func (rt *Runtime) abortBundles(err error) {
	// Quiesce: after Barrier returns, no accepted bundle ticket is
	// running and none is coming (this goroutine is the only submitter).
	if berr := rt.ctx.Barrier(); berr != nil && err == nil {
		err = berr
	}
	rt.mu.Lock()
	if rt.firstErr == nil {
		rt.firstErr = err
	}
	rt.aborted = true
	rt.mu.Unlock()
	rt.idle.Broadcast()
}

// runBundle is a ticket body executing on a pool worker: take one
// pre-scheduled group from the central list and run it.
func (rt *Runtime) runBundle(worker int) {
	rt.mu.Lock()
	if len(rt.ready) == 0 {
		rt.mu.Unlock()
		return
	}
	bundle := rt.takeBundle()
	rt.mu.Unlock()
	for _, n := range bundle {
		rt.exec(n, worker)
	}
}

// takeBundle pops up to Bundle consecutively-ready tasks for one worker:
// the pre-scheduled group.  Caller holds rt.mu.
func (rt *Runtime) takeBundle() []*graph.Node {
	k := rt.cfg.Bundle
	if k > len(rt.ready) {
		k = len(rt.ready)
	}
	b := make([]*graph.Node, k)
	copy(b, rt.ready[:k])
	rt.ready = rt.ready[k:]
	rt.bundles++
	rt.bundled += int64(k)
	return b
}

func (rt *Runtime) exec(n *graph.Node, self int) {
	rt.g.MarkRunning(n)
	rec := n.Payload.(*taskRec)
	for i := range rec.args {
		if b := &rec.args[i]; b.copyFrom != nil {
			b.copyFn(b.instance, b.copyFrom)
			b.copyFrom = nil
		}
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				rt.mu.Lock()
				if rt.firstErr == nil {
					rt.firstErr = fmt.Errorf("cellss: task %s (#%d) panicked: %v", rec.def.Name, n.ID, r)
				}
				rt.mu.Unlock()
			}
		}()
		rec.def.Fn(&Args{rec: rec, worker: self})
	}()
	rt.g.Complete(n, self)

	rt.mu.Lock()
	rt.executed++
	rt.outstanding--
	done := rt.outstanding == 0
	rt.mu.Unlock()
	if done {
		rt.idle.Broadcast()
	}
}

// Barrier blocks until every submitted task has completed.  The main
// thread only waits (the PPU does not run task bodies).  On return, data
// whose current contents live in renamed storage have been copied back,
// and the first task failure (if any) is returned.
func (rt *Runtime) Barrier() error {
	rt.mu.Lock()
	for rt.outstanding > 0 && !rt.aborted {
		rt.idle.Wait()
	}
	rt.mu.Unlock()
	n := rt.tr.SyncAll()
	rt.mu.Lock()
	rt.syncCopies += int64(n)
	err := rt.firstErr
	rt.mu.Unlock()
	return err
}

// Close waits for outstanding work (an implicit barrier), then stops
// the pump and detaches the runtime's context from its pool — and, when
// New built a private pool, shuts that pool down too.  The runtime must
// not be used afterwards.
func (rt *Runtime) Close() error {
	err := rt.Barrier()
	rt.mu.Lock()
	rt.closed = true
	rt.mu.Unlock()
	rt.pump.Signal()
	<-rt.pumpDone
	if rt.ownPool != nil {
		if perr := rt.ownPool.Close(); err == nil {
			err = perr
		}
	}
	return err
}
