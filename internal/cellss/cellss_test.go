package cellss

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/hypermatrix"
	"repro/internal/kernels"
)

// TestEagerExecution checks that, unlike SuperMatrix, CellSs starts
// running tasks while the main flow is still submitting (§VII.C: "both
// SMPSs and CellSs start executing tasks as soon as they enter the
// graph").
func TestEagerExecution(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	started := make(chan struct{})
	var once sync.Once
	def := NewTaskDef("probe", func(a *Args) { once.Do(func() { close(started) }) })
	data := make([]float32, 1)
	rt.Submit(def, InOut(data))
	// The task has no dependencies; a worker must pick it up without any
	// Barrier/Execute call from the main flow.
	<-started
}

// TestRenaming checks that CellSs renames like SMPSs: independent writers
// of one variable run concurrently, and after Barrier the user's storage
// holds the last writer's value.
func TestRenaming(t *testing.T) {
	rt := New(Config{Workers: 4})
	defer rt.Close()
	data := make([]float32, 4)
	var running, maxRunning atomic.Int64
	for i := 0; i < 16; i++ {
		i := i
		def := NewTaskDef("writer", func(a *Args) {
			cur := running.Add(1)
			for {
				m := maxRunning.Load()
				if cur <= m || maxRunning.CompareAndSwap(m, cur) {
					break
				}
			}
			a.F32(0)[0] = float32(i)
			running.Add(-1)
		})
		rt.Submit(def, Out(data))
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	if data[0] != 15 {
		t.Fatalf("after barrier data[0] = %v, want 15 (last writer)", data[0])
	}
	st := rt.Stats()
	if st.Deps.Renames == 0 {
		t.Fatal("independent writers caused no renames")
	}
	if st.Deps.FalseEdges != 0 {
		t.Fatalf("renaming left %d false edges", st.Deps.FalseEdges)
	}
}

// TestBundles checks the pre-scheduler dispatches groups: with a wide
// ready set, mean bundle size must exceed 1.
func TestBundles(t *testing.T) {
	rt := New(Config{Workers: 2, Bundle: 8})
	data := make([][]float32, 256)
	def := NewTaskDef("leaf", func(a *Args) { a.F32(0)[0]++ })
	for i := range data {
		data[i] = make([]float32, 1)
		rt.Submit(def, InOut(data[i]))
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Bundles == 0 {
		t.Fatal("no bundles dispatched")
	}
	if mean := float64(st.BundledTasks) / float64(st.Bundles); mean <= 1.5 {
		t.Fatalf("mean bundle size %.2f; pre-scheduling is not grouping", mean)
	}
	if st.TasksExecuted != 256 {
		t.Fatalf("executed %d of 256", st.TasksExecuted)
	}
}

// TestCholeskyMatchesReference factors an SPD matrix under the CellSs
// model and compares against the sequential flat Cholesky.
func TestCholeskyMatchesReference(t *testing.T) {
	const n, m = 6, 16
	dim := n * m
	spd := kernels.GenSPD(dim, 9)
	want := append([]float32(nil), spd...)
	if !kernels.CholeskyFlat(want, dim) {
		t.Fatal("reference factorization failed")
	}

	h := hypermatrix.FromFlat(spd, n, m)
	rt := New(Config{Workers: 4})
	Cholesky(rt, NewTasks(kernels.Fast, m), h)
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	got := h.ToFlat()
	for i := 0; i < dim; i++ {
		for j := 0; j <= i; j++ {
			g, w := got[i*dim+j], want[i*dim+j]
			if diff := math.Abs(float64(g - w)); diff > 1e-3*(1+math.Abs(float64(w))) {
				t.Fatalf("factor mismatch at (%d,%d): got %v want %v", i, j, g, w)
			}
		}
	}
}

// TestChainSerializes checks true dependencies still order execution.
func TestChainSerializes(t *testing.T) {
	rt := New(Config{Workers: 4})
	defer rt.Close()
	data := make([]float32, 1)
	var mu sync.Mutex
	var order []int
	for i := 0; i < 32; i++ {
		i := i
		def := NewTaskDef("link", func(a *Args) {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			a.F32(0)[0]++
		})
		rt.Submit(def, InOut(data))
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("chain ran out of order at %d: %v", i, order)
		}
	}
	if data[0] != 32 {
		t.Fatalf("chain result %v, want 32", data[0])
	}
}

// TestPanicPropagation checks task panics surface from Barrier and Close.
func TestPanicPropagation(t *testing.T) {
	rt := New(Config{Workers: 2})
	data := make([]float32, 1)
	rt.Submit(NewTaskDef("boom", func(a *Args) { panic("kaboom") }), InOut(data))
	rt.Submit(NewTaskDef("after", func(a *Args) { a.F32(0)[0]++ }), InOut(data))
	if err := rt.Barrier(); err == nil {
		t.Fatal("Barrier returned nil after a task panicked")
	}
	if err := rt.Close(); err == nil {
		t.Fatal("Close returned nil after a task panicked")
	}
}

// TestValueArgs checks by-value parameter passing.
func TestValueArgs(t *testing.T) {
	rt := New(Config{Workers: 2})
	data := make([]float32, 4)
	def := NewTaskDef("set", func(a *Args) { a.F32(0)[a.Int(1)] = 1 })
	for i := 0; i < 4; i++ {
		rt.Submit(def, InOut(data), Value(i))
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	for i, v := range data {
		if v != 1 {
			t.Fatalf("data[%d] = %v, want 1", i, v)
		}
	}
}
