package cellss

import (
	"math"
	"testing"

	"repro/internal/hypermatrix"
	"repro/internal/kernels"
)

// TestGemmMatchesReference multiplies under the CellSs model and checks
// against the sequential flat GEMM.
func TestGemmMatchesReference(t *testing.T) {
	const n, m = 4, 8
	dim := n * m
	af := kernels.GenMatrix(dim, 71)
	bf := kernels.GenMatrix(dim, 72)
	want := make([]float32, dim*dim)
	kernels.GemmFlat(af, bf, want, dim)

	a := hypermatrix.FromFlat(af, n, m)
	b := hypermatrix.FromFlat(bf, n, m)
	c := hypermatrix.New(n, m)
	rt := New(Config{Workers: 3})
	if rt.Workers() != 3 {
		t.Fatalf("Workers() = %d", rt.Workers())
	}
	Gemm(rt, NewTasks(kernels.Fast, m), a, b, c)
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	got := c.ToFlat()
	for i := range want {
		if diff := math.Abs(float64(got[i] - want[i])); diff > 1e-2*(1+math.Abs(float64(want[i]))) {
			t.Fatalf("product mismatch at %d: got %v want %v", i, got[i], want[i])
		}
	}
}

// TestArgsAccessors covers the typed accessors and their panics.
func TestArgsAccessors(t *testing.T) {
	rt := New(Config{Workers: 1})
	defer rt.Close()
	data := make([]float32, 2)
	done := make(chan struct{})
	def := NewTaskDef("acc", func(a *Args) {
		defer close(done)
		if a.Len() != 4 {
			panic("wrong arity")
		}
		if a.Worker() < 0 {
			panic("bad worker")
		}
		_ = a.F32(0)
		if a.Int(1) != 7 || a.Int(2) != 8 || a.Int(3) != 9 {
			panic("bad ints")
		}
		mustPanic := func(f func()) {
			panicked := false
			func() {
				defer func() { panicked = recover() != nil }()
				f()
			}()
			if !panicked {
				panic("accessor did not panic")
			}
		}
		mustPanic(func() { a.Value(0) }) // data arg is not a value
		mustPanic(func() { a.Data(1) })  // value arg is not data
		mustPanic(func() { a.Int(0) })   // data arg is not an int
	})
	rt.Submit(def, InOut(data), Value(7), Value(int64(8)), Value(int32(9)))
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	<-done
}
