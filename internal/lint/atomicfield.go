package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// atomicfield enforces the PR 9 Storage.Rescale bug class: a struct
// field that is accessed through sync/atomic anywhere must be accessed
// through sync/atomic everywhere.  A single plain read racing the
// atomic writers is the exact defect Rescale had to retrofit — the
// race detector only catches it when a test happens to interleave the
// two sites.
//
// The analyzer collects, program-wide, every field passed by address
// to a sync/atomic function, then flags any other selector access to
// one of those fields in the current unit.  Composite-literal keys are
// idents, not selectors, so pre-publication initialization stays
// exempt; fields of the typed atomic.* wrappers need no rule because
// the type system already forbids plain access.
func init() {
	Register(&Analyzer{
		Name: "atomicfield",
		Doc:  "fields accessed via sync/atomic must be accessed atomically at every site",
		Run:  runAtomicField,
	})
}

// atomicFieldUse is one &x.f argument of a sync/atomic call: the field
// (by declaration position) and the selector node that is the sanctioned
// atomic access.
type atomicFieldUse struct {
	field token.Pos // field declaration
	sel   token.Pos // the exempt &x.f selector position
}

// atomicFieldUses scans one unit for sync/atomic calls taking field
// addresses.
func atomicFieldUses(u *Unit) []atomicFieldUse {
	var uses []atomicFieldUse
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(u.Info, call)
			if fn == nil || pkgPathOf(fn) != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || unary.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fld := fieldSelection(u.Info, sel); fld != nil {
					uses = append(uses, atomicFieldUse{field: fld.Pos(), sel: sel.Pos()})
				}
			}
			return true
		})
	}
	return uses
}

func runAtomicField(pass *Pass) error {
	// Program-wide collection so a unit that only reads a field plainly
	// still learns the field is atomic elsewhere (e.g. an external test
	// peeking at a counter the runtime updates atomically).
	atomic := map[token.Pos]bool{} // field decl -> is atomic
	exempt := map[token.Pos]bool{} // selector positions that ARE the atomic access
	for _, u := range pass.Prog.Units {
		for _, use := range atomicFieldUses(u) {
			atomic[use.field] = true
			exempt[use.sel] = true
		}
	}
	if len(atomic) == 0 {
		return nil
	}
	pass.inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fld := fieldSelection(pass.Unit.Info, sel)
		if fld == nil || !atomic[fld.Pos()] || exempt[sel.Pos()] {
			return true
		}
		owner := ownerName(fld)
		if owner == "" {
			owner = "struct"
		}
		pass.Reportf(sel.Sel.Pos(), "field %s.%s is accessed with sync/atomic elsewhere; this non-atomic access races it", owner, fld.Name())
		return true
	})
	return nil
}

// ownerName finds the named struct type declaring field fld, for
// diagnostics only ("" when the struct is anonymous).
func ownerName(fld *types.Var) string {
	if fld.Pkg() == nil {
		return ""
	}
	scope := fld.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Pos() == fld.Pos() {
				return name
			}
		}
	}
	return ""
}
