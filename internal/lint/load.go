// Package lint is the project's hand-rolled static-analysis engine:
// a package loader/typechecker built on the standard library's go/ast,
// go/parser and go/types (no golang.org/x/tools — the module cache is
// offline), a small per-analyzer registry, and a driver that turns
// analyzer findings into position-accurate diagnostics with
// `//lint:allow <analyzer> <reason>` suppressions.
//
// The analyzers encode invariants the runtime states in prose — mixed
// atomic/plain field access, four-file trace-event wiring, discarded
// Submit errors, chaos-site installation and disarmed-path shape, and
// canonical shard lock order — so `smpssvet ./...` (cmd/smpssvet) can
// enforce in CI what until now only reviewer memory enforced.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Program is the loaded, typechecked view of the packages an analysis
// run covers.  Units are typechecked against a shared FileSet, so
// token.Pos values compare and resolve consistently across units — the
// analyzers rely on that to match objects (by declaration position)
// between a package's primary unit and external test units.
type Program struct {
	Fset *token.FileSet
	// Root is the directory Load was given; import paths of module
	// packages are Root-relative under ModulePath.
	Root string
	// ModulePath is the module path from Root's go.mod, or "" when Root
	// has no go.mod (golden-test fixtures).
	ModulePath string
	Units      []*Unit
}

// Unit is one typechecked analysis unit: either a package's primary
// unit (its non-test files plus any in-package _test.go files) or an
// external test package (package foo_test), which typechecks as its
// own package importing the primary one.
type Unit struct {
	// Path is the unit's import path (the primary package's path; an
	// external test unit carries the primary path too and is
	// distinguished by XTest).  Fixture programs without a go.mod use
	// the Root-relative directory as the path.
	Path  string
	Dir   string
	XTest bool
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// TestFile reports whether the file at pos is a _test.go file.
func (p *Program) TestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.File(pos).Name(), "_test.go")
}

// dirFiles is the parsed, build-tag-filtered content of one directory.
type dirFiles struct {
	dir     string
	pkgName string      // primary package name, "" if the dir has only external tests
	prim    []*ast.File // non-test files
	itest   []*ast.File // in-package _test.go files
	xtest   []*ast.File // package <pkg>_test files
}

// checked is one completed typecheck: the package, the files that form
// it and the Info recorded while checking them.
type checked struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader loads and typechecks packages from source.  It doubles as the
// types.Importer for module-internal import paths, chaining to the
// standard source importer for GOROOT packages (the module cache is
// offline and GOROOT ships no export data, so everything typechecks
// from source).
type loader struct {
	fset    *token.FileSet
	root    string
	modPath string
	std     types.Importer
	dirs    map[string]*dirFiles // abs dir -> parsed files
	clean   map[string]*checked  // import path -> non-test package
	loading map[string]bool      // import cycle detection
}

// Load parses and typechecks the packages matched by patterns under
// root.  Patterns are root-relative: "./..." (everything), "./x/..."
// (a subtree) or "./x" (one directory).  Directories named "testdata",
// hidden directories and "_"-prefixed directories are skipped.
func Load(root string, patterns ...string) (*Program, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	ld := &loader{
		fset:    token.NewFileSet(),
		root:    absRoot,
		modPath: readModulePath(absRoot),
		dirs:    map[string]*dirFiles{},
		clean:   map[string]*checked{},
		loading: map[string]bool{},
	}
	ld.std = importer.ForCompiler(ld.fset, "source", nil)

	dirs, err := ld.matchDirs(patterns)
	if err != nil {
		return nil, err
	}
	prog := &Program{Fset: ld.fset, Root: absRoot, ModulePath: ld.modPath}
	for _, dir := range dirs {
		df, err := ld.parseDir(dir)
		if err != nil {
			return nil, err
		}
		path := ld.importPath(dir)
		if len(df.prim) > 0 {
			var c *checked
			if len(df.itest) == 0 {
				// No in-package tests: the primary unit is exactly the
				// clean package, so load (and memoize) it as such —
				// importing units then share its object identities.
				c, err = ld.loadClean(path)
			} else {
				c, err = ld.check(path, append(append([]*ast.File{}, df.prim...), df.itest...))
			}
			if err != nil {
				return nil, err
			}
			prog.Units = append(prog.Units, &Unit{
				Path: path, Dir: dir, Files: c.files, Pkg: c.pkg, Info: c.info,
			})
		}
		if len(df.xtest) > 0 {
			c, err := ld.check(path+"_test", df.xtest)
			if err != nil {
				return nil, err
			}
			prog.Units = append(prog.Units, &Unit{
				Path: path, Dir: dir, XTest: true, Files: c.files, Pkg: c.pkg, Info: c.info,
			})
		}
	}
	return prog, nil
}

// readModulePath extracts the module path from root/go.mod, or "".
func readModulePath(root string) string {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// importPath maps an absolute directory under root to its import path.
func (ld *loader) importPath(dir string) string {
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil || rel == "." {
		rel = ""
	}
	rel = filepath.ToSlash(rel)
	switch {
	case ld.modPath == "" && rel == "":
		return "p" // fixture rooted at a single package
	case ld.modPath == "":
		return rel
	case rel == "":
		return ld.modPath
	default:
		return ld.modPath + "/" + rel
	}
}

// pathDir maps an import path produced by importPath back to its
// directory.
func (ld *loader) pathDir(path string) string {
	switch {
	case ld.modPath != "":
		path = strings.TrimPrefix(strings.TrimPrefix(path, ld.modPath), "/")
	case path == "p":
		path = "" // fixture rooted at a single package
	}
	return filepath.Join(ld.root, filepath.FromSlash(path))
}

// inModule reports whether path names a package of the loaded module.
func (ld *loader) inModule(path string) bool {
	if ld.modPath == "" {
		return false
	}
	return path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/")
}

// matchDirs resolves patterns to the sorted set of directories that
// contain at least one buildable .go file.
func (ld *loader) matchDirs(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	set := map[string]bool{}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		dir := filepath.Join(ld.root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			set[dir] = true
			continue
		}
		err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			set[p] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var dirs []string
	for dir := range set {
		if df, err := ld.parseDir(dir); err == nil && (len(df.prim) > 0 || len(df.xtest) > 0) {
			dirs = append(dirs, dir)
		} else if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir scans, build-tag-filters and parses the .go files of one
// directory, classifying them into primary, in-package test and
// external test files.  Results are memoized.
func (ld *loader) parseDir(dir string) (*dirFiles, error) {
	if df, ok := ld.dirs[dir]; ok {
		return df, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	df := &dirFiles{dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		file, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkgName := file.Name.Name
		switch {
		case !strings.HasSuffix(name, "_test.go"):
			df.prim = append(df.prim, file)
			df.pkgName = pkgName
		case strings.HasSuffix(pkgName, "_test"):
			df.xtest = append(df.xtest, file)
		default:
			df.itest = append(df.itest, file)
		}
	}
	ld.dirs[dir] = df
	return df, nil
}

// loadClean typechecks (and memoizes) the non-test package at an
// import path — the version of the package other packages import.
func (ld *loader) loadClean(path string) (*checked, error) {
	if c, ok := ld.clean[path]; ok {
		return c, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)
	df, err := ld.parseDir(ld.pathDir(path))
	if err != nil {
		return nil, fmt.Errorf("lint: loading %q: %w", path, err)
	}
	if len(df.prim) == 0 {
		return nil, fmt.Errorf("lint: package %q has no non-test Go files", path)
	}
	c, err := ld.check(path, df.prim)
	if err != nil {
		return nil, err
	}
	ld.clean[path] = c
	return c, nil
}

// check typechecks files as one package with the loader as importer.
func (ld *loader) check(path string, files []*ast.File) (*checked, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var errs []error
	conf := types.Config{
		Importer: ld,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, _ := conf.Check(path, ld.fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("lint: typechecking %q: %w", path, errs[0])
	}
	return &checked{pkg: pkg, files: files, info: info}, nil
}

// Import implements types.Importer: module-internal paths typecheck
// from source under Root; everything else defers to the standard
// source importer (GOROOT).
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if ld.inModule(path) {
		c, err := ld.loadClean(path)
		if err != nil {
			return nil, err
		}
		return c.pkg, nil
	}
	return ld.std.Import(path)
}
