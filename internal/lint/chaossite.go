package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// chaossite enforces the PR 8 fault-injection contracts on a package
// that declares the chaos sites (a defined type named Site with
// Site*-prefixed constants):
//
//  1. every Site constant is installed at a hook — it is passed to the
//     injector's decide() in a non-test file; a site nobody decides on
//     is dead configuration that silently never fires;
//  2. every Site constant is exercised by at least one test anywhere
//     in the program, so the fault path it arms cannot rot untested;
//  3. every hook (a free function that calls decide) starts with a
//     single atomic injector-pointer load followed by a nil check that
//     returns early — the disarmed fast path must stay one atomic
//     load, because the hooks are compiled into the runtime's hot
//     paths.
func init() {
	Register(&Analyzer{
		Name: "chaossite",
		Doc:  "chaos sites must be installed at a hook, exercised by a test, and disarmed in one atomic load",
		Run:  runChaosSite,
	})
}

func runChaosSite(pass *Pass) error {
	u := pass.Unit
	scope := u.Pkg.Scope()
	siteType, ok := scope.Lookup("Site").(*types.TypeName)
	if !ok {
		return nil
	}
	var sites []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if ok && strings.HasPrefix(name, "Site") && types.Identical(c.Type(), siteType.Type()) {
			sites = append(sites, c)
		}
	}
	if len(sites) == 0 {
		return nil
	}

	// decided: declaration positions of site constants passed to a
	// decide() call in non-test files of this package.
	decided := map[token.Pos]bool{}
	for _, f := range u.Files {
		if pass.Prog.TestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(u.Info, call); fn == nil || fn.Name() != "decide" {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if obj := u.Info.Uses[id]; obj != nil {
						decided[obj.Pos()] = true
					}
				}
			}
			return true
		})
	}

	// tested: declaration positions of site constants referenced from
	// any _test.go file anywhere in the program.
	tested := map[token.Pos]bool{}
	for _, other := range pass.Prog.Units {
		for _, f := range other.Files {
			if !pass.Prog.TestFile(f.Pos()) {
				continue
			}
			usedObjPositions(other.Info, f, tested)
		}
	}

	for _, c := range sites {
		if !decided[c.Pos()] {
			pass.Reportf(c.Pos(), "chaos site %s is never installed at a hook (no decide call uses it)", c.Name())
		}
		if !tested[c.Pos()] {
			pass.Reportf(c.Pos(), "chaos site %s is not exercised by any test", c.Name())
		}
	}

	// Rule 3: hooks — free functions calling decide — must begin with
	// `x := active.Load()` on a package-level atomic.Pointer, then an
	// `if x == nil` (possibly `||`-extended) early return.
	for _, f := range u.Files {
		if pass.Prog.TestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Body == nil || !callsDecide(u.Info, fd.Body) {
				continue
			}
			if !hasDisarmedFastPath(u, fd.Body) {
				pass.Reportf(fd.Pos(), "chaos hook %s must start with one atomic injector load and a nil-check early return (the disarmed fast path)", fd.Name.Name)
			}
		}
	}
	return nil
}

// callsDecide reports whether body contains a call to a function or
// method named decide.
func callsDecide(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(info, call); fn != nil && fn.Name() == "decide" {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasDisarmedFastPath checks the hook prologue shape:
//
//	inj := active.Load()
//	if inj == nil { return ... }     // or: if inj == nil || <more> { ... }
func hasDisarmedFastPath(u *Unit, body *ast.BlockStmt) bool {
	if len(body.List) < 2 {
		return false
	}
	assign, ok := body.List[0].(*ast.AssignStmt)
	if !ok || assign.Tok != token.DEFINE || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	lhs, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" {
		return false
	}
	// The receiver must be a package-level variable of the typed
	// atomic.Pointer kind (one load, no mutex, no map).
	recv, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := u.Info.Uses[recv].(*types.Var)
	if !ok || v.Parent() != u.Pkg.Scope() || !namedFrom(v.Type(), "sync/atomic", "Pointer") {
		return false
	}
	ifStmt, ok := body.List[1].(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	// Leftmost ||-operand must be `<lhs> == nil`.
	cond := ast.Unparen(ifStmt.Cond)
	for {
		bin, ok := cond.(*ast.BinaryExpr)
		if !ok {
			return false
		}
		if bin.Op == token.LOR {
			cond = ast.Unparen(bin.X)
			continue
		}
		if bin.Op != token.EQL {
			return false
		}
		x, xok := ast.Unparen(bin.X).(*ast.Ident)
		y, yok := ast.Unparen(bin.Y).(*ast.Ident)
		if !(xok && yok) {
			return false
		}
		if !(x.Name == lhs.Name && y.Name == "nil" || y.Name == lhs.Name && x.Name == "nil") {
			return false
		}
		break
	}
	if len(ifStmt.Body.List) == 0 {
		return false
	}
	_, isReturn := ifStmt.Body.List[len(ifStmt.Body.List)-1].(*ast.ReturnStmt)
	return isReturn
}
