package lint

import (
	"go/token"
	"go/types"
	"strings"
)

// traceevent enforces the four-file trace wiring PRs 5, 8 and 9 each
// re-verified by hand: every event constant (trace.Ev*) must be
// handled by the PRV writer, the PRV parser and the summarizer, and
// every Paraver event-type code (trace.prv*) must be written
// (WritePRV), named (WritePCF) and parsed (ParsePRV).  An event that
// is emitted but silently dropped by Summarize — or written but
// unparseable — is exactly the drift this pins.
//
// The analyzer activates only on a package that declares an integer
// event type with Ev*-named constants AND all four functions; a
// package missing one of the functions is not a trace package and
// stays silent.
func init() {
	Register(&Analyzer{
		Name: "traceevent",
		Doc:  "every trace event constant must be wired through WritePRV, WritePCF, ParsePRV and Summarize",
		Run:  runTraceEvent,
	})
}

func runTraceEvent(pass *Pass) error {
	u := pass.Unit
	scope := u.Pkg.Scope()

	// Event constants: package-level consts named Ev* whose type is an
	// integer type defined in this package.
	var evConsts, prvConsts []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		switch {
		case strings.HasPrefix(name, "Ev"):
			named, ok := c.Type().(*types.Named)
			if !ok || named.Obj().Pkg() != u.Pkg {
				continue
			}
			if basic, ok := named.Underlying().(*types.Basic); ok && basic.Info()&types.IsInteger != 0 {
				evConsts = append(evConsts, c)
			}
		case strings.HasPrefix(name, "prv"):
			if basic, ok := c.Type().Underlying().(*types.Basic); ok && basic.Info()&types.IsInteger != 0 {
				prvConsts = append(prvConsts, c)
			}
		}
	}
	if len(evConsts) == 0 {
		return nil
	}

	bodies := funcBodies(u)
	const writer, namer, parser, summarizer = "WritePRV", "WritePCF", "ParsePRV", "Summarize"
	for _, fn := range []string{writer, namer, parser, summarizer} {
		if len(bodies[fn]) == 0 {
			return nil // not a trace package
		}
	}

	// usedIn[fn] is the set of object declaration positions referenced
	// anywhere in the bodies of functions named fn.
	usedIn := map[string]map[token.Pos]bool{}
	for name, decls := range bodies {
		set := map[token.Pos]bool{}
		for _, d := range decls {
			usedObjPositions(u.Info, d.Body, set)
		}
		usedIn[name] = set
	}

	check := func(consts []*types.Const, kind string, fns []string) {
		for _, c := range consts {
			var missing []string
			for _, fn := range fns {
				if !usedIn[fn][c.Pos()] {
					missing = append(missing, fn)
				}
			}
			if len(missing) > 0 {
				pass.Reportf(c.Pos(), "%s %s is not referenced in %s", kind, c.Name(), strings.Join(missing, ", "))
			}
		}
	}
	check(evConsts, "trace event", []string{writer, parser, summarizer})
	check(prvConsts, "paraver event code", []string{writer, namer, parser})
	return nil
}
