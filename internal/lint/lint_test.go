package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe extracts the quoted expectations of a `// want "..."` comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants parses the `// want "regex"` expectations out of a
// loaded fixture program, keyed by file:line.
func collectWants(t *testing.T, prog *Program) map[string][]*regexp.Regexp {
	t.Helper()
	wants := map[string][]*regexp.Regexp{}
	for _, u := range prog.Units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "// want ")
					if idx < 0 {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx:], -1) {
						pat, err := strconv.Unquote(`"` + m[1] + `"`)
						if err != nil {
							t.Fatalf("%s: bad want string %q: %v", key, m[1], err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
						}
						wants[key] = append(wants[key], re)
					}
				}
			}
		}
	}
	return wants
}

// TestGolden runs each analyzer over its testdata fixtures and checks
// the diagnostics against the // want expectations, both directions:
// every diagnostic must be wanted at its exact file:line, and every
// want must be matched.
func TestGolden(t *testing.T) {
	for _, a := range Analyzers() {
		cases, err := filepath.Glob(filepath.Join("testdata", a.Name, "*"))
		if err != nil {
			t.Fatal(err)
		}
		if len(cases) == 0 {
			t.Errorf("analyzer %s has no testdata fixtures", a.Name)
		}
		for _, dir := range cases {
			if st, err := os.Stat(dir); err != nil || !st.IsDir() {
				continue
			}
			t.Run(a.Name+"/"+filepath.Base(dir), func(t *testing.T) {
				prog, err := Load(dir, "./...")
				if err != nil {
					t.Fatalf("Load(%s): %v", dir, err)
				}
				diags, err := Run(prog, []*Analyzer{a})
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				wants := collectWants(t, prog)
				for _, d := range diags {
					key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
					matched := -1
					for i, re := range wants[key] {
						if re.MatchString(d.Message) {
							matched = i
							break
						}
					}
					if matched < 0 {
						t.Errorf("unexpected diagnostic %s", d)
						continue
					}
					wants[key] = append(wants[key][:matched], wants[key][matched+1:]...)
				}
				for key, res := range wants {
					for _, re := range res {
						t.Errorf("missing diagnostic at %s matching %q", key, re)
					}
				}
			})
		}
	}
}

// TestRegistry pins the five shipped analyzers by name.
func TestRegistry(t *testing.T) {
	want := []string{"atomicfield", "chaossite", "lockorder", "submiterr", "traceevent"}
	var got []string
	for _, a := range Analyzers() {
		got = append(got, a.Name)
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc string", a.Name)
		}
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("registered analyzers = %v, want %v", got, want)
	}
}

// TestByName covers -run selection, including unknown names.
func TestByName(t *testing.T) {
	as, err := ByName("submiterr,lockorder")
	if err != nil || len(as) != 2 {
		t.Fatalf("ByName: got %d analyzers, err %v", len(as), err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) should fail")
	}
	if _, err := ByName(""); err == nil {
		t.Fatal("ByName(empty) should fail")
	}
}

// TestSuppression checks that a reasoned //lint:allow hides a finding
// in both supported placements.
func TestSuppression(t *testing.T) {
	prog, err := Load(filepath.Join("testdata", "driver", "suppressed"), "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(prog, Analyzers())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("suppressed fixture still reports %s", d)
	}
}

// TestSuppressionValidation checks the driver rejects malformed
// suppressions: missing reason, unknown analyzer.
func TestSuppressionValidation(t *testing.T) {
	for dir, wantErr := range map[string]string{
		"badallow": "missing the mandatory reason",
		"unknown":  "unknown analyzer",
	} {
		prog, err := Load(filepath.Join("testdata", "driver", dir), "./...")
		if err != nil {
			t.Fatal(err)
		}
		_, err = Run(prog, Analyzers())
		if err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Errorf("%s: Run error = %v, want containing %q", dir, err, wantErr)
		}
	}
}
