package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer is one registered invariant check.  Run is invoked once
// per analysis unit; it reports findings through the pass and returns
// an error only for internal failures (a finding is never an error).
type Analyzer struct {
	// Name is the identifier used by -run filters and in diagnostics
	// and suppression comments.
	Name string
	// Doc is the one-line description -list prints.
	Doc string
	Run func(*Pass) error
}

// A Pass carries one analyzer's view of one analysis unit.  Prog is
// available for whole-program rules (e.g. "exercised by at least one
// test anywhere"); analyzers that use it must still report each
// finding only from the unit that owns the offending position, so the
// driver's per-unit iteration cannot duplicate reports.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Unit     *Unit
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one position-accurate finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

var registry = map[string]*Analyzer{}

// Register adds an analyzer to the registry; analyzer files call it
// from init, mirroring the smpssbench experiment registry.
func Register(a *Analyzer) {
	if a.Name == "" || a.Run == nil {
		panic("lint: Register: analyzer needs a name and a Run function")
	}
	if _, dup := registry[a.Name]; dup {
		panic("lint: Register: duplicate analyzer " + a.Name)
	}
	registry[a.Name] = a
}

// Analyzers returns every registered analyzer, sorted by name.
func Analyzers() []*Analyzer {
	var as []*Analyzer
	for _, a := range registry {
		as = append(as, a)
	}
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}

// ByName resolves a comma-separated -run selection to analyzers,
// erroring on unknown names.
func ByName(names string) ([]*Analyzer, error) {
	var as []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := registry[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
		as = append(as, a)
	}
	if len(as) == 0 {
		return nil, errors.New("lint: no analyzers selected")
	}
	return as, nil
}

// allowPrefix is the suppression comment syntax:
//
//	//lint:allow <analyzer> <reason...>
//
// A suppression covers diagnostics of that analyzer on its own line
// (end-of-line comment) or on the line directly below (a comment on
// its own line above the offending statement).  The reason is
// mandatory: a suppression without one is a driver error, not a
// finding, so it can never be waved through.
const allowPrefix = "//lint:allow"

// suppKey identifies the diagnostics one suppression comment covers.
type suppKey struct {
	file     string
	line     int
	analyzer string
}

// collectSuppressions scans every unit's comments for //lint:allow
// directives, validating them against the selected analyzer set (plus
// the full registry, so suppressing an analyzer excluded by -run is
// not an error).
func collectSuppressions(prog *Program) (map[suppKey]bool, error) {
	supp := map[suppKey]bool{}
	var errs []error
	for _, u := range prog.Units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, allowPrefix)
					if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						errs = append(errs, fmt.Errorf("%s:%d:%d: lint:allow needs an analyzer name and a reason", pos.Filename, pos.Line, pos.Column))
						continue
					}
					if _, known := registry[fields[0]]; !known {
						errs = append(errs, fmt.Errorf("%s:%d:%d: lint:allow names unknown analyzer %q", pos.Filename, pos.Line, pos.Column, fields[0]))
						continue
					}
					if len(fields) < 2 {
						errs = append(errs, fmt.Errorf("%s:%d:%d: lint:allow %s is missing the mandatory reason", pos.Filename, pos.Line, pos.Column, fields[0]))
						continue
					}
					supp[suppKey{pos.Filename, pos.Line, fields[0]}] = true
					supp[suppKey{pos.Filename, pos.Line + 1, fields[0]}] = true
				}
			}
		}
	}
	return supp, errors.Join(errs...)
}

// Run executes the analyzers over every unit of prog and returns the
// unsuppressed diagnostics, deduplicated (whole-program rules may
// surface the same finding from several units) and sorted by position.
// The returned error covers driver-level failures: malformed
// suppressions or an analyzer's internal error.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	supp, err := collectSuppressions(prog)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var diags []Diagnostic
	var errs []error
	for _, a := range analyzers {
		for _, u := range prog.Units {
			pass := &Pass{
				Analyzer: a,
				Prog:     prog,
				Unit:     u,
				report: func(d Diagnostic) {
					key := d.String()
					if seen[key] {
						return
					}
					seen[key] = true
					if supp[suppKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
						return
					}
					diags = append(diags, d)
				},
			}
			if err := a.Run(pass); err != nil {
				errs = append(errs, fmt.Errorf("lint: %s on %s: %w", a.Name, u.Path, err))
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, errors.Join(errs...)
}

// inspect walks every file of the unit.
func (p *Pass) inspect(fn func(ast.Node) bool) {
	for _, f := range p.Unit.Files {
		ast.Inspect(f, fn)
	}
}
