package lint

import (
	"go/ast"
	"go/types"
)

// submiterr enforces the PR 4 review-bug class: a call to an in-module
// Submit/SubmitBatch that returns an error must not discard it.  A
// dropped Submit error silently no-ops the work — a closed or canceled
// context refuses the task, the caller barriers on nothing, and the
// "result" is whatever stale memory held, which is how a factorization
// once went missing in review.
//
// Flagged forms: a bare call statement, `go`/`defer` of the call, and
// an assignment that blanks the error result.  Only non-test files are
// checked: tests deliberately drive Submit into refusal.
func init() {
	Register(&Analyzer{
		Name: "submiterr",
		Doc:  "errors returned by Submit/SubmitBatch must not be discarded",
		Run:  runSubmitErr,
	})
}

// submitErrCallee reports whether call invokes an in-module function
// or method named Submit/SubmitBatch whose last result is an error,
// returning a printable name.
func submitErrCallee(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pass.Unit.Info, call)
	if fn == nil || fn.Name() != "Submit" && fn.Name() != "SubmitBatch" {
		return "", false
	}
	if !inModulePkg(pass.Prog, fn.Pkg()) {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return "", false
	}
	if !isErrorType(sig.Results().At(sig.Results().Len() - 1).Type()) {
		return "", false
	}
	name := fn.Name()
	if recv := sig.Recv(); recv != nil {
		name = types.TypeString(recv.Type(), types.RelativeTo(fn.Pkg())) + "." + name
	}
	return name, true
}

func runSubmitErr(pass *Pass) error {
	for _, f := range pass.Unit.Files {
		if pass.Prog.TestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(stmt.X).(*ast.CallExpr); ok {
					if name, ok := submitErrCallee(pass, call); ok {
						pass.Reportf(call.Pos(), "error returned by %s is discarded", name)
					}
				}
			case *ast.GoStmt:
				if name, ok := submitErrCallee(pass, stmt.Call); ok {
					pass.Reportf(stmt.Call.Pos(), "error returned by %s is discarded by go statement", name)
				}
			case *ast.DeferStmt:
				if name, ok := submitErrCallee(pass, stmt.Call); ok {
					pass.Reportf(stmt.Call.Pos(), "error returned by %s is discarded by defer statement", name)
				}
			case *ast.AssignStmt:
				if len(stmt.Rhs) != 1 {
					return true
				}
				call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := submitErrCallee(pass, call)
				if !ok {
					return true
				}
				// The error is the callee's last result, so it lands in
				// the last left-hand operand.
				last, ok := stmt.Lhs[len(stmt.Lhs)-1].(*ast.Ident)
				if ok && last.Name == "_" {
					pass.Reportf(call.Pos(), "error returned by %s is blanked instead of handled", name)
				}
			}
			return true
		})
	}
	return nil
}
