// Package gap exercises the traceevent analyzer: EvBeta is written and
// parsed but never summarized; prvBeta is written and parsed but never
// named in the PCF.  EvAlpha/prvAlpha are fully wired and stay clean.
package gap

import (
	"fmt"
	"io"
)

type EventType int

const (
	EvAlpha EventType = iota
	EvBeta            // want "trace event EvBeta is not referenced in Summarize"
)

const (
	prvAlpha = 90000001
	prvBeta  = 90000002 // want "paraver event code prvBeta is not referenced in WritePCF"
)

type Tracer struct{ evs []EventType }

func (t *Tracer) WritePRV(w io.Writer) {
	for _, e := range t.evs {
		switch e {
		case EvAlpha:
			fmt.Fprintln(w, prvAlpha)
		case EvBeta:
			fmt.Fprintln(w, prvBeta)
		}
	}
}

func (t *Tracer) WritePCF(w io.Writer) {
	fmt.Fprintln(w, prvAlpha, "alpha")
}

func ParsePRV(code int) EventType {
	switch code {
	case prvAlpha:
		return EvAlpha
	case prvBeta:
		return EvBeta
	}
	return EvAlpha
}

func (t *Tracer) Summarize() int {
	n := 0
	for _, e := range t.evs {
		if e == EvAlpha {
			n++
		}
	}
	return n
}
