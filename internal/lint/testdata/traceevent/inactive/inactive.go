// Package inactive is the traceevent near miss: it declares an event
// type and constants but not the four wiring functions, so it is not a
// trace package and the analyzer stays silent.
package inactive

type EventType int

const (
	EvOne EventType = iota
	EvTwo
)

func use() EventType { return EvOne }

var _ = use
var _ = EvTwo
