// Package wiring exercises the chaossite analyzer: SiteGood is
// installed and tested (clean); SiteDead is never passed to decide;
// SiteUntested is installed but no test references it; BadHook calls
// decide without the disarmed fast-path prologue.
package wiring

import "sync/atomic"

type Site uint8

const (
	SiteGood     Site = iota
	SiteDead          // want "chaos site SiteDead is never installed at a hook"
	SiteUntested      // want "chaos site SiteUntested is not exercised by any test"
)

type Injector struct{ thr [3]uint64 }

func (inj *Injector) decide(s Site, key uint64) bool { return key < inj.thr[s] }

var active atomic.Pointer[Injector]

func GoodHook(key uint64) bool {
	inj := active.Load()
	if inj == nil {
		return false
	}
	return inj.decide(SiteGood, key)
}

func UntestedHook(key uint64) bool {
	inj := active.Load()
	if inj == nil {
		return false
	}
	return inj.decide(SiteUntested, key)
}

func BadHook(key uint64) bool { // want "chaos hook BadHook must start with one atomic injector load"
	inj := active.Load()
	if key == 0 {
		return false
	}
	if inj == nil {
		return false
	}
	return inj.decide(SiteGood, key)
}
