package wiring

import "testing"

func TestSites(t *testing.T) {
	if SiteGood == Site(SiteDead) {
		t.Fatal("distinct sites")
	}
}
