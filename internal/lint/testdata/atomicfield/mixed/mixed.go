// Package mixed exercises the atomicfield analyzer: hits is accessed
// through sync/atomic in bump/read, so every other access must be
// atomic too; plain is never atomic and stays exempt, as do
// composite-literal initializers.
package mixed

import "sync/atomic"

type counter struct {
	hits  int64
	plain int64
}

func (c *counter) bump() { atomic.AddInt64(&c.hits, 1) }

func (c *counter) read() int64 { return atomic.LoadInt64(&c.hits) }

func (c *counter) racyRead() int64 {
	return c.hits // want "field counter.hits is accessed with sync/atomic elsewhere"
}

func (c *counter) racyWrite() {
	c.hits = 0 // want "field counter.hits is accessed with sync/atomic elsewhere"
}

func leak(c *counter) *int64 {
	return &c.hits // want "field counter.hits is accessed with sync/atomic elsewhere"
}

func (c *counter) fine() int64 { return c.plain }

func newCounter() *counter { return &counter{hits: 0, plain: 1} }

var _ = leak
var _ = newCounter
