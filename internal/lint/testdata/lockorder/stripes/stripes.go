// Package stripes exercises the lockorder analyzer: ad-hoc two-stripe
// and accumulating-loop acquisitions fire; single-stripe access,
// defer-unlock, the canonical mask walk, balanced snapshot loops and
// unlock-then-panic escape branches stay clean.
package stripes

import (
	"math/bits"
	"sync"
)

type shard struct {
	mu sync.Mutex
	n  int
}

type table struct {
	shards []shard
}

func (t *table) one(i int) {
	t.shards[i].mu.Lock()
	t.shards[i].n++
	t.shards[i].mu.Unlock()
}

func (t *table) deferred(i int) int {
	sh := &t.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.n
}

func (t *table) bad(i, j int) {
	t.shards[i].mu.Lock()
	t.shards[j].mu.Lock() // want "striped lock acquired while another stripe is held"
	t.shards[j].mu.Unlock()
	t.shards[i].mu.Unlock()
}

func (t *table) canonical(mask uint64) {
	for m := mask; m != 0; m &= m - 1 {
		t.shards[bits.TrailingZeros64(m)].mu.Lock()
	}
	for m := mask; m != 0; m &= m - 1 {
		t.shards[bits.TrailingZeros64(m)].mu.Unlock()
	}
}

func (t *table) snapshot() int {
	n := 0
	for i := range t.shards {
		t.shards[i].mu.Lock()
		n += t.shards[i].n
		t.shards[i].mu.Unlock()
	}
	return n
}

func (t *table) accumulate() {
	for i := range t.shards { // want "loop accumulates striped locks without the canonical ascending-index mask walk"
		t.shards[i].mu.Lock()
	}
	for i := range t.shards {
		t.shards[i].mu.Unlock()
	}
}

func (t *table) escape(i int) {
	sh := &t.shards[i]
	sh.mu.Lock()
	if sh.n < 0 {
		sh.mu.Unlock()
		panic("negative count")
	}
	sh.mu.Unlock()
}
