// Package discard exercises the submiterr analyzer: every discard
// shape fires, handled and captured errors stay clean, and a Submit
// without an error result is exempt.
package discard

type Ctx struct{}

func (c *Ctx) Submit(n int) error      { return nil }
func (c *Ctx) SubmitBatch(n int) error { return nil }
func (c *Ctx) SubmitQuiet(n int)       {}

func use(c *Ctx) {
	c.Submit(1)       // want "error returned by \\*Ctx.Submit is discarded"
	_ = c.Submit(2)   // want "error returned by \\*Ctx.Submit is blanked instead of handled"
	go c.Submit(3)    // want "error returned by \\*Ctx.Submit is discarded by go statement"
	defer c.Submit(4) // want "error returned by \\*Ctx.Submit is discarded by defer statement"
	c.SubmitBatch(5)  // want "error returned by \\*Ctx.SubmitBatch is discarded"
	if err := c.Submit(6); err != nil {
		panic(err)
	}
	err := c.Submit(7)
	_ = err
	c.SubmitQuiet(8)
}

var _ = use
