// Package unknown exercises the driver's suppression validation: a
// lint:allow naming an unregistered analyzer is rejected.
package unknown

type Ctx struct{}

func (c *Ctx) Submit(n int) error { return nil }

func use(c *Ctx) {
	c.Submit(1) //lint:allow nosuchanalyzer because it does not exist
}

var _ = use
