// Package badallow exercises the driver's suppression validation: a
// lint:allow without a reason is rejected.
package badallow

type Ctx struct{}

func (c *Ctx) Submit(n int) error { return nil }

func use(c *Ctx) {
	c.Submit(1) //lint:allow submiterr
}

var _ = use
