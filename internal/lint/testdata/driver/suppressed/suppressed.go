// Package suppressed exercises the driver's //lint:allow handling:
// both placements (end of line, line above) hide the finding.
package suppressed

type Ctx struct{}

func (c *Ctx) Submit(n int) error { return nil }

func use(c *Ctx) {
	c.Submit(1) //lint:allow submiterr fixture exercises end-of-line suppression
	//lint:allow submiterr fixture exercises line-above suppression
	c.Submit(2)
}

var _ = use
