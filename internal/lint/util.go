package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// calleeFunc resolves a call expression to the function or method it
// invokes, or nil for conversions, builtins and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// pkgPathOf returns the import path of an object's package, or "".
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// inModulePkg reports whether pkg belongs to the analyzed program: a
// package under the module path, or (for fixture programs without a
// go.mod) one of the loaded units' packages.
func inModulePkg(prog *Program, pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	if prog.ModulePath != "" {
		return pkg.Path() == prog.ModulePath ||
			len(pkg.Path()) > len(prog.ModulePath) && pkg.Path()[:len(prog.ModulePath)+1] == prog.ModulePath+"/"
	}
	for _, u := range prog.Units {
		if u.Pkg == pkg {
			return true
		}
	}
	return false
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// namedFrom reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func namedFrom(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && pkgPathOf(obj) == pkgPath
}

// fieldSelection returns the struct field a selector expression
// resolves to, or nil when sel is not a field access.
func fieldSelection(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// funcBodies collects the bodies of the unit's top-level functions (and
// methods) by name; several analyzers check "constant X is referenced
// inside function F".
func funcBodies(u *Unit) map[string][]*ast.FuncDecl {
	out := map[string][]*ast.FuncDecl{}
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				out[fd.Name.Name] = append(out[fd.Name.Name], fd)
			}
		}
	}
	return out
}

// usedObjPositions records the declaration positions of every object
// referenced inside node.
func usedObjPositions(info *types.Info, node ast.Node, into map[token.Pos]bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				into[obj.Pos()] = true
			}
		}
		return true
	})
}
