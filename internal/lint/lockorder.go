package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockorder enforces the AnalyzeBatch discipline on striped mutexes: a
// struct with a sync.Mutex that is laid out as a slice/array element
// (deps.shard, trace.stripe, the scheduler's per-worker deques) is a
// stripe set, and holding one stripe while acquiring another is a
// deadlock waiting for two submitters to pick opposite orders — unless
// the acquisition is the canonical ascending-index mask walk:
//
//	for m := mask; m != 0; m &= m - 1 {
//		t.shards[bits.TrailingZeros64(m)].mu.Lock()
//	}
//
// which always locks in ascending stripe index.  The analyzer walks
// each function symbolically, counting held striped locks along
// structured control flow: a second Lock while one is held is flagged,
// as is any loop that accumulates striped locks without the canonical
// mask shape.  Balanced per-iteration lock/unlock loops (snapshot
// loops like Tracker.Stats), defer-unlock, and unlock-then-panic
// escape branches all stay clean.
func init() {
	Register(&Analyzer{
		Name: "lockorder",
		Doc:  "multi-stripe lock acquisitions must follow the canonical ascending-index mask walk",
		Run:  runLockOrder,
	})
}

func runLockOrder(pass *Pass) error {
	striped := stripedTypes(pass.Unit.Pkg)
	if len(striped) == 0 {
		return nil
	}
	w := &lockWalker{pass: pass, striped: striped}
	for _, f := range pass.Unit.Files {
		if pass.Prog.TestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					w.walkStmts(fn.Body.List, 0)
				}
			case *ast.FuncLit:
				// Closures run on their own goroutine/stack frame as far
				// as lock discipline goes: analyze from zero held.
				w.walkStmts(fn.Body.List, 0)
			}
			return true
		})
	}
	return nil
}

// stripedTypes finds the package's stripe-set structs: named struct
// types carrying a sync.Mutex field that appear as the element type of
// a slice or array somewhere in the package's declared types.
func stripedTypes(pkg *types.Package) map[*types.Named]bool {
	scope := pkg.Scope()
	var withMutex []*types.Named
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if namedFrom(st.Field(i).Type(), "sync", "Mutex") {
				withMutex = append(withMutex, named)
				break
			}
		}
	}
	if len(withMutex) == 0 {
		return nil
	}
	striped := map[*types.Named]bool{}
	elem := func(t types.Type) types.Type {
		switch seq := t.(type) {
		case *types.Slice:
			return seq.Elem()
		case *types.Array:
			return seq.Elem()
		}
		return nil
	}
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			e := elem(st.Field(i).Type())
			if e == nil {
				continue
			}
			for _, cand := range withMutex {
				if types.Identical(e, cand) {
					striped[cand] = true
				}
			}
		}
	}
	return striped
}

type lockWalker struct {
	pass    *Pass
	striped map[*types.Named]bool
}

// stripedLockCall classifies stmt-level calls: mu.Lock()/mu.Unlock()
// where mu is the mutex field of a stripe-set struct.
func (w *lockWalker) stripedLockCall(call *ast.CallExpr) (lock, unlock bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Lock" && sel.Sel.Name != "Unlock" {
		return false, false
	}
	recv := ast.Unparen(sel.X)
	mutexSel, ok := recv.(*ast.SelectorExpr)
	if !ok {
		return false, false
	}
	tv, ok := w.pass.Unit.Info.Types[mutexSel.X]
	if !ok {
		return false, false
	}
	t := tv.Type
	if ptr, okp := t.(*types.Pointer); okp {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || !w.striped[named] {
		return false, false
	}
	return sel.Sel.Name == "Lock", sel.Sel.Name == "Unlock"
}

// isPanicCall reports a call to the panic builtin.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// walkStmts walks one statement list with held striped locks and
// returns the held count at the fall-through exit plus whether every
// path through the list terminates (return/panic/branch).
func (w *lockWalker) walkStmts(list []ast.Stmt, held int) (int, bool) {
	for _, s := range list {
		var terminated bool
		held, terminated = w.walkStmt(s, held)
		if terminated {
			return held, true
		}
	}
	return held, false
}

func (w *lockWalker) walkStmt(s ast.Stmt, held int) (int, bool) {
	switch stmt := s.(type) {
	case *ast.ExprStmt:
		call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
		if !ok {
			return held, false
		}
		if lock, unlock := w.stripedLockCall(call); lock {
			if held > 0 {
				w.pass.Reportf(call.Pos(), "striped lock acquired while another stripe is held; multi-stripe acquisition must use the canonical ascending-index mask walk")
			}
			return held + 1, false
		} else if unlock {
			return max(held-1, 0), false
		}
		if isPanicCall(w.pass.Unit.Info, call) {
			return held, true
		}
		return held, false
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the stripe held to function exit:
		// the held count stays, which is exactly the discipline — no
		// further stripes may be taken under it.
		return held, false
	case *ast.ReturnStmt:
		return held, true
	case *ast.BranchStmt:
		// break/continue/goto leave the list; treat as terminating this
		// path (conservative for reporting, not for held counts).
		return held, true
	case *ast.BlockStmt:
		return w.walkStmts(stmt.List, held)
	case *ast.LabeledStmt:
		return w.walkStmt(stmt.Stmt, held)
	case *ast.IfStmt:
		thenHeld, thenTerm := w.walkStmts(stmt.Body.List, held)
		elseHeld, elseTerm := held, false
		if stmt.Else != nil {
			elseHeld, elseTerm = w.walkStmt(stmt.Else, held)
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		default:
			return max(thenHeld, elseHeld), false
		}
	case *ast.ForStmt:
		return w.walkFor(stmt, held)
	case *ast.RangeStmt:
		return w.walkLoopBody(stmt.Body, stmt.Pos(), held)
	case *ast.SwitchStmt:
		return w.walkCases(stmt.Body, held)
	case *ast.TypeSwitchStmt:
		return w.walkCases(stmt.Body, held)
	case *ast.SelectStmt:
		return w.walkCases(stmt.Body, held)
	default:
		return held, false
	}
}

// walkCases merges the clauses of a switch/select like if branches.
func (w *lockWalker) walkCases(body *ast.BlockStmt, held int) (int, bool) {
	merged := held
	for _, clause := range body.List {
		var list []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			list = c.Body
		case *ast.CommClause:
			list = c.Body
		}
		if h, term := w.walkStmts(list, held); !term {
			merged = max(merged, h)
		}
	}
	return merged, false
}

// walkFor handles for-loops: the canonical mask walk is recognized and
// counted as acquiring (or releasing) one logical stripe set; any
// other loop whose body accumulates striped locks is flagged.
func (w *lockWalker) walkFor(stmt *ast.ForStmt, held int) (int, bool) {
	if w.isCanonicalMaskLoop(stmt) {
		locks, unlocks := loopLockKind(w, stmt.Body)
		switch {
		case locks:
			if held > 0 {
				w.pass.Reportf(stmt.Pos(), "canonical mask walk entered while a stripe is already held")
			}
			return held + 1, false
		case unlocks:
			return max(held-1, 0), false
		}
		return held, false
	}
	return w.walkLoopBody(stmt.Body, stmt.Pos(), held)
}

// walkLoopBody analyzes a non-canonical loop body: per-iteration
// balanced lock/unlock is fine, a net accumulation is not.
func (w *lockWalker) walkLoopBody(body *ast.BlockStmt, pos token.Pos, held int) (int, bool) {
	after, _ := w.walkStmts(body.List, held)
	if after > held {
		w.pass.Reportf(pos, "loop accumulates striped locks without the canonical ascending-index mask walk")
	}
	return max(after, held), false
}

// isCanonicalMaskLoop matches the ascending-index acquisition shape:
// post statement `m &= m - 1` and a stripe index derived from
// bits.TrailingZeros* inside the body.
func (w *lockWalker) isCanonicalMaskLoop(stmt *ast.ForStmt) bool {
	post, ok := stmt.Post.(*ast.AssignStmt)
	if !ok || post.Tok != token.AND_ASSIGN {
		return false
	}
	usesTZ := false
	ast.Inspect(stmt.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if name := sel.Sel.Name; len(name) >= 13 && name[:13] == "TrailingZeros" {
				if fn, okf := w.pass.Unit.Info.Uses[sel.Sel].(*types.Func); okf && pkgPathOf(fn) == "math/bits" {
					usesTZ = true
				}
			}
		}
		return !usesTZ
	})
	return usesTZ
}

// loopLockKind reports whether a canonical loop body locks or unlocks
// stripes.
func loopLockKind(w *lockWalker, body *ast.BlockStmt) (locks, unlocks bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			l, u := w.stripedLockCall(call)
			locks, unlocks = locks || l, unlocks || u
		}
		return true
	})
	return locks, unlocks
}
