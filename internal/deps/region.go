// Package deps implements the SMPSs runtime dependency analysis (paper
// §II): every task invocation declares the address, size and
// directionality of each parameter, and the tracker turns that into true
// (read-after-write) dependency edges in the task graph.
//
// False dependencies (write-after-read and write-after-write) are removed
// by renaming: the tracker transparently allocates a fresh instance of the
// data — the same technique superscalar processors apply to registers —
// so temporaries and work arrays never serialize the graph.
//
// The package also implements the array-region language extension of
// paper §V.A, which the 2008 runtime proposed but did not ship: accesses
// may name an N-dimensional sub-rectangle of an object, and only
// overlapping accesses are ordered.
package deps

// Region selects a rectangular sub-array of an object, as defined in
// paper §V.A: a list of inclusive (lower, upper) bound pairs, one per
// dimension.  The zero Region (no bounds) selects the whole object,
// matching the paper's empty specifier "{}".
//
// Bounds are expressed in element units of the object's declared shape;
// the tracker only ever compares regions of the same object, so it never
// needs to know element sizes.
type Region struct {
	// Lo and Hi hold the inclusive per-dimension bounds.  len(Lo) must
	// equal len(Hi).  Empty slices mean the full object.
	Lo, Hi []int64
}

// Full is the region selecting the entire object.
var Full = Region{}

// Interval returns a one-dimensional region covering elements lo..hi
// inclusive, the common case for flat arrays ("data{i..j}" in the paper's
// syntax).
func Interval(lo, hi int64) Region {
	return Region{Lo: []int64{lo}, Hi: []int64{hi}}
}

// Span returns a one-dimensional region of length n starting at lo,
// mirroring the paper's "{l:L}" specifier.
func Span(lo, n int64) Region {
	return Interval(lo, lo+n-1)
}

// Rect returns an N-dimensional region from per-dimension (lo, hi)
// inclusive pairs.  Rect(l0, h0, l1, h1) selects rows l0..h0 and columns
// l1..h1.  It panics if given an odd number of bounds.
func Rect(bounds ...int64) Region {
	if len(bounds)%2 != 0 {
		panic("deps: Rect requires an even number of bounds")
	}
	n := len(bounds) / 2
	r := Region{Lo: make([]int64, n), Hi: make([]int64, n)}
	for i := 0; i < n; i++ {
		r.Lo[i] = bounds[2*i]
		r.Hi[i] = bounds[2*i+1]
	}
	return r
}

// IsFull reports whether the region selects the whole object.
func (r Region) IsFull() bool { return len(r.Lo) == 0 }

// Empty reports whether the region selects no elements (some dimension
// has Hi < Lo).
func (r Region) Empty() bool {
	for i := range r.Lo {
		if r.Hi[i] < r.Lo[i] {
			return true
		}
	}
	return false
}

// Overlaps reports whether two regions of the same object share at least
// one element.  Rectangles overlap iff their bounds intersect in every
// dimension.  A full region overlaps everything non-empty, and regions
// with mismatched dimensionality are conservatively treated as
// overlapping (the tracker must never miss a dependency).
func (r Region) Overlaps(s Region) bool {
	if r.Empty() || s.Empty() {
		return false
	}
	if r.IsFull() || s.IsFull() {
		return true
	}
	if len(r.Lo) != len(s.Lo) {
		return true
	}
	for i := range r.Lo {
		if r.Hi[i] < s.Lo[i] || s.Hi[i] < r.Lo[i] {
			return false
		}
	}
	return true
}

// Contains reports whether r covers every element of s.  A full region
// contains everything; nothing but a full region contains a full region.
// Mismatched dimensionality is conservatively reported as not containing.
func (r Region) Contains(s Region) bool {
	if r.IsFull() {
		return true
	}
	if s.IsFull() {
		return false
	}
	if len(r.Lo) != len(s.Lo) {
		return false
	}
	for i := range r.Lo {
		if s.Lo[i] < r.Lo[i] || s.Hi[i] > r.Hi[i] {
			return false
		}
	}
	return true
}
