package deps

import (
	"testing"
	"testing/quick"
)

func TestIntervalSpanRect(t *testing.T) {
	i := Interval(3, 7)
	if i.Lo[0] != 3 || i.Hi[0] != 7 {
		t.Fatalf("Interval = %+v", i)
	}
	s := Span(3, 5) // {3:5} → 3..7
	if s.Lo[0] != 3 || s.Hi[0] != 7 {
		t.Fatalf("Span = %+v", s)
	}
	r := Rect(0, 1, 10, 20)
	if len(r.Lo) != 2 || r.Lo[1] != 10 || r.Hi[1] != 20 {
		t.Fatalf("Rect = %+v", r)
	}
}

func TestRectPanicsOnOddBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Rect with odd bounds did not panic")
		}
	}()
	Rect(1, 2, 3)
}

func TestFullRegion(t *testing.T) {
	if !Full.IsFull() {
		t.Fatalf("Full.IsFull() = false")
	}
	if Full.Empty() {
		t.Fatalf("Full.Empty() = true")
	}
	if !Full.Overlaps(Interval(5, 9)) || !Interval(5, 9).Overlaps(Full) {
		t.Fatalf("full region must overlap any non-empty region")
	}
	if !Full.Contains(Interval(0, 100)) {
		t.Fatalf("full region must contain any region")
	}
	if Interval(0, 100).Contains(Full) {
		t.Fatalf("interval must not contain the full region")
	}
}

func TestEmptyRegionNeverOverlaps(t *testing.T) {
	e := Interval(5, 2)
	if !e.Empty() {
		t.Fatalf("Hi<Lo region should be empty")
	}
	if e.Overlaps(Full) || Full.Overlaps(e) || e.Overlaps(Interval(0, 10)) {
		t.Fatalf("empty region must overlap nothing")
	}
}

func TestIntervalOverlap(t *testing.T) {
	cases := []struct {
		a, b Region
		want bool
	}{
		{Interval(0, 4), Interval(5, 9), false},
		{Interval(0, 4), Interval(4, 9), true}, // inclusive bounds touch
		{Interval(0, 9), Interval(3, 5), true},
		{Interval(3, 5), Interval(0, 9), true},
		{Interval(10, 20), Interval(0, 9), false},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v overlaps %v = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("overlap not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestRectOverlap(t *testing.T) {
	a := Rect(0, 5, 0, 5)
	if !a.Overlaps(Rect(5, 9, 5, 9)) {
		t.Fatalf("corner-touching rects must overlap (inclusive bounds)")
	}
	if a.Overlaps(Rect(6, 9, 0, 5)) {
		t.Fatalf("rects disjoint in dim 0 must not overlap")
	}
	if a.Overlaps(Rect(0, 5, 6, 9)) {
		t.Fatalf("rects disjoint in dim 1 must not overlap")
	}
}

func TestMismatchedDimsConservative(t *testing.T) {
	if !Interval(0, 1).Overlaps(Rect(100, 200, 100, 200)) {
		t.Fatalf("mismatched dims must conservatively overlap")
	}
	if Interval(0, 10).Contains(Rect(1, 2, 1, 2)) {
		t.Fatalf("mismatched dims must conservatively not contain")
	}
}

func TestContains(t *testing.T) {
	if !Interval(0, 10).Contains(Interval(3, 5)) {
		t.Fatalf("0..10 should contain 3..5")
	}
	if Interval(3, 5).Contains(Interval(0, 10)) {
		t.Fatalf("3..5 should not contain 0..10")
	}
	if !Rect(0, 9, 0, 9).Contains(Rect(1, 2, 3, 4)) {
		t.Fatalf("rect containment failed")
	}
}

func TestOverlapSymmetryProperty(t *testing.T) {
	f := func(a0, a1, b0, b1 int16) bool {
		a := Interval(int64(min16(a0, a1)), int64(max16(a0, a1)))
		b := Interval(int64(min16(b0, b1)), int64(max16(b0, b1)))
		return a.Overlaps(b) == b.Overlaps(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestContainsImpliesOverlapProperty(t *testing.T) {
	f := func(a0, a1, b0, b1 int16) bool {
		a := Interval(int64(min16(a0, a1)), int64(max16(a0, a1)))
		b := Interval(int64(min16(b0, b1)), int64(max16(b0, b1)))
		if a.Contains(b) {
			return a.Overlaps(b)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapMatchesBruteForceProperty(t *testing.T) {
	// Compare interval overlap against element-by-element brute force on
	// a small universe.
	f := func(a0, a1, b0, b1 uint8) bool {
		al, ah := int64(a0%32), int64(a1%32)
		bl, bh := int64(b0%32), int64(b1%32)
		if ah < al {
			al, ah = ah, al
		}
		if bh < bl {
			bl, bh = bh, bl
		}
		a, b := Interval(al, ah), Interval(bl, bh)
		brute := false
		for x := int64(0); x < 32; x++ {
			if x >= al && x <= ah && x >= bl && x <= bh {
				brute = true
				break
			}
		}
		return a.Overlaps(b) == brute
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func min16(a, b int16) int16 {
	if a < b {
		return a
	}
	return b
}

func max16(a, b int16) int16 {
	if a > b {
		return a
	}
	return b
}

func TestModeStrings(t *testing.T) {
	if ModeIn.String() != "input" || ModeOut.String() != "output" || ModeInOut.String() != "inout" {
		t.Fatalf("mode strings wrong: %v %v %v", ModeIn, ModeOut, ModeInOut)
	}
	if Mode(7).String() != "mode(?)" {
		t.Fatalf("unknown mode string: %v", Mode(7))
	}
	if ModeIn.Writes() || !ModeIn.Reads() {
		t.Fatalf("ModeIn directionality wrong")
	}
	if !ModeOut.Writes() || ModeOut.Reads() {
		t.Fatalf("ModeOut directionality wrong")
	}
	if !ModeInOut.Writes() || !ModeInOut.Reads() {
		t.Fatalf("ModeInOut directionality wrong")
	}
}
