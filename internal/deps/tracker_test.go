package deps

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/graph"
)

// harness bundles a graph, tracker and a readiness log for dependency
// semantics tests.  Nodes are created, analyzed and sealed through it.
type harness struct {
	g  *graph.Graph
	tr *Tracker

	mu    sync.Mutex
	ready []int64
}

func newHarness() *harness {
	h := &harness{}
	h.g = graph.New(func(n *graph.Node, by int) {
		h.mu.Lock()
		h.ready = append(h.ready, n.ID)
		h.mu.Unlock()
	})
	h.tr = NewTracker(h.g)
	return h
}

func (h *harness) isReady(n *graph.Node) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, id := range h.ready {
		if id == n.ID {
			return true
		}
	}
	return false
}

// task creates a node, runs the given accesses through the tracker and
// seals it, returning the node and per-access resolutions.
func (h *harness) task(accs ...Access) (*graph.Node, []Resolution) {
	n := h.g.AddNode(0, "t", false, nil)
	res := make([]Resolution, len(accs))
	for i, a := range accs {
		res[i] = h.tr.Analyze(n, a)
	}
	h.g.Seal(n)
	return n, res
}

func f32Access(buf []float32, mode Mode) Access {
	return Access{
		Key:   keyOf(buf),
		Mode:  mode,
		Data:  buf,
		Alloc: func() any { return make([]float32, len(buf)) },
		Copy:  func(dst, src any) { copy(dst.([]float32), src.([]float32)) },
	}
}

func f32RegionAccess(buf []float32, mode Mode, r Region) Access {
	a := f32Access(buf, mode)
	a.Region = r
	return a
}

// keyOf mirrors the runtime's object identity: the base address of the
// slice's backing array.
func keyOf(buf []float32) uintptr {
	if len(buf) == 0 {
		return 0
	}
	return reflect.ValueOf(buf).Pointer()
}

func TestRAWEdge(t *testing.T) {
	h := newHarness()
	x := make([]float32, 4)
	w, _ := h.task(f32Access(x, ModeOut))
	r, _ := h.task(f32Access(x, ModeIn))
	if h.isReady(r) {
		t.Fatalf("reader ready before writer completed")
	}
	h.g.Complete(w, 0)
	if !h.isReady(r) {
		t.Fatalf("reader not released by writer completion")
	}
	st := h.tr.Stats()
	if st.TrueEdges != 1 || st.FalseEdges != 0 || st.Renames != 0 {
		t.Fatalf("stats = %+v, want 1 true edge only", st)
	}
}

func TestParallelReaders(t *testing.T) {
	h := newHarness()
	x := make([]float32, 4)
	w, _ := h.task(f32Access(x, ModeOut))
	r1, _ := h.task(f32Access(x, ModeIn))
	r2, _ := h.task(f32Access(x, ModeIn))
	h.g.Complete(w, 0)
	if !h.isReady(r1) || !h.isReady(r2) {
		t.Fatalf("independent readers must be released together")
	}
	if st := h.tr.Stats(); st.TrueEdges != 2 {
		t.Fatalf("stats = %+v, want 2 true edges", st)
	}
}

func TestOutRenamesOverPendingReader(t *testing.T) {
	h := newHarness()
	x := make([]float32, 4)
	w1, res1 := h.task(f32Access(x, ModeOut))
	r, resR := h.task(f32Access(x, ModeIn))
	w2, res2 := h.task(f32Access(x, ModeOut))

	// w2 must not wait for the pending reader: renaming breaks the WAR.
	if !h.isReady(w2) {
		// w2 has no edges at all; it must be ready immediately.
		t.Fatalf("renamed output writer must be ready immediately")
	}
	if !res2[0].Renamed {
		t.Fatalf("second writer should have been renamed")
	}
	if &res2[0].Instance.([]float32)[0] == &res1[0].Instance.([]float32)[0] {
		t.Fatalf("renamed instance must be distinct storage")
	}
	// The reader keeps seeing the old version's storage.
	if &resR[0].Instance.([]float32)[0] != &res1[0].Instance.([]float32)[0] {
		t.Fatalf("reader must see the version current at its submission")
	}
	st := h.tr.Stats()
	if st.Renames != 1 || st.FalseEdges != 0 {
		t.Fatalf("stats = %+v, want 1 rename, 0 false edges", st)
	}
	_ = w1
	_ = r
}

func TestOutInPlaceWhenQuiescent(t *testing.T) {
	h := newHarness()
	x := make([]float32, 4)
	w1, res1 := h.task(f32Access(x, ModeOut))
	h.g.Complete(w1, 0)
	_, res2 := h.task(f32Access(x, ModeOut))
	if res2[0].Renamed {
		t.Fatalf("no hazard: writer must reuse storage in place")
	}
	if &res2[0].Instance.([]float32)[0] != &res1[0].Instance.([]float32)[0] {
		t.Fatalf("in-place write must reuse the same storage")
	}
}

func TestInOutChainsSerially(t *testing.T) {
	h := newHarness()
	x := make([]float32, 4)
	t1, _ := h.task(f32Access(x, ModeInOut))
	t2, _ := h.task(f32Access(x, ModeInOut))
	t3, _ := h.task(f32Access(x, ModeInOut))
	if h.isReady(t2) || h.isReady(t3) {
		t.Fatalf("inout chain must serialize (RAW)")
	}
	h.g.Complete(t1, 0)
	if !h.isReady(t2) || h.isReady(t3) {
		t.Fatalf("chain must release one link at a time")
	}
	h.g.Complete(t2, 0)
	if !h.isReady(t3) {
		t.Fatalf("third link not released")
	}
	if st := h.tr.Stats(); st.TrueEdges != 2 || st.Renames != 0 {
		t.Fatalf("stats = %+v, want 2 true edges and no renames", st)
	}
}

func TestInOutRenamesOverPendingReader(t *testing.T) {
	h := newHarness()
	x := []float32{1, 2, 3, 4}
	w, _ := h.task(f32Access(x, ModeOut))
	r, _ := h.task(f32Access(x, ModeIn))
	u, resU := h.task(f32Access(x, ModeInOut))

	if !resU[0].Renamed || resU[0].CopyFrom == nil || resU[0].Copy == nil {
		t.Fatalf("inout over pending reader must rename with a seed copy: %+v", resU[0])
	}
	// u still has the RAW edge on w, but no edge on r.
	if h.isReady(u) {
		t.Fatalf("u must wait for its RAW producer")
	}
	h.g.Complete(w, 0)
	if !h.isReady(u) {
		t.Fatalf("u must be released by producer alone; reader r=%v must not gate it", r.ID)
	}
	if st := h.tr.Stats(); st.RenameCopies != 1 {
		t.Fatalf("stats = %+v, want 1 rename copy", st)
	}
}

func TestInOutInPlaceWithoutReaders(t *testing.T) {
	h := newHarness()
	x := make([]float32, 4)
	w, _ := h.task(f32Access(x, ModeOut))
	_, resU := h.task(f32Access(x, ModeInOut))
	if resU[0].Renamed {
		t.Fatalf("inout with no pending readers must update in place")
	}
	h.g.Complete(w, 0)
}

func TestDisableRenamingAddsFalseEdges(t *testing.T) {
	h := newHarness()
	h.tr.DisableRenaming = true
	x := make([]float32, 4)
	w1, _ := h.task(f32Access(x, ModeOut))
	r, _ := h.task(f32Access(x, ModeIn))
	w2, res2 := h.task(f32Access(x, ModeOut))

	if res2[0].Renamed {
		t.Fatalf("renaming disabled but instance renamed")
	}
	if h.isReady(w2) {
		t.Fatalf("w2 must wait on WAR/WAW edges when renaming is off")
	}
	h.g.Complete(w1, 0)
	if h.isReady(w2) {
		t.Fatalf("w2 must still wait on the pending reader")
	}
	h.g.Complete(r, 0)
	if !h.isReady(w2) {
		t.Fatalf("w2 not released after reader completed")
	}
	st := h.tr.Stats()
	if st.FalseEdges != 2 || st.Renames != 0 {
		t.Fatalf("stats = %+v, want 2 false edges (WAW+WAR)", st)
	}
}

func TestNewObjectReadIsReadyImmediately(t *testing.T) {
	h := newHarness()
	x := make([]float32, 4)
	r, res := h.task(f32Access(x, ModeIn))
	if !h.isReady(r) {
		t.Fatalf("reading pre-existing data must not block")
	}
	if &res[0].Instance.([]float32)[0] != &x[0] {
		t.Fatalf("initial version must be the user's storage")
	}
}

func TestRegionDisjointWritesParallel(t *testing.T) {
	h := newHarness()
	x := make([]float32, 100)
	a, _ := h.task(f32RegionAccess(x, ModeInOut, Interval(0, 49)))
	b, _ := h.task(f32RegionAccess(x, ModeInOut, Interval(50, 99)))
	if !h.isReady(a) || !h.isReady(b) {
		t.Fatalf("disjoint region writes must run in parallel")
	}
}

func TestRegionOverlappingWritesOrdered(t *testing.T) {
	h := newHarness()
	x := make([]float32, 100)
	a, _ := h.task(f32RegionAccess(x, ModeInOut, Interval(0, 60)))
	b, _ := h.task(f32RegionAccess(x, ModeInOut, Interval(50, 99)))
	if h.isReady(b) {
		t.Fatalf("overlapping region writes must be ordered")
	}
	h.g.Complete(a, 0)
	if !h.isReady(b) {
		t.Fatalf("b not released")
	}
}

func TestRegionReadersShareNoEdges(t *testing.T) {
	h := newHarness()
	x := make([]float32, 100)
	w, _ := h.task(f32RegionAccess(x, ModeOut, Interval(0, 99)))
	r1, _ := h.task(f32RegionAccess(x, ModeIn, Interval(0, 40)))
	r2, _ := h.task(f32RegionAccess(x, ModeIn, Interval(10, 50)))
	h.g.Complete(w, 0)
	if !h.isReady(r1) || !h.isReady(r2) {
		t.Fatalf("overlapping region reads must not order each other")
	}
}

func TestRegionMergePattern(t *testing.T) {
	// The mergesort pattern of paper Fig. 7: two quicksorts on disjoint
	// halves, then a merge reading both and writing a destination.
	h := newHarness()
	data := make([]float32, 100)
	dest := make([]float32, 100)
	q1, _ := h.task(f32RegionAccess(data, ModeInOut, Interval(0, 49)))
	q2, _ := h.task(f32RegionAccess(data, ModeInOut, Interval(50, 99)))
	m, _ := h.task(
		f32RegionAccess(data, ModeIn, Interval(0, 49)),
		f32RegionAccess(data, ModeIn, Interval(50, 99)),
		f32RegionAccess(dest, ModeOut, Interval(0, 99)),
	)
	if !h.isReady(q1) || !h.isReady(q2) {
		t.Fatalf("quicksort halves must be parallel")
	}
	if h.isReady(m) {
		t.Fatalf("merge must wait for both halves")
	}
	h.g.Complete(q1, 0)
	if h.isReady(m) {
		t.Fatalf("merge must wait for the second half too")
	}
	h.g.Complete(q2, 0)
	if !h.isReady(m) {
		t.Fatalf("merge not released after both halves")
	}
}

func TestVersionedObjectFlipsToRegioned(t *testing.T) {
	h := newHarness()
	x := make([]float32, 100)
	w, _ := h.task(f32Access(x, ModeOut)) // versioned full write
	r, _ := h.task(f32RegionAccess(x, ModeIn, Interval(0, 10)))
	if h.isReady(r) {
		t.Fatalf("region read must see the pending full-object writer")
	}
	h.g.Complete(w, 0)
	if !h.isReady(r) {
		t.Fatalf("region read not released")
	}
	if st := h.tr.Stats(); st.RegionObjects != 1 {
		t.Fatalf("stats = %+v, want 1 region object", st)
	}
}

func TestRegionedObjectNeverRenames(t *testing.T) {
	h := newHarness()
	x := make([]float32, 100)
	_, _ = h.task(f32RegionAccess(x, ModeIn, Interval(0, 10)))
	_, res := h.task(f32Access(x, ModeOut)) // full write on regioned object
	if res[0].Renamed {
		t.Fatalf("regioned objects must not rename")
	}
	if st := h.tr.Stats(); st.FalseEdges == 0 {
		t.Fatalf("full write over pending region reader must add a WAR edge")
	}
}

func TestPendingWritersVersioned(t *testing.T) {
	h := newHarness()
	x := make([]float32, 4)
	w, _ := h.task(f32Access(x, ModeOut))
	ps := h.tr.PendingWriters(keyOf(x), Full)
	if len(ps) != 1 || ps[0] != w {
		t.Fatalf("PendingWriters = %v, want [w]", ps)
	}
	h.g.Complete(w, 0)
	if ps := h.tr.PendingWriters(keyOf(x), Full); len(ps) != 0 {
		t.Fatalf("PendingWriters after completion = %v, want empty", ps)
	}
}

func TestPendingWritersRegioned(t *testing.T) {
	h := newHarness()
	x := make([]float32, 100)
	a, _ := h.task(f32RegionAccess(x, ModeInOut, Interval(0, 49)))
	b, _ := h.task(f32RegionAccess(x, ModeInOut, Interval(50, 99)))
	ps := h.tr.PendingWriters(keyOf(x), Interval(0, 10))
	if len(ps) != 1 || ps[0] != a {
		t.Fatalf("PendingWriters(0..10) = %v, want [a]", ps)
	}
	ps = h.tr.PendingWriters(keyOf(x), Full)
	if len(ps) != 2 {
		t.Fatalf("PendingWriters(full) = %v, want both", ps)
	}
	h.g.Complete(a, 0)
	h.g.Complete(b, 0)
}

func TestPendingWritersUnknownObject(t *testing.T) {
	h := newHarness()
	if ps := h.tr.PendingWriters(0xdead, Full); ps != nil {
		t.Fatalf("unknown object must have no pending writers")
	}
}

func TestCurrentInstanceFollowsRenames(t *testing.T) {
	h := newHarness()
	x := []float32{1, 2, 3, 4}
	w1, _ := h.task(f32Access(x, ModeOut))
	_, _ = h.task(f32Access(x, ModeIn))
	_, res2 := h.task(f32Access(x, ModeOut)) // renamed
	cur := h.tr.CurrentInstance(keyOf(x))
	if &cur.([]float32)[0] != &res2[0].Instance.([]float32)[0] {
		t.Fatalf("CurrentInstance must be the latest renamed version")
	}
	if h.tr.CurrentInstance(0xbeef) != nil {
		t.Fatalf("unknown key must return nil")
	}
	_ = w1
}

func TestForgetDropsState(t *testing.T) {
	h := newHarness()
	x := make([]float32, 4)
	w, _ := h.task(f32Access(x, ModeOut))
	h.tr.Forget(keyOf(x))
	r, _ := h.task(f32Access(x, ModeIn))
	if !h.isReady(r) {
		t.Fatalf("after Forget the object must be fresh (no deps)")
	}
	h.g.Complete(w, 0)
}

func TestDistinctObjectsIndependent(t *testing.T) {
	h := newHarness()
	x := make([]float32, 4)
	y := make([]float32, 4)
	_, _ = h.task(f32Access(x, ModeInOut))
	b, _ := h.task(f32Access(y, ModeInOut))
	if !h.isReady(b) {
		t.Fatalf("tasks on distinct objects must be independent")
	}
	if st := h.tr.Stats(); st.Objects != 2 {
		t.Fatalf("stats = %+v, want 2 objects", st)
	}
}

func TestCompletedPredecessorsPrunedLazily(t *testing.T) {
	// After readers complete, a subsequent Out must reuse storage in
	// place (no rename) because pruning removes the dead readers.
	h := newHarness()
	x := make([]float32, 4)
	w, _ := h.task(f32Access(x, ModeOut))
	r, _ := h.task(f32Access(x, ModeIn))
	h.g.Complete(w, 0)
	h.g.Complete(r, 0)
	_, res := h.task(f32Access(x, ModeOut))
	if res[0].Renamed {
		t.Fatalf("no live readers: must not rename")
	}
}

func TestConcurrentAnalyzeAndComplete(t *testing.T) {
	// Stress Analyze racing with completions: the lazy producer/reader
	// pruning reads node state that a completer goroutine flips
	// concurrently.  Run with -race to validate the documented thread
	// safety.
	const nTasks = 2000
	ready := make(chan *graph.Node, nTasks)
	g := graph.New(func(n *graph.Node, by int) { ready <- n })
	tr := NewTracker(g)

	completerDone := make(chan struct{})
	go func() {
		defer close(completerDone)
		for i := 0; i < nTasks; i++ {
			g.Complete(<-ready, 0)
		}
	}()

	bufs := make([][]float32, 4)
	for i := range bufs {
		bufs[i] = make([]float32, 4)
	}
	for i := 0; i < nTasks; i++ {
		n := g.AddNode(0, "t", false, nil)
		tr.Analyze(n, f32Access(bufs[i%len(bufs)], Mode(i%3)))
		g.Seal(n)
	}
	<-completerDone
	if g.Open() != 0 {
		t.Fatalf("open = %d after draining", g.Open())
	}
	st := tr.Stats()
	if st.Objects != int64(len(bufs)) {
		t.Fatalf("objects = %d, want %d", st.Objects, len(bufs))
	}
}

func TestGemmAccumulationChain(t *testing.T) {
	// Fig. 1 pattern: k iterations of sgemm_t(A[k], B[k], inout C) form a
	// chain of length k on C, and all chains on distinct C blocks are
	// independent.
	h := newHarness()
	c1 := make([]float32, 4)
	c2 := make([]float32, 4)
	var chain1 []*graph.Node
	for k := 0; k < 3; k++ {
		a := make([]float32, 4)
		b := make([]float32, 4)
		n, _ := h.task(f32Access(a, ModeIn), f32Access(b, ModeIn), f32Access(c1, ModeInOut))
		chain1 = append(chain1, n)
	}
	first2, _ := h.task(f32Access(make([]float32, 4), ModeIn), f32Access(make([]float32, 4), ModeIn), f32Access(c2, ModeInOut))

	if !h.isReady(chain1[0]) || h.isReady(chain1[1]) || h.isReady(chain1[2]) {
		t.Fatalf("C chain must serialize")
	}
	if !h.isReady(first2) {
		t.Fatalf("distinct C blocks must be independent")
	}
	h.g.Complete(chain1[0], 0)
	if !h.isReady(chain1[1]) {
		t.Fatalf("chain link 2 not released")
	}
}
