package deps

import (
	"sync"
	"testing"

	"repro/internal/graph"
)

// ptrOf returns the base address of a resolution's []float32 instance.
func ptrOf(inst any) *float32 { return &inst.([]float32)[0] }

// TestRenameReusesPooledStorage walks the pooled lifecycle end to end:
// the first rename allocates fresh storage (miss), the superseded
// version's instance returns to the pool when its last consumer
// completes, and the next rename of the same size class is served from
// the pool (hit) with the exact recycled backing array.
func TestRenameReusesPooledStorage(t *testing.T) {
	h := newHarness()
	x := make([]float32, 8)

	w1, _ := h.task(f32Access(x, ModeOut)) // in place on the initial version
	r1, _ := h.task(f32Access(x, ModeIn))
	w2, res2 := h.task(f32Access(x, ModeOut)) // hazard (r1 live): rename, miss
	if !res2[0].Renamed {
		t.Fatalf("expected rename over pending reader")
	}
	h.g.Complete(w1, 0)
	h.g.Complete(r1, 0)
	h.g.Complete(w2, 0)

	r2, _ := h.task(f32Access(x, ModeIn))
	w3, res3 := h.task(f32Access(x, ModeOut)) // hazard (r2 live): rename, miss
	if !res3[0].Renamed {
		t.Fatalf("expected second rename")
	}
	if ps := h.tr.PoolStats(); ps.Hits != 0 || ps.Misses != 2 {
		t.Fatalf("pool stats before reclamation = %+v, want 0 hits / 2 misses", ps)
	}
	// r2 was the last consumer of the superseded version holding the
	// first renamed instance; completing it reclaims that instance.
	h.g.Complete(r2, 0)
	h.g.Complete(w3, 0)
	if ps := h.tr.PoolStats(); ps.Releases != 1 {
		t.Fatalf("pool stats after reclamation = %+v, want 1 release", ps)
	}

	r3, _ := h.task(f32Access(x, ModeIn))
	w4, res4 := h.task(f32Access(x, ModeOut)) // hazard (r3 live): rename, HIT
	if !res4[0].Renamed {
		t.Fatalf("expected third rename")
	}
	if ps := h.tr.PoolStats(); ps.Hits != 1 || ps.Misses != 2 {
		t.Fatalf("pool stats after recycled rename = %+v, want 1 hit / 2 misses", ps)
	}
	if ptrOf(res4[0].Instance) != ptrOf(res2[0].Instance) {
		t.Fatalf("recycled rename must reuse the reclaimed backing array")
	}
	h.g.Complete(r3, 0)
	h.g.Complete(w4, 0)
}

// TestCopyElisionCounters verifies the dead-hazard fast path: a write
// over a task-written version whose producer completed and whose
// readers drained proceeds in place and is counted as elided, for both
// output and inout parameters.
func TestCopyElisionCounters(t *testing.T) {
	h := newHarness()
	x := make([]float32, 8)
	w1, res1 := h.task(f32Access(x, ModeOut))
	h.g.Complete(w1, 0)

	w2, res2 := h.task(f32Access(x, ModeOut))
	if res2[0].Renamed || ptrOf(res2[0].Instance) != ptrOf(res1[0].Instance) {
		t.Fatalf("dead WAW must write in place")
	}
	if st := h.tr.Stats(); st.RenamesElided != 1 {
		t.Fatalf("stats = %+v, want 1 elided rename", st)
	}
	h.g.Complete(w2, 0)

	_, res3 := h.task(f32Access(x, ModeInOut))
	if res3[0].Renamed || res3[0].CopyFrom != nil {
		t.Fatalf("dead-hazard inout must update in place with no seed copy")
	}
	if st := h.tr.Stats(); st.RenamesElided != 2 {
		t.Fatalf("stats = %+v, want 2 elided renames", st)
	}
	// A first write to never-task-written data is not an elision.
	y := make([]float32, 8)
	h.task(f32Access(y, ModeOut))
	if st := h.tr.Stats(); st.RenamesElided != 2 {
		t.Fatalf("initial write must not count as elided: %+v", st)
	}
}

// TestRenamedInOutPinsCopySource checks that the previous version's
// instance cannot be recycled between a renamed-inout analysis and the
// consuming task's completion: the seed copy at task start reads it.
func TestRenamedInOutPinsCopySource(t *testing.T) {
	h := newHarness()
	x := []float32{1, 2, 3, 4}
	w1, _ := h.task(f32Access(x, ModeOut))
	r0, _ := h.task(f32Access(x, ModeIn))
	w2, res2 := h.task(f32Access(x, ModeOut)) // rename #1: instance A
	if !res2[0].Renamed {
		t.Fatalf("expected rename")
	}
	h.g.Complete(w1, 0)
	h.g.Complete(r0, 0)
	h.g.Complete(w2, 0)

	r1, _ := h.task(f32Access(x, ModeIn))
	u, resU := h.task(f32Access(x, ModeInOut)) // rename #2, copies from A
	if !resU[0].Renamed || ptrOf(resU[0].CopyFrom) != ptrOf(res2[0].Instance) {
		t.Fatalf("inout must rename with the previous instance as copy source")
	}
	// A's version is superseded and its producer and reader are done —
	// but u still holds the copy-source pin, so A must stay out of the
	// pool.
	h.g.Complete(r1, 0)
	if ps := h.tr.PoolStats(); ps.Releases != 0 {
		t.Fatalf("copy source reclaimed while pinned: %+v", ps)
	}
	h.g.Complete(u, 0)
	if ps := h.tr.PoolStats(); ps.Releases != 1 {
		t.Fatalf("copy source not reclaimed after consumer completion: %+v", ps)
	}
}

// TestSyncAllReclaimsDivergedStorage: after a quiescent graph, SyncAll
// copies renamed contents back and returns every owned instance to the
// pool, draining the live gauge to zero.
func TestSyncAllReclaimsDivergedStorage(t *testing.T) {
	h := newHarness()
	x := []float32{1, 2, 3, 4}
	w1, _ := h.task(f32Access(x, ModeOut))
	r1, _ := h.task(f32Access(x, ModeIn))
	w2, res2 := h.task(f32Access(x, ModeOut))
	if !res2[0].Renamed {
		t.Fatalf("expected rename")
	}
	inst := res2[0].Instance.([]float32)
	for i := range inst {
		inst[i] = float32(10 + i)
	}
	h.g.Complete(w1, 0)
	h.g.Complete(r1, 0)
	h.g.Complete(w2, 0)

	if live := h.tr.LiveRenamedBytes(); live == 0 {
		t.Fatalf("diverged object must hold live renamed bytes")
	}
	if n := h.tr.SyncAll(); n != 1 {
		t.Fatalf("SyncAll = %d, want 1 copy", n)
	}
	if x[0] != 10 || x[3] != 13 {
		t.Fatalf("sync-back did not restore contents: %v", x)
	}
	if live := h.tr.LiveRenamedBytes(); live != 0 {
		t.Fatalf("live renamed bytes after SyncAll = %d, want 0", live)
	}
}

// TestForgetReleasesPooledVersion: Forget discards renamed contents (the
// documented contract) but must return the object's pooled storage so
// the live gauge does not leak.
func TestForgetReleasesPooledVersion(t *testing.T) {
	h := newHarness()
	x := make([]float32, 16)
	w1, _ := h.task(f32Access(x, ModeOut))
	r1, _ := h.task(f32Access(x, ModeIn))
	w2, res2 := h.task(f32Access(x, ModeOut))
	if !res2[0].Renamed {
		t.Fatalf("expected rename")
	}
	h.g.Complete(w1, 0)
	h.g.Complete(r1, 0)
	h.g.Complete(w2, 0)
	if h.tr.LiveRenamedBytes() == 0 {
		t.Fatalf("premise broken: no live renamed storage before Forget")
	}
	h.tr.Forget(keyOf(x))
	if live := h.tr.LiveRenamedBytes(); live != 0 {
		t.Fatalf("Forget leaked %d live renamed bytes", live)
	}
	if ps := h.tr.PoolStats(); ps.Releases == 0 {
		t.Fatalf("Forget must release the pooled instance: %+v", ps)
	}
}

// TestRegionFlipForfeitsRenamedStorage: flipping a diverged object into
// region mode removes its renamed instance from pooled management (it
// stays in use as the object's current contents) without leaking the
// live gauge.
func TestRegionFlipForfeitsRenamedStorage(t *testing.T) {
	h := newHarness()
	x := make([]float32, 100)
	w1, _ := h.task(f32Access(x, ModeOut))
	r1, _ := h.task(f32Access(x, ModeIn))
	w2, res2 := h.task(f32Access(x, ModeOut)) // rename
	if !res2[0].Renamed {
		t.Fatalf("expected rename")
	}
	h.g.Complete(w1, 0)
	h.g.Complete(r1, 0)
	h.g.Complete(w2, 0)

	// Partial access flips the diverged object to region mode.
	rr, resR := h.task(f32RegionAccess(x, ModeIn, Interval(0, 9)))
	if ptrOf(resR[0].Instance) != ptrOf(res2[0].Instance) {
		t.Fatalf("region access must see the renamed current contents")
	}
	h.g.Complete(rr, 0)
	if live := h.tr.LiveRenamedBytes(); live != 0 {
		t.Fatalf("region flip must forfeit renamed bytes, live = %d", live)
	}
	ps := h.tr.PoolStats()
	if ps.Forfeits != 1 {
		t.Fatalf("pool stats = %+v, want 1 forfeit", ps)
	}
	// Sync-back still restores contents to the user array, and must not
	// double-release the forfeited instance.
	if n := h.tr.SyncAll(); n != 1 {
		t.Fatalf("SyncAll = %d, want 1", n)
	}
	if ps := h.tr.PoolStats(); ps.Releases != 0 {
		t.Fatalf("forfeited instance must not re-enter the pool: %+v", ps)
	}
}

// TestPoolInvariantsConcurrent drives 8 concurrent submitters (each on
// its own objects, through the shared sharded tracker) against a
// completer, then checks the pool's global invariants: every acquire is
// a hit or a miss, and after draining plus SyncAll no renamed byte is
// live.  Run with -race to validate the lock-free refcount traffic.
func TestPoolInvariantsConcurrent(t *testing.T) {
	const submitters = 8
	const perSubmitter = 300
	ready := make(chan *graph.Node, submitters*perSubmitter)
	g := graph.New(func(n *graph.Node, by int) { ready <- n })
	tr := NewTracker(g)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < submitters*perSubmitter; i++ {
			g.Complete(<-ready, 0)
		}
	}()

	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			bufs := make([][]float32, 4)
			for i := range bufs {
				bufs[i] = make([]float32, 32)
			}
			for i := 0; i < perSubmitter; i++ {
				n := g.AddNode(0, "t", false, nil)
				tr.Analyze(n, f32Access(bufs[i%len(bufs)], Mode((seed+i)%3)))
				g.Seal(n)
			}
		}(s)
	}
	wg.Wait()
	<-done

	tr.SyncAll()
	st := tr.Stats()
	ps := tr.PoolStats()
	if ps.Hits+ps.Misses != st.Renames {
		t.Fatalf("acquires (%d hits + %d misses) != %d renames", ps.Hits, ps.Misses, st.Renames)
	}
	if live := tr.LiveRenamedBytes(); live != 0 {
		t.Fatalf("live renamed bytes after drain+SyncAll = %d, want 0", live)
	}
	if ps.Hits+ps.Misses != ps.Releases+ps.Drops {
		t.Fatalf("acquires %d != releases %d after full drain",
			ps.Hits+ps.Misses, ps.Releases+ps.Drops)
	}
}

// TestLegacyRenamingMatchesSeed: under LegacyRenaming the tracker must
// behave exactly like the seed — fresh allocations, no pool traffic, no
// live-byte accounting — while preserving rename semantics.
func TestLegacyRenamingMatchesSeed(t *testing.T) {
	h := newHarness()
	h.tr.LegacyRenaming = true
	x := []float32{1, 2, 3, 4}
	w1, res1 := h.task(f32Access(x, ModeOut))
	r1, _ := h.task(f32Access(x, ModeIn))
	w2, res2 := h.task(f32Access(x, ModeOut))
	if !res2[0].Renamed {
		t.Fatalf("legacy mode must still rename over pending readers")
	}
	if ptrOf(res2[0].Instance) == ptrOf(res1[0].Instance) {
		t.Fatalf("legacy rename must allocate distinct storage")
	}
	h.g.Complete(w1, 0)
	h.g.Complete(r1, 0)
	h.g.Complete(w2, 0)
	st := h.tr.Stats()
	if st.Renames != 1 || st.PoolHits != 0 || st.PoolMisses != 0 || st.RenamesElided != 0 {
		t.Fatalf("legacy stats = %+v, want 1 rename and no pool/elision traffic", st)
	}
	if live := h.tr.LiveRenamedBytes(); live != 0 {
		t.Fatalf("legacy mode must not account live renamed bytes, got %d", live)
	}
	if n := h.tr.SyncAll(); n != 1 {
		t.Fatalf("legacy SyncAll = %d, want 1", n)
	}
	if x[0] != 0 { // w2's version was never written; instance zeroed by Alloc
		t.Fatalf("sync-back must restore the current version's contents")
	}
}
