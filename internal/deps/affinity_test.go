package deps

import "testing"

// TestAffinityHintRecorded checks the tracker's side of the locality
// layer: with AffinityHints on, a task whose operand's producer has
// already completed carries that producer's worker identity as its
// placement hint; a pending producer records nothing (its completion
// places the successor via releasedBy instead).
func TestAffinityHintRecorded(t *testing.T) {
	h := newHarness()
	h.tr.AffinityHints = true
	x := make([]float32, 4)
	w, _ := h.task(f32Access(x, ModeOut))

	// Producer still pending: no hint.
	early, _ := h.task(f32Access(x, ModeIn))
	if got := early.Affinity(); got != -1 {
		t.Fatalf("reader of a pending producer got hint %d, want none", got)
	}

	h.g.Complete(w, 5)

	reader, _ := h.task(f32Access(x, ModeIn))
	if got := reader.Affinity(); got != 5 {
		t.Fatalf("reader hint = %d, want producer's worker 5", got)
	}
	writer, _ := h.task(f32Access(x, ModeInOut))
	if got := writer.Affinity(); got != 5 {
		t.Fatalf("inout hint = %d, want producer's worker 5", got)
	}
}

// TestAffinityHintGated checks the default-off gate: without
// AffinityHints no node ever carries a hint, so the scheduler's
// behavior is bit-identical to the pre-locality baseline.
func TestAffinityHintGated(t *testing.T) {
	h := newHarness()
	x := make([]float32, 4)
	w, _ := h.task(f32Access(x, ModeOut))
	h.g.Complete(w, 5)
	reader, _ := h.task(f32Access(x, ModeIn))
	if got := reader.Affinity(); got != -1 {
		t.Fatalf("gated tracker recorded hint %d", got)
	}
}

// TestTrueEdgesDeterministic pins the accounting fix: the RAW counter
// reflects the logical dependency chain — it must not change when a
// producer completes before its consumer is analyzed (the timing race
// that used to force edge-count assertions onto Workers: 1).
func TestTrueEdgesDeterministic(t *testing.T) {
	h := newHarness()
	x := make([]float32, 4)
	w, _ := h.task(f32Access(x, ModeOut))
	h.g.Complete(w, 0) // producer done before the consumers are analyzed
	r, _ := h.task(f32Access(x, ModeIn))
	if !h.isReady(r) {
		t.Fatalf("reader of a completed producer must be ready at seal")
	}
	h.task(f32Access(x, ModeInOut))
	if st := h.tr.Stats(); st.TrueEdges != 2 {
		t.Fatalf("TrueEdges = %d, want the 2 logical RAW deps regardless of timing", st.TrueEdges)
	}
}
