package deps

import (
	"sync"
	"testing"

	"repro/internal/graph"
)

func TestTrackerShardCount(t *testing.T) {
	g := graph.New(func(n *graph.Node, by int) {})
	cases := []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {8, 8}, {9, 16}, {64, 64}, {1000, 64},
	}
	for _, c := range cases {
		if got := NewTrackerShards(g, c.in).Shards(); got != c.want {
			t.Fatalf("NewTrackerShards(%d).Shards() = %d, want %d", c.in, got, c.want)
		}
	}
	if got := NewTrackerShards(g, 0).Shards(); got < 1 || got&(got-1) != 0 {
		t.Fatalf("default shard count %d must be a positive power of two", got)
	}
}

func TestShardOfCoversAllShards(t *testing.T) {
	g := graph.New(func(n *graph.Node, by int) {})
	tr := NewTrackerShards(g, 8)
	// Keys mimicking 64-byte-aligned allocations must not all collapse
	// onto one stripe.
	seen := map[int]bool{}
	for i := 0; i < 1024; i++ {
		seen[tr.shardIndex(uintptr(0x10000+64*i))] = true
	}
	if len(seen) != 8 {
		t.Fatalf("aligned keys hit %d of 8 shards", len(seen))
	}
}

// TestAnalyzeBatchSemantics checks that a batched entry resolves exactly
// like per-access Analyze calls: same edges, same renaming decisions.
func TestAnalyzeBatchSemantics(t *testing.T) {
	for _, shards := range []int{1, 8} {
		h := &harness{}
		h.g = graph.New(func(n *graph.Node, by int) {
			h.mu.Lock()
			h.ready = append(h.ready, n.ID)
			h.mu.Unlock()
		})
		h.tr = NewTrackerShards(h.g, shards)
		x := make([]float32, 8)
		y := make([]float32, 8)

		// Writer of x, then a batched task reading x and writing y.
		writer, _ := h.task(f32Access(x, ModeOut))
		reader := h.g.AddNode(0, "r", false, nil)
		res := h.tr.AnalyzeBatch(reader, []Access{
			f32Access(x, ModeIn),
			f32Access(y, ModeOut),
		}, nil)
		h.g.Seal(reader)
		if len(res) != 2 {
			t.Fatalf("shards=%d: got %d resolutions, want 2", shards, len(res))
		}
		if res[0].Renamed || res[1].Renamed {
			t.Fatalf("shards=%d: nothing should rename here: %+v", shards, res)
		}
		if h.isReady(reader) {
			t.Fatalf("shards=%d: reader became ready despite pending writer", shards)
		}
		h.g.Complete(writer, 1)
		if !h.isReady(reader) {
			t.Fatalf("shards=%d: completing the writer must release the reader", shards)
		}
		st := h.tr.Stats()
		if st.TrueEdges != 1 || st.Objects != 2 {
			t.Fatalf("shards=%d: stats = %+v, want 1 true edge over 2 objects", shards, st)
		}
	}
}

// TestAnalyzeBatchRenames checks the renaming engine fires identically
// through the batched path: a WAW hazard inside one batch allocates a
// fresh instance.
func TestAnalyzeBatchRenames(t *testing.T) {
	h := newHarness()
	x := make([]float32, 8)
	n := h.g.AddNode(0, "t", false, nil)
	res := h.tr.AnalyzeBatch(n, []Access{f32Access(x, ModeOut)}, nil)
	h.g.Seal(n)
	n2 := h.g.AddNode(0, "t2", false, nil)
	res2 := h.tr.AnalyzeBatch(n2, []Access{f32Access(x, ModeOut)}, nil)
	h.g.Seal(n2)
	if res[0].Renamed {
		t.Fatalf("first write must not rename")
	}
	if !res2[0].Renamed {
		t.Fatalf("second write over a pending one must rename")
	}
	if st := h.tr.Stats(); st.Renames != 1 {
		t.Fatalf("stats = %+v, want 1 rename", st)
	}
}

// TestTrackerStatsSumAcrossShards registers objects spread over many
// stripes and checks the summed counters.
func TestTrackerStatsSumAcrossShards(t *testing.T) {
	g := graph.New(func(n *graph.Node, by int) {})
	tr := NewTrackerShards(g, 16)
	const objects = 256
	bufs := make([][]float32, objects)
	for i := range bufs {
		bufs[i] = make([]float32, 4)
		n := g.AddNode(0, "t", false, nil)
		tr.Analyze(n, f32Access(bufs[i], ModeOut))
		g.Seal(n)
	}
	if st := tr.Stats(); st.Objects != objects {
		t.Fatalf("Objects = %d, want %d", st.Objects, objects)
	}
}

// TestTrackerConcurrentAnalyze hammers disjoint objects from many
// goroutines; run under -race it verifies the stripes actually isolate
// concurrent submitters.
func TestTrackerConcurrentAnalyze(t *testing.T) {
	g := graph.New(func(n *graph.Node, by int) {})
	tr := NewTrackerShards(g, 8)
	const submitters, perSubmitter = 8, 200
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			x := make([]float32, 4)
			y := make([]float32, 4)
			for i := 0; i < perSubmitter; i++ {
				n := g.AddNode(0, "t", false, nil)
				tr.AnalyzeBatch(n, []Access{
					f32Access(x, ModeIn),
					f32Access(y, ModeInOut),
				}, nil)
				g.Seal(n)
				g.Complete(n, 0)
			}
		}()
	}
	wg.Wait()
	if st := tr.Stats(); st.Objects != 2*submitters {
		t.Fatalf("Objects = %d, want %d", st.Objects, 2*submitters)
	}
}
