package deps

import (
	"reflect"
	"sync"
	"sync/atomic"

	"repro/internal/chaos"
	"repro/internal/dataid"
)

// classKey identifies a size class of renamed storage: the concrete type
// of the instance plus its length for slices — exactly the shape
// Access.Alloc produces for a given exemplar, so any pooled instance of
// a class is interchangeable with a fresh allocation.
type classKey struct {
	t reflect.Type
	n int
}

// maxFreePerClass bounds how many idle instances one size class retains
// in a private store.  Overflow on release is dropped to the garbage
// collector, so a burst of renames cannot pin its peak footprint
// forever.  A shared store scales the bound by its tenant count
// (NewStorageShared): K contexts recycling through one store deserve
// the free-list capacity K private runtimes would have had.
const maxFreePerClass = 64

// PoolStats is a snapshot of pool activity.
type PoolStats struct {
	// Hits and Misses count acquisitions served from recycled storage
	// vs. fresh Alloc() calls; Misses is the number of instances the
	// renaming engine actually allocated.
	Hits, Misses int64
	// Releases counts instances returned to a free list; Drops counts
	// instances released past the per-class bound and left to the GC.
	Releases, Drops int64
	// Forfeits counts instances that left pooled management without a
	// release (an object flipping to region mode keeps its renamed
	// storage as plain user-visible memory).
	Forfeits int64
	// LiveBytes is the renamed storage currently acquired and not yet
	// released — the gauge the runtime's memory limit blocks on.
	LiveBytes int64
	// FreeBytes is the storage idling on the free lists.
	FreeBytes int64
}

// classBucket is the free list of one size class.
type classBucket struct {
	mu   sync.Mutex
	free []any
}

// Storage is the size-classed recycling store behind one or more Pools:
// per-class free lists of renamed instances plus the counters that
// describe the lists themselves.  A Storage is safe for concurrent use
// and — unlike the Pool front-ends, which carry per-context accounting —
// may be shared: on a multi-tenant worker pool every context's tracker
// releases into and acquires from one Storage, so storage freed by one
// tenant's drained graph warms another tenant's renames, while each
// tenant keeps its own hit/miss and live-byte books.
type Storage struct {
	classes sync.Map // classKey -> *classBucket

	// maxFree is the per-class free-list bound.  Atomic because the
	// elastic pool rescales it as workers retire and unretire while
	// releases are in flight.
	maxFree atomic.Int64

	releases, drops atomic.Int64
	freeBytes       atomic.Int64
}

// NewStorage creates an empty store with the private per-class bound.
func NewStorage() *Storage { return NewStorageShared(1) }

// NewStorageShared creates a store sized for tenants concurrent
// clients: the per-class free-list bound scales so K tenants sharing
// one store keep the capacity K private stores would have had.
func NewStorageShared(tenants int) *Storage {
	if tenants < 1 {
		tenants = 1
	}
	s := &Storage{}
	s.maxFree.Store(int64(tenants) * maxFreePerClass)
	return s
}

// Rescale adjusts the per-class free-list bound to units tenants' worth
// of capacity and trims every bucket now over the bound, dropping the
// excess to the garbage collector.  The elastic pool calls it as
// workers retire and unretire, so a shrunken team does not keep pinning
// the free-list headroom the full team deserved; a fixed-size pool
// never calls it.
func (s *Storage) Rescale(units int) {
	if units < 1 {
		units = 1
	}
	bound := units * maxFreePerClass
	s.maxFree.Store(int64(bound))
	s.classes.Range(func(_, v any) bool {
		b := v.(*classBucket)
		var dropped, bytes int64
		b.mu.Lock()
		for len(b.free) > bound {
			inst := b.free[len(b.free)-1]
			b.free[len(b.free)-1] = nil
			b.free = b.free[:len(b.free)-1]
			_, sz := classOf(inst)
			bytes += sz
			dropped++
		}
		b.mu.Unlock()
		if dropped > 0 {
			s.drops.Add(dropped)
			s.freeBytes.Add(-bytes)
		}
		return true
	})
}

// FreeBytes returns the storage idling on the free lists.
func (s *Storage) FreeBytes() int64 { return s.freeBytes.Load() }

func (s *Storage) bucket(key classKey, create bool) *classBucket {
	if b, ok := s.classes.Load(key); ok {
		return b.(*classBucket)
	}
	if !create {
		return nil
	}
	b, _ := s.classes.LoadOrStore(key, &classBucket{})
	return b.(*classBucket)
}

// take removes and returns a free instance of the class, or nil.
func (s *Storage) take(key classKey, bytes int64) any {
	b := s.bucket(key, false)
	if b == nil {
		return nil
	}
	var inst any
	b.mu.Lock()
	if n := len(b.free); n > 0 {
		inst = b.free[n-1]
		b.free[n-1] = nil
		b.free = b.free[:n-1]
	}
	b.mu.Unlock()
	if inst != nil {
		s.freeBytes.Add(-bytes)
	}
	return inst
}

// put returns an instance to its class free list, or drops it to the GC
// past the per-class bound.
func (s *Storage) put(key classKey, inst any, bytes int64) {
	b := s.bucket(key, true)
	kept := false
	b.mu.Lock()
	if len(b.free) < int(s.maxFree.Load()) {
		b.free = append(b.free, inst)
		kept = true
	}
	b.mu.Unlock()
	if kept {
		s.releases.Add(1)
		s.freeBytes.Add(bytes)
	} else {
		s.drops.Add(1)
	}
}

// Pool recycles the storage instances the renaming engine allocates.
// The seed runtime called Alloc() for every rename and abandoned
// superseded versions to the garbage collector; the pool instead keeps
// reclaimed instances on per-class free lists so subsequent renames of
// same-shaped data reuse warm storage.  Pooled instances are returned
// with stale contents: an output rename overwrites completely by the
// Out contract, and a renamed inout is seeded by its scheduled copy, so
// no zeroing is ever needed.
//
// Acquire and release also carry the live-byte accounting: LiveBytes
// tracks renamed storage between acquisition and reclamation, which is
// what Config.MemoryLimit blocks on, and the reclaim hook gives the
// blocked submitter a wakeup signal the seed's spin-help loop lacked.
//
// The free lists themselves live in a Storage.  By default each Pool
// lazily creates a private one; Share installs a common Storage so
// several trackers (one per context on a shared worker pool) recycle
// instances across tenant boundaries while the accounting that must
// stay per-tenant — hits, misses, live bytes, the reclaim hook — stays
// on the Pool.
type Pool struct {
	store     *Storage
	storeOnce sync.Once

	hits, misses atomic.Int64
	forfeits     atomic.Int64
	liveBytes    atomic.Int64

	// onReclaim, when non-nil, runs after every live-byte decrease.
	// It must be set before the pool is first used and must not block.
	onReclaim func()
}

// Share installs st as the pool's backing store.  It must be called
// before the pool's first acquire or release.
func (p *Pool) Share(st *Storage) { p.store = st }

// storage returns the backing store, creating a private one on first
// use when none was shared.
func (p *Pool) storage() *Storage {
	p.storeOnce.Do(func() {
		if p.store == nil {
			p.store = NewStorage()
		}
	})
	return p.store
}

// SetReclaimHook registers f to run whenever live renamed bytes
// decrease (an instance is released or forfeited).  The runtime points
// it at the scheduler wakeup for the memory-limit waiter.  It must be
// called before any task is submitted.
func (p *Pool) SetReclaimHook(f func()) { p.onReclaim = f }

// LiveBytes returns the bytes of renamed storage currently acquired.
func (p *Pool) LiveBytes() int64 { return p.liveBytes.Load() }

// Stats returns a snapshot of the pool's counters.  Hits, Misses,
// Forfeits and LiveBytes are per-pool (per-context); Releases, Drops
// and FreeBytes describe the backing Storage, which may be shared.
func (p *Pool) Stats() PoolStats {
	st := p.storage()
	return PoolStats{
		Hits:      p.hits.Load(),
		Misses:    p.misses.Load(),
		Releases:  st.releases.Load(),
		Drops:     st.drops.Load(),
		Forfeits:  p.forfeits.Load(),
		LiveBytes: p.liveBytes.Load(),
		FreeBytes: st.freeBytes.Load(),
	}
}

// classOf maps an exemplar (or instance) to its size class and byte
// footprint.  The common slice element types bypass reflection.
func classOf(data any) (classKey, int64) {
	switch d := data.(type) {
	case []float32:
		return classKey{t: typF32, n: len(d)}, int64(len(d)) * 4
	case []float64:
		return classKey{t: typF64, n: len(d)}, int64(len(d)) * 8
	case []int64:
		return classKey{t: typI64, n: len(d)}, int64(len(d)) * 8
	case []int32:
		return classKey{t: typI32, n: len(d)}, int64(len(d)) * 4
	case []int:
		return classKey{t: typInt, n: len(d)}, int64(len(d)) * int64(intSize)
	case []byte:
		return classKey{t: typByte, n: len(d)}, int64(len(d))
	}
	v := reflect.ValueOf(data)
	k := classKey{t: v.Type()}
	if v.Kind() == reflect.Slice {
		k.n = v.Len()
	}
	return k, dataid.ByteSize(data)
}

var (
	typF32  = reflect.TypeOf([]float32(nil))
	typF64  = reflect.TypeOf([]float64(nil))
	typI64  = reflect.TypeOf([]int64(nil))
	typI32  = reflect.TypeOf([]int32(nil))
	typInt  = reflect.TypeOf([]int(nil))
	typByte = reflect.TypeOf([]byte(nil))
)

const intSize = 32 << (^uint(0) >> 63) / 8 // bytes in an int

// acquire returns a storage instance shaped like a.Data — recycled when
// the class has a free instance, freshly allocated via a.Alloc
// otherwise — plus its accounted byte size.  The instance counts as
// live until released (or forfeited).
func (p *Pool) acquire(a *Access) (any, int64) {
	key, bytes := classOf(a.Data)
	var inst any
	// Fault-injection point: a simulated exhausted free list turns the
	// hit into a miss (fresh allocation) — correctness-neutral, but it
	// exercises the allocation path and the live-byte accounting under
	// storage pressure.
	if !chaos.ExhaustRename(bytes) {
		inst = p.storage().take(key, bytes)
	}
	if inst != nil {
		p.hits.Add(1)
	} else {
		p.misses.Add(1)
		inst = a.Alloc()
	}
	p.liveBytes.Add(bytes)
	return inst, bytes
}

// release returns an instance to the backing store's free list (or
// drops it to the GC past the per-class bound), decrements the live
// gauge and fires the reclaim hook.  Called from version reclamation on
// any goroutine.
func (p *Pool) release(inst any, bytes int64) {
	p.liveBytes.Add(-bytes)
	key, _ := classOf(inst)
	p.storage().put(key, inst, bytes)
	if p.onReclaim != nil {
		p.onReclaim()
	}
}

// forfeit removes an instance from pooled management without recovering
// it: the storage stays referenced (as an object's current contents)
// but is no longer the memory manager's to recycle — it falls back to
// the garbage collector, exactly like every renamed instance did in the
// seed runtime.  Used when an object flips to region mode.
func (p *Pool) forfeit(bytes int64) {
	p.liveBytes.Add(-bytes)
	p.forfeits.Add(1)
	if p.onReclaim != nil {
		p.onReclaim()
	}
}
