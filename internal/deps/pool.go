package deps

import (
	"reflect"
	"sync"
	"sync/atomic"

	"repro/internal/dataid"
)

// classKey identifies a size class of renamed storage: the concrete type
// of the instance plus its length for slices — exactly the shape
// Access.Alloc produces for a given exemplar, so any pooled instance of
// a class is interchangeable with a fresh allocation.
type classKey struct {
	t reflect.Type
	n int
}

// maxFreePerClass bounds how many idle instances one size class retains.
// Overflow on release is dropped to the garbage collector, so a burst of
// renames cannot pin its peak footprint forever.
const maxFreePerClass = 64

// PoolStats is a snapshot of pool activity.
type PoolStats struct {
	// Hits and Misses count acquisitions served from recycled storage
	// vs. fresh Alloc() calls; Misses is the number of instances the
	// renaming engine actually allocated.
	Hits, Misses int64
	// Releases counts instances returned to a free list; Drops counts
	// instances released past the per-class bound and left to the GC.
	Releases, Drops int64
	// Forfeits counts instances that left pooled management without a
	// release (an object flipping to region mode keeps its renamed
	// storage as plain user-visible memory).
	Forfeits int64
	// LiveBytes is the renamed storage currently acquired and not yet
	// released — the gauge the runtime's memory limit blocks on.
	LiveBytes int64
	// FreeBytes is the storage idling on the free lists.
	FreeBytes int64
}

// classBucket is the free list of one size class.
type classBucket struct {
	mu   sync.Mutex
	free []any
}

// Pool recycles the storage instances the renaming engine allocates.
// The seed runtime called Alloc() for every rename and abandoned
// superseded versions to the garbage collector; the pool instead keeps
// reclaimed instances on per-class free lists so subsequent renames of
// same-shaped data reuse warm storage.  Pooled instances are returned
// with stale contents: an output rename overwrites completely by the
// Out contract, and a renamed inout is seeded by its scheduled copy, so
// no zeroing is ever needed.
//
// Acquire and release also carry the live-byte accounting: LiveBytes
// tracks renamed storage between acquisition and reclamation, which is
// what Config.MemoryLimit blocks on, and the reclaim hook gives the
// blocked submitter a wakeup signal the seed's spin-help loop lacked.
type Pool struct {
	classes sync.Map // classKey -> *classBucket

	hits, misses    atomic.Int64
	releases, drops atomic.Int64
	forfeits        atomic.Int64
	liveBytes       atomic.Int64
	freeBytes       atomic.Int64

	// onReclaim, when non-nil, runs after every live-byte decrease.
	// It must be set before the pool is first used and must not block.
	onReclaim func()
}

// SetReclaimHook registers f to run whenever live renamed bytes
// decrease (an instance is released or forfeited).  The runtime points
// it at the scheduler wakeup for the memory-limit waiter.  It must be
// called before any task is submitted.
func (p *Pool) SetReclaimHook(f func()) { p.onReclaim = f }

// LiveBytes returns the bytes of renamed storage currently acquired.
func (p *Pool) LiveBytes() int64 { return p.liveBytes.Load() }

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Hits:      p.hits.Load(),
		Misses:    p.misses.Load(),
		Releases:  p.releases.Load(),
		Drops:     p.drops.Load(),
		Forfeits:  p.forfeits.Load(),
		LiveBytes: p.liveBytes.Load(),
		FreeBytes: p.freeBytes.Load(),
	}
}

// classOf maps an exemplar (or instance) to its size class and byte
// footprint.  The common slice element types bypass reflection.
func classOf(data any) (classKey, int64) {
	switch d := data.(type) {
	case []float32:
		return classKey{t: typF32, n: len(d)}, int64(len(d)) * 4
	case []float64:
		return classKey{t: typF64, n: len(d)}, int64(len(d)) * 8
	case []int64:
		return classKey{t: typI64, n: len(d)}, int64(len(d)) * 8
	case []int32:
		return classKey{t: typI32, n: len(d)}, int64(len(d)) * 4
	case []int:
		return classKey{t: typInt, n: len(d)}, int64(len(d)) * int64(intSize)
	case []byte:
		return classKey{t: typByte, n: len(d)}, int64(len(d))
	}
	v := reflect.ValueOf(data)
	k := classKey{t: v.Type()}
	if v.Kind() == reflect.Slice {
		k.n = v.Len()
	}
	return k, dataid.ByteSize(data)
}

var (
	typF32  = reflect.TypeOf([]float32(nil))
	typF64  = reflect.TypeOf([]float64(nil))
	typI64  = reflect.TypeOf([]int64(nil))
	typI32  = reflect.TypeOf([]int32(nil))
	typInt  = reflect.TypeOf([]int(nil))
	typByte = reflect.TypeOf([]byte(nil))
)

const intSize = 32 << (^uint(0) >> 63) / 8 // bytes in an int

func (p *Pool) bucket(key classKey, create bool) *classBucket {
	if b, ok := p.classes.Load(key); ok {
		return b.(*classBucket)
	}
	if !create {
		return nil
	}
	b, _ := p.classes.LoadOrStore(key, &classBucket{})
	return b.(*classBucket)
}

// acquire returns a storage instance shaped like a.Data — recycled when
// the class has a free instance, freshly allocated via a.Alloc
// otherwise — plus its accounted byte size.  The instance counts as
// live until released (or forfeited).
func (p *Pool) acquire(a *Access) (any, int64) {
	key, bytes := classOf(a.Data)
	var inst any
	if b := p.bucket(key, false); b != nil {
		b.mu.Lock()
		if n := len(b.free); n > 0 {
			inst = b.free[n-1]
			b.free[n-1] = nil
			b.free = b.free[:n-1]
		}
		b.mu.Unlock()
	}
	if inst != nil {
		p.hits.Add(1)
		p.freeBytes.Add(-bytes)
	} else {
		p.misses.Add(1)
		inst = a.Alloc()
	}
	p.liveBytes.Add(bytes)
	return inst, bytes
}

// release returns an instance to its class free list (or drops it to the
// GC past the per-class bound), decrements the live gauge and fires the
// reclaim hook.  Called from version reclamation on any goroutine.
func (p *Pool) release(inst any, bytes int64) {
	p.liveBytes.Add(-bytes)
	key, _ := classOf(inst)
	b := p.bucket(key, true)
	kept := false
	b.mu.Lock()
	if len(b.free) < maxFreePerClass {
		b.free = append(b.free, inst)
		kept = true
	}
	b.mu.Unlock()
	if kept {
		p.releases.Add(1)
		p.freeBytes.Add(bytes)
	} else {
		p.drops.Add(1)
	}
	if p.onReclaim != nil {
		p.onReclaim()
	}
}

// forfeit removes an instance from pooled management without recovering
// it: the storage stays referenced (as an object's current contents)
// but is no longer the memory manager's to recycle — it falls back to
// the garbage collector, exactly like every renamed instance did in the
// seed runtime.  Used when an object flips to region mode.
func (p *Pool) forfeit(bytes int64) {
	p.liveBytes.Add(-bytes)
	p.forfeits.Add(1)
	if p.onReclaim != nil {
		p.onReclaim()
	}
}
