package deps

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Mode is the directionality of a task parameter (paper §II): whether the
// task only reads it, only writes it, or both.
type Mode uint8

// Parameter directionalities.
const (
	// ModeIn marks a parameter that is only read ("input" clause).
	ModeIn Mode = iota
	// ModeOut marks a parameter that is only written ("output" clause).
	// The task must overwrite it completely; the runtime relies on this
	// to rename without copying.
	ModeOut
	// ModeInOut marks a parameter that is read and written ("inout").
	ModeInOut
)

// String returns the paper's clause name for the mode.
func (m Mode) String() string {
	switch m {
	case ModeIn:
		return "input"
	case ModeOut:
		return "output"
	case ModeInOut:
		return "inout"
	}
	return "mode(?)"
}

// Reads reports whether the mode implies reading the previous contents.
func (m Mode) Reads() bool { return m == ModeIn || m == ModeInOut }

// Writes reports whether the mode implies writing.
func (m Mode) Writes() bool { return m == ModeOut || m == ModeInOut }

// Access describes one task parameter presented to the tracker: the
// identity of the data it touches, how it touches it, and — because
// renaming needs to allocate fresh storage of the right shape — callbacks
// to clone that storage.
type Access struct {
	// Key identifies the data object; the runtime uses the base address
	// of the backing array, exactly like the 2008 runtime keys its
	// dependency analysis on parameter memory addresses.
	Key uintptr
	// Mode is the parameter's directionality.
	Mode Mode
	// Region restricts the access to a sub-array (§V.A extension).
	// The zero Region means the whole object.
	Region Region
	// Data is the user-visible storage for the object's initial version.
	Data any
	// Alloc allocates a fresh instance with the same shape as Data.
	// Required for renamed writes; may be nil for ModeIn.
	Alloc func() any
	// Copy copies the contents of src into dst.  Required when an inout
	// parameter is renamed; may be nil otherwise.
	Copy func(dst, src any)
}

// Resolution tells the runtime which storage a task must actually operate
// on after renaming, mirroring the pointer rewriting the SMPSs compiler
// performs on task bodies.
type Resolution struct {
	// Instance is the effective storage for the parameter.
	Instance any
	// CopyFrom, when non-nil, is an earlier instance whose contents must
	// be copied into Instance immediately before the task body runs
	// (renamed inout).  The true dependency recorded on the previous
	// producer guarantees CopyFrom is complete by then.
	CopyFrom any
	// Copy is the copier to use for CopyFrom (same as Access.Copy).
	Copy func(dst, src any)
	// Renamed reports whether the tracker allocated fresh storage.
	Renamed bool
}

// version is one single-assignment instance of an object.  Versions form
// a chain: each write (out/inout) opens a new one.
//
// In the default (pooled) lifecycle each version is reference-counted:
// refs holds one count while the version is the object's current
// version, one while its producer is pending, one per live reader and
// one per renamed-inout successor that still has to copy from it.
// Completion observers on the graph nodes count the references down the
// moment each task finishes; when a *retired* (superseded, synced or
// forgotten) version drains to zero and owns pooled storage, that
// storage returns to the tracker's recycling pool.  Under
// LegacyRenaming none of this runs and superseded versions are
// abandoned to the garbage collector, as in the seed runtime.
type version struct {
	// producer is the task writing this version; nil for the initial
	// version (data that existed before any task wrote it).
	producer *graph.Node
	// readers are tasks reading this version.  The pooled lifecycle
	// needs the list only to materialize WAR edges (DisableRenaming)
	// and to seed a region flip; hazard detection uses nreaders.
	readers []*graph.Node
	// instance is the effective storage of this version.
	instance any

	// owned marks instance as pool-managed renamed storage; bytes is
	// its accounted size.  An in-place write transfers ownership to the
	// successor version (they share the instance).
	owned bool
	bytes int64

	// refs counts the holds keeping the instance alive (see above).
	refs atomic.Int32
	// nreaders counts live readers only — the O(1) hazard probe that
	// replaces the seed's lazy Done() scan over the reader list.
	nreaders atomic.Int32
	// retired marks the version no longer current: eligible for
	// reclamation once refs drains to zero.
	retired atomic.Bool
	// reclaimed guards the pool release so it happens exactly once.
	reclaimed atomic.Bool
}

// newVersion creates a version holding the current-version reference
// plus, when a producer is given, the pending-producer reference.
func newVersion(producer *graph.Node, instance any) *version {
	v := &version{producer: producer, instance: instance}
	n := int32(1)
	if producer != nil {
		n++
	}
	v.refs.Store(n)
	return v
}

func (v *version) producerPending() bool {
	return v.producer != nil && !v.producer.Done()
}

func (v *version) pruneReaders() {
	live := v.readers[:0]
	for _, r := range v.readers {
		if !r.Done() {
			live = append(live, r)
		}
	}
	v.readers = live
}

// release drops one reference; the last reference of a retired version
// reclaims its owned storage into the pool.  Runs without the shard
// lock (completion observers call it from worker goroutines).
func (v *version) release(p *Pool) {
	if v.refs.Add(-1) == 0 && v.retired.Load() {
		v.reclaim(p)
	}
}

// retire marks the version no longer current and drops the
// current-version reference.  Each version is retired exactly once —
// when superseded by a write, synced back, or forgotten.
func (v *version) retire(p *Pool) {
	if v.retired.Swap(true) {
		panic("deps: version retired twice")
	}
	if v.refs.Add(-1) == 0 {
		v.reclaim(p)
	}
}

func (v *version) reclaim(p *Pool) {
	if !v.owned || v.reclaimed.Swap(true) {
		return
	}
	p.release(v.instance, v.bytes)
}

// regionAccess is one entry in the access history of a region-tracked
// object.
type regionAccess struct {
	region Region
	mode   Mode
	task   *graph.Node
}

// object is the tracker's record for one base address.
//
// An object starts in versioned mode, where whole-object accesses build a
// renamed version chain.  The first partial-region access flips it to
// region mode, where an access history is kept and overlapping accesses
// are ordered with real edges (including anti- and output dependencies:
// renaming of partial objects is out of scope, which is exactly why the
// 2008 runtime shipped representants instead).
type object struct {
	key      uintptr
	cur      *version
	regioned bool
	hist     []regionAccess
	// original is the user-visible storage the object was registered
	// with; renaming may leave the logically-current contents in a
	// different instance, and SyncBack restores them.
	original any
	// copier is the content copier captured from the first access that
	// supplied one.
	copier func(dst, src any)
	// diverged is set when the current version lives in renamed storage
	// rather than in original.
	diverged bool
}

// Stats aggregates tracker activity for reporting and tests.
type Stats struct {
	// Objects is the number of distinct base addresses ever tracked.
	Objects int64
	// Renames counts instances acquired (pooled or fresh) to break
	// WAW/WAR hazards.
	Renames int64
	// RenamesElided counts writes that found the previous task-written
	// version's hazard dead — producer complete, reader count drained —
	// and proceeded in place, skipping the rename (and, for inout, the
	// seed copy) entirely.
	RenamesElided int64
	// RenameCopies counts renamed inout parameters (each costs one
	// content copy at task start).
	RenameCopies int64
	// PoolHits and PoolMisses count renames served from recycled
	// storage vs. fresh Alloc() calls.  They live in the pool, not the
	// shards; Tracker.Stats fills them into the summed snapshot.
	PoolHits, PoolMisses int64
	// TrueEdges counts read-after-write dependencies discovered at
	// analysis time.  For version-tracked objects a dependency whose
	// producer already completed adds no graph edge (it is already
	// satisfied) but still counts, so the counter is a deterministic
	// property of the submission order at any worker count — not of
	// completion timing.  Region-tracked objects keep only live history
	// (completed accesses are pruned), so their share of the counter
	// remains timing-dependent.
	TrueEdges int64
	// FalseEdges counts WAR/WAW edges added; nonzero only for
	// region-tracked objects or when renaming is disabled.
	FalseEdges int64
	// RegionObjects counts objects that flipped into region mode.
	RegionObjects int64
}

// add accumulates o into s; keep it next to the struct so new counters
// cannot be forgotten by the per-shard aggregation.
func (s *Stats) add(o Stats) {
	s.Objects += o.Objects
	s.Renames += o.Renames
	s.RenamesElided += o.RenamesElided
	s.RenameCopies += o.RenameCopies
	s.PoolHits += o.PoolHits
	s.PoolMisses += o.PoolMisses
	s.TrueEdges += o.TrueEdges
	s.FalseEdges += o.FalseEdges
	s.RegionObjects += o.RegionObjects
}

// shard is one lock stripe of the tracker: a mutex, the objects hashed
// onto the stripe, and the stripe's share of the counters.  The trailing
// padding keeps neighbouring shards off the same cache line so that
// concurrent submitters do not false-share the mutexes.
type shard struct {
	mu      sync.Mutex
	objects map[uintptr]*object
	stats   Stats
	_       [64]byte
}

// MaxShards caps the shard count so the batched-analysis lock set fits in
// one machine word (the canonical-order lock pass walks a uint64 bitmask).
const MaxShards = 64

// Tracker performs dependency analysis for a single runtime instance.
//
// The object table is split into power-of-two lock-striped shards keyed
// by a hash of the data identity (the base address), so concurrent
// submitters touching disjoint data proceed without serializing on a
// single global mutex.  Single accesses lock exactly one shard;
// AnalyzeBatch locks every shard the batch touches in canonical
// (ascending-index) order, which keeps concurrent cross-shard
// submissions deadlock-free.
type Tracker struct {
	g *graph.Graph

	// DisableRenaming turns the renaming engine off: hazards become real
	// WAR/WAW edges.  Used by the ablation benchmarks.
	DisableRenaming bool

	// LegacyRenaming restores the seed runtime's rename lifecycle: a
	// fresh heap allocation per rename, hazard checks by lazy Done()
	// scans over reader lists, and superseded versions abandoned to the
	// garbage collector.  Kept as the measured baseline for the
	// ablation-rename experiment.  Must be set before the first access.
	LegacyRenaming bool

	// AffinityHints makes analysis record on each task node the worker
	// that produced the version it accesses, when that producer has
	// already completed: the scheduler's cue for placing a task that is
	// ready at submission on the deque whose owner's cache plausibly
	// still holds its operands (core.Config.Locality).  A still-pending
	// producer needs no hint — its completion routes the successor
	// through the releasing worker.
	AffinityHints bool

	pool   Pool
	shards []shard
	shift  uint // 64 - log2(len(shards)), for Fibonacci hashing
}

// NewTracker creates a tracker that adds edges to g, with the default
// shard count (enough stripes to cover the machine's parallelism).
func NewTracker(g *graph.Graph) *Tracker { return NewTrackerShards(g, 0) }

// NewTrackerShards creates a tracker with an explicit shard count,
// rounded up to a power of two and clamped to [1, MaxShards].  n <= 0
// selects the default; n == 1 degenerates to the single global mutex the
// ablation benchmarks use as their baseline.
func NewTrackerShards(g *graph.Graph, n int) *Tracker {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > MaxShards {
		n = MaxShards
	}
	n = 1 << bits.Len(uint(n-1)) // next power of two
	t := &Tracker{g: g, shards: make([]shard, n), shift: uint(64 - bits.Len(uint(n-1)))}
	for i := range t.shards {
		t.shards[i].objects = make(map[uintptr]*object)
	}
	return t
}

// Shards returns the number of lock stripes.
func (t *Tracker) Shards() int { return len(t.shards) }

// shardIndex maps a data identity onto its stripe index.  Keys are base
// addresses whose low bits carry no entropy (allocator alignment), so
// Fibonacci hashing spreads them through the stripes via the
// multiplier's high bits.
func (t *Tracker) shardIndex(key uintptr) int {
	return int(uint64(key) * 0x9E3779B97F4A7C15 >> t.shift)
}

func (t *Tracker) shardOf(key uintptr) *shard {
	return &t.shards[t.shardIndex(key)]
}

// Stats returns a snapshot of the tracker's counters, summed across
// shards and merged with the pool's hit/miss counters.
func (t *Tracker) Stats() Stats {
	var total Stats
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		s := sh.stats
		sh.mu.Unlock()
		total.add(s)
	}
	ps := t.pool.Stats()
	total.PoolHits, total.PoolMisses = ps.Hits, ps.Misses
	return total
}

// PoolStats returns a snapshot of the recycling pool's counters.
func (t *Tracker) PoolStats() PoolStats { return t.pool.Stats() }

// ShareStorage points the tracker's rename pool at a shared size-classed
// store, so several trackers — one per context on a shared worker pool —
// recycle renamed instances across tenant boundaries.  Per-tenant
// accounting (hits, misses, live bytes, the reclaim hook) stays with
// this tracker.  Must be called before the first access.
func (t *Tracker) ShareStorage(st *Storage) { t.pool.Share(st) }

// LiveRenamedBytes returns the bytes of renamed storage currently
// acquired and not yet reclaimed — the runtime's memory-limit gauge.
// Always zero under LegacyRenaming (the seed accounts per task instead).
func (t *Tracker) LiveRenamedBytes() int64 { return t.pool.LiveBytes() }

// SetReclaimHook registers f to run whenever renamed storage is
// reclaimed (live bytes decrease).  The runtime points it at the
// memory-limit waiter's wakeup.  Must be called before any access.
func (t *Tracker) SetReclaimHook(f func()) { t.pool.SetReclaimHook(f) }

func (sh *shard) lookup(a Access) *object {
	obj := sh.objects[a.Key]
	if obj == nil {
		obj = &object{key: a.Key, cur: newVersion(nil, a.Data), original: a.Data}
		sh.objects[a.Key] = obj
		sh.stats.Objects++
	}
	if obj.copier == nil && a.Copy != nil {
		obj.copier = a.Copy
	}
	return obj
}

// versionHold is one reference a task holds on a version until it
// completes: a live-reader hold (counted in nreaders too) or a plain
// lifetime hold (pending producer, renamed-inout copy source).  The
// holds of one task are released together by a single completion
// observer, so the hot submission path pays one closure and one
// observer registration per task instead of one per access.
type versionHold struct {
	v      *version
	reader bool
}

// registerHolds attaches the task's accumulated version holds to its
// completion.  Called after the shard locks are released; the node
// cannot complete before Seal, which the submitter calls later.
func (t *Tracker) registerHolds(node *graph.Node, holds []versionHold) {
	if len(holds) == 0 {
		return
	}
	p := &t.pool
	node.OnComplete(func() {
		for _, h := range holds {
			if h.reader {
				h.v.nreaders.Add(-1)
			}
			h.v.release(p)
		}
	})
}

// Analyze resolves one parameter access for task node, adding the
// dependency edges it implies.  It must be called after graph.AddNode and
// before graph.Seal for the node.
func (t *Tracker) Analyze(node *graph.Node, a Access) Resolution {
	var holds []versionHold
	sh := t.shardOf(a.Key)
	sh.mu.Lock()
	res := t.analyzeLocked(sh, node, a, &holds)
	sh.mu.Unlock()
	t.registerHolds(node, holds)
	return res
}

// AnalyzeBatch resolves every access of one task in submission order,
// entering the tracker once: all shards the accesses hash onto are locked
// up front in ascending index order (the canonical order that makes
// concurrent cross-shard batches deadlock-free), the accesses analyzed,
// and the shards released.  Results are appended to out and returned;
// callers reuse out across batches to avoid per-task allocation.
func (t *Tracker) AnalyzeBatch(node *graph.Node, accs []Access, out []Resolution) []Resolution {
	if len(accs) == 0 {
		return out
	}
	// Collect the shard set as a bitmask (len(shards) <= MaxShards = 64).
	var mask uint64
	for i := range accs {
		mask |= 1 << uint(t.shardIndex(accs[i].Key))
	}
	for m := mask; m != 0; m &= m - 1 {
		t.shards[bits.TrailingZeros64(m)].mu.Lock()
	}
	var holds []versionHold
	for i := range accs {
		out = append(out, t.analyzeLocked(t.shardOf(accs[i].Key), node, accs[i], &holds))
	}
	for m := mask; m != 0; m &= m - 1 {
		t.shards[bits.TrailingZeros64(m)].mu.Unlock()
	}
	t.registerHolds(node, holds)
	return out
}

// analyzeLocked dispatches one access; the caller holds sh.mu.  holds
// accumulates the version references the node acquires, registered as
// one completion observer by the caller after the locks are released.
func (t *Tracker) analyzeLocked(sh *shard, node *graph.Node, a Access, holds *[]versionHold) Resolution {
	obj := sh.lookup(a)
	if obj.regioned || !a.Region.IsFull() {
		return t.analyzeRegion(sh, node, obj, a)
	}
	if t.LegacyRenaming {
		switch a.Mode {
		case ModeIn:
			return t.analyzeInLegacy(sh, node, obj)
		case ModeOut:
			return t.analyzeOutLegacy(sh, node, obj, a)
		case ModeInOut:
			return t.analyzeInOutLegacy(sh, node, obj, a)
		}
		panic("deps: invalid access mode")
	}
	switch a.Mode {
	case ModeIn:
		return t.analyzeIn(sh, node, obj, holds)
	case ModeOut:
		return t.analyzeOut(sh, node, obj, a, holds)
	case ModeInOut:
		return t.analyzeInOut(sh, node, obj, a, holds)
	}
	panic("deps: invalid access mode")
}

// hintAffinity records on node the worker that executed the producer of
// the version an access touches, when that producer has already
// completed.  The last qualifying access wins; tasks with a pending
// producer are released by its completion and placed by releasedBy
// instead.
func (t *Tracker) hintAffinity(node *graph.Node, v *version) {
	if !t.AffinityHints || v.producer == nil || !v.producer.Done() {
		return
	}
	node.SetAffinity(v.producer.ExecutedBy())
}

// trueDep accounts one read-after-write dependency of node on the
// producer of v (nil-producer versions are pre-existing data).  The
// physical edge is added only while the producer is pending; the
// counter increments either way, keeping Stats.TrueEdges deterministic
// at any worker count.  Callers hold the shard lock.
func (t *Tracker) trueDep(sh *shard, node *graph.Node, v *version) {
	if v.producer == nil {
		return
	}
	sh.stats.TrueEdges++
	if v.producerPending() {
		t.g.AddEdge(v.producer, node)
	}
}

func (t *Tracker) analyzeIn(sh *shard, node *graph.Node, obj *object, holds *[]versionHold) Resolution {
	v := obj.cur
	t.trueDep(sh, node, v)
	t.hintAffinity(node, v)
	v.pruneReaders()
	v.readers = append(v.readers, node)
	v.nreaders.Add(1)
	v.refs.Add(1)
	*holds = append(*holds, versionHold{v: v, reader: true})
	return Resolution{Instance: v.instance}
}

// supersede installs nv as the object's current version.  When the
// write happened in place (instances shared), ownership of pooled
// storage moves to nv; either way the old version is retired, so its
// instance returns to the pool once its remaining consumers drain.
func (t *Tracker) supersede(obj *object, v, nv *version, renamed bool, bytes int64) {
	if renamed {
		nv.owned, nv.bytes = true, bytes
		obj.diverged = true
	} else {
		nv.owned, nv.bytes = v.owned, v.bytes
		v.owned = false
	}
	obj.cur = nv
	v.retire(&t.pool)
}

func (t *Tracker) analyzeOut(sh *shard, node *graph.Node, obj *object, a Access, holds *[]versionHold) Resolution {
	v := obj.cur
	hazard := v.producerPending() || v.nreaders.Load() > 0
	res := Resolution{Instance: v.instance}
	var bytes int64
	renamed := false
	if hazard {
		if t.DisableRenaming {
			// Ablation path: materialize the false dependencies.
			if v.producerPending() {
				t.g.AddEdge(v.producer, node) // WAW
				sh.stats.FalseEdges++
			}
			v.pruneReaders()
			for _, r := range v.readers {
				t.g.AddEdge(r, node) // WAR
				sh.stats.FalseEdges++
			}
		} else {
			res.Instance, bytes = t.pool.acquire(&a)
			res.Renamed, renamed = true, true
			sh.stats.Renames++
		}
	} else if !t.DisableRenaming && v.producer != nil {
		// Dead WAW: the previous version was task-written, but its
		// producer has completed and every reader drained, so the
		// overwrite proceeds in place — no rename, no fresh storage.
		sh.stats.RenamesElided++
	}
	if !renamed {
		// The write lands in the previous version's storage, so the
		// producer's worker cache hint is real.  A renamed write
		// targets fresh pooled storage the hinted worker never touched
		// — no hint (a renamed *inout* still hints: its seed copy
		// reads the hinted worker's hot data).
		t.hintAffinity(node, v)
	}
	nv := newVersion(node, res.Instance)
	*holds = append(*holds, versionHold{v: nv})
	t.supersede(obj, v, nv, renamed, bytes)
	return res
}

func (t *Tracker) analyzeInOut(sh *shard, node *graph.Node, obj *object, a Access, holds *[]versionHold) Resolution {
	v := obj.cur
	res := Resolution{Instance: v.instance}
	t.trueDep(sh, node, v) // RAW: the task reads the old value
	t.hintAffinity(node, v)
	var bytes int64
	renamed := false
	if v.nreaders.Load() > 0 {
		if t.DisableRenaming {
			v.pruneReaders()
			for _, r := range v.readers {
				t.g.AddEdge(r, node) // WAR
				sh.stats.FalseEdges++
			}
		} else {
			// Rename: write into acquired storage seeded from the
			// previous version.  The RAW edge above guarantees the
			// source is complete when the copy runs; the extra
			// reference below guarantees the pool does not recycle the
			// source instance before the copy has happened.
			res.Instance, bytes = t.pool.acquire(&a)
			res.CopyFrom = v.instance
			res.Copy = a.Copy
			res.Renamed, renamed = true, true
			v.refs.Add(1)
			*holds = append(*holds, versionHold{v: v})
			sh.stats.Renames++
			sh.stats.RenameCopies++
		}
	} else if !t.DisableRenaming && v.producer != nil && !v.producerPending() {
		// Dead WAR/WAW: every reader of the task-written previous
		// version drained and its producer completed — update in place,
		// skipping both the rename and the inout seed copy.
		sh.stats.RenamesElided++
	}
	nv := newVersion(node, res.Instance)
	*holds = append(*holds, versionHold{v: nv})
	t.supersede(obj, v, nv, renamed, bytes)
	return res
}

// analyzeInLegacy is the seed runtime's read path: reader liveness by
// lazy Done() scans, no reference counting.
func (t *Tracker) analyzeInLegacy(sh *shard, node *graph.Node, obj *object) Resolution {
	v := obj.cur
	t.trueDep(sh, node, v)
	t.hintAffinity(node, v)
	v.pruneReaders()
	v.readers = append(v.readers, node)
	return Resolution{Instance: v.instance}
}

// analyzeOutLegacy is the seed runtime's output path: a fresh Alloc()
// per rename, superseded versions left to the garbage collector.
func (t *Tracker) analyzeOutLegacy(sh *shard, node *graph.Node, obj *object, a Access) Resolution {
	v := obj.cur
	v.pruneReaders()
	hazard := v.producerPending() || len(v.readers) > 0
	res := Resolution{Instance: v.instance}
	if hazard {
		if t.DisableRenaming {
			if v.producerPending() {
				t.g.AddEdge(v.producer, node) // WAW
				sh.stats.FalseEdges++
			}
			for _, r := range v.readers {
				t.g.AddEdge(r, node) // WAR
				sh.stats.FalseEdges++
			}
		} else {
			res.Instance = a.Alloc()
			res.Renamed = true
			obj.diverged = true
			sh.stats.Renames++
		}
	}
	if !res.Renamed {
		t.hintAffinity(node, v) // in-place write only; see analyzeOut
	}
	obj.cur = newVersion(node, res.Instance)
	return res
}

// analyzeInOutLegacy is the seed runtime's inout path.
func (t *Tracker) analyzeInOutLegacy(sh *shard, node *graph.Node, obj *object, a Access) Resolution {
	v := obj.cur
	v.pruneReaders()
	res := Resolution{Instance: v.instance}
	t.trueDep(sh, node, v) // RAW: the task reads the old value
	t.hintAffinity(node, v)
	if len(v.readers) > 0 {
		if t.DisableRenaming {
			for _, r := range v.readers {
				t.g.AddEdge(r, node) // WAR
				sh.stats.FalseEdges++
			}
		} else {
			res.Instance = a.Alloc()
			res.CopyFrom = v.instance
			res.Copy = a.Copy
			res.Renamed = true
			obj.diverged = true
			sh.stats.Renames++
			sh.stats.RenameCopies++
		}
	}
	obj.cur = newVersion(node, res.Instance)
	return res
}

// analyzeRegion handles accesses on region-tracked objects: every
// overlapping, still-incomplete earlier access where at least one side
// writes becomes an edge.
func (t *Tracker) analyzeRegion(sh *shard, node *graph.Node, obj *object, a Access) Resolution {
	if !obj.regioned {
		t.flipToRegioned(sh, obj)
	}
	live := obj.hist[:0]
	for _, h := range obj.hist {
		if h.task.Done() {
			continue
		}
		live = append(live, h)
		if !h.region.Overlaps(a.Region) {
			continue
		}
		if !a.Mode.Writes() && !h.mode.Writes() {
			continue // read-read never orders
		}
		t.g.AddEdge(h.task, node)
		if a.Mode.Reads() && h.mode.Writes() {
			sh.stats.TrueEdges++
		} else {
			sh.stats.FalseEdges++
		}
	}
	obj.hist = append(live, regionAccess{region: a.Region, mode: a.Mode, task: node})
	return Resolution{Instance: obj.cur.instance}
}

// flipToRegioned converts a versioned object into region mode, seeding the
// access history from the current version's pending producer and readers.
func (t *Tracker) flipToRegioned(sh *shard, obj *object) {
	obj.regioned = true
	sh.stats.RegionObjects++
	v := obj.cur
	if v.producerPending() {
		obj.hist = append(obj.hist, regionAccess{region: Full, mode: ModeOut, task: v.producer})
	}
	v.pruneReaders()
	for _, r := range v.readers {
		obj.hist = append(obj.hist, regionAccess{region: Full, mode: ModeIn, task: r})
	}
	v.readers = nil
	// Region mode keeps no per-access reference counts (renaming of
	// partial objects is out of scope, exactly as in the 2008 runtime),
	// so a diverged current version's storage cannot be recycled safely:
	// forfeit it from pooled management and let the garbage collector
	// handle it, as the seed did for every renamed instance.
	if v.owned {
		v.owned = false
		t.pool.forfeit(v.bytes)
	}
}

// PendingWriters returns the still-incomplete tasks that write data
// overlapping the given region of the object at key.  The runtime's
// WaitOn primitive blocks (and helps execute tasks) until they are all
// done, after which the main thread may safely read the region.
func (t *Tracker) PendingWriters(key uintptr, r Region) []*graph.Node {
	sh := t.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	obj := sh.objects[key]
	if obj == nil {
		return nil
	}
	var out []*graph.Node
	if obj.regioned {
		for _, h := range obj.hist {
			if h.mode.Writes() && !h.task.Done() && h.region.Overlaps(r) {
				out = append(out, h.task)
			}
		}
		return out
	}
	if obj.cur.producerPending() {
		out = append(out, obj.cur.producer)
	}
	return out
}

// CurrentInstance returns the storage holding the logically current
// contents of the object at key (the latest version after any renaming),
// or nil if the object was never tracked.  The main thread must WaitOn
// the object first for the contents to be meaningful.
func (t *Tracker) CurrentInstance(key uintptr) any {
	sh := t.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	obj := sh.objects[key]
	if obj == nil {
		return nil
	}
	return obj.cur.instance
}

// SyncObject copies the logically-current contents of the object at key
// back into the user's original storage if renaming moved them, and
// resets the version chain onto the original storage.  It must only be
// called when no task touching the object is pending (after WaitOn or a
// barrier).  It reports whether a copy was performed.
func (t *Tracker) SyncObject(key uintptr) bool {
	sh := t.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	obj := sh.objects[key]
	if obj == nil {
		return false
	}
	return t.syncLocked(obj)
}

// SyncAll applies SyncObject to every tracked object and returns the
// number of copies performed.  The runtime calls it from Barrier so that,
// as in SMPSs, renaming stays invisible: after a barrier the program sees
// all results in the variables it named.
//
// It must only be called from the submitting thread with no pending
// tasks.  The shard locks are held only to collect the diverged objects
// and reset their version chains; the content copies — the expensive
// part on large renamed data — run after each stripe's lock is
// released, so SyncAll never holds a stripe for the duration of a
// memcpy.  The superseded versions are retired only after their
// contents have been copied out, so the pool cannot recycle a source
// instance mid-copy.
func (t *Tracker) SyncAll() int {
	type syncWork struct {
		dst, src any
		copier   func(dst, src any)
		old      *version
	}
	var work []syncWork
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, obj := range sh.objects {
			if !obj.diverged {
				continue
			}
			if obj.cur.producerPending() {
				sh.mu.Unlock()
				panic("deps: SyncAll called with a pending writer")
			}
			if obj.copier == nil {
				sh.mu.Unlock()
				panic("deps: diverged object has no copier")
			}
			old := obj.cur
			work = append(work, syncWork{dst: obj.original, src: old.instance, copier: obj.copier, old: old})
			obj.cur = newVersion(nil, obj.original)
			obj.diverged = false
		}
		sh.mu.Unlock()
	}
	for _, w := range work {
		w.copier(w.dst, w.src)
		if !t.LegacyRenaming {
			w.old.retire(&t.pool)
		}
	}
	return len(work)
}

func (t *Tracker) syncLocked(obj *object) bool {
	if !obj.diverged {
		return false
	}
	if obj.cur.producerPending() {
		panic("deps: SyncObject called with a pending writer")
	}
	if obj.copier == nil {
		panic("deps: diverged object has no copier")
	}
	obj.copier(obj.original, obj.cur.instance)
	old := obj.cur
	obj.cur = newVersion(nil, obj.original)
	obj.diverged = false
	if !t.LegacyRenaming {
		// Any late readers of the superseded renamed instance still
		// hold references; the pool gets the instance back only when
		// the last of them completes.
		old.retire(&t.pool)
	}
	return true
}

// Forget drops all tracking state for the object at key; the next access
// re-registers it with whatever storage the access names.  Used by
// programs that recycle buffers for unrelated data.
//
// Contract: Forget does NOT sync renamed contents back — if the object
// has diverged, the logically-current contents in renamed storage are
// discarded and the user's original storage keeps whatever it last
// held.  Call SyncObject (or WaitOn/Barrier) first if the contents
// matter.  The object's current renamed instance is released back to
// the recycling pool once its remaining consumers complete, so Forget
// never leaks pool accounting; superseded versions already manage
// themselves through their reference counts.
func (t *Tracker) Forget(key uintptr) {
	sh := t.shardOf(key)
	sh.mu.Lock()
	obj := sh.objects[key]
	delete(sh.objects, key)
	sh.mu.Unlock()
	if obj == nil {
		return
	}
	if !t.LegacyRenaming {
		obj.cur.retire(&t.pool)
	}
}
