package deps

import (
	"testing"
)

func poolAccess(buf []float32) Access {
	return Access{
		Key:   keyOf(buf),
		Mode:  ModeOut,
		Data:  buf,
		Alloc: func() any { return make([]float32, len(buf)) },
	}
}

func TestPoolAcquireReleaseRoundTrip(t *testing.T) {
	var p Pool
	a := poolAccess(make([]float32, 16))
	inst1, bytes := p.acquire(&a)
	if bytes != 64 {
		t.Fatalf("bytes = %d, want 64", bytes)
	}
	if got := p.LiveBytes(); got != 64 {
		t.Fatalf("live = %d, want 64", got)
	}
	p.release(inst1, bytes)
	if got := p.LiveBytes(); got != 0 {
		t.Fatalf("live after release = %d, want 0", got)
	}
	inst2, _ := p.acquire(&a)
	if &inst1.([]float32)[0] != &inst2.([]float32)[0] {
		t.Fatalf("second acquire must recycle the released instance")
	}
	ps := p.Stats()
	if ps.Hits != 1 || ps.Misses != 1 || ps.Releases != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 release", ps)
	}
}

func TestPoolClassesAreDistinct(t *testing.T) {
	var p Pool
	a16 := poolAccess(make([]float32, 16))
	a32 := poolAccess(make([]float32, 32))
	i16, b16 := p.acquire(&a16)
	p.release(i16, b16)
	// A different length must not be served from the 16-element class.
	i32, _ := p.acquire(&a32)
	if len(i32.([]float32)) != 32 {
		t.Fatalf("wrong class served: len = %d", len(i32.([]float32)))
	}
	ps := p.Stats()
	if ps.Hits != 0 || ps.Misses != 2 {
		t.Fatalf("stats = %+v, want 0 hits / 2 misses", ps)
	}
	// Same shape but different element type is a distinct class too.
	ai := Access{Data: make([]int64, 16), Alloc: func() any { return make([]int64, 16) }}
	ii, _ := p.acquire(&ai)
	if _, ok := ii.([]int64); !ok {
		t.Fatalf("wrong type served: %T", ii)
	}
}

func TestPoolFreeListBounded(t *testing.T) {
	var p Pool
	a := poolAccess(make([]float32, 4))
	var insts []any
	for i := 0; i < maxFreePerClass+5; i++ {
		inst, _ := p.acquire(&a)
		insts = append(insts, inst)
	}
	for _, inst := range insts {
		p.release(inst, 16)
	}
	ps := p.Stats()
	if ps.Releases != maxFreePerClass || ps.Drops != 5 {
		t.Fatalf("stats = %+v, want %d releases / 5 drops", ps, maxFreePerClass)
	}
	if ps.FreeBytes != int64(maxFreePerClass)*16 {
		t.Fatalf("free bytes = %d, want %d", ps.FreeBytes, maxFreePerClass*16)
	}
	if ps.LiveBytes != 0 {
		t.Fatalf("live bytes = %d, want 0", ps.LiveBytes)
	}
}

func TestPoolReclaimHookFires(t *testing.T) {
	var p Pool
	fired := 0
	p.SetReclaimHook(func() { fired++ })
	a := poolAccess(make([]float32, 4))
	inst, bytes := p.acquire(&a)
	if fired != 0 {
		t.Fatalf("hook must not fire on acquire")
	}
	p.release(inst, bytes)
	if fired != 1 {
		t.Fatalf("hook fired %d times after release, want 1", fired)
	}
	p.forfeit(bytes)
	if fired != 2 {
		t.Fatalf("hook fired %d times after forfeit, want 2", fired)
	}
}
