// Package omptask is an OpenMP-3.0-tasks-style runtime, the second
// baseline model of the paper's Multisort and N-Queens comparisons
// (§VI.D, §VI.E): a task pool without dependencies.
//
// "The original task pool proposal does not contemplate dependencies,
// greatly limiting its effectiveness in case of their existence" (paper
// §VII.B).  Synchronization is expressed with taskwait barriers, and —
// like the paper's OpenMP N-Queens — any shared partial state must be
// copied by hand at task creation.
//
// The pool is a single central FIFO queue, the structure of the early
// Nanos taskqueue implementations; idle threads pull from it in order.
package omptask

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// frame counts outstanding child tasks of one task region for taskwait.
type frame struct {
	pending atomic.Int64
}

// task is one queued deferred task.
type task struct {
	f  func(*Ctx)
	fr *frame
}

// RT is an OpenMP-like task-pool runtime instance.
type RT struct {
	nworkers int

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []task
	head    int
	version uint64
	closed  bool
	// sleepers counts threads parked (or about to park); wakeups skip
	// the broadcast entirely while it is zero.
	sleepers atomic.Int64

	wg sync.WaitGroup
}

// New creates a runtime with the given thread count (including the
// thread that calls Parallel).  Zero means GOMAXPROCS.
func New(workers int) *RT {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rt := &RT{nworkers: workers}
	rt.cond = sync.NewCond(&rt.mu)
	for w := 1; w < workers; w++ {
		rt.wg.Add(1)
		go rt.workerLoop(w)
	}
	return rt
}

// Ctx is the per-thread handle inside a parallel region.
type Ctx struct {
	rt   *RT
	self int
	fr   *frame
}

// Worker returns the executing thread's identity (0 = the Parallel
// caller).
func (c *Ctx) Worker() int { return c.self }

// Task defers f to the pool as a child of the current task region —
// "#pragma omp task".
func (c *Ctx) Task(f func(*Ctx)) {
	c.fr.pending.Add(1)
	t := task{f: f, fr: c.fr}
	c.rt.mu.Lock()
	c.rt.queue = append(c.rt.queue, t)
	c.rt.version++
	c.rt.mu.Unlock()
	c.rt.wake()
}

// Taskwait blocks until every task created by the current region has
// finished, executing pool tasks meanwhile — "#pragma omp taskwait".
func (c *Ctx) Taskwait() {
	for c.fr.pending.Load() > 0 {
		if t, ok := c.rt.pop(); ok {
			c.rt.runTask(t, c.self)
			continue
		}
		c.rt.waitChange(c.self, func() bool { return c.fr.pending.Load() == 0 })
	}
}

// Parallel runs f as the single initial task of a parallel region
// ("#pragma omp parallel" + "single"), returning when f and all its
// descendant tasks have completed.
func (rt *RT) Parallel(f func(*Ctx)) {
	root := &frame{}
	c := &Ctx{rt: rt, self: 0, fr: root}
	f(c)
	c.Taskwait()
}

// Close stops the worker threads.
func (rt *RT) Close() {
	rt.mu.Lock()
	rt.closed = true
	rt.mu.Unlock()
	rt.cond.Broadcast()
	rt.wg.Wait()
}

func (rt *RT) pop() (task, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.head == len(rt.queue) {
		if rt.head > 0 {
			rt.queue = rt.queue[:0]
			rt.head = 0
		}
		return task{}, false
	}
	t := rt.queue[rt.head]
	rt.queue[rt.head] = task{}
	rt.head++
	return t, true
}

// runTask executes a pool task in its own region frame with an implicit
// taskwait at the end, then releases the parent's count.
func (rt *RT) runTask(t task, self int) {
	child := &frame{}
	c := &Ctx{rt: rt, self: self, fr: child}
	t.f(c)
	c.Taskwait()
	if t.fr.pending.Add(-1) == 0 {
		rt.bump()
	}
}

func (rt *RT) bump() {
	rt.mu.Lock()
	rt.version++
	rt.mu.Unlock()
	rt.wake()
}

// wake broadcasts only when someone is parked.
func (rt *RT) wake() {
	if rt.sleepers.Load() > 0 {
		rt.cond.Broadcast()
	}
}

// waitChange parks until the version changes, the runtime closes, or
// cancel reports true.  The sleeper declares itself before the final
// queue recheck so a concurrent Task cannot be lost.
func (rt *RT) waitChange(self int, cancel func() bool) {
	rt.mu.Lock()
	v := rt.version
	rt.mu.Unlock()
	rt.sleepers.Add(1)
	defer rt.sleepers.Add(-1)
	if cancel() {
		return
	}
	if t, ok := rt.pop(); ok {
		rt.runTask(t, self)
		return
	}
	if cancel() {
		return
	}
	rt.mu.Lock()
	for rt.version == v && !rt.closed {
		rt.cond.Wait()
	}
	rt.mu.Unlock()
}

func (rt *RT) workerLoop(self int) {
	defer rt.wg.Done()
	for {
		if t, ok := rt.pop(); ok {
			rt.runTask(t, self)
			continue
		}
		rt.sleepers.Add(1)
		rt.mu.Lock()
		for rt.head == len(rt.queue) && !rt.closed {
			rt.cond.Wait()
		}
		closed := rt.closed && rt.head == len(rt.queue)
		rt.mu.Unlock()
		rt.sleepers.Add(-1)
		if closed {
			return
		}
	}
}
