// Package omptask is an OpenMP-3.0-tasks-style runtime, the second
// baseline model of the paper's Multisort and N-Queens comparisons
// (§VI.D, §VI.E): a task pool without dependencies.
//
// "The original task pool proposal does not contemplate dependencies,
// greatly limiting its effectiveness in case of their existence" (paper
// §VII.B).  Synchronization is expressed with taskwait barriers, and —
// like the paper's OpenMP N-Queens — any shared partial state must be
// copied by hand at task creation.
//
// The pool is a single central FIFO queue, the structure of the early
// Nanos taskqueue implementations; idle threads pull from it in order.
package omptask

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// frame counts outstanding child tasks of one task region for taskwait.
type frame struct {
	pending atomic.Int64
}

// task is one queued deferred task.
type task struct {
	f  func(*Ctx)
	fr *frame
}

// RT is an OpenMP-like task-pool runtime instance.
//
// Since the shared-pool re-host the model owns no dedicated threads
// (beyond the Parallel caller): the central FIFO queue lives here, but
// each Task() push owes one opaque *ticket* on a core.Context, and the
// pool's workers execute tickets by popping this queue.  A pump
// goroutine is the context's single submitter, because Task() runs
// inside task bodies, which must never submit to a context directly.
// Taskwait keeps popping the model queue itself, so a waiting region
// always makes progress even when the pool is busy with other tenants.
type RT struct {
	nworkers int

	ctx      *core.Context // tenant context; nil in standalone (1-thread) mode
	ownPool  *core.Pool    // non-nil when New built a private pool
	pumpCond *sync.Cond    // on mu: tickets owed or runtime closing
	owed     int
	pumpDone chan struct{}

	errMu    sync.Mutex
	firstErr error

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []task
	head    int
	version uint64
	closed  bool
	// sleepers counts threads parked (or about to park); wakeups skip
	// the broadcast entirely while it is zero.
	sleepers atomic.Int64
}

// poolTicket runs at most one queued model task on a pool worker; one
// is owed per Task() push, so surplus tickets are harmless no-ops.
var poolTicket = core.NewTaskDef("omptask_ticket", func(a *core.Args) {
	rt := a.Opaque(0).(*RT)
	if t, ok := rt.pop(); ok {
		rt.runTask(t, a.Worker())
	}
})

// New creates a runtime with the given thread count (including the
// thread that calls Parallel).  Zero means GOMAXPROCS.  With more than
// one thread this is a thin wrapper over NewOn on a private pool; with
// exactly one, no pool exists and the caller executes everything.
func New(workers int) *RT {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rt := &RT{nworkers: workers}
	rt.cond = sync.NewCond(&rt.mu)
	if workers > 1 {
		pool, err := core.NewPool(core.PoolConfig{Workers: workers - 1, MaxContexts: 1})
		if err != nil {
			panic(err)
		}
		if err := rt.attach(pool); err != nil {
			panic(err)
		}
		rt.ownPool = pool
	}
	return rt
}

// NewOn attaches a task-pool runtime to a shared pool as one tenant:
// it takes one context slot, and the pool's workers serve its queue
// alongside every other tenant's tasks.  Close detaches the tenant.
func NewOn(pool *core.Pool) (*RT, error) {
	rt := &RT{nworkers: pool.Workers() + 1}
	rt.cond = sync.NewCond(&rt.mu)
	if err := rt.attach(pool); err != nil {
		return nil, err
	}
	return rt, nil
}

// attach binds the runtime to a pool context and starts its pump.
func (rt *RT) attach(pool *core.Pool) error {
	ctx, err := pool.NewContext(core.ContextConfig{
		Scheduler:  core.SchedGlobalFIFO, // the model is one central FIFO queue
		GraphLimit: -1,                   // the pump never executes tickets inline
	})
	if err != nil {
		return err
	}
	rt.ctx = ctx
	rt.pumpCond = sync.NewCond(&rt.mu)
	rt.pumpDone = make(chan struct{})
	go rt.pumpLoop()
	return nil
}

// pumpLoop is the context's single submitter: it converts owed tickets
// into context submissions until Close, then closes the context.
func (rt *RT) pumpLoop() {
	defer close(rt.pumpDone)
	dead := false // the context refused a ticket; no more will be accepted
	for {
		rt.mu.Lock()
		for rt.owed == 0 && !rt.closed {
			rt.pumpCond.Wait()
		}
		n := rt.owed
		rt.owed = 0
		closed := rt.closed
		rt.mu.Unlock()
		for i := 0; i < n && !dead; i++ {
			if err := rt.ctx.Submit(poolTicket, core.Opaque(rt)); err != nil {
				// The shared pool refused the ticket (context closed or
				// tenant canceled), so the donated parallelism stops
				// here.  Tickets only donate workers — Taskwait and the
				// region exit self-pop the model queues — so latching
				// the refusal and dropping the remaining owed tickets
				// loses no work, only parallelism.
				rt.setErr(err)
				dead = true
			}
		}
		if closed && n == 0 {
			rt.ctx.Close()
			return
		}
	}
}

// Ctx is the per-thread handle inside a parallel region.
type Ctx struct {
	rt   *RT
	self int
	fr   *frame
}

// Worker returns the executing thread's identity (0 = the Parallel
// caller).
func (c *Ctx) Worker() int { return c.self }

// Task defers f to the pool as a child of the current task region —
// "#pragma omp task".
func (c *Ctx) Task(f func(*Ctx)) {
	c.fr.pending.Add(1)
	t := task{f: f, fr: c.fr}
	c.rt.mu.Lock()
	c.rt.queue = append(c.rt.queue, t)
	c.rt.version++
	if c.rt.ctx != nil {
		c.rt.owed++
		c.rt.pumpCond.Signal()
	}
	c.rt.mu.Unlock()
	c.rt.wake()
}

// Taskwait blocks until every task created by the current region has
// finished, executing pool tasks meanwhile — "#pragma omp taskwait".
func (c *Ctx) Taskwait() {
	for c.fr.pending.Load() > 0 {
		if t, ok := c.rt.pop(); ok {
			c.rt.runTask(t, c.self)
			continue
		}
		c.rt.waitChange(c.self, func() bool { return c.fr.pending.Load() == 0 })
	}
}

// Parallel runs f as the single initial task of a parallel region
// ("#pragma omp parallel" + "single"), returning when f and all its
// descendant tasks have completed.
func (rt *RT) Parallel(f func(*Ctx)) {
	root := &frame{}
	c := &Ctx{rt: rt, self: 0, fr: root}
	f(c)
	c.Taskwait()
}

// Close stops the pump, detaches the runtime's context, and — when New
// built a private pool — shuts that pool down.  It returns the first
// task panic recovered during the runtime's life, so a tenant's failure
// surfaces at its drain.
func (rt *RT) Close() error {
	rt.mu.Lock()
	rt.closed = true
	rt.mu.Unlock()
	rt.cond.Broadcast()
	if rt.ctx != nil {
		rt.pumpCond.Signal()
		<-rt.pumpDone
		if rt.ownPool != nil {
			rt.ownPool.Close()
		}
	}
	return rt.Err()
}

func (rt *RT) pop() (task, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.head == len(rt.queue) {
		if rt.head > 0 {
			rt.queue = rt.queue[:0]
			rt.head = 0
		}
		return task{}, false
	}
	t := rt.queue[rt.head]
	rt.queue[rt.head] = task{}
	rt.head++
	return t, true
}

// runTask executes a pool task in its own region frame with an implicit
// taskwait at the end, then releases the parent's count.  A panicking
// body is recovered into the runtime's sticky first error: the implicit
// taskwait and the parent's decrement still run, so Taskwait in the
// enclosing region can never wedge on a lost count.
func (rt *RT) runTask(t task, self int) {
	child := &frame{}
	c := &Ctx{rt: rt, self: self, fr: child}
	func() {
		defer func() {
			if r := recover(); r != nil {
				rt.setErr(fmt.Errorf("omptask: task panicked: %v", r))
			}
		}()
		t.f(c)
	}()
	c.Taskwait()
	if t.fr.pending.Add(-1) == 0 {
		rt.bump()
	}
}

// Err returns the first task panic recovered by the runtime, or nil.
// The latch is sticky, like core.Context.Err.
func (rt *RT) Err() error {
	rt.errMu.Lock()
	defer rt.errMu.Unlock()
	return rt.firstErr
}

func (rt *RT) setErr(err error) {
	rt.errMu.Lock()
	if rt.firstErr == nil {
		rt.firstErr = err
	}
	rt.errMu.Unlock()
}

func (rt *RT) bump() {
	rt.mu.Lock()
	rt.version++
	rt.mu.Unlock()
	rt.wake()
}

// wake broadcasts only when someone is parked.
func (rt *RT) wake() {
	if rt.sleepers.Load() > 0 {
		rt.cond.Broadcast()
	}
}

// waitChange parks until the version changes, the runtime closes, or
// cancel reports true.  The sleeper declares itself before the final
// queue recheck so a concurrent Task cannot be lost.
func (rt *RT) waitChange(self int, cancel func() bool) {
	rt.mu.Lock()
	v := rt.version
	rt.mu.Unlock()
	rt.sleepers.Add(1)
	defer rt.sleepers.Add(-1)
	if cancel() {
		return
	}
	if t, ok := rt.pop(); ok {
		rt.runTask(t, self)
		return
	}
	if cancel() {
		return
	}
	rt.mu.Lock()
	for rt.version == v && !rt.closed {
		rt.cond.Wait()
	}
	rt.mu.Unlock()
}
