package omptask

import (
	"sync/atomic"
	"testing"
)

func TestTaskwaitWaitsForChildren(t *testing.T) {
	rt := New(4)
	defer rt.Close()
	var done atomic.Int32
	rt.Parallel(func(c *Ctx) {
		for i := 0; i < 100; i++ {
			c.Task(func(c *Ctx) { done.Add(1) })
		}
		c.Taskwait()
		if got := done.Load(); got != 100 {
			t.Errorf("after Taskwait %d/100 tasks done", got)
		}
	})
}

func TestNestedTasks(t *testing.T) {
	rt := New(4)
	defer rt.Close()
	var leaves atomic.Int32
	rt.Parallel(func(c *Ctx) {
		for i := 0; i < 8; i++ {
			c.Task(func(c *Ctx) {
				for j := 0; j < 8; j++ {
					c.Task(func(c *Ctx) { leaves.Add(1) })
				}
				c.Taskwait()
			})
		}
	})
	if got := leaves.Load(); got != 64 {
		t.Fatalf("leaves = %d, want 64", got)
	}
}

func TestImplicitTaskwaitAtRegionEnd(t *testing.T) {
	// Parallel must not return before deferred tasks complete even
	// without an explicit Taskwait.
	rt := New(4)
	defer rt.Close()
	var done atomic.Int32
	rt.Parallel(func(c *Ctx) {
		for i := 0; i < 50; i++ {
			c.Task(func(c *Ctx) { done.Add(1) })
		}
	})
	if got := done.Load(); got != 50 {
		t.Fatalf("after Parallel %d/50 tasks done", got)
	}
}

func fibTask(c *Ctx, n int, out *int64) {
	if n < 2 {
		*out = int64(n)
		return
	}
	var a, b int64
	c.Task(func(c *Ctx) { fibTask(c, n-1, &a) })
	fibTask(c, n-2, &b)
	c.Taskwait()
	*out = a + b
}

func TestFibAcrossWorkerCounts(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		rt := New(workers)
		var out int64
		rt.Parallel(func(c *Ctx) { fibTask(c, 18, &out) })
		rt.Close()
		if out != 2584 {
			t.Fatalf("workers=%d: fib(18) = %d, want 2584", workers, out)
		}
	}
}

func TestWorkerIdentity(t *testing.T) {
	rt := New(4)
	defer rt.Close()
	rt.Parallel(func(c *Ctx) {
		if c.Worker() != 0 {
			t.Errorf("Parallel caller must be worker 0, got %d", c.Worker())
		}
		var sawWorker atomic.Int32
		for i := 0; i < 64; i++ {
			c.Task(func(c *Ctx) {
				if c.Worker() > 0 {
					sawWorker.Store(1)
				}
			})
		}
		c.Taskwait()
		// With 4 threads and 64 tasks, at least one should land on a
		// dedicated worker (not strictly guaranteed, but overwhelmingly
		// likely; tolerate the alternative).
		_ = sawWorker.Load()
	})
}

func TestParallelReusable(t *testing.T) {
	rt := New(4)
	defer rt.Close()
	for round := 0; round < 5; round++ {
		var out int64
		rt.Parallel(func(c *Ctx) { fibTask(c, 12, &out) })
		if out != 144 {
			t.Fatalf("round %d: fib(12) = %d, want 144", round, out)
		}
	}
}
