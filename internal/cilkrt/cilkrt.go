// Package cilkrt is a Cilk-5-style spawn/sync work-stealing runtime, the
// baseline programming model the paper compares against for Multisort
// and N-Queens (§VI.D, §VI.E, §VII.D).
//
// The programming model is recursive fork-join: a function may spawn
// child invocations and must sync before using their results.  There is
// no dependency analysis: "Cilk does not handle task dependencies across
// tasks in the same recursion level.  Moreover, the programmer must
// place barriers before exiting a task in order to wait for the results
// of its sibling tasks" (paper §VII.D).  Shared mutable state (like the
// N-Queens partial solution array) must be copied by hand.
//
// Scheduling matches Cilk: each worker owns a deque, works on its own
// deque in LIFO order, and steals from random victims in FIFO order
// (taking the "biggest" task available).
package cilkrt

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// task is one spawned invocation together with the frame whose sync is
// waiting on it.
type task struct {
	f  func(*Ctx)
	fr *frame
}

// frame counts the outstanding spawned children of one function
// activation.
type frame struct {
	pending atomic.Int64
}

// RT is a Cilk-style runtime instance with a fixed worker count.
type RT struct {
	nworkers int
	deques   []deque

	mu      sync.Mutex
	cond    *sync.Cond
	version uint64
	closed  bool
	// sleepers counts threads parked (or about to park) in waitChange;
	// bump skips the lock and broadcast entirely while it is zero, which
	// is the common case under load.
	sleepers atomic.Int64

	wg sync.WaitGroup
}

// deque is a mutex-guarded per-worker work deque.
type deque struct {
	mu    sync.Mutex
	items []task
}

func (d *deque) push(t task) {
	d.mu.Lock()
	d.items = append(d.items, t)
	d.mu.Unlock()
}

func (d *deque) popBack() (task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return task{}, false
	}
	t := d.items[len(d.items)-1]
	d.items[len(d.items)-1] = task{}
	d.items = d.items[:len(d.items)-1]
	return t, true
}

func (d *deque) popFront() (task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return task{}, false
	}
	t := d.items[0]
	copy(d.items, d.items[1:])
	d.items[len(d.items)-1] = task{}
	d.items = d.items[:len(d.items)-1]
	return t, true
}

// New creates a runtime with the given number of workers (including the
// thread that calls Run).  Zero means GOMAXPROCS.
func New(workers int) *RT {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rt := &RT{nworkers: workers, deques: make([]deque, workers)}
	rt.cond = sync.NewCond(&rt.mu)
	for w := 1; w < workers; w++ {
		rt.wg.Add(1)
		go rt.workerLoop(w)
	}
	return rt
}

// Ctx identifies the executing worker and its current frame; all spawn
// and sync operations go through it.
type Ctx struct {
	rt   *RT
	self int
	fr   *frame
	rng  *rand.Rand
}

// Spawn runs f asynchronously as a child of the current frame.  The
// child may be stolen by another worker; the parent must Sync before
// consuming its results.
func (c *Ctx) Spawn(f func(*Ctx)) {
	c.fr.pending.Add(1)
	c.rt.deques[c.self].push(task{f: f, fr: c.fr})
	c.rt.bump()
}

// Sync blocks until every child spawned by the current frame has
// finished, executing available work (its own children first) meanwhile
// — the Cilk "sync" statement.
func (c *Ctx) Sync() {
	for c.fr.pending.Load() > 0 {
		if t, ok := c.rt.next(c.self, c.rng); ok {
			c.rt.runTask(t, c.self, c.rng)
			continue
		}
		// Nothing runnable anywhere: children are executing on other
		// workers.  Park until something changes.
		c.rt.waitChange(c.self, c.rng, func() bool { return c.fr.pending.Load() == 0 })
	}
}

// Run executes f as the root of a parallel computation and returns when
// f and all its descendants have completed.
func (rt *RT) Run(f func(*Ctx)) {
	root := &frame{}
	c := &Ctx{rt: rt, self: 0, fr: root, rng: rand.New(rand.NewSource(1))}
	f(c)
	c.Sync()
}

// Close stops the worker threads.
func (rt *RT) Close() {
	rt.mu.Lock()
	rt.closed = true
	rt.mu.Unlock()
	rt.cond.Broadcast()
	rt.wg.Wait()
}

// runTask executes a stolen or popped task: the child body runs in its
// own frame with an implicit sync at function end (Cilk semantics), and
// only then is the parent's pending count released.  The executing
// worker's steal RNG is reused across tasks.
func (rt *RT) runTask(t task, self int, rng *rand.Rand) {
	child := &frame{}
	c := &Ctx{rt: rt, self: self, fr: child, rng: rng}
	t.f(c)
	c.Sync()
	if t.fr.pending.Add(-1) == 0 {
		rt.bump()
	}
}

// next finds work: own deque in LIFO order, then random victims in FIFO
// order ("steal tasks as big as possible", paper §VII.D).
func (rt *RT) next(self int, rng *rand.Rand) (task, bool) {
	if t, ok := rt.deques[self].popBack(); ok {
		return t, true
	}
	if rt.nworkers == 1 {
		return task{}, false
	}
	start := rng.Intn(rt.nworkers)
	for i := 0; i < rt.nworkers; i++ {
		v := (start + i) % rt.nworkers
		if v == self {
			continue
		}
		if t, ok := rt.deques[v].popFront(); ok {
			return t, true
		}
	}
	return task{}, false
}

// bump wakes parked threads.  While nobody is parked (the common case
// under load) it is a single atomic load.
func (rt *RT) bump() {
	if rt.sleepers.Load() == 0 {
		return
	}
	rt.mu.Lock()
	rt.version++
	rt.mu.Unlock()
	rt.cond.Broadcast()
}

// waitChange parks until the runtime's version changes, it closes, or
// cancel reports true.  The sleeper declares itself before the final
// work recheck so a concurrent Spawn cannot slip between the recheck and
// the park unseen (bump skips the broadcast only while sleepers == 0).
func (rt *RT) waitChange(self int, rng *rand.Rand, cancel func() bool) {
	rt.mu.Lock()
	v := rt.version
	rt.mu.Unlock()
	rt.sleepers.Add(1)
	defer rt.sleepers.Add(-1)
	if cancel() {
		return
	}
	if t, ok := rt.next(self, rng); ok {
		rt.runTask(t, self, rng)
		return
	}
	if cancel() {
		return
	}
	rt.mu.Lock()
	for rt.version == v && !rt.closed {
		rt.cond.Wait()
	}
	rt.mu.Unlock()
}

// workerLoop is the body of each dedicated worker.
func (rt *RT) workerLoop(self int) {
	defer rt.wg.Done()
	rng := rand.New(rand.NewSource(int64(self) + 7))
	for {
		if t, ok := rt.next(self, rng); ok {
			rt.runTask(t, self, rng)
			continue
		}
		rt.mu.Lock()
		closed := rt.closed
		rt.mu.Unlock()
		if closed {
			return
		}
		rt.waitChange(self, rng, func() bool {
			rt.mu.Lock()
			defer rt.mu.Unlock()
			return rt.closed
		})
	}
}
