// Package cilkrt is a Cilk-5-style spawn/sync work-stealing runtime, the
// baseline programming model the paper compares against for Multisort
// and N-Queens (§VI.D, §VI.E, §VII.D).
//
// The programming model is recursive fork-join: a function may spawn
// child invocations and must sync before using their results.  There is
// no dependency analysis: "Cilk does not handle task dependencies across
// tasks in the same recursion level.  Moreover, the programmer must
// place barriers before exiting a task in order to wait for the results
// of its sibling tasks" (paper §VII.D).  Shared mutable state (like the
// N-Queens partial solution array) must be copied by hand.
//
// Scheduling matches Cilk: each worker owns a deque, works on its own
// deque in LIFO order, and steals from random victims in FIFO order
// (taking the "biggest" task available).
package cilkrt

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// task is one spawned invocation together with the frame whose sync is
// waiting on it.
type task struct {
	f  func(*Ctx)
	fr *frame
}

// frame counts the outstanding spawned children of one function
// activation.
type frame struct {
	pending atomic.Int64
}

// RT is a Cilk-style runtime instance.
//
// Since the shared-pool re-host the model owns no dedicated threads:
// the per-executor deques live here, but each Spawn owes one opaque
// *ticket* on a core.Context, and the pool's workers execute tickets by
// working their own deque LIFO and stealing FIFO from random victims.
// Executor identities are the pool's worker-slot ids, plus one virtual
// id for the thread that calls Run; a pump goroutine is the context's
// single submitter (Spawn happens inside task bodies, which must never
// submit to a context directly).  Sync keeps popping and stealing
// itself, so a waiting frame always makes progress even when the pool
// is busy with other tenants.
type RT struct {
	deques []deque
	rngs   []*rand.Rand // per-executor steal RNG (one thread each)
	mainID int          // virtual executor id of the Run caller

	ctx      *core.Context // tenant context; nil in standalone (1-thread) mode
	ownPool  *core.Pool    // non-nil when New built a private pool
	pumpCond *sync.Cond    // on mu: tickets owed or runtime closing
	owed     int
	pumpDone chan struct{}

	errMu    sync.Mutex
	firstErr error

	mu      sync.Mutex
	cond    *sync.Cond
	version uint64
	closed  bool
	// sleepers counts threads parked (or about to park) in waitChange;
	// bump skips the lock and broadcast entirely while it is zero, which
	// is the common case under load.
	sleepers atomic.Int64
}

// spawnTicket lets a pool worker claim work: own deque LIFO first, then
// random-victim FIFO steals.  One is owed per Spawn, so surplus tickets
// (work already drained by a Sync-ing parent) are harmless no-ops.
var spawnTicket = core.NewTaskDef("cilkrt_ticket", func(a *core.Args) {
	rt := a.Opaque(0).(*RT)
	self := a.Worker()
	if t, ok := rt.next(self, rt.rngs[self]); ok {
		rt.runTask(t, self, rt.rngs[self])
	}
})

// deque is a mutex-guarded per-worker work deque.
type deque struct {
	mu    sync.Mutex
	items []task
}

func (d *deque) push(t task) {
	d.mu.Lock()
	d.items = append(d.items, t)
	d.mu.Unlock()
}

func (d *deque) popBack() (task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return task{}, false
	}
	t := d.items[len(d.items)-1]
	d.items[len(d.items)-1] = task{}
	d.items = d.items[:len(d.items)-1]
	return t, true
}

func (d *deque) popFront() (task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return task{}, false
	}
	t := d.items[0]
	copy(d.items, d.items[1:])
	d.items[len(d.items)-1] = task{}
	d.items = d.items[:len(d.items)-1]
	return t, true
}

// New creates a runtime with the given number of workers (including the
// thread that calls Run).  Zero means GOMAXPROCS.  With more than one
// worker this is a thin wrapper over NewOn on a private pool; with
// exactly one, no pool exists and the Run caller executes everything.
func New(workers int) *RT {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		rt := &RT{deques: make([]deque, 1), mainID: 0}
		rt.rngs = []*rand.Rand{rand.New(rand.NewSource(1))}
		rt.cond = sync.NewCond(&rt.mu)
		return rt
	}
	pool, err := core.NewPool(core.PoolConfig{Workers: workers - 1, MaxContexts: 1})
	if err != nil {
		panic(err)
	}
	rt, err := NewOn(pool)
	if err != nil {
		panic(err)
	}
	rt.ownPool = pool
	return rt
}

// NewOn attaches a Cilk-style runtime to a shared pool as one tenant:
// it takes one context slot, and the pool's workers run its spawned
// tasks alongside every other tenant's.  Close detaches the tenant.
func NewOn(pool *core.Pool) (*RT, error) {
	// One deque per pool worker-slot identity, plus a virtual executor
	// for the thread that calls Run.
	slots := pool.MaxContexts() + pool.Workers()
	rt := &RT{deques: make([]deque, slots+1), mainID: slots}
	rt.rngs = make([]*rand.Rand, slots+1)
	for i := range rt.rngs {
		rt.rngs[i] = rand.New(rand.NewSource(int64(i) + 7))
	}
	rt.cond = sync.NewCond(&rt.mu)
	ctx, err := pool.NewContext(core.ContextConfig{
		Scheduler:  core.SchedGlobalFIFO,
		GraphLimit: -1, // the pump never executes tickets inline
	})
	if err != nil {
		return nil, err
	}
	rt.ctx = ctx
	rt.pumpCond = sync.NewCond(&rt.mu)
	rt.pumpDone = make(chan struct{})
	go rt.pumpLoop()
	return rt, nil
}

// pumpLoop is the context's single submitter: it converts owed tickets
// into context submissions until Close, then closes the context.
func (rt *RT) pumpLoop() {
	defer close(rt.pumpDone)
	dead := false // the context refused a ticket; no more will be accepted
	for {
		rt.mu.Lock()
		for rt.owed == 0 && !rt.closed {
			rt.pumpCond.Wait()
		}
		n := rt.owed
		rt.owed = 0
		closed := rt.closed
		rt.mu.Unlock()
		for i := 0; i < n && !dead; i++ {
			if err := rt.ctx.Submit(spawnTicket, core.Opaque(rt)); err != nil {
				// Refused ticket: the context is closed or its tenant
				// canceled, and every later submission would be refused
				// the same way.  Tickets are parallelism donors — sync
				// and the region exit self-pop the deques — so latch
				// the refusal and stop donating.
				rt.setErr(err)
				dead = true
			}
		}
		if closed && n == 0 {
			rt.ctx.Close()
			return
		}
	}
}

// Ctx identifies the executing worker and its current frame; all spawn
// and sync operations go through it.
type Ctx struct {
	rt   *RT
	self int
	fr   *frame
	rng  *rand.Rand
}

// Spawn runs f asynchronously as a child of the current frame.  The
// child may be stolen by another worker; the parent must Sync before
// consuming its results.
func (c *Ctx) Spawn(f func(*Ctx)) {
	c.fr.pending.Add(1)
	c.rt.deques[c.self].push(task{f: f, fr: c.fr})
	if c.rt.ctx != nil {
		c.rt.mu.Lock()
		c.rt.owed++
		c.rt.mu.Unlock()
		c.rt.pumpCond.Signal()
	}
	c.rt.bump()
}

// Sync blocks until every child spawned by the current frame has
// finished, executing available work (its own children first) meanwhile
// — the Cilk "sync" statement.
func (c *Ctx) Sync() {
	for c.fr.pending.Load() > 0 {
		if t, ok := c.rt.next(c.self, c.rng); ok {
			c.rt.runTask(t, c.self, c.rng)
			continue
		}
		// Nothing runnable anywhere: children are executing on other
		// workers.  Park until something changes.
		c.rt.waitChange(c.self, c.rng, func() bool { return c.fr.pending.Load() == 0 })
	}
}

// Run executes f as the root of a parallel computation and returns when
// f and all its descendants have completed.  The caller executes as the
// runtime's virtual main executor.
func (rt *RT) Run(f func(*Ctx)) {
	root := &frame{}
	c := &Ctx{rt: rt, self: rt.mainID, fr: root, rng: rt.rngs[rt.mainID]}
	f(c)
	c.Sync()
}

// Close stops the pump, detaches the runtime's context, and — when New
// built a private pool — shuts that pool down.  It returns the first
// task panic recovered during the runtime's life, so a tenant's failure
// surfaces at its drain.
func (rt *RT) Close() error {
	rt.mu.Lock()
	rt.closed = true
	rt.mu.Unlock()
	rt.cond.Broadcast()
	if rt.ctx != nil {
		rt.pumpCond.Signal()
		<-rt.pumpDone
		if rt.ownPool != nil {
			rt.ownPool.Close()
		}
	}
	return rt.Err()
}

// runTask executes a stolen or popped task: the child body runs in its
// own frame with an implicit sync at function end (Cilk semantics), and
// only then is the parent's pending count released.  The executing
// worker's steal RNG is reused across tasks.  A panicking body is
// recovered into the runtime's sticky first error: the implicit sync
// and the parent's decrement still run, so a Sync in the enclosing
// frame can never wedge on a lost count.
func (rt *RT) runTask(t task, self int, rng *rand.Rand) {
	child := &frame{}
	c := &Ctx{rt: rt, self: self, fr: child, rng: rng}
	func() {
		defer func() {
			if r := recover(); r != nil {
				rt.setErr(fmt.Errorf("cilkrt: task panicked: %v", r))
			}
		}()
		t.f(c)
	}()
	c.Sync()
	if t.fr.pending.Add(-1) == 0 {
		rt.bump()
	}
}

// Err returns the first task panic recovered by the runtime, or nil.
// The latch is sticky, like core.Context.Err.
func (rt *RT) Err() error {
	rt.errMu.Lock()
	defer rt.errMu.Unlock()
	return rt.firstErr
}

func (rt *RT) setErr(err error) {
	rt.errMu.Lock()
	if rt.firstErr == nil {
		rt.firstErr = err
	}
	rt.errMu.Unlock()
}

// next finds work: own deque in LIFO order, then random victims in FIFO
// order ("steal tasks as big as possible", paper §VII.D).
func (rt *RT) next(self int, rng *rand.Rand) (task, bool) {
	if t, ok := rt.deques[self].popBack(); ok {
		return t, true
	}
	n := len(rt.deques)
	if n == 1 {
		return task{}, false
	}
	start := rng.Intn(n)
	for i := 0; i < n; i++ {
		v := (start + i) % n
		if v == self {
			continue
		}
		if t, ok := rt.deques[v].popFront(); ok {
			return t, true
		}
	}
	return task{}, false
}

// bump wakes parked threads.  While nobody is parked (the common case
// under load) it is a single atomic load.
func (rt *RT) bump() {
	if rt.sleepers.Load() == 0 {
		return
	}
	rt.mu.Lock()
	rt.version++
	rt.mu.Unlock()
	rt.cond.Broadcast()
}

// waitChange parks until the runtime's version changes, it closes, or
// cancel reports true.  The sleeper declares itself before the final
// work recheck so a concurrent Spawn cannot slip between the recheck and
// the park unseen (bump skips the broadcast only while sleepers == 0).
func (rt *RT) waitChange(self int, rng *rand.Rand, cancel func() bool) {
	rt.mu.Lock()
	v := rt.version
	rt.mu.Unlock()
	rt.sleepers.Add(1)
	defer rt.sleepers.Add(-1)
	if cancel() {
		return
	}
	if t, ok := rt.next(self, rng); ok {
		rt.runTask(t, self, rng)
		return
	}
	if cancel() {
		return
	}
	rt.mu.Lock()
	for rt.version == v && !rt.closed {
		rt.cond.Wait()
	}
	rt.mu.Unlock()
}
