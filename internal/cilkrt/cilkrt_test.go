package cilkrt

import (
	"sync/atomic"
	"testing"
)

// fib computes Fibonacci with spawn/sync, the canonical Cilk example.
func fib(c *Ctx, n int, out *int64) {
	if n < 2 {
		*out = int64(n)
		return
	}
	var a, b int64
	c.Spawn(func(c *Ctx) { fib(c, n-1, &a) })
	fib(c, n-2, &b)
	c.Sync()
	*out = a + b
}

func TestFib(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		rt := New(workers)
		var out int64
		rt.Run(func(c *Ctx) { fib(c, 20, &out) })
		rt.Close()
		if out != 6765 {
			t.Fatalf("workers=%d: fib(20) = %d, want 6765", workers, out)
		}
	}
}

func TestSyncWaitsForAllChildren(t *testing.T) {
	rt := New(4)
	defer rt.Close()
	var done atomic.Int32
	rt.Run(func(c *Ctx) {
		for i := 0; i < 100; i++ {
			c.Spawn(func(c *Ctx) { done.Add(1) })
		}
		c.Sync()
		if got := done.Load(); got != 100 {
			t.Errorf("after Sync %d/100 children done", got)
		}
	})
}

func TestImplicitSyncAtTaskEnd(t *testing.T) {
	// A spawned child that itself spawns grandchildren must not release
	// its parent's counter until the grandchildren finished (Cilk's
	// implicit sync at function end).
	rt := New(4)
	defer rt.Close()
	var grand atomic.Int32
	rt.Run(func(c *Ctx) {
		c.Spawn(func(c *Ctx) {
			for i := 0; i < 10; i++ {
				c.Spawn(func(c *Ctx) { grand.Add(1) })
			}
			// no explicit Sync: implicit at end
		})
		c.Sync()
		if got := grand.Load(); got != 10 {
			t.Errorf("after parent Sync %d/10 grandchildren done", got)
		}
	})
}

func TestParallelSum(t *testing.T) {
	const n = 1 << 16
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i)
	}
	var sum func(c *Ctx, lo, hi int, out *int64)
	sum = func(c *Ctx, lo, hi int, out *int64) {
		if hi-lo <= 1024 {
			var s int64
			for _, v := range data[lo:hi] {
				s += v
			}
			*out = s
			return
		}
		mid := (lo + hi) / 2
		var l, r int64
		c.Spawn(func(c *Ctx) { sum(c, lo, mid, &l) })
		sum(c, mid, hi, &r)
		c.Sync()
		*out = l + r
	}
	rt := New(8)
	defer rt.Close()
	var got int64
	rt.Run(func(c *Ctx) { sum(c, 0, n, &got) })
	want := int64(n) * (n - 1) / 2
	if got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestRunReusableAcrossInvocations(t *testing.T) {
	rt := New(4)
	defer rt.Close()
	for round := 0; round < 5; round++ {
		var out int64
		rt.Run(func(c *Ctx) { fib(c, 15, &out) })
		if out != 610 {
			t.Fatalf("round %d: fib(15) = %d, want 610", round, out)
		}
	}
}
