package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/forkjoin"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
	"repro/internal/linalg"
)

// newRT builds a runtime with the given total thread count.
func newRT(threads int) *core.Runtime {
	return core.New(core.Config{Workers: threads})
}

// choleskySMPSs runs one timed hyper-matrix Cholesky: blocking the input
// is untimed (the paper's flat-matrix comparison is Fig. 11; Fig. 8
// sweeps block sizes on the blocked algorithm).
func choleskySMPSs(spd []float32, dim, block, threads int, p kernels.Provider) float64 {
	n := dim / block
	h := hypermatrix.FromFlat(spd, n, block)
	var secs float64
	withProcs(threads, func() {
		rt := newRT(threads)
		al := linalg.New(rt, p, block)
		secs = timeIt(func() {
			al.CholeskyDense(h)
			if err := rt.Barrier(); err != nil {
				panic(err)
			}
		})
		rt.Close()
	})
	return secs
}

// Fig08 reproduces Fig. 8: Cholesky Gflop/s as a function of block size
// with both kernel providers, fixed thread count.  The paper's curve is
// an inverted U: tiny blocks drown in runtime overhead (374,272 tasks at
// 32² blocks), huge blocks starve the cores.
func Fig08(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	r := &Result{
		ID:     "fig08",
		Title:  fmt.Sprintf("Cholesky on %d threads, %d×%d floats, varying block size", cfg.MaxThreads, cfg.Dim, cfg.Dim),
		XLabel: "block",
		YLabel: "Gflop/s",
		Notes:  []string{fmt.Sprintf("paper: 8192×8192 on 32 Itanium2 cores; here: %d×%d on %d threads, pure-Go tiles", cfg.Dim, cfg.Dim, cfg.MaxThreads)},
	}
	flops := kernels.CholeskyFlops(cfg.Dim)
	spd := kernels.GenSPD(cfg.Dim, 1)
	for _, p := range kernels.Providers {
		s := Series{Name: "SMPSs+" + p.Name + " tiles"}
		for _, b := range BlockSweep(cfg.Dim) {
			if cfg.Dim/b < 1 {
				continue
			}
			in := append([]float32(nil), spd...)
			secs := choleskySMPSs(in, cfg.Dim, b, cfg.MaxThreads, p)
			s.add(float64(b), flops/secs/1e9)
		}
		r.Series = append(r.Series, s)
	}
	r.Elapsed = time.Since(start)
	return r
}

// Fig11 reproduces Fig. 11: Cholesky Gflop/s versus thread count —
// threaded fork-join baselines against SMPSs with both tile providers,
// plus the linear-ideal "peak" line.  The paper's shape: the fork-join
// baselines flatten early (MKL beyond 4, Goto beyond 10), SMPSs keeps
// scaling to the full machine.
func Fig11(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	r := &Result{
		ID:     "fig11",
		Title:  fmt.Sprintf("Cholesky %d×%d floats varying thread count", cfg.Dim, cfg.Dim),
		XLabel: "threads",
		YLabel: "Gflop/s",
		Notes:  []string{fmt.Sprintf("block %d; threaded baselines are fork-join flat-matrix Cholesky (threaded-BLAS stand-ins)", cfg.Block)},
	}
	flops := kernels.CholeskyFlops(cfg.Dim)
	spd := kernels.GenSPD(cfg.Dim, 2)
	perCore := singleCoreGemmGflops(cfg.provider(), cfg.Block)
	peak := Series{Name: "peak"}
	series := map[string]*Series{}
	for _, p := range kernels.Providers {
		series["fj:"+p.Name] = &Series{Name: "threaded " + p.Name}
		series["smpss:"+p.Name] = &Series{Name: "SMPSs+" + p.Name + " tiles"}
	}
	for _, t := range ThreadSweep(cfg.MaxThreads) {
		for _, p := range kernels.Providers {
			in := append([]float32(nil), spd...)
			var secs float64
			withProcs(t, func() {
				secs = timeIt(func() {
					if !forkjoin.Cholesky(in, cfg.Dim, cfg.Block, t, p) {
						panic("fig11: fork-join Cholesky failed")
					}
				})
			})
			series["fj:"+p.Name].add(float64(t), flops/secs/1e9)

			in2 := append([]float32(nil), spd...)
			secs = choleskySMPSs(in2, cfg.Dim, cfg.Block, t, p)
			series["smpss:"+p.Name].add(float64(t), flops/secs/1e9)
		}
		peak.add(float64(t), perCore*float64(t))
	}
	for _, p := range kernels.Providers {
		r.Series = append(r.Series, *series["fj:"+p.Name], *series["smpss:"+p.Name])
	}
	r.Series = append(r.Series, peak)
	r.Elapsed = time.Since(start)
	return r
}

// Fig12 reproduces Fig. 12: matrix multiplication with on-demand block
// copies versus thread count, against the fork-join flat GEMM baselines.
// The paper's SMPSs curve is a staircase (fixed block size starves some
// thread counts) yet competitive at high counts.
func Fig12(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	r := &Result{
		ID:     "fig12",
		Title:  fmt.Sprintf("Matrix multiply (on-demand copies) %d×%d floats varying thread count", cfg.Dim, cfg.Dim),
		XLabel: "threads",
		YLabel: "Gflop/s",
		Notes:  []string{fmt.Sprintf("block %d; SMPSs series include get_block/put_block copy tasks (Fig. 9/10 transformation)", cfg.Block)},
	}
	flops := kernels.GemmFlops(cfg.Dim)
	a := kernels.GenMatrix(cfg.Dim, 3)
	b := kernels.GenMatrix(cfg.Dim, 4)
	perCore := singleCoreGemmGflops(cfg.provider(), cfg.Block)
	peak := Series{Name: "peak"}
	series := map[string]*Series{}
	for _, p := range kernels.Providers {
		series["fj:"+p.Name] = &Series{Name: "threaded " + p.Name}
		series["smpss:"+p.Name] = &Series{Name: "SMPSs+" + p.Name + " tiles"}
	}
	for _, t := range ThreadSweep(cfg.MaxThreads) {
		for _, p := range kernels.Providers {
			c := make([]float32, cfg.Dim*cfg.Dim)
			var secs float64
			withProcs(t, func() {
				secs = timeIt(func() { forkjoin.Gemm(a, b, c, cfg.Dim, t, p) })
			})
			series["fj:"+p.Name].add(float64(t), flops/secs/1e9)

			c2 := make([]float32, cfg.Dim*cfg.Dim)
			withProcs(t, func() {
				rt := newRT(t)
				al := linalg.New(rt, p, cfg.Block)
				secs = timeIt(func() {
					al.MatMulFlat(a, b, c2, cfg.Dim/cfg.Block)
					if err := rt.Barrier(); err != nil {
						panic(err)
					}
				})
				rt.Close()
			})
			series["smpss:"+p.Name].add(float64(t), flops/secs/1e9)
		}
		peak.add(float64(t), perCore*float64(t))
	}
	for _, p := range kernels.Providers {
		r.Series = append(r.Series, *series["fj:"+p.Name], *series["smpss:"+p.Name])
	}
	r.Series = append(r.Series, peak)
	r.Elapsed = time.Since(start)
	return r
}

// Fig13 reproduces Fig. 13: the blocked Strassen algorithm versus thread
// count, Gflop/s computed with Strassen's operation-count formula as the
// paper does.  The expected shape: smoother scaling than plain matmul
// (the richer graph feeds work stealing) at lower absolute Gflop/s
// (renaming allocations plus bandwidth-bound additions).
func Fig13(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	dim, block := cfg.StrassenDim, cfg.StrassenBlock
	r := &Result{
		ID:     "fig13",
		Title:  fmt.Sprintf("Strassen %d×%d floats, %d-blocks, varying thread count", dim, dim, block),
		XLabel: "threads",
		YLabel: "Gflop/s",
		Notes:  []string{"Gflop/s uses Strassen's formula (paper §VI.C); intensive renaming workload"},
	}
	flops := kernels.StrassenFlops(dim, block)
	n := dim / block
	aflat := kernels.GenMatrix(dim, 5)
	bflat := kernels.GenMatrix(dim, 6)
	perCore := singleCoreGemmGflops(cfg.provider(), block)
	peak := Series{Name: "peak"}
	for _, p := range kernels.Providers {
		s := Series{Name: "SMPSs+" + p.Name + " tiles"}
		for _, t := range ThreadSweep(cfg.MaxThreads) {
			a := hypermatrix.FromFlat(aflat, n, block)
			b := hypermatrix.FromFlat(bflat, n, block)
			c := hypermatrix.New(n, block)
			var secs float64
			withProcs(t, func() {
				rt := newRT(t)
				al := linalg.New(rt, p, block)
				secs = timeIt(func() {
					al.Strassen(a, b, c)
					if err := rt.Barrier(); err != nil {
						panic(err)
					}
				})
				rt.Close()
			})
			s.add(float64(t), flops/secs/1e9)
		}
		r.Series = append(r.Series, s)
	}
	for _, t := range ThreadSweep(cfg.MaxThreads) {
		peak.add(float64(t), perCore*float64(t))
	}
	r.Series = append(r.Series, peak)
	r.Elapsed = time.Since(start)
	return r
}

// singleCoreGemmGflops measures the given provider's single-core tile
// GEMM rate, the basis of the linear-ideal "peak" series (the paper
// plots the machine's theoretical peak; a pure-Go build has no published
// peak, so the measured single-core kernel rate is the honest analogue).
// The same measurement, over the same flop budget, anchors the raw-GEMM
// sweep of ablation-kernels (gemmRate).
func singleCoreGemmGflops(p kernels.Provider, block int) float64 {
	return gemmRate(p, block, 1<<27)
}

// gemmRate times repeated tile GEMMs of the given block size, with the
// repetition count calibrated to a fixed flop budget so small blocks
// repeat enough to time stably.  Returns Gflop/s.
func gemmRate(p kernels.Provider, block, budget int) float64 {
	a := kernels.GenMatrix(block, 7)
	b := kernels.GenMatrix(block, 8)
	c := make([]float32, block*block)
	reps := 1 + budget/(2*block*block*block)
	secs := timeIt(func() {
		for i := 0; i < reps; i++ {
			p.GemmNN(a, b, c, block)
		}
	})
	return float64(reps) * kernels.GemmFlops(block) / secs / 1e9
}
