// ablation-elastic: fixed vs elastic pool sizing, and flat vs
// hierarchical stealing.  Part one runs K version-churn tenants on one
// shared pool under two load shapes — steady (back-to-back bursts) and
// bursty (bursts separated by idle gaps several hysteresis windows
// long) — comparing a right-sized fixed pool, an elastic pool breathing
// between one worker and the same ceiling, and on the bursty shape the
// over-provisioned fixed pool the elastic one replaces.  Part two runs
// the steady workload on a fixed pool with a flat steal order vs a
// synthetic two-group topology, reporting the local/remote steal split.
package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/topo"
)

// elWorkload sizes one tenant's program: bursts of version churn
// (consume + refill per object, renames keeping the rename store warm)
// with an optional idle gap after each burst's barrier.
type elWorkload struct {
	objs, iters, objLen int
	bursts              int
	gap                 time.Duration
}

// runTenant drives one tenant's bursts on its context.
func (w *elWorkload) runTenant(c *core.Context) error {
	bufs := make([][]float32, w.objs)
	for i := range bufs {
		bufs[i] = make([]float32, w.objLen)
	}
	for b := 0; b < w.bursts; b++ {
		batch := c.NewBatch()
		for it := 0; it < w.iters; it++ {
			for o := range bufs {
				batch.Add(mtChurnConsume, core.In(bufs[o]))
				batch.Add(mtChurnRefill, core.Out(bufs[o]))
			}
			if err := batch.Submit(); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if w.gap > 0 {
			time.Sleep(w.gap)
		}
	}
	return nil
}

// elRun is one measured configuration: K concurrent tenants on a pool
// built from pc.  Pool construction and Close sit inside the timed
// region, like the other pool ablations.  Returns wall seconds, the
// pool's scaling stats, and the tenants' aggregate steal split.
func elRun(pc core.PoolConfig, tenants int, w *elWorkload) (float64, core.PoolStats, [2]int64, error) {
	var pst core.PoolStats
	var steals [2]int64
	var poolErr error
	errs := make([]error, tenants)
	secs := timeIt(func() {
		pool, err := core.NewPool(pc)
		if err != nil {
			poolErr = err
			return
		}
		var mu sync.Mutex
		var wg sync.WaitGroup
		for k := 0; k < tenants; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				c, err := pool.NewContext(core.ContextConfig{GraphLimit: 256})
				if err != nil {
					errs[k] = err
					return
				}
				errs[k] = w.runTenant(c)
				st := c.Stats()
				mu.Lock()
				steals[0] += st.Sched.LocalSteals
				steals[1] += st.Sched.RemoteSteals
				mu.Unlock()
				if err := c.Close(); errs[k] == nil && err != nil {
					errs[k] = err
				}
			}(k)
		}
		wg.Wait()
		pst = pool.Stats()
		poolErr = pool.Close()
	})
	if poolErr != nil {
		return secs, pst, steals, poolErr
	}
	for _, err := range errs {
		if err != nil {
			return secs, pst, steals, err
		}
	}
	return secs, pst, steals, nil
}

// AblationElastic measures elastic sizing and hierarchical stealing.
// Steady load pins the cost of elasticity (the elastic pool must sit
// within noise of the right-sized fixed pool once it has grown to the
// ceiling); bursty load shows what it buys against the over-provisioned
// fixed pool; and the steal sweep splits steal traffic into
// topology-local and remote under a synthetic two-group hierarchy.
func AblationElastic(cfg Config) *Result {
	explicitThreads := cfg.MaxThreads
	cfg = cfg.Normalize()
	start := time.Now()
	r := &Result{
		ID:     "ablation-elastic",
		Title:  "Fixed vs elastic pool under steady and bursty multi-tenant churn (seconds, lower is better)",
		XLabel: "tenants",
		YLabel: "seconds",
	}
	workers := explicitThreads
	if workers <= 0 {
		workers = 8
		if cfg.Quick {
			workers = 4
		}
	}
	w := &elWorkload{objs: 32, iters: 48, objLen: 2048, bursts: 3, gap: 25 * time.Millisecond}
	if cfg.Quick {
		w = &elWorkload{objs: 8, iters: 8, objLen: 512, bursts: 2, gap: 15 * time.Millisecond}
	}
	// The controller's hysteresis is wall-clock (shrink after 64
	// consecutive idle intervals), so the bursty gap must span several
	// windows for the team to actually breathe.
	const interval = 100 * time.Microsecond
	r.Notes = append(r.Notes, fmt.Sprintf(
		"%d workers (fixed and elastic ceiling); churn %d objs x %d iters x %d bursts, %v idle gap on the bursty shape; scale interval %v",
		workers, w.objs, w.iters, w.bursts, w.gap, interval))

	fixedCfg := func(tenants int) core.PoolConfig {
		return core.PoolConfig{Workers: workers, MaxContexts: tenants}
	}
	elasticCfg := func(tenants int) core.PoolConfig {
		return core.PoolConfig{
			MinWorkers: 1, MaxWorkers: workers,
			MaxContexts: tenants, ScaleInterval: interval,
		}
	}

	steady := *w
	steady.gap = 0

	reps := 2
	if cfg.Quick {
		reps = 1
	}
	type mode struct {
		name    string
		cfgOf   func(int) core.PoolConfig
		load    *elWorkload
		elastic bool
	}
	modes := []mode{
		{"steady-fixed", fixedCfg, &steady, false},
		{"steady-elastic", elasticCfg, &steady, true},
		{"bursty-fixed-over", fixedCfg, w, false},
		{"bursty-elastic", elasticCfg, w, true},
	}
	series := make([]Series, len(modes))
	for i, m := range modes {
		series[i].Name = m.name
	}
	for _, k := range clientSweep(cfg.Contexts) {
		for i, m := range modes {
			var best float64
			var bestStats core.PoolStats
			// Interleaving the repetitions across modes matters less here
			// than for the tighter ablations: the bursty points are
			// dominated by the deliberate idle gaps, not machine drift.
			for rep := 0; rep < reps; rep++ {
				secs, pst, _, err := elRun(m.cfgOf(k), k, m.load)
				if err != nil {
					panic(err)
				}
				if rep == 0 || secs < best {
					best, bestStats = secs, pst
				}
			}
			series[i].add(float64(k), best)
			if m.elastic {
				r.Notes = append(r.Notes, fmt.Sprintf(
					"K=%d %s: %.3fs, grows %d shrinks %d, team high %d low %d",
					k, m.name, best, bestStats.Grows, bestStats.Shrinks,
					bestStats.ActiveWorkersHigh, bestStats.ActiveWorkersLow))
			}
		}
	}
	r.Series = append(r.Series, series...)

	// Part two: flat vs hierarchical stealing on a fixed pool.  The
	// synthetic topology splits the whole identity space (submitters +
	// dedicated workers) into two groups; steal loops then probe
	// group-local victims before crossing over.
	flat := Series{Name: "steal-flat"}
	hier := Series{Name: "steal-hier"}
	for _, k := range clientSweep(cfg.Contexts) {
		pcFlat := fixedCfg(k)
		pcHier := fixedCfg(k)
		pcHier.Topology = topo.Split(k+workers, 2)
		var fBest, hBest float64
		var hSteals [2]int64
		for rep := 0; rep < reps; rep++ {
			fs, _, _, err := elRun(pcFlat, k, &steady)
			if err != nil {
				panic(err)
			}
			if rep == 0 || fs < fBest {
				fBest = fs
			}
			hs, _, steals, err := elRun(pcHier, k, &steady)
			if err != nil {
				panic(err)
			}
			if rep == 0 || hs < hBest {
				hBest, hSteals = hs, steals
			}
		}
		flat.add(float64(k), fBest)
		hier.add(float64(k), hBest)
		r.Notes = append(r.Notes, fmt.Sprintf(
			"K=%d steal split (hier): %d local, %d remote", k, hSteals[0], hSteals[1]))
	}
	r.Series = append(r.Series, flat, hier)
	r.Elapsed = time.Since(start)
	return r
}
