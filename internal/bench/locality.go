// ablation-locality: the scheduler's locality layer — affinity hints
// and successor chaining (core.Config.Locality) — against the plain
// work-stealing baseline, sweeping chain depth × worker count over
// pipelined Cholesky, pipelined LU, and a synthetic chain churn.
package bench

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
	"repro/internal/linalg"
)

// localityConfigs is the swept chain-depth axis.  Affinity rides along
// on every chaining configuration (hints place the chain heads; the
// chain keeps the links); "affinity" alone isolates the placement win.
var localityConfigs = []struct {
	name string
	loc  core.LocalityConfig
}{
	{"base", core.LocalityConfig{}},
	{"affinity", core.LocalityConfig{Affinity: true}},
	{"chain1", core.LocalityConfig{Affinity: true, ChainDepth: 1}},
	{"chain4", core.LocalityConfig{Affinity: true, ChainDepth: 4}},
	{"chain16", core.LocalityConfig{Affinity: true, ChainDepth: 16}},
}

// bestOf measures body reps times under rtCfg and keeps the fastest run
// (tiny-task timings on a loaded machine are preemption-noise-bound;
// the least-disturbed run reflects the structural cost).
func bestOf(reps, threads int, rtCfg core.Config, body func(rt *core.Runtime)) renameRun {
	best := renameRun{secs: math.Inf(1)}
	for r := 0; r < reps; r++ {
		if run := runRenameWorkload(threads, rtCfg, body); run.secs < best.secs {
			best = run
		}
	}
	return best
}

// AblationLocality measures the locality layer the paper's §III
// scheduler argues for — tasks run where their operands are hot — as
// rebuilt on the work-stealing mux: affinity hints place
// ready-at-submission tasks on the deque of the worker that last wrote
// their operands, and successor chaining runs an only-released
// successor inline on the completing worker, skipping queue, wake and
// steal traffic entirely.  The numbers to read are in the notes:
// chain-hits must be nonzero on the pipelined factorizations, and the
// swept wall-clocks must never lose to the "base" series (the locality
// layer is pure opt-in on top of stealing, not a trade).
func AblationLocality(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	r := &Result{
		ID:     "ablation-locality",
		Title:  "Locality layer: affinity hints + successor chaining vs plain stealing (seconds, lower is better)",
		XLabel: "threads",
		YLabel: "seconds",
	}
	reps, rounds := 3, 3
	if cfg.Quick {
		reps, rounds = 1, 2
	}
	threads := ThreadSweep(cfg.MaxThreads)
	maxT := threads[len(threads)-1]
	dim, block := cfg.Dim, cfg.Block
	nb := dim / block
	prov := cfg.provider()
	spd := kernels.GenSPD(dim, 13)
	luflat := kernels.GenSPD(dim, 17)

	// Synthetic chain churn: independent chains of inout tasks, the
	// workload successor chaining is built for — every completion
	// releases exactly one successor over the data just produced.
	nObj, chainLen, blockLen := 32, 192, 4096
	if cfg.Quick {
		nObj, chainLen, blockLen = 8, 24, 512
	}
	chainStep := core.NewTaskDef("chain_churn_t", func(a *core.Args) {
		x := a.F32(0)
		for i := range x {
			x[i] = x[i]*1.0001 + 1
		}
	})

	workloads := []struct {
		name string
		body func(rt *core.Runtime)
	}{
		{"cholesky", func(rt *core.Runtime) {
			al := linalg.New(rt, prov, block)
			factorRounds(al, spd, nb, block, rounds,
				func(al *linalg.Algos, a *hypermatrix.Matrix) { al.CholeskyDense(a) })
		}},
		{"lu", func(rt *core.Runtime) {
			al := linalg.New(rt, prov, block)
			factorRounds(al, luflat, nb, block, rounds,
				func(al *linalg.Algos, a *hypermatrix.Matrix) { al.LU(a) })
		}},
		{"churn", func(rt *core.Runtime) {
			bufs := make([][]float32, nObj)
			for i := range bufs {
				bufs[i] = make([]float32, blockLen)
			}
			batch := rt.NewBatch()
			for k := 0; k < chainLen; k++ {
				for o := range bufs {
					batch.Add(chainStep, core.InOut(bufs[o]))
				}
				if err := batch.Submit(); err != nil {
					panic(err)
				}
			}
		}},
	}

	for _, wl := range workloads {
		for _, lc := range localityConfigs {
			s := Series{Name: wl.name + " " + lc.name}
			for _, t := range threads {
				run := bestOf(reps, t, core.Config{Locality: lc.loc}, wl.body)
				s.add(float64(t), run.secs)
				if t == maxT {
					sc := run.st.Sched
					r.Notes = append(r.Notes, fmt.Sprintf(
						"%s/%s@%dt: chain-hits=%d affinity-pushes=%d affinity-misses=%d push-own=%d push-main=%d steals=%d",
						wl.name, lc.name, t, sc.ChainHits, sc.AffinityPushes,
						sc.AffinityMisses, sc.PushOwn, sc.PushMain, sc.Steals))
				}
			}
			r.Series = append(r.Series, s)
		}
	}
	r.Elapsed = time.Since(start)
	return r
}
