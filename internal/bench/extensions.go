package bench

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/cellss"
	"repro/internal/core"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
	"repro/internal/linalg"
	"repro/internal/omptask"
	"repro/internal/supermatrix"
)

// Extension experiments: the related-work architectures of §VII made
// measurable, plus the workloads this reproduction adds beyond the
// paper's evaluation (tiled QR from reference [10]; SparseLU and heat,
// the classic SMPSs demo applications).

// ExtModels runs the same blocked Cholesky under the three execution
// models of §VII — SMPSs, CellSs (central queue, bundled dispatch, no
// stealing, renaming) and SuperMatrix (graph-first, owner-bound blocks,
// no renaming) — across a thread sweep.
func ExtModels(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	r := &Result{
		ID:     "ext-models",
		Title:  fmt.Sprintf("Execution models on Cholesky %d×%d (Gflop/s)", cfg.Dim, cfg.Dim),
		XLabel: "threads",
		YLabel: "Gflop/s",
	}
	flops := kernels.CholeskyFlops(cfg.Dim)
	spd := kernels.GenSPD(cfg.Dim, 41)
	nb := cfg.Dim / cfg.Block

	smpss := Series{Name: "smpss"}
	cell := Series{Name: "cellss"}
	superm := Series{Name: "supermatrix"}
	for _, t := range ThreadSweep(cfg.MaxThreads) {
		// SMPSs (paper scheduler, renaming, eager).
		h := hypermatrix.FromFlat(spd, nb, cfg.Block)
		var secs float64
		withProcs(t, func() {
			rt := core.New(core.Config{Workers: t})
			al := linalg.New(rt, cfg.provider(), cfg.Block)
			secs = timeIt(func() {
				al.CholeskyDense(h)
				if err := rt.Barrier(); err != nil {
					panic(err)
				}
			})
			rt.Close()
		})
		smpss.add(float64(t), flops/secs/1e9)

		// CellSs (eager, central queue, bundles, no stealing).
		h = hypermatrix.FromFlat(spd, nb, cfg.Block)
		withProcs(t, func() {
			rt := cellss.New(cellss.Config{Workers: t})
			ts := cellss.NewTasks(cfg.provider(), cfg.Block)
			secs = timeIt(func() {
				cellss.Cholesky(rt, ts, h)
				if err := rt.Barrier(); err != nil {
					panic(err)
				}
			})
			rt.Close()
		})
		cell.add(float64(t), flops/secs/1e9)

		// SuperMatrix (graph first, then execute; owner-bound; no renaming).
		h = hypermatrix.FromFlat(spd, nb, cfg.Block)
		withProcs(t, func() {
			rt := supermatrix.New(supermatrix.Config{Workers: t})
			ts := supermatrix.NewTasks(cfg.provider(), cfg.Block)
			secs = timeIt(func() {
				supermatrix.Cholesky(rt, ts, h)
				if err := rt.Execute(); err != nil {
					panic(err)
				}
			})
		})
		superm.add(float64(t), flops/secs/1e9)
	}
	r.Series = append(r.Series, smpss, cell, superm)
	r.Notes = append(r.Notes,
		"cellss: eager like SMPSs but one central queue, bundled dispatch, no stealing (paper §VII.A)",
		"supermatrix: whole graph developed before execution, blocks owned by cores, no renaming (§VII.C)")
	r.Elapsed = time.Since(start)
	return r
}

// ExtQR sweeps threads on the tiled QR factorization (paper reference
// [10]), whose coupled panel chains and renaming-driven lookahead stress
// the runtime harder than Cholesky.
func ExtQR(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	dim := cfg.Dim / 2 // QR is ~4× the flops of Cholesky; keep wall time similar
	block := cfg.Block / 2
	if block < 16 {
		block = 16
	}
	if dim < block {
		dim = block
	}
	nb := dim / block
	r := &Result{
		ID:     "ext-qr",
		Title:  fmt.Sprintf("Tiled QR %d×%d, block %d (Gflop/s)", dim, dim, block),
		XLabel: "threads",
		YLabel: "Gflop/s",
	}
	flops := kernels.QRFlops(dim)
	a0 := kernels.GenMatrix(dim, 43)

	s := Series{Name: "SMPSs tiled QR"}
	var renames int64
	for _, t := range ThreadSweep(cfg.MaxThreads) {
		h := hypermatrix.FromFlat(a0, nb, block)
		var secs float64
		withProcs(t, func() {
			rt := core.New(core.Config{Workers: t})
			al := linalg.New(rt, cfg.provider(), block)
			secs = timeIt(func() {
				al.QR(h)
				if err := rt.Barrier(); err != nil {
					panic(err)
				}
			})
			renames = rt.Stats().Deps.Renames
			rt.Close()
		})
		s.add(float64(t), flops/secs/1e9)
	}
	r.Series = append(r.Series, s)
	r.Notes = append(r.Notes,
		fmt.Sprintf("%d renames per run: the diagonal-tile lookahead described in linalg/qr.go", renames))
	r.Elapsed = time.Since(start)
	return r
}

// ExtSparseLU sweeps threads on the block-sparse LU factorization,
// comparing the dependency-aware submission against the taskwait-fenced
// OpenMP-3.0-tasks version and the sequential baseline.
func ExtSparseLU(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	n, m, density := cfg.SparseLUBlocks, cfg.SparseLUBlock, 0.35
	r := &Result{
		ID:     "ext-sparselu",
		Title:  fmt.Sprintf("SparseLU %d×%d blocks of %d×%d, density %.0f%% (speedup vs sequential)", n, n, m, m, density*100),
		XLabel: "threads",
		YLabel: "speedup",
	}
	input := apps.GenSparseLU(n, m, density, 5)

	seqH := input.Clone()
	seqSecs := timeIt(func() {
		if !apps.SparseLUSeq(seqH) {
			panic("ext-sparselu: sequential factorization failed")
		}
	})
	want := seqH.ToFlat()

	smpss := Series{Name: "SMPSs"}
	omp := Series{Name: "OMP3 tasks"}
	for _, t := range ThreadSweep(cfg.MaxThreads) {
		h := input.Clone()
		var secs float64
		withProcs(t, func() {
			rt := core.New(core.Config{Workers: t})
			secs = timeIt(func() {
				if err := apps.SparseLUSMPSs(rt.Context(), h); err != nil {
					panic(err)
				}
				if err := rt.Barrier(); err != nil {
					panic(err)
				}
			})
			rt.Close()
		})
		checkExact(h.ToFlat(), want, "ext-sparselu smpss")
		smpss.add(float64(t), seqSecs/secs)

		h = input.Clone()
		withProcs(t, func() {
			pool := omptask.New(t)
			secs = timeIt(func() { apps.SparseLUOMP3(pool, h) })
			pool.Close()
		})
		checkExact(h.ToFlat(), want, "ext-sparselu omp3")
		omp.add(float64(t), seqSecs/secs)
	}
	r.Series = append(r.Series, smpss, omp)
	r.Notes = append(r.Notes, "results verified exact against the sequential factorization at every point")
	r.Elapsed = time.Since(start)
	return r
}

// ExtHeat sweeps threads on the Gauss-Seidel heat solver: the wavefront
// the dependency tracker derives, with renaming pipelining consecutive
// sweeps.
func ExtHeat(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	n, m, sweeps := cfg.HeatBlocks, cfg.HeatBlock, cfg.HeatSweeps
	r := &Result{
		ID:     "ext-heat",
		Title:  fmt.Sprintf("Heat Gauss-Seidel %d×%d grid, %d sweeps (speedup vs sequential)", n*m, n*m, sweeps),
		XLabel: "threads",
		YLabel: "speedup",
	}
	bc := apps.HeatBC{Top: 1}
	grid := hypermatrix.New(n, m)
	for d := 0; d < n*m; d++ {
		grid.Set(d, d, 0.5)
	}

	seqG := grid.Clone()
	seqSecs := timeIt(func() { apps.HeatSeqGS(seqG, bc, sweeps) })
	want := seqG.ToFlat()

	s := Series{Name: "SMPSs wavefront"}
	var renames int64
	for _, t := range ThreadSweep(cfg.MaxThreads) {
		h := grid.Clone()
		var secs float64
		withProcs(t, func() {
			rt := core.New(core.Config{Workers: t})
			secs = timeIt(func() {
				if err := apps.HeatSMPSsGS(rt.Context(), h, bc, sweeps); err != nil {
					panic(err)
				}
				if err := rt.Barrier(); err != nil {
					panic(err)
				}
			})
			renames = rt.Stats().Deps.Renames
			rt.Close()
		})
		checkExact(h.ToFlat(), want, "ext-heat")
		s.add(float64(t), seqSecs/secs)
	}
	r.Series = append(r.Series, s)
	r.Notes = append(r.Notes,
		fmt.Sprintf("%d renames per run pipeline consecutive sweeps; results exact vs sequential", renames))
	r.Elapsed = time.Since(start)
	return r
}

// checkExact panics if two result matrices differ — the extension
// experiments double as end-to-end correctness checks.
func checkExact(got, want []float32, what string) {
	for i := range want {
		if got[i] != want[i] {
			panic(fmt.Sprintf("%s: result diverged from sequential at element %d", what, i))
		}
	}
}

// ExtBundle sweeps the CellSs pre-scheduling group size on the blocked
// Cholesky at full thread count: bundle 1 degenerates to a pure central
// queue (maximum dispatch traffic), large bundles cut dispatches but let
// one worker hoard ready tasks while others idle — the trade-off behind
// §VII.A's "pre-schedules groups of tasks together".
func ExtBundle(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	r := &Result{
		ID:     "ext-bundle",
		Title:  fmt.Sprintf("CellSs bundle size on Cholesky %d×%d at %d threads (Gflop/s)", cfg.Dim, cfg.Dim, cfg.MaxThreads),
		XLabel: "bundle",
		YLabel: "Gflop/s",
	}
	flops := kernels.CholeskyFlops(cfg.Dim)
	spd := kernels.GenSPD(cfg.Dim, 47)
	nb := cfg.Dim / cfg.Block
	s := Series{Name: "cellss"}
	for _, bundle := range []int{1, 2, 4, 8, 16, 32} {
		h := hypermatrix.FromFlat(spd, nb, cfg.Block)
		var secs float64
		var meanBundle float64
		withProcs(cfg.MaxThreads, func() {
			rt := cellss.New(cellss.Config{Workers: cfg.MaxThreads, Bundle: bundle})
			ts := cellss.NewTasks(cfg.provider(), cfg.Block)
			secs = timeIt(func() {
				cellss.Cholesky(rt, ts, h)
				if err := rt.Barrier(); err != nil {
					panic(err)
				}
			})
			st := rt.Stats()
			if st.Bundles > 0 {
				meanBundle = float64(st.BundledTasks) / float64(st.Bundles)
			}
			rt.Close()
		})
		s.add(float64(bundle), flops/secs/1e9)
		r.Notes = append(r.Notes,
			fmt.Sprintf("bundle %d: mean dispatched group %.2f tasks", bundle, meanBundle))
	}
	r.Series = append(r.Series, s)
	r.Elapsed = time.Since(start)
	return r
}
