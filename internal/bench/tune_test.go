package bench

import (
	"path/filepath"
	"testing"

	"repro/internal/kernels"
)

// restoreEngines snapshots every engine provider's blocking so tuner
// tests (which reconfigure the live engines) leave the process as they
// found it.
func restoreEngines(t *testing.T) func() {
	t.Helper()
	orig := map[string]kernels.Params{}
	for _, name := range kernels.EngineProviders() {
		p, _ := kernels.EngineParams(name)
		orig[name] = p
	}
	return func() {
		for name, p := range orig {
			if err := kernels.ConfigureEngine(name, p); err != nil {
				t.Fatalf("restoring %s: %v", name, err)
			}
		}
	}
}

// TestTuneWritesAndAppliesProfile drives the full -tune path at quick
// scale: the sweep must cover every engine provider's shapes, the
// winners must be installed on the live engines, and the persisted
// profile must round-trip through ApplyProfile to the same parameters.
func TestTuneWritesAndAppliesProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick autotune sweep")
	}
	defer restoreEngines(t)()

	out := filepath.Join(t.TempDir(), "profile.json")
	cfg := Config{Quick: true, ProfileOut: out}
	res := Tune(cfg)

	wantSeries := 0
	for _, name := range kernels.EngineProviders() {
		wantSeries += len(kernels.EngineShapes(name))
	}
	if len(res.Series) != wantSeries {
		t.Fatalf("tune produced %d series, want one per (provider, shape) = %d",
			len(res.Series), wantSeries)
	}

	prof, err := kernels.LoadProfile(out)
	if err != nil {
		t.Fatalf("tune did not persist a loadable profile: %v", err)
	}
	if prof.Version != kernels.ProfileVersion {
		t.Fatalf("profile version %d, want %d", prof.Version, kernels.ProfileVersion)
	}
	for _, name := range kernels.EngineProviders() {
		pp, ok := prof.Providers[name]
		if !ok {
			t.Fatalf("profile missing engine provider %s", name)
		}
		if pp.KC < 1 || pp.MR < 1 || pp.NR < 1 || pp.Crossover < 0 {
			t.Fatalf("%s: profile holds junk params %+v", name, pp.Params)
		}
		if len(pp.GflopsGemmNN) == 0 {
			t.Fatalf("%s: profile carries no measured rates", name)
		}
		// Tune installs the winners on the live engines before returning.
		if live, _ := kernels.EngineParams(name); live != pp.Params {
			t.Fatalf("%s: live engine %+v differs from persisted winner %+v",
				name, live, pp.Params)
		}
	}

	// Perturb the engines, then prove the saved profile re-blocks them.
	for _, name := range kernels.EngineProviders() {
		shape := kernels.EngineShapes(name)[0]
		if err := kernels.ConfigureEngine(name,
			kernels.Params{MR: shape.MR, NR: shape.NR, KC: 48, Crossover: 4}); err != nil {
			t.Fatal(err)
		}
	}
	loaded, applied, err := ApplyProfile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != len(kernels.EngineProviders()) {
		t.Fatalf("ApplyProfile re-blocked %v, want all engine providers", applied)
	}
	for _, name := range applied {
		if live, _ := kernels.EngineParams(name); live != loaded.Providers[name].Params {
			t.Fatalf("%s: ApplyProfile left engine at %+v, profile says %+v",
				name, live, loaded.Providers[name].Params)
		}
	}
}

// TestWriteJSONReport pins the structured-emission schema: engines with
// their run-time blocking, the host stamp, and one entry per result.
func TestWriteJSONReport(t *testing.T) {
	res := &Result{ID: "tune", Title: "t", XLabel: "x", YLabel: "y",
		Series: []Series{{Name: "s", Points: []Point{{X: 1, Y: 2}}}}}
	rep := Report(Config{Quick: true}, []*Result{res})
	if len(rep.Results) != 1 || rep.Results[0].ID != "tune" {
		t.Fatalf("report results = %+v", rep.Results)
	}
	if len(rep.Engines) != len(kernels.EngineProviders()) {
		t.Fatalf("report lists %d engines, want %d", len(rep.Engines), len(kernels.EngineProviders()))
	}
	if rep.Host.Arch == "" || rep.Host.GoVersion == "" {
		t.Fatalf("report host stamp incomplete: %+v", rep.Host)
	}
}
