package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
	"repro/internal/linalg"
)

// AblationKernels measures the compute layer itself: every tile-kernel
// provider swept across block sizes, first on the raw single-core tile
// GEMM (the number the micro-kernel engine exists to move) and then
// end to end through the runtime on full blocked Cholesky and LU
// factorizations.  The notes record the factorization wall-clocks, the
// deltas the tentpole is accountable for.
func AblationKernels(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	r := &Result{
		ID:     "ablation-kernels",
		Title:  fmt.Sprintf("Tile providers × block sizes: raw GEMM and Cholesky/LU %d×%d at %d threads (Gflop/s)", cfg.Dim, cfg.Dim, cfg.MaxThreads),
		XLabel: "block",
		YLabel: "Gflop/s",
	}

	// Raw tile GEMM: one provider series across the block sweep, using
	// the same budget-calibrated measurement as the figures' "peak"
	// series (gemmRate).
	rawBlocks := []int{32, 64, 128, 256}
	budget := 1 << 27
	if cfg.Quick {
		rawBlocks = []int{16, 32, 64}
		budget = 1 << 23
	}
	for _, p := range kernels.Providers {
		s := Series{Name: "gemm " + p.Name}
		for _, b := range rawBlocks {
			s.add(float64(b), gemmRate(p, b, budget))
		}
		r.Series = append(r.Series, s)
	}

	// Full factorizations through the runtime: providers × block sizes
	// on the same matrix, at the full thread count.
	factBlocks := []int{64, 128, 256}
	if cfg.Quick {
		factBlocks = []int{16, 32}
	}
	spd := kernels.GenSPD(cfg.Dim, 23)
	for _, algo := range []struct {
		name   string
		flops  float64
		factor func(al *linalg.Algos, h *hypermatrix.Matrix)
	}{
		{"cholesky", kernels.CholeskyFlops(cfg.Dim),
			func(al *linalg.Algos, h *hypermatrix.Matrix) { al.CholeskyDense(h) }},
		{"lu", kernels.LUFlops(cfg.Dim),
			func(al *linalg.Algos, h *hypermatrix.Matrix) { al.LU(h) }},
	} {
		for _, p := range kernels.Providers {
			s := Series{Name: algo.name + " " + p.Name}
			for _, block := range factBlocks {
				if cfg.Dim%block != 0 {
					continue
				}
				h := hypermatrix.FromFlat(spd, cfg.Dim/block, block)
				var secs float64
				withProcs(cfg.MaxThreads, func() {
					rt := core.New(core.Config{Workers: cfg.MaxThreads})
					al := linalg.New(rt, p, block)
					secs = timeIt(func() {
						algo.factor(al, h)
						if err := rt.Barrier(); err != nil {
							panic(err)
						}
					})
					rt.Close()
				})
				s.add(float64(block), algo.flops/secs/1e9)
				r.Notes = append(r.Notes, fmt.Sprintf(
					"%s/%s block %d: %.3fs", algo.name, p.Name, block, secs))
			}
			r.Series = append(r.Series, s)
		}
	}
	r.Elapsed = time.Since(start)
	return r
}
