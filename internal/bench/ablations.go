package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
	"repro/internal/linalg"
)

// The ablations make the design decisions of DESIGN.md measurable: each
// switches off one mechanism the paper argues for and reports the cost.

// renameConfigs are the three rename lifecycles the ablation compares:
// the pooled memory manager (default), the seed lifecycle
// (LegacyRenaming: fresh heap allocation per rename, superseded
// versions to the GC), and renaming disabled (hazards become edges).
var renameConfigs = []struct {
	name string
	cfg  core.Config
}{
	{"pooled", core.Config{}},
	{"legacy", core.Config{LegacyRenaming: true}},
	{"no-renaming", core.Config{DisableRenaming: true}},
}

// renameRun is one measured configuration: wall time plus the runtime
// counters snapshotted after the final barrier (when live renamed bytes
// must have drained to zero).
type renameRun struct {
	secs float64
	st   core.Stats
}

// runRenameWorkload measures body once under rtCfg.  All configurations
// run under the same bounded open-graph limit (the paper's §III graph
// size limit, as any production configuration would): it keeps the
// submitter a bounded window ahead of execution, which is what lets
// superseded renamed storage recycle into later rounds instead of the
// whole program being analyzed before a single task has completed.
func runRenameWorkload(threads int, rtCfg core.Config, body func(rt *core.Runtime)) renameRun {
	var out renameRun
	withProcs(threads, func() {
		rtCfg.Workers = threads
		if rtCfg.GraphLimit == 0 {
			rtCfg.GraphLimit = 256
		}
		rt := core.New(rtCfg)
		out.secs = timeIt(func() {
			body(rt)
			if err := rt.Barrier(); err != nil {
				panic(err)
			}
		})
		out.st = rt.Stats()
		rt.Close()
	})
	return out
}

// factorRounds runs `rounds` pipelined reset+factor passes over the
// same matrix with no intermediate barriers: every round's block resets
// arrive while the previous round's consumers may still be pending, so
// each reset renames instead of waiting — the version-churn pattern of
// the paper's §III renaming argument on a real factorization.
func factorRounds(al *linalg.Algos, flat []float32, nb, block, rounds int, factor func(al *linalg.Algos, a *hypermatrix.Matrix)) {
	a := hypermatrix.FromFlat(flat, nb, block)
	src := hypermatrix.FromFlat(flat, nb, block)
	for r := 0; r < rounds; r++ {
		al.ResetFrom(a, src)
		factor(al, a)
	}
}

// choleskyChurnStats runs the pipelined reset+Cholesky workload under
// rtCfg with the given tile provider and returns its measurement.
// Exposed to the acceptance test, which asserts the pooled lifecycle
// allocates strictly fewer fresh instances than the legacy one.
func choleskyChurnStats(threads, dim, block, rounds int, rtCfg core.Config, p kernels.Provider) renameRun {
	flat := kernels.GenSPD(dim, 13)
	nb := dim / block
	return runRenameWorkload(threads, rtCfg, func(rt *core.Runtime) {
		al := linalg.New(rt, p, block)
		factorRounds(al, flat, nb, block, rounds,
			func(al *linalg.Algos, a *hypermatrix.Matrix) { al.CholeskyDense(a) })
	})
}

// AblationRenaming measures the version-lifecycle memory manager: the
// size-classed recycling pool, eager refcount-driven reclamation and
// copy elision against the seed rename lifecycle (LegacyRenaming) and
// against renaming disabled, over pipelined blocked Cholesky and LU
// rounds plus a synthetic version-churn loop.  The numbers to read are
// in the notes: "fresh" is the count of real heap allocations the
// renaming engine performed (PoolMisses under the pooled lifecycle,
// Renames under the legacy one), and live renamed bytes after the final
// barrier must be zero under the pooled lifecycle.
func AblationRenaming(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	r := &Result{
		ID:     "ablation-rename",
		Title:  "Rename lifecycle: pooled vs legacy vs disabled (seconds, lower is better)",
		XLabel: "threads",
		YLabel: "seconds",
	}
	threads := cfg.MaxThreads
	dim, block := cfg.Dim, cfg.Block
	rounds := 4
	if cfg.Quick {
		rounds = 3
	}
	nb := dim / block

	note := func(wl, name string, cfg core.Config, run renameRun) {
		st := run.st
		// Fresh allocations: pool misses under the pooled lifecycle;
		// every rename allocates under the legacy (or disabled) one.
		fresh := st.PoolMisses
		if cfg.LegacyRenaming || cfg.DisableRenaming {
			fresh = st.Renames
		}
		r.Notes = append(r.Notes, fmt.Sprintf(
			"%s/%s: renames=%d fresh-allocs=%d pool-hits=%d elided=%d false-edges=%d live-bytes-after-barrier=%d",
			wl, name, st.Renames, fresh, st.PoolHits, st.RenamesElided, st.Deps.FalseEdges, st.LiveRenamedBytes))
	}

	// Blocked Cholesky, pipelined reset+factor rounds.
	for _, c := range renameConfigs {
		run := choleskyChurnStats(threads, dim, block, rounds, c.cfg, cfg.provider())
		s := Series{Name: "cholesky " + c.name}
		s.add(float64(threads), run.secs)
		r.Series = append(r.Series, s)
		note("cholesky", c.name, c.cfg, run)
	}

	// Blocked LU (no pivoting), same churn structure.
	luflat := kernels.GenSPD(dim, 17)
	for _, c := range renameConfigs {
		run := runRenameWorkload(threads, c.cfg, func(rt *core.Runtime) {
			al := linalg.New(rt, cfg.provider(), block)
			factorRounds(al, luflat, nb, block, rounds,
				func(al *linalg.Algos, a *hypermatrix.Matrix) { al.LU(a) })
		})
		s := Series{Name: "lu " + c.name}
		s.add(float64(threads), run.secs)
		r.Series = append(r.Series, s)
		note("lu", c.name, c.cfg, run)
	}

	// Synthetic version churn: every refill overwrites a buffer a
	// pending reader still consumes, so each iteration renames (or,
	// with renaming disabled, serializes on the WAR edge).  All buffers
	// share one size class, the recycling pool's best case.
	nObj, iters, blockLen := 64, 96, 4096
	if cfg.Quick {
		nObj, iters, blockLen = 8, 12, 512
	}
	consume := core.NewTaskDef("churn_consume_t", func(a *core.Args) {
		x := a.F32(0)
		s := float32(0)
		for _, v := range x {
			s += v
		}
		if s != s { // keep the reduction observable
			panic("churn_consume_t: NaN in input")
		}
	})
	refill := core.NewTaskDef("churn_refill_t", func(a *core.Args) {
		x := a.F32(0)
		for i := range x {
			x[i] = float32(i)
		}
	})
	for _, c := range renameConfigs {
		run := runRenameWorkload(threads, c.cfg, func(rt *core.Runtime) {
			bufs := make([][]float32, nObj)
			for i := range bufs {
				bufs[i] = make([]float32, blockLen)
			}
			batch := rt.NewBatch()
			for it := 0; it < iters; it++ {
				for o := range bufs {
					batch.Add(consume, core.In(bufs[o]))
					batch.Add(refill, core.Out(bufs[o]))
				}
				if err := batch.Submit(); err != nil {
					panic(err)
				}
			}
		})
		s := Series{Name: "churn " + c.name}
		s.add(float64(threads), run.secs)
		r.Series = append(r.Series, s)
		note("churn", c.name, c.cfg, run)
	}

	r.Elapsed = time.Since(start)
	return r
}

// AblationScheduler compares the paper's locality scheduler against a
// single global FIFO queue (the SuperMatrix structure, §VII.C) on the
// dense Cholesky.
func AblationScheduler(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	r := &Result{
		ID:     "ablation-sched",
		Title:  fmt.Sprintf("Scheduler policy on Cholesky %d×%d (Gflop/s)", cfg.Dim, cfg.Dim),
		XLabel: "threads",
		YLabel: "Gflop/s",
	}
	flops := kernels.CholeskyFlops(cfg.Dim)
	spd := kernels.GenSPD(cfg.Dim, 13)
	nb := cfg.Dim / cfg.Block
	for _, policy := range []core.SchedulerKind{core.SchedLocality, core.SchedGlobalFIFO} {
		name := "locality"
		if policy == core.SchedGlobalFIFO {
			name = "global-fifo"
		}
		s := Series{Name: name}
		for _, t := range ThreadSweep(cfg.MaxThreads) {
			h := hypermatrix.FromFlat(spd, nb, cfg.Block)
			var secs float64
			withProcs(t, func() {
				rt := core.New(core.Config{Workers: t, Scheduler: policy})
				al := linalg.New(rt, cfg.provider(), cfg.Block)
				secs = timeIt(func() {
					al.CholeskyDense(h)
					if err := rt.Barrier(); err != nil {
						panic(err)
					}
				})
				rt.Close()
			})
			s.add(float64(t), flops/secs/1e9)
		}
		r.Series = append(r.Series, s)
	}
	r.Elapsed = time.Since(start)
	return r
}

// AblationTracker measures the runtime-structure overhaul on a
// submission-heavy microbenchmark: many chains of deliberately tiny inout
// tasks, so tracker entry and ready-queue traffic dominate over compute.
//
// "global-tracker" is the seed runtime's structure — a single-stripe
// (global-mutex) dependency tracker, one tracker lock round-trip per
// submitted parameter, the locality ready lists under the global
// condvar that broadcast on every push while any worker slept.
// "sharded-tracker" is the overhauled runtime — the lock-striped
// tracker, the per-worker bounded deques with steal-half work stealing
// and per-worker parking, and batched submission (Batch) amortizing
// tracker entry.  Both sweep the worker count; the notes record a
// shard-count sweep at the maximum worker count so the striping itself
// is measured, not just asserted.
func AblationTracker(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	objects, chain, block := 256, 128, 64
	if cfg.Quick {
		objects, chain = 64, 16
	}
	total := objects * chain
	r := &Result{
		ID:     "ablation-tracker",
		Title:  fmt.Sprintf("Sharded tracker + work stealing vs global lock, %d×%d-task chains (ktasks/s)", objects, chain),
		XLabel: "threads",
		YLabel: "ktasks/s",
	}

	// Three-parameter tasks (axpy-like: two read inputs, one inout
	// accumulator) so a batched tracker entry amortizes three per-arg
	// lock round-trips into one shard-lock pass.
	churn := core.NewTaskDef("churn_t", func(a *core.Args) {
		x, y, acc := a.F32(0), a.F32(1), a.F32(2)
		for i := range acc {
			acc[i] = acc[i]*1.0001 + x[i] + y[i]
		}
	})
	// run returns throughput in thousands of tasks per second for one
	// runtime configuration.  overhauled=false reproduces the seed
	// runtime's structure: one tracker stripe behind a global mutex, a
	// per-parameter tracker round-trip per submission, the list-based
	// locality policy, and the broadcast condvar.
	run := func(threads, shards int, policy core.SchedulerKind, overhauled bool) float64 {
		// Per-chain inputs: sharing read inputs across chains would make
		// every task append to a few giant reader lists whose pruning
		// cost depends on execution order, drowning the structural
		// difference under an artifact of the workload.
		accs := make([][]float32, objects)
		xs := make([][]float32, objects)
		ys := make([][]float32, objects)
		for i := range accs {
			accs[i] = make([]float32, block)
			xs[i] = make([]float32, block)
			ys[i] = make([]float32, block)
		}
		// Best of three: tiny-task timings on a loaded machine are
		// dominated by preemption noise, and the least-disturbed run is
		// the one that reflects the runtime's structural cost.
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			var secs float64
			withProcs(threads, func() {
				rt := core.New(core.Config{
					Workers:           threads,
					Scheduler:         policy,
					TrackerShards:     shards,
					UnbatchedAnalysis: !overhauled,
					LegacyWakeup:      !overhauled,
				})
				secs = timeIt(func() {
					if overhauled {
						batch := rt.NewBatch()
						for o, b := range accs {
							for k := 0; k < chain; k++ {
								batch.Add(churn,
									core.In(xs[o]), core.In(ys[o]), core.InOut(b))
							}
							if err := batch.Submit(); err != nil {
								panic(err)
							}
						}
					} else {
						for o, b := range accs {
							for k := 0; k < chain; k++ {
								rt.Submit(churn,
									core.In(xs[o]), core.In(ys[o]), core.InOut(b))
							}
						}
					}
					if err := rt.Barrier(); err != nil {
						panic(err)
					}
				})
				rt.Close()
			})
			if tput := float64(total) / secs / 1e3; tput > best {
				best = tput
			}
		}
		return best
	}

	global := Series{Name: "global-tracker"}
	sharded := Series{Name: "sharded-tracker"}
	for _, t := range ThreadSweep(cfg.MaxThreads) {
		global.add(float64(t), run(t, 1, core.SchedLegacyLists, false))
		sharded.add(float64(t), run(t, 0, core.SchedLocality, true))
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("%d chains × %d tasks of %d-float axpy; global = seed runtime (1 tracker stripe, per-arg lock round-trips, locality lists under a broadcast condvar); sharded = striped tracker + Batch submission + steal-half deques + per-worker parking", objects, chain, block))
	r.Series = append(r.Series, global, sharded)

	// Shard-count sweep at full thread count, everything else overhauled.
	maxShards := 16
	if cfg.Quick {
		maxShards = 8
	}
	for shards := 1; shards <= maxShards; shards *= 2 {
		tput := run(cfg.MaxThreads, shards, core.SchedLocality, true)
		r.Notes = append(r.Notes,
			fmt.Sprintf("%2d shard(s) at %d threads: %.1f ktasks/s", shards, cfg.MaxThreads, tput))
	}
	r.Elapsed = time.Since(start)
	return r
}

// AblationRegions compares the §V.A array-region dependencies against
// whole-array directionality on Multisort, quantifying why the paper
// needed regions (or their representant workaround) for flat data.
func AblationRegions(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	r := &Result{
		ID:     "ablation-regions",
		Title:  fmt.Sprintf("Array regions vs whole-array deps, Multisort %d keys (seconds)", cfg.SortKeys),
		XLabel: "threads",
		YLabel: "seconds",
	}
	orig := randKeys(cfg.SortKeys, 21)
	scfg := sortCfgFor(cfg.SortKeys)
	for _, model := range []string{"smpss", "smpss-coarse"} {
		name := "regions"
		if model == "smpss-coarse" {
			name = "whole-array"
		}
		s := Series{Name: name}
		for _, t := range []int{1, cfg.MaxThreads} {
			s.add(float64(t), multisortSecs(model, t, orig, scfg))
		}
		r.Series = append(r.Series, s)
	}
	r.Elapsed = time.Since(start)
	return r
}

// AblationThrottle sweeps the open-graph limit on the dense Cholesky:
// too small throttles the discovery of distant parallelism, unlimited
// costs memory (the paper's §III names the graph size limit as one of
// the main thread's blocking conditions).
func AblationThrottle(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	r := &Result{
		ID:     "ablation-throttle",
		Title:  fmt.Sprintf("Open-graph limit on Cholesky %d×%d (Gflop/s at %d threads)", cfg.Dim, cfg.Dim, cfg.MaxThreads),
		XLabel: "limit",
		YLabel: "Gflop/s",
	}
	flops := kernels.CholeskyFlops(cfg.Dim)
	spd := kernels.GenSPD(cfg.Dim, 14)
	nb := cfg.Dim / cfg.Block
	s := Series{Name: "SMPSs+" + cfg.provider().Name + " tiles"}
	for _, limit := range []int{8, 64, 512, 4096, core.DefaultGraphLimit} {
		h := hypermatrix.FromFlat(spd, nb, cfg.Block)
		var secs float64
		withProcs(cfg.MaxThreads, func() {
			rt := core.New(core.Config{Workers: cfg.MaxThreads, GraphLimit: limit})
			al := linalg.New(rt, cfg.provider(), cfg.Block)
			secs = timeIt(func() {
				al.CholeskyDense(h)
				if err := rt.Barrier(); err != nil {
					panic(err)
				}
			})
			rt.Close()
		})
		s.add(float64(limit), flops/secs/1e9)
	}
	r.Series = append(r.Series, s)
	r.Elapsed = time.Since(start)
	return r
}
