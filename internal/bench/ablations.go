package bench

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
	"repro/internal/linalg"
)

// The ablations make the design decisions of DESIGN.md measurable: each
// switches off one mechanism the paper argues for and reports the cost.

// AblationRenaming compares renaming on/off for the two workloads the
// paper identifies as renaming-bound: Strassen (§VI.C) and N-Queens
// (§VI.E).  With renaming off, WAR/WAW hazards become real edges and the
// graphs serialize.
func AblationRenaming(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	r := &Result{
		ID:     "ablation-rename",
		Title:  "Renaming on/off (seconds, lower is better)",
		XLabel: "threads",
		YLabel: "seconds",
	}
	dim, block := cfg.StrassenDim, cfg.StrassenBlock
	n := dim / block
	aflat := kernels.GenMatrix(dim, 11)
	bflat := kernels.GenMatrix(dim, 12)
	threads := cfg.MaxThreads

	run := func(disable bool) (secs float64, renames, falseEdges int64) {
		a := hypermatrix.FromFlat(aflat, n, block)
		b := hypermatrix.FromFlat(bflat, n, block)
		c := hypermatrix.New(n, block)
		withProcs(threads, func() {
			rt := core.New(core.Config{Workers: threads, DisableRenaming: disable})
			al := linalg.New(rt, kernels.Fast, block)
			secs = timeIt(func() {
				al.Strassen(a, b, c)
				if err := rt.Barrier(); err != nil {
					panic(err)
				}
			})
			st := rt.Stats()
			renames, falseEdges = st.Deps.Renames, st.Deps.FalseEdges
			rt.Close()
		})
		return
	}
	on := Series{Name: "strassen renaming"}
	off := Series{Name: "strassen no-renaming"}
	sOn, ren, _ := run(false)
	sOff, _, fe := run(true)
	on.add(float64(threads), sOn)
	off.add(float64(threads), sOff)
	r.Series = append(r.Series, on, off)
	r.Notes = append(r.Notes,
		fmt.Sprintf("renaming on: %d renames; off: %d false edges materialized", ren, fe))

	qOn := Series{Name: "nqueens renaming"}
	qOff := Series{Name: "nqueens no-renaming"}
	want := apps.NQueensSeq(cfg.QueensN)
	for _, disable := range []bool{false, true} {
		var secs float64
		withProcs(threads, func() {
			rt := core.New(core.Config{Workers: threads, DisableRenaming: disable})
			secs = timeIt(func() {
				got, err := apps.NQueensSMPSs(rt, cfg.QueensN)
				if err != nil {
					panic(err)
				}
				if got != want {
					panic("ablation-rename: wrong queens count")
				}
			})
			rt.Close()
		})
		if disable {
			qOff.add(float64(threads), secs)
		} else {
			qOn.add(float64(threads), secs)
		}
	}
	r.Series = append(r.Series, qOn, qOff)

	// Stream: the §II shared-temporary pattern.  One named work array;
	// renaming decides whether blocks·iters steps are independent or a
	// serial WAR chain.
	nb, bm, iters := 128, 2048, 8
	if cfg.Quick {
		nb, bm, iters = 8, 64, 2
	}
	stOn := Series{Name: "stream renaming"}
	stOff := Series{Name: "stream no-renaming"}
	for _, disable := range []bool{false, true} {
		v := apps.NewStreamVectors(nb, bm)
		var secs float64
		withProcs(threads, func() {
			rt := core.New(core.Config{Workers: threads, DisableRenaming: disable})
			secs = timeIt(func() {
				if err := apps.StreamSMPSs(rt, v, 0.5, iters); err != nil {
					panic(err)
				}
				if err := rt.Barrier(); err != nil {
					panic(err)
				}
			})
			rt.Close()
		})
		if disable {
			stOff.add(float64(threads), secs)
		} else {
			stOn.add(float64(threads), secs)
		}
	}
	r.Series = append(r.Series, stOn, stOff)
	r.Elapsed = time.Since(start)
	return r
}

// AblationScheduler compares the paper's locality scheduler against a
// single global FIFO queue (the SuperMatrix structure, §VII.C) on the
// dense Cholesky.
func AblationScheduler(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	r := &Result{
		ID:     "ablation-sched",
		Title:  fmt.Sprintf("Scheduler policy on Cholesky %d×%d (Gflop/s)", cfg.Dim, cfg.Dim),
		XLabel: "threads",
		YLabel: "Gflop/s",
	}
	flops := kernels.CholeskyFlops(cfg.Dim)
	spd := kernels.GenSPD(cfg.Dim, 13)
	nb := cfg.Dim / cfg.Block
	for _, policy := range []core.SchedulerKind{core.SchedLocality, core.SchedGlobalFIFO} {
		name := "locality"
		if policy == core.SchedGlobalFIFO {
			name = "global-fifo"
		}
		s := Series{Name: name}
		for _, t := range ThreadSweep(cfg.MaxThreads) {
			h := hypermatrix.FromFlat(spd, nb, cfg.Block)
			var secs float64
			withProcs(t, func() {
				rt := core.New(core.Config{Workers: t, Scheduler: policy})
				al := linalg.New(rt, kernels.Fast, cfg.Block)
				secs = timeIt(func() {
					al.CholeskyDense(h)
					if err := rt.Barrier(); err != nil {
						panic(err)
					}
				})
				rt.Close()
			})
			s.add(float64(t), flops/secs/1e9)
		}
		r.Series = append(r.Series, s)
	}
	r.Elapsed = time.Since(start)
	return r
}

// AblationRegions compares the §V.A array-region dependencies against
// whole-array directionality on Multisort, quantifying why the paper
// needed regions (or their representant workaround) for flat data.
func AblationRegions(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	r := &Result{
		ID:     "ablation-regions",
		Title:  fmt.Sprintf("Array regions vs whole-array deps, Multisort %d keys (seconds)", cfg.SortKeys),
		XLabel: "threads",
		YLabel: "seconds",
	}
	orig := randKeys(cfg.SortKeys, 21)
	scfg := sortCfgFor(cfg.SortKeys)
	for _, model := range []string{"smpss", "smpss-coarse"} {
		name := "regions"
		if model == "smpss-coarse" {
			name = "whole-array"
		}
		s := Series{Name: name}
		for _, t := range []int{1, cfg.MaxThreads} {
			s.add(float64(t), multisortSecs(model, t, orig, scfg))
		}
		r.Series = append(r.Series, s)
	}
	r.Elapsed = time.Since(start)
	return r
}

// AblationThrottle sweeps the open-graph limit on the dense Cholesky:
// too small throttles the discovery of distant parallelism, unlimited
// costs memory (the paper's §III names the graph size limit as one of
// the main thread's blocking conditions).
func AblationThrottle(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	r := &Result{
		ID:     "ablation-throttle",
		Title:  fmt.Sprintf("Open-graph limit on Cholesky %d×%d (Gflop/s at %d threads)", cfg.Dim, cfg.Dim, cfg.MaxThreads),
		XLabel: "limit",
		YLabel: "Gflop/s",
	}
	flops := kernels.CholeskyFlops(cfg.Dim)
	spd := kernels.GenSPD(cfg.Dim, 14)
	nb := cfg.Dim / cfg.Block
	s := Series{Name: "SMPSs+goto tiles"}
	for _, limit := range []int{8, 64, 512, 4096, core.DefaultGraphLimit} {
		h := hypermatrix.FromFlat(spd, nb, cfg.Block)
		var secs float64
		withProcs(cfg.MaxThreads, func() {
			rt := core.New(core.Config{Workers: cfg.MaxThreads, GraphLimit: limit})
			al := linalg.New(rt, kernels.Fast, cfg.Block)
			secs = timeIt(func() {
				al.CholeskyDense(h)
				if err := rt.Barrier(); err != nil {
					panic(err)
				}
			})
			rt.Close()
		})
		s.add(float64(limit), flops/secs/1e9)
	}
	r.Series = append(r.Series, s)
	r.Elapsed = time.Since(start)
	return r
}
