package bench

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
	"repro/internal/linalg"
)

// The ablations make the design decisions of DESIGN.md measurable: each
// switches off one mechanism the paper argues for and reports the cost.

// AblationRenaming compares renaming on/off for the two workloads the
// paper identifies as renaming-bound: Strassen (§VI.C) and N-Queens
// (§VI.E).  With renaming off, WAR/WAW hazards become real edges and the
// graphs serialize.
func AblationRenaming(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	r := &Result{
		ID:     "ablation-rename",
		Title:  "Renaming on/off (seconds, lower is better)",
		XLabel: "threads",
		YLabel: "seconds",
	}
	dim, block := cfg.StrassenDim, cfg.StrassenBlock
	n := dim / block
	aflat := kernels.GenMatrix(dim, 11)
	bflat := kernels.GenMatrix(dim, 12)
	threads := cfg.MaxThreads

	run := func(disable bool) (secs float64, renames, falseEdges int64) {
		a := hypermatrix.FromFlat(aflat, n, block)
		b := hypermatrix.FromFlat(bflat, n, block)
		c := hypermatrix.New(n, block)
		withProcs(threads, func() {
			rt := core.New(core.Config{Workers: threads, DisableRenaming: disable})
			al := linalg.New(rt, kernels.Fast, block)
			secs = timeIt(func() {
				al.Strassen(a, b, c)
				if err := rt.Barrier(); err != nil {
					panic(err)
				}
			})
			st := rt.Stats()
			renames, falseEdges = st.Deps.Renames, st.Deps.FalseEdges
			rt.Close()
		})
		return
	}
	on := Series{Name: "strassen renaming"}
	off := Series{Name: "strassen no-renaming"}
	sOn, ren, _ := run(false)
	sOff, _, fe := run(true)
	on.add(float64(threads), sOn)
	off.add(float64(threads), sOff)
	r.Series = append(r.Series, on, off)
	r.Notes = append(r.Notes,
		fmt.Sprintf("renaming on: %d renames; off: %d false edges materialized", ren, fe))

	qOn := Series{Name: "nqueens renaming"}
	qOff := Series{Name: "nqueens no-renaming"}
	want := apps.NQueensSeq(cfg.QueensN)
	for _, disable := range []bool{false, true} {
		var secs float64
		withProcs(threads, func() {
			rt := core.New(core.Config{Workers: threads, DisableRenaming: disable})
			secs = timeIt(func() {
				got, err := apps.NQueensSMPSs(rt, cfg.QueensN)
				if err != nil {
					panic(err)
				}
				if got != want {
					panic("ablation-rename: wrong queens count")
				}
			})
			rt.Close()
		})
		if disable {
			qOff.add(float64(threads), secs)
		} else {
			qOn.add(float64(threads), secs)
		}
	}
	r.Series = append(r.Series, qOn, qOff)

	// Stream: the §II shared-temporary pattern.  One named work array;
	// renaming decides whether blocks·iters steps are independent or a
	// serial WAR chain.
	nb, bm, iters := 128, 2048, 8
	if cfg.Quick {
		nb, bm, iters = 8, 64, 2
	}
	stOn := Series{Name: "stream renaming"}
	stOff := Series{Name: "stream no-renaming"}
	for _, disable := range []bool{false, true} {
		v := apps.NewStreamVectors(nb, bm)
		var secs float64
		withProcs(threads, func() {
			rt := core.New(core.Config{Workers: threads, DisableRenaming: disable})
			secs = timeIt(func() {
				if err := apps.StreamSMPSs(rt, v, 0.5, iters); err != nil {
					panic(err)
				}
				if err := rt.Barrier(); err != nil {
					panic(err)
				}
			})
			rt.Close()
		})
		if disable {
			stOff.add(float64(threads), secs)
		} else {
			stOn.add(float64(threads), secs)
		}
	}
	r.Series = append(r.Series, stOn, stOff)
	r.Elapsed = time.Since(start)
	return r
}

// AblationScheduler compares the paper's locality scheduler against a
// single global FIFO queue (the SuperMatrix structure, §VII.C) on the
// dense Cholesky.
func AblationScheduler(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	r := &Result{
		ID:     "ablation-sched",
		Title:  fmt.Sprintf("Scheduler policy on Cholesky %d×%d (Gflop/s)", cfg.Dim, cfg.Dim),
		XLabel: "threads",
		YLabel: "Gflop/s",
	}
	flops := kernels.CholeskyFlops(cfg.Dim)
	spd := kernels.GenSPD(cfg.Dim, 13)
	nb := cfg.Dim / cfg.Block
	for _, policy := range []core.SchedulerKind{core.SchedLocality, core.SchedGlobalFIFO} {
		name := "locality"
		if policy == core.SchedGlobalFIFO {
			name = "global-fifo"
		}
		s := Series{Name: name}
		for _, t := range ThreadSweep(cfg.MaxThreads) {
			h := hypermatrix.FromFlat(spd, nb, cfg.Block)
			var secs float64
			withProcs(t, func() {
				rt := core.New(core.Config{Workers: t, Scheduler: policy})
				al := linalg.New(rt, kernels.Fast, cfg.Block)
				secs = timeIt(func() {
					al.CholeskyDense(h)
					if err := rt.Barrier(); err != nil {
						panic(err)
					}
				})
				rt.Close()
			})
			s.add(float64(t), flops/secs/1e9)
		}
		r.Series = append(r.Series, s)
	}
	r.Elapsed = time.Since(start)
	return r
}

// AblationTracker measures the runtime-structure overhaul on a
// submission-heavy microbenchmark: many chains of deliberately tiny inout
// tasks, so tracker entry and ready-queue traffic dominate over compute.
//
// "global-tracker" is the seed runtime's structure — a single-stripe
// (global-mutex) dependency tracker, one tracker lock round-trip per
// submitted parameter, the locality ready lists under the global
// condvar that broadcast on every push while any worker slept.
// "sharded-tracker" is the overhauled runtime — the lock-striped
// tracker, the per-worker bounded deques with steal-half work stealing
// and per-worker parking, and batched submission (Batch) amortizing
// tracker entry.  Both sweep the worker count; the notes record a
// shard-count sweep at the maximum worker count so the striping itself
// is measured, not just asserted.
func AblationTracker(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	objects, chain, block := 256, 128, 64
	if cfg.Quick {
		objects, chain = 64, 16
	}
	total := objects * chain
	r := &Result{
		ID:     "ablation-tracker",
		Title:  fmt.Sprintf("Sharded tracker + work stealing vs global lock, %d×%d-task chains (ktasks/s)", objects, chain),
		XLabel: "threads",
		YLabel: "ktasks/s",
	}

	// Three-parameter tasks (axpy-like: two read inputs, one inout
	// accumulator) so a batched tracker entry amortizes three per-arg
	// lock round-trips into one shard-lock pass.
	churn := core.NewTaskDef("churn_t", func(a *core.Args) {
		x, y, acc := a.F32(0), a.F32(1), a.F32(2)
		for i := range acc {
			acc[i] = acc[i]*1.0001 + x[i] + y[i]
		}
	})
	// run returns throughput in thousands of tasks per second for one
	// runtime configuration.  overhauled=false reproduces the seed
	// runtime's structure: one tracker stripe behind a global mutex, a
	// per-parameter tracker round-trip per submission, the list-based
	// locality policy, and the broadcast condvar.
	run := func(threads, shards int, policy core.SchedulerKind, overhauled bool) float64 {
		// Per-chain inputs: sharing read inputs across chains would make
		// every task append to a few giant reader lists whose pruning
		// cost depends on execution order, drowning the structural
		// difference under an artifact of the workload.
		accs := make([][]float32, objects)
		xs := make([][]float32, objects)
		ys := make([][]float32, objects)
		for i := range accs {
			accs[i] = make([]float32, block)
			xs[i] = make([]float32, block)
			ys[i] = make([]float32, block)
		}
		// Best of three: tiny-task timings on a loaded machine are
		// dominated by preemption noise, and the least-disturbed run is
		// the one that reflects the runtime's structural cost.
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			var secs float64
			withProcs(threads, func() {
				rt := core.New(core.Config{
					Workers:           threads,
					Scheduler:         policy,
					TrackerShards:     shards,
					UnbatchedAnalysis: !overhauled,
					LegacyWakeup:      !overhauled,
				})
				secs = timeIt(func() {
					if overhauled {
						batch := rt.NewBatch()
						for o, b := range accs {
							for k := 0; k < chain; k++ {
								batch.Add(churn,
									core.In(xs[o]), core.In(ys[o]), core.InOut(b))
							}
							batch.Submit()
						}
					} else {
						for o, b := range accs {
							for k := 0; k < chain; k++ {
								rt.Submit(churn,
									core.In(xs[o]), core.In(ys[o]), core.InOut(b))
							}
						}
					}
					if err := rt.Barrier(); err != nil {
						panic(err)
					}
				})
				rt.Close()
			})
			if tput := float64(total) / secs / 1e3; tput > best {
				best = tput
			}
		}
		return best
	}

	global := Series{Name: "global-tracker"}
	sharded := Series{Name: "sharded-tracker"}
	for _, t := range ThreadSweep(cfg.MaxThreads) {
		global.add(float64(t), run(t, 1, core.SchedLegacyLists, false))
		sharded.add(float64(t), run(t, 0, core.SchedLocality, true))
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("%d chains × %d tasks of %d-float axpy; global = seed runtime (1 tracker stripe, per-arg lock round-trips, locality lists under a broadcast condvar); sharded = striped tracker + Batch submission + steal-half deques + per-worker parking", objects, chain, block))
	r.Series = append(r.Series, global, sharded)

	// Shard-count sweep at full thread count, everything else overhauled.
	maxShards := 16
	if cfg.Quick {
		maxShards = 8
	}
	for shards := 1; shards <= maxShards; shards *= 2 {
		tput := run(cfg.MaxThreads, shards, core.SchedLocality, true)
		r.Notes = append(r.Notes,
			fmt.Sprintf("%2d shard(s) at %d threads: %.1f ktasks/s", shards, cfg.MaxThreads, tput))
	}
	r.Elapsed = time.Since(start)
	return r
}

// AblationRegions compares the §V.A array-region dependencies against
// whole-array directionality on Multisort, quantifying why the paper
// needed regions (or their representant workaround) for flat data.
func AblationRegions(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	r := &Result{
		ID:     "ablation-regions",
		Title:  fmt.Sprintf("Array regions vs whole-array deps, Multisort %d keys (seconds)", cfg.SortKeys),
		XLabel: "threads",
		YLabel: "seconds",
	}
	orig := randKeys(cfg.SortKeys, 21)
	scfg := sortCfgFor(cfg.SortKeys)
	for _, model := range []string{"smpss", "smpss-coarse"} {
		name := "regions"
		if model == "smpss-coarse" {
			name = "whole-array"
		}
		s := Series{Name: name}
		for _, t := range []int{1, cfg.MaxThreads} {
			s.add(float64(t), multisortSecs(model, t, orig, scfg))
		}
		r.Series = append(r.Series, s)
	}
	r.Elapsed = time.Since(start)
	return r
}

// AblationThrottle sweeps the open-graph limit on the dense Cholesky:
// too small throttles the discovery of distant parallelism, unlimited
// costs memory (the paper's §III names the graph size limit as one of
// the main thread's blocking conditions).
func AblationThrottle(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	r := &Result{
		ID:     "ablation-throttle",
		Title:  fmt.Sprintf("Open-graph limit on Cholesky %d×%d (Gflop/s at %d threads)", cfg.Dim, cfg.Dim, cfg.MaxThreads),
		XLabel: "limit",
		YLabel: "Gflop/s",
	}
	flops := kernels.CholeskyFlops(cfg.Dim)
	spd := kernels.GenSPD(cfg.Dim, 14)
	nb := cfg.Dim / cfg.Block
	s := Series{Name: "SMPSs+goto tiles"}
	for _, limit := range []int{8, 64, 512, 4096, core.DefaultGraphLimit} {
		h := hypermatrix.FromFlat(spd, nb, cfg.Block)
		var secs float64
		withProcs(cfg.MaxThreads, func() {
			rt := core.New(core.Config{Workers: cfg.MaxThreads, GraphLimit: limit})
			al := linalg.New(rt, kernels.Fast, cfg.Block)
			secs = timeIt(func() {
				al.CholeskyDense(h)
				if err := rt.Barrier(); err != nil {
					panic(err)
				}
			})
			rt.Close()
		})
		s.add(float64(limit), flops/secs/1e9)
	}
	r.Series = append(r.Series, s)
	r.Elapsed = time.Since(start)
	return r
}
