// Package bench is the experiment harness that regenerates every figure
// of the paper's evaluation section (§VI): workload generation, parameter
// sweeps, the SMPSs programs, the baselines, and fixed-width reporting.
//
// Absolute numbers differ from the paper (pure-Go kernels on a modern
// SMP instead of BLAS on a 32-core Itanium2 Altix); the harness exists
// to reproduce the *shapes*: who wins, by what factor, and where the
// curves bend.  EXPERIMENTS.md records paper-vs-measured per figure.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"repro/internal/kernels"
)

// Point is one measurement: X is the swept parameter (block size or
// thread count), Y the metric (Gflop/s or speedup).
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Series is one plotted line.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// add appends a point.
func (s *Series) add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// Result is one regenerated figure.
type Result struct {
	// ID is the experiment identity ("fig08" ... "fig16", "ablation-*").
	ID string
	// Title describes the figure, matching the paper's caption.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Series holds the plotted lines.
	Series []Series
	// Notes carries harness remarks (scaled sizes, substitutions).
	Notes []string
	// Elapsed is the harness wall time for the whole experiment.
	Elapsed time.Duration
}

// Table renders the result as a fixed-width table, one row per X value
// and one column per series — the same rows a reader would extract from
// the paper's plot.
func (r *Result) Table(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	xs := r.xValues()
	// Header row.
	fmt.Fprintf(w, "%-10s", r.XLabel)
	for _, s := range r.Series {
		fmt.Fprintf(w, " %20s", s.Name)
	}
	fmt.Fprintln(w)
	for _, x := range xs {
		fmt.Fprintf(w, "%-10.6g", x)
		for _, s := range r.Series {
			if y, ok := lookup(s, x); ok {
				fmt.Fprintf(w, " %20.3f", y)
			} else {
				fmt.Fprintf(w, " %20s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "   (%s: %s, elapsed %v)\n\n", r.YLabel, r.ID, r.Elapsed.Round(time.Millisecond))
}

// CSV renders the result as comma-separated values with a header.
func (r *Result) CSV(w io.Writer) {
	fmt.Fprintf(w, "x")
	for _, s := range r.Series {
		fmt.Fprintf(w, ",%s", s.Name)
	}
	fmt.Fprintln(w)
	for _, x := range r.xValues() {
		fmt.Fprintf(w, "%g", x)
		for _, s := range r.Series {
			if y, ok := lookup(s, x); ok {
				fmt.Fprintf(w, ",%g", y)
			} else {
				fmt.Fprintf(w, ",")
			}
		}
		fmt.Fprintln(w)
	}
}

func (r *Result) xValues() []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range r.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

func lookup(s Series, x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// SeriesByName returns the named series, or nil.
func (r *Result) SeriesByName(name string) *Series {
	for i := range r.Series {
		if r.Series[i].Name == name {
			return &r.Series[i]
		}
	}
	return nil
}

// Config scales the experiments.  The defaults reproduce the paper's
// shapes in minutes of wall time on a commodity SMP; Quick shrinks
// everything so the full suite runs in seconds (used by tests).
type Config struct {
	// Dim is the flat matrix dimension for Cholesky/GEMM (paper: 8192).
	Dim int
	// Block is the reference block size for thread sweeps (paper: 256).
	Block int
	// MaxThreads bounds the thread sweep (paper: 32).
	MaxThreads int
	// SortKeys is the Multisort input size (paper uses the Cilk example
	// scale; 32M keys).
	SortKeys int
	// QueensN is the N-Queens board size.
	QueensN int
	// StrassenDim and StrassenBlock size the Strassen run (paper:
	// 8192 with 512-element blocks).
	StrassenDim, StrassenBlock int
	// SparseLUBlocks and SparseLUBlock size the SparseLU extension
	// experiment (hyper-matrix blocks per dimension, elements per block).
	SparseLUBlocks, SparseLUBlock int
	// HeatBlocks, HeatBlock and HeatSweeps size the heat extension
	// experiment.
	HeatBlocks, HeatBlock, HeatSweeps int
	// Contexts is the client count for the multi-tenant experiment
	// (ablation-multitenant): K concurrent clients share one pool vs
	// run K independent runtimes.
	Contexts int
	// Provider names the tile-kernel provider every experiment's SMPSs
	// programs use ("simd", "tuned", "goto", "mkl"); empty selects
	// "tuned".  Experiments that sweep providers explicitly (the
	// paper's paired series, ablation-kernels) ignore it for the swept
	// series.
	Provider string
	// Profile records the machine-profile path applied before the run
	// (loaded by smpssbench via ApplyProfile; informational here so
	// JSON reports carry it).
	Profile string `json:",omitempty"`
	// ProfileOut, when set, makes the tune experiment persist its
	// measured machine profile there (the -tune flag path).
	ProfileOut string `json:",omitempty"`
	// Quick selects the test-scale configuration.
	Quick bool
}

// provider resolves the configured tile-kernel provider.
func (c Config) provider() kernels.Provider { return kernels.ByName(c.Provider) }

// Normalize fills defaults.
func (c Config) Normalize() Config {
	def := func(v *int, d, q int) {
		if *v == 0 {
			if c.Quick {
				*v = q
			} else {
				*v = d
			}
		}
	}
	def(&c.Dim, 2048, 256)
	def(&c.Block, 256, 32)
	def(&c.MaxThreads, runtime.GOMAXPROCS(0), 8)
	def(&c.SortKeys, 4<<20, 1<<15)
	def(&c.QueensN, 13, 9)
	def(&c.StrassenDim, 2048, 256)
	def(&c.StrassenBlock, 256, 32)
	def(&c.SparseLUBlocks, 24, 6)
	def(&c.SparseLUBlock, 64, 8)
	def(&c.HeatBlocks, 16, 4)
	def(&c.HeatBlock, 64, 8)
	def(&c.HeatSweeps, 24, 4)
	def(&c.Contexts, 8, 4)
	if c.Provider == "" {
		c.Provider = "tuned"
	}
	return c
}

// ThreadSweep returns the thread counts of the paper's x-axes
// {1,2,4,8,12,16,24,32} clipped to max, always including max.
func ThreadSweep(max int) []int {
	candidates := []int{1, 2, 4, 8, 12, 16, 24, 32}
	var out []int
	for _, t := range candidates {
		if t < max {
			out = append(out, t)
		}
	}
	return append(out, max)
}

// BlockSweep returns the paper's Fig. 8 block sizes {32..2048} clipped
// so at least one block fits the matrix.
func BlockSweep(dim int) []int {
	var out []int
	for b := 32; b <= 2048 && b <= dim; b *= 2 {
		if dim%b == 0 {
			out = append(out, b)
		}
	}
	return out
}

// timeIt measures f once and returns seconds.
func timeIt(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

// withProcs runs f with GOMAXPROCS set to n, restoring it afterwards, so
// thread sweeps measure real parallelism limits.
func withProcs(n int, f func()) {
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	f()
}

// Registry maps experiment IDs to their runners.
var Registry = map[string]func(Config) *Result{
	"fig08":                Fig08,
	"fig11":                Fig11,
	"fig12":                Fig12,
	"fig13":                Fig13,
	"fig14":                Fig14,
	"fig15":                Fig15,
	"fig16":                Fig16,
	"ablation-kernels":     AblationKernels,
	"ablation-locality":    AblationLocality,
	"ablation-models":      AblationModels,
	"ablation-multitenant": AblationMultitenant,
	"ablation-faults":      AblationFaults,
	"ablation-rename":      AblationRenaming,
	"ablation-sched":       AblationScheduler,
	"ablation-tracker":     AblationTracker,
	"ablation-regions":     AblationRegions,
	"ablation-throttle":    AblationThrottle,
	"ablation-elastic":     AblationElastic,
	"ext-models":           ExtModels,
	"ext-qr":               ExtQR,
	"ext-sparselu":         ExtSparseLU,
	"ext-heat":             ExtHeat,
	"ext-bundle":           ExtBundle,
	"tune":                 Tune,
}

// IDs returns the registered experiment IDs in order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
