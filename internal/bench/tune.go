// The machine autotuner behind `smpssbench -tune`: re-runs PR 3's
// hand-made blocking shootout mechanically, on the host, for every
// engine provider, and persists the winners as a kernels.Profile.
package bench

import (
	"fmt"
	"time"

	"repro/internal/kernels"
)

// tuneBlocks are the block sizes whose average GemmNN rate scores a
// (shape, kc) candidate — the sizes the factorization experiments
// actually run at.
func tuneBlocks(quick bool) ([]int, int) {
	if quick {
		return []int{32, 64}, 1 << 21
	}
	return []int{128, 256}, 1 << 26
}

// tuneKCs is the swept k-chunk depth axis.
func tuneKCs(quick bool) []int {
	if quick {
		return []int{32, 64, 128}
	}
	return []int{64, 128, 256, 512}
}

// crossoverSizes is the small-block sweep that locates the streaming
// crossover; must stay sorted ascending.
var crossoverSizes = []int{4, 8, 12, 16, 24, 32, 48, 64}

// Tune sweeps every engine provider's implemented tile shapes × kc
// depths on raw tile GemmNN, then locates the block size where the
// packed engine starts beating the streaming loops, configures the
// engines with the winners, and — when cfg.ProfileOut is set (the
// -tune flag path) — persists the result as a machine profile.
//
// The result's series plot Gflop/s per (provider, shape) over the kc
// axis; the notes carry the chosen parameters, the crossover sweep and
// the profile destination, so a committed BENCH json of this
// experiment is the machine's tuning trajectory.
func Tune(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	r := &Result{
		ID:     "tune",
		Title:  "Autotuner: tile shape × kc × crossover per engine provider (raw GemmNN Gflop/s)",
		XLabel: "kc",
		YLabel: "Gflop/s",
	}
	blocks, budget := tuneBlocks(cfg.Quick)
	kcs := tuneKCs(cfg.Quick)

	profile := &kernels.Profile{
		Version:   kernels.ProfileVersion,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		Host:      kernels.Host(),
		Providers: map[string]kernels.ProviderProfile{},
	}

	for _, name := range kernels.EngineProviders() {
		orig, _ := kernels.EngineParams(name)
		p := kernels.ByName(name)
		var best kernels.Params
		bestRate := -1.0
		for _, shape := range kernels.EngineShapes(name) {
			s := Series{Name: fmt.Sprintf("%s %dx%d", name, shape.MR, shape.NR)}
			for _, kc := range kcs {
				try := kernels.Params{MR: shape.MR, NR: shape.NR, KC: kc, Crossover: orig.Crossover}
				if err := kernels.ConfigureEngine(name, try); err != nil {
					panic(err) // shapes come from the engine itself
				}
				var sum float64
				for _, b := range blocks {
					sum += gemmRate(p, b, budget)
				}
				rate := sum / float64(len(blocks))
				s.add(float64(kc), rate)
				if rate > bestRate {
					bestRate, best = rate, try
				}
			}
			r.Series = append(r.Series, s)
		}

		best.Crossover = measureCrossover(name, p, best, r)
		if err := kernels.ConfigureEngine(name, best); err != nil {
			panic(err)
		}
		r.Notes = append(r.Notes, fmt.Sprintf(
			"%s: chose mr=%d nr=%d kc=%d crossover=%d (%.2f Gflop/s avg over blocks %v)",
			name, best.MR, best.NR, best.KC, best.Crossover, bestRate, blocks))

		rates := map[string]float64{}
		for _, b := range blocks {
			rates[fmt.Sprint(b)] = gemmRate(p, b, budget)
		}
		profile.Providers[name] = kernels.ProviderProfile{Params: best, GflopsGemmNN: rates}
	}

	if cfg.ProfileOut != "" {
		if err := profile.Save(cfg.ProfileOut); err != nil {
			r.Notes = append(r.Notes, "profile save FAILED: "+err.Error())
		} else {
			r.Notes = append(r.Notes, "profile written to "+cfg.ProfileOut)
		}
	} else {
		r.Notes = append(r.Notes, "profile not persisted (run with -tune, or -profile to choose the path)")
	}
	r.Elapsed = time.Since(start)
	return r
}

// measureCrossover compares the packed engine (crossover disabled)
// against the streaming loops across small blocks and returns the
// smallest size from which the engine wins through the top of the
// sweep.  If the streaming loops still win at the largest small block,
// the crossover is pinned just above it.
func measureCrossover(name string, p kernels.Provider, shape kernels.Params, r *Result) int {
	bare := shape
	bare.Crossover = 0
	if err := kernels.ConfigureEngine(name, bare); err != nil {
		panic(err)
	}
	const budget = 1 << 22
	cross := crossoverSizes[len(crossoverSizes)-1] + 1
	for i := len(crossoverSizes) - 1; i >= 0; i-- {
		m := crossoverSizes[i]
		engine := gemmRate(p, m, budget)
		stream := gemmRate(kernels.Fast, m, budget)
		r.Notes = append(r.Notes, fmt.Sprintf(
			"%s crossover probe m=%d: engine %.2f vs stream %.2f Gflop/s", name, m, engine, stream))
		if engine < stream {
			break
		}
		cross = m
	}
	return cross
}

// ApplyProfile loads a machine profile and re-blocks the engine
// providers with it, returning the profile and the providers applied
// (see kernels.Profile.Apply for the degrade-gracefully contract).
func ApplyProfile(path string) (*kernels.Profile, []string, error) {
	prof, err := kernels.LoadProfile(path)
	if err != nil {
		return nil, nil, err
	}
	applied, err := prof.Apply()
	if err != nil {
		return nil, nil, err
	}
	return prof, applied, nil
}
