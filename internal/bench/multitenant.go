// ablation-multitenant: the shared worker pool against per-client
// runtimes.  K concurrent clients — a rotating mix of blocked Cholesky,
// blocked LU and synthetic version churn — run either as K contexts on
// one shared core.Pool (K submitters + one fairly-scheduled worker
// team) or as K independent core.Runtime instances (K oversubscribed
// worker teams).  The experiment reports aggregate wall-clock per
// client count, with aggregate tasks/sec in the notes.
package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
	"repro/internal/linalg"
)

// mtWorkload sizes one client's program.
type mtWorkload struct {
	dim, block, rounds    int
	churnObjs, churnIters int
	churnLen              int
	flatChol, flatLU      []float32
	provider              kernels.Provider
}

// mtChurnConsume/mtChurnRefill are the synthetic version-churn tasks
// (shared definitions: task kinds are global, contexts are not).
var mtChurnConsume = core.NewTaskDef("mt_consume_t", func(a *core.Args) {
	x := a.F32(0)
	s := float32(0)
	for _, v := range x {
		s += v
	}
	if s != s {
		panic("mt_consume_t: NaN in input")
	}
})

var mtChurnRefill = core.NewTaskDef("mt_refill_t", func(a *core.Args) {
	x := a.F32(0)
	for i := range x {
		x[i] = float32(i)
	}
})

// runClient drives one client's whole program on its context and
// returns the tasks it executed.  Even clients run the service-shaped
// workload (version churn: request-sized buffers recycled round after
// round), odd clients alternate blocked Cholesky and LU factorization
// rounds, so the shared pool serves a heterogeneous tenant mix.
func (w *mtWorkload) runClient(c *core.Context, k int) (int64, error) {
	nb := w.dim / w.block
	switch {
	case k%4 == 1:
		al := linalg.NewOn(c, w.provider, w.block)
		factorRounds(al, w.flatChol, nb, w.block, w.rounds,
			func(al *linalg.Algos, a *hypermatrix.Matrix) { al.CholeskyDense(a) })
	case k%4 == 3:
		al := linalg.NewOn(c, w.provider, w.block)
		factorRounds(al, w.flatLU, nb, w.block, w.rounds,
			func(al *linalg.Algos, a *hypermatrix.Matrix) { al.LU(a) })
	default:
		bufs := make([][]float32, w.churnObjs)
		for i := range bufs {
			bufs[i] = make([]float32, w.churnLen)
		}
		batch := c.NewBatch()
		for it := 0; it < w.churnIters; it++ {
			for o := range bufs {
				batch.Add(mtChurnConsume, core.In(bufs[o]))
				batch.Add(mtChurnRefill, core.Out(bufs[o]))
			}
			if err := batch.Submit(); err != nil {
				return 0, err
			}
		}
	}
	if err := c.Barrier(); err != nil {
		return 0, err
	}
	return c.Stats().TasksExecuted, nil
}

// mtRun is one measured configuration: aggregate wall seconds and total
// tasks executed across all clients.
type mtRun struct {
	secs  float64
	tasks int64
}

// runShared runs K clients as contexts on one shared pool.  Pool
// construction and Close sit inside the timed region, mirroring the
// per-client runtime construction the independent baseline pays — the
// comparison is infrastructure-inclusive on both sides.
func (w *mtWorkload) runShared(clients, workers int) (mtRun, error) {
	var out mtRun
	var poolErr error
	errs := make([]error, clients)
	tasks := make([]int64, clients)
	// The simulated machine is `workers` wide, exactly like the other
	// ablations' thread sweeps (withProcs): the shared pool sizes its
	// one worker team to the machine, while the independent baseline
	// runs one machine-sized team per client.
	withProcs(workers, func() {
		out.secs = timeIt(func() {
			pool, err := core.NewPool(core.PoolConfig{Workers: workers, MaxContexts: clients})
			if err != nil {
				poolErr = err
				return
			}
			var wg sync.WaitGroup
			for k := 0; k < clients; k++ {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					c, err := pool.NewContext(core.ContextConfig{GraphLimit: 256})
					if err != nil {
						errs[k] = err
						return
					}
					tasks[k], errs[k] = w.runClient(c, k)
					if err := c.Close(); errs[k] == nil && err != nil {
						errs[k] = err
					}
				}(k)
			}
			wg.Wait()
			poolErr = pool.Close()
		})
	})
	if poolErr != nil {
		return out, poolErr
	}
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	for _, n := range tasks {
		out.tasks += n
	}
	return out, nil
}

// runIndependent runs K clients as separate runtimes, each with its own
// worker team — the status quo this PR's pool replaces.
func (w *mtWorkload) runIndependent(clients, workers int) (mtRun, error) {
	var out mtRun
	errs := make([]error, clients)
	tasks := make([]int64, clients)
	withProcs(workers, func() {
		out.secs = timeIt(func() {
			var wg sync.WaitGroup
			for k := 0; k < clients; k++ {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					rt := core.New(core.Config{Workers: workers, GraphLimit: 256})
					tasks[k], errs[k] = w.runClient(rt.Context(), k)
					if err := rt.Close(); errs[k] == nil && err != nil {
						errs[k] = err
					}
				}(k)
			}
			wg.Wait()
		})
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	for _, n := range tasks {
		out.tasks += n
	}
	return out, nil
}

// clientSweep returns {1, 2, 4, ...} up to and including max.
func clientSweep(max int) []int {
	var out []int
	for k := 1; k < max; k *= 2 {
		out = append(out, k)
	}
	return append(out, max)
}

// AblationMultitenant measures multi-tenancy: K concurrent mixed
// clients (Cholesky / LU / version churn) on one shared pool vs K
// independent runtimes, sweeping K.  Lower wall-clock wins; the notes
// carry aggregate tasks/sec.  Worker count per pool — and per
// independent runtime, which is what makes the baseline oversubscribe —
// is MaxThreads when set explicitly (-threads), else 8 (the paper-sized
// team of the acceptance criterion).
func AblationMultitenant(cfg Config) *Result {
	explicitThreads := cfg.MaxThreads
	cfg = cfg.Normalize()
	start := time.Now()
	r := &Result{
		ID:     "ablation-multitenant",
		Title:  "Shared pool vs independent runtimes, K mixed clients (seconds, lower is better)",
		XLabel: "clients",
		YLabel: "seconds",
	}
	workers := explicitThreads
	if workers <= 0 {
		workers = 8
		if cfg.Quick {
			workers = 4
		}
	}
	w := &mtWorkload{
		dim: 512, block: 32, rounds: 3,
		churnObjs: 48, churnIters: 256, churnLen: 4096,
		provider: cfg.provider(),
	}
	if cfg.Quick {
		w.dim, w.block, w.rounds = 128, 32, 2
		w.churnObjs, w.churnIters, w.churnLen = 8, 8, 512
	}
	w.flatChol = kernels.GenSPD(w.dim, 13)
	w.flatLU = kernels.GenSPD(w.dim, 17)
	r.Notes = append(r.Notes, fmt.Sprintf(
		"%d workers per pool AND per independent runtime (K runtimes = K·%d worker goroutines); clients mix churn/cholesky/lu (2:1:1), dim %d block %d",
		workers, workers, w.dim, w.block))

	// Best-of-N per point, interleaved, like the other ablations: the
	// modes differ by scheduling overhead, and a single short run on a
	// loaded box is too noisy to rank them.
	reps := 3
	if cfg.Quick {
		reps = 1
	}
	shared := Series{Name: "shared-pool"}
	indep := Series{Name: "independent"}
	for _, k := range clientSweep(cfg.Contexts) {
		// Interleave the repetitions of the two modes so slow drift in
		// background load lands on both alike.
		var sr, ir mtRun
		for i := 0; i < reps; i++ {
			s, err := w.runShared(k, workers)
			if err != nil {
				panic(err)
			}
			if i == 0 || s.secs < sr.secs {
				sr = s
			}
			m, err := w.runIndependent(k, workers)
			if err != nil {
				panic(err)
			}
			if i == 0 || m.secs < ir.secs {
				ir = m
			}
		}
		shared.add(float64(k), sr.secs)
		indep.add(float64(k), ir.secs)
		r.Notes = append(r.Notes, fmt.Sprintf(
			"K=%d: shared %.3fs (%.0f tasks/s) vs independent %.3fs (%.0f tasks/s), best of %d",
			k, sr.secs, float64(sr.tasks)/sr.secs, ir.secs, float64(ir.tasks)/ir.secs, reps))
	}
	r.Series = append(r.Series, shared, indep)
	r.Elapsed = time.Since(start)
	return r
}
