package bench

import (
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/kernels"
)

// quickCfg is the seconds-scale configuration used to validate every
// experiment runner end to end.
var quickCfg = Config{Quick: true, MaxThreads: 4}

func TestThreadSweep(t *testing.T) {
	got := ThreadSweep(8)
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("ThreadSweep(8) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ThreadSweep(8) = %v, want %v", got, want)
		}
	}
	if got := ThreadSweep(24); got[len(got)-1] != 24 {
		t.Fatalf("sweep must end at max: %v", got)
	}
	if got := ThreadSweep(1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("ThreadSweep(1) = %v", got)
	}
}

func TestBlockSweep(t *testing.T) {
	got := BlockSweep(256)
	want := []int{32, 64, 128, 256}
	if len(got) != len(want) {
		t.Fatalf("BlockSweep(256) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BlockSweep(256) = %v, want %v", got, want)
		}
	}
}

func TestNormalizeDefaults(t *testing.T) {
	c := Config{}.Normalize()
	if c.Dim != 2048 || c.Block != 256 || c.QueensN != 13 {
		t.Fatalf("defaults = %+v", c)
	}
	q := Config{Quick: true}.Normalize()
	if q.Dim != 256 || q.Block != 32 || q.QueensN != 9 {
		t.Fatalf("quick defaults = %+v", q)
	}
}

func TestRegistryComplete(t *testing.T) {
	for _, id := range []string{"fig08", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16"} {
		if Registry[id] == nil {
			t.Fatalf("experiment %s missing from registry", id)
		}
	}
	if len(IDs()) != len(Registry) {
		t.Fatalf("IDs() incomplete")
	}
}

// TestAllExperimentsQuick runs every registered experiment at quick
// scale: each must produce non-empty series with positive measurements
// and render without error.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still take a few seconds each")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res := Registry[id](quickCfg)
			if res.ID != id {
				t.Fatalf("result ID = %q, want %q", res.ID, id)
			}
			if len(res.Series) == 0 {
				t.Fatalf("no series produced")
			}
			for _, s := range res.Series {
				if len(s.Points) == 0 {
					t.Fatalf("series %q empty", s.Name)
				}
				for _, p := range s.Points {
					if p.Y <= 0 {
						t.Fatalf("series %q has non-positive measurement at x=%g", s.Name, p.X)
					}
				}
			}
			var tab, csv strings.Builder
			res.Table(&tab)
			res.CSV(&csv)
			if !strings.Contains(tab.String(), res.ID) {
				t.Fatalf("table missing experiment id:\n%s", tab.String())
			}
			if !strings.HasPrefix(csv.String(), "x,") {
				t.Fatalf("csv missing header:\n%s", csv.String())
			}
		})
	}
}

func TestSeriesByNameAndLookup(t *testing.T) {
	r := &Result{Series: []Series{{Name: "a", Points: []Point{{X: 1, Y: 2}}}}}
	if r.SeriesByName("a") == nil || r.SeriesByName("b") != nil {
		t.Fatalf("SeriesByName broken")
	}
	if y, ok := lookup(r.Series[0], 1); !ok || y != 2 {
		t.Fatalf("lookup broken")
	}
	if _, ok := lookup(r.Series[0], 9); ok {
		t.Fatalf("lookup must miss absent x")
	}
}

// TestFig14SpeedupSanity checks the headline shape at quick scale: with
// 4 threads, every task model must beat half of one thread's throughput
// (i.e. parallelism is real, not incidental).
func TestFig14SpeedupSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	cfg := quickCfg
	cfg.SortKeys = 1 << 19 // large enough for stable timing
	res := Fig14(cfg)
	for _, s := range res.Series {
		last := s.Points[len(s.Points)-1]
		if last.Y < 0.5 {
			t.Fatalf("series %q speedup at %g threads = %g; parallel run pathologically slow", s.Name, last.X, last.Y)
		}
	}
}

// TestAblationRenameAcceptance pins the PR's acceptance criterion on
// the Cholesky churn workload: the pooled lifecycle must allocate
// strictly fewer fresh instances than the legacy one (recycling and
// elision replace allocations), and after the final barrier no renamed
// byte may be live.
func TestAblationRenameAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two quick-scale Cholesky churns")
	}
	// Workers: 1 makes the run fully deterministic (no worker goroutines;
	// the main thread executes everything through the throttle window),
	// so the counters are exact, not timing-dependent.  The open-graph
	// limit sits between the per-round reset batch (64 tasks) and the
	// full round (~248 tasks): previous-round resets have drained when
	// the next round's resets are analyzed (dead hazards, elided in
	// place) while the previous round's trailing factor tasks are still
	// pending (live hazards, renamed through the pool).
	const threads, dim, block, rounds = 1, 256, 32, 4
	rtCfg := core.Config{GraphLimit: 128}
	pooled := choleskyChurnStats(threads, dim, block, rounds, rtCfg, kernels.Tuned)
	rtCfg.LegacyRenaming = true
	legacy := choleskyChurnStats(threads, dim, block, rounds, rtCfg, kernels.Tuned)

	if legacy.st.Renames == 0 {
		t.Fatalf("legacy run produced no renames; churn workload broken: %+v", legacy.st)
	}
	if pooled.st.PoolHits == 0 {
		t.Fatalf("pooled run never hit the pool: %+v", pooled.st)
	}
	if pooled.st.RenamesElided == 0 {
		t.Fatalf("pooled run never elided a rename: %+v", pooled.st)
	}
	if pooled.st.PoolMisses >= legacy.st.Renames {
		t.Fatalf("pooled lifecycle must allocate strictly fewer fresh instances: misses %d vs legacy renames %d",
			pooled.st.PoolMisses, legacy.st.Renames)
	}
	if pooled.st.LiveRenamedBytes != 0 {
		t.Fatalf("live renamed bytes after barrier = %d, want 0", pooled.st.LiveRenamedBytes)
	}
}

// TestAblationFaultsAcceptance pins the fault-harness criterion: the
// zero-failure fast path must be within noise of a run with the chaos
// harness absent.  Timing bounds on shared machines need slack, so the
// pin is a generous 2× on the compute-bound Cholesky churn — the real
// claim (one atomic pointer load per hook) would show up as orders of
// magnitude, not fractions.  The run must also leave no injector
// installed behind it.
func TestAblationFaultsAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	res := AblationFaults(quickCfg)
	if chaos.Active() != nil {
		t.Fatal("AblationFaults left an injector installed")
	}
	for _, wl := range []string{"cholesky", "churn"} {
		disabled := res.SeriesByName(wl + " disabled")
		armed := res.SeriesByName(wl + " armed-zero")
		if disabled == nil || armed == nil {
			t.Fatalf("%s: missing series in %v", wl, res.Series)
		}
	}
	disabled := res.SeriesByName("cholesky disabled").Points[0].Y
	armed := res.SeriesByName("cholesky armed-zero").Points[0].Y
	if armed > 2*disabled {
		t.Fatalf("armed-zero Cholesky churn %.4fs vs disabled %.4fs: fast path is not within noise", armed, disabled)
	}
}

// TestAblationLocalityAcceptance pins the locality-layer criteria on
// the quick-scale pipelined Cholesky: the chaining configuration must
// actually chain (nonzero ChainHits), the baseline must not touch the
// locality machinery at all, and both must execute the same task count
// (chaining reorders nothing, it only relocates execution).
func TestAblationLocalityAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two quick-scale Cholesky churns")
	}
	const threads, dim, block, rounds = 2, 256, 32, 3
	base := choleskyChurnStats(threads, dim, block, rounds,
		core.Config{}, kernels.Tuned)
	chain := choleskyChurnStats(threads, dim, block, rounds,
		core.Config{Locality: core.LocalityConfig{Affinity: true, ChainDepth: 4}}, kernels.Tuned)

	if base.st.Sched.ChainHits != 0 || base.st.Sched.AffinityPushes != 0 {
		t.Fatalf("baseline exercised the locality layer: %+v", base.st.Sched)
	}
	if chain.st.Sched.ChainHits == 0 {
		t.Fatalf("pipelined Cholesky never chained a successor: %+v", chain.st.Sched)
	}
	if chain.st.TasksExecuted != base.st.TasksExecuted {
		t.Fatalf("locality layer changed the task count: %d vs %d",
			chain.st.TasksExecuted, base.st.TasksExecuted)
	}
}
