// ablation-models: the hypermatrix block-sparse LU workload under the
// model re-host.  Every frontend now runs as a tenant of a shared
// core.Pool, so the natural question is what hosting costs on an
// irregular, fill-in-allocating task graph: the experiment factors the
// same block-sparse matrix on a dedicated private runtime (the pre-host
// baseline) and on a shared pool through a hosted context per scheduler
// kind — the paper's locality scheduler with stealing, the central FIFO
// of the SuperMatrix/CellSs hosts, and the seed's legacy lists.  Every
// point is verified exact against the sequential factorization.
package bench

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
)

// AblationModels measures the block-sparse SparseLU program on a
// dedicated runtime versus hosted contexts of one shared pool.
func AblationModels(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	n, m, density := cfg.SparseLUBlocks, cfg.SparseLUBlock, 0.35
	r := &Result{
		ID:     "ablation-models",
		Title:  fmt.Sprintf("Hosted vs dedicated SparseLU, %d×%d blocks of %d×%d (speedup vs sequential)", n, n, m, m),
		XLabel: "threads",
		YLabel: "speedup",
	}
	input := apps.GenSparseLU(n, m, density, 5)

	seqH := input.Clone()
	seqSecs := timeIt(func() {
		if !apps.SparseLUSeq(seqH) {
			panic("ablation-models: sequential factorization failed")
		}
	})
	want := seqH.ToFlat()

	hosted := []struct {
		name  string
		sched core.SchedulerKind
	}{
		{"hosted-steal", core.SchedLocality},
		{"hosted-fifo", core.SchedGlobalFIFO},
		{"hosted-lists", core.SchedLegacyLists},
	}

	dedicated := Series{Name: "dedicated"}
	series := make([]Series, len(hosted))
	for i, hv := range hosted {
		series[i] = Series{Name: hv.name}
	}
	for _, t := range ThreadSweep(cfg.MaxThreads) {
		// Dedicated: a private runtime owning its worker team, the only
		// hosting the runtime offered before the pool split.
		h := input.Clone()
		var secs float64
		withProcs(t, func() {
			rt := core.New(core.Config{Workers: t})
			secs = timeIt(func() {
				if err := apps.SparseLUSMPSs(rt.Context(), h); err != nil {
					panic(err)
				}
				if err := rt.Barrier(); err != nil {
					panic(err)
				}
			})
			rt.Close()
		})
		checkExact(h.ToFlat(), want, "ablation-models dedicated")
		dedicated.add(float64(t), seqSecs/secs)

		// Hosted: one tenant context on a shared pool, per scheduler.
		for i, hv := range hosted {
			h = input.Clone()
			withProcs(t, func() {
				pool, err := core.NewPool(core.PoolConfig{Workers: t, MaxContexts: 2})
				if err != nil {
					panic(err)
				}
				ctx, err := pool.NewContext(core.ContextConfig{Scheduler: hv.sched})
				if err != nil {
					panic(err)
				}
				secs = timeIt(func() {
					if err := apps.SparseLUSMPSs(ctx, h); err != nil {
						panic(err)
					}
					if err := ctx.Barrier(); err != nil {
						panic(err)
					}
				})
				if err := ctx.Close(); err != nil {
					panic(err)
				}
				if err := pool.Close(); err != nil {
					panic(err)
				}
			})
			checkExact(h.ToFlat(), want, "ablation-models "+hv.name)
			series[i].add(float64(t), seqSecs/secs)
		}
	}
	r.Series = append(r.Series, dedicated)
	r.Series = append(r.Series, series...)
	r.Notes = append(r.Notes,
		"every frontend is now hosted on the shared pool; this measures what the hosting substrate costs the SMPSs model itself",
		"results verified exact against the sequential factorization at every point")
	r.Elapsed = time.Since(start)
	return r
}
