// Structured results emission: `smpssbench -json out.json` wraps every
// experiment run in one machine-stamped report, so committed BENCH_*.json
// files give future PRs a measured baseline instead of numbers living
// only in commit messages.
package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"repro/internal/kernels"
)

// EngineJSON records one engine provider's blocking at run time —
// after any profile was applied, so the report says what was measured.
type EngineJSON struct {
	Provider string `json:"provider"`
	kernels.Params
}

// ResultJSON is Result with wall time in seconds instead of a
// nanosecond Duration.
type ResultJSON struct {
	ID             string   `json:"id"`
	Title          string   `json:"title"`
	XLabel         string   `json:"x_label"`
	YLabel         string   `json:"y_label"`
	Series         []Series `json:"series"`
	Notes          []string `json:"notes,omitempty"`
	ElapsedSeconds float64  `json:"elapsed_seconds"`
}

// ReportJSON is the emitted document.
type ReportJSON struct {
	CreatedAt  string           `json:"created_at"`
	Host       kernels.HostInfo `json:"host"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Engines    []EngineJSON     `json:"engines"`
	Config     Config           `json:"config"`
	Results    []ResultJSON     `json:"results"`
}

// Report assembles the JSON document for a finished run.
func Report(cfg Config, results []*Result) *ReportJSON {
	rep := &ReportJSON{
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		Host:       kernels.Host(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Config:     cfg,
	}
	for _, name := range kernels.EngineProviders() {
		if p, ok := kernels.EngineParams(name); ok {
			rep.Engines = append(rep.Engines, EngineJSON{Provider: name, Params: p})
		}
	}
	for _, r := range results {
		rep.Results = append(rep.Results, ResultJSON{
			ID:             r.ID,
			Title:          r.Title,
			XLabel:         r.XLabel,
			YLabel:         r.YLabel,
			Series:         r.Series,
			Notes:          r.Notes,
			ElapsedSeconds: r.Elapsed.Seconds(),
		})
	}
	return rep
}

// WriteJSON emits the report as indented JSON.
func WriteJSON(w io.Writer, cfg Config, results []*Result) error {
	data, err := json.MarshalIndent(Report(cfg, results), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
