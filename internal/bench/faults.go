package bench

import (
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
)

// AblationFaults prices the fault-injection harness.  The claim under
// test is that the zero-failure fast path is free: every chaos site
// compiles down to one atomic pointer load when no injector is
// installed, so the failure-domain machinery (per-task chaos hooks,
// the poison check on the skip path, the cancellation check) must not
// tax a healthy run.  Three configurations run the same workloads:
//
//   - "disabled": no injector installed — the production steady state.
//   - "armed-zero": an injector installed with every rate at zero, so
//     each hook additionally hashes its decision and declines.  The
//     gap to "disabled" bounds the cost of merely arming the harness.
//   - "machinery-faults": correctness-neutral sites firing for real
//     (steal delays, dropped affinity wakes, rename-pool exhaustion) —
//     not a fast path at all, reported to show the harness injecting.
//
// The acceptance gate pins "armed-zero" within noise of "disabled" on
// the pipelined Cholesky churn; the task-churn workload adds a
// tiny-task view where per-task hook cost would be most visible.
func AblationFaults(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	r := &Result{
		ID:     "ablation-faults",
		Title:  "Fault-injection harness: disabled vs armed-zero vs machinery faults (seconds, lower is better)",
		XLabel: "threads",
		YLabel: "seconds",
	}
	threads := cfg.MaxThreads
	rounds := 4
	if cfg.Quick {
		rounds = 3
	}

	// The injector configurations.  A nil build leaves chaos disarmed.
	modes := []struct {
		name  string
		build func() *chaos.Injector
	}{
		{"disabled", func() *chaos.Injector { return nil }},
		{"armed-zero", func() *chaos.Injector {
			return chaos.New(chaos.Config{Seed: 1, Rates: map[chaos.Site]float64{}})
		}},
		{"machinery-faults", func() *chaos.Injector {
			return chaos.New(chaos.Config{
				Seed: 1,
				Rates: map[chaos.Site]float64{
					chaos.SiteStealDelay:    0.05,
					chaos.SiteWakeDrop:      0.25,
					chaos.SiteRenameExhaust: 0.25,
				},
				Delay: 20 * time.Microsecond,
			})
		}},
	}

	// bestOf3 measures run three times armed as requested and keeps the
	// fastest — the least-preempted pass is the one that reflects the
	// hook cost rather than machine noise.
	bestOf3 := func(build func() *chaos.Injector, run func() float64) float64 {
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			if inj := build(); inj != nil {
				chaos.Install(inj)
			}
			secs := run()
			chaos.Uninstall()
			if best == 0 || secs < best {
				best = secs
			}
		}
		return best
	}

	// Pipelined Cholesky churn: the rename-heavy factorization workload
	// the rename ablation uses, now exercising the task-body, steal and
	// rename-acquire hooks on every task.
	for _, m := range modes {
		secs := bestOf3(m.build, func() float64 {
			return choleskyChurnStats(threads, cfg.Dim, cfg.Block, rounds, core.Config{}, cfg.provider()).secs
		})
		s := Series{Name: "cholesky " + m.name}
		s.add(float64(threads), secs)
		r.Series = append(r.Series, s)
		r.Notes = append(r.Notes, fmt.Sprintf("cholesky/%s: %.4fs", m.name, secs))
	}

	// Tiny-task churn: chains of trivial inout tasks where per-task
	// overhead — and therefore a non-free chaos hook — would dominate.
	objects, chain, block := 128, 64, 64
	if cfg.Quick {
		objects, chain = 32, 16
	}
	tiny := core.NewTaskDef("faults_churn_t", func(a *core.Args) {
		x := a.F32(0)
		for i := range x {
			x[i] = x[i]*1.0001 + 1
		}
	})
	for _, m := range modes {
		secs := bestOf3(m.build, func() float64 {
			var out float64
			withProcs(threads, func() {
				rt := core.New(core.Config{Workers: threads, GraphLimit: 256})
				bufs := make([][]float32, objects)
				for i := range bufs {
					bufs[i] = make([]float32, block)
				}
				out = timeIt(func() {
					batch := rt.NewBatch()
					for o := range bufs {
						for k := 0; k < chain; k++ {
							batch.Add(tiny, core.InOut(bufs[o]))
						}
						if err := batch.Submit(); err != nil {
							panic(err)
						}
					}
					if err := rt.Barrier(); err != nil {
						panic(err)
					}
				})
				rt.Close()
			})
			return out
		})
		s := Series{Name: "churn " + m.name}
		s.add(float64(threads), secs)
		r.Series = append(r.Series, s)
		r.Notes = append(r.Notes, fmt.Sprintf("churn/%s (%d×%d tiny tasks): %.4fs", m.name, objects, chain, secs))
	}

	r.Elapsed = time.Since(start)
	return r
}
