package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/apps"
	"repro/internal/cilkrt"
	"repro/internal/core"
	"repro/internal/omptask"
)

func randKeys(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63()
	}
	return keys
}

// sortCfgFor scales the task granularity with the input so the quick
// configuration still generates a useful number of tasks.
func sortCfgFor(keys int) apps.SortConfig {
	cfg := apps.DefaultSortConfig
	if keys/64 < cfg.QuickSize {
		cfg.QuickSize = keys/64 + 1
		cfg.MergeSize = cfg.QuickSize
	}
	return cfg
}

// multisortSecs measures one multisort run of the given model.
func multisortSecs(model string, threads int, orig []int64, cfg apps.SortConfig) float64 {
	data := append([]int64(nil), orig...)
	var secs float64
	withProcs(threads, func() {
		switch model {
		case "seq":
			secs = timeIt(func() { apps.MultisortSeq(data, cfg) })
		case "cilk":
			rt := cilkrt.New(threads)
			secs = timeIt(func() { apps.MultisortCilk(rt, data, cfg) })
			rt.Close()
		case "omp3":
			rt := omptask.New(threads)
			secs = timeIt(func() { apps.MultisortOMP(rt, data, cfg) })
			rt.Close()
		case "smpss":
			rt := core.New(core.Config{Workers: threads})
			secs = timeIt(func() {
				if err := apps.MultisortSMPSs(rt.Context(), data, cfg); err != nil {
					panic(err)
				}
			})
			rt.Close()
		case "smpss-coarse":
			rt := core.New(core.Config{Workers: threads})
			secs = timeIt(func() {
				if err := apps.MultisortSMPSsCoarse(rt.Context(), data, cfg); err != nil {
					panic(err)
				}
			})
			rt.Close()
		default:
			panic("unknown model " + model)
		}
	})
	if !sortedKeys(data) {
		panic("bench: " + model + " multisort produced unsorted output")
	}
	return secs
}

func sortedKeys(d []int64) bool {
	for i := 1; i < len(d); i++ {
		if d[i-1] > d[i] {
			return false
		}
	}
	return true
}

// Fig14 reproduces Fig. 14: Multisort speedup versus the sequential
// implementation for Cilk, OpenMP 3.0 tasks and SMPSs.  The paper's
// shape: "all three versions scale similarly, with SMPSs having slightly
// better performance than the others".
func Fig14(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	r := &Result{
		ID:     "fig14",
		Title:  fmt.Sprintf("Multisort of %d int64 keys, speedup vs sequential", cfg.SortKeys),
		XLabel: "threads",
		YLabel: "speedup",
	}
	orig := randKeys(cfg.SortKeys, 42)
	scfg := sortCfgFor(cfg.SortKeys)
	seqSecs := multisortSecs("seq", 1, orig, scfg)
	for _, model := range []string{"cilk", "omp3", "smpss"} {
		s := Series{Name: model}
		for _, t := range ThreadSweep(cfg.MaxThreads) {
			s.add(float64(t), seqSecs/multisortSecs(model, t, orig, scfg))
		}
		r.Series = append(r.Series, s)
	}
	r.Elapsed = time.Since(start)
	return r
}

// queensSecs measures one N-Queens solve of the given model and checks
// the count against the sequential answer.
func queensSecs(model string, threads, n int, want int64) float64 {
	var secs float64
	var got int64
	withProcs(threads, func() {
		switch model {
		case "seq":
			secs = timeIt(func() { got = apps.NQueensSeq(n) })
		case "cilk":
			rt := cilkrt.New(threads)
			secs = timeIt(func() { got = apps.NQueensCilk(rt, n) })
			rt.Close()
		case "omp3":
			rt := omptask.New(threads)
			secs = timeIt(func() { got = apps.NQueensOMP(rt, n) })
			rt.Close()
		case "smpss":
			rt := core.New(core.Config{Workers: threads})
			secs = timeIt(func() {
				var err error
				got, err = apps.NQueensSMPSs(rt.Context(), n)
				if err != nil {
					panic(err)
				}
			})
			rt.Close()
		default:
			panic("unknown model " + model)
		}
	})
	if want != 0 && got != want {
		panic(fmt.Sprintf("bench: %s N-Queens(%d) = %d, want %d", model, n, got, want))
	}
	return secs
}

// Fig15 reproduces Fig. 15: N-Queens speedup versus the plain sequential
// version (one solution array, no parallel artifacts).
func Fig15(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	r := &Result{
		ID:     "fig15",
		Title:  fmt.Sprintf("N-Queens N=%d, speedup vs sequential", cfg.QueensN),
		XLabel: "threads",
		YLabel: "speedup",
		Notes:  []string{"sequential version has no per-branch array copies (paper §VI.E)"},
	}
	want := apps.NQueensSeq(cfg.QueensN)
	seqSecs := queensSecs("seq", 1, cfg.QueensN, want)
	for _, model := range []string{"cilk", "omp3", "smpss"} {
		s := Series{Name: model}
		for _, t := range ThreadSweep(cfg.MaxThreads) {
			s.add(float64(t), seqSecs/queensSecs(model, t, cfg.QueensN, want))
		}
		r.Series = append(r.Series, s)
	}
	r.Elapsed = time.Since(start)
	return r
}

// Fig16 reproduces Fig. 16: N-Queens scalability measured against the
// same programming model at one thread, the comparison the paper argues
// most publications actually report.
func Fig16(cfg Config) *Result {
	cfg = cfg.Normalize()
	start := time.Now()
	r := &Result{
		ID:     "fig16",
		Title:  fmt.Sprintf("N-Queens N=%d, scalability vs same model at 1 thread", cfg.QueensN),
		XLabel: "threads",
		YLabel: "speedup vs 1 thread",
	}
	want := apps.NQueensSeq(cfg.QueensN)
	for _, model := range []string{"cilk", "omp3", "smpss"} {
		base := queensSecs(model, 1, cfg.QueensN, want)
		s := Series{Name: model}
		for _, t := range ThreadSweep(cfg.MaxThreads) {
			s.add(float64(t), base/queensSecs(model, t, cfg.QueensN, want))
		}
		r.Series = append(r.Series, s)
	}
	r.Elapsed = time.Since(start)
	return r
}
