package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
)

// TestMuxRoundRobinAcrossClients pins fair dispatch: a worker draining
// two clients' injectors alternates between them instead of emptying
// one tenant's backlog first.
func TestMuxRoundRobinAcrossClients(t *testing.T) {
	m := NewTokenMux(2)
	a := m.Attach(NewLocalityShared(2, 1), 0)
	b := m.Attach(NewLocalityShared(2, 1), 0)
	for i := int64(1); i <= 3; i++ {
		m.Push(a, mkNode(i, false), graph.MainThread)
		m.Push(b, mkNode(100+i, false), graph.MainThread)
	}
	var order []int64
	for i := 0; i < 6; i++ {
		n := m.tryNext(1, nil)
		if n == nil {
			t.Fatalf("lookup %d found nothing with %d+%d queued", i, a.Queued(), b.Queued())
		}
		order = append(order, n.ID)
	}
	// Alternation: consecutive pops never come from the same client.
	for i := 1; i < len(order); i++ {
		same := (order[i] < 100) == (order[i-1] < 100)
		if same {
			t.Fatalf("pops %v did not rotate across clients", order)
		}
	}
	if a.Queued() != 0 || b.Queued() != 0 {
		t.Fatalf("queued gauges not drained: a=%d b=%d", a.Queued(), b.Queued())
	}
}

// TestMuxRestrictedGetIgnoresOtherClients pins barrier isolation at the
// sched layer: a restricted Get serves only its own client and parks
// through other tenants' pushes, waking for its own.
func TestMuxRestrictedGetIgnoresOtherClients(t *testing.T) {
	m := NewTokenMux(3)
	a := m.Attach(NewLocalityShared(3, 2), 0)
	b := m.Attach(NewLocalityShared(3, 2), 1)
	m.Push(b, mkNode(200, false), graph.MainThread)

	got := make(chan *graph.Node, 1)
	go func() { got <- m.Get(0, a, nil) }()
	select {
	case n := <-got:
		t.Fatalf("restricted Get returned another client's task %d", n.ID)
	case <-time.After(20 * time.Millisecond):
	}
	m.Push(a, mkNode(1, false), graph.MainThread)
	select {
	case n := <-got:
		if n.ID != 1 {
			t.Fatalf("restricted Get = %d, want 1", n.ID)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("restricted Get did not wake for its own client's push")
	}
	// The other client's task is still there for an unrestricted worker.
	if n := m.tryNext(2, nil); n == nil || n.ID != 200 {
		t.Fatalf("client b's task lost: %v", n)
	}
}

// TestMuxRestrictedWakeNotStolenByOtherWaiter reproduces the wake-loss
// hazard the Client.waiting design avoids: with client a's submitter
// parked restricted, a push to client b must still reach an
// unrestricted worker (the restricted waiter must not swallow b's only
// wakeup).
func TestMuxRestrictedWakeNotStolenByOtherWaiter(t *testing.T) {
	m := NewTokenMux(3)
	a := m.Attach(NewLocalityShared(3, 2), 0)
	b := m.Attach(NewLocalityShared(3, 2), 1)

	restricted := make(chan *graph.Node, 1)
	var stop atomic.Bool
	go func() { restricted <- m.Get(0, a, stop.Load) }()
	worker := make(chan *graph.Node, 1)
	go func() { worker <- m.Get(2, nil, nil) }()
	time.Sleep(20 * time.Millisecond) // let both park

	m.Push(b, mkNode(7, false), graph.MainThread)
	select {
	case n := <-worker:
		if n.ID != 7 {
			t.Fatalf("worker got %d, want 7", n.ID)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("push to client b never woke the unrestricted worker")
	}
	stop.Store(true)
	m.Kick()
	if n := <-restricted; n != nil {
		t.Fatalf("cancelled restricted Get = %v, want nil", n)
	}
}

// TestMuxDetachStopsDispatch checks a detached client's policy leaves
// the scan and the remaining client keeps working.
func TestMuxDetachStopsDispatch(t *testing.T) {
	m := NewTokenMux(2)
	a := m.Attach(NewLocalityShared(2, 1), 0)
	b := m.Attach(NewLocalityShared(2, 1), 0)
	m.Push(a, mkNode(1, false), graph.MainThread)
	if n := m.tryNext(1, nil); n == nil || n.ID != 1 {
		t.Fatalf("pre-detach lookup = %v", n)
	}
	m.Detach(a)
	m.Push(b, mkNode(2, false), graph.MainThread)
	if n := m.tryNext(1, nil); n == nil || n.ID != 2 {
		t.Fatalf("post-detach lookup = %v, want client b's task", n)
	}
}

// TestMuxConcurrentClientsStress drives two producer/consumer client
// pairs plus attach/detach churn of a third; under -race this is the
// mux's data-race canary.
func TestMuxConcurrentClientsStress(t *testing.T) {
	const (
		workers = 4
		slots   = 2 + workers
		total   = 20000
	)
	m := NewTokenMux(slots)
	a := m.Attach(NewLocalityShared(slots, 2), 0)
	b := m.Attach(NewLocalityShared(slots, 2), 1)

	var consumed atomic.Int64
	var wg sync.WaitGroup
	for w := 2; w < slots; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			for {
				n := m.Get(self, nil, nil)
				if n == nil {
					return
				}
				consumed.Add(1)
			}
		}(w)
	}
	var pwg sync.WaitGroup
	for i, c := range []*Client{a, b} {
		pwg.Add(1)
		go func(slot int, c *Client) {
			defer pwg.Done()
			for i := 0; i < total/2; i++ {
				m.Push(c, mkNode(int64(i), i%101 == 0), graph.MainThread)
			}
		}(i, c)
	}
	// Churn a third client through attach/detach while the others run.
	pwg.Add(1)
	go func() {
		defer pwg.Done()
		for i := 0; i < 50; i++ {
			c := m.Attach(NewLocalityShared(slots, 2), 1)
			m.Push(c, mkNode(int64(1000+i), false), graph.MainThread)
			for {
				if n := m.tryNext(1, c); n != nil {
					consumed.Add(1)
					break
				}
				if c.Queued() == 0 {
					break // an unrestricted worker took it (and counted it)
				}
				time.Sleep(time.Microsecond)
			}
			m.Detach(c)
		}
	}()
	pwg.Wait()
	deadline := time.Now().Add(30 * time.Second)
	for consumed.Load() < total+50 {
		if time.Now().After(deadline) {
			t.Fatalf("stress stalled at %d of %d", consumed.Load(), total+50)
		}
		time.Sleep(time.Millisecond)
	}
	m.Close()
	wg.Wait()
	if got := consumed.Load(); got != total+50 {
		t.Fatalf("consumed %d, want %d", got, total+50)
	}
}

// TestCondvarMuxServesClients exercises the legacy-wakeup mux end to
// end: blocking Get, cross-client dispatch, cancel and close-drain.
func TestCondvarMuxServesClients(t *testing.T) {
	m := NewCondvarMux(2)
	a := m.Attach(NewListLocality(2), 0)
	b := m.Attach(NewListLocality(2), 0)

	got := make(chan *graph.Node, 1)
	go func() { got <- m.Get(1, nil, nil) }()
	time.Sleep(10 * time.Millisecond)
	m.Push(a, mkNode(1, false), graph.MainThread)
	select {
	case n := <-got:
		if n.ID != 1 {
			t.Fatalf("Get = %d, want 1", n.ID)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("condvar mux never woke the worker")
	}

	m.Push(b, mkNode(2, false), graph.MainThread)
	if n := m.Get(1, b, nil); n == nil || n.ID != 2 {
		t.Fatalf("restricted Get on condvar mux = %v, want 2", n)
	}

	var stop atomic.Bool
	go func() { got <- m.Get(1, nil, stop.Load) }()
	time.Sleep(10 * time.Millisecond)
	stop.Store(true)
	m.Kick()
	if n := <-got; n != nil {
		t.Fatalf("cancelled Get = %v, want nil", n)
	}

	m.Push(a, mkNode(3, false), graph.MainThread)
	m.Close()
	if n := m.Get(0, nil, nil); n == nil || n.ID != 3 {
		t.Fatalf("Get after Close must drain, got %v", n)
	}
	if n := m.Get(0, nil, nil); n != nil {
		t.Fatalf("drained closed mux returned %v", n)
	}
}

// TestSharedHelperMayTakeLastTask pins the multi-tenant politeness
// rule: on a private runtime the main thread leaves a dedicated
// worker's last queued task alone (it is about to be popped), but on a
// shared pool the owner may be busy with another tenant for
// arbitrarily long, so a context's submitter may take its own graph's
// final task — a barrier must not wait out a neighbour's task body.
func TestSharedHelperMayTakeLastTask(t *testing.T) {
	private := NewLocality(3)
	private.Push(mkNode(1, false), 2)
	if n := private.TryNext(0); n != nil {
		t.Fatalf("private main thread stole a worker's last task: %d", n.ID)
	}
	shared := NewLocalityShared(4, 2)
	shared.Push(mkNode(1, false), 3)
	if n := shared.TryNext(0); n == nil || n.ID != 1 {
		t.Fatalf("shared-pool submitter must take the last task, got %v", n)
	}
	// Still one task per steal: a two-deep deque yields exactly one.
	shared.Push(mkNode(2, false), 3)
	shared.Push(mkNode(3, false), 3)
	if n := shared.TryNext(1); n == nil || n.ID != 2 {
		t.Fatalf("helper steal must be FIFO single-task, got %v", n)
	}
	if got := shared.Stats().Steals; got != 2 {
		t.Fatalf("steals = %d, want 2 single-task steals", got)
	}
	// The victim keeps its newest task for its own LIFO pop.
	if n := shared.TryNext(3); n == nil || n.ID != 3 {
		t.Fatalf("victim's remaining task = %v, want 3", n)
	}
}

// TestRestrictedGetReachesBusyWorkersDeque reproduces the barrier-stall
// hazard at the mux level: context A's lone ready task sits on a
// dedicated worker's deque (the worker is occupied elsewhere), and A's
// restricted submitter must still be able to take it.
func TestRestrictedGetReachesBusyWorkersDeque(t *testing.T) {
	// A genuinely shared pool: two submitter slots (0, 1), one dedicated
	// worker (2).  helpers == 1 would be a private runtime, where the
	// polite-thief rule stays because there is no other tenant to get
	// stuck behind.
	m := NewTokenMux(3)
	a := m.Attach(NewLocalityShared(3, 2), 0)
	// Worker 2 released A's successor onto its own deque mid-task, then
	// "got stuck" serving another tenant (never calls Get again here).
	m.Push(a, mkNode(9, false), 2)
	done := make(chan *graph.Node, 1)
	go func() { done <- m.Get(0, a, nil) }()
	select {
	case n := <-done:
		if n == nil || n.ID != 9 {
			t.Fatalf("restricted Get = %v, want task 9", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("restricted submitter could not reach its own task on a busy worker's deque")
	}
}

// stickyPolicy is a test double whose queued tasks can never be popped
// — the mux-level model of a tenant whose work is perpetually "being
// handled elsewhere".  It keeps the client's queued gauge (and so the
// mux's active-client count) pinned above zero.
type stickyPolicy struct{ n atomic.Int64 }

func (p *stickyPolicy) Push(node *graph.Node, by int) bool { p.n.Add(1); return true }
func (p *stickyPolicy) TryNext(self int) *graph.Node       { return nil }
func (p *stickyPolicy) Len() int                           { return int(p.n.Load()) }
func (p *stickyPolicy) Stats() Stats                       { return Stats{} }

// TestMultiTenantSelfPushWakes pins the elision boundary: a lone
// self-push on a dedicated worker's deque skips the wake only while its
// client is the only one with queued work.  With a second tenant
// *active* the releasing worker's next round-robin lookup may serve
// that tenant's (arbitrarily long) task first, so the push must wake a
// parked worker to cover the successor.
func TestMultiTenantSelfPushWakes(t *testing.T) {
	m := NewTokenMux(4)
	a := m.Attach(NewLocalityShared(4, 2), 0)
	b := m.Attach(&stickyPolicy{}, 1)
	// Tenant B has queued work no lookup can claim, so the pool stays
	// genuinely multi-active while worker 3 parks.
	m.Push(b, mkNode(100, false), graph.MainThread)

	got := make(chan *graph.Node, 1)
	go func() { got <- m.Get(3, nil, nil) }()
	for m.Stats().Parks == 0 {
		time.Sleep(time.Millisecond) // let worker 3 park
	}

	// Dedicated worker 2 releases a lone successor onto its own deque —
	// the single-tenant elision case — while "stuck" elsewhere.
	m.Push(a, mkNode(5, false), 2)
	select {
	case n := <-got:
		if n == nil || n.ID != 5 {
			t.Fatalf("woken worker got %v, want task 5", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("multi-active self-push elided its wake; successor stranded")
	}
	m.Close()
}

// TestIdleTenantKeepsWakeElision is the other side of the boundary:
// attaching a second tenant that has no work in flight must not cost
// the first tenant its lone-self-push wake elision (the PR that
// introduced the mux disabled it for any >1-client pool).  The parked
// worker must stay parked — the releasing worker pops the successor
// itself on its next lookup.
func TestIdleTenantKeepsWakeElision(t *testing.T) {
	m := NewTokenMux(4)
	a := m.Attach(NewLocalityShared(4, 2), 0)
	m.Attach(NewLocalityShared(4, 2), 1) // attached but idle

	got := make(chan *graph.Node, 1)
	go func() { got <- m.Get(3, nil, nil) }()
	for m.Stats().Parks == 0 {
		time.Sleep(time.Millisecond) // let worker 3 park
	}

	// Lone self-push by dedicated worker 2: with the only other tenant
	// idle, the single-runtime elision applies.
	m.Push(a, mkNode(7, false), 2)
	time.Sleep(50 * time.Millisecond)
	select {
	case n := <-got:
		t.Fatalf("idle-tenant pool woke a thief for a lone self-push (task %d)", n.ID)
	default:
	}
	if up := m.Stats().Unparks; up != 0 {
		t.Fatalf("lone self-push unparked %d workers with the other tenant idle", up)
	}
	// Cleanup: Close wakes worker 3, which drains the elided task.
	m.Close()
	if n := <-got; n == nil || n.ID != 7 {
		t.Fatalf("drain after Close = %v, want task 7", n)
	}
}
