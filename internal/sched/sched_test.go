package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/graph"
)

func mkNode(id int64, prio bool) *graph.Node {
	return &graph.Node{ID: id, Priority: prio}
}

func TestQueueFIFOAndLIFO(t *testing.T) {
	var q queue
	for i := int64(1); i <= 3; i++ {
		q.pushBack(mkNode(i, false))
	}
	if n := q.popFront(); n.ID != 1 {
		t.Fatalf("popFront = %d, want 1", n.ID)
	}
	if n := q.popBack(); n.ID != 3 {
		t.Fatalf("popBack = %d, want 3", n.ID)
	}
	if n := q.popBack(); n.ID != 2 {
		t.Fatalf("popBack = %d, want 2", n.ID)
	}
	if q.popBack() != nil || q.popFront() != nil {
		t.Fatalf("empty queue must return nil")
	}
}

func TestQueueCompaction(t *testing.T) {
	var q queue
	const n = 1000
	for i := int64(0); i < n; i++ {
		q.pushBack(mkNode(i, false))
	}
	for i := int64(0); i < n; i++ {
		got := q.popFront()
		if got == nil || got.ID != i {
			t.Fatalf("popFront #%d = %v", i, got)
		}
	}
	if q.size() != 0 {
		t.Fatalf("size = %d, want 0", q.size())
	}
	// Interleaved push/pop keeps working after compaction.
	q.pushBack(mkNode(7, false))
	if got := q.popFront(); got.ID != 7 {
		t.Fatalf("after compaction popFront = %v", got)
	}
}

func TestQueueOrderProperty(t *testing.T) {
	// Property: popping everything from the front returns push order;
	// popping everything from the back returns reverse push order.
	f := func(raw []uint8) bool {
		var q1, q2 queue
		for i := range raw {
			q1.pushBack(mkNode(int64(i), false))
			q2.pushBack(mkNode(int64(i), false))
		}
		for i := range raw {
			if q1.popFront().ID != int64(i) {
				return false
			}
			if q2.popBack().ID != int64(len(raw)-1-i) {
				return false
			}
		}
		return q1.size() == 0 && q2.size() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLocalityHighPriorityFirst(t *testing.T) {
	s := NewLocality(2)
	s.Push(mkNode(1, false), graph.MainThread)
	s.Push(mkNode(2, true), graph.MainThread)
	if n := s.TryNext(0); n.ID != 2 {
		t.Fatalf("high priority must be scheduled first, got %d", n.ID)
	}
	if n := s.TryNext(0); n.ID != 1 {
		t.Fatalf("then the main list, got %d", n.ID)
	}
	st := s.Stats()
	if st.PushHigh != 1 || st.PushMain != 1 || st.PopHigh != 1 || st.PopMain != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLocalityOwnListLIFO(t *testing.T) {
	s := NewLocality(2)
	// Worker 1 releases two tasks; it must consume them in LIFO order.
	s.Push(mkNode(1, false), 1)
	s.Push(mkNode(2, false), 1)
	if n := s.TryNext(1); n.ID != 2 {
		t.Fatalf("own list must be LIFO, got %d", n.ID)
	}
	if n := s.TryNext(1); n.ID != 1 {
		t.Fatalf("own list second pop = %d, want 1", n.ID)
	}
	if st := s.Stats(); st.PushOwn != 2 || st.PopOwn != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLocalityStealFIFO(t *testing.T) {
	s := NewLocality(2)
	// Worker 1's list holds 1,2 (oldest first).  Worker 0 must steal the
	// oldest (FIFO) to spare the victim's cache.
	s.Push(mkNode(1, false), 1)
	s.Push(mkNode(2, false), 1)
	if n := s.TryNext(0); n.ID != 1 {
		t.Fatalf("steal must be FIFO, got %d", n.ID)
	}
	if st := s.Stats(); st.Steals != 1 {
		t.Fatalf("stats = %+v, want 1 steal", st)
	}
}

func TestLocalityStealOrderStartsAtNextWorker(t *testing.T) {
	s := NewLocality(4)
	// Tasks on workers 2 and 3.  Worker 1 must check 2 before 3.
	s.Push(mkNode(30, false), 3)
	s.Push(mkNode(20, false), 2)
	if n := s.TryNext(1); n.ID != 20 {
		t.Fatalf("worker 1 must steal from worker 2 first, got %d", n.ID)
	}
	// Now only worker 3 has work; worker 1 wraps around past 2.
	if n := s.TryNext(1); n.ID != 30 {
		t.Fatalf("worker 1 must wrap to worker 3, got %d", n.ID)
	}
}

func TestLocalityOwnBeforeMainBeforeSteal(t *testing.T) {
	s := NewLocality(2)
	s.Push(mkNode(1, false), graph.MainThread) // injector
	s.Push(mkNode(2, false), 1)                // own deque of worker 1
	s.Push(mkNode(3, false), 0)                // worker 0's deque
	if n := s.TryNext(1); n.ID != 2 {
		t.Fatalf("own deque must beat the injector, got %d", n.ID)
	}
	if n := s.TryNext(1); n.ID != 1 {
		t.Fatalf("injector must beat stealing, got %d", n.ID)
	}
	if n := s.TryNext(1); n.ID != 3 {
		t.Fatalf("finally steal, got %d", n.ID)
	}
}

func TestLocalityMainIsPoliteThief(t *testing.T) {
	s := NewLocality(3)
	// Worker 1 holds a single queued task.  Only a worker pushes to its
	// own deque, so worker 1 is awake and about to pop it: the main
	// thread (identity 0) must leave it alone...
	s.Push(mkNode(1, false), 1)
	if n := s.TryNext(0); n != nil {
		t.Fatalf("main thread stole a worker's last task: %d", n.ID)
	}
	// ...while a dedicated worker may take it, and the main thread may
	// steal once the victim holds two or more.
	if n := s.TryNext(2); n == nil || n.ID != 1 {
		t.Fatalf("worker 2 must steal the singleton, got %v", n)
	}
	s.Push(mkNode(2, false), 1)
	s.Push(mkNode(3, false), 1)
	if n := s.TryNext(0); n == nil || n.ID != 2 {
		t.Fatalf("main thread must steal from a 2-deep deque, got %v", n)
	}
}

func TestLocalityMainThreadReleaseGoesToMainList(t *testing.T) {
	s := NewLocality(2)
	s.Push(mkNode(1, false), graph.MainThread)
	if st := s.Stats(); st.PushMain != 1 || st.PushOwn != 0 {
		t.Fatalf("stats = %+v, want main push", st)
	}
}

func TestLocalityOutOfRangeWorkerFallsBackToMain(t *testing.T) {
	s := NewLocality(2)
	s.Push(mkNode(1, false), 99)
	if st := s.Stats(); st.PushMain != 1 {
		t.Fatalf("out-of-range releasedBy must use main list: %+v", st)
	}
	if n := s.TryNext(0); n == nil || n.ID != 1 {
		t.Fatalf("task lost")
	}
}

func TestLocalityLen(t *testing.T) {
	s := NewLocality(2)
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
	s.Push(mkNode(1, true), graph.MainThread)
	s.Push(mkNode(2, false), graph.MainThread)
	s.Push(mkNode(3, false), 1)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
}

func TestGlobalFIFOOrder(t *testing.T) {
	s := NewGlobalFIFO()
	s.Push(mkNode(1, false), 0)
	s.Push(mkNode(2, false), 1)
	s.Push(mkNode(3, true), graph.MainThread)
	if n := s.TryNext(0); n.ID != 3 {
		t.Fatalf("high priority first, got %d", n.ID)
	}
	if n := s.TryNext(1); n.ID != 1 {
		t.Fatalf("then FIFO, got %d", n.ID)
	}
	if n := s.TryNext(0); n.ID != 2 {
		t.Fatalf("then FIFO, got %d", n.ID)
	}
	if s.TryNext(0) != nil {
		t.Fatalf("empty must return nil")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
}

func TestSchedulerGetBlocksUntilPush(t *testing.T) {
	s := NewScheduler(NewLocality(2), 2)
	got := make(chan *graph.Node, 1)
	go func() { got <- s.Get(0, nil) }()
	select {
	case n := <-got:
		t.Fatalf("Get returned %v before any push", n)
	case <-time.After(20 * time.Millisecond):
	}
	s.Push(mkNode(42, false), graph.MainThread)
	select {
	case n := <-got:
		if n.ID != 42 {
			t.Fatalf("Get = %d, want 42", n.ID)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("Get did not wake after push")
	}
}

func TestSchedulerGetCancel(t *testing.T) {
	s := NewScheduler(NewLocality(1), 1)
	var stop atomic.Bool
	got := make(chan *graph.Node, 1)
	go func() { got <- s.Get(0, stop.Load) }()
	time.Sleep(10 * time.Millisecond)
	stop.Store(true)
	s.Kick()
	select {
	case n := <-got:
		if n != nil {
			t.Fatalf("cancelled Get = %v, want nil", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("cancelled Get did not return")
	}
}

func TestSchedulerCloseDrains(t *testing.T) {
	s := NewScheduler(NewGlobalFIFO(), 2)
	s.Push(mkNode(1, false), graph.MainThread)
	s.Close()
	if n := s.Get(0, nil); n == nil || n.ID != 1 {
		t.Fatalf("Get after Close must drain remaining tasks, got %v", n)
	}
	if n := s.Get(0, nil); n != nil {
		t.Fatalf("Get on closed empty scheduler = %v, want nil", n)
	}
}

func TestSchedulerConcurrentProducersConsumers(t *testing.T) {
	s := NewScheduler(NewLocality(4), 4)
	const total = 4000
	var consumed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			for {
				n := s.Get(self, nil)
				if n == nil {
					return
				}
				consumed.Add(1)
			}
		}(w)
	}
	// The producer is not a worker goroutine, so it may only use the
	// releasedBy identities whose pushes guarantee a wakeup: MainThread
	// and the main-thread helper identity 0 (a releasedBy >= 1 push is,
	// by the runtime's single-submitter invariant, made by that worker
	// itself, which then pops the task without needing a wake).
	for i := 0; i < total; i++ {
		s.Push(mkNode(int64(i), i%7 == 0), i%2-1)
	}
	for consumed.Load() < total {
		time.Sleep(time.Millisecond)
	}
	s.Close()
	wg.Wait()
	if consumed.Load() != total {
		t.Fatalf("consumed %d, want %d", consumed.Load(), total)
	}
	st := s.Stats()
	if st.PushHigh == 0 || st.PushOwn == 0 || st.PushMain == 0 {
		t.Fatalf("expected a mix of destinations: %+v", st)
	}
}

// TestAffinityPushPlacement pins the hint-honoring rules: a hint to a
// dedicated worker lands on that worker's deque; a hint to a helper
// slot falls back to the injector while dedicated workers exist (the
// task would otherwise cost a forced steal); and on a pool with no
// dedicated workers (a Workers: 1 runtime) the helper hint is honored —
// the submitter is the only executor.
func TestAffinityPushPlacement(t *testing.T) {
	s := NewLocalityShared(4, 1) // slot 0: helper, slots 1-3: dedicated
	hinted := mkNode(1, false)
	hinted.SetAffinity(2)
	s.Push(hinted, graph.MainThread)
	if st := s.Stats(); st.AffinityPushes != 1 || st.PushMain != 0 {
		t.Fatalf("dedicated-worker hint not honored: %+v", st)
	}
	if n := s.deques[2].popBack(); n == nil || n.ID != 1 {
		t.Fatalf("hinted task not on deque 2: %v", n)
	}

	toHelper := mkNode(2, false)
	toHelper.SetAffinity(0)
	s.Push(toHelper, graph.MainThread)
	if st := s.Stats(); st.AffinityPushes != 1 || st.PushMain != 1 {
		t.Fatalf("helper-slot hint must fall back to the injector: %+v", st)
	}

	solo := NewLocality(1) // no dedicated workers at all
	n3 := mkNode(3, false)
	n3.SetAffinity(0)
	solo.Push(n3, graph.MainThread)
	if st := solo.Stats(); st.AffinityPushes != 1 {
		t.Fatalf("solo-executor pool must honor the helper hint: %+v", st)
	}
}
