package sched

import (
	"math/bits"
	"sync"

	"repro/internal/graph"
)

// defaultDequeCap bounds each worker's ready deque.  Overflow spills to
// the shared injector queue, so per-worker memory stays constant no
// matter how fast one worker's completions release new tasks.  SMPSs
// graphs are throttled to a few thousand open tasks (core.Config
// .GraphLimit), so 256 slots per worker keeps spills rare while bounding
// the LIFO working set to tasks whose inputs are plausibly still in
// cache.
const defaultDequeCap = 256

// deque is a bounded ring-buffer deque of task nodes, one per worker.
// The owner pushes and pops at the back (LIFO, depth-first descent of
// the graph while produced data is hot); thieves grab batches from the
// front (FIFO, the tasks whose inputs have been cold the longest —
// paper §VII.D).
//
// A plain mutex guards each deque: SMPSs tasks run for hundreds of
// microseconds (paper §I), and the mutex is uncontended except during
// steals, so a lock-free Chase–Lev structure would buy nothing.  What
// matters for scale is that the mutex is *per worker*: pushes and pops
// by distinct workers never serialize against each other the way the
// old global condvar-guarded lists did.
type deque struct {
	mu   sync.Mutex
	buf  []*graph.Node
	mask int
	head int // index of the oldest element
	tail int // index one past the newest element
}

// init sizes the ring; cap is rounded up to a power of two.
func (d *deque) init(capacity int) {
	if capacity < 2 {
		capacity = 2
	}
	capacity = 1 << bits.Len(uint(capacity-1))
	d.buf = make([]*graph.Node, capacity)
	d.mask = capacity - 1
}

// pushBack appends a node at the back, returning the new size and true,
// or 0 and false when the ring is full (the caller spills to the
// injector queue).
func (d *deque) pushBack(n *graph.Node) (int, bool) {
	d.mu.Lock()
	if d.tail-d.head == len(d.buf) {
		d.mu.Unlock()
		return 0, false
	}
	d.buf[d.tail&d.mask] = n
	d.tail++
	size := d.tail - d.head
	d.mu.Unlock()
	return size, true
}

// popBack removes and returns the most recently pushed node, or nil.
func (d *deque) popBack() *graph.Node {
	d.mu.Lock()
	if d.tail == d.head {
		d.mu.Unlock()
		return nil
	}
	d.tail--
	n := d.buf[d.tail&d.mask]
	d.buf[d.tail&d.mask] = nil
	d.mu.Unlock()
	return n
}

// grabHalf removes the oldest half of the deque (at least one element,
// at most len(buf)/2+1) into dst, oldest first, and returns the count.
// It refuses deques holding fewer than minSize elements, so a polite
// thief can decline to take a victim's last queued task.  The thief runs
// dst[0] immediately and keeps the rest, so one steal rebalances a whole
// batch of queued work instead of bouncing on the victim's lock once per
// task.
func (d *deque) grabHalf(dst []*graph.Node, minSize int) int {
	d.mu.Lock()
	size := d.tail - d.head
	if size == 0 || size < minSize {
		d.mu.Unlock()
		return 0
	}
	k := (size + 1) / 2
	if k > len(dst) {
		k = len(dst)
	}
	for i := 0; i < k; i++ {
		dst[i] = d.buf[d.head&d.mask]
		d.buf[d.head&d.mask] = nil
		d.head++
	}
	d.mu.Unlock()
	return k
}

// size returns the number of queued nodes.
func (d *deque) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tail - d.head
}
