package sched

import (
	"sync"
	"sync/atomic"

	"repro/internal/chaos"
	"repro/internal/graph"
)

// This file is the multi-tenant dispatch layer: one shared set of worker
// threads serving many independent task graphs.  Each runtime context
// registers a Client — its own scheduling Policy plus in-flight
// accounting — with a Mux, which multiplexes every client's ready tasks
// over the pool's workers.  Workers scan the clients round-robin from a
// per-worker cursor, so one context with a deep backlog cannot starve
// the rest, while within a context the policy's locality order (high
// list, own deque, injector, steal-half) is preserved unchanged.

// Client is one context's share of a Mux: its scheduling policy, its
// submitter's worker identity, and the count of tasks currently queued.
// A Client belongs to exactly one context and is created by Mux.Attach.
type Client struct {
	policy Policy
	slot   int

	// queued counts tasks pushed but not yet popped — the per-context
	// in-flight gauge.  Workers use it to skip empty clients without
	// touching the policy's locks, and a context's barrier helper uses
	// it to park instead of spinning on an empty queue.
	queued atomic.Int64

	// waiting marks the client's submitter parked in a restricted Get
	// (helping only its own context).  Restricted waiters stay off the
	// mux's global idle stack — a push to context B must never spend its
	// only wakeup on context A's submitter, which would recheck A, find
	// nothing, and park again while B's task strands.
	waiting atomic.Bool
}

// Slot returns the worker identity of the client's submitter.
func (c *Client) Slot() int { return c.slot }

// Queued returns the client's in-flight task count (pushed, not yet
// popped).  Approximate under concurrency.
func (c *Client) Queued() int64 { return c.queued.Load() }

// Stats returns the client's policy counters — per-context by
// construction, so one tenant's scheduling activity never bleeds into
// another's snapshot.
func (c *Client) Stats() Stats { return c.policy.Stats() }

// HighPending reports whether the client's policy has high-priority
// work queued; policies without a high-priority lane report false.  The
// runtime's successor chaining consults it so an inline chain never
// outruns a waiting high-priority task.
func (c *Client) HighPending() bool {
	if hp, ok := c.policy.(interface{ HighPending() bool }); ok {
		return hp.HighPending()
	}
	return false
}

// Mux dispatches ready tasks from many Clients to one shared set of
// workers.  Two implementations exist: TokenMux, the per-worker parking
// protocol, and CondvarMux, the seed's global condvar generalized to
// many clients (the LegacyWakeup ablation).
type Mux interface {
	// Attach registers a context's policy; slot is its submitter's
	// worker identity (used for targeted cancel-condition wakes).
	Attach(p Policy, slot int) *Client
	// Detach removes a client.  The caller must have drained the
	// client's queue (a closing context barriers first).
	Detach(c *Client)
	// Push queues a ready task of client c.  releasedBy is the worker
	// whose completion made it ready, or graph.MainThread.
	Push(c *Client, n *graph.Node, releasedBy int)
	// Get returns the next task for worker self, parking until one
	// arrives; nil when cancel() reports true or after Close.  When
	// only is non-nil the worker takes tasks exclusively from that
	// client — the restricted mode a context's submitter uses while it
	// blocks, so helping out never executes another tenant's work (and
	// a barrier in one context never waits on another's task bodies).
	Get(self int, only *Client, cancel func() bool) *graph.Node
	// Wake nudges worker slot to re-evaluate its cancel condition.
	Wake(slot int)
	// Kick wakes every parked worker.
	Kick()
	// Close wakes everyone; subsequent Gets return nil once drained.
	Close()
	// Stats returns the mux-level parking counters.  Policy counters
	// live on the clients.
	Stats() Stats
	// Evict spills worker w's per-client queues back to the shared
	// injectors (a retiring worker must strand no tasks); returns the
	// number of tasks moved.
	Evict(w int) int
	// Nudge unparks one idle worker if any client has queued work —
	// the elastic pool's re-arm after a retirement or grow.
	Nudge()
	// Load returns the total queued tasks across all clients, the
	// depth gauge the scaling controller samples.
	Load() int64
}

// muxCursor is one worker's round-robin position over the client list,
// padded so neighbouring workers' cursors do not false-share a line.
type muxCursor struct {
	v uint32
	_ [60]byte
}

// muxBase carries the client registry and the fair-scan logic shared by
// both Mux implementations.
type muxBase struct {
	// clients is a copy-on-write snapshot so the worker scan never takes
	// a lock; cmu serializes Attach/Detach.
	clients atomic.Pointer[[]*Client]
	cmu     sync.Mutex
	cursor  []muxCursor
	// active counts clients with at least one queued task (maintained on
	// the queued gauge's 0↔1 crossings).  The wake-elision override
	// reads it: a lone self-push is safe to elide exactly while no other
	// tenant has queued work the releasing worker's round-robin scan
	// could serve first.
	active atomic.Int64
}

// enqueue bumps the client's in-flight gauge, tracking the
// zero-crossing in the active-client count.
func (b *muxBase) enqueue(c *Client) {
	if c.queued.Add(1) == 1 {
		b.active.Add(1)
	}
}

// dequeue is enqueue's inverse, called when a lookup pops a task.
func (b *muxBase) dequeue(c *Client) {
	if c.queued.Add(-1) == 0 {
		b.active.Add(-1)
	}
}

func (b *muxBase) init(nslots int) {
	empty := make([]*Client, 0)
	b.clients.Store(&empty)
	b.cursor = make([]muxCursor, nslots)
}

func (b *muxBase) attach(p Policy, slot int) *Client {
	c := &Client{policy: p, slot: slot}
	b.cmu.Lock()
	old := *b.clients.Load()
	next := make([]*Client, len(old)+1)
	copy(next, old)
	next[len(old)] = c
	b.clients.Store(&next)
	b.cmu.Unlock()
	return c
}

func (b *muxBase) detach(c *Client) {
	b.cmu.Lock()
	old := *b.clients.Load()
	next := make([]*Client, 0, len(old))
	for _, x := range old {
		if x != c {
			next = append(next, x)
		}
	}
	b.clients.Store(&next)
	b.cmu.Unlock()
}

// tryNext finds a task for worker self.  Restricted lookups poll only
// the given client; unrestricted lookups scan every client round-robin
// starting at the worker's cursor, which then advances past the served
// client so successive lookups rotate fairly across tenants.  With a
// single attached client the scan degenerates to exactly the
// single-runtime lookup.
func (b *muxBase) tryNext(self int, only *Client) *graph.Node {
	if only != nil {
		if only.queued.Load() == 0 {
			return nil
		}
		if n := only.policy.TryNext(self); n != nil {
			b.dequeue(only)
			return n
		}
		return nil
	}
	cs := *b.clients.Load()
	if len(cs) == 0 {
		return nil
	}
	start := int(b.cursor[self].v) % len(cs)
	for i := 0; i < len(cs); i++ {
		c := cs[(start+i)%len(cs)]
		if c.queued.Load() == 0 {
			continue
		}
		if n := c.policy.TryNext(self); n != nil {
			b.dequeue(c)
			b.cursor[self].v = uint32((start + i + 1) % len(cs))
			return n
		}
	}
	return nil
}

// TokenMux is the default Mux: the per-worker one-token parking protocol
// of the work-stealing overhaul, extended with the client registry.  A
// push hands exactly one token to one idle worker; a context's parked
// submitter is tracked on its Client (not the idle stack) and woken
// only by its own context's pushes and targeted Wakes.
type TokenMux struct {
	muxBase

	// parker[w] holds at most one wake token for worker w.
	parker []chan struct{}

	mu   sync.Mutex
	idle []int // stack of unrestricted workers currently announced idle
	// inIdle[w] mirrors membership of the idle stack; readable lock-free
	// for the elided-wake invariant guard in Push.
	inIdle []atomic.Bool
	nidle  atomic.Int32

	closed         atomic.Bool
	parks, unparks atomic.Int64
}

// NewTokenMux creates a mux for nslots worker identities (submitter
// slots and dedicated workers combined).
func NewTokenMux(nslots int) *TokenMux {
	if nslots < 1 {
		nslots = 1
	}
	m := &TokenMux{
		parker: make([]chan struct{}, nslots),
		inIdle: make([]atomic.Bool, nslots),
		idle:   make([]int, 0, nslots),
	}
	m.muxBase.init(nslots)
	for i := range m.parker {
		m.parker[i] = make(chan struct{}, 1)
	}
	return m
}

// Attach implements Mux.
func (m *TokenMux) Attach(p Policy, slot int) *Client { return m.attach(p, slot) }

// Detach implements Mux.
func (m *TokenMux) Detach(c *Client) { m.detach(c) }

// Push implements Mux: the task is queued on the client's policy and, if
// the policy asks for a wake, one idle worker is unparked and the
// client's parked submitter (if any) is handed a token too — with zero
// dedicated workers the submitter is the only thread that can execute.
func (m *TokenMux) Push(c *Client, n *graph.Node, releasedBy int) {
	m.enqueue(c)
	wake := c.policy.Push(n, releasedBy)
	if !wake && m.active.Load() > 1 {
		// The policy elided the wake on the premise that the releasing
		// worker pops this task on its very next lookup.  That holds
		// only while this client is the only one with queued work: if
		// another tenant has tasks in flight, the worker's round-robin
		// scan may hand it that context's (arbitrarily long) task
		// first, leaving the lone successor stranded with every other
		// worker parked.  The active-client gauge makes the check
		// precise — a pool with many *attached* but idle tenants keeps
		// the single-runtime elision.  (If a second tenant's push races
		// this load, at most one of the two elides: the active counter
		// is a single atomic, so the later pusher observes both
		// clients active and wakes.)
		wake = true
	}
	if wake {
		// A task carrying an affinity hint wakes the hinted worker when
		// it is parked — the wake-to-data counterpart of the hinted
		// push.  If the hinted worker is not idle (or loses the race to
		// a concurrent unpark), fall back to the LIFO idle stack so the
		// push's wake is never swallowed.  chaos.DropWake deliberately
		// loses the targeted wake to prove the fallback really covers
		// every push.
		if h := n.Affinity(); h < 0 || h >= len(m.inIdle) ||
			!m.inIdle[h].Load() || chaos.DropWake(h) || !m.wakeIdle(h) {
			m.unparkOne()
		}
		if c.waiting.Load() {
			// Targeted token for the client's parked submitter.  Not
			// counted as an unpark: the one-slot buffer may drop it as a
			// duplicate of an earlier completion wake, and only idle-stack
			// pops keep Parks/Unparks comparable.
			m.token(c.slot)
		}
		return
	}
	// Elided wake (sole tenant): the contract says the releasing worker
	// is awake and pops the task next.  Guard the invariant anyway — if
	// that worker is in fact parked (a push from a goroutine that is not
	// the owner, violating the contract), wake it rather than strand the
	// task.  A submitter-slot push never reaches here: every policy
	// requests a wake for helper-slot releases.
	if releasedBy >= 0 && releasedBy < len(m.inIdle) && m.inIdle[releasedBy].Load() {
		m.Wake(releasedBy)
	}
}

// unparkOne hands a wake token to one idle unrestricted worker.
func (m *TokenMux) unparkOne() {
	if m.nidle.Load() == 0 {
		return
	}
	m.mu.Lock()
	if len(m.idle) == 0 {
		m.mu.Unlock()
		return
	}
	w := m.idle[len(m.idle)-1]
	m.idle = m.idle[:len(m.idle)-1]
	m.inIdle[w].Store(false)
	m.nidle.Add(-1)
	m.mu.Unlock()
	m.token(w)
	m.unparks.Add(1)
}

// token delivers worker w's wake token; the buffer of one absorbs
// duplicates.
func (m *TokenMux) token(w int) {
	select {
	case m.parker[w] <- struct{}{}:
	default:
	}
}

// announce puts worker self on the idle stack (idempotent).
func (m *TokenMux) announce(self int) {
	m.mu.Lock()
	if !m.inIdle[self].Load() {
		m.idle = append(m.idle, self)
		m.inIdle[self].Store(true)
		m.nidle.Add(1)
	}
	m.mu.Unlock()
}

// retire removes self from the idle stack after it found work (or is
// giving up) on its own.  If a concurrent push already popped self to
// target a wakeup at it, the wakeup is forwarded to another idle worker
// so no push's wake is silently swallowed.
func (m *TokenMux) retire(self int) {
	m.mu.Lock()
	found := false
	for i, w := range m.idle {
		if w == self {
			m.idle = append(m.idle[:i], m.idle[i+1:]...)
			m.inIdle[self].Store(false)
			m.nidle.Add(-1)
			found = true
			break
		}
	}
	next := -1
	if !found && len(m.idle) > 0 {
		next = m.idle[len(m.idle)-1]
		m.idle = m.idle[:len(m.idle)-1]
		m.inIdle[next].Store(false)
		m.nidle.Add(-1)
	}
	m.mu.Unlock()
	if next >= 0 {
		m.token(next)
		m.unparks.Add(1)
	}
}

// leave undoes the idle announcement appropriate to the Get mode.
func (m *TokenMux) leave(self int, only *Client) {
	if only != nil {
		only.waiting.Store(false)
		return
	}
	m.retire(self)
}

// Get implements Mux.  The parking protocol is announce → recheck →
// park: a push after the recheck is guaranteed to observe the
// announcement (the idle stack for unrestricted workers, the client's
// waiting flag for a restricted submitter) and deliver a token, so no
// wakeup is lost.
func (m *TokenMux) Get(self int, only *Client, cancel func() bool) *graph.Node {
	if self < 0 || self >= len(m.parker) {
		self = 0
	}
	ch := m.parker[self]
	for {
		if n := m.tryNext(self, only); n != nil {
			return n
		}
		// Clear any stale token from an earlier targeted wakeup we never
		// consumed, so it cannot cause an immediate spurious unpark.
		select {
		case <-ch:
		default:
		}
		if only != nil {
			only.waiting.Store(true)
		} else {
			m.announce(self)
		}
		if n := m.tryNext(self, only); n != nil {
			m.leave(self, only)
			return n
		}
		if cancel != nil && cancel() {
			m.leave(self, only)
			return nil
		}
		if m.closed.Load() {
			m.leave(self, only)
			// Drain whatever remains before giving up.
			return m.tryNext(self, only)
		}
		if only == nil {
			// Parks (and Unparks) describe the idle-stack protocol only:
			// restricted submitters park outside it and their targeted
			// tokens are deliberately uncounted, so the two gauges stay
			// comparable.
			m.parks.Add(1)
		}
		<-ch
		if only != nil {
			only.waiting.Store(false)
		}
		if m.closed.Load() {
			return m.tryNext(self, only)
		}
		// Re-evaluate the cancel condition before looking for work: a
		// targeted Wake usually means the condition the caller blocks on
		// (barrier, graph limit) just changed, and going through tryNext
		// first would make the waking submitter take a task it no longer
		// needs to help with.
		if cancel != nil && cancel() {
			return nil
		}
	}
}

// wakeIdle pops worker slot off the idle stack and delivers its token,
// reporting whether the worker was actually idle.  The affinity wake
// uses the report to fall back to unparkOne when the hinted worker was
// concurrently claimed — a push's wake must never be swallowed by a
// token buffered at a busy worker.
func (m *TokenMux) wakeIdle(slot int) bool {
	m.mu.Lock()
	idle := m.inIdle[slot].Load()
	if idle {
		for i, id := range m.idle {
			if id == slot {
				m.idle = append(m.idle[:i], m.idle[i+1:]...)
				break
			}
		}
		m.inIdle[slot].Store(false)
		m.nidle.Add(-1)
	}
	m.mu.Unlock()
	if idle {
		m.token(slot)
		m.unparks.Add(1)
	}
	return idle
}

// Wake implements Mux: a targeted nudge so worker slot re-evaluates its
// cancel condition.  An unrestricted idle worker is popped off the idle
// stack; otherwise the token is delivered directly — that is how a
// context's parked submitter (which never joins the idle stack) is
// woken by its completions and its tracker's reclaim hook.
func (m *TokenMux) Wake(slot int) {
	if slot < 0 || slot >= len(m.parker) {
		return
	}
	if !m.wakeIdle(slot) {
		m.token(slot)
	}
}

// Kick implements Mux: every parked worker — idle stack and restricted
// submitters alike — re-evaluates its cancel condition.
func (m *TokenMux) Kick() {
	m.mu.Lock()
	woken := append([]int(nil), m.idle...)
	m.idle = m.idle[:0]
	for _, w := range woken {
		m.inIdle[w].Store(false)
	}
	m.nidle.Store(0)
	m.mu.Unlock()
	for _, w := range woken {
		m.token(w)
		m.unparks.Add(1)
	}
	for _, c := range *m.clients.Load() {
		if c.waiting.Load() {
			m.token(c.slot)
		}
	}
}

// Close implements Mux.
func (m *TokenMux) Close() {
	m.closed.Store(true)
	m.Kick()
}

// Stats implements Mux: the parking counters.  These are pool-wide —
// parking is shared machinery — so they are reported here rather than
// on any client.
func (m *TokenMux) Stats() Stats {
	return Stats{Parks: m.parks.Load(), Unparks: m.unparks.Load()}
}

// CondvarMux is the legacy wake machinery generalized to many clients:
// one global mutex+condvar and a Broadcast on every push while any
// worker sleeps (the thundering herd the TokenMux replaces).  Kept so
// the LegacyWakeup ablation measures the old protocol under the shared
// pool too.
type CondvarMux struct {
	muxBase

	mu      sync.Mutex
	cond    *sync.Cond
	version uint64
	closed  bool
	// sleepers counts workers parked (or about to park) in Get; Push
	// skips the lock and broadcast entirely while it is zero.
	sleepers atomic.Int64
}

// NewCondvarMux creates the legacy global-condvar mux for nslots worker
// identities.
func NewCondvarMux(nslots int) *CondvarMux {
	if nslots < 1 {
		nslots = 1
	}
	m := &CondvarMux{}
	m.muxBase.init(nslots)
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Attach implements Mux.
func (m *CondvarMux) Attach(p Policy, slot int) *Client { return m.attach(p, slot) }

// Detach implements Mux.
func (m *CondvarMux) Detach(c *Client) { m.detach(c) }

// Push implements Mux.  The legacy protocol ignores the policy's wake
// hint: every push broadcasts while anyone sleeps.
func (m *CondvarMux) Push(c *Client, n *graph.Node, releasedBy int) {
	m.enqueue(c)
	c.policy.Push(n, releasedBy)
	if m.sleepers.Load() == 0 {
		return
	}
	m.mu.Lock()
	m.version++
	m.mu.Unlock()
	m.cond.Broadcast()
}

// Get implements Mux.
func (m *CondvarMux) Get(self int, only *Client, cancel func() bool) *graph.Node {
	if self < 0 || self >= len(m.cursor) {
		self = 0
	}
	for {
		if n := m.tryNext(self, only); n != nil {
			return n
		}
		m.mu.Lock()
		v := m.version
		m.mu.Unlock()
		// Declare the sleeper before the final recheck: a Push after the
		// recheck is then guaranteed to see sleepers > 0 and bump the
		// version, so no wakeup is lost.
		m.sleepers.Add(1)
		if n := m.tryNext(self, only); n != nil {
			m.sleepers.Add(-1)
			return n
		}
		if cancel != nil && cancel() {
			m.sleepers.Add(-1)
			return nil
		}
		m.mu.Lock()
		for m.version == v && !m.closed {
			m.cond.Wait()
		}
		closed := m.closed
		m.mu.Unlock()
		m.sleepers.Add(-1)
		if closed {
			// Drain whatever remains before giving up.
			return m.tryNext(self, only)
		}
	}
}

// Wake implements Mux.  The legacy design has no targeted wakeup; any
// nudge is a broadcast.
func (m *CondvarMux) Wake(slot int) { m.Kick() }

// Kick implements Mux.
func (m *CondvarMux) Kick() {
	m.mu.Lock()
	m.version++
	m.mu.Unlock()
	m.cond.Broadcast()
}

// Close implements Mux.
func (m *CondvarMux) Close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// Stats implements Mux; the legacy machinery keeps no parking counters.
func (m *CondvarMux) Stats() Stats { return Stats{} }
