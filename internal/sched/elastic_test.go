package sched

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/topo"
)

// dequeSizes reports each worker deque's occupancy for assertions.
func dequeSizes(s *Locality) []int {
	out := make([]int, len(s.deques))
	for i := range s.deques {
		out[i] = s.deques[i].size()
	}
	return out
}

// seedDeque force-loads nodes onto worker w's deque (the releasedBy
// push path, as if w's completions released them).
func seedDeque(t *testing.T, s *Locality, w int, ids ...int64) {
	t.Helper()
	for _, id := range ids {
		if !func() bool { _, ok := s.deques[w].pushBack(mkNode(id, false)); return ok }() {
			t.Fatalf("deque %d full seeding node %d", w, id)
		}
	}
}

// TestStealOrderNearBeforeFar pins the hierarchical probe order: with a
// synthetic 2-group topology and work available in both a same-group
// and a remote deque, a thief must take from the same-group victim
// first — and the steal must book as local, not remote.
func TestStealOrderNearBeforeFar(t *testing.T) {
	// 8 slots, helper 0; groups {0..3} {4..7}.
	s := NewLocalitySharedElastic(8, 1, topo.Split(8, 2), nil)

	// Thief is worker 1.  The flat scan would probe 2,3,4,... and the
	// hierarchical one also starts at 2 — so stage work where the two
	// orders disagree: victim 3 (same group, flat distance 2) and victim
	// 2's group-mate beaten by remote 4,5 in flat order from worker 6.
	// Use thief 6 (group {4..7}): flat order probes 7,0,1,2,...; with
	// work only on 0 (remote) and 5 (near, flat distance 7), flat steals
	// from 0 first while hierarchical must take 5.
	seedDeque(t, s, 0, 100, 101)
	seedDeque(t, s, 5, 200, 201)

	n := s.TryNext(6)
	if n == nil || n.ID != 200 {
		t.Fatalf("thief 6 stole %v, want node 200 from same-group victim 5", n)
	}
	st := s.Stats()
	if st.LocalSteals == 0 || st.RemoteSteals != 0 {
		t.Errorf("steal booked local=%d remote=%d, want local>0 remote=0", st.LocalSteals, st.RemoteSteals)
	}

	// Drain the rest of the neighbourhood (the remainder of the batch
	// landed on 6's own deque); only then may the thief go remote.
	for {
		n := s.TryNext(6)
		if n == nil {
			t.Fatal("ran dry before the remote victim's tasks")
		}
		if n.ID >= 100 && n.ID < 200 {
			break // first remote task
		}
	}
	st = s.Stats()
	if st.RemoteSteals == 0 {
		t.Errorf("remote steal not booked: %+v", st)
	}
}

// TestStealOrderFlatCountersZero: without a topology the scan has no
// distance to attribute, so the split counters must stay zero even
// though steals happen.
func TestStealOrderFlatCountersZero(t *testing.T) {
	s := NewLocalityShared(4, 1)
	seedDeque(t, s, 2, 1, 2)
	if n := s.TryNext(3); n == nil {
		t.Fatal("steal failed")
	}
	st := s.Stats()
	if st.Steals == 0 {
		t.Fatal("steal not counted")
	}
	if st.LocalSteals != 0 || st.RemoteSteals != 0 {
		t.Errorf("flat pool booked local=%d remote=%d, want 0/0", st.LocalSteals, st.RemoteSteals)
	}
}

// TestEvictSpillsToInjector: evicting a worker moves its whole deque to
// the injector in FIFO order and empties the deque.
func TestEvictSpillsToInjector(t *testing.T) {
	s := NewLocalityShared(4, 1)
	seedDeque(t, s, 2, 10, 11, 12)
	if moved := s.Evict(2); moved != 3 {
		t.Fatalf("Evict moved %d, want 3", moved)
	}
	if got := dequeSizes(s)[2]; got != 0 {
		t.Fatalf("deque 2 still holds %d after evict", got)
	}
	// Another worker pops them from the injector in creation order.
	for want := int64(10); want <= 12; want++ {
		n := s.TryNext(3)
		if n == nil || n.ID != want {
			t.Fatalf("after evict got %v, want node %d", n, want)
		}
	}
	if s.Evict(2) != 0 {
		t.Error("second evict of empty deque moved tasks")
	}
}

// TestEvictListLocality: the legacy policy spills its per-worker list
// to the main queue.
func TestEvictListLocality(t *testing.T) {
	s := NewListLocality(4)
	s.Push(mkNode(1, false), 2)
	s.Push(mkNode(2, false), 2)
	if moved := s.Evict(2); moved != 2 {
		t.Fatalf("Evict moved %d, want 2", moved)
	}
	n := s.TryNext(3)
	if n == nil || n.ID != 1 {
		t.Fatalf("after evict got %v, want node 1 from main", n)
	}
}

// TestAffinityRedirectToGroup: an affinity hint to a retired worker
// lands on an active worker in the same topology group, not on the dead
// deque and not on the injector.
func TestAffinityRedirectToGroup(t *testing.T) {
	as := NewActiveSet(8)
	s := NewLocalitySharedElastic(8, 1, topo.Split(8, 2), as)
	as.Set(6, false) // retire worker 6 (group {4..7})

	n := mkNode(1, false)
	n.SetAffinity(6)
	s.Push(n, graph.MainThread)

	sizes := dequeSizes(s)
	if sizes[6] != 0 {
		t.Fatalf("task landed on retired worker 6's deque")
	}
	target := -1
	for w, sz := range sizes {
		if sz > 0 {
			target = w
		}
	}
	if target < 4 || target > 7 {
		t.Fatalf("redirected to worker %d, want a group-{4..7} worker", target)
	}
	if st := s.Stats(); st.AffinityPushes != 1 {
		t.Errorf("AffinityPushes = %d, want 1", st.AffinityPushes)
	}
}

// TestAffinityRedirectWholeGroupRetired: with every group member
// retired the hint is abandoned to the injector and counted as a miss.
func TestAffinityRedirectWholeGroupRetired(t *testing.T) {
	as := NewActiveSet(8)
	s := NewLocalitySharedElastic(8, 1, topo.Split(8, 2), as)
	for w := 4; w < 8; w++ {
		as.Set(w, false)
	}

	n := mkNode(1, false)
	n.SetAffinity(5)
	s.Push(n, graph.MainThread)

	for w, sz := range dequeSizes(s) {
		if sz != 0 {
			t.Fatalf("task landed on deque %d, want injector", w)
		}
	}
	st := s.Stats()
	if st.AffinityMisses != 1 || st.PushMain != 1 {
		t.Errorf("misses=%d pushMain=%d, want 1/1", st.AffinityMisses, st.PushMain)
	}
}

// TestAffinityNilActiveSetUnchanged: a fixed pool (nil ActiveSet, nil
// topology) honors hints exactly as before.
func TestAffinityNilActiveSetUnchanged(t *testing.T) {
	s := NewLocalitySharedElastic(4, 1, nil, nil)
	n := mkNode(1, false)
	n.SetAffinity(2)
	s.Push(n, graph.MainThread)
	if got := dequeSizes(s)[2]; got != 1 {
		t.Fatalf("hinted deque holds %d, want 1", got)
	}
}

// TestMuxEvictAndLoad: the mux-level evict reaches every client's
// policy, and Load sums the per-client gauges.
func TestMuxEvictAndLoad(t *testing.T) {
	m := NewTokenMux(4)
	a := m.Attach(NewLocalityShared(4, 1), 0)
	b := m.Attach(NewLocalityShared(4, 1), 0)
	m.Push(a, mkNode(1, false), 2)
	m.Push(b, mkNode(2, false), 2)
	m.Push(b, mkNode(3, false), 2)
	if got := m.Load(); got != 3 {
		t.Fatalf("Load = %d, want 3", got)
	}
	if moved := m.Evict(2); moved != 3 {
		t.Fatalf("mux Evict moved %d, want 3", moved)
	}
	// Tasks are still poppable (from the injectors) by another worker.
	seen := 0
	for {
		n := m.tryNext(3, nil)
		if n == nil {
			break
		}
		seen++
	}
	if seen != 3 {
		t.Fatalf("after mux evict popped %d tasks, want 3", seen)
	}
	if got := m.Load(); got != 0 {
		t.Fatalf("Load after drain = %d, want 0", got)
	}
}

// TestActiveSetNilSafe: the nil set is the fixed pool — everything
// active, sets ignored.
func TestActiveSetNilSafe(t *testing.T) {
	var as *ActiveSet
	if !as.Active(3) {
		t.Error("nil ActiveSet must report active")
	}
	as.Set(3, false) // must not panic
	as = NewActiveSet(4)
	if as.Count(0, 4) != 4 {
		t.Errorf("fresh set Count = %d, want 4", as.Count(0, 4))
	}
	as.Set(2, false)
	if as.Count(0, 4) != 3 || as.Active(2) {
		t.Error("Set(2,false) not reflected")
	}
	if !as.Active(99) {
		t.Error("out-of-range must report active")
	}
}
