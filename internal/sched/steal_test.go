package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
)

func TestDequeBounds(t *testing.T) {
	var d deque
	d.init(4)
	for i := int64(1); i <= 4; i++ {
		if _, ok := d.pushBack(mkNode(i, false)); !ok {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	if _, ok := d.pushBack(mkNode(5, false)); ok {
		t.Fatalf("push beyond capacity must be rejected")
	}
	if n := d.popBack(); n.ID != 4 {
		t.Fatalf("popBack = %d, want 4", n.ID)
	}
	if d.size() != 3 {
		t.Fatalf("size = %d, want 3", d.size())
	}
}

func TestDequeGrabHalf(t *testing.T) {
	var d deque
	d.init(8)
	for i := int64(1); i <= 5; i++ {
		d.pushBack(mkNode(i, false))
	}
	buf := make([]*graph.Node, 8)
	k := d.grabHalf(buf, 1)
	if k != 3 {
		t.Fatalf("grabHalf of 5 = %d, want 3 (older half, rounded up)", k)
	}
	for i := 0; i < k; i++ {
		if buf[i].ID != int64(i+1) {
			t.Fatalf("stolen[%d] = %d, want %d (oldest first)", i, buf[i].ID, i+1)
		}
	}
	if d.size() != 2 {
		t.Fatalf("victim keeps %d, want 2", d.size())
	}
	// minSize lets a polite thief refuse a near-empty victim.
	var s deque
	s.init(4)
	s.pushBack(mkNode(9, false))
	if k := s.grabHalf(buf, 2); k != 0 {
		t.Fatalf("grabHalf(minSize=2) of singleton = %d, want 0", k)
	}
	if k := s.grabHalf(buf, 1); k != 1 || buf[0].ID != 9 {
		t.Fatalf("grabHalf(minSize=1) of singleton = %d, want the task", k)
	}
}

// TestLocalityStealHalfKeepsFIFO: a thief takes the victim's older half,
// runs the oldest, and replays the rest from its own deque in the same
// FIFO order before anything newer.
func TestLocalityStealHalfKeepsFIFO(t *testing.T) {
	s := NewLocality(3)
	for i := int64(1); i <= 5; i++ {
		s.Push(mkNode(i, false), 1)
	}
	// Worker 2 (a dedicated worker — the main thread's steals are capped
	// at one task) takes the victim's older half in one batch.
	if n := s.TryNext(2); n.ID != 1 {
		t.Fatalf("steal must return the oldest, got %d", n.ID)
	}
	st := s.Stats()
	if st.Steals != 3 || st.StealBatches != 1 {
		t.Fatalf("stats = %+v, want 3 tasks over 1 steal batch", st)
	}
	// The remainder of the batch replays oldest-first from our own deque.
	if n := s.TryNext(2); n.ID != 2 {
		t.Fatalf("second = %d, want 2", n.ID)
	}
	if n := s.TryNext(2); n.ID != 3 {
		t.Fatalf("third = %d, want 3", n.ID)
	}
	// The victim keeps its newest tasks, consumed LIFO as usual.
	if n := s.TryNext(1); n.ID != 5 {
		t.Fatalf("victim pops %d, want 5", n.ID)
	}
	if st := s.Stats(); st.PopOwn != 3 || st.Steals != 3 {
		t.Fatalf("stats = %+v, want 3 own pops and 3 stolen", st)
	}
}

// TestLocalityMainStealsOneTask: the main thread's steal is capped at a
// single task, so it can never leave a stolen batch stranded on its own
// deque while dedicated workers sleep.
func TestLocalityMainStealsOneTask(t *testing.T) {
	s := NewLocality(2)
	for i := int64(1); i <= 5; i++ {
		s.Push(mkNode(i, false), 1)
	}
	if n := s.TryNext(0); n.ID != 1 {
		t.Fatalf("main steal = %d, want the oldest", n.ID)
	}
	st := s.Stats()
	if st.Steals != 1 || st.StealBatches != 1 {
		t.Fatalf("stats = %+v, want exactly one stolen task", st)
	}
	if got := s.deques[0].size(); got != 0 {
		t.Fatalf("main kept %d stolen tasks on its deque, want 0", got)
	}
	if got := s.deques[1].size(); got != 4 {
		t.Fatalf("victim keeps %d, want 4", got)
	}
}

func TestLocalityDequeOverflowSpills(t *testing.T) {
	s := newLocalityCap(2, 2)
	for i := int64(1); i <= 5; i++ {
		s.Push(mkNode(i, false), 1)
	}
	st := s.Stats()
	if st.PushOwn != 2 || st.Spills != 3 || st.PushMain != 3 {
		t.Fatalf("stats = %+v, want 2 own + 3 spilled", st)
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5 (no task lost on overflow)", s.Len())
	}
	seen := map[int64]bool{}
	for i := 0; i < 5; i++ {
		n := s.TryNext(1)
		if n == nil {
			t.Fatalf("task %d missing after spill", i)
		}
		seen[n.ID] = true
	}
	if len(seen) != 5 {
		t.Fatalf("drained %d distinct tasks, want 5", len(seen))
	}
}

func TestSchedulerParkStats(t *testing.T) {
	s := NewScheduler(NewLocality(1), 1)
	got := make(chan *graph.Node, 1)
	go func() { got <- s.Get(0, nil) }()
	time.Sleep(20 * time.Millisecond) // let the worker park
	s.Push(mkNode(1, false), graph.MainThread)
	select {
	case n := <-got:
		if n.ID != 1 {
			t.Fatalf("Get = %d, want 1", n.ID)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("push did not unpark the worker")
	}
	st := s.Stats()
	if st.Parks == 0 || st.Unparks == 0 {
		t.Fatalf("stats = %+v, want parks and unparks recorded", st)
	}
}

// TestSchedulerWorkStealingStress runs many workers that consume tasks
// and release successors onto their own deques (the runtime's completion
// pattern), so pushes, own pops, steal-half batches and parking all race.
// Run under -race this is the scheduler's data-race canary; it also
// checks no task is lost or duplicated.
func TestSchedulerWorkStealingStress(t *testing.T) {
	const workers = 8
	const total = 50000
	s := NewScheduler(NewLocality(workers), workers)
	var budget atomic.Int64 // tasks left to create
	budget.Store(total)
	var pushed, consumed atomic.Int64
	spawn := func(by int) {
		if budget.Add(-1) >= 0 {
			id := pushed.Add(1)
			s.Push(mkNode(id, id%97 == 0), by)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			for {
				n := s.Get(self, nil)
				if n == nil {
					return
				}
				consumed.Add(1)
				// Completing a task releases up to three successors on
				// this worker's own deque — fan-out that forces wakes
				// and steal-half rebalancing.
				for j := 0; j < 3; j++ {
					spawn(self)
				}
			}
		}(w)
	}
	// Seed from the main thread.
	for i := 0; i < 64; i++ {
		spawn(graph.MainThread)
	}
	deadline := time.Now().Add(30 * time.Second)
	for consumed.Load() < pushed.Load() || budget.Load() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stress stalled: consumed %d of %d pushed, budget %d",
				consumed.Load(), pushed.Load(), budget.Load())
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
	wg.Wait()
	if consumed.Load() != pushed.Load() {
		t.Fatalf("consumed %d, pushed %d", consumed.Load(), pushed.Load())
	}
	st := s.Stats()
	if st.PushOwn == 0 || st.PopOwn == 0 {
		t.Fatalf("stress never used the own deques: %+v", st)
	}
	// Every consumed task came from exactly one source: a list pop or the
	// head of a steal batch (the batch's remainder is re-popped from the
	// thief's own deque and shows up under PopOwn).  Whether steals occur
	// depends on load (a saturated injector preempts stealing), so steal
	// coverage lives in TestWorkersStealFromBusyPeer.
	if got := st.PopHigh + st.PopOwn + st.PopMain + st.StealBatches; got != consumed.Load() {
		t.Fatalf("pop counters %d != consumed %d: %+v", got, consumed.Load(), st)
	}
}

// TestLocalityWakeHints pins down the Push return value: a lone
// self-push elides the wake, but not while high-priority work is
// pending (the caller's next lookup would take the high task and the
// lone successor would strand behind it).
func TestLocalityWakeHints(t *testing.T) {
	s := NewLocality(2)
	if wake := s.Push(mkNode(1, false), 1); wake {
		t.Fatalf("lone self-push must elide the wake")
	}
	if wake := s.Push(mkNode(2, false), 1); !wake {
		t.Fatalf("second task on the deque must wake a thief")
	}
	s.TryNext(1)
	s.TryNext(1)                              // drain the deque
	s.Push(mkNode(3, true), graph.MainThread) // high-priority pending
	if wake := s.Push(mkNode(4, false), 1); !wake {
		t.Fatalf("self-push with high-priority work pending must wake")
	}
	s.TryNext(1) // pops the high task
	s.TryNext(1) // pops task 4
	if wake := s.Push(mkNode(5, false), 1); wake {
		t.Fatalf("high drained: lone self-push must elide the wake again")
	}
	if wake := s.Push(mkNode(6, false), 0); !wake {
		t.Fatalf("a push onto the main thread's deque must always wake")
	}
}

// TestWorkersStealFromBusyPeer forces the steal path under concurrency:
// worker 1 queues a pile of released tasks on its own deque and then
// stalls in a long "task body", so the only way the other workers can
// drain the pile is steal-half from deque 1.
func TestWorkersStealFromBusyPeer(t *testing.T) {
	const workers = 4
	const pile = 10
	s := NewScheduler(NewLocality(workers), workers)
	var consumed atomic.Int64
	var wg sync.WaitGroup
	for w := 2; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			for {
				n := s.Get(self, nil)
				if n == nil {
					return
				}
				consumed.Add(1)
			}
		}(w)
	}
	// "Worker 1": releases a pile onto its own deque mid-task, then
	// never comes back for it (stuck in a long task body).
	for i := int64(1); i <= pile; i++ {
		s.Push(mkNode(i, false), 1)
	}
	deadline := time.Now().Add(10 * time.Second)
	for consumed.Load() < pile {
		if time.Now().After(deadline) {
			t.Fatalf("workers drained %d of %d from the busy peer", consumed.Load(), pile)
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
	wg.Wait()
	st := s.Stats()
	if st.Steals == 0 || st.StealBatches == 0 {
		t.Fatalf("the pile can only drain via steals: %+v", st)
	}
}
