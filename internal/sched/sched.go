package sched

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Stats aggregates scheduler activity, mostly so tests and ablation
// benchmarks can verify the locality policy is actually exercised.
type Stats struct {
	// PushHigh counts tasks queued on the high-priority list.
	PushHigh int64
	// PushOwn counts tasks queued directly on the releasing worker's list.
	PushOwn int64
	// PushMain counts tasks queued on the main ready list.
	PushMain int64
	// PopHigh, PopOwn, PopMain count where workers found their tasks.
	PopHigh, PopOwn, PopMain int64
	// Steals counts tasks taken from another worker's list.
	Steals int64
}

// Policy decides where ready tasks queue and where a worker looks next.
// Implementations must be safe for concurrent use.
type Policy interface {
	// Push queues a ready task.  releasedBy is the worker whose task
	// completion made it ready, or graph.MainThread if it was ready at
	// submission.
	Push(n *graph.Node, releasedBy int)
	// TryNext returns a task for worker self, or nil if none is
	// available right now.
	TryNext(self int) *graph.Node
	// Len returns the total number of queued tasks (approximate under
	// concurrency).
	Len() int
	// Stats returns a snapshot of the policy's counters.
	Stats() Stats
}

// Locality is the scheduling policy of paper §III: high-priority list,
// per-worker lists fed by dependency-releasing completions, main list for
// tasks ready at submission, and FIFO work stealing in creation order.
type Locality struct {
	high queue
	main queue
	own  []queue

	pushHigh, pushOwn, pushMain atomic.Int64
	popHigh, popOwn, popMain    atomic.Int64
	steals                      atomic.Int64
}

// NewLocality creates the paper's scheduler for nworkers workers
// (including the main thread, which participates with identity 0 when it
// blocks on a barrier).
func NewLocality(nworkers int) *Locality {
	if nworkers < 1 {
		nworkers = 1
	}
	return &Locality{own: make([]queue, nworkers)}
}

// Push implements Policy.
func (s *Locality) Push(n *graph.Node, releasedBy int) {
	switch {
	case n.Priority:
		// High-priority tasks are scheduled as soon as possible
		// independently of any locality consideration (paper §III).
		s.high.pushBack(n)
		s.pushHigh.Add(1)
	case releasedBy >= 0 && releasedBy < len(s.own):
		// The releasing worker just produced one of this task's inputs;
		// keep it local so the data is reused while hot.
		s.own[releasedBy].pushBack(n)
		s.pushOwn.Add(1)
	default:
		// Ready at submission: the main list is the distribution point
		// for unexplored regions of the graph.
		s.main.pushBack(n)
		s.pushMain.Add(1)
	}
}

// TryNext implements the lookup order of paper §III for worker self.
func (s *Locality) TryNext(self int) *graph.Node {
	if n := s.high.popFront(); n != nil {
		s.popHigh.Add(1)
		return n
	}
	if self >= 0 && self < len(s.own) {
		if n := s.own[self].popBack(); n != nil { // own list in LIFO order
			s.popOwn.Add(1)
			return n
		}
	}
	if n := s.main.popFront(); n != nil { // main list in FIFO order
		s.popMain.Add(1)
		return n
	}
	// Steal from other threads in creation order starting from the next
	// one, FIFO, so the victim keeps the tasks whose data is hottest.
	if self < 0 {
		self = 0
	}
	for i := 1; i < len(s.own); i++ {
		victim := (self + i) % len(s.own)
		if n := s.own[victim].popFront(); n != nil {
			s.steals.Add(1)
			return n
		}
	}
	return nil
}

// Len implements Policy.
func (s *Locality) Len() int {
	total := s.high.size() + s.main.size()
	for i := range s.own {
		total += s.own[i].size()
	}
	return total
}

// Stats implements Policy.
func (s *Locality) Stats() Stats {
	return Stats{
		PushHigh: s.pushHigh.Load(),
		PushOwn:  s.pushOwn.Load(),
		PushMain: s.pushMain.Load(),
		PopHigh:  s.popHigh.Load(),
		PopOwn:   s.popOwn.Load(),
		PopMain:  s.popMain.Load(),
		Steals:   s.steals.Load(),
	}
}

// GlobalFIFO is the ablation policy: one central FIFO ready queue, no
// locality lists, no stealing — the structure SuperMatrix used (paper
// §VII.C).  High-priority tasks still jump the line.
type GlobalFIFO struct {
	high queue
	main queue

	pushHigh, pushMain atomic.Int64
	popHigh, popMain   atomic.Int64
}

// NewGlobalFIFO creates the central-queue ablation policy.
func NewGlobalFIFO() *GlobalFIFO { return &GlobalFIFO{} }

// Push implements Policy.
func (s *GlobalFIFO) Push(n *graph.Node, releasedBy int) {
	if n.Priority {
		s.high.pushBack(n)
		s.pushHigh.Add(1)
		return
	}
	s.main.pushBack(n)
	s.pushMain.Add(1)
}

// TryNext implements Policy.
func (s *GlobalFIFO) TryNext(self int) *graph.Node {
	if n := s.high.popFront(); n != nil {
		s.popHigh.Add(1)
		return n
	}
	if n := s.main.popFront(); n != nil {
		s.popMain.Add(1)
		return n
	}
	return nil
}

// Len implements Policy.
func (s *GlobalFIFO) Len() int { return s.high.size() + s.main.size() }

// Stats implements Policy.
func (s *GlobalFIFO) Stats() Stats {
	return Stats{
		PushHigh: s.pushHigh.Load(),
		PushMain: s.pushMain.Load(),
		PopHigh:  s.popHigh.Load(),
		PopMain:  s.popMain.Load(),
	}
}

// Scheduler couples a Policy with sleep/wake machinery so idle workers
// park instead of spinning.
type Scheduler struct {
	Policy

	mu      sync.Mutex
	cond    *sync.Cond
	version uint64
	closed  bool
	// sleepers counts workers parked (or about to park) in Get; Push
	// skips the lock and broadcast entirely while it is zero, the common
	// case when the machine is saturated with ready tasks.
	sleepers atomic.Int64
}

// NewScheduler wraps a policy with parking support.
func NewScheduler(p Policy) *Scheduler {
	s := &Scheduler{Policy: p}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Push queues a ready task and wakes a parked worker.  While no worker
// is parked, the wakeup path is a single atomic load.
func (s *Scheduler) Push(n *graph.Node, releasedBy int) {
	s.Policy.Push(n, releasedBy)
	if s.sleepers.Load() == 0 {
		return
	}
	s.mu.Lock()
	s.version++
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Get returns the next task for worker self, parking until one arrives.
// It returns nil when cancel() reports true (checked whenever the worker
// is about to park or is woken) or after Close.
func (s *Scheduler) Get(self int, cancel func() bool) *graph.Node {
	for {
		if n := s.TryNext(self); n != nil {
			return n
		}
		s.mu.Lock()
		v := s.version
		s.mu.Unlock()
		// Declare the sleeper before the final recheck: a Push after the
		// recheck is then guaranteed to see sleepers > 0 and bump the
		// version, so no wakeup is lost.
		s.sleepers.Add(1)
		if n := s.TryNext(self); n != nil {
			s.sleepers.Add(-1)
			return n
		}
		if cancel != nil && cancel() {
			s.sleepers.Add(-1)
			return nil
		}
		s.mu.Lock()
		for s.version == v && !s.closed {
			s.cond.Wait()
		}
		closed := s.closed
		s.mu.Unlock()
		s.sleepers.Add(-1)
		if closed {
			// Drain whatever remains before giving up.
			if n := s.TryNext(self); n != nil {
				return n
			}
			return nil
		}
	}
}

// Kick wakes all parked workers so they re-evaluate their cancel
// conditions (used when a barrier is satisfied).
func (s *Scheduler) Kick() {
	s.mu.Lock()
	s.version++
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Close wakes everyone and makes subsequent Gets return once the queues
// drain.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}
