package sched

import (
	"sync/atomic"

	"repro/internal/chaos"
	"repro/internal/graph"
	"repro/internal/topo"
)

// Stats aggregates scheduler activity, mostly so tests and ablation
// benchmarks can verify the locality policy is actually exercised.
type Stats struct {
	// PushHigh counts tasks queued on the high-priority list.
	PushHigh int64
	// PushOwn counts tasks queued directly on the releasing worker's deque.
	PushOwn int64
	// PushMain counts tasks queued on the shared injector (ready at
	// submission, or spilled from a full worker deque).
	PushMain int64
	// PopHigh, PopOwn, PopMain count where workers found their tasks.
	PopHigh, PopOwn, PopMain int64
	// Steals counts tasks taken from another worker's deque.
	Steals int64
	// StealBatches counts steal operations (each moves up to half the
	// victim's deque, so Steals/StealBatches is the mean batch size).
	StealBatches int64
	// LocalSteals and RemoteSteals split Steals by topology distance:
	// tasks taken from a victim in the thief's own topology group vs a
	// remote group.  Both stay zero on a flat (topology-less) pool,
	// where no distance exists to attribute.
	LocalSteals, RemoteSteals int64
	// Spills counts tasks that overflowed a bounded worker deque onto the
	// injector.
	Spills int64
	// AffinityPushes counts ready-at-submission tasks placed on the
	// deque of the worker that last wrote one of their operands (the
	// locality layer's affinity hints) instead of the shared injector.
	AffinityPushes int64
	// AffinityMisses counts affinity-hinted tasks that fell back to the
	// injector because the hinted deque was full, or — on an elastic
	// pool — because the hinted worker retired with no active worker
	// left in its topology group.
	AffinityMisses int64
	// ChainHits counts successors a completing worker ran inline
	// (successor chaining), bypassing the queues and wake protocol
	// entirely.  Tracked by the runtime, not the policy: a chained task
	// never enters a queue.
	ChainHits int64
	// Parks and Unparks count workers going to sleep and being woken.
	// They are tracked by the Scheduler wrapper, not the policy.
	Parks, Unparks int64
}

// Policy decides where ready tasks queue and where a worker looks next.
// Implementations must be safe for concurrent use.
type Policy interface {
	// Push queues a ready task.  releasedBy is the worker whose task
	// completion made it ready, or graph.MainThread if it was ready at
	// submission.  The return value reports whether a sleeping worker
	// should be woken for the task: false means the task landed alone on
	// the releasing worker's own deque, where that worker — by the
	// single-submitter runtime's invariant the very goroutine making this
	// call — will pop it on its next lookup, so waking a thief would only
	// migrate the task away from its hot data (and, on a saturated
	// machine, pay a context switch per task).
	Push(n *graph.Node, releasedBy int) (wake bool)
	// TryNext returns a task for worker self, or nil if none is
	// available right now.
	TryNext(self int) *graph.Node
	// Len returns the total number of queued tasks (approximate under
	// concurrency).
	Len() int
	// Stats returns a snapshot of the policy's counters.
	Stats() Stats
}

// Locality is the scheduling policy of paper §III, rebuilt for multi-core
// throughput: a high-priority list, one *bounded* deque per worker fed by
// dependency-releasing completions (consumed LIFO by the owner), a shared
// injector queue for tasks ready at submission (and for deque overflow),
// and steal-half work stealing in creation order — a thief takes the
// oldest half of the victim's deque in one lock acquisition instead of
// bouncing on the victim once per task.
type Locality struct {
	high   queue
	inject queue
	deques []deque
	// stealBuf is per-worker scratch for grabHalf, sized so a steal can
	// always move a full half-deque without allocating.
	stealBuf [][]*graph.Node
	// helpers is the number of leading worker identities that belong to
	// submitting threads (one per context on a shared pool; identity 0,
	// the main thread, on a private runtime).  Helpers are optional
	// executors — they may stop helping and go back to submitting at any
	// moment — so their self-pushes never elide the wake and their
	// steals stay polite (one task, never a victim's last).
	helpers int

	// order, when non-nil, replaces the flat creation-order victim scan
	// with a per-worker topology-aware one: order[self] lists victims
	// near-first, and the first near[self] entries are same-group.  Both
	// are precomputed at construction (topology is immutable), so the
	// steal loop pays only a slice walk.  nil means the flat machine —
	// the scan is byte-identical to the pre-topology scheduler.
	order [][]int
	near  []int
	topo  *topo.Topology
	// active, when non-nil, is the elastic pool's live-worker set.
	// Affinity hints to a retired worker are redirected to an active
	// worker in the hinted worker's topology group (or dropped to the
	// injector) so tasks never target a deque nobody will pop.  nil
	// means every worker is permanently active (a fixed-size pool).
	active *ActiveSet

	pushHigh, pushOwn, pushMain    atomic.Int64
	popHigh, popOwn, popMain       atomic.Int64
	steals, stealBatches           atomic.Int64
	localSteals, remoteSteals      atomic.Int64
	spills                         atomic.Int64
	affinityPushes, affinityMisses atomic.Int64
	// highLen mirrors high's length so the wake-elision check on the
	// self-push fast path costs one atomic load, not a queue lock.
	highLen atomic.Int64
}

// HighPending reports whether high-priority work is queued.  The
// runtime's successor chaining checks it so an inline chain never makes
// a worker skip over a waiting high-priority task.
func (s *Locality) HighPending() bool { return s.highLen.Load() > 0 }

// NewLocality creates the paper's scheduler for nworkers workers
// (including the main thread, which participates with identity 0 when it
// blocks on a barrier).
func NewLocality(nworkers int) *Locality {
	return newLocalityCap(nworkers, defaultDequeCap)
}

// NewLocalityShared creates the policy for a shared worker pool with
// nslots total worker identities, of which the first helpers are
// context submitter slots (see Locality.helpers).
func NewLocalityShared(nslots, helpers int) *Locality {
	if helpers < 1 {
		helpers = 1
	}
	return newLocalityFull(nslots, helpers, defaultDequeCap)
}

// NewLocalitySharedElastic is NewLocalityShared for an elastic,
// topology-aware pool: t (may be nil — flat machine) orders steal
// victims near-first, and active (may be nil — all workers live) guards
// affinity hints against retired workers.  With both nil the policy is
// identical to NewLocalityShared.
func NewLocalitySharedElastic(nslots, helpers int, t *topo.Topology, active *ActiveSet) *Locality {
	s := NewLocalityShared(nslots, helpers)
	s.active = active
	if t != nil {
		s.topo = t
		s.order = make([][]int, nslots)
		s.near = make([]int, nslots)
		for self := 0; self < nslots; self++ {
			s.order[self], s.near[self] = t.StealOrder(self, nslots)
		}
	}
	return s
}

// newLocalityCap is NewLocality with an explicit per-worker deque bound,
// so tests can force overflow with few tasks.
func newLocalityCap(nworkers, capacity int) *Locality {
	return newLocalityFull(nworkers, 1, capacity)
}

func newLocalityFull(nworkers, helpers, capacity int) *Locality {
	if nworkers < 1 {
		nworkers = 1
	}
	s := &Locality{
		deques:   make([]deque, nworkers),
		stealBuf: make([][]*graph.Node, nworkers),
		helpers:  helpers,
	}
	for i := range s.deques {
		s.deques[i].init(capacity)
		// Size the scratch from the deque's *rounded* capacity so a full
		// half-deque steal never clamps.
		s.stealBuf[i] = make([]*graph.Node, len(s.deques[i].buf)/2+1)
	}
	return s
}

// Push implements Policy.
func (s *Locality) Push(n *graph.Node, releasedBy int) bool {
	switch {
	case n.Priority:
		// High-priority tasks are scheduled as soon as possible
		// independently of any locality consideration (paper §III).
		s.high.pushBack(n)
		s.highLen.Add(1)
		s.pushHigh.Add(1)
	case releasedBy >= 0 && releasedBy < len(s.deques):
		// The releasing worker just produced one of this task's inputs;
		// keep it local so the data is reused while hot.  A full deque
		// spills to the injector, keeping per-worker memory bounded.
		if size, ok := s.deques[releasedBy].pushBack(n); ok {
			s.pushOwn.Add(1)
			// A lone task on a dedicated worker's own deque needs no
			// wakeup: the worker is the caller and pops it next.  The
			// helper slots (submitting threads) are exempt — they may
			// stop helping and go back to submitting, so their deques
			// need a thief.  So is a push while high-priority work is
			// pending: the caller's next lookup takes the high task
			// first, and the lone successor would strand behind it with
			// no wake.
			return releasedBy < s.helpers || size > 1 || s.highLen.Load() > 0
		}
		s.inject.pushBack(n)
		s.spills.Add(1)
		s.pushMain.Add(1)
	default:
		// Ready at submission.  With an affinity hint — the tracker saw
		// this task's operands last written by a worker that has already
		// completed — the task goes to that worker's deque, where the
		// data is plausibly still cache-hot (paper §III's locality lists,
		// rebuilt on the stealing substrate: the task stays stealable if
		// the hinted worker is busy).  Hints to helper slots are honored
		// only when the pool has no dedicated workers (a Workers: 1
		// runtime, where the submitter is the only executor): otherwise
		// the task would sit in a deque no dedicated worker owns and
		// cost a forced steal instead of a direct injector pop.
		// Unhinted tasks take the injector, the distribution point for
		// unexplored regions of the graph.
		if h := n.Affinity(); h >= 0 && h < len(s.deques) &&
			(h >= s.helpers || len(s.deques) == s.helpers) {
			// On an elastic pool the hinted worker may have retired since
			// it wrote the operand; redirect the hint to an active worker
			// in its topology group — the data plausibly lives in that
			// group's shared cache — or give up to the injector.
			if h = s.redirect(h); h >= 0 {
				if _, ok := s.deques[h].pushBack(n); ok {
					s.affinityPushes.Add(1)
					return true
				}
			}
			s.affinityMisses.Add(1)
		}
		s.inject.pushBack(n)
		s.pushMain.Add(1)
	}
	return true
}

// redirect resolves an affinity hint against the elastic pool's live
// worker set: the hint itself while the hinted worker is active (always,
// on a fixed pool), otherwise an active dedicated worker from the hinted
// worker's topology group, otherwise -1 (no useful target — inject).
func (s *Locality) redirect(h int) int {
	if s.active.Active(h) {
		return h
	}
	if s.topo != nil {
		for _, w := range s.topo.Group(s.topo.GroupOf(h)) {
			if w != h && w >= s.helpers && w < len(s.deques) && s.active.Active(w) {
				return w
			}
		}
	}
	return -1
}

// TryNext implements the lookup order of paper §III for worker self:
// high-priority list, own deque (LIFO), injector (FIFO), then steal half
// of another worker's deque in creation order starting from the next one.
func (s *Locality) TryNext(self int) *graph.Node {
	if n := s.high.popFront(); n != nil {
		s.highLen.Add(-1)
		s.popHigh.Add(1)
		return n
	}
	if self < 0 || self >= len(s.deques) {
		self = 0
	}
	if n := s.deques[self].popBack(); n != nil {
		s.popOwn.Add(1)
		return n
	}
	if n := s.inject.popFront(); n != nil { // injector in FIFO order
		s.popMain.Add(1)
		return n
	}
	// Steal from other workers in creation order starting from the next
	// one, FIFO, so the victim keeps the tasks whose data is hottest.
	//
	// Helper slots (submitting threads) steal one task per steal: the
	// remainder of a steal batch bypasses the wake protocol, which is
	// safe for a dedicated worker (it keeps polling until the deque
	// drains) but not for a helper, which may stop helping and go back
	// to submitting while every worker sleeps.
	//
	// On a private runtime (helpers == 1) the main thread additionally
	// never takes the *last* queued task of a dedicated worker's deque:
	// only a worker pushes to its own deque, so the owner is awake and
	// about to pop it, and the main thread taking it would only migrate
	// a dependency chain away from its hot cache.  On a shared pool that
	// courtesy is dropped — the owner may be awake but serving another
	// tenant's task for arbitrarily long, and a barrier-blocked
	// submitter restricted to this context must be able to take its own
	// graph's final task rather than wait out a neighbour's task body.
	minSize := 1
	buf := s.stealBuf[self]
	if self < s.helpers {
		buf = buf[:1]
		if s.helpers == 1 {
			minSize = 2
		}
	}
	// Fault-injection point: widen the window between "own queues are
	// empty" and the first victim probe, the classic lost-wake race.
	chaos.StealDelay(self)
	if s.order != nil {
		// Topology-aware scan: same-group victims first (their deques hold
		// tasks whose data plausibly sits in the shared cache next door),
		// remote groups only when the whole neighbourhood is dry.
		near := s.near[self]
		for i, victim := range s.order[self] {
			k := s.deques[victim].grabHalf(buf, minSize)
			if k == 0 {
				continue
			}
			if i < near {
				s.localSteals.Add(int64(k))
			} else {
				s.remoteSteals.Add(int64(k))
			}
			return s.finishSteal(self, buf, k)
		}
		return nil
	}
	for i := 1; i < len(s.deques); i++ {
		victim := (self + i) % len(s.deques)
		k := s.deques[victim].grabHalf(buf, minSize)
		if k == 0 {
			continue
		}
		return s.finishSteal(self, buf, k)
	}
	return nil
}

// finishSteal books a successful grabHalf of k tasks and returns the
// one to run.  The remainder goes on our own deque, pushed newest-first
// so the owner's LIFO pops replay them oldest-first (the FIFO order the
// steal promised).  Our deque is all-but-empty here, but a shrunken
// test capacity can still overflow — spill like Push does.
func (s *Locality) finishSteal(self int, buf []*graph.Node, k int) *graph.Node {
	s.steals.Add(int64(k))
	s.stealBatches.Add(1)
	n := buf[0]
	for j := k - 1; j >= 1; j-- {
		if _, ok := s.deques[self].pushBack(buf[j]); !ok {
			s.inject.pushBack(buf[j])
			s.spills.Add(1)
		}
		buf[j] = nil
	}
	buf[0] = nil
	return n
}

// Len implements Policy.
func (s *Locality) Len() int {
	total := s.high.size() + s.inject.size()
	for i := range s.deques {
		total += s.deques[i].size()
	}
	return total
}

// Stats implements Policy.
func (s *Locality) Stats() Stats {
	return Stats{
		PushHigh:       s.pushHigh.Load(),
		PushOwn:        s.pushOwn.Load(),
		PushMain:       s.pushMain.Load(),
		PopHigh:        s.popHigh.Load(),
		PopOwn:         s.popOwn.Load(),
		PopMain:        s.popMain.Load(),
		Steals:         s.steals.Load(),
		StealBatches:   s.stealBatches.Load(),
		LocalSteals:    s.localSteals.Load(),
		RemoteSteals:   s.remoteSteals.Load(),
		Spills:         s.spills.Load(),
		AffinityPushes: s.affinityPushes.Load(),
		AffinityMisses: s.affinityMisses.Load(),
	}
}

// GlobalFIFO is the ablation policy: one central FIFO ready queue, no
// locality lists, no stealing — the structure SuperMatrix used (paper
// §VII.C).  High-priority tasks still jump the line.
type GlobalFIFO struct {
	high queue
	main queue

	pushHigh, pushMain atomic.Int64
	popHigh, popMain   atomic.Int64
}

// NewGlobalFIFO creates the central-queue ablation policy.
func NewGlobalFIFO() *GlobalFIFO { return &GlobalFIFO{} }

// HighPending reports whether high-priority work is queued, so
// successor chaining yields to it under this policy too.
func (s *GlobalFIFO) HighPending() bool { return s.high.size() > 0 }

// Push implements Policy.
func (s *GlobalFIFO) Push(n *graph.Node, releasedBy int) bool {
	if n.Priority {
		s.high.pushBack(n)
		s.pushHigh.Add(1)
		return true
	}
	s.main.pushBack(n)
	s.pushMain.Add(1)
	return true
}

// TryNext implements Policy.
func (s *GlobalFIFO) TryNext(self int) *graph.Node {
	if n := s.high.popFront(); n != nil {
		s.popHigh.Add(1)
		return n
	}
	if n := s.main.popFront(); n != nil {
		s.popMain.Add(1)
		return n
	}
	return nil
}

// Len implements Policy.
func (s *GlobalFIFO) Len() int { return s.high.size() + s.main.size() }

// Stats implements Policy.
func (s *GlobalFIFO) Stats() Stats {
	return Stats{
		PushHigh: s.pushHigh.Load(),
		PushMain: s.pushMain.Load(),
		PopHigh:  s.popHigh.Load(),
		PopMain:  s.popMain.Load(),
	}
}

// Scheduler couples a single Policy with the TokenMux parking protocol:
// the single-tenant view of the shared-pool dispatch machinery, kept as
// the package's reference harness (and exercised hard by the tests in
// this package).  A private core.Runtime is exactly this shape — one
// pool, one client — just built from the Pool/Context layer above.
type Scheduler struct {
	mux *TokenMux
	c   *Client
}

// NewScheduler wraps a policy with parking support for nworkers workers
// (worker identities 0..nworkers-1; identity 0 is the main thread when
// it helps).
func NewScheduler(p Policy, nworkers int) *Scheduler {
	m := NewTokenMux(nworkers)
	return &Scheduler{mux: m, c: m.Attach(p, 0)}
}

// Push queues a ready task and unparks one idle worker when the policy
// asks for one.  While no worker is parked, the wakeup path is a single
// atomic load.
func (s *Scheduler) Push(n *graph.Node, releasedBy int) bool {
	s.mux.Push(s.c, n, releasedBy)
	return true
}

// TryNext returns a task for worker self without parking, or nil.
func (s *Scheduler) TryNext(self int) *graph.Node {
	if self < 0 || self >= len(s.mux.cursor) {
		self = 0
	}
	return s.mux.tryNext(self, nil)
}

// Len returns the number of queued tasks.
func (s *Scheduler) Len() int { return s.c.policy.Len() }

// Get returns the next task for worker self, parking until one arrives.
// It returns nil when cancel() reports true (checked whenever the worker
// is about to park or is woken) or after Close.
func (s *Scheduler) Get(self int, cancel func() bool) *graph.Node {
	return s.mux.Get(self, nil, cancel)
}

// Wake delivers a targeted wakeup to worker w so it re-evaluates its
// cancel condition.
func (s *Scheduler) Wake(w int) { s.mux.Wake(w) }

// Kick wakes all parked workers so they re-evaluate their cancel
// conditions.
func (s *Scheduler) Kick() { s.mux.Kick() }

// Close wakes everyone and makes subsequent Gets return once the queues
// drain.
func (s *Scheduler) Close() { s.mux.Close() }

// Stats returns the policy's snapshot plus the mux's parking counters.
func (s *Scheduler) Stats() Stats {
	st := s.c.policy.Stats()
	ms := s.mux.Stats()
	st.Parks, st.Unparks = ms.Parks, ms.Unparks
	return st
}
