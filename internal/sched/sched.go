package sched

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Stats aggregates scheduler activity, mostly so tests and ablation
// benchmarks can verify the locality policy is actually exercised.
type Stats struct {
	// PushHigh counts tasks queued on the high-priority list.
	PushHigh int64
	// PushOwn counts tasks queued directly on the releasing worker's deque.
	PushOwn int64
	// PushMain counts tasks queued on the shared injector (ready at
	// submission, or spilled from a full worker deque).
	PushMain int64
	// PopHigh, PopOwn, PopMain count where workers found their tasks.
	PopHigh, PopOwn, PopMain int64
	// Steals counts tasks taken from another worker's deque.
	Steals int64
	// StealBatches counts steal operations (each moves up to half the
	// victim's deque, so Steals/StealBatches is the mean batch size).
	StealBatches int64
	// Spills counts tasks that overflowed a bounded worker deque onto the
	// injector.
	Spills int64
	// Parks and Unparks count workers going to sleep and being woken.
	// They are tracked by the Scheduler wrapper, not the policy.
	Parks, Unparks int64
}

// Policy decides where ready tasks queue and where a worker looks next.
// Implementations must be safe for concurrent use.
type Policy interface {
	// Push queues a ready task.  releasedBy is the worker whose task
	// completion made it ready, or graph.MainThread if it was ready at
	// submission.  The return value reports whether a sleeping worker
	// should be woken for the task: false means the task landed alone on
	// the releasing worker's own deque, where that worker — by the
	// single-submitter runtime's invariant the very goroutine making this
	// call — will pop it on its next lookup, so waking a thief would only
	// migrate the task away from its hot data (and, on a saturated
	// machine, pay a context switch per task).
	Push(n *graph.Node, releasedBy int) (wake bool)
	// TryNext returns a task for worker self, or nil if none is
	// available right now.
	TryNext(self int) *graph.Node
	// Len returns the total number of queued tasks (approximate under
	// concurrency).
	Len() int
	// Stats returns a snapshot of the policy's counters.
	Stats() Stats
}

// Locality is the scheduling policy of paper §III, rebuilt for multi-core
// throughput: a high-priority list, one *bounded* deque per worker fed by
// dependency-releasing completions (consumed LIFO by the owner), a shared
// injector queue for tasks ready at submission (and for deque overflow),
// and steal-half work stealing in creation order — a thief takes the
// oldest half of the victim's deque in one lock acquisition instead of
// bouncing on the victim once per task.
type Locality struct {
	high   queue
	inject queue
	deques []deque
	// stealBuf is per-worker scratch for grabHalf, sized so a steal can
	// always move a full half-deque without allocating.
	stealBuf [][]*graph.Node

	pushHigh, pushOwn, pushMain atomic.Int64
	popHigh, popOwn, popMain    atomic.Int64
	steals, stealBatches        atomic.Int64
	spills                      atomic.Int64
	// highLen mirrors high's length so the wake-elision check on the
	// self-push fast path costs one atomic load, not a queue lock.
	highLen atomic.Int64
}

// NewLocality creates the paper's scheduler for nworkers workers
// (including the main thread, which participates with identity 0 when it
// blocks on a barrier).
func NewLocality(nworkers int) *Locality {
	return newLocalityCap(nworkers, defaultDequeCap)
}

// newLocalityCap is NewLocality with an explicit per-worker deque bound,
// so tests can force overflow with few tasks.
func newLocalityCap(nworkers, capacity int) *Locality {
	if nworkers < 1 {
		nworkers = 1
	}
	s := &Locality{
		deques:   make([]deque, nworkers),
		stealBuf: make([][]*graph.Node, nworkers),
	}
	for i := range s.deques {
		s.deques[i].init(capacity)
		// Size the scratch from the deque's *rounded* capacity so a full
		// half-deque steal never clamps.
		s.stealBuf[i] = make([]*graph.Node, len(s.deques[i].buf)/2+1)
	}
	return s
}

// Push implements Policy.
func (s *Locality) Push(n *graph.Node, releasedBy int) bool {
	switch {
	case n.Priority:
		// High-priority tasks are scheduled as soon as possible
		// independently of any locality consideration (paper §III).
		s.high.pushBack(n)
		s.highLen.Add(1)
		s.pushHigh.Add(1)
	case releasedBy >= 0 && releasedBy < len(s.deques):
		// The releasing worker just produced one of this task's inputs;
		// keep it local so the data is reused while hot.  A full deque
		// spills to the injector, keeping per-worker memory bounded.
		if size, ok := s.deques[releasedBy].pushBack(n); ok {
			s.pushOwn.Add(1)
			// A lone task on a dedicated worker's own deque needs no
			// wakeup: the worker is the caller and pops it next.  The
			// main thread (identity 0) is exempt — it may stop helping
			// and go back to submitting, so its deque needs a thief.
			// So is a push while high-priority work is pending: the
			// caller's next lookup takes the high task first, and the
			// lone successor would strand behind it with no wake.
			return releasedBy == 0 || size > 1 || s.highLen.Load() > 0
		}
		s.inject.pushBack(n)
		s.spills.Add(1)
		s.pushMain.Add(1)
	default:
		// Ready at submission: the injector is the distribution point
		// for unexplored regions of the graph.
		s.inject.pushBack(n)
		s.pushMain.Add(1)
	}
	return true
}

// TryNext implements the lookup order of paper §III for worker self:
// high-priority list, own deque (LIFO), injector (FIFO), then steal half
// of another worker's deque in creation order starting from the next one.
func (s *Locality) TryNext(self int) *graph.Node {
	if n := s.high.popFront(); n != nil {
		s.highLen.Add(-1)
		s.popHigh.Add(1)
		return n
	}
	if self < 0 || self >= len(s.deques) {
		self = 0
	}
	if n := s.deques[self].popBack(); n != nil {
		s.popOwn.Add(1)
		return n
	}
	if n := s.inject.popFront(); n != nil { // injector in FIFO order
		s.popMain.Add(1)
		return n
	}
	// Steal from other workers in creation order starting from the next
	// one, FIFO, so the victim keeps the tasks whose data is hottest.
	//
	// The main thread (identity 0) is a polite thief: it never takes the
	// last queued task of a dedicated worker's deque, and it takes only
	// one task per steal.  Only a worker itself pushes to its own deque,
	// so a worker can never park with work queued — the owner is awake
	// and about to pop that task, and the main thread (an optional
	// helper) taking it would only migrate a dependency chain away from
	// its hot cache one task at a time.  Capping the main thread's steal
	// at one also keeps it from parking a batch on its own deque: the
	// remainder of a steal bypasses the wake protocol, which is safe for
	// a dedicated worker (it keeps polling until the deque drains) but
	// not for the main thread, which may stop helping and go back to
	// submitting while every worker sleeps.
	minSize := 1
	buf := s.stealBuf[self]
	if self == 0 {
		minSize = 2
		buf = buf[:1]
	}
	for i := 1; i < len(s.deques); i++ {
		victim := (self + i) % len(s.deques)
		k := s.deques[victim].grabHalf(buf, minSize)
		if k == 0 {
			continue
		}
		s.steals.Add(int64(k))
		s.stealBatches.Add(1)
		n := buf[0]
		// Keep the remainder on our own deque, pushed newest-first so the
		// owner's LIFO pops replay them oldest-first (the FIFO order the
		// steal promised).  Our deque is all-but-empty here, but a shrunken
		// test capacity can still overflow — spill like Push does.
		for j := k - 1; j >= 1; j-- {
			if _, ok := s.deques[self].pushBack(buf[j]); !ok {
				s.inject.pushBack(buf[j])
				s.spills.Add(1)
			}
			buf[j] = nil
		}
		buf[0] = nil
		return n
	}
	return nil
}

// Len implements Policy.
func (s *Locality) Len() int {
	total := s.high.size() + s.inject.size()
	for i := range s.deques {
		total += s.deques[i].size()
	}
	return total
}

// Stats implements Policy.
func (s *Locality) Stats() Stats {
	return Stats{
		PushHigh:     s.pushHigh.Load(),
		PushOwn:      s.pushOwn.Load(),
		PushMain:     s.pushMain.Load(),
		PopHigh:      s.popHigh.Load(),
		PopOwn:       s.popOwn.Load(),
		PopMain:      s.popMain.Load(),
		Steals:       s.steals.Load(),
		StealBatches: s.stealBatches.Load(),
		Spills:       s.spills.Load(),
	}
}

// GlobalFIFO is the ablation policy: one central FIFO ready queue, no
// locality lists, no stealing — the structure SuperMatrix used (paper
// §VII.C).  High-priority tasks still jump the line.
type GlobalFIFO struct {
	high queue
	main queue

	pushHigh, pushMain atomic.Int64
	popHigh, popMain   atomic.Int64
}

// NewGlobalFIFO creates the central-queue ablation policy.
func NewGlobalFIFO() *GlobalFIFO { return &GlobalFIFO{} }

// Push implements Policy.
func (s *GlobalFIFO) Push(n *graph.Node, releasedBy int) bool {
	if n.Priority {
		s.high.pushBack(n)
		s.pushHigh.Add(1)
		return true
	}
	s.main.pushBack(n)
	s.pushMain.Add(1)
	return true
}

// TryNext implements Policy.
func (s *GlobalFIFO) TryNext(self int) *graph.Node {
	if n := s.high.popFront(); n != nil {
		s.popHigh.Add(1)
		return n
	}
	if n := s.main.popFront(); n != nil {
		s.popMain.Add(1)
		return n
	}
	return nil
}

// Len implements Policy.
func (s *GlobalFIFO) Len() int { return s.high.size() + s.main.size() }

// Stats implements Policy.
func (s *GlobalFIFO) Stats() Stats {
	return Stats{
		PushHigh: s.pushHigh.Load(),
		PushMain: s.pushMain.Load(),
		PopHigh:  s.popHigh.Load(),
		PopMain:  s.popMain.Load(),
	}
}

// Dispatcher couples a Policy with sleep/wake machinery: pushes hand
// ready tasks to parked workers, Get blocks until work (or cancellation)
// arrives.  Two implementations exist: Scheduler, the per-worker parking
// protocol, and CondvarScheduler, the seed's global condvar kept as the
// ablation baseline.
type Dispatcher interface {
	Policy
	// Get returns the next task for worker self, parking until one
	// arrives; nil when cancel() reports true or after Close.
	Get(self int, cancel func() bool) *graph.Node
	// Wake nudges worker w to re-evaluate its cancel condition.
	Wake(w int)
	// Kick wakes every parked worker.
	Kick()
	// Close wakes everyone; subsequent Gets return nil once drained.
	Close()
}

// Scheduler couples a Policy with per-worker parking so idle workers
// sleep instead of spinning.
//
// The previous design used one global condvar and broadcast on every
// push while anyone slept — at high submission rates with short tasks
// that is a thundering herd: every push wakes every parked worker, all
// but one of which find nothing and go back to sleep.  Here each worker
// has its own one-token parker (a buffered channel) and an idle stack;
// a push pops exactly one idle worker and hands it exactly one token.
type Scheduler struct {
	Policy

	// parker[w] holds at most one wake token for worker w.
	parker []chan struct{}

	mu   sync.Mutex
	idle []int // stack of worker ids currently announced idle
	// inIdle[w] mirrors membership of the idle stack.  It is written
	// under mu but readable lock-free: the invariant-guard in Push needs
	// a racy "is that worker parked?" probe on the fast path.
	inIdle []atomic.Bool
	nidle  atomic.Int32

	closed         atomic.Bool
	parks, unparks atomic.Int64
}

// NewScheduler wraps a policy with parking support for nworkers workers
// (worker identities 0..nworkers-1; identity 0 is the main thread when
// it helps).
func NewScheduler(p Policy, nworkers int) *Scheduler {
	if nworkers < 1 {
		nworkers = 1
	}
	s := &Scheduler{
		Policy: p,
		parker: make([]chan struct{}, nworkers),
		inIdle: make([]atomic.Bool, nworkers),
		idle:   make([]int, 0, nworkers),
	}
	for i := range s.parker {
		s.parker[i] = make(chan struct{}, 1)
	}
	return s
}

// Push queues a ready task and unparks one idle worker when the policy
// asks for one.  While no worker is parked, the wakeup path is a single
// atomic load.
func (s *Scheduler) Push(n *graph.Node, releasedBy int) bool {
	if s.Policy.Push(n, releasedBy) {
		s.unparkOne()
		return true
	}
	// Elided wake: the contract says the releasing worker is awake and
	// pops the task next.  Guard the invariant anyway — if that worker
	// is in fact announced idle (a push from a goroutine that is not the
	// owner, violating the contract), wake it rather than strand the
	// task.  The probe is race-free where it matters: a hang requires
	// the push to land after the owner's post-announce recheck, and that
	// recheck's deque lock orders the announce's inIdle store before
	// this load.
	if releasedBy >= 0 && releasedBy < len(s.inIdle) && s.inIdle[releasedBy].Load() {
		s.Wake(releasedBy)
	}
	return true
}

// unparkOne hands a wake token to one idle worker, if any is announced.
func (s *Scheduler) unparkOne() {
	if s.nidle.Load() == 0 {
		return
	}
	s.mu.Lock()
	if len(s.idle) == 0 {
		s.mu.Unlock()
		return
	}
	w := s.idle[len(s.idle)-1]
	s.idle = s.idle[:len(s.idle)-1]
	s.inIdle[w].Store(false)
	s.nidle.Add(-1)
	s.mu.Unlock()
	s.token(w)
	s.unparks.Add(1)
}

// token delivers worker w's wake token; the buffer of one absorbs
// duplicates.
func (s *Scheduler) token(w int) {
	select {
	case s.parker[w] <- struct{}{}:
	default:
	}
}

// announce puts worker self on the idle stack (idempotent).
func (s *Scheduler) announce(self int) {
	s.mu.Lock()
	if !s.inIdle[self].Load() {
		s.idle = append(s.idle, self)
		s.inIdle[self].Store(true)
		s.nidle.Add(1)
	}
	s.mu.Unlock()
}

// retire removes self from the idle stack after it found work (or is
// giving up) on its own.  If a concurrent push already popped self to
// target a wakeup at it, that wakeup is forwarded to another idle worker
// so no push's wake is silently swallowed.
func (s *Scheduler) retire(self int) {
	s.mu.Lock()
	found := false
	for i, w := range s.idle {
		if w == self {
			s.idle = append(s.idle[:i], s.idle[i+1:]...)
			s.inIdle[self].Store(false)
			s.nidle.Add(-1)
			found = true
			break
		}
	}
	next := -1
	if !found && len(s.idle) > 0 {
		next = s.idle[len(s.idle)-1]
		s.idle = s.idle[:len(s.idle)-1]
		s.inIdle[next].Store(false)
		s.nidle.Add(-1)
	}
	s.mu.Unlock()
	if next >= 0 {
		s.token(next)
		s.unparks.Add(1)
	}
}

// Get returns the next task for worker self, parking until one arrives.
// It returns nil when cancel() reports true (checked whenever the worker
// is about to park or is woken) or after Close.
func (s *Scheduler) Get(self int, cancel func() bool) *graph.Node {
	if self < 0 || self >= len(s.parker) {
		self = 0
	}
	ch := s.parker[self]
	for {
		if n := s.TryNext(self); n != nil {
			return n
		}
		// Clear any stale token from an earlier targeted wakeup we never
		// consumed, so it cannot cause an immediate spurious unpark.
		select {
		case <-ch:
		default:
		}
		// Announce before the final recheck: a Push after the recheck is
		// then guaranteed to see nidle > 0 and deliver a token, so no
		// wakeup is lost.
		s.announce(self)
		if n := s.TryNext(self); n != nil {
			s.retire(self)
			return n
		}
		if cancel != nil && cancel() {
			s.retire(self)
			return nil
		}
		if s.closed.Load() {
			s.retire(self)
			// Drain whatever remains before giving up.
			return s.TryNext(self)
		}
		s.parks.Add(1)
		<-ch
		if s.closed.Load() {
			return s.TryNext(self)
		}
		// Re-evaluate the cancel condition before looking for work: a
		// targeted Wake usually means the condition the caller blocks on
		// (barrier, graph limit) just changed, and going through TryNext
		// first would make the waking main thread steal a task it no
		// longer needs to help with.
		if cancel != nil && cancel() {
			return nil
		}
	}
}

// Wake delivers a targeted wakeup to worker w so it re-evaluates its
// cancel condition.  The runtime uses it to nudge the main thread —
// the only cancel-condition waiter — once per task completion while it
// blocks, instead of broadcasting to every parked worker.
func (s *Scheduler) Wake(w int) {
	if w < 0 || w >= len(s.parker) {
		return
	}
	s.mu.Lock()
	idle := s.inIdle[w].Load()
	if idle {
		for i, id := range s.idle {
			if id == w {
				s.idle = append(s.idle[:i], s.idle[i+1:]...)
				break
			}
		}
		s.inIdle[w].Store(false)
		s.nidle.Add(-1)
	}
	s.mu.Unlock()
	if !idle {
		// Not announced idle: the worker is either running (it will
		// re-evaluate its condition on its own before parking) or already
		// holds an in-flight token from unparkOne/Kick.  Delivering — and
		// counting — another wake would only inflate the Unparks stat.
		return
	}
	s.token(w)
	s.unparks.Add(1)
}

// Kick wakes all parked workers so they re-evaluate their cancel
// conditions (used when a barrier is satisfied).
func (s *Scheduler) Kick() {
	s.mu.Lock()
	woken := append([]int(nil), s.idle...)
	s.idle = s.idle[:0]
	for _, w := range woken {
		s.inIdle[w].Store(false)
	}
	s.nidle.Store(0)
	s.mu.Unlock()
	for _, w := range woken {
		s.token(w)
		s.unparks.Add(1)
	}
}

// Close wakes everyone and makes subsequent Gets return once the queues
// drain.
func (s *Scheduler) Close() {
	s.closed.Store(true)
	s.Kick()
}

// Stats implements Policy, adding the wrapper's parking counters to the
// policy's snapshot.
func (s *Scheduler) Stats() Stats {
	st := s.Policy.Stats()
	st.Parks = s.parks.Load()
	st.Unparks = s.unparks.Load()
	return st
}
