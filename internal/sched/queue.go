// Package sched implements the SMPSs ready-task scheduling machinery
// (paper §III), rebuilt as a work-stealing scheduler.
//
// There are two shared lists — one for high-priority tasks and an
// injector for tasks that became ready at submission time — plus one
// *bounded* deque per worker holding tasks whose last input dependency
// was removed by that worker (overflow spills to the injector).  Workers
// look for work in the order: high-priority list, own deque (LIFO),
// injector (FIFO), then steal the oldest half of another worker's deque
// in creation order starting from the next one.
//
// Consuming the own deque in LIFO order walks the graph depth-first, so a
// worker tends to run the consumer of data it just produced while that
// data is still hot in its cache.  Stealing in FIFO order takes the tasks
// that have been queued longest — the ones whose inputs are most likely
// to have been evicted from the victim's cache already — which is the
// same policy as Cilk but with a locality motivation (paper §VII.D);
// taking half the deque per steal amortizes the victim's lock across a
// batch.  Idle workers park on per-worker one-token parkers: a push wakes
// exactly one sleeper instead of broadcasting to all of them.
package sched

import (
	"sync"

	"repro/internal/graph"
)

// queue is a mutex-guarded unbounded deque of task nodes, used for the
// shared high-priority and injector lists.  The owner pops from the back
// (LIFO); thieves and FIFO consumers pop from the front.
type queue struct {
	mu    sync.Mutex
	items []*graph.Node
	head  int
}

// pushBack appends a node at the back of the deque.
func (q *queue) pushBack(n *graph.Node) {
	q.mu.Lock()
	q.items = append(q.items, n)
	q.mu.Unlock()
}

// popBack removes and returns the most recently pushed node, or nil.
func (q *queue) popBack() *graph.Node {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == len(q.items) {
		return nil
	}
	n := q.items[len(q.items)-1]
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	q.compact()
	return n
}

// popFront removes and returns the oldest node, or nil.
func (q *queue) popFront() *graph.Node {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == len(q.items) {
		return nil
	}
	n := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	q.compact()
	return n
}

// compact reclaims the dead prefix once it dominates the backing array.
// Callers hold q.mu.
func (q *queue) compact() {
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
		return
	}
	if q.head > 64 && q.head > len(q.items)/2 {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
}

// size returns the number of queued nodes.
func (q *queue) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) - q.head
}
