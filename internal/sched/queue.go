// Package sched implements the SMPSs ready-task scheduling machinery
// (paper §III).
//
// There are two global ready lists — one for high-priority tasks and one
// ("main") for normal tasks that became ready at submission time — plus
// one ready list per worker holding tasks whose last input dependency was
// removed by that worker.  Workers look for work in the order: high
// priority list, own list (LIFO), main list (FIFO), then steal from the
// other workers in creation order starting from the next one (FIFO).
//
// Consuming the own list in LIFO order walks the graph depth-first, so a
// worker tends to run the consumer of data it just produced while that
// data is still hot in its cache.  Stealing in FIFO order takes the task
// that has been queued longest — the one whose inputs are most likely to
// have been evicted from the victim's cache already — which is the same
// policy as Cilk but with a locality motivation (paper §VII.D).
package sched

import (
	"sync"

	"repro/internal/graph"
)

// queue is a mutex-guarded deque of task nodes.  The owner pops from the
// back (LIFO); thieves and FIFO consumers pop from the front.
//
// SMPSs tasks have a recommended granularity of hundreds of microseconds
// (paper §I), so a plain mutex per queue is far below the noise floor; a
// lock-free Chase–Lev deque would buy nothing here.
type queue struct {
	mu    sync.Mutex
	items []*graph.Node
	head  int
}

// pushBack appends a node at the back of the deque.
func (q *queue) pushBack(n *graph.Node) {
	q.mu.Lock()
	q.items = append(q.items, n)
	q.mu.Unlock()
}

// popBack removes and returns the most recently pushed node, or nil.
func (q *queue) popBack() *graph.Node {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == len(q.items) {
		return nil
	}
	n := q.items[len(q.items)-1]
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	q.compact()
	return n
}

// popFront removes and returns the oldest node, or nil.
func (q *queue) popFront() *graph.Node {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == len(q.items) {
		return nil
	}
	n := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	q.compact()
	return n
}

// compact reclaims the dead prefix once it dominates the backing array.
// Callers hold q.mu.
func (q *queue) compact() {
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
		return
	}
	if q.head > 64 && q.head > len(q.items)/2 {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
}

// size returns the number of queued nodes.
func (q *queue) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) - q.head
}
