package sched

import (
	"sync/atomic"

	"repro/internal/graph"
)

// ListLocality is the ready-list structure this runtime shipped with
// before the work-stealing overhaul, kept as the measured baseline for
// the scheduler ablation: unbounded mutex-guarded lists (one per worker
// plus high-priority and main), every push wakes, and thieves take one
// task per steal from the victim's front.  The Locality type replaces it
// with bounded deques, steal-half and wake elision.
type ListLocality struct {
	high queue
	main queue
	own  []queue

	pushHigh, pushOwn, pushMain atomic.Int64
	popHigh, popOwn, popMain    atomic.Int64
	steals                      atomic.Int64
}

// NewListLocality creates the legacy list-based policy for nworkers
// workers.
func NewListLocality(nworkers int) *ListLocality {
	if nworkers < 1 {
		nworkers = 1
	}
	return &ListLocality{own: make([]queue, nworkers)}
}

// HighPending reports whether high-priority work is queued, so
// successor chaining yields to it under this policy too.
func (s *ListLocality) HighPending() bool { return s.high.size() > 0 }

// Push implements Policy.
func (s *ListLocality) Push(n *graph.Node, releasedBy int) bool {
	switch {
	case n.Priority:
		s.high.pushBack(n)
		s.pushHigh.Add(1)
	case releasedBy >= 0 && releasedBy < len(s.own):
		s.own[releasedBy].pushBack(n)
		s.pushOwn.Add(1)
	default:
		s.main.pushBack(n)
		s.pushMain.Add(1)
	}
	return true
}

// TryNext implements Policy: high list, own list (LIFO), main list
// (FIFO), then steal single tasks FIFO in creation order.
func (s *ListLocality) TryNext(self int) *graph.Node {
	if n := s.high.popFront(); n != nil {
		s.popHigh.Add(1)
		return n
	}
	if self < 0 || self >= len(s.own) {
		self = 0
	}
	if n := s.own[self].popBack(); n != nil {
		s.popOwn.Add(1)
		return n
	}
	if n := s.main.popFront(); n != nil {
		s.popMain.Add(1)
		return n
	}
	for i := 1; i < len(s.own); i++ {
		victim := (self + i) % len(s.own)
		if n := s.own[victim].popFront(); n != nil {
			s.steals.Add(1)
			return n
		}
	}
	return nil
}

// Len implements Policy.
func (s *ListLocality) Len() int {
	total := s.high.size() + s.main.size()
	for i := range s.own {
		total += s.own[i].size()
	}
	return total
}

// Stats implements Policy.
func (s *ListLocality) Stats() Stats {
	return Stats{
		PushHigh: s.pushHigh.Load(),
		PushOwn:  s.pushOwn.Load(),
		PushMain: s.pushMain.Load(),
		PopHigh:  s.popHigh.Load(),
		PopOwn:   s.popOwn.Load(),
		PopMain:  s.popMain.Load(),
		Steals:   s.steals.Load(),
	}
}
