package sched

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// ListLocality is the ready-list structure this runtime shipped with
// before the work-stealing overhaul, kept as the measured baseline for
// the scheduler ablation: unbounded mutex-guarded lists (one per worker
// plus high-priority and main), every push wakes, and thieves take one
// task per steal from the victim's front.  The Locality type replaces it
// with bounded deques, steal-half and wake elision.
type ListLocality struct {
	high queue
	main queue
	own  []queue

	pushHigh, pushOwn, pushMain atomic.Int64
	popHigh, popOwn, popMain    atomic.Int64
	steals                      atomic.Int64
}

// NewListLocality creates the legacy list-based policy for nworkers
// workers.
func NewListLocality(nworkers int) *ListLocality {
	if nworkers < 1 {
		nworkers = 1
	}
	return &ListLocality{own: make([]queue, nworkers)}
}

// Push implements Policy.
func (s *ListLocality) Push(n *graph.Node, releasedBy int) bool {
	switch {
	case n.Priority:
		s.high.pushBack(n)
		s.pushHigh.Add(1)
	case releasedBy >= 0 && releasedBy < len(s.own):
		s.own[releasedBy].pushBack(n)
		s.pushOwn.Add(1)
	default:
		s.main.pushBack(n)
		s.pushMain.Add(1)
	}
	return true
}

// TryNext implements Policy: high list, own list (LIFO), main list
// (FIFO), then steal single tasks FIFO in creation order.
func (s *ListLocality) TryNext(self int) *graph.Node {
	if n := s.high.popFront(); n != nil {
		s.popHigh.Add(1)
		return n
	}
	if self < 0 || self >= len(s.own) {
		self = 0
	}
	if n := s.own[self].popBack(); n != nil {
		s.popOwn.Add(1)
		return n
	}
	if n := s.main.popFront(); n != nil {
		s.popMain.Add(1)
		return n
	}
	for i := 1; i < len(s.own); i++ {
		victim := (self + i) % len(s.own)
		if n := s.own[victim].popFront(); n != nil {
			s.steals.Add(1)
			return n
		}
	}
	return nil
}

// Len implements Policy.
func (s *ListLocality) Len() int {
	total := s.high.size() + s.main.size()
	for i := range s.own {
		total += s.own[i].size()
	}
	return total
}

// Stats implements Policy.
func (s *ListLocality) Stats() Stats {
	return Stats{
		PushHigh: s.pushHigh.Load(),
		PushOwn:  s.pushOwn.Load(),
		PushMain: s.pushMain.Load(),
		PopHigh:  s.popHigh.Load(),
		PopOwn:   s.popOwn.Load(),
		PopMain:  s.popMain.Load(),
		Steals:   s.steals.Load(),
	}
}

// CondvarScheduler is the wake machinery this runtime shipped with before
// the work-stealing overhaul, kept as the measured baseline for the
// scheduler ablation: one global mutex+condvar, and a Broadcast on every
// push while any worker sleeps.  Under a high rate of short tasks that is
// a thundering herd — each push wakes every parked worker, all but one of
// which find nothing and park again.  The Scheduler type replaces it with
// per-worker one-token parkers.
type CondvarScheduler struct {
	Policy

	mu      sync.Mutex
	cond    *sync.Cond
	version uint64
	closed  bool
	// sleepers counts workers parked (or about to park) in Get; Push
	// skips the lock and broadcast entirely while it is zero.
	sleepers atomic.Int64
}

// NewCondvarScheduler wraps a policy with the legacy global-condvar
// parking.
func NewCondvarScheduler(p Policy) *CondvarScheduler {
	s := &CondvarScheduler{Policy: p}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Push implements Dispatcher.
func (s *CondvarScheduler) Push(n *graph.Node, releasedBy int) bool {
	s.Policy.Push(n, releasedBy)
	if s.sleepers.Load() == 0 {
		return true
	}
	s.mu.Lock()
	s.version++
	s.mu.Unlock()
	s.cond.Broadcast()
	return true
}

// Get implements Dispatcher.
func (s *CondvarScheduler) Get(self int, cancel func() bool) *graph.Node {
	for {
		if n := s.TryNext(self); n != nil {
			return n
		}
		s.mu.Lock()
		v := s.version
		s.mu.Unlock()
		// Declare the sleeper before the final recheck: a Push after the
		// recheck is then guaranteed to see sleepers > 0 and bump the
		// version, so no wakeup is lost.
		s.sleepers.Add(1)
		if n := s.TryNext(self); n != nil {
			s.sleepers.Add(-1)
			return n
		}
		if cancel != nil && cancel() {
			s.sleepers.Add(-1)
			return nil
		}
		s.mu.Lock()
		for s.version == v && !s.closed {
			s.cond.Wait()
		}
		closed := s.closed
		s.mu.Unlock()
		s.sleepers.Add(-1)
		if closed {
			// Drain whatever remains before giving up.
			return s.TryNext(self)
		}
	}
}

// Wake implements Dispatcher.  The legacy design has no targeted wakeup;
// any nudge is a broadcast.
func (s *CondvarScheduler) Wake(w int) { s.Kick() }

// Kick implements Dispatcher.
func (s *CondvarScheduler) Kick() {
	s.mu.Lock()
	s.version++
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Close implements Dispatcher.
func (s *CondvarScheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}
