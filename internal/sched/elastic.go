package sched

import (
	"sync/atomic"

	"repro/internal/graph"
)

// This file is the scheduling side of pool elasticity: the live-worker
// set the affinity layer consults, per-worker queue eviction for
// retiring workers, and the load probe the pool's scaling controller
// samples.  A fixed-size pool constructs none of it (nil ActiveSet, no
// Evict calls), so the static scheduler is untouched.

// ActiveSet tracks which worker identities currently have a live
// executor behind them.  The elastic pool flips bits as workers retire
// and unretire; the locality policy reads them to keep affinity hints
// off dead deques.  A nil *ActiveSet reports every worker active — the
// fixed-size pool's behavior with zero cost.
type ActiveSet struct {
	bits []atomic.Bool
}

// NewActiveSet creates a set over nslots worker identities, all active.
func NewActiveSet(nslots int) *ActiveSet {
	s := &ActiveSet{bits: make([]atomic.Bool, nslots)}
	for i := range s.bits {
		s.bits[i].Store(true)
	}
	return s
}

// Set marks worker w active or retired.
func (s *ActiveSet) Set(w int, active bool) {
	if s != nil && w >= 0 && w < len(s.bits) {
		s.bits[w].Store(active)
	}
}

// Active reports whether worker w has a live executor.  Out-of-range
// slots and a nil set report true (conservative: never redirect).
func (s *ActiveSet) Active(w int) bool {
	if s == nil || w < 0 || w >= len(s.bits) {
		return true
	}
	return s.bits[w].Load()
}

// Count returns the number of active workers in [lo, hi).
func (s *ActiveSet) Count(lo, hi int) int {
	n := 0
	for w := lo; w < hi && w < len(s.bits); w++ {
		if s.bits[w].Load() {
			n++
		}
	}
	return n
}

// evicter is the optional Policy extension a retiring worker's eviction
// uses: spill worker w's per-worker queue back to the shared injector
// and return how many tasks moved.  Policies without per-worker queues
// need not implement it.
type evicter interface {
	Evict(w int) int
}

// Evict spills worker w's deque into the injector, preserving the FIFO
// order a thief would have seen, and returns the number of tasks moved.
// Called when worker w retires so its queued tasks reach workers that
// still poll, instead of waiting for a steal.
func (s *Locality) Evict(w int) int {
	if w < 0 || w >= len(s.deques) {
		return 0
	}
	nodes := s.deques[w].drainAll(nil)
	for _, n := range nodes {
		s.inject.pushBack(n)
	}
	return len(nodes)
}

// Evict spills worker w's legacy list into the main queue (FIFO order
// preserved) and returns the count.
func (s *ListLocality) Evict(w int) int {
	if w < 0 || w >= len(s.own) {
		return 0
	}
	moved := 0
	for {
		n := s.own[w].popFront()
		if n == nil {
			return moved
		}
		s.main.pushBack(n)
		moved++
	}
}

// Evict on the central-queue ablation policy is a no-op: there are no
// per-worker queues to strand tasks in.
func (s *GlobalFIFO) Evict(w int) int { return 0 }

// drainAll appends every queued node to dst oldest-first and empties
// the deque.
func (d *deque) drainAll(dst []*graph.Node) []*graph.Node {
	d.mu.Lock()
	for d.head != d.tail {
		dst = append(dst, d.buf[d.head&d.mask])
		d.buf[d.head&d.mask] = nil
		d.head++
	}
	d.mu.Unlock()
	return dst
}

// evict runs Evict across every attached client's policy.
func (b *muxBase) evict(w int) int {
	total := 0
	for _, c := range *b.clients.Load() {
		if ev, ok := c.policy.(evicter); ok {
			total += ev.Evict(w)
		}
	}
	return total
}

// load sums the in-flight gauges of every attached client — the queue
// depth the elastic pool's scaling controller samples.  Approximate
// under concurrency, exact at rest.
func (b *muxBase) load() int64 {
	var total int64
	for _, c := range *b.clients.Load() {
		total += c.queued.Load()
	}
	return total
}

// Evict implements Mux: spill worker w's per-client queues back to the
// shared injectors so a retiring worker strands no tasks.
func (m *TokenMux) Evict(w int) int { return m.evict(w) }

// Load implements Mux: total queued tasks across all clients.
func (m *TokenMux) Load() int64 { return m.load() }

// Nudge implements Mux: if any client has queued work, unpark one idle
// worker.  A retiring worker calls it after evicting its deque — its
// own pending wake token (if a push targeted it in the retirement
// window) dies with it, so the nudge re-arms the wake protocol.
func (m *TokenMux) Nudge() {
	if m.active.Load() > 0 {
		m.unparkOne()
	}
}

// Evict implements Mux.
func (m *CondvarMux) Evict(w int) int { return m.evict(w) }

// Load implements Mux.
func (m *CondvarMux) Load() int64 { return m.load() }

// Nudge implements Mux: the legacy protocol has no targeted wake, so
// any nudge is a broadcast.
func (m *CondvarMux) Nudge() {
	if m.active.Load() > 0 {
		m.Kick()
	}
}
