package supermatrix

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
)

// TestGraphFirstExecution checks the defining SuperMatrix property the
// paper contrasts with SMPSs (§VII.C): nothing runs while the graph is
// being developed; everything runs during Execute.
func TestGraphFirstExecution(t *testing.T) {
	rt := New(Config{Workers: 4})
	var ran atomic.Int64
	def := NewTaskDef("probe", func(a *Args) { ran.Add(1) })
	data := make([]float32, 8)
	for i := 0; i < 100; i++ {
		rt.Submit(def, InOut(data))
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d tasks ran before Execute; SuperMatrix develops the whole graph first", got)
	}
	if err := rt.Execute(); err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 100 {
		t.Fatalf("Execute ran %d of 100 tasks", got)
	}
}

// TestNoRenaming checks that WAW/WAR hazards become real edges: a chain
// of writers to one block must serialize, and the tracker must report
// false edges rather than renames.
func TestNoRenaming(t *testing.T) {
	rt := New(Config{Workers: 4})
	data := make([]float32, 4)
	var mu sync.Mutex
	var order []int
	for i := 0; i < 32; i++ {
		i := i
		def := NewTaskDef("writer", func(a *Args) {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			a.F32(0)[0] = float32(i)
		})
		rt.Submit(def, Out(data))
	}
	if err := rt.Execute(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("writers ran out of order at %d: %v", i, order)
		}
	}
	if data[0] != 31 {
		t.Fatalf("final value %v, want 31", data[0])
	}
	st := rt.Stats()
	if st.Deps.Renames != 0 {
		t.Fatalf("SuperMatrix renamed %d times; it must not rename", st.Deps.Renames)
	}
	if st.Deps.FalseEdges == 0 {
		t.Fatalf("expected materialized WAW edges, got none")
	}
}

// TestOwnerAffinity checks the block→core assignment: every task writing
// a given block must execute on the same worker, across the whole run.
func TestOwnerAffinity(t *testing.T) {
	const workers = 4
	const blocks = 16
	rt := New(Config{Workers: workers})
	datas := make([][]float32, blocks)
	for i := range datas {
		datas[i] = make([]float32, 4)
	}
	var mu sync.Mutex
	ranOn := make(map[int]map[int]bool) // block → set of workers
	def := NewTaskDef("touch", func(a *Args) {
		b := a.Int(1)
		mu.Lock()
		if ranOn[b] == nil {
			ranOn[b] = make(map[int]bool)
		}
		ranOn[b][a.Worker()] = true
		mu.Unlock()
	})
	for round := 0; round < 8; round++ {
		for b := 0; b < blocks; b++ {
			rt.Submit(def, InOut(datas[b]), Value(b))
		}
	}
	if err := rt.Execute(); err != nil {
		t.Fatal(err)
	}
	used := make(map[int]bool)
	for b, set := range ranOn {
		if len(set) != 1 {
			t.Fatalf("block %d ran on %d distinct workers, want exactly 1", b, len(set))
		}
		for w := range set {
			used[w] = true
		}
	}
	if len(used) != workers {
		t.Fatalf("round-robin assignment used %d of %d workers", len(used), workers)
	}
	st := rt.Stats()
	if st.OwnerRuns != 8*blocks {
		t.Fatalf("OwnerRuns = %d, want %d", st.OwnerRuns, 8*blocks)
	}
	if st.Owners != blocks {
		t.Fatalf("Owners = %d, want %d", st.Owners, blocks)
	}
}

// TestCholeskyMatchesReference factors an SPD matrix under the
// SuperMatrix model and compares the factor against the sequential flat
// Cholesky.
func TestCholeskyMatchesReference(t *testing.T) {
	const n, m = 6, 16
	dim := n * m
	spd := kernels.GenSPD(dim, 7)
	want := append([]float32(nil), spd...)
	if !kernels.CholeskyFlat(want, dim) {
		t.Fatal("reference factorization failed")
	}

	h := hypermatrix.FromFlat(spd, n, m)
	rt := New(Config{Workers: 4})
	Cholesky(rt, NewTasks(kernels.Fast, m), h)
	if err := rt.Execute(); err != nil {
		t.Fatal(err)
	}
	got := h.ToFlat()
	for i := 0; i < dim; i++ {
		for j := 0; j <= i; j++ {
			g, w := got[i*dim+j], want[i*dim+j]
			if diff := math.Abs(float64(g - w)); diff > 1e-3*(1+math.Abs(float64(w))) {
				t.Fatalf("factor mismatch at (%d,%d): got %v want %v", i, j, g, w)
			}
		}
	}
	st := rt.Stats()
	wantTasks := int64(n + n*(n-1)/2 + n*(n-1)/2 + n*(n-1)*(n-2)/6)
	if st.TasksExecuted != wantTasks {
		t.Fatalf("executed %d tasks, want %d", st.TasksExecuted, wantTasks)
	}
}

// TestGemmMatchesReference multiplies under the SuperMatrix model and
// compares against the sequential flat GEMM.
func TestGemmMatchesReference(t *testing.T) {
	const n, m = 4, 8
	dim := n * m
	af := kernels.GenMatrix(dim, 1)
	bf := kernels.GenMatrix(dim, 2)
	want := make([]float32, dim*dim)
	kernels.GemmFlat(af, bf, want, dim)

	a := hypermatrix.FromFlat(af, n, m)
	b := hypermatrix.FromFlat(bf, n, m)
	c := hypermatrix.New(n, m)
	rt := New(Config{Workers: 3})
	Gemm(rt, NewTasks(kernels.Fast, m), a, b, c)
	if err := rt.Execute(); err != nil {
		t.Fatal(err)
	}
	got := c.ToFlat()
	for i := range want {
		if diff := math.Abs(float64(got[i] - want[i])); diff > 1e-2*(1+math.Abs(float64(want[i]))) {
			t.Fatalf("product mismatch at %d: got %v want %v", i, got[i], want[i])
		}
	}
}

// TestPanicPropagation checks that a panicking task surfaces as an error
// from Execute and does not wedge the workers.
func TestPanicPropagation(t *testing.T) {
	rt := New(Config{Workers: 2})
	data := make([]float32, 4)
	boom := NewTaskDef("boom", func(a *Args) { panic("kaboom") })
	fine := NewTaskDef("fine", func(a *Args) { a.F32(0)[0]++ })
	rt.Submit(fine, InOut(data))
	rt.Submit(boom, InOut(data))
	rt.Submit(fine, InOut(data))
	err := rt.Execute()
	if err == nil {
		t.Fatal("Execute returned nil after a task panicked")
	}
}

// TestMultiPhase checks that the runtime supports repeated Submit/Execute
// phases (SuperMatrix resumes the main flow after the graph is consumed).
func TestMultiPhase(t *testing.T) {
	rt := New(Config{Workers: 3})
	data := make([]float32, 1)
	inc := NewTaskDef("inc", func(a *Args) { a.F32(0)[0]++ })
	for phase := 0; phase < 3; phase++ {
		for i := 0; i < 10; i++ {
			rt.Submit(inc, InOut(data))
		}
		if err := rt.Execute(); err != nil {
			t.Fatal(err)
		}
		if want := float32(10 * (phase + 1)); data[0] != want {
			t.Fatalf("after phase %d data = %v, want %v", phase, data[0], want)
		}
	}
}

// TestValueArgs checks by-value parameter passing.
func TestValueArgs(t *testing.T) {
	rt := New(Config{Workers: 2})
	data := make([]float32, 4)
	def := NewTaskDef("set", func(a *Args) {
		a.F32(0)[a.Int(1)] = float32(a.Int(2))
	})
	for i := 0; i < 4; i++ {
		rt.Submit(def, InOut(data), Value(i), Value(i*10))
	}
	if err := rt.Execute(); err != nil {
		t.Fatal(err)
	}
	for i, v := range data {
		if v != float32(i*10) {
			t.Fatalf("data[%d] = %v, want %v", i, v, i*10)
		}
	}
}

// TestReadersShareVersion checks that pure readers of one block do not
// serialize against each other (read-read never orders, §II).
func TestReadersShareVersion(t *testing.T) {
	rt := New(Config{Workers: 4})
	src := []float32{42}
	outs := make([][]float32, 16)
	def := NewTaskDef("read", func(a *Args) { a.F32(1)[0] = a.F32(0)[0] })
	for i := range outs {
		outs[i] = make([]float32, 1)
		rt.Submit(def, In(src), Out(outs[i]))
	}
	if err := rt.Execute(); err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if o[0] != 42 {
			t.Fatalf("reader %d saw %v", i, o[0])
		}
	}
	if st := rt.Stats(); st.Deps.TrueEdges != 0 {
		t.Fatalf("independent readers created %d true edges", st.Deps.TrueEdges)
	}
}

// TestRefusedTicketDoesNotWedge is the regression test for a drive()
// wedge: drive pre-accounts inFlight and ownedBusy before submitting
// each ticket, and a refused submission (closed or canceled tenant
// context) used to strand that accounting, leaving drive waiting on
// cond forever for tickets that would never run.  Canceling the tenant
// context before Execute makes the very first ticket refuse; Execute
// must surface an error promptly instead of hanging.
func TestRefusedTicketDoesNotWedge(t *testing.T) {
	pool, err := core.NewPool(core.PoolConfig{Workers: 2, MaxContexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	rt, err := NewOn(pool, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	def := NewTaskDef("never", func(a *Args) {})
	data := make([]float32, 8)
	for i := 0; i < 10; i++ {
		rt.Submit(def, InOut(data))
	}
	rt.host.Cancel()
	done := make(chan error, 1)
	go func() { done <- rt.Execute() }()
	select {
	case execErr := <-done:
		if execErr == nil {
			t.Fatal("Execute returned nil after its context was canceled")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Execute wedged on a refused ticket")
	}
}
