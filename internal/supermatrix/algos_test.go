package supermatrix

import (
	"testing"
)

// TestArgsAccessors covers the typed accessors and their panics.
func TestArgsAccessors(t *testing.T) {
	rt := New(Config{Workers: 2})
	if rt.Workers() != 2 {
		t.Fatalf("Workers() = %d", rt.Workers())
	}
	data := make([]float32, 2)
	def := NewTaskDef("acc", func(a *Args) {
		if a.Len() != 3 {
			panic("wrong arity")
		}
		if a.Worker() < 0 || a.Worker() >= 2 {
			panic("bad worker")
		}
		_ = a.F32(0)
		if a.Int(1) != 7 || a.Int(2) != 8 {
			panic("bad ints")
		}
		mustPanic := func(f func()) {
			panicked := false
			func() {
				defer func() { panicked = recover() != nil }()
				f()
			}()
			if !panicked {
				panic("accessor did not panic")
			}
		}
		mustPanic(func() { a.Value(0) }) // data arg is not a value
		mustPanic(func() { a.Data(1) })  // value arg is not data
		mustPanic(func() { a.Int(0) })   // data arg is not an int
	})
	rt.Submit(def, InOut(data), Value(7), Value(int64(8)))
	if err := rt.Execute(); err != nil {
		t.Fatal(err)
	}
}

// TestWriteOnlyTaskGetsOwner: Out counts as a write for the block→core
// assignment.
func TestWriteOnlyTaskGetsOwner(t *testing.T) {
	rt := New(Config{Workers: 3})
	outs := make([][]float32, 9)
	def := NewTaskDef("w", func(a *Args) { a.F32(0)[0] = 1 })
	for i := range outs {
		outs[i] = make([]float32, 1)
		rt.Submit(def, Out(outs[i]))
	}
	if err := rt.Execute(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Owners != 9 || st.OwnerRuns != 9 || st.UnownedRuns != 0 {
		t.Fatalf("owner accounting: %+v", st)
	}
}

// TestReadOnlyTaskIsUnowned: tasks that write nothing run anywhere.
func TestReadOnlyTaskIsUnowned(t *testing.T) {
	rt := New(Config{Workers: 2})
	src := []float32{1}
	def := NewTaskDef("r", func(a *Args) { _ = a.F32(0)[0] })
	for i := 0; i < 5; i++ {
		rt.Submit(def, In(src))
	}
	if err := rt.Execute(); err != nil {
		t.Fatal(err)
	}
	if st := rt.Stats(); st.UnownedRuns != 5 || st.Owners != 0 {
		t.Fatalf("unowned accounting: %+v", st)
	}
}
