// Package supermatrix reproduces the SuperMatrix execution model that the
// paper compares against in §VII.C, so the architectural claims of that
// section can be measured rather than just cited:
//
//   - "SuperMatrix first develops the whole graph, and then stops the main
//     flow execution until the graph has been fully consumed" — Submit
//     only builds the graph; nothing executes until Execute, which blocks
//     the main flow until the graph drains.
//   - "SuperMatrix has a central ready queue" — there is one shared ready
//     list; workers have no private deques and never steal.
//   - "its locality approach is based on assigning each block to one core
//     and run tasks that write to that block only on the assigned core.
//     This assignment is performed independently of task dependencies" —
//     every data object is bound to an owner core (round-robin at first
//     write, i.e. block-cyclic in first-write order); a ready task that
//     writes an owned block is runnable only on that owner.
//   - "SuperMatrix does not support renaming" — WAR and WAW hazards become
//     real edges (the dependency tracker runs with renaming disabled).
//
// The programming interface mirrors internal/core (task definitions,
// In/Out/InOut/Value arguments) so the same algorithms can be expressed
// under both models and compared head-to-head (the ablation benchmarks in
// internal/bench do exactly that).
package supermatrix

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dataid"
	"repro/internal/deps"
	"repro/internal/graph"
)

// Config parameterizes a Runtime.
type Config struct {
	// Workers is the number of threads consuming the graph during
	// Execute.  Zero means 1.
	Workers int
}

// TaskDef declares a task type, mirroring core.TaskDef.
type TaskDef struct {
	// Name labels the task in errors and statistics.
	Name string
	// Fn is the task body; it receives accessors for the parameter
	// storage bound at submission.
	Fn func(*Args)
}

// NewTaskDef declares a task.
func NewTaskDef(name string, fn func(*Args)) *TaskDef {
	return &TaskDef{Name: name, Fn: fn}
}

// argKind distinguishes argument flavors.
type argKind uint8

const (
	argData argKind = iota
	argValue
)

// Arg is one bound task parameter.
type Arg struct {
	kind argKind
	mode deps.Mode
	data any
}

// In declares data the task only reads.
func In(data any) Arg { return Arg{kind: argData, mode: deps.ModeIn, data: data} }

// Out declares data the task completely overwrites.
func Out(data any) Arg { return Arg{kind: argData, mode: deps.ModeOut, data: data} }

// InOut declares data the task reads and writes.
func InOut(data any) Arg { return Arg{kind: argData, mode: deps.ModeInOut, data: data} }

// Value passes v by value without dependency analysis.
func Value(v any) Arg { return Arg{kind: argValue, data: v} }

// Args gives a task body access to its parameters.  SuperMatrix never
// renames, so the storage is always exactly what the caller named.
type Args struct {
	rec    *taskRec
	worker int
}

// Len returns the number of bound parameters.
func (a *Args) Len() int { return len(a.rec.args) }

// Worker returns the executing worker's identity (0..Workers-1).
func (a *Args) Worker() int { return a.worker }

// Data returns parameter i's storage.
func (a *Args) Data(i int) any {
	b := a.rec.args[i]
	if b.kind != argData {
		panic(fmt.Sprintf("supermatrix: argument %d of %s is not a data parameter", i, a.rec.def.Name))
	}
	return b.data
}

// F32 returns parameter i as a []float32.
func (a *Args) F32(i int) []float32 { return a.Data(i).([]float32) }

// Value returns parameter i's by-value payload.
func (a *Args) Value(i int) any {
	b := a.rec.args[i]
	if b.kind != argValue {
		panic(fmt.Sprintf("supermatrix: argument %d of %s is not a value parameter", i, a.rec.def.Name))
	}
	return b.data
}

// Int returns parameter i's value as an int.
func (a *Args) Int(i int) int {
	switch v := a.Value(i).(type) {
	case int:
		return v
	case int64:
		return int(v)
	case int32:
		return int(v)
	}
	panic(fmt.Sprintf("supermatrix: argument %d of %s is not an integer", i, a.rec.def.Name))
}

// taskRec is the payload attached to each graph node.
type taskRec struct {
	def   *TaskDef
	args  []Arg
	owner int // owning core, or -1 when the task writes no owned block
}

// Stats aggregates runtime activity.
type Stats struct {
	// TasksSubmitted and TasksExecuted count task instances.
	TasksSubmitted int64
	TasksExecuted  int64
	// Deps is the tracker's view.  FalseEdges counts the WAR/WAW hazards
	// materialized as edges because SuperMatrix does not rename.
	Deps deps.Stats
	// OwnerRuns counts tasks executed on the core owning their first
	// written block; UnownedRuns counts tasks with no written block.
	OwnerRuns   int64
	UnownedRuns int64
	// Owners is the number of distinct block→core assignments made.
	Owners int64
}

// Runtime is one SuperMatrix-model runtime instance.
//
// Like the system it models, it is strictly phase-based: the main flow
// calls Submit repeatedly (building the whole graph without running
// anything), then Execute (which consumes the graph to completion).
// Submit must not be called concurrently with Execute.
//
// Since the shared-pool re-host the model owns no worker threads.
// Execution happens on a core.Context: the blocked Execute caller is
// the context's single submitter, and the Workers configuration names
// *virtual cores* — block ownership binds blocks to virtual cores, and
// at most one ticket per virtual core is in flight at a time, so each
// core's owned work still runs serially on exactly one thread, with no
// stealing, exactly as the private per-core lists did.  New runs each
// Execute phase on a private ephemeral pool (preserving "no worker
// threads exist until Execute"); NewOn attaches the model to a shared
// pool as one tenant.
type Runtime struct {
	cfg Config
	g   *graph.Graph
	tr  *deps.Tracker

	host *core.Context // persistent tenant context (NewOn), or nil

	mu     sync.Mutex
	cond   *sync.Cond
	owned  [][]*graph.Node // per-core ready lists (owner-bound tasks)
	shared []*graph.Node   // ready tasks that write no owned block
	owners map[uintptr]int
	next   int // round-robin cursor for owner assignment

	ownedBusy  []bool // a ticket is in flight for this virtual core
	sharedOwed int    // shared tasks not yet covered by a ticket
	inFlight   int    // tickets submitted and not yet finished

	outstanding int64
	submitted   int64
	executed    int64
	ownerRuns   int64
	unownedRuns int64

	firstErr error
}

// New creates a runtime.  No worker threads exist until Execute.
func New(cfg Config) *Runtime {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	rt := &Runtime{
		cfg:       cfg,
		owned:     make([][]*graph.Node, cfg.Workers),
		ownedBusy: make([]bool, cfg.Workers),
		owners:    make(map[uintptr]int),
	}
	rt.cond = sync.NewCond(&rt.mu)
	rt.g = graph.New(rt.onReady)
	rt.tr = deps.NewTracker(rt.g)
	rt.tr.DisableRenaming = true // SuperMatrix does not support renaming
	return rt
}

// NewOn attaches a SuperMatrix-model runtime to a shared pool as one
// tenant: Execute phases run by submitting tickets to one context
// instead of spinning up private threads.  Workers still sets the
// virtual-core count for block ownership (zero picks the pool's worker
// count).  NewOn, Submit, Execute and Close must all be called from the
// same goroutine (the context is single-submitter); call Close to
// release the context slot.
func NewOn(pool *core.Pool, cfg Config) (*Runtime, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = pool.Workers()
	}
	rt := New(cfg)
	ctx, err := pool.NewContext(core.ContextConfig{
		Scheduler:  core.SchedGlobalFIFO, // "SuperMatrix has a central ready queue"
		GraphLimit: -1,                   // the driver must never execute tickets inline
	})
	if err != nil {
		return nil, err
	}
	rt.host = ctx
	return rt, nil
}

// Close detaches a NewOn runtime's context from its pool.  On a private
// (New) runtime it is a no-op: those own no persistent resources.
func (rt *Runtime) Close() error {
	if rt.host == nil {
		return nil
	}
	err := rt.host.Close()
	rt.host = nil
	if err != nil {
		return err
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.firstErr
}

// Workers returns the configured worker count.
func (rt *Runtime) Workers() int { return rt.cfg.Workers }

// Stats returns a snapshot of the runtime's counters.  Call it between
// phases (not during Execute).
func (rt *Runtime) Stats() Stats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return Stats{
		TasksSubmitted: rt.submitted,
		TasksExecuted:  rt.executed,
		Deps:           rt.tr.Stats(),
		OwnerRuns:      rt.ownerRuns,
		UnownedRuns:    rt.unownedRuns,
		Owners:         int64(len(rt.owners)),
	}
}

// ownerOf returns the core owning the block at key, assigning one
// round-robin on first sight.  Caller holds rt.mu.
func (rt *Runtime) ownerOf(key uintptr) int {
	if o, ok := rt.owners[key]; ok {
		return o
	}
	o := rt.next % rt.cfg.Workers
	rt.next++
	rt.owners[key] = o
	return o
}

// Submit adds one task invocation to the graph.  Nothing executes until
// Execute is called: this is the "first develops the whole graph" half of
// the SuperMatrix model.
func (rt *Runtime) Submit(def *TaskDef, args ...Arg) {
	rec := &taskRec{def: def, args: args, owner: -1}
	node := rt.g.AddNode(0, def.Name, false, rec)
	node.Payload = rec

	rt.mu.Lock()
	for _, a := range args {
		if a.kind != argData {
			continue
		}
		key := dataid.Key(a.data)
		if a.mode.Writes() && rec.owner < 0 {
			// Block→core assignment, independent of dependencies: the
			// task runs on the core owning the first block it writes.
			rec.owner = rt.ownerOf(key)
		}
	}
	rt.submitted++
	rt.outstanding++
	rt.mu.Unlock()

	for _, a := range args {
		if a.kind != argData {
			continue
		}
		rt.tr.Analyze(node, deps.Access{
			Key:   dataid.Key(a.data),
			Mode:  a.mode,
			Data:  a.data,
			Alloc: dataid.AllocLike(a.data),
			Copy:  dataid.CopyInto,
		})
	}
	rt.g.Seal(node)
}

// onReady queues a task whose dependencies are satisfied.  During the
// Submit phase this only accumulates state; Execute drains it by
// submitting tickets.
func (rt *Runtime) onReady(n *graph.Node, releasedBy int) {
	rec := n.Payload.(*taskRec)
	rt.mu.Lock()
	if rec.owner >= 0 {
		rt.owned[rec.owner] = append(rt.owned[rec.owner], n)
	} else {
		rt.shared = append(rt.shared, n)
		rt.sharedOwed++
	}
	rt.mu.Unlock()
	rt.cond.Broadcast()
}

// ownedTicket drains one virtual core's owned list serially; at most
// one is in flight per core, which is exactly the old per-core worker.
var ownedTicket = core.NewTaskDef("supermatrix_owned", func(a *core.Args) {
	a.Opaque(0).(*Runtime).runOwned(a.Int(1))
})

// sharedTicket runs at most one unowned task; Execute submits one per
// queued shared task, so surplus tickets are harmless no-ops.
var sharedTicket = core.NewTaskDef("supermatrix_shared", func(a *core.Args) {
	a.Opaque(0).(*Runtime).runShared(a.Worker())
})

// Execute consumes the developed graph: it submits tickets to the
// execution context, blocks the main flow until every submitted task
// has completed, and returns the first task failure (if any).  The
// runtime may then be used for another Submit/Execute phase.
//
// A NewOn runtime executes on its tenant context; a New runtime builds
// a private pool for the duration of the phase — matching the original
// model, where worker threads exist only while Execute runs.
func (rt *Runtime) Execute() error {
	ctx := rt.host
	var pool *core.Pool
	if ctx == nil {
		p, err := core.NewPool(core.PoolConfig{Workers: rt.cfg.Workers, MaxContexts: 1})
		if err != nil {
			return err
		}
		c, err := p.NewContext(core.ContextConfig{
			Scheduler:  core.SchedGlobalFIFO,
			GraphLimit: -1,
		})
		if err != nil {
			p.Close()
			return err
		}
		pool, ctx = p, c
	}
	rt.drive(ctx)
	if pool != nil {
		ctx.Close()
		pool.Close()
	}
	rt.mu.Lock()
	err := rt.firstErr
	rt.mu.Unlock()
	return err
}

// drive is the heart of the Execute phase: the blocked main flow acts
// as the context's single submitter, covering every ready task with a
// ticket — one in-flight ticket per virtual core with owned work, one
// per queued shared task — until the graph drains and every ticket has
// finished (so no ticket still references this runtime after return).
func (rt *Runtime) drive(ctx *core.Context) {
	for {
		rt.mu.Lock()
		if rt.outstanding == 0 && rt.inFlight == 0 {
			rt.mu.Unlock()
			return
		}
		var ownedStart []int
		for v := range rt.owned {
			if len(rt.owned[v]) > 0 && !rt.ownedBusy[v] {
				rt.ownedBusy[v] = true
				rt.inFlight++
				ownedStart = append(ownedStart, v)
			}
		}
		sharedStart := rt.sharedOwed
		rt.sharedOwed = 0
		rt.inFlight += sharedStart
		if len(ownedStart) == 0 && sharedStart == 0 {
			rt.cond.Wait()
			rt.mu.Unlock()
			continue
		}
		rt.mu.Unlock()
		for _, v := range ownedStart {
			if err := ctx.Submit(ownedTicket, core.Opaque(rt), core.Value(v)); err != nil {
				rt.abortDrive(ctx, err)
				return
			}
		}
		for i := 0; i < sharedStart; i++ {
			if err := ctx.Submit(sharedTicket, core.Opaque(rt)); err != nil {
				rt.abortDrive(ctx, err)
				return
			}
		}
	}
}

// abortDrive handles a refused ticket (the context was closed or its
// tenant canceled; every later submission would be refused the same
// way).  drive pre-accounts inFlight and ownedBusy before submitting,
// so a refusal strands accounting for tickets that will never run and
// would wedge drive on cond.Wait forever.  The blocked main flow is
// the context's single submitter, so once Barrier returns every
// accepted ticket has finished and no pool worker references this
// runtime; the stranded accounting can then be dropped safely.  The
// unexecuted remainder of the graph stays put: Execute surfaces the
// refusal as its error.
func (rt *Runtime) abortDrive(ctx *core.Context, err error) {
	if berr := ctx.Barrier(); berr != nil && err == nil {
		err = berr
	}
	rt.mu.Lock()
	if rt.firstErr == nil {
		rt.firstErr = err
	}
	rt.inFlight = 0
	for v := range rt.ownedBusy {
		rt.ownedBusy[v] = false
	}
	rt.mu.Unlock()
}

// runOwned is an owned ticket's body on a pool worker: it drains
// virtual core v's ready list serially — the ownership filter means no
// other thread ever runs these tasks concurrently.
func (rt *Runtime) runOwned(v int) {
	for {
		rt.mu.Lock()
		if len(rt.owned[v]) == 0 {
			rt.ownedBusy[v] = false
			rt.inFlight--
			rt.mu.Unlock()
			rt.cond.Broadcast()
			return
		}
		n := rt.owned[v][0]
		rt.owned[v] = rt.owned[v][1:]
		rt.mu.Unlock()
		rt.exec(n, v, true)
	}
}

// runShared is a shared ticket's body: pop at most one unowned task.
func (rt *Runtime) runShared(worker int) {
	rt.mu.Lock()
	var n *graph.Node
	if len(rt.shared) > 0 {
		n, rt.shared = rt.shared[0], rt.shared[1:]
	}
	rt.mu.Unlock()
	if n != nil {
		rt.exec(n, worker, false)
	}
	rt.mu.Lock()
	rt.inFlight--
	rt.mu.Unlock()
	rt.cond.Broadcast()
}

func (rt *Runtime) exec(n *graph.Node, self int, owned bool) {
	rt.g.MarkRunning(n)
	rec := n.Payload.(*taskRec)
	func() {
		defer func() {
			if r := recover(); r != nil {
				rt.mu.Lock()
				if rt.firstErr == nil {
					rt.firstErr = fmt.Errorf("supermatrix: task %s (#%d) panicked: %v", rec.def.Name, n.ID, r)
				}
				rt.mu.Unlock()
			}
		}()
		rec.def.Fn(&Args{rec: rec, worker: self})
	}()
	rt.g.Complete(n, self)

	rt.mu.Lock()
	rt.executed++
	if owned {
		rt.ownerRuns++
	} else {
		rt.unownedRuns++
	}
	rt.outstanding--
	done := rt.outstanding == 0
	rt.mu.Unlock()
	if done {
		rt.cond.Broadcast()
	}
}
