package supermatrix_test

import (
	"fmt"

	"repro/internal/supermatrix"
)

// The SuperMatrix model in one screen: Submit only develops the graph;
// Execute stops the main flow until it has been fully consumed
// (paper §VII.C).
func Example() {
	inc := supermatrix.NewTaskDef("inc", func(a *supermatrix.Args) {
		a.F32(0)[0]++
	})
	x := make([]float32, 1)

	rt := supermatrix.New(supermatrix.Config{Workers: 2})
	for i := 0; i < 10; i++ {
		rt.Submit(inc, supermatrix.InOut(x))
	}
	fmt.Println("before Execute:", x[0]) // the graph-first property
	if err := rt.Execute(); err != nil {
		panic(err)
	}
	fmt.Println("after Execute:", x[0])
	// Output:
	// before Execute: 0
	// after Execute: 10
}
