// Package topo models the machine's worker-placement hierarchy for the
// scheduler: a two-level node/core view in which worker identities are
// partitioned into groups that plausibly share a last-level cache (a
// NUMA node or an L3 complex).  The scheduler uses it to probe
// topology-near steal victims before remote ones and to redirect
// affinity hints whose target worker has been retired toward a worker
// in the same group — generalizing per-worker cache affinity to "the
// group that owns the data".
//
// A Topology can be detected from the host (Detect reads the sysfs
// cache hierarchy on Linux) or constructed synthetically (Split), which
// is what tests and single-CPU containers use.  A nil *Topology is the
// flat machine: every victim equidistant, exactly the pre-topology
// steal order.
package topo

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Topology is one two-level hierarchy over a pool's worker identities:
// Groups[g] lists the worker slots of group g.  Every slot of the pool
// appears in exactly one group.  A Topology is immutable after
// construction and safe for concurrent readers.
type Topology struct {
	groups [][]int
	// groupOf[slot] is the index into groups, -1 for slots the topology
	// does not cover (they steal flat and are never affinity targets).
	groupOf []int
}

// New builds a topology from an explicit group layout.  Slots absent
// from every group are treated as ungrouped (flat).  It returns an
// error if a slot appears twice or is negative.
func New(groups [][]int) (*Topology, error) {
	max := -1
	for _, g := range groups {
		for _, s := range g {
			if s < 0 {
				return nil, fmt.Errorf("topo: negative worker slot %d", s)
			}
			if s > max {
				max = s
			}
		}
	}
	t := &Topology{groupOf: make([]int, max+1)}
	for i := range t.groupOf {
		t.groupOf[i] = -1
	}
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		members := append([]int(nil), g...)
		sort.Ints(members)
		for _, s := range members {
			if t.groupOf[s] != -1 {
				return nil, fmt.Errorf("topo: worker slot %d in two groups", s)
			}
			t.groupOf[s] = len(t.groups)
		}
		t.groups = append(t.groups, members)
	}
	if len(t.groups) == 0 {
		return nil, fmt.Errorf("topo: no groups")
	}
	return t, nil
}

// Split builds a synthetic topology: nslots worker identities divided
// into ngroups contiguous groups of near-equal size (earlier groups get
// the remainder).  It is the constructor tests and single-CPU
// containers use to exercise hierarchical stealing without real NUMA
// hardware.  ngroups < 2 or nslots < ngroups returns nil — a flat
// machine needs no topology.
func Split(nslots, ngroups int) *Topology {
	if ngroups < 2 || nslots < ngroups {
		return nil
	}
	groups := make([][]int, ngroups)
	base, rem := nslots/ngroups, nslots%ngroups
	slot := 0
	for g := range groups {
		n := base
		if g < rem {
			n++
		}
		for i := 0; i < n; i++ {
			groups[g] = append(groups[g], slot)
			slot++
		}
	}
	t, err := New(groups)
	if err != nil {
		return nil
	}
	return t
}

// NumGroups returns the number of groups; a nil topology has one
// (the flat machine).
func (t *Topology) NumGroups() int {
	if t == nil {
		return 1
	}
	return len(t.groups)
}

// GroupOf returns the group index of a worker slot, or -1 when the
// topology is nil or does not cover the slot.
func (t *Topology) GroupOf(slot int) int {
	if t == nil || slot < 0 || slot >= len(t.groupOf) {
		return -1
	}
	return t.groupOf[slot]
}

// Group returns the member slots of group g in ascending order.  The
// returned slice is shared and must not be mutated.
func (t *Topology) Group(g int) []int {
	if t == nil || g < 0 || g >= len(t.groups) {
		return nil
	}
	return t.groups[g]
}

// StealOrder returns the victim probe order for worker self over a pool
// of nslots identities: topology-near victims first (the rest of self's
// group, in creation order starting after self, wrapping), then every
// remote slot in creation order starting after self.  Slots the
// topology does not cover count as remote.  The boundary between the
// near and far segments is returned so the caller can attribute steals.
// For an uncovered self the order degenerates to the flat creation-order
// scan with zero near victims.
func (t *Topology) StealOrder(self, nslots int) (order []int, near int) {
	order = make([]int, 0, nslots-1)
	g := t.GroupOf(self)
	if g >= 0 {
		members := t.groups[g]
		// Rotate the group so probing starts just after self, matching
		// the flat scan's "next worker first" convention within the group.
		start := 0
		for i, s := range members {
			if s == self {
				start = i + 1
				break
			}
		}
		for i := 0; i < len(members); i++ {
			s := members[(start+i)%len(members)]
			if s != self {
				order = append(order, s)
			}
		}
	}
	near = len(order)
	for i := 1; i < nslots; i++ {
		s := (self + i) % nslots
		if g >= 0 && t.GroupOf(s) == g {
			continue // already in the near segment
		}
		order = append(order, s)
	}
	return order, near
}

// Detect probes the host for a shared last-level-cache hierarchy and
// maps nslots worker identities over it: CPUs are grouped by the L3
// complex sysfs reports, and worker slots are distributed over the CPU
// groups proportionally and contiguously.  It returns nil — the flat
// machine — when the host exposes fewer than two complexes (the
// single-CPU container, most laptops) or when the hierarchy cannot be
// read, so callers can pass the result straight to the pool config.
func Detect(nslots int) *Topology {
	return detectFrom("/sys/devices/system/cpu", nslots)
}

// detectFrom is Detect against an alternate sysfs root (tests point it
// at a fixture tree).
func detectFrom(root string, nslots int) *Topology {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil
	}
	// Group CPUs by the shared_cpu_list of their last-level cache.
	groupsBy := map[string]int{}
	ngroups := 0
	ncpus := 0
	cpuGroup := map[int]int{}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "cpu") {
			continue
		}
		id, err := strconv.Atoi(name[3:])
		if err != nil {
			continue
		}
		key := lastLevelKey(root + "/" + name)
		if key == "" {
			continue
		}
		g, ok := groupsBy[key]
		if !ok {
			g = ngroups
			groupsBy[key] = g
			ngroups++
		}
		cpuGroup[id] = g
		ncpus++
	}
	if ngroups < 2 || ncpus == 0 {
		return nil
	}
	// Count CPUs per group, then hand out worker slots contiguously in
	// proportion (every group gets at least one slot while slots last).
	sizes := make([]int, ngroups)
	for _, g := range cpuGroup {
		sizes[g]++
	}
	groups := make([][]int, ngroups)
	slot := 0
	for g := 0; g < ngroups && slot < nslots; g++ {
		n := (nslots*sizes[g] + ncpus - 1) / ncpus
		if n < 1 {
			n = 1
		}
		for i := 0; i < n && slot < nslots; i++ {
			groups[g] = append(groups[g], slot)
			slot++
		}
	}
	// Leftover slots (rounding) join the last group.
	for ; slot < nslots; slot++ {
		groups[ngroups-1] = append(groups[ngroups-1], slot)
	}
	t, err := New(groups)
	if err != nil {
		return nil
	}
	if t.NumGroups() < 2 {
		return nil
	}
	return t
}

// lastLevelKey returns a stable identity for the deepest cache level a
// CPU shares ("index3:0-7"), or "" when unreadable.
func lastLevelKey(cpuDir string) string {
	for _, idx := range []string{"index3", "index2"} {
		b, err := os.ReadFile(cpuDir + "/cache/" + idx + "/shared_cpu_list")
		if err == nil && len(b) > 0 {
			return idx + ":" + strings.TrimSpace(string(b))
		}
	}
	return ""
}
