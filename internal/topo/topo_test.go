package topo

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestSplitShapes(t *testing.T) {
	cases := []struct {
		nslots, ngroups int
		want            [][]int
	}{
		{8, 2, [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}},
		{7, 2, [][]int{{0, 1, 2, 3}, {4, 5, 6}}},
		{6, 3, [][]int{{0, 1}, {2, 3}, {4, 5}}},
		{5, 4, [][]int{{0, 1}, {2}, {3}, {4}}},
	}
	for _, c := range cases {
		tp := Split(c.nslots, c.ngroups)
		if tp == nil {
			t.Fatalf("Split(%d,%d) = nil", c.nslots, c.ngroups)
		}
		if tp.NumGroups() != len(c.want) {
			t.Fatalf("Split(%d,%d): %d groups, want %d", c.nslots, c.ngroups, tp.NumGroups(), len(c.want))
		}
		for g, want := range c.want {
			if got := tp.Group(g); !reflect.DeepEqual(got, want) {
				t.Errorf("Split(%d,%d) group %d = %v, want %v", c.nslots, c.ngroups, g, got, want)
			}
			for _, s := range want {
				if tp.GroupOf(s) != g {
					t.Errorf("Split(%d,%d): GroupOf(%d) = %d, want %d", c.nslots, c.ngroups, s, tp.GroupOf(s), g)
				}
			}
		}
	}
}

func TestSplitDegenerate(t *testing.T) {
	if Split(8, 1) != nil {
		t.Error("Split(8,1) should be nil: one group is the flat machine")
	}
	if Split(1, 2) != nil {
		t.Error("Split(1,2) should be nil: fewer slots than groups")
	}
	if Split(0, 2) != nil {
		t.Error("Split(0,2) should be nil")
	}
}

func TestNewRejectsBadLayouts(t *testing.T) {
	if _, err := New([][]int{{0, 1}, {1, 2}}); err == nil {
		t.Error("duplicate slot accepted")
	}
	if _, err := New([][]int{{-1}}); err == nil {
		t.Error("negative slot accepted")
	}
	if _, err := New(nil); err == nil {
		t.Error("empty layout accepted")
	}
}

func TestNilTopologyIsFlat(t *testing.T) {
	var tp *Topology
	if tp.NumGroups() != 1 {
		t.Errorf("nil NumGroups = %d, want 1", tp.NumGroups())
	}
	if tp.GroupOf(3) != -1 {
		t.Errorf("nil GroupOf = %d, want -1", tp.GroupOf(3))
	}
	if tp.Group(0) != nil {
		t.Errorf("nil Group(0) = %v, want nil", tp.Group(0))
	}
}

// TestStealOrderNearBeforeFar pins the hierarchical probe order: every
// same-group victim must precede every remote victim, the near segment
// starts just after self within the group, and the far segment keeps
// the flat creation-order scan.
func TestStealOrderNearBeforeFar(t *testing.T) {
	tp := Split(8, 2) // {0,1,2,3} {4,5,6,7}
	order, near := tp.StealOrder(1, 8)
	wantOrder := []int{2, 3, 0, 4, 5, 6, 7}
	if !reflect.DeepEqual(order, wantOrder) {
		t.Errorf("StealOrder(1) = %v, want %v", order, wantOrder)
	}
	if near != 3 {
		t.Errorf("StealOrder(1) near = %d, want 3", near)
	}

	order, near = tp.StealOrder(6, 8)
	wantOrder = []int{7, 4, 5, 0, 1, 2, 3}
	if !reflect.DeepEqual(order, wantOrder) {
		t.Errorf("StealOrder(6) = %v, want %v", order, wantOrder)
	}
	if near != 3 {
		t.Errorf("StealOrder(6) near = %d, want 3", near)
	}

	// Group boundaries hold for every self: all near victims share
	// self's group, all far victims don't, and the order is a
	// permutation of every other slot.
	for self := 0; self < 8; self++ {
		order, near := tp.StealOrder(self, 8)
		if len(order) != 7 {
			t.Fatalf("StealOrder(%d): %d victims, want 7", self, len(order))
		}
		seen := map[int]bool{self: true}
		for i, v := range order {
			if seen[v] {
				t.Fatalf("StealOrder(%d): duplicate victim %d", self, v)
			}
			seen[v] = true
			sameGroup := tp.GroupOf(v) == tp.GroupOf(self)
			if i < near && !sameGroup {
				t.Errorf("StealOrder(%d): near victim %d in foreign group", self, v)
			}
			if i >= near && sameGroup {
				t.Errorf("StealOrder(%d): far victim %d in own group", self, v)
			}
		}
	}
}

// TestStealOrderUncoveredSelf: slots beyond the topology's coverage
// scan flat with an empty near segment.
func TestStealOrderUncoveredSelf(t *testing.T) {
	tp, err := New([][]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	order, near := tp.StealOrder(5, 6)
	if near != 0 {
		t.Errorf("uncovered self near = %d, want 0", near)
	}
	want := []int{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("uncovered self order = %v, want %v", order, want)
	}
}

// writeSysfs lays down a fixture /sys/devices/system/cpu tree.
func writeSysfs(t *testing.T, root string, shared map[int]string) {
	t.Helper()
	for cpu, list := range shared {
		dir := filepath.Join(root, "cpu"+itoa(cpu), "cache", "index3")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "shared_cpu_list"), []byte(list+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestDetectTwoComplexes(t *testing.T) {
	root := t.TempDir()
	writeSysfs(t, root, map[int]string{
		0: "0-3", 1: "0-3", 2: "0-3", 3: "0-3",
		4: "4-7", 5: "4-7", 6: "4-7", 7: "4-7",
	})
	tp := detectFrom(root, 8)
	if tp == nil {
		t.Fatal("detect returned nil for a 2-complex machine")
	}
	if tp.NumGroups() != 2 {
		t.Fatalf("detect: %d groups, want 2", tp.NumGroups())
	}
	total := 0
	for g := 0; g < tp.NumGroups(); g++ {
		total += len(tp.Group(g))
	}
	if total != 8 {
		t.Errorf("detect covers %d slots, want 8", total)
	}
}

func TestDetectSingleComplexIsFlat(t *testing.T) {
	root := t.TempDir()
	writeSysfs(t, root, map[int]string{0: "0-3", 1: "0-3", 2: "0-3", 3: "0-3"})
	if tp := detectFrom(root, 4); tp != nil {
		t.Errorf("single complex should detect as nil (flat), got %d groups", tp.NumGroups())
	}
}

func TestDetectUnreadableIsFlat(t *testing.T) {
	if tp := detectFrom(filepath.Join(t.TempDir(), "absent"), 4); tp != nil {
		t.Error("unreadable sysfs should detect as nil (flat)")
	}
}
