// Package chaos is the runtime's deterministic fault-injection harness:
// named injection sites compiled into the hot paths of the scheduler,
// the dependency tracker and the task executor, each a single atomic
// pointer load when no injector is installed.
//
// Determinism is the point.  An injector decides every fault from a
// stateless hash of (seed, site, key), where the key is a stable
// identity of the decision point — context id and task id for task
// faults — rather than from a shared RNG stream.  Two runs with the
// same seed therefore inject the same faults into the same tasks no
// matter how the pool's workers interleave, which is what lets the
// chaos stress test assert exact outcomes under -race.
//
// Sites that cannot corrupt results (steal delays, dropped affinity
// wakes, rename-storage exhaustion) exercise fallback paths and timing
// windows; sites that can (task panic/error) are confined to the
// contexts the injector was aimed at, so co-tenants of a shared pool
// stay bit-identical to a sequential run.
package chaos

import (
	"sync/atomic"
	"time"
)

// Site names one injection point in the runtime.
type Site uint8

// Injection sites.  The task-body sites key on (context, task) and are
// filtered by the injector's context set; the machinery sites are
// pool-wide and, by construction, correctness-neutral.
const (
	// SiteTaskPanic panics inside a task body before the user function
	// runs (exercises the executor's recover → TaskError path).
	SiteTaskPanic Site = iota
	// SiteTaskError fails the task with an injected error, as if the
	// body had called Args.Fail (exercises the structured-failure path).
	SiteTaskError
	// SiteTaskDelay sleeps inside the task body, widening completion /
	// cancellation / steal races.
	SiteTaskDelay
	// SiteStealDelay sleeps on the scheduler's steal path, between a
	// worker finding its own queues empty and raiding a victim.
	SiteStealDelay
	// SiteRenameExhaust forces a rename-storage acquisition to bypass
	// the recycling free lists (a simulated exhausted pool: every hit
	// becomes a fresh allocation).
	SiteRenameExhaust
	// SiteWakeDrop drops the affinity-targeted wake on the mux push
	// path, forcing the generic unpark fallback to cover for it.
	SiteWakeDrop
	// SiteShrink sleeps on the elastic pool's worker-retirement path,
	// between the worker leaving the live set and its deque being
	// evicted — the window where concurrent pushes, drains and grows
	// race the retirement.
	SiteShrink

	// NumSites is the number of defined sites.
	NumSites = int(SiteShrink) + 1
)

// String returns the site's name.
func (s Site) String() string {
	switch s {
	case SiteTaskPanic:
		return "task-panic"
	case SiteTaskError:
		return "task-error"
	case SiteTaskDelay:
		return "task-delay"
	case SiteStealDelay:
		return "steal-delay"
	case SiteRenameExhaust:
		return "rename-exhaust"
	case SiteWakeDrop:
		return "wake-drop"
	case SiteShrink:
		return "shrink"
	}
	return "site(?)"
}

// Config parameterizes an Injector.
type Config struct {
	// Seed drives every fault decision; same seed, same faults.
	Seed uint64
	// Rates maps each site to its fault probability in [0, 1].  Sites
	// absent from the map never fire.
	Rates map[Site]float64
	// Delay is the sleep applied when a delay site fires.
	Delay time.Duration
	// Ctxs restricts the task-body sites (panic, error, delay) to the
	// given context ids; nil means every context.  The machinery sites
	// are pool-wide regardless — they cannot corrupt any tenant.
	Ctxs map[int]bool
}

// Injector is one armed fault configuration.  All methods are safe for
// concurrent use; decisions are pure functions of (seed, site, key)
// plus the per-site counters recording what actually fired.
type Injector struct {
	seed  uint64
	thr   [NumSites]uint64 // fire when hash < threshold
	delay time.Duration
	ctxs  map[int]bool
	fired [NumSites]atomic.Int64
}

// New builds an injector from cfg.
func New(cfg Config) *Injector {
	inj := &Injector{seed: cfg.Seed, delay: cfg.Delay, ctxs: cfg.Ctxs}
	for s, r := range cfg.Rates {
		if r <= 0 {
			continue
		}
		if r >= 1 {
			inj.thr[s] = ^uint64(0)
			continue
		}
		inj.thr[s] = uint64(r * float64(1<<63) * 2)
	}
	return inj
}

// Fired returns how many times the site actually fired.
func (inj *Injector) Fired(s Site) int64 { return inj.fired[s].Load() }

// splitmix64 is the finalizer of the splitmix64 generator — a cheap,
// well-mixed 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// decide is the stateless fault decision for (site, key).
func (inj *Injector) decide(s Site, key uint64) bool {
	t := inj.thr[s]
	if t == 0 {
		return false
	}
	if splitmix64(inj.seed^splitmix64(uint64(s)+1)^key) >= t {
		return false
	}
	inj.fired[s].Add(1)
	return true
}

// TaskKey builds the stable decision key for a task-body site.
func TaskKey(ctx int, taskID int64) uint64 {
	return uint64(ctx)<<40 ^ uint64(taskID)
}

// allowsCtx reports whether the injector's task-body sites target ctx.
func (inj *Injector) allowsCtx(ctx int) bool {
	return inj.ctxs == nil || inj.ctxs[ctx]
}

// injectedPanic is the payload of a SiteTaskPanic so tests can
// recognize harness-made panics in the recovered error.
const injectedPanic = "chaos: injected task panic"

// InjectedError is the error a SiteTaskError fault fails the task with.
type InjectedError struct {
	Ctx    int
	TaskID int64
}

func (e *InjectedError) Error() string { return "chaos: injected task error" }

// active is the installed injector; nil (the steady state) disarms
// every site down to one atomic pointer load.
var active atomic.Pointer[Injector]

// Install arms inj process-wide; Uninstall disarms.  Tests install an
// injector for one run and must uninstall before the next.
func Install(inj *Injector) { active.Store(inj) }

// Uninstall disarms all sites.
func Uninstall() { active.Store(nil) }

// Active returns the installed injector, or nil.
func Active() *Injector { return active.Load() }

// TaskBody is the task-executor hook, called with the owning context
// and task identity immediately before the user function.  It may sleep
// (SiteTaskDelay), panic (SiteTaskPanic — caught by the executor's
// existing recovery) or return a non-nil error the executor records as
// the task's failure (SiteTaskError).  Nil injector: one pointer load.
func TaskBody(ctx int, taskID int64) error {
	inj := active.Load()
	if inj == nil || !inj.allowsCtx(ctx) {
		return nil
	}
	key := TaskKey(ctx, taskID)
	if inj.decide(SiteTaskDelay, key) && inj.delay > 0 {
		time.Sleep(inj.delay)
	}
	if inj.decide(SiteTaskPanic, key) {
		panic(injectedPanic)
	}
	if inj.decide(SiteTaskError, key) {
		return &InjectedError{Ctx: ctx, TaskID: taskID}
	}
	return nil
}

// StealDelay is the scheduler hook on the steal path.  The key is the
// thief's identity: the site perturbs timing, never results, so it
// needs no interleaving-independent key.
func StealDelay(self int) {
	inj := active.Load()
	if inj == nil {
		return
	}
	if inj.decide(SiteStealDelay, uint64(self)) && inj.delay > 0 {
		time.Sleep(inj.delay)
	}
}

// ExhaustRename reports whether a rename-storage acquisition must skip
// the recycling free lists (simulated pool exhaustion); bytes keys the
// decision per size class.
func ExhaustRename(bytes int64) bool {
	inj := active.Load()
	if inj == nil {
		return false
	}
	return inj.decide(SiteRenameExhaust, uint64(bytes))
}

// ShrinkDelay is the elastic pool's hook on the worker-retirement path,
// called after the retiring worker leaves the live set and before it
// evicts its deque.  The key is the retiring worker's identity: like
// the steal delay it perturbs timing only, widening the window in which
// affinity pushes, tenant cancellation and pool drain race a
// retirement.
func ShrinkDelay(self int) {
	inj := active.Load()
	if inj == nil {
		return
	}
	if inj.decide(SiteShrink, uint64(self)) && inj.delay > 0 {
		time.Sleep(inj.delay)
	}
}

// DropWake reports whether the affinity-targeted wake for worker slot
// must be dropped (the caller's generic unpark fallback then covers
// the push, which is exactly the invariant under test).
func DropWake(slot int) bool {
	inj := active.Load()
	if inj == nil {
		return false
	}
	return inj.decide(SiteWakeDrop, uint64(slot))
}
