package chaos

import "testing"

// Decisions must be pure functions of (seed, site, key): the same
// injector asked twice answers the same, and a second injector with
// the same seed agrees fault for fault.
func TestDecisionsDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Rates: map[Site]float64{SiteTaskPanic: 0.3, SiteTaskError: 0.3}}
	a, b := New(cfg), New(cfg)
	for ctx := 0; ctx < 4; ctx++ {
		for id := int64(1); id <= 200; id++ {
			key := TaskKey(ctx, id)
			first := a.decide(SiteTaskPanic, key)
			if a.decide(SiteTaskPanic, key) != first {
				t.Fatalf("ctx %d task %d: same injector changed its mind", ctx, id)
			}
			if b.decide(SiteTaskPanic, key) != first {
				t.Fatalf("ctx %d task %d: same seed, different decision", ctx, id)
			}
		}
	}
}

// A different seed must produce a different fault set (astronomically
// likely over 800 decisions at rate 0.3).
func TestSeedChangesFaults(t *testing.T) {
	a := New(Config{Seed: 1, Rates: map[Site]float64{SiteTaskPanic: 0.3}})
	b := New(Config{Seed: 2, Rates: map[Site]float64{SiteTaskPanic: 0.3}})
	same := true
	for id := int64(1); id <= 800; id++ {
		if a.decide(SiteTaskPanic, TaskKey(0, id)) != b.decide(SiteTaskPanic, TaskKey(0, id)) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical fault sets")
	}
}

// The observed fire rate should be in the ballpark of the configured
// rate — the threshold arithmetic, not the hash, is what this guards.
func TestRateRoughlyHonored(t *testing.T) {
	inj := New(Config{Seed: 7, Rates: map[Site]float64{SiteTaskError: 0.25}})
	const n = 4000
	for id := int64(1); id <= n; id++ {
		inj.decide(SiteTaskError, TaskKey(0, id))
	}
	got := float64(inj.Fired(SiteTaskError)) / n
	if got < 0.18 || got > 0.32 {
		t.Fatalf("rate 0.25 fired at %.3f", got)
	}
}

// Rate 0 never fires; rate 1 always fires.
func TestRateExtremes(t *testing.T) {
	inj := New(Config{Seed: 3, Rates: map[Site]float64{SiteTaskPanic: 1}})
	for id := int64(1); id <= 100; id++ {
		if !inj.decide(SiteTaskPanic, TaskKey(0, id)) {
			t.Fatal("rate 1 did not fire")
		}
		if inj.decide(SiteTaskError, TaskKey(0, id)) {
			t.Fatal("unconfigured site fired")
		}
	}
}

// The context filter confines task-body sites to the targeted tenants.
func TestCtxFilter(t *testing.T) {
	inj := New(Config{
		Seed:  9,
		Rates: map[Site]float64{SiteTaskError: 1},
		Ctxs:  map[int]bool{1: true},
	})
	Install(inj)
	defer Uninstall()
	if err := TaskBody(0, 5); err != nil {
		t.Fatalf("untargeted ctx 0 faulted: %v", err)
	}
	if err := TaskBody(1, 5); err == nil {
		t.Fatal("targeted ctx 1 did not fault")
	}
}

// With no injector installed every hook is a no-op returning the
// pass-through answer.
func TestDisabledHooksAreNoOps(t *testing.T) {
	Uninstall()
	if Active() != nil {
		t.Fatal("expected no active injector")
	}
	if err := TaskBody(0, 1); err != nil {
		t.Fatalf("TaskBody faulted while disabled: %v", err)
	}
	if ExhaustRename(4096) {
		t.Fatal("ExhaustRename fired while disabled")
	}
	if DropWake(3) {
		t.Fatal("DropWake fired while disabled")
	}
	StealDelay(2) // must simply return
}

func TestSiteNames(t *testing.T) {
	for s := Site(0); int(s) < NumSites; s++ {
		if s.String() == "site(?)" {
			t.Fatalf("site %d has no name", s)
		}
	}
}
