// Package hypermatrix implements the blocked matrix storage the paper's
// algorithms operate on (§IV): "1-level hyper-matrices of N by N blocks,
// each of M by M elements", where each position holds a pointer to a
// block.  A nil block position represents an all-zero block, which is how
// the sparse algorithms of Fig. 3 skip work and how the on-demand
// blocking of Fig. 9/10 tracks which blocks have been copied in.
package hypermatrix

import "fmt"

// Matrix is an N×N hyper-matrix of M×M row-major float32 blocks.
type Matrix struct {
	// N is the hyper-matrix dimension in blocks.
	N int
	// M is the block dimension in elements.
	M int
	// Blocks holds the block pointers; Blocks[i][j] == nil means an
	// all-zero (or not-yet-copied) block.
	Blocks [][][]float32
}

// New allocates a dense hyper-matrix with all blocks present and zeroed.
func New(n, m int) *Matrix {
	h := NewSparse(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			h.Blocks[i][j] = make([]float32, m*m)
		}
	}
	return h
}

// NewSparse allocates a hyper-matrix with every block position nil.
func NewSparse(n, m int) *Matrix {
	blocks := make([][][]float32, n)
	for i := range blocks {
		blocks[i] = make([][]float32, n)
	}
	return &Matrix{N: n, M: m, Blocks: blocks}
}

// Block returns the block at hyper-position (i, j), which may be nil.
func (h *Matrix) Block(i, j int) []float32 { return h.Blocks[i][j] }

// EnsureBlock returns the block at (i, j), allocating a zero block first
// if the position is empty — the paper's alloc_block() (Fig. 3).
func (h *Matrix) EnsureBlock(i, j int) []float32 {
	if h.Blocks[i][j] == nil {
		h.Blocks[i][j] = make([]float32, h.M*h.M)
	}
	return h.Blocks[i][j]
}

// NonZeroBlocks counts the allocated block positions.
func (h *Matrix) NonZeroBlocks() int {
	c := 0
	for i := range h.Blocks {
		for j := range h.Blocks[i] {
			if h.Blocks[i][j] != nil {
				c++
			}
		}
	}
	return c
}

// At returns element (r, c) in flat element coordinates, treating nil
// blocks as zero.
func (h *Matrix) At(r, c int) float32 {
	b := h.Blocks[r/h.M][c/h.M]
	if b == nil {
		return 0
	}
	return b[(r%h.M)*h.M+c%h.M]
}

// Set writes element (r, c), allocating the containing block if needed.
func (h *Matrix) Set(r, c int, v float32) {
	h.EnsureBlock(r/h.M, c/h.M)[(r%h.M)*h.M+c%h.M] = v
}

// FromFlat blocks a flat (n·m)×(n·m) row-major matrix into an n×n
// hyper-matrix of m×m blocks.
func FromFlat(flat []float32, n, m int) *Matrix {
	if len(flat) != n*m*n*m {
		panic(fmt.Sprintf("hypermatrix: flat length %d does not match (%d·%d)²", len(flat), n, m))
	}
	h := New(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			CopyBlockFromFlat(flat, n*m, i, j, m, h.Blocks[i][j])
		}
	}
	return h
}

// ToFlat unblocks the hyper-matrix into a freshly allocated flat matrix,
// writing zeros for nil blocks.
func (h *Matrix) ToFlat() []float32 {
	dim := h.N * h.M
	flat := make([]float32, dim*dim)
	for i := 0; i < h.N; i++ {
		for j := 0; j < h.N; j++ {
			if b := h.Blocks[i][j]; b != nil {
				CopyBlockToFlat(b, flat, dim, i, j, h.M)
			}
		}
	}
	return flat
}

// CopyBlockFromFlat copies block (i, j) out of a dim×dim flat matrix
// into dst (m×m), the body of the paper's get_block task (Fig. 10).
func CopyBlockFromFlat(flat []float32, dim, i, j, m int, dst []float32) {
	for r := 0; r < m; r++ {
		copy(dst[r*m:r*m+m], flat[(i*m+r)*dim+j*m:(i*m+r)*dim+j*m+m])
	}
}

// CopyBlockToFlat copies an m×m block into position (i, j) of a dim×dim
// flat matrix, the body of the paper's put_block task (Fig. 10).
func CopyBlockToFlat(src []float32, flat []float32, dim, i, j, m int) {
	for r := 0; r < m; r++ {
		copy(flat[(i*m+r)*dim+j*m:(i*m+r)*dim+j*m+m], src[r*m:r*m+m])
	}
}

// Clone deep-copies the hyper-matrix (nil blocks stay nil).
func (h *Matrix) Clone() *Matrix {
	c := NewSparse(h.N, h.M)
	for i := range h.Blocks {
		for j := range h.Blocks[i] {
			if b := h.Blocks[i][j]; b != nil {
				nb := make([]float32, len(b))
				copy(nb, b)
				c.Blocks[i][j] = nb
			}
		}
	}
	return c
}
