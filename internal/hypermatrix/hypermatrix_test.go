package hypermatrix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/kernels"
)

func TestFlatRoundTrip(t *testing.T) {
	n, m := 3, 4
	flat := kernels.GenMatrix(n*m, 1)
	h := FromFlat(flat, n, m)
	back := h.ToFlat()
	if d := kernels.MaxAbsDiff(flat, back); d != 0 {
		t.Fatalf("round trip changed contents by %g", d)
	}
}

func TestFromFlatRejectsBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("FromFlat must panic on shape mismatch")
		}
	}()
	FromFlat(make([]float32, 10), 2, 2)
}

func TestAtSetAcrossBlocks(t *testing.T) {
	h := NewSparse(3, 4)
	if h.At(5, 7) != 0 {
		t.Fatalf("nil block must read as zero")
	}
	h.Set(5, 7, 2.5)
	if h.At(5, 7) != 2.5 {
		t.Fatalf("Set/At mismatch")
	}
	if h.NonZeroBlocks() != 1 {
		t.Fatalf("NonZeroBlocks = %d, want 1", h.NonZeroBlocks())
	}
	// The containing block is (1,1); a neighbor stays nil.
	if h.Block(0, 0) != nil || h.Block(1, 1) == nil {
		t.Fatalf("wrong block allocated")
	}
}

func TestEnsureBlockIdempotent(t *testing.T) {
	h := NewSparse(2, 2)
	b1 := h.EnsureBlock(0, 1)
	b1[0] = 9
	b2 := h.EnsureBlock(0, 1)
	if &b1[0] != &b2[0] {
		t.Fatalf("EnsureBlock must not reallocate")
	}
}

func TestBlockCopyHelpersMatchAtSemantics(t *testing.T) {
	n, m := 2, 3
	dim := n * m
	flat := kernels.GenMatrix(dim, 3)
	dst := make([]float32, m*m)
	CopyBlockFromFlat(flat, dim, 1, 0, m, dst)
	for r := 0; r < m; r++ {
		for c := 0; c < m; c++ {
			if dst[r*m+c] != flat[(m+r)*dim+c] {
				t.Fatalf("block copy wrong at (%d,%d)", r, c)
			}
		}
	}
	out := make([]float32, dim*dim)
	CopyBlockToFlat(dst, out, dim, 1, 0, m)
	for r := 0; r < m; r++ {
		for c := 0; c < m; c++ {
			if out[(m+r)*dim+c] != dst[r*m+c] {
				t.Fatalf("block paste wrong at (%d,%d)", r, c)
			}
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	h := New(2, 2)
	h.Set(0, 0, 5)
	c := h.Clone()
	c.Set(0, 0, 7)
	if h.At(0, 0) != 5 {
		t.Fatalf("Clone shares storage")
	}
	s := NewSparse(2, 2)
	s.Set(3, 3, 1)
	sc := s.Clone()
	if sc.Block(0, 0) != nil {
		t.Fatalf("Clone must keep nil blocks nil")
	}
	if sc.At(3, 3) != 1 {
		t.Fatalf("Clone lost sparse contents")
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: FromFlat → ToFlat is the identity for any n, m, seed.
	f := func(rawN, rawM uint8, seed int64) bool {
		n := int(rawN%4) + 1
		m := int(rawM%5) + 1
		flat := kernels.GenMatrix(n*m, seed)
		return kernels.MaxAbsDiff(flat, FromFlat(flat, n, m).ToFlat()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAtAgainstFlatProperty(t *testing.T) {
	// Property: h.At(r, c) equals the flat element for random positions.
	n, m := 4, 5
	flat := kernels.GenMatrix(n*m, 11)
	h := FromFlat(flat, n, m)
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		r, c := rng.Intn(n*m), rng.Intn(n*m)
		if h.At(r, c) != flat[r*n*m+c] {
			t.Fatalf("At(%d,%d) = %v, want %v", r, c, h.At(r, c), flat[r*n*m+c])
		}
	}
}
