// Package graph implements the dynamic task dependency graph at the heart
// of the SMPSs runtime.
//
// Whenever the application calls a task, the runtime adds a node to the
// graph together with edges encoding its true (read-after-write)
// dependencies on earlier tasks.  Nodes whose dependency count drops to
// zero are reported through a readiness callback, tagged with the identity
// of the worker whose task completion released them; the scheduler uses
// that tag to place the task on the releasing worker's own ready list,
// which is how SMPSs exploits data locality (paper §III).
//
// The graph retains completed nodes only while a Recorder is attached
// (used to reproduce Fig. 5 of the paper); in normal operation nodes are
// dropped as soon as they complete so arbitrarily long programs run in
// bounded memory.
package graph

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// NodeState enumerates the lifecycle of a task node.
type NodeState int32

// Lifecycle states of a node.  A node moves strictly forward:
// Building → Ready → Running → Done.
const (
	// StateBuilding means the node is still being analyzed; edges may be
	// added and the node must not be scheduled yet.
	StateBuilding NodeState = iota
	// StateReady means all input dependencies are satisfied and the node
	// is queued (or about to be queued) for execution.
	StateReady
	// StateRunning means a worker is executing the task body.
	StateRunning
	// StateDone means the task finished and its outgoing edges have been
	// released.
	StateDone
)

// String returns a short human-readable state name.
func (s NodeState) String() string {
	switch s {
	case StateBuilding:
		return "building"
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// MainThread is the worker identity used for tasks that become ready at
// submission time (on the main thread) rather than by a worker completing
// one of their predecessors.
const MainThread = -1

// Node is one task instance in the dependency graph.
type Node struct {
	// ID is the task's invocation order, starting at 1 like the node
	// numbering of Fig. 5 in the paper.
	ID int64
	// Kind identifies the task definition (used to color Fig. 5 and to
	// aggregate per-task-type statistics).
	Kind int
	// Label is the task definition name, e.g. "spotrf_t".
	Label string
	// Priority marks the task as highpriority (paper §II): it is
	// scheduled as soon as possible, bypassing locality lists.
	Priority bool
	// Payload carries the runtime's task record (argument bindings,
	// function pointer).  The graph never inspects it.
	Payload any

	// pending counts unsatisfied input dependencies.  The extra +1 held
	// during construction prevents a concurrent completion from firing
	// the readiness callback before analysis has finished.
	pending atomic.Int32
	state   atomic.Int32
	// poisoned marks the node as tainted by an upstream failure: its
	// inputs may be garbage, so the executor must skip the task body
	// (while still completing the node, so edges, observers and memory
	// bookkeeping drain normally).  Set on the node itself when its body
	// fails, and propagated to successors by complete.
	poisoned atomic.Bool

	// executedBy records, biased by +1 so the zero value means "not
	// executed", the worker identity that completed the task.  It is
	// written by Complete immediately before the Done state store, so
	// any thread that observes Done also observes the worker id — the
	// dependency tracker reads it to compute affinity hints.
	executedBy int32
	// affinity is the scheduler placement hint, biased by +1 so the
	// zero value means "no hint": the worker that last wrote one of the
	// task's operands.  Written by the submitting thread during
	// analysis (before Seal) and read by the scheduling policy when the
	// node becomes ready.
	affinity int32

	mu    sync.Mutex
	succs []*Node
	// hooks are the completion observers registered with OnComplete,
	// fired exactly once by Complete.
	hooks []func()
	// npred is the total number of incoming true-dependency edges ever
	// added (for statistics and DOT export of in-degree).
	npred int32
}

// State returns the node's current lifecycle state.
func (n *Node) State() NodeState { return NodeState(n.state.Load()) }

// Done reports whether the task has completed.
func (n *Node) Done() bool { return n.State() == StateDone }

// NumPredecessors returns the number of true-dependency edges into the node.
func (n *Node) NumPredecessors() int { return int(atomic.LoadInt32(&n.npred)) }

// ExecutedBy returns the worker identity that completed the task, or
// MainThread if the task has not completed.  Meaningful only after
// Done() reports true.
func (n *Node) ExecutedBy() int { return int(n.executedBy) - 1 }

// SetAffinity records a scheduler placement hint: the worker whose
// cache plausibly holds the task's operands.  Must be called before
// Seal (the hint is published by the node's readiness transition).
func (n *Node) SetAffinity(worker int) {
	if worker >= 0 {
		n.affinity = int32(worker) + 1
	}
}

// Affinity returns the placement hint set by SetAffinity, or -1.
func (n *Node) Affinity() int { return int(n.affinity) - 1 }

// MarkPoisoned taints the node: the runtime calls it when the task's
// body fails (under a poisoning failure policy) or when its tenant is
// canceled, and Complete then spreads the taint to every successor the
// completion releases.
func (n *Node) MarkPoisoned() { n.poisoned.Store(true) }

// Poisoned reports whether the node was tainted by MarkPoisoned or by
// the completion of a poisoned predecessor.
func (n *Node) Poisoned() bool { return n.poisoned.Load() }

// OnComplete registers a completion observer: f runs exactly once, after
// the node transitions to Done and its successors have been released.
// The dependency tracker uses observers to count down version reference
// counts the moment a consumer finishes, instead of rediscovering
// completions with shard-wide Done() scans.  If the node has already
// completed, f runs immediately on the calling goroutine.  Observers run
// on the completing worker's goroutine and must not block.
func (n *Node) OnComplete(f func()) {
	n.mu.Lock()
	if n.Done() {
		n.mu.Unlock()
		f()
		return
	}
	n.hooks = append(n.hooks, f)
	n.mu.Unlock()
}

// Graph is a dynamic task dependency graph.
//
// The submitting (main) thread adds nodes and edges; worker threads
// complete nodes concurrently.  All cross-thread coordination happens via
// per-node atomics plus a short critical section per edge endpoint.
type Graph struct {
	nextID  atomic.Int64
	open    atomic.Int64 // nodes added but not yet completed
	added   atomic.Int64
	edges   atomic.Int64
	readyCB func(n *Node, releasedBy int)

	recMu sync.Mutex
	rec   *Recorder
}

// New creates a graph.  ready is invoked exactly once per node when its
// last input dependency is satisfied; releasedBy identifies the worker
// whose completion released the node, or MainThread if the node was ready
// at submission.  ready may be invoked from any thread and must not block.
func New(ready func(n *Node, releasedBy int)) *Graph {
	if ready == nil {
		panic("graph: nil ready callback")
	}
	return &Graph{readyCB: ready}
}

// Open returns the number of nodes that have been added but have not yet
// completed.  The runtime uses it to throttle the main thread when the
// graph grows past its configured limit (paper §III: "a graph size limit").
func (g *Graph) Open() int64 { return g.open.Load() }

// Added returns the total number of nodes ever added.
func (g *Graph) Added() int64 { return g.added.Load() }

// Edges returns the total number of true-dependency edges ever added.
func (g *Graph) Edges() int64 { return g.edges.Load() }

// AddNode creates a node in the Building state.  The caller must add all
// edges with AddEdge and then call Seal exactly once.
func (g *Graph) AddNode(kind int, label string, priority bool, payload any) *Node {
	n := &Node{
		ID:       g.nextID.Add(1),
		Kind:     kind,
		Label:    label,
		Priority: priority,
		Payload:  payload,
	}
	n.pending.Store(1) // construction hold
	g.open.Add(1)
	g.added.Add(1)
	g.recMu.Lock()
	if g.rec != nil {
		g.rec.addNode(n)
	}
	g.recMu.Unlock()
	return n
}

// AddEdge records a true dependency from → to: "to" may not start until
// "from" completes.  If "from" has already completed the edge is a no-op
// (beyond statistics).  "to" must still be in the Building state.
func (g *Graph) AddEdge(from, to *Node) {
	if from == to {
		return
	}
	// Count the dependency before publishing the edge: once "to" is in
	// from.succs, a concurrent Complete(from) may decrement to.pending at
	// any moment, and it must never observe the count without this edge.
	// "to" is still under construction (its hold is in place), so the
	// rollback below can never drop pending to zero.
	to.pending.Add(1)
	from.mu.Lock()
	if from.Done() {
		from.mu.Unlock()
		to.pending.Add(-1)
		return
	}
	from.succs = append(from.succs, to)
	from.mu.Unlock()

	atomic.AddInt32(&to.npred, 1)
	g.edges.Add(1)

	g.recMu.Lock()
	if g.rec != nil {
		g.rec.addEdge(from.ID, to.ID)
	}
	g.recMu.Unlock()
}

// Seal ends the construction of n.  If no incomplete predecessors remain,
// the readiness callback fires on the calling (main) thread with
// releasedBy = MainThread.
func (g *Graph) Seal(n *Node) {
	if n.pending.Add(-1) == 0 {
		g.fireReady(n, MainThread)
	}
}

func (g *Graph) fireReady(n *Node, by int) {
	n.state.Store(int32(StateReady))
	g.readyCB(n, by)
}

// MarkRunning transitions a node from Ready to Running.
func (g *Graph) MarkRunning(n *Node) { n.state.Store(int32(StateRunning)) }

// Complete marks n done and releases its successors.  Successors whose
// dependency count reaches zero fire the readiness callback with
// releasedBy = worker, implementing the SMPSs policy that a task made
// ready by a worker lands on that worker's own ready list.
func (g *Graph) Complete(n *Node, worker int) {
	g.complete(n, worker, false)
}

// CompleteChain is Complete for a worker prepared to run one released
// successor inline (the scheduler's successor chaining).  When the
// completion releases exactly one successor and it is not
// high-priority, that node is returned in the Ready state *without*
// firing the readiness callback: it never enters a queue, so no thief
// can ever claim it, and the caller must execute it.  In every other
// case (zero released, several released, or a high-priority successor)
// it behaves exactly like Complete and returns nil.
func (g *Graph) CompleteChain(n *Node, worker int) *Node {
	return g.complete(n, worker, true)
}

func (g *Graph) complete(n *Node, worker int, chain bool) *Node {
	// Publish the executing worker before the Done store: a reader that
	// observes Done (the tracker's affinity-hint probe) is guaranteed to
	// see the worker id.
	n.executedBy = int32(worker) + 1
	n.mu.Lock()
	n.state.Store(int32(StateDone))
	succs := n.succs
	hooks := n.hooks
	n.succs, n.hooks = nil, nil
	n.mu.Unlock()

	// kept is the candidate for inline chaining: the first non-priority
	// successor this completion released, withheld from the readiness
	// callback until a second release proves the completion fans out.
	poison := n.poisoned.Load()
	var kept *Node
	for _, s := range succs {
		// Taint before the decrement: whoever's decrement reaches zero
		// (this thread or a concurrent predecessor's) fires readiness
		// after this store, so the executor always observes the poison.
		if poison {
			s.poisoned.Store(true)
		}
		if s.pending.Add(-1) != 0 {
			continue
		}
		if chain && kept == nil && !s.Priority {
			kept = s
			continue
		}
		if kept != nil {
			// A second successor became ready: chaining would hide
			// parallelism, so both go to the scheduler.
			g.fireReady(kept, worker)
			kept = nil
		}
		chain = false
		g.fireReady(s, worker)
	}
	if kept != nil {
		kept.state.Store(int32(StateReady))
	}
	// Observers fire after successors are released: dependents launch
	// first, memory bookkeeping second.
	for _, f := range hooks {
		f()
	}
	n.Payload = nil
	g.open.Add(-1)
	return kept
}
