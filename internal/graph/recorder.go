package graph

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Recorder retains the full structure of a graph (nodes and edges) so it
// can be exported after execution.  It reproduces the information shown in
// Fig. 5 of the paper: one node per task invocation, numbered in
// invocation order, colored by task kind, with edges for true
// dependencies only.
//
// Recording is optional and off by default because a long-running program
// generates an unbounded number of tasks.
type Recorder struct {
	nodes []recNode
	edges []recEdge
}

type recNode struct {
	id    int64
	kind  int
	label string
	prio  bool
}

type recEdge struct{ from, to int64 }

// Attach starts recording every subsequently added node and edge.
// It must be called before any tasks are submitted.
func (g *Graph) Attach(r *Recorder) {
	g.recMu.Lock()
	g.rec = r
	g.recMu.Unlock()
}

// Detach stops recording and returns the recorder.
func (g *Graph) Detach() *Recorder {
	g.recMu.Lock()
	r := g.rec
	g.rec = nil
	g.recMu.Unlock()
	return r
}

func (r *Recorder) addNode(n *Node) {
	r.nodes = append(r.nodes, recNode{id: n.ID, kind: n.Kind, label: n.Label, prio: n.Priority})
}

func (r *Recorder) addEdge(from, to int64) {
	r.edges = append(r.edges, recEdge{from: from, to: to})
}

// NumNodes returns the number of recorded task instances.
func (r *Recorder) NumNodes() int { return len(r.nodes) }

// NumEdges returns the number of recorded true-dependency edges.
func (r *Recorder) NumEdges() int { return len(r.edges) }

// KindCounts returns, per task label, the number of recorded instances.
func (r *Recorder) KindCounts() map[string]int {
	m := make(map[string]int)
	for _, n := range r.nodes {
		m[n.label]++
	}
	return m
}

// Roots returns the IDs of recorded nodes that have no incoming edges,
// i.e. the tasks that were ready the moment they were submitted.
func (r *Recorder) Roots() []int64 {
	hasPred := make(map[int64]bool, len(r.nodes))
	for _, e := range r.edges {
		hasPred[e.to] = true
	}
	var roots []int64
	for _, n := range r.nodes {
		if !hasPred[n.id] {
			roots = append(roots, n.id)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	return roots
}

// ReadyAfter returns, sorted by ID, the recorded tasks outside the done
// set whose predecessors are all inside it: the tasks that could start
// the moment exactly that set has completed.  It reproduces observations
// like the paper's §IV note that after running tasks 1 and 6 of the 6×6
// Cholesky graph, task 51 can start.
func (r *Recorder) ReadyAfter(done map[int64]bool) []int64 {
	blocked := make(map[int64]bool)
	for _, e := range r.edges {
		if !done[e.from] {
			blocked[e.to] = true
		}
	}
	var ready []int64
	for _, n := range r.nodes {
		if !done[n.id] && !blocked[n.id] {
			ready = append(ready, n.id)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	return ready
}

// CriticalPathLength returns the number of nodes on the longest dependency
// chain.  For the 6×6 Cholesky of Fig. 5 this is the depth of the graph;
// it bounds the achievable parallelism.
func (r *Recorder) CriticalPathLength() int {
	succ := make(map[int64][]int64, len(r.nodes))
	indeg := make(map[int64]int, len(r.nodes))
	for _, n := range r.nodes {
		indeg[n.id] = 0
	}
	for _, e := range r.edges {
		succ[e.from] = append(succ[e.from], e.to)
		indeg[e.to]++
	}
	depth := make(map[int64]int, len(r.nodes))
	var queue []int64
	for id, d := range indeg {
		if d == 0 {
			queue = append(queue, id)
			depth[id] = 1
		}
	}
	best := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if depth[id] > best {
			best = depth[id]
		}
		for _, s := range succ[id] {
			if depth[id]+1 > depth[s] {
				depth[s] = depth[id] + 1
			}
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	return best
}

// dotPalette maps task kinds to the fill colors used when rendering the
// graph, cycling if there are more kinds than colors.
var dotPalette = []string{
	"#e6550d", "#3182bd", "#31a354", "#756bb1", "#fdae6b",
	"#9ecae1", "#a1d99b", "#bcbddc", "#d62728", "#8c564b",
}

// WriteDOT renders the recorded graph in Graphviz DOT format, one node
// per task numbered by invocation order and colored by task kind, with
// edges for true dependencies — the same presentation as Fig. 5.
func (r *Recorder) WriteDOT(w io.Writer, title string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=TB;\n  node [style=filled, fontname=\"Helvetica\"];\n")

	// Emit a legend-friendly stable kind→color assignment in order of
	// first appearance.
	colorOf := make(map[int]string)
	for _, n := range r.nodes {
		if _, ok := colorOf[n.kind]; !ok {
			colorOf[n.kind] = dotPalette[len(colorOf)%len(dotPalette)]
		}
	}
	for _, n := range r.nodes {
		shape := "ellipse"
		if n.prio {
			shape = "doubleoctagon"
		}
		fmt.Fprintf(&b, "  n%d [label=\"%d\", tooltip=%q, fillcolor=%q, shape=%s];\n",
			n.id, n.id, n.label, colorOf[n.kind], shape)
	}
	for _, e := range r.edges {
		fmt.Fprintf(&b, "  n%d -> n%d;\n", e.from, e.to)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
