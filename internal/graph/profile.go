package graph

import (
	"fmt"
	"io"
)

// Profile is the level-by-level parallelism structure of a recorded
// graph: nodes grouped by dependency depth.  Width[d] is the number of
// tasks whose longest chain from a root has d+1 nodes — the tasks an
// ideal machine with unlimited cores could run in step d.  The profile
// quantifies what a figure like the paper's Fig. 5 shows visually: how
// wide the graph is, where it narrows, and the best speedup any
// scheduler could extract.
type Profile struct {
	// Width[d] is the number of tasks at depth d (0-based).
	Width []int
	// Tasks is the total task count.
	Tasks int
}

// CriticalPath returns the number of levels (the longest chain).
func (p *Profile) CriticalPath() int { return len(p.Width) }

// MaxWidth returns the widest level.
func (p *Profile) MaxWidth() int {
	best := 0
	for _, w := range p.Width {
		if w > best {
			best = w
		}
	}
	return best
}

// AvgParallelism returns tasks / critical path: the speedup an unlimited
// machine achieves when every task costs the same.
func (p *Profile) AvgParallelism() float64 {
	if len(p.Width) == 0 {
		return 0
	}
	return float64(p.Tasks) / float64(len(p.Width))
}

// ParallelismProfile computes the depth histogram of the recorded graph.
func (r *Recorder) ParallelismProfile() *Profile {
	succ := make(map[int64][]int64, len(r.nodes))
	indeg := make(map[int64]int, len(r.nodes))
	for _, n := range r.nodes {
		indeg[n.id] = 0
	}
	for _, e := range r.edges {
		succ[e.from] = append(succ[e.from], e.to)
		indeg[e.to]++
	}
	depth := make(map[int64]int, len(r.nodes))
	var queue []int64
	for _, n := range r.nodes {
		if indeg[n.id] == 0 {
			queue = append(queue, n.id)
			depth[n.id] = 0
		}
	}
	p := &Profile{Tasks: len(r.nodes)}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		d := depth[id]
		for len(p.Width) <= d {
			p.Width = append(p.Width, 0)
		}
		p.Width[d]++
		for _, s := range succ[id] {
			if d+1 > depth[s] {
				depth[s] = d + 1
			}
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	return p
}

// WriteProfile renders the profile as a fixed-width histogram, one row
// per level, with a proportional bar.
func (p *Profile) WriteProfile(w io.Writer) {
	max := p.MaxWidth()
	if max == 0 {
		fmt.Fprintln(w, "empty graph")
		return
	}
	const barWidth = 50
	fmt.Fprintf(w, "levels %d, tasks %d, max width %d, avg parallelism %.1f\n",
		p.CriticalPath(), p.Tasks, max, p.AvgParallelism())
	for d, width := range p.Width {
		bar := width * barWidth / max
		fmt.Fprintf(w, "%4d %6d |%s\n", d, width, bars(bar))
	}
}

func bars(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}
