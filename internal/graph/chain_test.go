package graph

import (
	"testing"
)

// chainHarness builds a graph whose readiness callback logs node IDs,
// for the successor-chaining contract tests.
type chainHarness struct {
	g     *Graph
	fired []int64
}

func newChainHarness() *chainHarness {
	h := &chainHarness{}
	h.g = New(func(n *Node, by int) { h.fired = append(h.fired, n.ID) })
	return h
}

func (h *chainHarness) node(prio bool, preds ...*Node) *Node {
	n := h.g.AddNode(0, "t", prio, nil)
	for _, p := range preds {
		h.g.AddEdge(p, n)
	}
	h.g.Seal(n)
	return n
}

func (h *chainHarness) firedID(id int64) bool {
	for _, f := range h.fired {
		if f == id {
			return true
		}
	}
	return false
}

// TestCompleteChainExactlyOne pins the chaining contract: a completion
// that releases exactly one non-priority successor returns it in the
// Ready state without firing the readiness callback — the task never
// enters a queue, so no thief can observe it.
func TestCompleteChainExactlyOne(t *testing.T) {
	h := newChainHarness()
	a := h.node(false)
	b := h.node(false, a)
	h.fired = nil
	got := h.g.CompleteChain(a, 3)
	if got != b {
		t.Fatalf("CompleteChain = %v, want successor b", got)
	}
	if b.State() != StateReady {
		t.Fatalf("chained successor state = %v, want ready", b.State())
	}
	if h.firedID(b.ID) {
		t.Fatalf("chained successor must bypass the readiness callback")
	}
	if a.ExecutedBy() != 3 {
		t.Fatalf("ExecutedBy = %d, want 3", a.ExecutedBy())
	}
}

// TestCompleteChainFanOut: releasing two successors means real
// parallelism is available — both must go to the scheduler.
func TestCompleteChainFanOut(t *testing.T) {
	h := newChainHarness()
	a := h.node(false)
	b := h.node(false, a)
	c := h.node(false, a)
	h.fired = nil
	if got := h.g.CompleteChain(a, 0); got != nil {
		t.Fatalf("fan-out completion chained %v, want nil", got)
	}
	if !h.firedID(b.ID) || !h.firedID(c.ID) {
		t.Fatalf("fan-out successors not both released: fired %v", h.fired)
	}
}

// TestCompleteChainSkipsPriority: a high-priority successor must reach
// the scheduler's high-priority lane, never an inline chain.
func TestCompleteChainSkipsPriority(t *testing.T) {
	h := newChainHarness()
	a := h.node(false)
	b := h.node(true, a)
	h.fired = nil
	if got := h.g.CompleteChain(a, 0); got != nil {
		t.Fatalf("priority successor chained as %v, want nil", got)
	}
	if !h.firedID(b.ID) {
		t.Fatalf("priority successor was not released to the scheduler")
	}
}

// TestCompleteChainSuccessorStillPending: a successor with another
// incomplete predecessor is not released, so nothing chains.
func TestCompleteChainSuccessorStillPending(t *testing.T) {
	h := newChainHarness()
	a := h.node(false)
	other := h.node(false)
	b := h.node(false, a, other)
	if got := h.g.CompleteChain(a, 0); got != nil {
		t.Fatalf("pending successor chained as %v, want nil", got)
	}
	if h.firedID(b.ID) {
		t.Fatalf("successor released with a predecessor still pending")
	}
	// The remaining predecessor's completion may chain it.
	if got := h.g.CompleteChain(other, 1); got != b {
		t.Fatalf("final predecessor did not chain the successor: %v", got)
	}
}

// TestAffinityZeroValue pins the bias encoding: a zero-value Node (the
// scheduler tests build literals) carries no hint, and SetAffinity
// round-trips worker identities including 0.
func TestAffinityZeroValue(t *testing.T) {
	var n Node
	if got := n.Affinity(); got != -1 {
		t.Fatalf("zero-value affinity = %d, want -1", got)
	}
	if got := n.ExecutedBy(); got != -1 {
		t.Fatalf("zero-value executedBy = %d, want -1", got)
	}
	n.SetAffinity(0)
	if got := n.Affinity(); got != 0 {
		t.Fatalf("affinity after SetAffinity(0) = %d, want 0", got)
	}
	n.SetAffinity(-1) // no-op: negative identities are "no hint"
	if got := n.Affinity(); got != 0 {
		t.Fatalf("SetAffinity(-1) overwrote the hint: %d", got)
	}
}
