package graph

import (
	"strings"
	"testing"
)

// buildRecorded constructs a graph with a recorder and returns both plus
// a completion sink so edges to completed nodes can be exercised.
func buildRecorded(t *testing.T) (*Graph, *Recorder) {
	t.Helper()
	g := New(func(n *Node, by int) {})
	rec := &Recorder{}
	g.Attach(rec)
	return g, rec
}

// TestProfileChain: a pure chain has width 1 at every level.
func TestProfileChain(t *testing.T) {
	g, rec := buildRecorded(t)
	var prev *Node
	for i := 0; i < 5; i++ {
		n := g.AddNode(0, "link", false, nil)
		if prev != nil {
			g.AddEdge(prev, n)
		}
		g.Seal(n)
		prev = n
	}
	p := rec.ParallelismProfile()
	if p.CriticalPath() != 5 || p.Tasks != 5 || p.MaxWidth() != 1 {
		t.Fatalf("chain profile = %+v", p)
	}
	if p.AvgParallelism() != 1 {
		t.Fatalf("chain avg parallelism = %g", p.AvgParallelism())
	}
}

// TestProfileFanOut: a root with k children has widths [1, k].
func TestProfileFanOut(t *testing.T) {
	g, rec := buildRecorded(t)
	root := g.AddNode(0, "root", false, nil)
	g.Seal(root)
	for i := 0; i < 7; i++ {
		c := g.AddNode(0, "leaf", false, nil)
		g.AddEdge(root, c)
		g.Seal(c)
	}
	p := rec.ParallelismProfile()
	if p.CriticalPath() != 2 || p.Width[0] != 1 || p.Width[1] != 7 {
		t.Fatalf("fan-out profile = %+v", p)
	}
	if p.AvgParallelism() != 4 {
		t.Fatalf("avg parallelism = %g, want 4", p.AvgParallelism())
	}
}

// TestProfileDiamond: diamond dependencies place the join at depth 2.
func TestProfileDiamond(t *testing.T) {
	g, rec := buildRecorded(t)
	a := g.AddNode(0, "a", false, nil)
	g.Seal(a)
	b := g.AddNode(0, "b", false, nil)
	g.AddEdge(a, b)
	g.Seal(b)
	c := g.AddNode(0, "c", false, nil)
	g.AddEdge(a, c)
	g.Seal(c)
	d := g.AddNode(0, "d", false, nil)
	g.AddEdge(b, d)
	g.AddEdge(c, d)
	g.Seal(d)
	p := rec.ParallelismProfile()
	want := []int{1, 2, 1}
	if len(p.Width) != len(want) {
		t.Fatalf("diamond widths = %v", p.Width)
	}
	for i := range want {
		if p.Width[i] != want[i] {
			t.Fatalf("diamond widths = %v, want %v", p.Width, want)
		}
	}
}

// TestProfileMatchesCriticalPathLength: the two depth computations must
// agree on any graph.
func TestProfileMatchesCriticalPathLength(t *testing.T) {
	g, rec := buildRecorded(t)
	var nodes []*Node
	for i := 0; i < 40; i++ {
		n := g.AddNode(0, "n", false, nil)
		for j := range nodes {
			if (i+j)%7 == 0 {
				g.AddEdge(nodes[j], n)
			}
		}
		g.Seal(n)
		nodes = append(nodes, n)
	}
	p := rec.ParallelismProfile()
	if p.CriticalPath() != rec.CriticalPathLength() {
		t.Fatalf("profile depth %d != critical path %d", p.CriticalPath(), rec.CriticalPathLength())
	}
	total := 0
	for _, w := range p.Width {
		total += w
	}
	if total != p.Tasks || total != 40 {
		t.Fatalf("profile loses tasks: %d of %d", total, p.Tasks)
	}
}

// TestWriteProfile renders without error and contains the summary line.
func TestWriteProfile(t *testing.T) {
	g, rec := buildRecorded(t)
	a := g.AddNode(0, "a", false, nil)
	g.Seal(a)
	b := g.AddNode(0, "b", false, nil)
	g.AddEdge(a, b)
	g.Seal(b)
	var sb strings.Builder
	rec.ParallelismProfile().WriteProfile(&sb)
	if !strings.Contains(sb.String(), "levels 2, tasks 2") {
		t.Fatalf("profile output:\n%s", sb.String())
	}
	var empty strings.Builder
	(&Profile{}).WriteProfile(&empty)
	if !strings.Contains(empty.String(), "empty graph") {
		t.Fatalf("empty profile output: %q", empty.String())
	}
}
