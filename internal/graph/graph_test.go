package graph

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// collectReady returns a graph plus a thread-safe log of (node, releasedBy)
// readiness events.
func collectReady() (*Graph, *readyLog) {
	log := &readyLog{by: make(map[int64]int)}
	g := New(func(n *Node, by int) {
		log.mu.Lock()
		log.order = append(log.order, n.ID)
		log.by[n.ID] = by
		log.mu.Unlock()
	})
	return g, log
}

type readyLog struct {
	mu    sync.Mutex
	order []int64
	by    map[int64]int
}

func (l *readyLog) has(id int64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, x := range l.order {
		if x == id {
			return true
		}
	}
	return false
}

func (l *readyLog) releasedBy(id int64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.by[id]
}

func (l *readyLog) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.order)
}

func TestNodeWithoutDepsReadyAtSeal(t *testing.T) {
	g, log := collectReady()
	n := g.AddNode(0, "t", false, nil)
	if log.len() != 0 {
		t.Fatalf("node fired ready before Seal")
	}
	g.Seal(n)
	if !log.has(n.ID) {
		t.Fatalf("sealed node with no deps not reported ready")
	}
	if by := log.releasedBy(n.ID); by != MainThread {
		t.Fatalf("releasedBy = %d, want MainThread", by)
	}
	if n.State() != StateReady {
		t.Fatalf("state = %v, want ready", n.State())
	}
}

func TestEdgeDefersReadiness(t *testing.T) {
	g, log := collectReady()
	a := g.AddNode(0, "a", false, nil)
	g.Seal(a)
	b := g.AddNode(0, "b", false, nil)
	g.AddEdge(a, b)
	g.Seal(b)
	if log.has(b.ID) {
		t.Fatalf("b ready before its predecessor completed")
	}
	g.Complete(a, 3)
	if !log.has(b.ID) {
		t.Fatalf("b not ready after predecessor completed")
	}
	if by := log.releasedBy(b.ID); by != 3 {
		t.Fatalf("releasedBy = %d, want 3 (the completing worker)", by)
	}
}

func TestEdgeFromCompletedNodeIsNoOp(t *testing.T) {
	g, log := collectReady()
	a := g.AddNode(0, "a", false, nil)
	g.Seal(a)
	g.Complete(a, 0)
	b := g.AddNode(0, "b", false, nil)
	g.AddEdge(a, b)
	g.Seal(b)
	if !log.has(b.ID) {
		t.Fatalf("edge from done node must not block successor")
	}
}

func TestSelfEdgeIgnored(t *testing.T) {
	g, log := collectReady()
	a := g.AddNode(0, "a", false, nil)
	g.AddEdge(a, a)
	g.Seal(a)
	if !log.has(a.ID) {
		t.Fatalf("self edge must be ignored")
	}
}

func TestDiamondDependency(t *testing.T) {
	g, log := collectReady()
	// a → b, a → c, b → d, c → d
	a := g.AddNode(0, "a", false, nil)
	g.Seal(a)
	b := g.AddNode(0, "b", false, nil)
	g.AddEdge(a, b)
	g.Seal(b)
	c := g.AddNode(0, "c", false, nil)
	g.AddEdge(a, c)
	g.Seal(c)
	d := g.AddNode(0, "d", false, nil)
	g.AddEdge(b, d)
	g.AddEdge(c, d)
	g.Seal(d)

	g.Complete(a, 0)
	if !log.has(b.ID) || !log.has(c.ID) {
		t.Fatalf("b,c should be ready after a")
	}
	if log.has(d.ID) {
		t.Fatalf("d ready too early")
	}
	g.Complete(b, 1)
	if log.has(d.ID) {
		t.Fatalf("d ready with one pending predecessor")
	}
	g.Complete(c, 2)
	if !log.has(d.ID) {
		t.Fatalf("d not ready after both predecessors")
	}
	if by := log.releasedBy(d.ID); by != 2 {
		t.Fatalf("d released by %d, want 2 (last completer)", by)
	}
}

func TestOpenCount(t *testing.T) {
	g, _ := collectReady()
	a := g.AddNode(0, "a", false, nil)
	g.Seal(a)
	b := g.AddNode(0, "b", false, nil)
	g.Seal(b)
	if g.Open() != 2 {
		t.Fatalf("Open = %d, want 2", g.Open())
	}
	g.Complete(a, 0)
	if g.Open() != 1 {
		t.Fatalf("Open = %d, want 1", g.Open())
	}
	g.Complete(b, 0)
	if g.Open() != 0 {
		t.Fatalf("Open = %d, want 0", g.Open())
	}
	if g.Added() != 2 {
		t.Fatalf("Added = %d, want 2", g.Added())
	}
}

func TestIDsFollowInvocationOrder(t *testing.T) {
	g, _ := collectReady()
	for want := int64(1); want <= 5; want++ {
		n := g.AddNode(0, "t", false, nil)
		if n.ID != want {
			t.Fatalf("ID = %d, want %d", n.ID, want)
		}
		g.Seal(n)
	}
}

func TestConcurrentCompletionsReleaseOnce(t *testing.T) {
	// A node with many predecessors completed from many goroutines must
	// fire its readiness callback exactly once.
	const preds = 64
	var fired atomic.Int32
	g := New(func(n *Node, by int) { fired.Add(1) })
	sink := g.AddNode(0, "sink", false, nil)
	var ps []*Node
	for i := 0; i < preds; i++ {
		p := g.AddNode(0, "p", false, nil)
		g.Seal(p)
		g.AddEdge(p, sink)
		ps = append(ps, p)
	}
	g.Seal(sink)

	var wg sync.WaitGroup
	for i, p := range ps {
		wg.Add(1)
		go func(i int, p *Node) {
			defer wg.Done()
			g.Complete(p, i)
		}(i, p)
	}
	wg.Wait()
	// preds roots fired at Seal + sink once.
	if got := fired.Load(); got != preds+1 {
		t.Fatalf("ready fired %d times, want %d", got, preds+1)
	}
}

func TestRecorderCountsAndRoots(t *testing.T) {
	g, _ := collectReady()
	rec := &Recorder{}
	g.Attach(rec)
	a := g.AddNode(0, "alpha", false, nil)
	g.Seal(a)
	b := g.AddNode(1, "beta", true, nil)
	g.AddEdge(a, b)
	g.Seal(b)
	c := g.AddNode(0, "alpha", false, nil)
	g.AddEdge(b, c)
	g.Seal(c)
	g.Detach()
	// Node added after Detach must not be recorded.
	d := g.AddNode(0, "alpha", false, nil)
	g.Seal(d)

	if rec.NumNodes() != 3 || rec.NumEdges() != 2 {
		t.Fatalf("recorded %d nodes / %d edges, want 3 / 2", rec.NumNodes(), rec.NumEdges())
	}
	kc := rec.KindCounts()
	if kc["alpha"] != 2 || kc["beta"] != 1 {
		t.Fatalf("kind counts = %v", kc)
	}
	roots := rec.Roots()
	if len(roots) != 1 || roots[0] != a.ID {
		t.Fatalf("roots = %v, want [%d]", roots, a.ID)
	}
	if cpl := rec.CriticalPathLength(); cpl != 3 {
		t.Fatalf("critical path = %d, want 3", cpl)
	}
}

func TestRecorderDOT(t *testing.T) {
	g, _ := collectReady()
	rec := &Recorder{}
	g.Attach(rec)
	a := g.AddNode(0, "spotrf_t", false, nil)
	g.Seal(a)
	b := g.AddNode(1, "strsm_t", true, nil)
	g.AddEdge(a, b)
	g.Seal(b)

	var sb strings.Builder
	if err := rec.WriteDOT(&sb, "cholesky"); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	dot := sb.String()
	for _, want := range []string{"digraph \"cholesky\"", "n1 ", "n2 ", "n1 -> n2", "doubleoctagon", "spotrf_t"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestCriticalPathOfChainProperty(t *testing.T) {
	// Property: a pure chain of n tasks has critical path length n,
	// n-1 edges, and exactly one root.
	f := func(raw uint8) bool {
		n := int(raw%40) + 1
		g, _ := collectReady()
		rec := &Recorder{}
		g.Attach(rec)
		var prev *Node
		for i := 0; i < n; i++ {
			nd := g.AddNode(0, "t", false, nil)
			if prev != nil {
				g.AddEdge(prev, nd)
			}
			g.Seal(nd)
			prev = nd
		}
		return rec.CriticalPathLength() == n &&
			rec.NumEdges() == n-1 &&
			len(rec.Roots()) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStateString(t *testing.T) {
	cases := map[NodeState]string{
		StateBuilding: "building",
		StateReady:    "ready",
		StateRunning:  "running",
		StateDone:     "done",
		NodeState(9):  "state(9)",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestMarkRunning(t *testing.T) {
	g, _ := collectReady()
	n := g.AddNode(0, "t", false, nil)
	g.Seal(n)
	g.MarkRunning(n)
	if n.State() != StateRunning {
		t.Fatalf("state = %v, want running", n.State())
	}
	g.Complete(n, 0)
	if !n.Done() {
		t.Fatalf("node not done after Complete")
	}
}

func TestOnCompleteFiresOnce(t *testing.T) {
	g, _ := collectReady()
	n := g.AddNode(0, "t", false, nil)
	g.Seal(n)
	var fired atomic.Int32
	n.OnComplete(func() { fired.Add(1) })
	n.OnComplete(func() { fired.Add(1) })
	if fired.Load() != 0 {
		t.Fatalf("observer fired before completion")
	}
	g.Complete(n, 0)
	if fired.Load() != 2 {
		t.Fatalf("observers fired %d times, want 2", fired.Load())
	}
}

func TestOnCompleteAfterDoneRunsImmediately(t *testing.T) {
	g, _ := collectReady()
	n := g.AddNode(0, "t", false, nil)
	g.Seal(n)
	g.Complete(n, 0)
	fired := false
	n.OnComplete(func() { fired = true })
	if !fired {
		t.Fatalf("observer on a done node must run immediately")
	}
}

func TestOnCompleteRunsAfterSuccessorRelease(t *testing.T) {
	// Observers fire after successors are released, so a completion
	// hook observes the dependent already made ready.
	g, log := collectReady()
	a := g.AddNode(0, "a", false, nil)
	g.Seal(a)
	b := g.AddNode(0, "b", false, nil)
	g.AddEdge(a, b)
	g.Seal(b)
	sawReady := false
	a.OnComplete(func() { sawReady = log.has(b.ID) })
	g.Complete(a, 3)
	if !sawReady {
		t.Fatalf("observer must run after successors are released")
	}
}
