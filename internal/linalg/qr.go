package linalg

import (
	"repro/internal/core"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
)

// Tiled QR factorization — the third factorization of the paper's
// reference [10] (Buttari, Langou, Kurzak, Dongarra), expressed as an
// SMPSs task program.  Its dependency structure is richer than Cholesky's
// (each panel step couples the diagonal tile with every tile below it,
// serially, while the trailing updates of different columns proceed in
// parallel), which makes it a natural stress test for the runtime.
//
// The whole-block directionality declarations create one subtlety the
// renaming engine resolves elegantly: after Geqrt, the diagonal tile
// holds both R (upper) and the reflectors V (strictly lower).  The Unmqr
// tasks of the same step read V, while the Tsqrt chain keeps rewriting R
// in the same tile.  Declaring Tsqrt as inout(diag) would serialize Unmqr
// against the chain under a dependency-unaware model; under SMPSs the
// readers force a rename, the Tsqrt chain advances on fresh copies, and
// the Unmqr tasks keep reading the post-Geqrt version concurrently —
// automatic lookahead with no programmer copies, exactly the behaviour
// §II argues for.

// initQR declares the four QR tile tasks.  Called from New.
func (al *Algos) initQR() {
	m := al.m
	// The panel factorization tasks carry the highpriority clause: like
	// spotrf in Cholesky, they sit on the critical path and unlock whole
	// columns of trailing updates.
	al.sgeqrt = core.NewHighPriorityTaskDef("sgeqrt_t", func(a *core.Args) {
		kernels.Geqrt(a.F32(0), a.F32(1), m)
	})
	al.sunmqr = core.NewTaskDef("sunmqr_t", func(a *core.Args) {
		kernels.Unmqr(a.F32(0), a.F32(1), a.F32(2), m)
	})
	al.stsqrt = core.NewHighPriorityTaskDef("stsqrt_t", func(a *core.Args) {
		kernels.Tsqrt(a.F32(0), a.F32(1), a.F32(2), m)
	})
	al.stsmqr = core.NewTaskDef("stsmqr_t", func(a *core.Args) {
		kernels.Tsmqr(a.F32(0), a.F32(1), a.F32(2), a.F32(3), m)
	})
}

// QR factors the hyper-matrix A in place using the tiled Householder
// algorithm: on return (after a barrier) the upper triangle of A holds R
// and the tiles at and below the diagonal hold the block reflectors.  The
// returned hyper-matrix holds the T factors (T[k][k] from the diagonal
// factorizations, T[i][k] from the couplings) needed to apply Q or Qᵀ
// later with ApplyQT.
func (al *Algos) QR(a *hypermatrix.Matrix) *hypermatrix.Matrix {
	n, m := a.N, al.m
	t := hypermatrix.NewSparse(n, m)
	for k := 0; k < n; k++ {
		al.submit(al.sgeqrt, core.InOut(a.Blocks[k][k]), core.Out(t.EnsureBlock(k, k)))
		for j := k + 1; j < n; j++ {
			al.submit(al.sunmqr,
				core.In(a.Blocks[k][k]), core.In(t.Blocks[k][k]), core.InOut(a.Blocks[k][j]))
		}
		for i := k + 1; i < n; i++ {
			al.submit(al.stsqrt,
				core.InOut(a.Blocks[k][k]), core.InOut(a.Blocks[i][k]), core.Out(t.EnsureBlock(i, k)))
			for j := k + 1; j < n; j++ {
				al.submit(al.stsmqr,
					core.InOut(a.Blocks[k][j]), core.InOut(a.Blocks[i][j]),
					core.In(a.Blocks[i][k]), core.In(t.Blocks[i][k]))
			}
		}
	}
	return t
}

// ApplyQT applies Qᵀ from a completed QR factorization (factored tiles in
// a, T factors in t) to the hyper-matrix c in place: c := Qᵀ·c.  Applying
// it to the identity yields Qᵀ explicitly; applying it to the original
// matrix yields R.  The submission may overlap the tail of the
// factorization itself: the dependency tracker pipelines each step of the
// application behind the corresponding step of the factorization.
func (al *Algos) ApplyQT(a, t, c *hypermatrix.Matrix) {
	n := a.N
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			al.submit(al.sunmqr,
				core.In(a.Blocks[k][k]), core.In(t.Blocks[k][k]), core.InOut(c.Blocks[k][j]))
		}
		for i := k + 1; i < n; i++ {
			for j := 0; j < n; j++ {
				al.submit(al.stsmqr,
					core.InOut(c.Blocks[k][j]), core.InOut(c.Blocks[i][j]),
					core.In(a.Blocks[i][k]), core.In(t.Blocks[i][k]))
			}
		}
	}
}
