package linalg

import (
	"repro/internal/core"
	"repro/internal/hypermatrix"
)

// SolveLower submits a blocked forward substitution solving L·z = b in
// place of b, where L is the lower-triangular hyper-matrix produced by
// CholeskyDense and b is a blocked vector (n blocks of m elements):
//
//	for i: { for j < i: sgemv_t(L[i][j], b[j], b[i]) }  strsv_t(L[i][i], b[i])
//
// Submitted after CholeskyDense *without a barrier in between*, the
// solve consumes factor blocks as they become available — the §VII.D
// composition: "As the results of the factorization become available,
// the tasks of the second operation that consume them can be executed,
// recovering the parallelism lost as the execution reaches the bottom of
// the Cholesky graph."
func (al *Algos) SolveLower(l *hypermatrix.Matrix, b [][]float32) {
	m, p := al.m, al.p
	gemv := core.NewTaskDef("sgemv_t", func(a *core.Args) {
		p.Gemv(a.F32(0), a.F32(1), a.F32(2), m)
	})
	trsv := core.NewTaskDef("strsv_t", func(a *core.Args) {
		p.Trsv(a.F32(0), a.F32(1), m)
	})
	n := l.N
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			al.submit(gemv,
				core.In(l.Block(i, j)),
				core.In(b[j]),
				core.InOut(b[i]))
		}
		al.submit(trsv,
			core.In(l.Block(i, i)),
			core.InOut(b[i]))
	}
}

// BlockVector splits a flat vector of n·m elements into n blocks of m,
// copying the contents.
func BlockVector(v []float32, n, m int) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		out[i] = make([]float32, m)
		copy(out[i], v[i*m:(i+1)*m])
	}
	return out
}

// FlattenVector concatenates vector blocks back into a flat vector.
func FlattenVector(blocks [][]float32) []float32 {
	var out []float32
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out
}
