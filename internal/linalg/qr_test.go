package linalg

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
)

func frobFlat(a []float32) float64 {
	var s float64
	for _, v := range a {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// identityHyper builds an n×n hyper-matrix of m×m blocks holding the
// identity.
func identityHyper(n, m int) *hypermatrix.Matrix {
	h := hypermatrix.New(n, m)
	for d := 0; d < n*m; d++ {
		h.Set(d, d, 1)
	}
	return h
}

// qrEndToEnd factors a random matrix, builds Qᵀ explicitly, and returns
// (original, Qᵀ flat, R flat).
func qrEndToEnd(t *testing.T, workers, n, m int, seed int64) (orig, g, r []float32) {
	t.Helper()
	dim := n * m
	orig = kernels.GenMatrix(dim, seed)

	rt := core.New(core.Config{Workers: workers})
	defer rt.Close()
	al := New(rt, kernels.Fast, m)

	a := hypermatrix.FromFlat(orig, n, m)
	tf := al.QR(a)
	gh := identityHyper(n, m)
	al.ApplyQT(a, tf, gh) // pipelined behind the factorization
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}

	g = gh.ToFlat()
	fact := a.ToFlat()
	r = make([]float32, dim*dim)
	for i := 0; i < dim; i++ {
		for j := i; j < dim; j++ {
			r[i*dim+j] = fact[i*dim+j]
		}
	}
	return orig, g, r
}

// TestQROrthogonality checks G·Gᵀ = I for G = Qᵀ built by applying the
// tiled factorization to the identity.
func TestQROrthogonality(t *testing.T) {
	const n, m = 3, 16
	dim := n * m
	_, g, _ := qrEndToEnd(t, 4, n, m, 31)
	c := make([]float32, dim*dim)
	kernels.Fast.GemmNT(g, g, c, dim) // C := −G·Gᵀ
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			want := float64(0)
			if i == j {
				want = -1
			}
			if diff := math.Abs(float64(c[i*dim+j]) - want); diff > 5e-4 {
				t.Fatalf("(G·Gᵀ)[%d][%d] deviates by %g", i, j, diff)
			}
		}
	}
}

// TestQRReconstruction checks A = Q·R and ‖A‖ = ‖R‖ on a multi-tile
// factorization (N > 1 exercises Tsqrt/Tsmqr and the diagonal-tile
// renaming described in qr.go).
func TestQRReconstruction(t *testing.T) {
	const n, m = 4, 16
	dim := n * m
	orig, g, r := qrEndToEnd(t, 6, n, m, 32)

	if na, nr := frobFlat(orig), frobFlat(r); math.Abs(na-nr) > 1e-3*(1+na) {
		t.Fatalf("‖A‖ = %g but ‖R‖ = %g", na, nr)
	}

	// P := Q·R = Gᵀ·R.
	p := make([]float32, dim*dim)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			var s float32
			for k := 0; k < dim; k++ {
				s += g[k*dim+i] * r[k*dim+j]
			}
			p[i*dim+j] = s
		}
	}
	scale := frobFlat(orig)
	var worst float64
	for i := range p {
		if diff := math.Abs(float64(p[i] - orig[i])); diff > worst {
			worst = diff
		}
	}
	if worst > 1e-3*(1+scale) {
		t.Fatalf("QR reconstruction worst-case error %g (‖A‖ = %g)", worst, scale)
	}
}

// TestQRSingleTile degenerates to one Geqrt and must match the kernel.
func TestQRSingleTile(t *testing.T) {
	const m = 8
	orig := kernels.GenMatrix(m, 33)
	want := append([]float32(nil), orig...)
	wantT := make([]float32, m*m)
	kernels.Geqrt(want, wantT, m)

	rt := core.New(core.Config{Workers: 2})
	defer rt.Close()
	al := New(rt, kernels.Fast, m)
	a := hypermatrix.FromFlat(orig, 1, m)
	tf := al.QR(a)
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if a.Blocks[0][0][i] != want[i] {
			t.Fatalf("tile mismatch at %d", i)
		}
		if tf.Blocks[0][0][i] != wantT[i] {
			t.Fatalf("T mismatch at %d", i)
		}
	}
}

// TestQRDiagonalRenaming checks the lookahead mechanism the driver relies
// on: the Unmqr readers of the post-Geqrt diagonal force the Tsqrt chain
// onto renamed copies, so the factorization must report renames and zero
// false edges.
func TestQRDiagonalRenaming(t *testing.T) {
	const n, m = 4, 8
	rt := core.New(core.Config{Workers: 4})
	defer rt.Close()
	al := New(rt, kernels.Fast, m)
	a := hypermatrix.FromFlat(kernels.GenMatrix(n*m, 34), n, m)
	al.QR(a)
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Deps.Renames == 0 {
		t.Fatal("tiled QR caused no renames; the diagonal-tile lookahead is not happening")
	}
	if st.Deps.FalseEdges != 0 {
		t.Fatalf("tiled QR materialized %d false edges", st.Deps.FalseEdges)
	}
}

// TestQRTaskCount checks the driver generates the expected graph size:
// N geqrt + N(N−1)/2 each of unmqr and tsqrt + N(N−1)(2N−1)/6... —
// computed directly instead: Σ_k [1 + (n−1−k) + (n−1−k) + (n−1−k)²].
func TestQRTaskCount(t *testing.T) {
	const n, m = 5, 4
	rt := core.New(core.Config{Workers: 2})
	defer rt.Close()
	al := New(rt, kernels.Fast, m)
	a := hypermatrix.FromFlat(kernels.GenMatrix(n*m, 35), n, m)
	al.QR(a)
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	var want int64
	for k := 0; k < n; k++ {
		rem := n - 1 - k
		want += int64(1 + rem + rem + rem*rem)
	}
	if st := rt.Stats(); st.TasksSubmitted != want {
		t.Fatalf("submitted %d tasks, want %d", st.TasksSubmitted, want)
	}
}
