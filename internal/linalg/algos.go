// Package linalg implements every linear-algebra workload of the paper's
// evaluation as SMPSs task programs over the core runtime:
//
//   - dense hyper-matrix multiplication (Fig. 1)
//   - sparse hyper-matrix multiplication (Fig. 3)
//   - left-looking in-place Cholesky on hyper-matrices (Fig. 4)
//   - flat-matrix Cholesky and GEMM with on-demand block copies
//     (Fig. 9/10, evaluated in Fig. 11 and Fig. 12)
//   - blocked Strassen multiplication (§VI.C, Fig. 13)
//   - tiled LU without pivoting (§IV)
//
// Task bodies call the tile kernels of a kernels.Provider, mirroring how
// the paper implements tasks as calls into non-threaded Goto BLAS or MKL.
package linalg

import (
	"repro/internal/core"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
)

// kernelScratch keys each worker's packing buffers for providers with
// scratch-aware kernels (kernels.Tuned): every worker grows its own
// panel arena once and reuses it across all tasks it executes, so the
// packed engine runs allocation- and synchronization-free inside the
// runtime.
var kernelScratch = core.NewLocalKey(func() any { return kernels.NewScratch() })

// scratchOf returns the executing worker's kernel scratch.
func scratchOf(a *core.Args) *kernels.Scratch {
	return a.Local(kernelScratch).(*kernels.Scratch)
}

// Algos bundles a submission context, a kernel provider and a block
// size, and owns the task definitions of Fig. 2 plus the block-copy
// tasks of Fig. 10.  It targets a core.Context so the same task
// programs drive both a private Runtime and one tenant of a shared
// multi-context pool.
type Algos struct {
	rt *core.Context
	p  kernels.Provider
	m  int

	scopy   *core.TaskDef // b := a            (whole-block copy)
	sgemmNN *core.TaskDef // c += a·b          (matrix multiplication)
	sgemmNT *core.TaskDef // c -= a·bᵀ         (Cholesky trailing update)
	ssyrk   *core.TaskDef // c -= a·aᵀ (lower)
	strsm   *core.TaskDef // b := b·Lᵀ⁻¹
	spotrf  *core.TaskDef // a := chol(a)
	smul    *core.TaskDef // c = a·b           (Strassen leaf)
	sadd    *core.TaskDef // c = a + b
	ssub    *core.TaskDef // c = a - b
	saddTo  *core.TaskDef // c += a
	ssubTo  *core.TaskDef // c -= a

	sgetrf  *core.TaskDef // a := lu(a)
	strsmLL *core.TaskDef // b := L⁻¹·b (unit lower)
	strsmRU *core.TaskDef // b := b·U⁻¹
	sgemmSB *core.TaskDef // c -= a·b

	getBlock *core.TaskDef // copy block out of an opaque flat matrix
	putBlock *core.TaskDef // copy block into an opaque flat matrix

	sgeqrt *core.TaskDef // tiled QR: factor diagonal tile     (qr.go)
	sunmqr *core.TaskDef // tiled QR: apply Qᵀ right of diag
	stsqrt *core.TaskDef // tiled QR: couple triangle + tile
	stsmqr *core.TaskDef // tiled QR: apply coupling to pairs
}

// New builds the task set for the given runtime, kernel provider and
// block size m.
func New(rt *core.Runtime, p kernels.Provider, m int) *Algos {
	return NewOn(rt.Context(), p, m)
}

// NewOn builds the task set against one context of a shared pool, the
// entry point multi-tenant clients use (one Algos per context; the
// single-submitter contract applies per context).
func NewOn(c *core.Context, p kernels.Provider, m int) *Algos {
	al := &Algos{rt: c, p: p, m: m}

	al.scopy = core.NewTaskDef("scopy_t", func(a *core.Args) {
		copy(a.F32(1), a.F32(0))
	})
	// The GEMM-class tasks route through the provider's scratch-aware
	// variants when it has them, handing each call the executing
	// worker's packing buffers.
	al.sgemmNN = core.NewTaskDef("sgemm_t", func(a *core.Args) {
		if p.GemmNNS != nil {
			p.GemmNNS(scratchOf(a), a.F32(0), a.F32(1), a.F32(2), m)
			return
		}
		p.GemmNN(a.F32(0), a.F32(1), a.F32(2), m)
	})
	al.sgemmNT = core.NewTaskDef("sgemm_nt_t", func(a *core.Args) {
		if p.GemmNTS != nil {
			p.GemmNTS(scratchOf(a), a.F32(0), a.F32(1), a.F32(2), m)
			return
		}
		p.GemmNT(a.F32(0), a.F32(1), a.F32(2), m)
	})
	al.ssyrk = core.NewTaskDef("ssyrk_t", func(a *core.Args) {
		if p.SyrkS != nil {
			p.SyrkS(scratchOf(a), a.F32(0), a.F32(1), m)
			return
		}
		p.Syrk(a.F32(0), a.F32(1), m)
	})
	al.strsm = core.NewTaskDef("strsm_t", func(a *core.Args) {
		p.Trsm(a.F32(0), a.F32(1), m)
	})
	// spotrf carries the highpriority clause: the diagonal factorization
	// is on the critical path, and scheduling it as soon as it is ready
	// unlocks a whole column of trsm tasks (paper §II/§III).
	al.spotrf = core.NewHighPriorityTaskDef("spotrf_t", func(a *core.Args) {
		if !p.Potrf(a.F32(0), m) {
			panic("spotrf_t: block not positive definite")
		}
	})
	al.smul = core.NewTaskDef("smul_t", func(a *core.Args) {
		c := a.F32(2)
		for i := range c {
			c[i] = 0
		}
		if p.GemmNNS != nil {
			p.GemmNNS(scratchOf(a), a.F32(0), a.F32(1), c, m)
			return
		}
		p.GemmNN(a.F32(0), a.F32(1), c, m)
	})
	al.sadd = core.NewTaskDef("sadd_t", func(a *core.Args) {
		p.Add(a.F32(0), a.F32(1), a.F32(2), m)
	})
	al.ssub = core.NewTaskDef("ssub_t", func(a *core.Args) {
		p.Sub(a.F32(0), a.F32(1), a.F32(2), m)
	})
	al.saddTo = core.NewTaskDef("sadd_to_t", func(a *core.Args) {
		src, dst := a.F32(0), a.F32(1)
		for i := range dst {
			dst[i] += src[i]
		}
	})
	al.ssubTo = core.NewTaskDef("ssub_to_t", func(a *core.Args) {
		src, dst := a.F32(0), a.F32(1)
		for i := range dst {
			dst[i] -= src[i]
		}
	})

	al.sgetrf = core.NewHighPriorityTaskDef("sgetrf_t", func(a *core.Args) {
		if !kernels.LUBlock(a.F32(0), m) {
			panic("sgetrf_t: zero pivot")
		}
	})
	al.strsmLL = core.NewTaskDef("strsm_ll_t", func(a *core.Args) {
		kernels.TrsmLLUnit(a.F32(0), a.F32(1), m)
	})
	al.strsmRU = core.NewTaskDef("strsm_ru_t", func(a *core.Args) {
		if !kernels.TrsmRU(a.F32(0), a.F32(1), m) {
			panic("strsm_ru_t: zero pivot")
		}
	})
	al.sgemmSB = core.NewTaskDef("sgemm_sub_t", func(a *core.Args) {
		if p.GemmSubS != nil {
			p.GemmSubS(scratchOf(a), a.F32(0), a.F32(1), a.F32(2), m)
			return
		}
		p.GemmSub(a.F32(0), a.F32(1), a.F32(2), m)
	})

	// The flat matrix is always passed to these tasks as an opaque
	// pointer, exactly like the void* parameter of Fig. 10: it carries
	// no dependencies; ordering comes from the block parameter.
	al.getBlock = core.NewTaskDef("get_block", func(a *core.Args) {
		flat := a.Opaque(0).([]float32)
		dim := a.Int(1)
		i, j := a.Int(2), a.Int(3)
		hypermatrix.CopyBlockFromFlat(flat, dim, i, j, m, a.F32(4))
	})
	al.putBlock = core.NewTaskDef("put_block", func(a *core.Args) {
		flat := a.Opaque(0).([]float32)
		dim := a.Int(1)
		i, j := a.Int(2), a.Int(3)
		hypermatrix.CopyBlockToFlat(a.F32(4), flat, dim, i, j, m)
	})
	al.initQR()
	return al
}

// ResetFrom submits one scopy task per block position, rewriting every
// block of dst (output mode) from the pristine source src.  Both
// matrices must have the same shape with all blocks present.
//
// Pipelined with a factorization — reset, factor, reset, factor —
// without intermediate barriers, each reset's output write arrives
// while consumers of the previous round's version may still be pending,
// which is exactly the version-churn pattern the renaming engine (and
// its recycling pool) exists for: the write renames instead of waiting,
// and with pooling the superseded round's storage is recycled into the
// next round's renames.  The ablation-rename experiment is built on it.
func (al *Algos) ResetFrom(dst, src *hypermatrix.Matrix) {
	b := al.rt.NewBatch()
	for i := 0; i < dst.N; i++ {
		for j := 0; j < dst.N; j++ {
			b.Add(al.scopy, core.In(src.Block(i, j)), core.Out(dst.Block(i, j)))
		}
	}
	flush(b)
}

// Context returns the submission context the task set targets.
func (al *Algos) Context() *core.Context { return al.rt }

// submit forwards one task invocation to the context.  Submission can
// only fail on a closed context — programmer misuse the pre-context API
// surfaced as a panic — so keep failing loudly rather than silently
// computing nothing.
func (al *Algos) submit(def *core.TaskDef, args ...core.Arg) {
	if err := al.rt.Submit(def, args...); err != nil {
		panic(err)
	}
}

// flush submits a batch with the same loud-failure contract as submit.
func flush(b *core.Batch) {
	if err := b.Submit(); err != nil {
		panic(err)
	}
}

// BlockSize returns the block dimension m.
func (al *Algos) BlockSize() int { return al.m }

// Provider returns the kernel provider.
func (al *Algos) Provider() kernels.Provider { return al.p }
