package linalg

import (
	"repro/internal/core"
	"repro/internal/hypermatrix"
)

// CholeskyDense submits the left-looking in-place Cholesky decomposition
// of Fig. 4 on a dense hyper-matrix (lower triangle):
//
//	for j:
//	  for k < j, i > j:  sgemm_t(A[i][k], A[j][k], A[i][j])
//	  for i < j:         ssyrk_t(A[j][i], A[j][j])
//	  spotrf_t(A[j][j])
//	  for i > j:         strsm_t(A[j][j], A[i][j])
//
// The dependency complexity is high even for few blocks (Fig. 5 shows
// the 6×6 graph: 56 tasks), and the runtime extracts all of it.  Each
// j-step's tasks are submitted as one batch, so the O(n²) inner loops
// enter the dependency tracker through the amortized SubmitBatch path.
func (al *Algos) CholeskyDense(a *hypermatrix.Matrix) {
	n := a.N
	b := al.rt.NewBatch()
	for j := 0; j < n; j++ {
		for k := 0; k < j; k++ {
			for i := j + 1; i < n; i++ {
				b.Add(al.sgemmNT,
					core.In(a.Block(i, k)),
					core.In(a.Block(j, k)),
					core.InOut(a.Block(i, j)))
			}
		}
		for i := 0; i < j; i++ {
			b.Add(al.ssyrk,
				core.In(a.Block(j, i)),
				core.InOut(a.Block(j, j)))
		}
		b.Add(al.spotrf, core.InOut(a.Block(j, j)))
		for i := j + 1; i < n; i++ {
			b.Add(al.strsm,
				core.In(a.Block(j, j)),
				core.InOut(a.Block(i, j)))
		}
		flush(b)
	}
}

// CholeskyFlat factors a flat dim×dim SPD matrix (dim = n·m) in place
// through on-demand hyper-matrix copies — the exact program of Fig. 9:
// the dense Fig. 4 code with a get_block_once before every block access
// and a final copy-back phase.  Only the lower triangle is referenced
// and written back.
func (al *Algos) CholeskyFlat(aflat []float32, n int) {
	dim := n * al.m
	a := hypermatrix.NewSparse(n, al.m)
	for j := 0; j < n; j++ {
		for k := 0; k < j; k++ {
			for i := j + 1; i < n; i++ {
				al.getBlockOnce(i, k, aflat, dim, a)
				al.getBlockOnce(j, k, aflat, dim, a)
				al.getBlockOnce(i, j, aflat, dim, a)
				al.submit(al.sgemmNT,
					core.In(a.Block(i, k)),
					core.In(a.Block(j, k)),
					core.InOut(a.Block(i, j)))
			}
		}
		for i := 0; i < j; i++ {
			al.getBlockOnce(j, i, aflat, dim, a)
			al.getBlockOnce(j, j, aflat, dim, a)
			al.submit(al.ssyrk,
				core.In(a.Block(j, i)),
				core.InOut(a.Block(j, j)))
		}
		al.getBlockOnce(j, j, aflat, dim, a)
		al.submit(al.spotrf, core.InOut(a.Block(j, j)))
		for i := j + 1; i < n; i++ {
			al.getBlockOnce(i, j, aflat, dim, a)
			al.submit(al.strsm,
				core.In(a.Block(j, j)),
				core.InOut(a.Block(i, j)))
		}
	}
	al.putBackAll(a, aflat, dim)
}

// LU submits a tiled right-looking LU decomposition without pivoting on
// a dense hyper-matrix, the other factorization the paper presents as
// naturally blockable (§IV):
//
//	for k:
//	  sgetrf_t(A[k][k])
//	  for j > k: strsm_ll_t(A[k][k], A[k][j])   // row panel
//	  for i > k: strsm_ru_t(A[k][k], A[i][k])   // column panel
//	  for i, j > k: sgemm_sub_t(A[i][k], A[k][j], A[i][j])
func (al *Algos) LU(a *hypermatrix.Matrix) {
	n := a.N
	b := al.rt.NewBatch()
	for k := 0; k < n; k++ {
		b.Add(al.sgetrf, core.InOut(a.Block(k, k)))
		for j := k + 1; j < n; j++ {
			b.Add(al.strsmLL,
				core.In(a.Block(k, k)),
				core.InOut(a.Block(k, j)))
		}
		for i := k + 1; i < n; i++ {
			b.Add(al.strsmRU,
				core.In(a.Block(k, k)),
				core.InOut(a.Block(i, k)))
		}
		for i := k + 1; i < n; i++ {
			for j := k + 1; j < n; j++ {
				b.Add(al.sgemmSB,
					core.In(a.Block(i, k)),
					core.In(a.Block(k, j)),
					core.InOut(a.Block(i, j)))
			}
		}
		flush(b)
	}
}
