package linalg

// Tests for the packed micro-kernel engine driven through the runtime:
// the per-worker scratch registry hands every worker its own packing
// buffers, and these tests exercise that reuse concurrently (run under
// -race in CI) on block sizes that cross the engine's pack threshold
// and its mr/nr edge-tile handling.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
)

// runTuned runs body on a runtime with the packed provider at the given
// block size and worker count.
func runTuned(t *testing.T, workers, block int, body func(al *Algos)) {
	t.Helper()
	err := core.Run(core.Config{Workers: workers}, func(rt *core.Runtime) error {
		body(New(rt, kernels.Tuned, block))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTunedCholeskyThroughRuntime factors with 8 workers on 17×17
// blocks: 17 is above the pack threshold, not a multiple of mr, and
// odd (one-column nr edge panels), so every packed kernel sees edge
// tiles while eight workers concurrently reuse their scratches.
func TestTunedCholeskyThroughRuntime(t *testing.T) {
	const n, m = 8, 17
	dim := n * m
	spd := kernels.GenSPD(dim, 31)
	want := append([]float32(nil), spd...)
	if !kernels.CholeskyFlat(want, dim) {
		t.Fatalf("reference Cholesky failed")
	}
	a := hypermatrix.FromFlat(spd, n, m)
	runTuned(t, 8, m, func(al *Algos) { al.CholeskyDense(a) })
	if d := kernels.LowerMaxAbsDiff(want, a.ToFlat(), dim); d > 1e-2 {
		t.Fatalf("tuned hyper Cholesky lower factor off by %g", d)
	}
}

// TestTunedLUThroughRuntime covers the GemmSub path (the LU trailing
// update) through the runtime on pack-threshold-straddling blocks.
func TestTunedLUThroughRuntime(t *testing.T) {
	const n, m = 6, 20
	dim := n * m
	spd := kernels.GenSPD(dim, 37) // SPD needs no pivoting
	want := append([]float32(nil), spd...)
	if !kernels.LUFlat(want, dim) {
		t.Fatalf("reference LU failed")
	}
	a := hypermatrix.FromFlat(spd, n, m)
	runTuned(t, 8, m, func(al *Algos) { al.LU(a) })
	if d := kernels.MaxAbsDiff(want, a.ToFlat()); d > 1e-2 {
		t.Fatalf("tuned hyper LU off by %g", d)
	}
}

// TestTunedMatMulManyRounds keeps all eight workers multiplying for
// several rounds without barriers between submissions, so scratch
// instances are re-entered continuously while other workers do the
// same — the concurrency pattern the per-worker registry must survive
// (the race detector is the judge; CI runs this with -race).
func TestTunedMatMulManyRounds(t *testing.T) {
	const n, m, rounds = 4, 24, 3
	dim := n * m
	aflat := kernels.GenMatrix(dim, 41)
	bflat := kernels.GenMatrix(dim, 42)
	want := make([]float32, dim*dim)
	kernels.GemmFlat(aflat, bflat, want, dim)

	a := hypermatrix.FromFlat(aflat, n, m)
	b := hypermatrix.FromFlat(bflat, n, m)
	cs := make([]*hypermatrix.Matrix, rounds)
	runTuned(t, 8, m, func(al *Algos) {
		for r := range cs {
			cs[r] = hypermatrix.New(n, m)
			al.MatMulDense(a, b, cs[r])
		}
	})
	for r, c := range cs {
		if d := kernels.MaxAbsDiff(want, c.ToFlat()); d > 1e-3 {
			t.Fatalf("round %d: tuned matmul off by %g", r, d)
		}
	}
}
