package linalg

import (
	"repro/internal/core"
	"repro/internal/hypermatrix"
)

// MatMulDense submits the dense hyper-matrix multiplication of Fig. 1:
//
//	for i, j, k: sgemm_t(A[i][k], B[k][j], C[i][j])
//
// generating N³ tasks arranged as N² chains of N tasks.  Any ordering of
// the three nested loops produces correct results; the runtime reorders
// tasks for parallelism and locality (paper §IV).
func (al *Algos) MatMulDense(a, b, c *hypermatrix.Matrix) {
	n := a.N
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				al.submit(al.sgemmNN,
					core.In(a.Block(i, k)),
					core.In(b.Block(k, j)),
					core.InOut(c.Block(i, j)))
			}
		}
	}
}

// MatMulSparse submits the sparse variant of Fig. 3: block products are
// skipped when either operand block is absent, and result blocks are
// allocated on demand.
func (al *Algos) MatMulSparse(a, b, c *hypermatrix.Matrix) {
	n := a.N
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if a.Block(i, k) != nil && b.Block(k, j) != nil {
					al.submit(al.sgemmNN,
						core.In(a.Block(i, k)),
						core.In(b.Block(k, j)),
						core.InOut(c.EnsureBlock(i, j)))
				}
			}
		}
	}
}

// MatMulFlat multiplies flat matrices through on-demand hyper-matrix
// copies, the transformation the paper applies to compare fairly against
// threaded BLAS operating on flat storage (§VI.B): every block of A and
// B is copied in by a get_block task the first time it is needed, the
// block products accumulate into hyper-matrix C blocks, and a final
// put_block phase writes C back to flat storage.
//
// aflat, bflat and cflat are dim×dim with dim = n·m; cflat accumulates
// (C += A·B) to match the sgemm contract.
func (al *Algos) MatMulFlat(aflat, bflat, cflat []float32, n int) {
	dim := n * al.m
	a := hypermatrix.NewSparse(n, al.m)
	b := hypermatrix.NewSparse(n, al.m)
	c := hypermatrix.NewSparse(n, al.m)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				al.getBlockOnce(i, k, aflat, dim, a)
				al.getBlockOnce(k, j, bflat, dim, b)
				al.getBlockOnce(i, j, cflat, dim, c)
				al.submit(al.sgemmNN,
					core.In(a.Block(i, k)),
					core.In(b.Block(k, j)),
					core.InOut(c.Block(i, j)))
			}
		}
	}
	al.putBackAll(c, cflat, dim)
}

// getBlockOnce reproduces get_block_once of Fig. 10: if hyper-position
// (i, j) has not been copied in yet, allocate it and submit a get_block
// task reading the opaque flat matrix and writing the block.
func (al *Algos) getBlockOnce(i, j int, flat []float32, dim int, h *hypermatrix.Matrix) {
	if h.Block(i, j) != nil {
		return
	}
	blk := h.EnsureBlock(i, j)
	al.submit(al.getBlock,
		core.Opaque(flat),
		core.Value(dim),
		core.Value(i), core.Value(j),
		core.Out(blk))
}

// putBackAll submits one put_block per present block, the copy-back
// phase at the end of Fig. 9.  Writes to the flat matrix land in
// disjoint areas, so the flat matrix stays opaque and ordering comes
// from each block's own dependencies.
func (al *Algos) putBackAll(h *hypermatrix.Matrix, flat []float32, dim int) {
	for i := 0; i < h.N; i++ {
		for j := 0; j < h.N; j++ {
			if blk := h.Block(i, j); blk != nil {
				al.submit(al.putBlock,
					core.Opaque(flat),
					core.Value(dim),
					core.Value(i), core.Value(j),
					core.In(blk))
			}
		}
	}
}
