package linalg

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
)

// blockVec splits a length n·m vector into n blocks.
func blockVec(v []float32, n, m int) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		out[i] = v[i*m : (i+1)*m]
	}
	return out
}

// TestQRSolve solves A·x = b through QR with no barrier between the
// factorization and the solver, then checks the residual.
func TestQRSolve(t *testing.T) {
	const n, m = 4, 16
	dim := n * m
	aflat := kernels.GenMatrix(dim, 51)
	// Make A comfortably nonsingular for a float32 solve.
	for d := 0; d < dim; d++ {
		aflat[d*dim+d] += 4
	}
	x0 := make([]float32, dim) // the solution we plant
	for i := range x0 {
		x0[i] = float32(i%7) - 3
	}
	b := make([]float32, dim) // b := A·x0  (Gemv computes y −= A·x)
	kernels.Gemv(aflat, x0, b, dim)
	for i := range b {
		b[i] = -b[i]
	}

	rt := core.New(core.Config{Workers: 6})
	defer rt.Close()
	al := New(rt, kernels.Fast, m)
	a := hypermatrix.FromFlat(aflat, n, m)
	tf := al.QR(a)
	rhs := append([]float32(nil), b...)
	al.QRSolve(a, tf, blockVec(rhs, n, m)) // no barrier in between
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}

	var worst float64
	for i := range x0 {
		if d := math.Abs(float64(rhs[i] - x0[i])); d > worst {
			worst = d
		}
	}
	if worst > 1e-2 {
		t.Fatalf("‖x − x₀‖∞ = %g", worst)
	}
}

// TestQRSolveSingleBlock degenerates to UnmqrVec + UTrsv.
func TestQRSolveSingleBlock(t *testing.T) {
	const m = 12
	aflat := kernels.GenMatrix(m, 52)
	for d := 0; d < m; d++ {
		aflat[d*m+d] += 3
	}
	x0 := make([]float32, m)
	for i := range x0 {
		x0[i] = float32(i) - 5
	}
	b := make([]float32, m)
	kernels.Gemv(aflat, x0, b, m)
	for i := range b {
		b[i] = -b[i]
	}

	rt := core.New(core.Config{Workers: 2})
	defer rt.Close()
	al := New(rt, kernels.Fast, m)
	a := hypermatrix.FromFlat(aflat, 1, m)
	tf := al.QR(a)
	al.QRSolve(a, tf, [][]float32{b})
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	for i := range x0 {
		if d := math.Abs(float64(b[i] - x0[i])); d > 1e-3 {
			t.Fatalf("x[%d] = %g, want %g", i, b[i], x0[i])
		}
	}
}

// TestQRSolvePipelines asserts the composition claim: with one worker
// and no barrier, solver tasks must interleave with factorization tasks
// in the execution trace... structural proxy: the combined graph has
// true edges from factorization tiles into solver tasks, and the whole
// program completes from a single Barrier.
func TestQRSolvePipelines(t *testing.T) {
	const n, m = 3, 8
	dim := n * m
	aflat := kernels.GenMatrix(dim, 53)
	for d := 0; d < dim; d++ {
		aflat[d*dim+d] += 4
	}
	b := make([]float32, dim)
	for i := range b {
		b[i] = 1
	}

	rt := core.New(core.Config{Workers: 4})
	defer rt.Close()
	al := New(rt, kernels.Fast, m)
	a := hypermatrix.FromFlat(aflat, n, m)

	before := rt.Stats()
	tf := al.QR(a)
	factTasks := rt.Stats().TasksSubmitted - before.TasksSubmitted
	al.QRSolve(a, tf, blockVec(b, n, m))
	total := rt.Stats().TasksSubmitted - before.TasksSubmitted
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	// Solver adds Qᵀ·b tasks (n + n(n−1)/2) and substitution tasks
	// (n + n(n−1)/2).
	wantSolve := int64(n + n*(n-1)/2 + n + n*(n-1)/2)
	if total-factTasks != wantSolve {
		t.Fatalf("solver submitted %d tasks, want %d", total-factTasks, wantSolve)
	}
	st := rt.Stats()
	if st.TasksExecuted != st.TasksSubmitted {
		t.Fatalf("executed %d of %d", st.TasksExecuted, st.TasksSubmitted)
	}
}
