package linalg

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kernels"
)

// LUPartialPivot factors the flat dim×dim matrix (dim = n·m) in place
// with partial pivoting: P·A = L·U, pivots recorded in piv (LAPACK ipiv
// convention).  It must be followed by a Barrier before reading results.
//
// This is the algorithm the paper uses to motivate the array-region
// language extension (§V): "the algorithm includes pivoting operations
// that consist in swapping columns and swapping rows.  Those two
// operations make it hard to block."  With 2-D regions the blocked
// algorithm is direct — every task names the exact rectangle of the flat
// matrix it touches, and row interchanges (which span whole rows across
// all column blocks) order themselves against panel and update tasks
// through region overlap:
//
//	for each panel k:
//	  lupanel_t   inout A{c0..dim-1}{c0..c1}, output piv{c0..c1}
//	  for j ≠ k:  laswp_t  input piv{c0..c1}, inout A{c0..dim-1}{cj0..cj1}
//	  for j > k:  strsm_t  input A{c0..c1}{c0..c1}, inout A{c0..c1}{cj0..cj1}
//	  for i,j>k:  sgemm_t  input A{ri}{c0..c1}, A{c0..c1}{cj}, inout A{ri}{cj}
//
// The 2008 runtime had no region support, so this code could not be
// written then; it runs here on the §V.A extension.
func (al *Algos) LUPartialPivot(a []float32, n int, piv []int32) {
	dim := n * al.m
	if len(a) != dim*dim {
		panic(fmt.Sprintf("linalg: LUPartialPivot matrix length %d, want %d", len(a), dim*dim))
	}
	if len(piv) != dim {
		panic(fmt.Sprintf("linalg: LUPartialPivot pivot length %d, want %d", len(piv), dim))
	}
	m := al.m

	// Task bodies index the flat matrix directly; regions carry the
	// dependency information.
	panel := core.NewHighPriorityTaskDef("lupanel_t", func(args *core.Args) {
		fa := args.F32(0)
		pv := args.I32(1)
		c0 := args.Int(2)
		if !luPanel(fa, dim, c0, c0+m-1, pv) {
			panic("lupanel_t: singular panel")
		}
	})
	laswp := core.NewTaskDef("laswp_t", func(args *core.Args) {
		fa := args.F32(0)
		pv := args.I32(1)
		c0, j0, j1 := args.Int(2), args.Int(3), args.Int(4)
		kernels.ApplyPivots(fa, dim, pv, c0, c0+m-1, j0, j1)
	})
	trsm := core.NewTaskDef("lutrsm_t", func(args *core.Args) {
		fa := args.F32(0) // args 0 and 1 are two regions of the matrix
		c0, j0 := args.Int(2), args.Int(3)
		luTrsmRow(fa, dim, c0, c0+m-1, j0, j0+m-1)
	})
	gemm := core.NewTaskDef("lugemm_t", func(args *core.Args) {
		fa := args.F32(0) // args 0..2 are three regions of the matrix
		i0, c0, j0 := args.Int(3), args.Int(4), args.Int(5)
		luGemm(fa, dim, i0, i0+m-1, c0, c0+m-1, j0, j0+m-1)
	})

	colRegion := func(r0, r1, c0, c1 int) core.Region {
		return core.Rect(int64(r0), int64(r1), int64(c0), int64(c1))
	}

	nb := n
	for k := 0; k < nb; k++ {
		c0 := k * m
		c1 := c0 + m - 1
		// 1. Panel factorization over rows c0..dim-1 of this column
		// block, producing the step's pivots.
		al.submit(panel,
			core.InOutR(a, colRegion(c0, dim-1, c0, c1)),
			core.OutR(piv, core.Interval(int64(c0), int64(c1))),
			core.Value(c0))
		// 2. Apply the interchanges to every other column block.
		for j := 0; j < nb; j++ {
			if j == k {
				continue
			}
			j0 := j * m
			al.submit(laswp,
				core.InOutR(a, colRegion(c0, dim-1, j0, j0+m-1)),
				core.InR(piv, core.Interval(int64(c0), int64(c1))),
				core.Value(c0), core.Value(j0), core.Value(j0+m-1))
		}
		// 3. U row panel: L11⁻¹ · A(c0..c1, j) for the blocks right of
		// the panel.
		for j := k + 1; j < nb; j++ {
			j0 := j * m
			al.submit(trsm,
				core.InR(a, colRegion(c0, c1, c0, c1)),
				core.InOutR(a, colRegion(c0, c1, j0, j0+m-1)),
				core.Value(c0), core.Value(j0))
		}
		// 4. Trailing update.
		for i := k + 1; i < nb; i++ {
			i0 := i * m
			for j := k + 1; j < nb; j++ {
				j0 := j * m
				al.submit(gemm,
					core.InR(a, colRegion(i0, i0+m-1, c0, c1)),
					core.InR(a, colRegion(c0, c1, j0, j0+m-1)),
					core.InOutR(a, colRegion(i0, i0+m-1, j0, j0+m-1)),
					core.Value(i0), core.Value(c0), core.Value(j0))
			}
		}
	}
}

// luPanel factors columns c0..c1 of the flat dim-stride matrix over rows
// c0..dim-1 with partial pivoting, recording pivots in pv[c0..c1].  Row
// interchanges stay inside the panel columns; laswp tasks mirror them in
// the other column blocks.
func luPanel(a []float32, dim, c0, c1 int, pv []int32) bool {
	for c := c0; c <= c1; c++ {
		p := c
		best := abs32(a[c*dim+c])
		for r := c + 1; r < dim; r++ {
			if v := abs32(a[r*dim+c]); v > best {
				best = v
				p = r
			}
		}
		pv[c] = int32(p)
		if best == 0 {
			return false
		}
		if p != c {
			kernels.SwapRows(a, dim, c, p, c0, c1)
		}
		inv := 1 / a[c*dim+c]
		for r := c + 1; r < dim; r++ {
			a[r*dim+c] *= inv
		}
		for r := c + 1; r < dim; r++ {
			lrc := a[r*dim+c]
			if lrc == 0 {
				continue
			}
			for cc := c + 1; cc <= c1; cc++ {
				a[r*dim+cc] -= lrc * a[c*dim+cc]
			}
		}
	}
	return true
}

// luTrsmRow solves L11·X = B in place of B, where L11 is the unit-lower
// triangle of rows/cols r0..r1 and B is rows r0..r1, cols j0..j1.
func luTrsmRow(a []float32, dim, r0, r1, j0, j1 int) {
	for r := r0 + 1; r <= r1; r++ {
		for k := r0; k < r; k++ {
			lrk := a[r*dim+k]
			if lrk == 0 {
				continue
			}
			rowK := a[k*dim+j0 : k*dim+j1+1]
			rowR := a[r*dim+j0 : r*dim+j1+1]
			for c := range rowR {
				rowR[c] -= lrk * rowK[c]
			}
		}
	}
}

// luGemm computes A(i0..i1, j0..j1) -= A(i0..i1, c0..c1) · A(c0..c1,
// j0..j1) on the flat dim-stride matrix.
func luGemm(a []float32, dim, i0, i1, c0, c1, j0, j1 int) {
	for i := i0; i <= i1; i++ {
		rowI := a[i*dim+j0 : i*dim+j1+1]
		for k := c0; k <= c1; k++ {
			aik := a[i*dim+k]
			if aik == 0 {
				continue
			}
			rowK := a[k*dim+j0 : k*dim+j1+1]
			for c := range rowI {
				rowI[c] -= aik * rowK[c]
			}
		}
	}
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}
