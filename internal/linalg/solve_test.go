package linalg

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
)

func TestSolveLowerMatchesFlat(t *testing.T) {
	nb, m := 4, 12
	dim := nb * m
	spd := kernels.GenSPD(dim, 41)
	// Reference: flat factor + flat forward substitution.
	lflat := append([]float32(nil), spd...)
	if !kernels.CholeskyFlat(lflat, dim) {
		t.Fatalf("reference Cholesky failed")
	}
	rhs := kernels.GenMatrix(dim, 42)[:dim]
	want := append([]float32(nil), rhs...)
	kernels.TrsvFlat(lflat, want, dim)

	// Tasked: factorization and solve composed without a barrier.
	rt := core.New(core.Config{Workers: 8})
	al := New(rt, kernels.Fast, m)
	a := hypermatrix.FromFlat(spd, nb, m)
	b := BlockVector(rhs, nb, m)
	al.CholeskyDense(a)
	al.SolveLower(a, b) // no barrier in between: §VII.D composition
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	got := FlattenVector(b)
	if d := kernels.MaxAbsDiff(want, got); d > 1e-2 {
		t.Fatalf("blocked solve off by %g", d)
	}
}

// TestSolveOverlapsFactorization proves the §VII.D claim structurally:
// the first solve task depends only on the first column of the Cholesky
// graph, so it can run long before the factorization finishes.
func TestSolveOverlapsFactorization(t *testing.T) {
	nb, m := 6, 8
	dim := nb * m
	rec := &graph.Recorder{}
	rt := core.New(core.Config{Workers: 1, Recorder: rec})
	al := New(rt, kernels.Fast, m)
	a := hypermatrix.FromFlat(kernels.GenSPD(dim, 43), nb, m)
	b := BlockVector(kernels.GenMatrix(dim, 44)[:dim], nb, m)
	al.CholeskyDense(a) // 56 tasks (Fig. 5)
	al.SolveLower(a, b)
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	// After only the first Cholesky column (task 1 = spotrf(A00) and
	// tasks 2..6 = its trsm column), the first solve task (strsv on
	// b[0], reading L[0][0]) must be ready: it is the task numbered 57
	// (first task submitted after the 56 Cholesky tasks).
	done := map[int64]bool{1: true}
	ready := rec.ReadyAfter(done)
	found := false
	for _, id := range ready {
		if id == 57 {
			found = true
		}
	}
	if !found {
		t.Fatalf("solve task 57 not ready after spotrf(A00); ready = %v", ready)
	}
}

func TestBlockVectorRoundTrip(t *testing.T) {
	v := kernels.GenMatrix(6, 45)[:24]
	blocks := BlockVector(v, 4, 6)
	if len(blocks) != 4 || len(blocks[2]) != 6 {
		t.Fatalf("BlockVector shape wrong")
	}
	back := FlattenVector(blocks)
	if d := kernels.MaxAbsDiff(v, back); d != 0 {
		t.Fatalf("round trip changed data")
	}
	// Blocks must be copies, not aliases.
	blocks[0][0] = 999
	if v[0] == 999 {
		t.Fatalf("BlockVector must copy")
	}
}

func TestTrsvKernel(t *testing.T) {
	m := 16
	spd := kernels.GenSPD(m, 46)
	if !kernels.CholeskyFlat(spd, m) {
		t.Fatalf("factor failed")
	}
	x := kernels.GenMatrix(m, 47)[:m]
	// b = L·x, then Trsv must recover x.
	b := make([]float32, m)
	for i := 0; i < m; i++ {
		var s float32
		for k := 0; k <= i; k++ {
			s += spd[i*m+k] * x[k]
		}
		b[i] = s
	}
	kernels.Trsv(spd, b, m)
	if d := kernels.MaxAbsDiff(x, b); d > 1e-3 {
		t.Fatalf("Trsv off by %g", d)
	}
}

func TestGemvKernel(t *testing.T) {
	m := 8
	a := kernels.GenMatrix(m, 48)
	x := kernels.GenMatrix(m, 49)[:m]
	y := make([]float32, m)
	kernels.Gemv(a, x, y, m)
	for i := 0; i < m; i++ {
		var s float32
		for k := 0; k < m; k++ {
			s += a[i*m+k] * x[k]
		}
		if d := y[i] + s; d > 1e-4 || d < -1e-4 {
			t.Fatalf("Gemv row %d off by %g", i, d)
		}
	}
}
