package linalg

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hypermatrix"
)

// view is a square block-aligned window into a hyper-matrix, used to
// address quadrants during Strassen's recursion.
type view struct {
	h    *hypermatrix.Matrix
	r, c int // block offsets
	n    int // size in blocks
}

func full(h *hypermatrix.Matrix) view { return view{h: h, r: 0, c: 0, n: h.N} }

func (v view) quad(qr, qc int) view {
	half := v.n / 2
	return view{h: v.h, r: v.r + qr*half, c: v.c + qc*half, n: half}
}

func (v view) block(i, j int) []float32 { return v.h.Block(v.r+i, v.c+j) }

// Strassen submits Strassen's sub-cubic matrix multiplication (§VI.C)
// computing C = A·B on hyper-matrices whose block dimension is a power
// of two.  The recursion runs at submission time on the main thread;
// all block arithmetic becomes tasks.
//
// The two operand-sum temporaries of each recursion step are reused
// across the seven recursive products, so every reuse is a fresh write
// over data still being read by the previous product's tasks — the
// "intensive renaming test case" the paper calls out: renaming is what
// lets all seven products run concurrently anyway.
func (al *Algos) Strassen(a, b, c *hypermatrix.Matrix) {
	if a.N&(a.N-1) != 0 {
		panic(fmt.Sprintf("linalg: Strassen needs a power-of-two block count, got %d", a.N))
	}
	al.strassen(full(a), full(b), full(c))
}

func (al *Algos) strassen(a, b, c view) {
	if a.n == 1 {
		al.submit(al.smul,
			core.In(a.block(0, 0)),
			core.In(b.block(0, 0)),
			core.Out(c.block(0, 0)))
		return
	}
	half := a.n / 2
	a11, a12, a21, a22 := a.quad(0, 0), a.quad(0, 1), a.quad(1, 0), a.quad(1, 1)
	b11, b12, b21, b22 := b.quad(0, 0), b.quad(0, 1), b.quad(1, 0), b.quad(1, 1)
	c11, c12, c21, c22 := c.quad(0, 0), c.quad(0, 1), c.quad(1, 0), c.quad(1, 1)

	// Reused operand-sum temporaries (the renaming stress) and the seven
	// product temporaries.
	s := full(hypermatrix.New(half, al.m))
	t := full(hypermatrix.New(half, al.m))
	var mprod [7]view
	for i := range mprod {
		mprod[i] = full(hypermatrix.New(half, al.m))
	}

	// M1 = (A11+A22)·(B11+B22)
	al.addView(a11, a22, s)
	al.addView(b11, b22, t)
	al.strassen(s, t, mprod[0])
	// M2 = (A21+A22)·B11
	al.addView(a21, a22, s)
	al.strassen(s, b11, mprod[1])
	// M3 = A11·(B12−B22)
	al.subView(b12, b22, t)
	al.strassen(a11, t, mprod[2])
	// M4 = A22·(B21−B11)
	al.subView(b21, b11, t)
	al.strassen(a22, t, mprod[3])
	// M5 = (A11+A12)·B22
	al.addView(a11, a12, s)
	al.strassen(s, b22, mprod[4])
	// M6 = (A21−A11)·(B11+B12)
	al.subView(a21, a11, s)
	al.addView(b11, b12, t)
	al.strassen(s, t, mprod[5])
	// M7 = (A12−A22)·(B21+B22)
	al.subView(a12, a22, s)
	al.addView(b21, b22, t)
	al.strassen(s, t, mprod[6])

	// C11 = M1 + M4 − M5 + M7
	al.addView(mprod[0], mprod[3], c11)
	al.subToView(mprod[4], c11)
	al.addToView(mprod[6], c11)
	// C12 = M3 + M5
	al.addView(mprod[2], mprod[4], c12)
	// C21 = M2 + M4
	al.addView(mprod[1], mprod[3], c21)
	// C22 = M1 − M2 + M3 + M6
	al.subView(mprod[0], mprod[1], c22)
	al.addToView(mprod[2], c22)
	al.addToView(mprod[5], c22)
}

// addView submits Z = X + Y blockwise.
func (al *Algos) addView(x, y, z view) {
	for i := 0; i < x.n; i++ {
		for j := 0; j < x.n; j++ {
			al.submit(al.sadd,
				core.In(x.block(i, j)), core.In(y.block(i, j)), core.Out(z.block(i, j)))
		}
	}
}

// subView submits Z = X − Y blockwise.
func (al *Algos) subView(x, y, z view) {
	for i := 0; i < x.n; i++ {
		for j := 0; j < x.n; j++ {
			al.submit(al.ssub,
				core.In(x.block(i, j)), core.In(y.block(i, j)), core.Out(z.block(i, j)))
		}
	}
}

// addToView submits Z += X blockwise.
func (al *Algos) addToView(x, z view) {
	for i := 0; i < x.n; i++ {
		for j := 0; j < x.n; j++ {
			al.submit(al.saddTo,
				core.In(x.block(i, j)), core.InOut(z.block(i, j)))
		}
	}
}

// subToView submits Z −= X blockwise.
func (al *Algos) subToView(x, z view) {
	for i := 0; i < x.n; i++ {
		for j := 0; j < x.n; j++ {
			al.submit(al.ssubTo,
				core.In(x.block(i, j)), core.InOut(z.block(i, j)))
		}
	}
}
