package linalg

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
)

const (
	tN = 4  // blocks per dimension
	tM = 12 // elements per block dimension
)

func withAlgos(t *testing.T, workers int, p kernels.Provider, body func(al *Algos)) {
	t.Helper()
	err := core.Run(core.Config{Workers: workers}, func(rt *core.Runtime) error {
		body(New(rt, p, tM))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMatMulDenseMatchesFlat(t *testing.T) {
	for _, p := range kernels.Providers {
		dim := tN * tM
		aflat := kernels.GenMatrix(dim, 1)
		bflat := kernels.GenMatrix(dim, 2)
		want := make([]float32, dim*dim)
		kernels.GemmFlat(aflat, bflat, want, dim)

		a := hypermatrix.FromFlat(aflat, tN, tM)
		b := hypermatrix.FromFlat(bflat, tN, tM)
		c := hypermatrix.New(tN, tM)
		withAlgos(t, 8, p, func(al *Algos) { al.MatMulDense(a, b, c) })
		if d := kernels.MaxAbsDiff(want, c.ToFlat()); d > 1e-3 {
			t.Fatalf("%s: dense hyper-matmul off by %g", p.Name, d)
		}
	}
}

func TestMatMulSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := hypermatrix.NewSparse(tN, tM)
	b := hypermatrix.NewSparse(tN, tM)
	for i := 0; i < tN; i++ {
		for j := 0; j < tN; j++ {
			if rng.Float64() < 0.5 {
				blk := a.EnsureBlock(i, j)
				for k := range blk {
					blk[k] = rng.Float32()
				}
			}
			if rng.Float64() < 0.5 {
				blk := b.EnsureBlock(i, j)
				for k := range blk {
					blk[k] = rng.Float32()
				}
			}
		}
	}
	want := make([]float32, tN*tM*tN*tM)
	kernels.GemmFlat(a.ToFlat(), b.ToFlat(), want, tN*tM)

	c := hypermatrix.NewSparse(tN, tM)
	withAlgos(t, 8, kernels.Fast, func(al *Algos) { al.MatMulSparse(a, b, c) })
	if d := kernels.MaxAbsDiff(want, c.ToFlat()); d > 1e-3 {
		t.Fatalf("sparse hyper-matmul off by %g", d)
	}
	// Sparsity must be preserved: an all-zero result row of blocks stays nil.
	if c.NonZeroBlocks() == tN*tN {
		t.Logf("note: random instance produced a fully dense result")
	}
}

func TestMatMulFlatOnDemandCopies(t *testing.T) {
	dim := tN * tM
	aflat := kernels.GenMatrix(dim, 3)
	bflat := kernels.GenMatrix(dim, 4)
	cflat := kernels.GenMatrix(dim, 5) // nonzero start: C += A·B
	want := append([]float32(nil), cflat...)
	kernels.GemmFlat(aflat, bflat, want, dim)

	withAlgos(t, 8, kernels.Fast, func(al *Algos) { al.MatMulFlat(aflat, bflat, cflat, tN) })
	if d := kernels.MaxAbsDiff(want, cflat); d > 1e-3 {
		t.Fatalf("flat matmul with on-demand copies off by %g", d)
	}
}

func TestCholeskyDenseMatchesFlat(t *testing.T) {
	for _, p := range kernels.Providers {
		dim := tN * tM
		spd := kernels.GenSPD(dim, 6)
		want := append([]float32(nil), spd...)
		if !kernels.CholeskyFlat(want, dim) {
			t.Fatalf("reference Cholesky failed")
		}

		a := hypermatrix.FromFlat(spd, tN, tM)
		withAlgos(t, 8, p, func(al *Algos) { al.CholeskyDense(a) })
		if d := kernels.LowerMaxAbsDiff(want, a.ToFlat(), dim); d > 1e-2 {
			t.Fatalf("%s: hyper Cholesky lower factor off by %g", p.Name, d)
		}
	}
}

func TestCholeskyFlatOnDemandCopies(t *testing.T) {
	dim := tN * tM
	spd := kernels.GenSPD(dim, 7)
	want := append([]float32(nil), spd...)
	if !kernels.CholeskyFlat(want, dim) {
		t.Fatalf("reference Cholesky failed")
	}
	got := append([]float32(nil), spd...)
	withAlgos(t, 8, kernels.Fast, func(al *Algos) { al.CholeskyFlat(got, tN) })
	if d := kernels.LowerMaxAbsDiff(want, got, dim); d > 1e-2 {
		t.Fatalf("flat Cholesky (Fig. 9) lower factor off by %g", d)
	}
}

func TestStrassenMatchesGemm(t *testing.T) {
	// Power-of-two block count required.
	n, m := 4, 12
	dim := n * m
	aflat := kernels.GenMatrix(dim, 8)
	bflat := kernels.GenMatrix(dim, 9)
	want := make([]float32, dim*dim)
	kernels.GemmFlat(aflat, bflat, want, dim)

	a := hypermatrix.FromFlat(aflat, n, m)
	b := hypermatrix.FromFlat(bflat, n, m)
	c := hypermatrix.New(n, m)
	var renames int64
	err := core.Run(core.Config{Workers: 8}, func(rt *core.Runtime) error {
		al := New(rt, kernels.Fast, m)
		al.Strassen(a, b, c)
		if err := rt.Barrier(); err != nil {
			return err
		}
		renames = rt.Stats().Deps.Renames
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := kernels.MaxAbsDiff(want, c.ToFlat()); d > 5e-3 {
		t.Fatalf("Strassen off by %g", d)
	}
	if renames == 0 {
		t.Fatalf("Strassen must be an intensive renaming test case (paper §VI.C), saw none")
	}
}

func TestStrassenRejectsNonPowerOfTwo(t *testing.T) {
	withAlgos(t, 1, kernels.Fast, func(al *Algos) {
		defer func() {
			if recover() == nil {
				t.Errorf("Strassen must reject non-power-of-two block counts")
			}
		}()
		h := hypermatrix.New(3, tM)
		al.Strassen(h, h, h)
	})
}

func TestLUMatchesFlat(t *testing.T) {
	dim := tN * tM
	spd := kernels.GenSPD(dim, 10) // diagonally dominant: no pivoting needed
	want := append([]float32(nil), spd...)
	if !kernels.LUFlat(want, dim) {
		t.Fatalf("reference LU failed")
	}
	a := hypermatrix.FromFlat(spd, tN, tM)
	withAlgos(t, 8, kernels.Fast, func(al *Algos) { al.LU(a) })
	if d := kernels.MaxAbsDiff(want, a.ToFlat()); d > 5e-2 {
		t.Fatalf("tiled LU off by %g", d)
	}
}

// TestCholeskyGraphShape reproduces the structural facts of Fig. 5: a
// 6×6 block Cholesky generates exactly 56 tasks (6 spotrf, 15 strsm,
// 15 ssyrk, 20 sgemm) with a single root (task 1, the first spotrf).
func TestCholeskyGraphShape(t *testing.T) {
	rec := &graph.Recorder{}
	// Workers=1 so no task completes before submission ends: every true
	// dependency is recorded, exactly like the paper's plotted graph.
	rt := core.New(core.Config{Workers: 1, Recorder: rec})
	al := New(rt, kernels.Fast, 4)
	a := hypermatrix.FromFlat(kernels.GenSPD(24, 11), 6, 4)
	al.CholeskyDense(a)
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	if rec.NumNodes() != 56 {
		t.Fatalf("6×6 Cholesky generated %d tasks, paper says 56", rec.NumNodes())
	}
	kc := rec.KindCounts()
	want := map[string]int{"spotrf_t": 6, "strsm_t": 15, "ssyrk_t": 15, "sgemm_nt_t": 20}
	for k, w := range want {
		if kc[k] != w {
			t.Fatalf("task mix %v, want %v", kc, want)
		}
	}
	roots := rec.Roots()
	if len(roots) != 1 || roots[0] != 1 {
		t.Fatalf("roots = %v, want just task 1 (first spotrf)", roots)
	}
	// The critical path of an N×N tiled Cholesky has 3N-2 nodes
	// (potrf→trsm→{syrk or gemm} per column): 16 for N=6.
	if cpl := rec.CriticalPathLength(); cpl != 16 {
		t.Fatalf("critical path = %d, want 16", cpl)
	}
}

// TestCholeskyEarlyParallelism checks the paper's §IV observation on
// Fig. 5: "after running tasks 1 and 6, the runtime is able to start
// executing task 51" — distant parts of the code are parallel.  We
// verify the structural equivalent: some task with a high invocation
// number depends (transitively) on nothing outside {1..6}.
func TestCholeskyEarlyParallelism(t *testing.T) {
	rec := &graph.Recorder{}
	rt := core.New(core.Config{Workers: 1, Recorder: rec})
	al := New(rt, kernels.Fast, 4)
	a := hypermatrix.FromFlat(kernels.GenSPD(24, 12), 6, 4)
	al.CholeskyDense(a)
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	// Task 1 is spotrf(A00); tasks 2..6 are strsm of column 0.  Every
	// column-0 gemm (the first gemm batch of each later column) needs
	// only those.  Find the largest task ID whose predecessors are all
	// within 1..6: it must be far beyond 6 (the paper's example is 51).
	// We reconstruct predecessor sets from the DOT-exported edges, via
	// the recorder's public data: rebuild adjacency from WriteDOT output
	// would be clumsy, so use CriticalPathLength-style internal check
	// through Roots of the subgraph — instead simply recompute: a gemm
	// of blocks (i,0),(j,0)->(i,j) is submitted at position >
	// 6 + ... for column j=4: after columns 1..3 complete.  Validate by
	// counting: at least one task with ID ≥ 40 has in-degree whose
	// sources are ≤ 6.  The recorder exposes edges only through DOT, so
	// assert through a direct property: the 6×6 Cholesky root count of
	// the subgraph induced by removing tasks 1..6 is large (> 4),
	// meaning several far-away tasks become ready once 1..6 finish.
	ready := rec.ReadyAfter(map[int64]bool{1: true, 2: true, 3: true, 4: true, 5: true, 6: true})
	var far int64
	for _, id := range ready {
		if id > far {
			far = id
		}
	}
	if far < 40 {
		t.Fatalf("after tasks 1..6 the farthest ready task is %d; paper shows 51", far)
	}
}
