package linalg

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/kernels"
)

// reconstructionError rebuilds L·U from an in-place LU result and
// compares it against P·A for the recorded progressive pivots.
func reconstructionError(orig, lu []float32, piv []int32, dim int) float64 {
	pa := append([]float32(nil), orig...)
	kernels.ApplyPivots(pa, dim, piv, 0, dim-1, 0, dim-1)
	worst := 0.0
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			var s float32
			kmax := i
			if j < i {
				kmax = j
			}
			for k := 0; k <= kmax; k++ {
				var lik float32
				if k < i {
					lik = lu[i*dim+k]
				} else {
					lik = 1
				}
				if k <= j {
					s += lik * lu[k*dim+j]
				}
			}
			if d := math.Abs(float64(s) - float64(pa[i*dim+j])); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func TestLUPivFlatReference(t *testing.T) {
	dim := 40
	a := kernels.GenMatrix(dim, 31)
	orig := append([]float32(nil), a...)
	piv := make([]int32, dim)
	if !kernels.LUPivFlat(a, dim, piv) {
		t.Fatalf("reference LU with pivoting failed")
	}
	if err := reconstructionError(orig, a, piv, dim); err > 1e-3 {
		t.Fatalf("reference reconstruction error %g", err)
	}
	// Pivoting must actually happen on a random matrix.
	swapped := false
	for k, p := range piv {
		if int(p) != k {
			swapped = true
		}
	}
	if !swapped {
		t.Fatalf("no row interchanges on a random matrix is implausible")
	}
}

func TestLUPivFlatSingular(t *testing.T) {
	dim := 8
	a := make([]float32, dim*dim) // all zeros
	piv := make([]int32, dim)
	if kernels.LUPivFlat(a, dim, piv) {
		t.Fatalf("singular matrix must be rejected")
	}
}

func TestLUPartialPivotMatchesReference(t *testing.T) {
	// The region-based blocked factorization must produce the exact
	// same pivot sequence and (within float tolerance) the same factors
	// as the sequential reference.
	nBlocks, m := 4, 12
	dim := nBlocks * m
	orig := kernels.GenMatrix(dim, 32)

	want := append([]float32(nil), orig...)
	wantPiv := make([]int32, dim)
	if !kernels.LUPivFlat(want, dim, wantPiv) {
		t.Fatalf("reference failed")
	}

	for _, workers := range []int{1, 8} {
		got := append([]float32(nil), orig...)
		piv := make([]int32, dim)
		rt := core.New(core.Config{Workers: workers})
		al := New(rt, kernels.Fast, m)
		al.LUPartialPivot(got, nBlocks, piv)
		if err := rt.Close(); err != nil {
			t.Fatal(err)
		}
		if err := reconstructionError(orig, got, piv, dim); err > 5e-3 {
			t.Fatalf("workers=%d: P·A vs L·U off by %g", workers, err)
		}
		for k := range piv {
			if piv[k] != wantPiv[k] {
				t.Fatalf("workers=%d: pivot[%d] = %d, want %d", workers, k, piv[k], wantPiv[k])
			}
		}
		if d := kernels.MaxAbsDiff(want, got); d > 5e-3 {
			t.Fatalf("workers=%d: factors differ from reference by %g", workers, d)
		}
	}
}

func TestLUPartialPivotParallelism(t *testing.T) {
	// The laswp/trsm/gemm tasks of one panel step must not be one
	// serial chain: with the panel done, all column blocks proceed
	// independently.  Verify structurally via the recorder: the task
	// count is nb panels + nb(nb-1) swaps + Σ trsm + Σ gemm.
	nBlocks, m := 3, 8
	dim := nBlocks * m
	rt := core.New(core.Config{Workers: 1})
	al := New(rt, kernels.Fast, m)
	a := kernels.GenMatrix(dim, 33)
	piv := make([]int32, dim)
	al.LUPartialPivot(a, nBlocks, piv)
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	wantTasks := int64(0)
	for k := 0; k < nBlocks; k++ {
		rest := nBlocks - k - 1
		wantTasks += 1 + int64(nBlocks-1) + int64(rest) + int64(rest*rest)
	}
	if st.TasksExecuted != wantTasks {
		t.Fatalf("executed %d tasks, want %d", st.TasksExecuted, wantTasks)
	}
	if st.Deps.RegionObjects != 2 { // the matrix and the pivot vector
		t.Fatalf("region objects = %d, want 2", st.Deps.RegionObjects)
	}
}

func TestLUPartialPivotRejectsBadShapes(t *testing.T) {
	rt := core.New(core.Config{Workers: 1})
	defer rt.Close()
	al := New(rt, kernels.Fast, 8)
	defer func() {
		if recover() == nil {
			t.Fatalf("shape mismatch must panic")
		}
	}()
	al.LUPartialPivot(make([]float32, 10), 2, make([]int32, 16))
}
