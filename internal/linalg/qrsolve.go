package linalg

import (
	"repro/internal/core"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
)

// QRSolve — solving A·x = b through the tiled QR factorization — is the
// QR analogue of the §VII.D composition argument: "a real program may
// perform a [factorization] and use the result in another operation.  As
// the results of the factorization become available, the tasks of the
// second operation that consume them can be executed."  The solver is
// submitted right after QR with no barrier in between; the dependency
// tracker pipelines each Qᵀ·b update behind the panel that produces its
// reflectors, and each back-substitution step behind the R tiles it
// reads.

// qrSolveTasks lazily declares the vector tasks of the solver.
type qrSolveTasks struct {
	unmqrV *core.TaskDef
	tsmqrV *core.TaskDef
	gemv   *core.TaskDef
	utrsv  *core.TaskDef
}

func (al *Algos) qrSolveTasks() *qrSolveTasks {
	m, p := al.m, al.p
	return &qrSolveTasks{
		unmqrV: core.NewTaskDef("sunmqr_v_t", func(a *core.Args) {
			kernels.UnmqrVec(a.F32(0), a.F32(1), a.F32(2), m)
		}),
		tsmqrV: core.NewTaskDef("stsmqr_v_t", func(a *core.Args) {
			kernels.TsmqrVec(a.F32(0), a.F32(1), a.F32(2), a.F32(3), m)
		}),
		gemv: core.NewTaskDef("sgemv_t", func(a *core.Args) {
			p.Gemv(a.F32(0), a.F32(1), a.F32(2), m)
		}),
		utrsv: core.NewTaskDef("sutrsv_t", func(a *core.Args) {
			kernels.UTrsv(a.F32(0), a.F32(1), m)
		}),
	}
}

// QRSolve solves A·x = b given the output of a prior QR(a) call (factored
// tiles in a, T factors in t).  b is a blocked vector of a.N blocks of m
// elements; it is overwritten with the solution x (valid after a
// barrier).  No barrier is needed between QR and QRSolve: the submission
// composes with the factorization through data dependencies alone.
func (al *Algos) QRSolve(a, t *hypermatrix.Matrix, b [][]float32) {
	n := a.N
	ts := al.qrSolveTasks()

	// y := Qᵀ·b, pipelined panel by panel behind the factorization.
	for k := 0; k < n; k++ {
		al.submit(ts.unmqrV,
			core.In(a.Blocks[k][k]), core.In(t.Blocks[k][k]), core.InOut(b[k]))
		for i := k + 1; i < n; i++ {
			al.submit(ts.tsmqrV,
				core.InOut(b[k]), core.InOut(b[i]),
				core.In(a.Blocks[i][k]), core.In(t.Blocks[i][k]))
		}
	}

	// Back substitution R·x = y, bottom block-row first.
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			al.submit(ts.gemv,
				core.In(a.Blocks[i][j]), core.In(b[j]), core.InOut(b[i]))
		}
		al.submit(ts.utrsv, core.In(a.Blocks[i][i]), core.InOut(b[i]))
	}
}
