package kernels

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Scratch holds the packing buffers of the Tuned provider's micro-kernel
// engine: one contiguous float32 arena split on demand into the packed
// A row panels and packed B column panels of a GEMM invocation.  A
// Scratch belongs to one executing thread at a time — the runtime path
// hands every worker its own instance (keyed off Args.Worker() through
// core's worker-local registry), while the plain Provider entry points
// borrow one from the size-classed pool below for the duration of a
// call.  Buffers grow monotonically and are reused across calls, so a
// steady kernel stream performs no allocations.
type Scratch struct {
	buf []float32
}

// NewScratch returns an empty scratch; its arena grows on first use.
func NewScratch() *Scratch { return &Scratch{} }

// ensure returns an arena of at least n floats, growing the scratch to
// the next power-of-two class if needed.  Growth goes through the pool
// so a retired arena of a smaller class is recycled rather than dropped.
func (s *Scratch) ensure(n int) []float32 {
	if cap(s.buf) < n {
		if s.buf != nil {
			putArena(s.buf)
		}
		s.buf = getArena(n)
	}
	return s.buf[:n]
}

// Release returns the scratch's arena to the size-classed pool and
// empties the scratch (safe to reuse; the next ensure reacquires).
// The runtime calls it on per-worker scratches when it closes, so a
// benchmark sweep building one runtime per measurement point recycles
// arenas across runtimes instead of growing fresh ones each time.
func (s *Scratch) Release() {
	if s.buf != nil {
		putArena(s.buf)
		s.buf = nil
	}
}

// scratchClasses spans arenas of 2^0 .. 2^31 floats; class i holds
// arenas of exactly 1<<i capacity, so any free arena of a class fits
// any request mapped to it (mirroring the size-classed recycling pool
// of deps/pool.go, which plays the same role for renamed storage).
const scratchClasses = 32

// maxFreeArenas bounds each class's free list: concurrent borrowers
// past the bound allocate fresh arenas and the overflow on release is
// dropped to the GC, so a burst cannot pin its peak footprint forever.
const maxFreeArenas = 32

// scratchPool recycles packing arenas (and, through freeScratch, whole
// Scratch instances for the plain Provider entry points that have no
// per-worker identity to key off).
var scratchPool struct {
	mu      sync.Mutex
	classes [scratchClasses][][]float32

	free []*Scratch // idle Scratch headers for the plain entry points

	hits, misses atomic.Int64
}

// arenaClass maps a request of n floats to its power-of-two class.
func arenaClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// getArena returns a recycled arena of the request's class, or a fresh
// allocation when the class free list is empty.
func getArena(n int) []float32 {
	c := arenaClass(n)
	scratchPool.mu.Lock()
	if l := scratchPool.classes[c]; len(l) > 0 {
		a := l[len(l)-1]
		l[len(l)-1] = nil
		scratchPool.classes[c] = l[:len(l)-1]
		scratchPool.mu.Unlock()
		scratchPool.hits.Add(1)
		return a
	}
	scratchPool.mu.Unlock()
	scratchPool.misses.Add(1)
	return make([]float32, 1<<c)
}

// putArena returns an arena to its class free list, dropping it to the
// GC past the per-class bound.  Arenas keep stale contents: packing
// overwrites every float it will read.
func putArena(a []float32) {
	c := arenaClass(cap(a))
	if 1<<c != cap(a) {
		// Not a class-shaped arena (should not happen); let the GC have it.
		return
	}
	scratchPool.mu.Lock()
	if len(scratchPool.classes[c]) < maxFreeArenas {
		scratchPool.classes[c] = append(scratchPool.classes[c], a[:cap(a)])
	}
	scratchPool.mu.Unlock()
}

// AcquireScratch borrows a scratch from the pool; pair with
// ReleaseScratch.  The plain Tuned entry points wrap every call in an
// acquire/release pair, so call sites without a worker identity
// (fork-join baselines, the CellSs and SuperMatrix runtimes, tests)
// still run allocation-free in steady state.
func AcquireScratch() *Scratch {
	scratchPool.mu.Lock()
	if l := scratchPool.free; len(l) > 0 {
		s := l[len(l)-1]
		l[len(l)-1] = nil
		scratchPool.free = l[:len(l)-1]
		scratchPool.mu.Unlock()
		return s
	}
	scratchPool.mu.Unlock()
	return NewScratch()
}

// ReleaseScratch returns a scratch to the pool.  Past the bound the
// header is dropped but its arena is still recycled by class.
func ReleaseScratch(s *Scratch) {
	scratchPool.mu.Lock()
	if len(scratchPool.free) < maxFreeArenas {
		scratchPool.free = append(scratchPool.free, s)
		scratchPool.mu.Unlock()
		return
	}
	scratchPool.mu.Unlock()
	s.Release()
}

// ScratchPoolStats reports pool activity: arena acquisitions served
// from a free list vs fresh allocations.
func ScratchPoolStats() (hits, misses int64) {
	return scratchPool.hits.Load(), scratchPool.misses.Load()
}
