package kernels

import (
	"path/filepath"
	"testing"
)

// snapshotEngines records every engine provider's blocking and returns
// a restore function, so profile tests leave the package state alone.
func snapshotEngines(t *testing.T) func() {
	t.Helper()
	orig := map[string]Params{}
	for _, name := range EngineProviders() {
		p, ok := EngineParams(name)
		if !ok {
			t.Fatalf("EngineParams(%q) missing", name)
		}
		orig[name] = p
	}
	return func() {
		for name, p := range orig {
			if err := ConfigureEngine(name, p); err != nil {
				t.Fatalf("restoring %s: %v", name, err)
			}
		}
	}
}

// TestProfileRoundTrip is the acceptance test for the tuner's persisted
// output: Save → Load → Apply must re-block every engine provider to
// exactly the recorded parameters.
func TestProfileRoundTrip(t *testing.T) {
	defer snapshotEngines(t)()

	prof := &Profile{
		Version:   ProfileVersion,
		Host:      Host(),
		Providers: map[string]ProviderProfile{},
	}
	want := map[string]Params{}
	for _, name := range EngineProviders() {
		shape := EngineShapes(name)[0]
		p := Params{MR: shape.MR, NR: shape.NR, KC: 96, Crossover: 24}
		want[name] = p
		prof.Providers[name] = ProviderProfile{
			Params:       p,
			GflopsGemmNN: map[string]float64{"128": 1.0},
		}
	}

	path := filepath.Join(t.TempDir(), "profile.json")
	if err := prof.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	applied, err := loaded.Apply()
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != len(want) {
		t.Fatalf("applied %v, want all of %d engine providers", applied, len(want))
	}
	for name, w := range want {
		got, _ := EngineParams(name)
		if got != w {
			t.Fatalf("%s: EngineParams %+v after applying profile %+v", name, got, w)
		}
	}
}

// TestProfileVersionMismatch: a profile from a different schema version
// is rejected outright, not partially applied.
func TestProfileVersionMismatch(t *testing.T) {
	defer snapshotEngines(t)()
	prof := &Profile{Version: ProfileVersion + 1, Providers: map[string]ProviderProfile{}}
	if _, err := prof.Apply(); err == nil {
		t.Fatal("Apply accepted a profile with a foreign version")
	}
}

// TestProfileSkipsUnimplementedShape: a profile tuned on hardware with
// kernels this build lacks must degrade gracefully — the engine keeps
// its defaults and Apply reports it as not applied.
func TestProfileSkipsUnimplementedShape(t *testing.T) {
	defer snapshotEngines(t)()
	name := EngineProviders()[0]
	before, _ := EngineParams(name)
	prof := &Profile{
		Version: ProfileVersion,
		Providers: map[string]ProviderProfile{
			name: {Params: Params{MR: 999, NR: 999, KC: 128, Crossover: 8}},
		},
	}
	applied, err := prof.Apply()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range applied {
		if a == name {
			t.Fatalf("Apply claims to have applied an unimplemented shape to %s", name)
		}
	}
	if after, _ := EngineParams(name); after != before {
		t.Fatalf("%s: params changed %+v → %+v on a skipped profile entry", name, before, after)
	}
}
