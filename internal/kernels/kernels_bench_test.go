package kernels

import (
	"fmt"
	"testing"
)

// Tile-kernel benchmarks: the per-provider single-core rates that anchor
// every Gflop/s figure (the "peak" series is the tuned GemmNN × threads).
// Every provider×block point reports gflop/s and allocs/op; the packed
// providers must hold 0 allocs/op in steady state (their pool is warmed
// by the timed loop's first iteration, and the SteadyStateAllocFree
// tests pin the criterion exactly).

// benchBlockSizes sweeps the block range of the paper's Fig. 8 sweet
// spot; every size is above the engines' default streaming crossover
// (the sub-crossover delegation runs Fast's loops, already measured by
// the goto series), and 384 exceeds the default kc=256 so the
// multi-chunk k loop is benchmarked, not just unit-tested.
var benchBlockSizes = []int{32, 64, 128, 256, 384}

func benchBlocks(m int) (a, b, c []float32) {
	return GenMatrix(m, 1), GenMatrix(m, 2), make([]float32, m*m)
}

func benchGemmNN(b *testing.B, p Provider, m int) {
	x, y, z := benchBlocks(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.GemmNN(x, y, z, m)
	}
	b.ReportMetric(GemmFlops(m)*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflop/s")
}

func benchGemmNT(b *testing.B, p Provider, m int) {
	x, y, z := benchBlocks(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.GemmNT(x, y, z, m)
	}
	b.ReportMetric(GemmFlops(m)*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflop/s")
}

func benchSyrk(b *testing.B, p Provider, m int) {
	x, _, z := benchBlocks(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Syrk(x, z, m)
	}
	// Syrk touches only the lower triangle: half a GEMM's flops.
	b.ReportMetric(GemmFlops(m)/2*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflop/s")
}

func BenchmarkGemmNN(b *testing.B) {
	for _, p := range Providers {
		for _, m := range benchBlockSizes {
			b.Run(fmt.Sprintf("%s/%d", p.Name, m), func(b *testing.B) { benchGemmNN(b, p, m) })
		}
	}
}

func BenchmarkGemmNT(b *testing.B) {
	for _, p := range Providers {
		for _, m := range benchBlockSizes {
			b.Run(fmt.Sprintf("%s/%d", p.Name, m), func(b *testing.B) { benchGemmNT(b, p, m) })
		}
	}
}

func BenchmarkSyrk(b *testing.B) {
	for _, p := range Providers {
		for _, m := range benchBlockSizes {
			b.Run(fmt.Sprintf("%s/%d", p.Name, m), func(b *testing.B) { benchSyrk(b, p, m) })
		}
	}
}

// BenchmarkGemmNNWorkerScratch measures the runtime path: a dedicated
// per-worker Scratch instead of the pooled acquire/release.
func BenchmarkGemmNNWorkerScratch256(b *testing.B) {
	m := 256
	x, y, z := benchBlocks(m)
	s := NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.GemmNN(x, y, z, m)
	}
	b.ReportMetric(GemmFlops(m)*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflop/s")
}

func BenchmarkPotrf256(b *testing.B) {
	m := 256
	spd := GenSPD(m, 3)
	work := make([]float32, m*m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, spd)
		if !Fast.Potrf(work, m) {
			b.Fatal("not positive definite")
		}
	}
}

func BenchmarkTrsm256(b *testing.B) {
	m := 256
	l := GenSPD(m, 4)
	if !Fast.Potrf(l, m) {
		b.Fatal("factor failed")
	}
	x := GenMatrix(m, 5)
	work := make([]float32, m*m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, x)
		Fast.Trsm(l, work, m)
	}
}
