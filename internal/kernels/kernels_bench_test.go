package kernels

import "testing"

// Tile-kernel benchmarks: the per-provider single-core rates that anchor
// every Gflop/s figure (the "peak" series is FastGemmNN × threads).

func benchBlocks(m int) (a, b, c []float32) {
	return GenMatrix(m, 1), GenMatrix(m, 2), make([]float32, m*m)
}

func benchGemm(b *testing.B, p Provider, m int) {
	x, y, z := benchBlocks(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.GemmNN(x, y, z, m)
	}
	b.ReportMetric(GemmFlops(m)*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflop/s")
}

func BenchmarkGemmNNFast64(b *testing.B)  { benchGemm(b, Fast, 64) }
func BenchmarkGemmNNFast256(b *testing.B) { benchGemm(b, Fast, 256) }
func BenchmarkGemmNNRef64(b *testing.B)   { benchGemm(b, Ref, 64) }
func BenchmarkGemmNNRef256(b *testing.B)  { benchGemm(b, Ref, 256) }

func BenchmarkPotrf256(b *testing.B) {
	m := 256
	spd := GenSPD(m, 3)
	work := make([]float32, m*m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, spd)
		if !Fast.Potrf(work, m) {
			b.Fatal("not positive definite")
		}
	}
}

func BenchmarkTrsm256(b *testing.B) {
	m := 256
	l := GenSPD(m, 4)
	if !Fast.Potrf(l, m) {
		b.Fatal("factor failed")
	}
	x := GenMatrix(m, 5)
	work := make([]float32, m*m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, x)
		Fast.Trsm(l, work, m)
	}
}
