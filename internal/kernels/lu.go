package kernels

import "math"

// Block kernels for the tiled LU decomposition without pivoting, the
// other classic blockable factorization the paper cites (§IV, refs
// [8][9][10]).  These are provider-independent.

// LUBlock performs an in-place unblocked LU factorization (no pivoting)
// of an m×m block: L unit-lower, U upper.  Returns false on a zero pivot.
func LUBlock(a []float32, m int) bool {
	return LUFlat(a, m)
}

// TrsmLLUnit solves L·X = B in place of B, with L unit-lower-triangular
// (the row-panel update of tiled LU).
func TrsmLLUnit(l, b []float32, m int) {
	for r := 1; r < m; r++ {
		lr := l[r*m : r*m+r]
		for k := 0; k < r; k++ {
			lrk := lr[k]
			if lrk == 0 {
				continue
			}
			bk := b[k*m : k*m+m]
			br := b[r*m : r*m+m]
			for c := range br {
				br[c] -= lrk * bk[c]
			}
		}
	}
}

// TrsmRU solves X·U = B in place of B, with U upper-triangular including
// its diagonal (the column-panel update of tiled LU).
func TrsmRU(u, b []float32, m int) bool {
	for c := 0; c < m; c++ {
		d := u[c*m+c]
		if d == 0 || math.IsNaN(float64(d)) {
			return false
		}
		inv := 1 / d
		for r := 0; r < m; r++ {
			s := b[r*m+c]
			for k := 0; k < c; k++ {
				s -= b[r*m+k] * u[k*m+c]
			}
			b[r*m+c] = s * inv
		}
	}
	return true
}

// LUPivFlat performs an in-place LU decomposition with partial pivoting
// on the flat n×n matrix A: P·A = L·U with L unit-lower.  piv[k] records
// the row swapped with row k at step k (LAPACK ipiv convention, 0-based).
// It returns false if the matrix is exactly singular.
//
// Row interchanges are what make LU "hard to block" (paper §V): they
// touch full rows across every column block, which is exactly the access
// pattern the array-region extension expresses.
func LUPivFlat(a []float32, n int, piv []int32) bool {
	for k := 0; k < n; k++ {
		// Pivot search in column k.
		p := k
		best := abs32(a[k*n+k])
		for r := k + 1; r < n; r++ {
			if v := abs32(a[r*n+k]); v > best {
				best = v
				p = r
			}
		}
		piv[k] = int32(p)
		if best == 0 {
			return false
		}
		if p != k {
			SwapRows(a, n, k, p, 0, n-1)
		}
		inv := 1 / a[k*n+k]
		for r := k + 1; r < n; r++ {
			a[r*n+k] *= inv
		}
		for r := k + 1; r < n; r++ {
			lrk := a[r*n+k]
			if lrk == 0 {
				continue
			}
			rowK := a[k*n+k+1 : k*n+n]
			rowR := a[r*n+k+1 : r*n+n]
			for c := range rowR {
				rowR[c] -= lrk * rowK[c]
			}
		}
	}
	return true
}

// SwapRows exchanges rows r1 and r2 of the flat n-stride matrix A within
// columns c0..c1 inclusive.
func SwapRows(a []float32, n, r1, r2, c0, c1 int) {
	x := a[r1*n+c0 : r1*n+c1+1]
	y := a[r2*n+c0 : r2*n+c1+1]
	for i := range x {
		x[i], y[i] = y[i], x[i]
	}
}

// ApplyPivots applies the progressive row interchanges piv[k0..k1] to the
// flat n-stride matrix A within columns c0..c1, in forward order — the
// laswp operation.
func ApplyPivots(a []float32, n int, piv []int32, k0, k1, c0, c1 int) {
	for k := k0; k <= k1; k++ {
		if p := int(piv[k]); p != k {
			SwapRows(a, n, k, p, c0, c1)
		}
	}
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// GemmSubNN computes C -= A·B (the trailing update of tiled LU), using
// the streaming i-k-j order.  Like gemmNNFast, no zero-skip on aik:
// structural sparsity is handled a level up by the hyper-matrix, which
// skips absent blocks entirely, so an element test per inner-loop trip
// only buys mispredictions on dense data.
func GemmSubNN(a, b, c []float32, m int) {
	for i := 0; i < m; i++ {
		ci := c[i*m : i*m+m]
		for k := 0; k < m; k++ {
			aik := a[i*m+k]
			bk := b[k*m : k*m+m]
			for j := range ci {
				ci[j] -= aik * bk[j]
			}
		}
	}
}
