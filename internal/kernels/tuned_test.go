package kernels

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// tunedSizes crosses the engine's structural boundaries: below and at
// the pack crossover, multiples of mr/nr, every misalignment class
// mod 4, one size above a kc chunk, and one size misaligned above kc.
var tunedSizes = []int{1, 2, 3, 5, 8, 16, 31, 63, 64, 65, 66, 67, 96, 100, 129, 160, 257, 260}

// tolFor scales the comparison tolerance with the k-summation length:
// the engine and the textbook loops accumulate in different orders.
func tolFor(m int) float64 { return 1e-5 * float64(m+8) }

func TestTunedGemmNNMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, m := range tunedSizes {
		a, b := randBlock(m, rng), randBlock(m, rng)
		c1 := randBlock(m, rng)
		c2 := append([]float32(nil), c1...)
		Ref.GemmNN(a, b, c1, m)
		Tuned.GemmNN(a, b, c2, m)
		if d := MaxAbsDiff(c1, c2); d > tolFor(m) {
			t.Fatalf("m=%d: Tuned GemmNN differs from Ref by %g", m, d)
		}
	}
}

func TestTunedGemmNTMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, m := range tunedSizes {
		a, b := randBlock(m, rng), randBlock(m, rng)
		c1 := randBlock(m, rng)
		c2 := append([]float32(nil), c1...)
		Ref.GemmNT(a, b, c1, m)
		Tuned.GemmNT(a, b, c2, m)
		if d := MaxAbsDiff(c1, c2); d > tolFor(m) {
			t.Fatalf("m=%d: Tuned GemmNT differs from Ref by %g", m, d)
		}
	}
}

func TestTunedGemmSubMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, m := range tunedSizes {
		a, b := randBlock(m, rng), randBlock(m, rng)
		c1 := randBlock(m, rng)
		c2 := append([]float32(nil), c1...)
		Ref.GemmSub(a, b, c1, m)
		Tuned.GemmSub(a, b, c2, m)
		if d := MaxAbsDiff(c1, c2); d > tolFor(m) {
			t.Fatalf("m=%d: Tuned GemmSub differs from Ref by %g", m, d)
		}
	}
}

// TestTunedSyrkMatchesRef also asserts the strict upper triangle is
// untouched: the engine must skip above-diagonal tiles entirely and
// mask diagonal-crossing ones.
func TestTunedSyrkMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, m := range tunedSizes {
		a := randBlock(m, rng)
		c1 := randBlock(m, rng)
		c2 := append([]float32(nil), c1...)
		Ref.Syrk(a, c1, m)
		Tuned.Syrk(a, c2, m)
		if d := LowerMaxAbsDiff(c1, c2, m); d > tolFor(m) {
			t.Fatalf("m=%d: Tuned Syrk lower triangle differs from Ref by %g", m, d)
		}
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				if c2[i*m+j] != c1[i*m+j] {
					t.Fatalf("m=%d: Tuned Syrk wrote above the diagonal at (%d,%d)", m, i, j)
				}
			}
		}
	}
}

// TestTunedScratchReuseAcrossShapes drives one Scratch through
// alternating shapes and kernels, the reuse pattern of a per-worker
// instance executing a mixed task stream.
func TestTunedScratchReuseAcrossShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	s := NewScratch()
	for _, m := range []int{96, 64, 129, 64, 257, 96} {
		a, b := randBlock(m, rng), randBlock(m, rng)
		c1 := randBlock(m, rng)
		c2 := append([]float32(nil), c1...)
		Ref.GemmNN(a, b, c1, m)
		s.GemmNN(a, b, c2, m)
		if d := MaxAbsDiff(c1, c2); d > tolFor(m) {
			t.Fatalf("m=%d: scratch-path GemmNN differs from Ref by %g", m, d)
		}
		c1, c2 = randBlock(m, rng), nil
		c2 = append([]float32(nil), c1...)
		Ref.Syrk(a, c1, m)
		s.Syrk(a, c2, m)
		if d := LowerMaxAbsDiff(c1, c2, m); d > tolFor(m) {
			t.Fatalf("m=%d: scratch-path Syrk differs from Ref by %g", m, d)
		}
	}
}

// TestTunedGemmQuickProperty fuzzes random sizes (aligned and not)
// against the reference on all three engine kernels.
func TestTunedGemmQuickProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(140)
		a, b := randBlock(m, rng), randBlock(m, rng)
		c1 := randBlock(m, rng)
		c2 := append([]float32(nil), c1...)
		Ref.GemmNN(a, b, c1, m)
		Tuned.GemmNN(a, b, c2, m)
		if MaxAbsDiff(c1, c2) > tolFor(m) {
			return false
		}
		Ref.GemmNT(a, b, c1, m)
		Tuned.GemmNT(a, b, c2, m)
		if MaxAbsDiff(c1, c2) > tolFor(m) {
			return false
		}
		Ref.Syrk(a, c1, m)
		Tuned.Syrk(a, c2, m)
		return LowerMaxAbsDiff(c1, c2, m) <= tolFor(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTunedSteadyStateAllocFree pins the acceptance criterion: after
// one warm-up call has populated the scratch pool, the packed path
// performs zero allocations per invocation on every engine kernel.
func TestTunedSteadyStateAllocFree(t *testing.T) {
	m := 128 // above the crossover, misses Fast's delegation
	rng := rand.New(rand.NewSource(15))
	a, b, c := randBlock(m, rng), randBlock(m, rng), make([]float32, m*m)
	Tuned.GemmNN(a, b, c, m) // warm the pool
	if n := testing.AllocsPerRun(20, func() { Tuned.GemmNN(a, b, c, m) }); n != 0 {
		t.Fatalf("pooled GemmNN allocates %v/op in steady state, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() { Tuned.GemmNT(a, b, c, m) }); n != 0 {
		t.Fatalf("pooled GemmNT allocates %v/op in steady state, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() { Tuned.Syrk(a, c, m) }); n != 0 {
		t.Fatalf("pooled Syrk allocates %v/op in steady state, want 0", n)
	}
	s := NewScratch()
	s.GemmNN(a, b, c, m) // grow the per-worker arena once
	if n := testing.AllocsPerRun(20, func() { s.GemmNN(a, b, c, m) }); n != 0 {
		t.Fatalf("per-worker GemmNN allocates %v/op in steady state, want 0", n)
	}
}

// TestScratchPoolRecyclesAcrossClasses exercises the size-class walk:
// growing a scratch retires its old arena into the smaller class, and
// re-acquiring that class is served from the free list.
func TestScratchPoolRecyclesAcrossClasses(t *testing.T) {
	s := NewScratch()
	small := s.ensure(1000)
	if len(small) != 1000 || cap(s.buf) != 1024 {
		t.Fatalf("ensure(1000): len=%d cap=%d, want 1000/1024", len(small), cap(s.buf))
	}
	s.ensure(5000) // retires the 1024-arena to its class list
	h0, m0 := ScratchPoolStats()
	s2 := NewScratch()
	s2.ensure(700) // must hit the recycled 1024-arena
	h1, m1 := ScratchPoolStats()
	if h1 != h0+1 || m1 != m0 {
		t.Fatalf("recycled-class acquire: hits %d→%d misses %d→%d, want one hit and no miss", h0, h1, m0, m1)
	}
}
