package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randUnitLower builds a well-conditioned unit-lower-triangular m×m tile.
func randUnitLower(m int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	l := make([]float32, m*m)
	for i := 0; i < m; i++ {
		l[i*m+i] = 1
		for j := 0; j < i; j++ {
			l[i*m+j] = rng.Float32()*0.5 - 0.25
		}
	}
	return l
}

// randUpper builds a well-conditioned upper-triangular m×m tile.
func randUpper(m int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	u := make([]float32, m*m)
	for i := 0; i < m; i++ {
		u[i*m+i] = 1 + rng.Float32()
		for j := i + 1; j < m; j++ {
			u[i*m+j] = rng.Float32()*0.5 - 0.25
		}
	}
	return u
}

// mulNN returns A·B for m×m tiles.
func mulNN(a, b []float32, m int) []float32 {
	c := make([]float32, m*m)
	for i := 0; i < m; i++ {
		for k := 0; k < m; k++ {
			aik := a[i*m+k]
			for j := 0; j < m; j++ {
				c[i*m+j] += aik * b[k*m+j]
			}
		}
	}
	return c
}

func maxAbs(a, b []float32) float64 {
	var w float64
	for i := range a {
		if d := math.Abs(float64(a[i] - b[i])); d > w {
			w = d
		}
	}
	return w
}

// TestTrsmLLUnitSolves: with B = L·X, TrsmLLUnit must recover X.
func TestTrsmLLUnitSolves(t *testing.T) {
	const m = 16
	l := randUnitLower(m, 1)
	x := randTile(m, 2)
	b := mulNN(l, x, m)
	TrsmLLUnit(l, b, m)
	if w := maxAbs(b, x); w > 1e-4 {
		t.Fatalf("L⁻¹·(L·X) deviates from X by %g", w)
	}
}

// TestTrsmRUSolves: with B = X·U, TrsmRU must recover X.
func TestTrsmRUSolves(t *testing.T) {
	const m = 16
	u := randUpper(m, 3)
	x := randTile(m, 4)
	b := mulNN(x, u, m)
	if !TrsmRU(u, b, m) {
		t.Fatal("TrsmRU reported a zero pivot on a unit-diagonal-dominant U")
	}
	if w := maxAbs(b, x); w > 1e-4 {
		t.Fatalf("(X·U)·U⁻¹ deviates from X by %g", w)
	}
}

// TestTrsmRUZeroPivot: a zero diagonal must be reported, not divided by.
func TestTrsmRUZeroPivot(t *testing.T) {
	const m = 4
	u := randUpper(m, 5)
	u[2*m+2] = 0
	b := randTile(m, 6)
	if TrsmRU(u, b, m) {
		t.Fatal("TrsmRU accepted a singular U")
	}
}

// TestLUBlockReconstructs: LUBlock factors A into unit-L and U whose
// product is A.
func TestLUBlockReconstructs(t *testing.T) {
	const m = 16
	l0 := randUnitLower(m, 7)
	u0 := randUpper(m, 8)
	a := mulNN(l0, u0, m) // guaranteed factorable without pivoting
	orig := append([]float32(nil), a...)
	if !LUBlock(a, m) {
		t.Fatal("LUBlock hit a zero pivot")
	}
	l := make([]float32, m*m)
	u := make([]float32, m*m)
	for i := 0; i < m; i++ {
		l[i*m+i] = 1
		for j := 0; j < i; j++ {
			l[i*m+j] = a[i*m+j]
		}
		for j := i; j < m; j++ {
			u[i*m+j] = a[i*m+j]
		}
	}
	if w := maxAbs(mulNN(l, u, m), orig); w > 1e-3 {
		t.Fatalf("‖L·U − A‖∞ = %g", w)
	}
}

// TestGemmSubNN checks C −= A·B against the reference product.
func TestGemmSubNN(t *testing.T) {
	const m = 8
	a := randTile(m, 9)
	b := randTile(m, 10)
	c := randTile(m, 11)
	want := append([]float32(nil), c...)
	prod := mulNN(a, b, m)
	for i := range want {
		want[i] -= prod[i]
	}
	GemmSubNN(a, b, c, m)
	if w := maxAbs(c, want); w > 1e-4 {
		t.Fatalf("GemmSubNN deviates by %g", w)
	}
}

// TestGemmFlatMatchesReference: the flat entry point must agree with the
// textbook loop.
func TestGemmFlatMatchesReference(t *testing.T) {
	const n = 24
	a := randTile(n, 12)
	b := randTile(n, 13)
	c := make([]float32, n*n)
	GemmFlat(a, b, c, n)
	if w := maxAbs(c, mulNN(a, b, n)); w > 1e-3 {
		t.Fatalf("GemmFlat deviates by %g", w)
	}
}

// TestLUPivFlatReconstructs: with partial pivoting, P·A = L·U, where P
// is encoded by the returned pivot vector.
func TestLUPivFlatReconstructs(t *testing.T) {
	const n = 16
	a := randTile(n, 14) // no dominance needed: pivoting handles it
	orig := append([]float32(nil), a...)
	piv := make([]int32, n)
	if !LUPivFlat(a, n, piv) {
		t.Fatal("LUPivFlat failed on a random dense matrix")
	}
	l := make([]float32, n*n)
	u := make([]float32, n*n)
	for i := 0; i < n; i++ {
		l[i*n+i] = 1
		for j := 0; j < i; j++ {
			l[i*n+j] = a[i*n+j]
		}
		for j := i; j < n; j++ {
			u[i*n+j] = a[i*n+j]
		}
	}
	// P·A: apply the recorded row swaps to the original.
	pa := append([]float32(nil), orig...)
	ApplyPivots(pa, n, piv, 0, n-1, 0, n-1)
	if w := maxAbs(mulNN(l, u, n), pa); w > 1e-3 {
		t.Fatalf("‖L·U − P·A‖∞ = %g", w)
	}
}

// TestSwapRowsRoundTrip: swapping twice is the identity.
func TestSwapRowsRoundTrip(t *testing.T) {
	const n = 8
	a := randTile(n, 15)
	orig := append([]float32(nil), a...)
	SwapRows(a, n, 2, 5, 0, n-1)
	if maxAbs(a, orig) == 0 {
		t.Fatal("SwapRows did nothing")
	}
	SwapRows(a, n, 2, 5, 0, n-1)
	if w := maxAbs(a, orig); w != 0 {
		t.Fatalf("double swap is not the identity (%g)", w)
	}
	SwapRows(a, n, 3, 3, 0, n-1) // self-swap is a no-op
	if w := maxAbs(a, orig); w != 0 {
		t.Fatalf("self swap changed the matrix (%g)", w)
	}
	// Column-restricted swap touches nothing outside c0..c1.
	SwapRows(a, n, 0, 1, 2, 4)
	for r := 0; r < 2; r++ {
		for c := 0; c < n; c++ {
			inRange := c >= 2 && c <= 4
			if inRange && a[r*n+c] != orig[(1-r)*n+c] {
				t.Fatalf("restricted swap missed (%d,%d)", r, c)
			}
			if !inRange && a[r*n+c] != orig[r*n+c] {
				t.Fatalf("restricted swap leaked to (%d,%d)", r, c)
			}
		}
	}
}

// TestGemvTrsv: Trsv(L, L·x) must recover x, and Gemv must subtract the
// product.
func TestGemvTrsv(t *testing.T) {
	const m = 16
	l := randUnitLower(m, 16)
	for i := 0; i < m; i++ {
		l[i*m+i] = 1.5 // Trsv divides by the diagonal
	}
	x := make([]float32, m)
	for i := range x {
		x[i] = float32(i%5) - 2
	}
	// b := L·x via Gemv: y −= A·x with y = 0 gives −L·x.
	b := make([]float32, m)
	Gemv(l, x, b, m)
	for i := range b {
		b[i] = -b[i]
	}
	Trsv(l, b, m)
	if w := maxAbs(b, x); w > 1e-4 {
		t.Fatalf("Trsv(L, L·x) deviates from x by %g", w)
	}

	// TrsvFlat is the same routine on a flat matrix.
	b2 := make([]float32, m)
	Gemv(l, x, b2, m)
	for i := range b2 {
		b2[i] = -b2[i]
	}
	TrsvFlat(l, b2, m)
	if w := maxAbs(b2, x); w > 1e-4 {
		t.Fatalf("TrsvFlat deviates by %g", w)
	}
}

// TestTrsmSolveQuick is the property-based variant of the triangular
// solves over random sizes.
func TestTrsmSolveQuick(t *testing.T) {
	property := func(seed int64, mraw uint8) bool {
		m := 1 + int(mraw)%12
		l := randUnitLower(m, seed)
		x := randTile(m, seed+1)
		b := mulNN(l, x, m)
		TrsmLLUnit(l, b, m)
		return maxAbs(b, x) <= 1e-3
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQRFlops sanity: the flop model must be positive and cubic.
func TestQRFlops(t *testing.T) {
	if QRFlops(100) <= 0 {
		t.Fatal("QRFlops not positive")
	}
	if r := QRFlops(200) / QRFlops(100); math.Abs(r-8) > 1e-9 {
		t.Fatalf("QRFlops not cubic: ratio %g", r)
	}
}
