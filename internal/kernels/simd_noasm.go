//go:build !amd64 || noasm

package kernels

// archSimdKernels reports no assembly family: the Simd provider runs
// the scalar engine (bit-compatible with Tuned) on non-amd64
// architectures and under the `noasm` build tag.
func archSimdKernels() ([]tileKernel, func(a, x, y []float32, m int), bool) {
	return nil, nil, false
}
